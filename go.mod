module mpl

go 1.22
