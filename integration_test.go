package mpl_test

import (
	"testing"
	"time"

	"mpl"
	"mpl/internal/bound"
	"mpl/internal/division"
)

// TestEndToEndAllEnginesVerified runs the complete flow — synthetic
// benchmark, graph construction, division, every engine, geometric
// verification, density balancing — and checks the cross-engine invariants
// the paper's evaluation relies on.
func TestEndToEndAllEnginesVerified(t *testing.T) {
	l, err := mpl.GenerateBenchmark("C6288", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	lb := bound.MinConflicts(g.G, 4)

	type outcome struct {
		alg  mpl.Algorithm
		conf int
	}
	var results []outcome
	for _, alg := range []mpl.Algorithm{mpl.ILP, mpl.SDPBacktrack, mpl.SDPGreedy, mpl.Linear} {
		res, err := mpl.DecomposeGraph(g, mpl.Options{
			K:            4,
			Algorithm:    alg,
			Seed:         1,
			ILPTimeLimit: 2 * time.Minute,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// Geometric re-verification must agree with graph-level counts.
		conf, stit, err := mpl.Verify(res)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if conf != res.Conflicts || stit != res.Stitches {
			t.Fatalf("%v: verifier %d/%d vs result %d/%d", alg, conf, stit, res.Conflicts, res.Stitches)
		}
		// No engine can beat the clique-packing lower bound.
		if res.Conflicts < lb {
			t.Fatalf("%v: %d conflicts below lower bound %d", alg, res.Conflicts, lb)
		}
		// Density balancing must not change the objective.
		c0, s0 := res.Conflicts, res.Stitches
		mpl.BalanceMasks(res)
		c1, s1, err := mpl.Verify(res)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c0 || s1 != s0 {
			t.Fatalf("%v: balancing changed cost %d/%d -> %d/%d", alg, c0, s0, c1, s1)
		}
		results = append(results, outcome{alg, c0})
	}

	// Table-1 ordering: ILP (exact, finished) ≤ every heuristic;
	// SDP+Backtrack ≤ SDP+Greedy on this macro-bearing circuit.
	byAlg := map[mpl.Algorithm]int{}
	for _, r := range results {
		byAlg[r.alg] = r.conf
	}
	if byAlg[mpl.ILP] > byAlg[mpl.SDPBacktrack] ||
		byAlg[mpl.ILP] > byAlg[mpl.SDPGreedy] ||
		byAlg[mpl.ILP] > byAlg[mpl.Linear] {
		t.Fatalf("exact ILP beaten by a heuristic: %v", byAlg)
	}
	if byAlg[mpl.SDPBacktrack] > byAlg[mpl.SDPGreedy] {
		t.Fatalf("backtrack (%d) worse than greedy (%d)", byAlg[mpl.SDPBacktrack], byAlg[mpl.SDPGreedy])
	}
}

// TestParallelEndToEnd checks the Workers option end to end on a benchmark.
func TestParallelEndToEnd(t *testing.T) {
	l, err := mpl.GenerateBenchmark("C2670", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := mpl.DecomposeGraph(g, mpl.Options{K: 4, Algorithm: mpl.Linear})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := mpl.DecomposeGraph(g, mpl.Options{
		K: 4, Algorithm: mpl.Linear,
		Division: division.Options{Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Colors {
		if serial.Colors[i] != parallel.Colors[i] {
			t.Fatalf("fragment %d differs: %d vs %d", i, serial.Colors[i], parallel.Colors[i])
		}
	}
}

// TestKSweepMonotonicity: on a fixed decomposition graph (fixed mins), more
// masks can only reduce the optimal conflict count; with the near-optimal
// engine the measured counts should be non-increasing too.
func TestKSweepMonotonicity(t *testing.T) {
	l, err := mpl.GenerateBenchmark("C432", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fix the graph at the QP distance so only K varies.
	g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	prev := int(^uint(0) >> 1)
	for _, k := range []int{4, 5, 6} {
		res, err := mpl.DecomposeGraph(g, mpl.Options{K: k, Algorithm: mpl.SDPBacktrack, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Conflicts > prev {
			t.Fatalf("K=%d: conflicts %d > K-1's %d", k, res.Conflicts, prev)
		}
		prev = res.Conflicts
	}
}
