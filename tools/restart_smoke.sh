#!/usr/bin/env bash
# restart_smoke.sh — end-to-end restart-recovery smoke of durable sessions
# (DESIGN.md §13): boot `qpld serve -data-dir`, open an ECO session over
# HTTP and advance it one batch, SIGKILL the server (no drain, no flush
# beyond the write-ahead discipline), restart it on the same directory, and
# chain a further batch from the pre-crash hash. The layout is never
# re-sent after the crash — the session must come back from the log. CI
# runs this on every push; locally: tools/restart_smoke.sh [port].
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-18470}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

command -v jq >/dev/null || fail "jq is required"

start_server() {
  "$DIR/qpld" serve -addr "127.0.0.1:$PORT" -data-dir "$DIR/sessions" \
    >>"$DIR/serve.log" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$PID" 2>/dev/null || { cat "$DIR/serve.log" >&2; fail "server died on startup"; }
    sleep 0.1
  done
  cat "$DIR/serve.log" >&2
  fail "server never became healthy on port $PORT"
}

go build -o "$DIR/qpld" ./cmd/qpld

# A dense row of 8 features, 30 nm gaps — real conflict edges.
layout='{"features":[[[0,0,20,200]],[[50,0,70,200]],[[100,0,120,200]],[[150,0,170,200]],[[200,0,220,200]],[[250,0,270,200]],[[300,0,320,200]],[[350,0,370,200]]]}'

start_server
echo "server up (pid $PID), solving..."

full=$(curl -fsS "$BASE/v1/decompose" \
  -d "{\"k\":4,\"algorithm\":\"sdp-backtrack\",\"layout\":$layout}")
base_hash=$(echo "$full" | jq -re .layout_hash) || fail "no layout_hash in $full"

inc=$(curl -fsS "$BASE/v1/decompose/incremental" \
  -d "{\"base\":\"$base_hash\",\"k\":4,\"algorithm\":\"sdp-backtrack\",\"edits\":[{\"op\":\"remove\",\"feature\":7}]}")
pre_crash=$(echo "$inc" | jq -re .layout_hash) || fail "no layout_hash in $inc"
echo "session advanced to ${pre_crash:0:12}..., killing server"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

start_server
echo "server back up (pid $PID), chaining from the pre-crash hash..."

code=$(curl -sS -o "$DIR/after.json" -w '%{http_code}' "$BASE/v1/decompose/incremental" \
  -d "{\"base\":\"$pre_crash\",\"k\":4,\"algorithm\":\"sdp-backtrack\",\"edits\":[{\"op\":\"move\",\"feature\":0,\"dx\":25}]}")
[ "$code" = 200 ] || { cat "$DIR/after.json" >&2; fail "post-restart incremental answered $code, want 200"; }
jq -re .layout_hash "$DIR/after.json" >/dev/null || fail "post-restart response has no layout_hash"
jq -e '.incremental != null' "$DIR/after.json" >/dev/null \
  || fail "post-restart batch was not a fresh incremental solve: $(cat "$DIR/after.json")"

stats=$(curl -fsS "$BASE/v1/stats")
echo "$stats" | jq -e '.rehydrations >= 1' >/dev/null \
  || fail "no rehydration recorded after restart: $stats"
echo "$stats" | jq -e '.store_errors == 0' >/dev/null \
  || fail "restart recovery tripped store errors: $stats"
echo "$stats" | jq -e '.store.live_sessions >= 1' >/dev/null \
  || fail "store block missing or empty: $stats"

echo "PASS: session survived kill -9 ($(echo "$stats" | jq -c '{rehydrations, spills, store_errors, store}'))"
