// Package tools pins the external static-analysis tool versions CI
// installs (versions.env) and tests that the pins and the workflow agree.
//
// Why not a tools.go blank-import file: that pattern records tool versions
// in go.mod, and this module deliberately carries zero require directives
// so it builds on an offline toolchain image. versions.env is the
// replacement single source of truth; this test is the drift gate.
package tools

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// versionRE accepts staticcheck's year.minor.patch scheme and the
// standard vMAJOR.MINOR.PATCH module form.
var versionRE = regexp.MustCompile(`^(v\d+\.\d+\.\d+|\d{4}\.\d+(\.\d+)?)$`)

func readVersions(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open("versions.env")
	if err != nil {
		t.Fatalf("open versions.env: %v", err)
	}
	defer f.Close()
	vars := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, "=")
		if !ok {
			t.Fatalf("versions.env: not NAME=value: %q", line)
		}
		vars[name] = value
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read versions.env: %v", err)
	}
	return vars
}

// TestToolVersionsPinned: every pin parses as a version, and the CI
// workflow both sources versions.env and consumes every variable it
// defines — so adding or bumping a pin without wiring it into CI (or
// vice versa) fails here instead of silently drifting.
func TestToolVersionsPinned(t *testing.T) {
	vars := readVersions(t)
	for _, name := range []string{"STATICCHECK_VERSION", "GOVULNCHECK_VERSION", "XTOOLS_VERSION"} {
		v, ok := vars[name]
		if !ok {
			t.Errorf("versions.env: missing %s", name)
			continue
		}
		if !versionRE.MatchString(v) {
			t.Errorf("versions.env: %s=%q does not look like a pinned version", name, v)
		}
	}

	ci, err := os.ReadFile("../.github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("read ci.yml: %v", err)
	}
	workflow := string(ci)
	if !strings.Contains(workflow, "tools/versions.env") {
		t.Error("ci.yml does not source tools/versions.env")
	}
	for name := range vars {
		if !strings.Contains(workflow, fmt.Sprintf("${%s}", name)) {
			t.Errorf("ci.yml never uses ${%s} defined in versions.env", name)
		}
	}

	// Tool installs must go through the pins: any literal @version on an
	// install line is a drift hazard.
	for _, line := range strings.Split(workflow, "\n") {
		if strings.Contains(line, "go install") && regexp.MustCompile(`@v?\d`).MatchString(line) {
			t.Errorf("ci.yml hard-codes a tool version instead of using versions.env: %s", strings.TrimSpace(line))
		}
	}
}

// TestQpldvetDocumented: the linter entry point is discoverable — README
// documents the invocation and CI runs it with -summary.
func TestQpldvetDocumented(t *testing.T) {
	for file, want := range map[string]string{
		"../README.md":                "go run ./cmd/qpldvet ./...",
		"../.github/workflows/ci.yml": "qpldvet -summary",
		"../DESIGN.md":                "Statically enforced invariants",
	} {
		b, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		if !strings.Contains(string(b), want) {
			t.Errorf("%s does not mention %q", file, want)
		}
	}
}
