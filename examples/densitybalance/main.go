// Densitybalance demonstrates the balanced-density extension: after color
// assignment, whole connected components are rotated — a transformation
// that provably changes no conflict and no stitch — so the four exposure
// masks carry comparable pattern density. Unbalanced masks print at
// different process windows, which is why the authors' follow-up work
// (ICCAD'13, reference [10] of the paper) treats density balance as a
// first-class objective.
//
// Run with:
//
//	go run ./examples/densitybalance
package main

import (
	"fmt"
	"log"

	"mpl"
)

func main() {
	l, err := mpl.GenerateBenchmark("C5315", 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// The linear engine colors greedily toward low mask indices, which is
	// exactly the kind of assignment that leaves mask 0 overloaded.
	res, err := mpl.Decompose(l, mpl.Options{K: 4, Algorithm: mpl.Linear})
	if err != nil {
		log.Fatal(err)
	}
	conflicts, stitches := res.Conflicts, res.Stitches

	areas := func() [4]int64 {
		var out [4]int64
		for i, c := range res.Colors {
			out[c] += res.Graph.Fragments[i].Shape.Area()
		}
		return out
	}

	fmt.Printf("circuit C5315 (scale 0.5): %d fragments, cn#=%d st#=%d\n\n",
		len(res.Graph.Fragments), conflicts, stitches)
	fmt.Printf("%-22s %12s %12s %12s %12s\n", "", "mask 0", "mask 1", "mask 2", "mask 3")
	before := areas()
	fmt.Printf("%-22s %12d %12d %12d %12d\n", "area before (nm²)", before[0], before[1], before[2], before[3])

	spreadBefore, spreadAfter := mpl.BalanceMasks(res)
	after := areas()
	fmt.Printf("%-22s %12d %12d %12d %12d\n", "area after  (nm²)", after[0], after[1], after[2], after[3])
	fmt.Printf("\ndensity spread (max-min)/mean: %.3f -> %.3f\n", spreadBefore, spreadAfter)

	// Rebalancing is free: verify the objective is untouched.
	c, s, err := mpl.Verify(res)
	if err != nil {
		log.Fatal(err)
	}
	if c != conflicts || s != stitches {
		log.Fatalf("BUG: balancing changed cost %d/%d -> %d/%d", conflicts, stitches, c, s)
	}
	fmt.Printf("objective unchanged: cn#=%d st#=%d (verified geometrically)\n", c, s)
}
