// Quickstart: decompose a tiny hand-built layout for quadruple patterning
// and print the resulting masks.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpl"
)

func main() {
	// Build a layout: a row of five contacts at 40 nm pitch plus a wire
	// passing above them. Coordinates are nanometers; the default process
	// is the paper's 20 nm half pitch (wm = sm = 20).
	l := mpl.NewLayout("quickstart")
	for i := 0; i < 5; i++ {
		l.AddRect(mpl.Rect{X0: i * 40, Y0: 0, X1: i*40 + 20, Y1: 20})
	}
	l.AddRect(mpl.Rect{X0: 0, Y0: 60, X1: 180, Y1: 80})

	// Decompose for quadruple patterning with the near-optimal
	// SDP+Backtrack engine (Algorithm 1 of the paper).
	res, err := mpl.Decompose(l, mpl.Options{
		K:         4,
		Algorithm: mpl.SDPBacktrack,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	st := res.Graph.Stats
	fmt.Printf("decomposition graph: %d fragments, %d conflict edges, %d stitch edges\n",
		st.Fragments, st.ConflictEdges, st.StitchEdges)
	fmt.Printf("result: %d conflicts, %d stitches (K=%d, alpha=%.1f)\n",
		res.Conflicts, res.Stitches, res.K, res.Alpha)

	for c, mask := range res.Masks() {
		fmt.Printf("mask %d:", c)
		for _, shape := range mask {
			fmt.Printf(" %v", shape.Bounds())
		}
		fmt.Println()
	}

	// Cross-check the coloring against raw geometry.
	conf, stit, err := mpl.Verify(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("independent verification: %d conflicts, %d stitches\n", conf, stit)
}
