// Standardcell reproduces the motivating scenario of Fig. 1 of the DAC'14
// paper: a standard-cell contact cluster that forms a 4-clique in the
// decomposition graph. Under triple patterning (3 masks) one conflict is
// native — no coloring avoids it — while quadruple patterning resolves the
// cell conflict-free.
//
// Run with:
//
//	go run ./examples/standardcell
package main

import (
	"fmt"
	"log"

	"mpl"
)

// cell builds one standard-cell-like contact cluster at the given origin:
// four contacts in a 40 nm-pitch square (pairwise within the 80 nm coloring
// distance → K4), the pattern of Fig. 1.
func cell(l *mpl.Layout, ox, oy int) {
	for _, p := range []mpl.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 0, Y: 40}, {X: 40, Y: 40}} {
		l.AddRect(mpl.Rect{X0: ox + p.X, Y0: oy + p.Y, X1: ox + p.X + 20, Y1: oy + p.Y + 20})
	}
}

func main() {
	l := mpl.NewLayout("standardcell-row")
	// A row of eight cells, 200 nm apart (isolated from each other).
	for i := 0; i < 8; i++ {
		cell(l, i*200, 0)
	}
	fmt.Printf("layout: %d contacts in 8 cells\n", len(l.Features))

	for _, k := range []int{3, 4} {
		res, err := mpl.Decompose(l, mpl.Options{
			K:         k,
			Algorithm: mpl.SDPBacktrack,
			Seed:      7,
			// Keep the same conflict distance for both runs so the
			// comparison isolates the mask count (the paper's Fig. 1
			// argument).
			Build: mpl.BuildOptions{MinS: 80},
		})
		if err != nil {
			log.Fatal(err)
		}
		switch k {
		case 3:
			fmt.Printf("triple patterning   (K=3): %d native conflicts — one per 4-clique cell\n",
				res.Conflicts)
		case 4:
			fmt.Printf("quadruple patterning (K=4): %d conflicts — Fig. 1(b): one more mask resolves the cell\n",
				res.Conflicts)
		}
	}
}
