// Densegrid reproduces the Fig. 7 observation of the DAC'14 paper: with a
// minimum coloring distance of 2·sm + wm = 60 nm, even simple regular
// patterns contain K5 subgraphs — complete graphs on five vertices — so the
// decomposition graph is non-planar (Kuratowski) and the classical
// four-color theorem does not apply. The paper uses this to justify
// algorithms for general graphs rather than planar-graph coloring.
//
// The example builds the five-contact cross pattern, shows the K5, and then
// scans a decreasing coloring distance to find where a dense contact array
// stops being 4-colorable.
//
// Run with:
//
//	go run ./examples/densegrid
package main

import (
	"fmt"
	"log"

	"mpl"
)

func cross(l *mpl.Layout, ox, oy int) {
	for _, d := range []mpl.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: -40, Y: 0}, {X: 0, Y: 40}, {X: 0, Y: -40}} {
		l.AddRect(mpl.Rect{X0: ox + d.X, Y0: oy + d.Y, X1: ox + d.X + 20, Y1: oy + d.Y + 20})
	}
}

func main() {
	// Part 1: the K5 cross.
	l := mpl.NewLayout("fig7-cross")
	cross(l, 0, 0)
	g, err := mpl.BuildGraph(l, mpl.BuildOptions{MinS: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross pattern at mins=60: %d vertices, %d conflict edges",
		g.Stats.Fragments, g.Stats.ConflictEdges)
	if g.Stats.ConflictEdges == 10 {
		fmt.Println("  → K5 (complete graph, non-planar)")
	} else {
		fmt.Println()
	}
	res, err := mpl.DecomposeGraph(g, mpl.Options{K: 4, Algorithm: mpl.ILP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact 4-coloring leaves %d native conflict(s): K5 needs 5 masks\n\n", res.Conflicts)

	// Part 2: a dense 6×6 contact array at 60 nm pitch, scanning mins.
	arr := mpl.NewLayout("dense-array")
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			arr.AddRect(mpl.Rect{X0: x * 60, Y0: y * 60, X1: x*60 + 20, Y1: y*60 + 20})
		}
	}
	fmt.Println("6×6 contact array at 60 nm pitch, exact QP decomposition vs mins:")
	fmt.Printf("%6s %12s %8s\n", "minS", "conflictE", "cn#")
	for _, minS := range []int{40, 60, 80, 100} {
		res, err := mpl.Decompose(arr, mpl.Options{
			K:         4,
			Algorithm: mpl.SDPBacktrack,
			Seed:      3,
			Build:     mpl.BuildOptions{MinS: minS},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %12d %8d\n", minS, res.Graph.Stats.ConflictEdges, res.Conflicts)
	}
	fmt.Println("\nAt mins=100 the array's conflict graph contains K5s and beyond —")
	fmt.Println("native conflicts appear that no 4-mask assignment can remove.")
}
