// Kpatterning demonstrates Section 5 of the DAC'14 paper: the framework
// generalizes beyond quadruple patterning to any K-patterning layout
// decomposition. It decomposes one dense synthetic benchmark for K = 4, 5
// and 6 masks, with the minimum coloring distance growing per the paper's
// Section 6 settings (80 nm for QP, 110 nm for pentuple patterning), and
// shows how conflicts fall as masks are added while the graph gets denser.
//
// Run with:
//
//	go run ./examples/kpatterning
package main

import (
	"fmt"
	"log"

	"mpl"
)

func main() {
	l, err := mpl.GenerateBenchmark("C6288", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit C6288 (scale 0.5): %d features\n\n", len(l.Features))
	fmt.Printf("%3s %6s %10s %10s %8s %8s %10s\n",
		"K", "minS", "conflictE", "GHpieces", "cn#", "st#", "CPU(s)")

	for _, k := range []int{4, 5, 6} {
		// Each K has its own coloring distance, so the decomposition graph
		// itself changes (denser for larger K) — the paper's Section 6.
		g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: k})
		if err != nil {
			log.Fatal(err)
		}
		res, err := mpl.DecomposeGraph(g, mpl.Options{
			K:         k,
			Algorithm: mpl.SDPBacktrack,
			Seed:      11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d %6d %10d %10d %8d %8d %10.3f\n",
			k, g.MinS, g.Stats.ConflictEdges, res.DivisionStats.GHComponents,
			res.Conflicts, res.Stitches, res.AssignTime.Seconds())
	}

	fmt.Println("\nLarger K tolerates denser conflict graphs: the (K−1)-cut division")
	fmt.Println("(Theorem 2) and the K-vector SDP relaxation (Eq. 3) apply unchanged.")
}
