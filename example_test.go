package mpl_test

import (
	"context"
	"fmt"
	"log"

	"mpl"
)

// crossAndWire builds a small layout with both objective terms in play: a
// Fig. 7-style cross cluster of five contacts at 40 nm pitch (a K5 under
// the paper's 80 nm quadruple-patterning coloring distance, so one conflict
// is unavoidable with four masks) and, far away, a wire whose ends are
// pinned by neighbors so it carries one stitch candidate.
func crossAndWire() *mpl.Layout {
	l := mpl.NewLayout("example")
	// Cross cluster: center contact plus four at ±40 nm.
	for _, d := range [][2]int{{0, 0}, {40, 0}, {-40, 0}, {0, 40}, {0, -40}} {
		l.AddRect(mpl.Rect{X0: d[0], Y0: d[1], X1: d[0] + 20, Y1: d[1] + 20})
	}
	// A wire with conflicting neighbors near both ends; the uncovered middle
	// admits one projection-derived stitch candidate.
	l.AddRect(mpl.Rect{X0: 400, Y0: 0, X1: 800, Y1: 20})
	l.AddRect(mpl.Rect{X0: 400, Y0: 60, X1: 460, Y1: 80})
	l.AddRect(mpl.Rect{X0: 740, Y0: 60, X1: 800, Y1: 80})
	return l
}

// ExampleDecompose runs the full Fig. 2 flow on a tiny layout and prints
// the Table-1 objective values (conflict and stitch counts).
func ExampleDecompose() {
	l := crossAndWire()

	res, err := mpl.Decompose(l, mpl.Options{K: 4, Algorithm: mpl.SDPBacktrack, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Graph.Stats
	fmt.Printf("features=%d fragments=%d conflictEdges=%d stitchEdges=%d\n",
		st.Features, st.Fragments, st.ConflictEdges, st.StitchEdges)
	fmt.Printf("conflicts=%d stitches=%d proven=%v\n", res.Conflicts, res.Stitches, res.Proven)

	// Cross-check the coloring against raw geometry.
	conf, stit, err := mpl.Verify(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified conflicts=%d stitches=%d\n", conf, stit)
	// Output:
	// features=8 fragments=9 conflictEdges=12 stitchEdges=1
	// conflicts=1 stitches=0 proven=true
	// verified conflicts=1 stitches=0
}

// ExampleDecomposeContext shows the deadline contract: a cancelled (or
// deadline-expired) context still yields a valid best-effort coloring —
// solver-stage pieces fall back to the linear-time engine, Result.Degraded
// counts them, and Proven turns false — instead of an error, so a serving
// layer always has an answer.
func ExampleDecomposeContext() {
	l := mpl.NewLayout("deadline")
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			// A 50 nm-pitch grid keeps conflict degree ≥ 4, so the graph
			// survives peeling and actually reaches the solver stage.
			l.AddRect(mpl.Rect{X0: c * 50, Y0: r * 50, X1: c*50 + 20, Y1: r*50 + 20})
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already passed when the request arrives

	res, err := mpl.DecomposeContext(ctx, l, mpl.Options{K: 4, Algorithm: mpl.SDPBacktrack})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valid=%v degraded=%v proven=%v\n",
		len(res.Colors) == len(res.Graph.Fragments), res.Degraded > 0, res.Proven)
	// Output:
	// valid=true degraded=true proven=false
}

// Example_algorithmSweep builds the decomposition graph once (with the
// parallel sharded builder) and sweeps the paper's four color-assignment
// engines over it, mirroring examples/quickstart and the cmd/evaluate
// tables.
func Example_algorithmSweep() {
	l := crossAndWire()

	g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, alg := range []mpl.Algorithm{mpl.ILP, mpl.SDPBacktrack, mpl.SDPGreedy, mpl.Linear} {
		res, err := mpl.DecomposeGraph(g, mpl.Options{K: 4, Algorithm: alg, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s conflicts=%d stitches=%d\n", alg, res.Conflicts, res.Stitches)
	}
	// Output:
	// ILP           conflicts=1 stitches=0
	// SDP+Backtrack conflicts=1 stitches=0
	// SDP+Greedy    conflicts=1 stitches=0
	// Linear        conflicts=1 stitches=0
}

// ExampleApplyEdits shows incremental (ECO) re-decomposition: after a full
// Decompose, removing one arm of the K5 cross is applied through
// mpl.ApplyEdits, which rebuilds only the dirty region and re-solves only
// the component it touches — the wire's component keeps its colors — while
// returning exactly what a from-scratch run of the edited layout would.
func ExampleApplyEdits() {
	l := crossAndWire()
	opts := mpl.Options{K: 4, Algorithm: mpl.Linear}
	res, err := mpl.Decompose(l, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: conflicts=%d stitches=%d\n", res.Conflicts, res.Stitches)

	// The ECO: delete the cross's bottom arm (feature 4) — the K5 becomes a
	// 4-colorable K4, so the native conflict disappears.
	edits := []mpl.Edit{{Op: mpl.EditRemove, Feature: 4}}
	newL, inc, stats, err := mpl.ApplyEdits(l, res, edits, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:  conflicts=%d stitches=%d (features %d -> %d)\n",
		inc.Conflicts, inc.Stitches, len(l.Features), len(newL.Features))
	fmt.Printf("reused %d fragments, re-solved %d of %d components\n",
		stats.ReusedFragments, stats.ResolvedComponents, stats.Components)

	// The incremental result is observably identical to a from-scratch run.
	scratch, err := mpl.Decompose(newL, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches from-scratch: %v\n",
		inc.Conflicts == scratch.Conflicts && inc.Stitches == scratch.Stitches)
	// Output:
	// before: conflicts=1 stitches=0
	// after:  conflicts=0 stitches=0 (features 8 -> 7)
	// reused 8 fragments, re-solved 1 of 2 components
	// matches from-scratch: true
}
