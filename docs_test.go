package mpl_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdRef matches a markdown-file reference inside a comment, e.g. DESIGN.md,
// docs/API.md, or EXPERIMENTS.md.
var mdRef = regexp.MustCompile(`[A-Za-z0-9_./-]*[A-Za-z0-9_-]\.md\b`)

// urlRef matches URLs inside comment text; .md paths under a URL point at
// external sites, not repo files, and must not be integrity-checked.
var urlRef = regexp.MustCompile(`[a-z][a-z0-9+.-]*://\S+`)

// TestDocCommentReferencesResolve is the docs-integrity gate: every *.md
// file referenced from a Go comment anywhere in the repository must exist
// (relative to the repo root), so documentation pointers like "DESIGN.md §5"
// can never dangle again. CI runs this as a dedicated step.
func TestDocCommentReferencesResolve(t *testing.T) {
	root, err := os.Getwd() // the root package lives at the repo root
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string][]string{} // md path -> referencing files
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			// Only comment text: doc references live in comments, and
			// scanning string literals would flag synthesized names. A "//"
			// preceded by ':' is a URL scheme inside a literal ("https://"),
			// not a comment start — skip past it.
			idx, off := -1, 0
			for {
				i := strings.Index(line[off:], "//")
				if i < 0 {
					break
				}
				at := off + i
				if at > 0 && line[at-1] == ':' {
					off = at + 2
					continue
				}
				idx = at
				break
			}
			if idx < 0 {
				continue
			}
			comment := urlRef.ReplaceAllString(line[idx:], "")
			for _, m := range mdRef.FindAllString(comment, -1) {
				rel, _ := filepath.Rel(root, path)
				refs[m] = append(refs[m], rel)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no markdown references found in Go comments; the scanner is broken")
	}
	for md, files := range refs {
		if _, err := os.Stat(filepath.Join(root, md)); err != nil {
			t.Errorf("dangling doc reference %q (from %s)", md, strings.Join(dedup(files), ", "))
		}
	}
}

// TestInternalPackageDocs: every internal/* package must carry a
// package-level doc comment ("// Package <name> ...") in at least one of
// its non-test files, so `go doc` is useful for every layer of the
// pipeline.
func TestInternalPackageDocs(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found")
	}
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		pkg := filepath.Base(dir)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), "// Package "+pkg+" ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("package internal/%s has no package-level doc comment", pkg)
		}
	}
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
