package mpl_test

import (
	"path/filepath"
	"testing"

	"mpl"
)

func TestQuickstartFlow(t *testing.T) {
	l := mpl.NewLayout("demo")
	// Fig. 1's four-contact cluster.
	for _, p := range []mpl.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 0, Y: 40}, {X: 40, Y: 40}} {
		l.AddRect(mpl.Rect{X0: p.X, Y0: p.Y, X1: p.X + 20, Y1: p.Y + 20})
	}
	res, err := mpl.Decompose(l, mpl.Options{K: 4, Algorithm: mpl.SDPBacktrack})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0 under QPL", res.Conflicts)
	}
	masks := res.Masks()
	if len(masks) != 4 {
		t.Fatalf("masks = %d", len(masks))
	}
	conf, stit, err := mpl.Verify(res)
	if err != nil || conf != res.Conflicts || stit != res.Stitches {
		t.Fatalf("verify = %d/%d err=%v", conf, stit, err)
	}
}

func TestAllAlgorithmsOnBenchmark(t *testing.T) {
	l, err := mpl.GenerateBenchmark("C432", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []mpl.Algorithm{mpl.ILP, mpl.SDPBacktrack, mpl.SDPGreedy, mpl.Linear} {
		res, err := mpl.DecomposeGraph(g, mpl.Options{K: 4, Algorithm: alg, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Colors) != len(g.Fragments) {
			t.Fatalf("%v: %d colors for %d fragments", alg, len(res.Colors), len(g.Fragments))
		}
	}
}

func TestBenchmarkSuiteAccessors(t *testing.T) {
	suite := mpl.BenchmarkSuite()
	if len(suite) != 15 {
		t.Fatalf("suite = %d circuits", len(suite))
	}
	if len(mpl.PentupleSuite()) != 6 {
		t.Fatalf("pentuple suite = %d", len(mpl.PentupleSuite()))
	}
	// Mutating the returned slices must not affect the library.
	suite[0].Name = "mutated"
	if mpl.BenchmarkSuite()[0].Name == "mutated" {
		t.Fatal("BenchmarkSuite exposes internal storage")
	}
	if _, err := mpl.GenerateBenchmark("nope", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	a, err := mpl.ParseAlgorithm("linear")
	if err != nil || a != mpl.Linear {
		t.Fatalf("ParseAlgorithm = %v, %v", a, err)
	}
}

func TestReadLayoutSniffsBothFormats(t *testing.T) {
	l := mpl.NewLayout("sniff")
	l.AddRect(mpl.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})
	dir := t.TempDir()
	tp := filepath.Join(dir, "a.lay")
	bp := filepath.Join(dir, "a.layb")
	if err := l.WriteFile(tp); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBinaryFile(bp); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tp, bp} {
		got, err := mpl.ReadLayout(p)
		if err != nil || len(got.Features) != 1 {
			t.Fatalf("%s: %v (%d features)", p, err, len(got.Features))
		}
	}
}
