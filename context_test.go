package mpl_test

import (
	"context"
	"testing"
	"time"

	"mpl"
)

// gridLayout builds an n×n grid of squares at 50 nm pitch: orthogonal and
// diagonal gaps are both under the 80 nm quadruple-patterning coloring
// distance, so interior vertices keep conflict degree ≥ 4 and the graph
// survives low-degree peeling all the way to the solver stage.
func gridLayout(n int) *mpl.Layout {
	l := mpl.NewLayout("grid")
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			l.AddRect(mpl.Rect{X0: c * 50, Y0: r * 50, X1: c*50 + 20, Y1: r*50 + 20})
		}
	}
	return l
}

// TestDecomposeContextAlreadyCancelled: with a context cancelled before the
// call, every engine must return promptly with a valid coloring in which
// every solver-stage piece took the linear fallback.
func TestDecomposeContextAlreadyCancelled(t *testing.T) {
	algs := []struct {
		name string
		alg  mpl.Algorithm
	}{
		{"ILP", mpl.ILP},
		{"SDPBacktrack", mpl.SDPBacktrack},
		{"SDPGreedy", mpl.SDPGreedy},
		{"Linear", mpl.Linear},
	}
	for _, tc := range algs {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			l := gridLayout(8)
			start := time.Now()
			res, err := mpl.DecomposeContext(ctx, l, mpl.Options{K: 4, Algorithm: tc.alg})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if elapsed > 2*time.Second {
				t.Fatalf("cancelled call took %v, want prompt return", elapsed)
			}
			if res.Degraded == 0 {
				t.Fatalf("expected linear fallback on every solver piece, stats %+v", res.DivisionStats)
			}
			if res.Proven {
				t.Fatal("a degraded result must not claim to be proven")
			}
			conf, stit, err := mpl.Verify(res)
			if err != nil {
				t.Fatal(err)
			}
			if conf != res.Conflicts || stit != res.Stitches {
				t.Fatalf("fallback coloring inconsistent: recount %d/%d vs %d/%d", conf, stit, res.Conflicts, res.Stitches)
			}
		})
	}
}

// TestDecomposeContextDeadline is the serving-latency contract: a 50 ms
// deadline on a dense Table-2-scale circuit must come back quickly (the
// checkpoint granularity of in-flight solves plus the linear fallback for
// the rest, well under the uncancelled multi-second solve) with a valid
// partial-quality coloring.
func TestDecomposeContextDeadline(t *testing.T) {
	l, err := mpl.GenerateBenchmark("C6288", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const deadline = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res, err := mpl.DecomposeContext(ctx, l, mpl.Options{K: 5, Algorithm: mpl.SDPBacktrack})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// Locally this lands within ~2× the deadline; the bound is slacker so
	// a loaded CI machine cannot flake it, but still far below the
	// ~second-scale full solve it replaces.
	if elapsed > 10*deadline {
		t.Fatalf("deadline run took %v, want well under %v", elapsed, 10*deadline)
	}
	if res.Degraded == 0 || res.Proven {
		t.Fatalf("expected a degraded unproven result, got degraded=%d proven=%v", res.Degraded, res.Proven)
	}
	conf, stit, err := mpl.Verify(res)
	if err != nil {
		t.Fatal(err)
	}
	if conf != res.Conflicts || stit != res.Stitches {
		t.Fatalf("partial-quality coloring inconsistent: recount %d/%d vs %d/%d", conf, stit, res.Conflicts, res.Stitches)
	}
	t.Logf("deadline %v: returned in %v, degraded pieces %d, cn#=%d st#=%d",
		deadline, elapsed, res.Degraded, res.Conflicts, res.Stitches)
}

// TestDecomposeContextBackgroundMatchesDecompose: an uncancelled context
// must change nothing relative to the plain API.
func TestDecomposeContextBackgroundMatchesDecompose(t *testing.T) {
	l := gridLayout(6)
	opts := mpl.Options{K: 4, Algorithm: mpl.SDPBacktrack, Seed: 3}
	r1, err := mpl.Decompose(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mpl.DecomposeContext(context.Background(), l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Conflicts != r2.Conflicts || r1.Stitches != r2.Stitches || r2.Degraded != 0 {
		t.Fatalf("context API diverges: %d/%d vs %d/%d (degraded %d)",
			r1.Conflicts, r1.Stitches, r2.Conflicts, r2.Stitches, r2.Degraded)
	}
	for i := range r1.Colors {
		if r1.Colors[i] != r2.Colors[i] {
			t.Fatalf("color %d differs", i)
		}
	}
}
