// Benchmark harness regenerating the DAC'14 paper's evaluation:
//
//	BenchmarkTable1*    — Table 1 (quadruple patterning, four engines)
//	BenchmarkTable2*    — Table 2 (pentuple patterning, three engines)
//	BenchmarkAblation*  — design-choice ablations from DESIGN.md §4
//	Benchmark<module>   — micro-benchmarks of the substrate layers
//
// Benchmarks run the suite at a reduced scale so `go test -bench=.`
// finishes in minutes; `cmd/evaluate` regenerates the full-scale tables
// (see EXPERIMENTS.md for the recorded paper-vs-measured comparison).
package mpl_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mpl"
	"mpl/internal/benchrec"
	"mpl/internal/coloring"
	"mpl/internal/division"
	"mpl/internal/ghtree"
	"mpl/internal/graph"
	"mpl/internal/maxflow"
	"mpl/internal/pipeline"
	"mpl/internal/sdp"
	"mpl/internal/synth"
)

const benchScale = 0.2

// table1Algorithms mirrors the paper's Table 1 columns.
var table1Algorithms = []mpl.Algorithm{mpl.ILP, mpl.SDPBacktrack, mpl.SDPGreedy, mpl.Linear}

// table2Algorithms mirrors Table 2 (no ILP exists for K=5 in the paper).
var table2Algorithms = []mpl.Algorithm{mpl.SDPBacktrack, mpl.SDPGreedy, mpl.Linear}

// benchDecompose measures color assignment on a pre-built graph and
// reports conflicts/stitches like the paper's cn#/st# columns.
func benchDecompose(b *testing.B, g *mpl.DecompGraph, k int, alg mpl.Algorithm) {
	b.Helper()
	var conf, stit int
	for i := 0; i < b.N; i++ {
		res, err := mpl.DecomposeGraph(g, mpl.Options{
			K:            k,
			Algorithm:    alg,
			Seed:         1,
			ILPTimeLimit: 10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		conf, stit = res.Conflicts, res.Stitches
	}
	b.ReportMetric(float64(conf), "cn")
	b.ReportMetric(float64(stit), "st")
}

func buildBenchGraph(b *testing.B, circuit string, k int) *mpl.DecompGraph {
	b.Helper()
	l, err := mpl.GenerateBenchmark(circuit, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: k})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable1 regenerates Table 1 rows: every circuit × every engine.
func BenchmarkTable1(b *testing.B) {
	for _, spec := range mpl.BenchmarkSuite() {
		g := buildBenchGraph(b, spec.Name, 4)
		for _, alg := range table1Algorithms {
			b.Run(fmt.Sprintf("%s/%v", spec.Name, alg), func(b *testing.B) {
				benchDecompose(b, g, 4, alg)
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2 rows: the six densest circuits under
// pentuple patterning (K=5, mins=110).
func BenchmarkTable2(b *testing.B) {
	for _, name := range mpl.PentupleSuite() {
		g := buildBenchGraph(b, name, 5)
		for _, alg := range table2Algorithms {
			b.Run(fmt.Sprintf("%s/%v", name, alg), func(b *testing.B) {
				benchDecompose(b, g, 5, alg)
			})
		}
	}
}

// BenchmarkAblationGHTree measures SDP+Backtrack with and without GH-tree
// (K−1)-cut division on a macro-heavy circuit (DESIGN.md §4 ablation).
func BenchmarkAblationGHTree(b *testing.B) {
	g := buildBenchGraph(b, "S15850", 4)
	for _, disable := range []bool{false, true} {
		name := "gh-on"
		if disable {
			name = "gh-off"
		}
		b.Run(name, func(b *testing.B) {
			var conf int
			for i := 0; i < b.N; i++ {
				res, err := mpl.DecomposeGraph(g, mpl.Options{
					K:         4,
					Algorithm: mpl.SDPBacktrack,
					Seed:      1,
					Division:  division.Options{DisableGHTree: disable},
				})
				if err != nil {
					b.Fatal(err)
				}
				conf = res.Conflicts
			}
			b.ReportMetric(float64(conf), "cn")
		})
	}
}

// BenchmarkAblationThreshold sweeps Algorithm 1's merge threshold t_th.
func BenchmarkAblationThreshold(b *testing.B) {
	g := buildBenchGraph(b, "C6288", 4)
	for _, tth := range []float64{0.7, 0.8, 0.9, 0.99} {
		b.Run(fmt.Sprintf("tth=%.2f", tth), func(b *testing.B) {
			var conf int
			for i := 0; i < b.N; i++ {
				res, err := mpl.DecomposeGraph(g, mpl.Options{
					K:         4,
					Algorithm: mpl.SDPBacktrack,
					Threshold: tth,
					Seed:      1,
				})
				if err != nil {
					b.Fatal(err)
				}
				conf = res.Conflicts
			}
			b.ReportMetric(float64(conf), "cn")
		})
	}
}

// BenchmarkGraphConstruction measures decomposition-graph building
// (conflict edges, stitch candidates, friend pairs) on a mid-size circuit.
func BenchmarkGraphConstruction(b *testing.B) {
	l, err := mpl.GenerateBenchmark("C7552", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGraphWorkers measures the tile-sharded parallel graph build
// (BuildOptions.Workers) on a large synthetic layout — S38417 at double
// scale, ~117k fragments — the wall-clock speedup claim of DESIGN.md §3.
// The split and edge stages (~3/4 of a serial build) shard across the pool;
// on a multi-core machine workers=8 lands well above 2× over workers=1. The
// graph is identical at every worker count (TestParallelBuildIdentical), so
// the sub-benchmarks differ only in wall clock.
func BenchmarkBuildGraphWorkers(b *testing.B) {
	l, err := mpl.GenerateBenchmark("S38417", 2.0)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var frags int
			for i := 0; i < b.N; i++ {
				g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				frags = g.Stats.Fragments
			}
			b.ReportMetric(float64(frags), "fragments")
		})
	}
}

// BenchmarkTrajectorySmoke is the bench-side entry point of the benchmark
// trajectory (EXPERIMENTS.md): it runs one small circuit through build +
// every engine and, when MPL_BENCH_JSON is set, records a
// benchrec-formatted file there — the same schema `cmd/evaluate -json`
// writes, so CI can produce trajectory artifacts from either path.
func BenchmarkTrajectorySmoke(b *testing.B) {
	const circuit = "C432"
	l, err := mpl.GenerateBenchmark(circuit, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: 4, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		rec := &benchrec.Run{
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Label:     "bench-smoke",
			GoVersion: runtime.Version(),
			NumCPU:    runtime.NumCPU(),
			Maxprocs:  runtime.GOMAXPROCS(0),
			K:         4, Scale: benchScale, Seed: 1, BuildWorkers: 2, DivWorkers: 1,
		}
		c := benchrec.CircuitOf(circuit, g.Stats)
		for _, alg := range table1Algorithms {
			res, err := mpl.DecomposeGraph(g, mpl.Options{K: 4, Algorithm: alg, Seed: 1, ILPTimeLimit: 10 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			c.Algorithms = append(c.Algorithms, benchrec.AlgorithmRunOf(alg.String(), res))
		}
		rec.Circuits = append(rec.Circuits, c)
		if path := os.Getenv("MPL_BENCH_JSON"); path != "" {
			if err := rec.WriteFile(path); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSDPRelaxation measures the low-rank SDP solver on a dense
// 60-vertex component (the macro regime of the big Table 1 circuits).
func BenchmarkSDPRelaxation(b *testing.B) {
	g := kingGraph(15, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sdp.Solve(g, sdp.Options{K: 4, Alpha: 0.1, Seed: int64(i)})
	}
}

// BenchmarkSDPBacktrackMapping measures Algorithm 1's merge + backtrack
// stage given a solved relaxation.
func BenchmarkSDPBacktrackMapping(b *testing.B) {
	g := kingGraph(15, 4)
	sol := sdp.Solve(g, sdp.Options{K: 4, Alpha: 0.1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coloring.SDPBacktrack(g, sol, 4, 0.1, 0.9, 0)
	}
}

// BenchmarkLinearAssignment measures Algorithm 2 on a large sparse graph.
func BenchmarkLinearAssignment(b *testing.B) {
	g := buildBenchGraph(b, "S38417", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coloring.Linear(g.G, coloring.LinearOptions{K: 4, Alpha: 0.1})
	}
}

// BenchmarkGHTreeConstruction measures Gomory–Hu construction (Gusfield's
// n−1 max-flows via Dinic) on a dense component.
func BenchmarkGHTreeConstruction(b *testing.B) {
	g := kingGraph(15, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ghtree.BuildFromConflictGraph(g)
	}
}

// BenchmarkDinicMaxflow measures a single max-flow on the same component.
func BenchmarkDinicMaxflow(b *testing.B) {
	g := kingGraph(15, 4)
	edges := g.ConflictEdges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := maxflow.NewNetwork(g.N())
		for _, e := range edges {
			nw.AddUndirectedEdge(e.U, e.V, 1)
		}
		nw.MaxFlow(0, g.N()-1)
	}
}

// BenchmarkILPExact measures the exact baseline on a paper-small component
// (the regime where the paper's Table 1 reports sub-second ILP runs).
func BenchmarkILPExact(b *testing.B) {
	g := kingGraph(5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coloring.ILPAssign(g, 4, 0.1, time.Minute)
	}
}

// BenchmarkDivisionPipeline measures the full Section 4 pipeline with a
// free solver, isolating division overhead from engine cost.
func BenchmarkDivisionPipeline(b *testing.B) {
	g := buildBenchGraph(b, "S35932", 4)
	free := func(sub *graph.Graph, _ *pipeline.Scratch) []int { return make([]int, sub.N()) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		division.Decompose(g.G, division.Options{K: 4, Alpha: 0.1}, free)
	}
}

// BenchmarkSyntheticGeneration measures benchmark layout generation.
func BenchmarkSyntheticGeneration(b *testing.B) {
	spec, _ := synth.ByName("S38417")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synth.Generate(spec, benchScale)
	}
}

// kingGraph builds a w×h king-graph (the macro component shape).
func kingGraph(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for dy := 0; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if (dx != 0 || dy != 0) && nx >= 0 && nx < w && ny >= 0 && ny < h && id(nx, ny) > id(x, y) {
						g.AddConflict(id(x, y), id(nx, ny))
					}
				}
			}
		}
	}
	return g
}
