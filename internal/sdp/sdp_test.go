package sdp

import (
	"context"
	"math"
	"testing"

	"mpl/internal/graph"
	"mpl/internal/matrix"
	"mpl/internal/pipeline"
)

func TestColoringVectorsInnerProducts(t *testing.T) {
	// Fig. 3: for K=4, four unit vectors with pairwise inner product −1/3.
	for k := 2; k <= 8; k++ {
		vecs := IdealVectors(k)
		if len(vecs) != k {
			t.Fatalf("K=%d: %d vectors", k, len(vecs))
		}
		want := -1.0 / float64(k-1)
		for i := 0; i < k; i++ {
			if math.Abs(matrix.Norm(vecs[i])-1) > 1e-9 {
				t.Fatalf("K=%d: vector %d has norm %v", k, i, matrix.Norm(vecs[i]))
			}
			for j := i + 1; j < k; j++ {
				got := matrix.Dot(vecs[i], vecs[j])
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("K=%d: inner product (%d,%d) = %v, want %v", k, i, j, got, want)
				}
			}
		}
	}
}

func TestIdealVectorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IdealVectors(1) did not panic")
		}
	}()
	IdealVectors(1)
}

func TestEmptyGraph(t *testing.T) {
	sol := Solve(graph.New(0), Options{K: 4, Alpha: 0.1})
	if len(sol.Vectors) != 0 || sol.Obj != 0 {
		t.Fatalf("empty solve = %+v", sol)
	}
}

func TestSingleVertex(t *testing.T) {
	sol := Solve(graph.New(1), Options{K: 4, Alpha: 0.1, Seed: 1})
	if len(sol.Vectors) != 1 {
		t.Fatalf("vectors = %d", len(sol.Vectors))
	}
	if math.Abs(matrix.Norm(sol.Vectors[0])-1) > 1e-9 {
		t.Fatalf("vector not unit: %v", sol.Vectors[0])
	}
}

func TestKInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=1 did not panic")
		}
	}()
	Solve(graph.New(2), Options{K: 1})
}

// TestConflictPairSeparates: two vertices joined by a conflict edge should
// reach x_ij ≈ −1/(K−1), the relaxation optimum.
func TestConflictPairSeparates(t *testing.T) {
	for _, k := range []int{4, 5} {
		g := graph.New(2)
		g.AddConflict(0, 1)
		sol := Solve(g, Options{K: k, Alpha: 0.1, Seed: 7})
		want := -1.0 / float64(k-1)
		if got := sol.Pair(0, 1); got > want+0.05 {
			t.Fatalf("K=%d: x01 = %v, want ≈ %v", k, got, want)
		}
		if sol.MaxViolation > 0.05 {
			t.Fatalf("K=%d: violation %v", k, sol.MaxViolation)
		}
	}
}

// TestStitchPairAligns: a stitch edge with no conflicts drives x_ij → 1.
func TestStitchPairAligns(t *testing.T) {
	g := graph.New(2)
	g.AddStitch(0, 1)
	sol := Solve(g, Options{K: 4, Alpha: 0.1, Seed: 3})
	if got := sol.Pair(0, 1); got < 0.99 {
		t.Fatalf("x01 = %v, want ≈ 1", got)
	}
}

// TestK5RelaxationValue: for the complete graph K5 with K=4 colors, any
// coloring has ≥ 1 conflict. The SDP lower bound at the constraint floor is
// Σ x_ij = 10·(−1/3) ≈ −3.33; Eq. (1)'s conflict estimate
// Σ (3/4)(x_ij + 1/3) is then ≥ 0. The solver must reach a near-feasible
// point with objective close to the floor.
func TestK5RelaxationValue(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	sol := Solve(g, Options{K: 4, Alpha: 0.1, Seed: 11, Restarts: 4})
	if sol.MaxViolation > 0.05 {
		t.Fatalf("violation = %v", sol.MaxViolation)
	}
	// Feasible floor is −10/3; discrete optimum corresponds to about
	// −10/3 + 4/3 (one same-color pair at +1 instead of −1/3).
	if sol.Obj < -10.0/3-0.1 {
		t.Fatalf("objective %v below the feasible floor", sol.Obj)
	}
	if sol.Obj > -2.0 {
		t.Fatalf("objective %v too far above the relaxation optimum", sol.Obj)
	}
}

// TestK4CliqueSplitsCleanly: K4 with 4 colors is exactly colorable; the
// relaxation should reach ≈ Σ x_ij = 6·(−1/3) = −2 and the Gram matrix must
// be PSD (it is a Gram matrix by construction — the check guards the
// matrix plumbing).
func TestK4CliqueSplitsCleanly(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddConflict(i, j)
		}
	}
	sol := Solve(g, Options{K: 4, Alpha: 0.1, Seed: 5})
	if math.Abs(sol.Obj-(-2)) > 0.1 {
		t.Fatalf("objective = %v, want ≈ -2", sol.Obj)
	}
	if !sol.X().IsPSD(1e-7) {
		t.Fatal("solution Gram matrix not PSD")
	}
	for i := range sol.Vectors {
		if math.Abs(matrix.Norm(sol.Vectors[i])-1) > 1e-9 {
			t.Fatalf("vector %d not unit", i)
		}
	}
}

// TestMergeSignalQuality: two disjoint conflict cliques bridged by one
// stitch edge. Vertices inside a 4-clique (with K=4) must be mutually
// separated while the stitch pair stays aligned — the exact signal
// SDP+Backtrack thresholds at 0.9.
func TestMergeSignalQuality(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddConflict(i, j)
			g.AddConflict(4+i, 4+j)
		}
	}
	g.AddStitch(3, 4)
	sol := Solve(g, Options{K: 4, Alpha: 0.1, Seed: 13, Restarts: 4})
	if got := sol.Pair(3, 4); got < 0.8 {
		t.Fatalf("stitch pair x = %v, want high", got)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if got := sol.Pair(i, j); got > 0 {
				t.Fatalf("clique pair (%d,%d) x = %v, want ≈ -1/3", i, j, got)
			}
		}
	}
}

// TestDiscreteObjectiveIdentity: Eq. (1)/(3): at discrete points (vectors
// chosen among IdealVectors), (K−1)/K·Σ_CE (x_ij + 1/(K−1)) counts conflicts
// and (K−1)/K·Σ_SE (1 − x_ij) counts stitches (scaled by α).
func TestDiscreteObjectiveIdentity(t *testing.T) {
	for _, k := range []int{4, 5} {
		ideal := IdealVectors(k)
		g := graph.New(6)
		g.AddConflict(0, 1)
		g.AddConflict(1, 2)
		g.AddConflict(2, 3)
		g.AddStitch(3, 4)
		g.AddStitch(4, 5)
		colors := []int{0, 1, 1, 0, 0, k - 1} // conflict at (1,2); stitches differ at (3,4)? no: c3=0,c4=0 same; (4,5) differ
		wantConf := 1.0
		wantStitch := 1.0
		scale := float64(k-1) / float64(k)
		confSum, stitSum := 0.0, 0.0
		for _, e := range g.ConflictEdges() {
			x := matrix.Dot(ideal[colors[e.U]], ideal[colors[e.V]])
			confSum += scale * (x + 1.0/float64(k-1))
		}
		for _, e := range g.StitchEdges() {
			x := matrix.Dot(ideal[colors[e.U]], ideal[colors[e.V]])
			stitSum += scale * (1 - x)
		}
		if math.Abs(confSum-wantConf) > 1e-9 {
			t.Fatalf("K=%d: conflict estimate %v, want %v", k, confSum, wantConf)
		}
		if math.Abs(stitSum-wantStitch) > 1e-9 {
			t.Fatalf("K=%d: stitch estimate %v, want %v", k, stitSum, wantStitch)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.New(6)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddConflict(2, 0)
	g.AddStitch(3, 4)
	g.AddConflict(4, 5)
	a := Solve(g, Options{K: 4, Alpha: 0.1, Seed: 21})
	b := Solve(g, Options{K: 4, Alpha: 0.1, Seed: 21})
	for i := range a.Vectors {
		for j := range a.Vectors[i] {
			if a.Vectors[i][j] != b.Vectors[i][j] {
				t.Fatal("same seed produced different solutions")
			}
		}
	}
}

func TestSextupleRelaxation(t *testing.T) {
	// K7 clique with K=6 colors: feasible floor is 21·(−1/5) = −4.2.
	g := graph.New(7)
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			g.AddConflict(i, j)
		}
	}
	sol := Solve(g, Options{K: 6, Alpha: 0.1, Seed: 5, Restarts: 4})
	if sol.MaxViolation > 0.05 {
		t.Fatalf("violation = %v", sol.MaxViolation)
	}
	if sol.Obj < -4.2-0.1 {
		t.Fatalf("objective %v below feasible floor", sol.Obj)
	}
}

func TestExplicitRankOption(t *testing.T) {
	g := graph.New(3)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	sol := Solve(g, Options{K: 4, Alpha: 0.1, Rank: 5, Seed: 2})
	// Rank caps at n.
	if len(sol.Vectors[0]) != 3 {
		t.Fatalf("rank = %d, want capped at n=3", len(sol.Vectors[0]))
	}
	sol = Solve(g, Options{K: 4, Alpha: 0.1, Rank: 2, Seed: 2})
	if len(sol.Vectors[0]) != 2 {
		t.Fatalf("rank = %d, want 2", len(sol.Vectors[0]))
	}
}

func TestRestartsImproveOrMatch(t *testing.T) {
	// More restarts never pick a worse-scoring solution (best-of selection).
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if (i+j)%2 == 0 {
				g.AddConflict(i, j)
			}
		}
	}
	one := Solve(g, Options{K: 4, Alpha: 0.1, Restarts: 1, Seed: 9})
	many := Solve(g, Options{K: 4, Alpha: 0.1, Restarts: 6, Seed: 9})
	// Compare the penalized score proxy: objective + violation weight.
	if many.Obj > one.Obj+50*one.MaxViolation*one.MaxViolation+0.05 {
		t.Fatalf("restarts made things worse: %v vs %v", many.Obj, one.Obj)
	}
}

func TestSolveScratchMatchesSolveContext(t *testing.T) {
	// Pooled workspace must be a pure memory-placement change: the
	// deterministic restart trajectory — and therefore every Gram entry —
	// is bit-identical with and without a scratch arena, and across
	// repeated solves on one arena (stale contents must never leak in).
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}} {
		g.AddConflict(e[0], e[1])
	}
	g.AddStitch(1, 3)
	opts := Options{K: 4, Alpha: 0.1, Seed: 7}
	ref := Solve(g, opts)
	sc := pipeline.NewScratchPool().Get()
	for round := 0; round < 3; round++ {
		got := SolveScratch(context.Background(), g, opts, sc)
		if got.Obj != ref.Obj || got.MaxViolation != ref.MaxViolation {
			t.Fatalf("round %d: obj/viol %v/%v != reference %v/%v", round, got.Obj, got.MaxViolation, ref.Obj, ref.MaxViolation)
		}
		for i := range ref.Vectors {
			for j := range ref.Vectors[i] {
				if got.Vectors[i][j] != ref.Vectors[i][j] {
					t.Fatalf("round %d: vector (%d,%d) = %v, want %v", round, i, j, got.Vectors[i][j], ref.Vectors[i][j])
				}
			}
		}
	}
}
