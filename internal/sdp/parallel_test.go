package sdp_test

// Byte-identity matrix for the parallel restart fan-out: on real component
// graphs cut from the committed benchmark circuits, SolveScratchEnv with a
// parallelism budget must return bit-for-bit the vectors and objective of
// the serial solve — at every K and every restart-worker count. This is the
// tentpole's contract (parallel restarts are a scheduling change, not a
// numerical one), pinned on the workload it exists for: components large
// enough to clear the fan-out's minimum-edges floor.

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"mpl/internal/core"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/pipeline"
	"mpl/internal/sdp"
)

// circuitComponents cuts the largest connected components (by conflict+
// stitch edge count) out of a committed circuit's decomposition graph —
// the exact shapes the dispatch stage hands to the SDP engine.
func circuitComponents(t testing.TB, name string, take int) []*graph.Graph {
	t.Helper()
	l, err := layout.ReadFile(filepath.Join("..", "..", "benchmarks", name+".lay"))
	if err != nil {
		t.Fatal(err)
	}
	dg, err := core.BuildGraph(l, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var subs []*graph.Graph
	for _, c := range dg.G.Components() {
		sub, _ := dg.G.Subgraph(c)
		subs = append(subs, sub)
	}
	edges := func(g *graph.Graph) int { return len(g.ConflictEdges()) + len(g.StitchEdges()) }
	sort.SliceStable(subs, func(a, b int) bool { return edges(subs[a]) > edges(subs[b]) })
	if len(subs) > take {
		subs = subs[:take]
	}
	// The fan-out only engages above its minimum-edges floor; the test is
	// vacuous if the circuit's biggest component is below it.
	if edges(subs[0]) < 32 {
		t.Fatalf("%s: largest component has %d edges, below the fan-out floor", name, edges(subs[0]))
	}
	return subs
}

// BenchmarkSDPRestarts measures the restart loop serially and with the
// budgeted fan-out on the committed suite's biggest single component — the
// straggler shape the tentpole targets. CI's bench-smoke job publishes both
// lines; the parallel/serial wall-time ratio is the dispatch win on a
// one-huge-component workload.
func BenchmarkSDPRestarts(b *testing.B) {
	g := circuitComponents(b, "C880", 1)[0]
	opts := sdp.Options{K: 4, Alpha: 0.1, Seed: 7, Restarts: 8}
	pool := pipeline.NewScratchPool()
	run := func(b *testing.B, env pipeline.Env) {
		sc := pool.Get()
		defer pool.Put(sc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sdp.SolveScratchEnv(context.Background(), g, opts, sc, env)
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, pipeline.Env{Scratch: pool}) })
	b.Run("parallel8", func(b *testing.B) { run(b, restartBudget(pool, 8)) })
}

// restartBudget builds the environment a solve sees when `workers` division
// workers share the pool and all but the caller have gone idle: workers−1
// deposited slots for the restart fan-out to claim.
func restartBudget(pool *pipeline.ScratchPool, workers int) pipeline.Env {
	env := pipeline.Env{Scratch: pool, Budget: pipeline.NewBudget(workers)}
	for i := 0; i < workers-1; i++ {
		env.Budget.Free()
	}
	return env
}

func TestParallelRestartsByteIdentical(t *testing.T) {
	pool := pipeline.NewScratchPool()
	for _, name := range []string{"C432", "C880"} {
		for ci, g := range circuitComponents(t, name, 2) {
			for _, k := range []int{3, 4} {
				opts := sdp.Options{K: k, Alpha: 0.1, Seed: 7, Restarts: 4}
				ref := sdp.Solve(g, opts)
				for _, workers := range []int{1, 2, 8} {
					t.Run(fmt.Sprintf("%s/comp%d/K%d/w%d", name, ci, k, workers), func(t *testing.T) {
						sc := pool.Get()
						defer pool.Put(sc)
						got := sdp.SolveScratchEnv(context.Background(), g, opts, sc, restartBudget(pool, workers))
						if got.Obj != ref.Obj || got.MaxViolation != ref.MaxViolation {
							t.Fatalf("obj/viol %v/%v != serial %v/%v", got.Obj, got.MaxViolation, ref.Obj, ref.MaxViolation)
						}
						for i := range ref.Vectors {
							for j := range ref.Vectors[i] {
								if got.Vectors[i][j] != ref.Vectors[i][j] {
									t.Fatalf("vector (%d,%d) = %v, want %v", i, j, got.Vectors[i][j], ref.Vectors[i][j])
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestParallelRestartsRespectBudget pins the worker-budget invariant from
// the solve's side: with a budget of w, at most w−1 extra slots exist, so
// even a restart-hungry solve (Restarts ≫ w) claims no more than the pool
// offers and returns every claimed slot when it finishes.
func TestParallelRestartsRespectBudget(t *testing.T) {
	g := circuitComponents(t, "C432", 1)[0]
	pool := pipeline.NewScratchPool()
	env := restartBudget(pool, 3)
	sc := pool.Get()
	defer pool.Put(sc)
	sdp.SolveScratchEnv(context.Background(), g, sdp.Options{K: 4, Alpha: 0.1, Seed: 7, Restarts: 8}, sc, env)
	// Both deposited slots must be back: claim them, then verify the pool
	// is dry (a third claim would mean the solve minted a slot).
	if !env.Budget.TryAcquire() || !env.Budget.TryAcquire() {
		t.Fatal("solve did not return its claimed budget slots")
	}
	if env.Budget.TryAcquire() {
		t.Fatal("budget holds more slots than were deposited")
	}
}
