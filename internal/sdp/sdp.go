// Package sdp solves the semidefinite relaxation at the core of the DAC'14
// framework (Eq. (2) for quadruple patterning, Eq. (3) for general K):
//
//	min  Σ_{e_ij ∈ CE} v_i·v_j  −  α · Σ_{e_ij ∈ SE} v_i·v_j
//	s.t. v_i·v_i  =  1            ∀ i ∈ V
//	     v_i·v_j  ≥ −1/(K−1)      ∀ e_ij ∈ CE
//
// The paper solves this with the interior-point solver CSDP. This package
// substitutes a low-rank Burer–Monteiro formulation: the PSD matrix X is
// factored as X = VᵀV with V ∈ R^{r×n}, the unit-norm constraints are
// enforced by explicit renormalization (a Riemannian projection), and the
// conflict-edge inequalities by a smooth quadratic penalty with an
// escalating weight. Projected gradient descent with backtracking line
// search and deterministic multi-restart then minimizes the objective.
// Downstream consumers (SDP+Backtrack's t_th = 0.9 merge threshold,
// SDP+Greedy's descending-x_ij union order) only need the Gram entries
// x_ij = v_i·v_j to near-optimal accuracy, which this delivers on the small
// per-component problems produced by graph division. See DESIGN.md §2 for
// the substitution rationale.
package sdp

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"mpl/internal/graph"
	"mpl/internal/matrix"
	"mpl/internal/pipeline"
)

// Options configures a relaxation solve.
type Options struct {
	// K is the number of masks (colors); must be ≥ 2. The conflict target
	// inner product is −1/(K−1).
	K int
	// Alpha is the stitch weight α in the objective (paper: 0.1).
	Alpha float64
	// Rank is the factorization rank r; 0 picks max(K, ⌈√(2n)⌉) capped at n.
	Rank int
	// Restarts is the number of random restarts; 0 means 3.
	Restarts int
	// MaxIter bounds gradient iterations per restart; 0 means 400.
	MaxIter int
	// Seed makes the run deterministic.
	Seed int64
}

func (o Options) withDefaults(n int) Options {
	if o.K < 2 {
		panic("sdp: K must be >= 2")
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 400
	}
	if o.Rank <= 0 {
		r := int(math.Ceil(math.Sqrt(float64(2 * n))))
		if r < o.K {
			r = o.K
		}
		o.Rank = r
	}
	if o.Rank > n && n > 0 {
		o.Rank = n
	}
	if o.Rank < 1 {
		o.Rank = 1
	}
	return o
}

// Solution is the relaxation output.
type Solution struct {
	// Vectors holds the n unit rows of V (dimension r each).
	Vectors [][]float64
	// Obj is the relaxation objective Σ_CE x_ij − α·Σ_SE x_ij.
	Obj float64
	// MaxViolation is the largest conflict-constraint violation
	// max(0, −1/(K−1) − x_ij) over CE; near zero for a converged solve.
	MaxViolation float64
}

// X returns the Gram matrix of the solution vectors.
func (s *Solution) X() *matrix.Sym { return matrix.Gram(s.Vectors) }

// Pair returns x_ij = v_i·v_j.
func (s *Solution) Pair(i, j int) float64 {
	return matrix.Dot(s.Vectors[i], s.Vectors[j])
}

// Solve runs the relaxation on the decomposition graph g.
func Solve(g *graph.Graph, opts Options) *Solution {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext runs the relaxation, polling ctx inside the gradient-descent
// iteration loop. On cancellation it returns the best solution found so far
// (after at least one restart has been initialized), which downstream
// consumers can still round — quality degrades gracefully with the time
// allowed rather than the call hanging until convergence.
func SolveContext(ctx context.Context, g *graph.Graph, opts Options) *Solution {
	return SolveScratch(ctx, g, opts, nil)
}

// SolveScratch is SolveContext carving its matrix workspace — the factor
// rows, gradients, and line-search saves of every restart — from the
// worker's scratch arena instead of the heap, so repeated solves on one
// worker stop re-allocating the (solve-count × n × rank)-sized hot-path
// memory. The arena is reset at the start of each solve, which means the
// returned Solution's Vectors alias scratch memory: they are valid only
// until the next SolveScratch call on the same arena. Every consumer in
// this repository (the greedy/backtrack rounding of one Dispatch region)
// finishes with the Solution before its worker solves the next piece; a
// caller that needs to retain vectors must copy them or pass a nil
// scratch, which allocates fresh memory exactly like SolveContext. The
// numerical trajectory is bit-identical either way — the workspace only
// changes where the floats live.
func SolveScratch(ctx context.Context, g *graph.Graph, opts Options, sc *pipeline.Scratch) *Solution {
	return SolveScratchEnv(ctx, g, opts, sc, pipeline.Env{})
}

// restartParallelMinEdges is the component-size floor below which the
// restart fan-out does not engage even when budget slots are free: on
// trivially small pieces the descend loop finishes in microseconds and a
// goroutine handoff costs more than it saves. Purely a scheduling
// heuristic — the solve's bytes are identical either way.
const restartParallelMinEdges = 32

// SolveScratchEnv is SolveScratch with the run's pipeline environment.
// When the environment carries a parallelism budget with free slots
// (division workers that have gone idle), the random restarts run
// concurrently instead of back-to-back — the one-huge-component workload
// where component-level parallelism has nothing left to offer.
//
// The result is bit-identical to the serial loop, by construction:
//
//   - rng serialization point: every restart's NormFloat64 initialization
//     is pre-drawn serially from the single seeded rng, in the exact
//     deviate order of the serial loop (restart-major, then row-major) —
//     the rng is never touched concurrently, and descend consumes no
//     randomness at all;
//   - disjoint state: each restart descends its own factor block (carved
//     from the caller's arena, so the winner's vectors outlive the solve
//     exactly as before), and each runner leases its own scratch arena for
//     the gradient/line-search workspace;
//   - winner selection: each restart's score is computed once from its
//     final state, and the winner is the lexicographic minimum of
//     (score, restart index) — precisely the strict-improvement rule the
//     serial loop applied, independent of completion order.
//
// Under cancellation the usual degraded contract applies (the best of the
// restarts that ran is returned; at least one always runs to its own
// cancellation checkpoint); which restarts those are may differ between
// serial and parallel execution, exactly as division's parallel mode
// already documents for its fallback pieces.
func SolveScratchEnv(ctx context.Context, g *graph.Graph, opts Options, sc *pipeline.Scratch, env pipeline.Env) *Solution {
	n := g.N()
	opts = opts.withDefaults(n)
	if n == 0 {
		return &Solution{}
	}
	sc.ResetFloats()

	ce := g.ConflictEdges()
	se := g.StitchEdges()
	target := -1.0 / float64(opts.K-1)
	done := ctx.Done()

	// Serialization point: draw every restart's initialization now, from
	// the one seeded rng, before any concurrency exists.
	rng := rand.New(rand.NewSource(opts.Seed))
	states := make([]*state, opts.Restarts)
	for i := range states {
		states[i] = newState(n, opts.Rank, rng, sc)
	}

	// Claim idle worker slots for the extra restart runners. TryAcquire
	// never blocks: with no budget (or no idle workers) the fan-out simply
	// stays serial.
	extra := 0
	if opts.Restarts > 1 && len(ce)+len(se) >= restartParallelMinEdges {
		for extra < opts.Restarts-1 && env.Budget.TryAcquire() {
			extra++
		}
	}

	scores := make([]float64, opts.Restarts)
	ran := make([]bool, opts.Restarts)
	var next atomic.Int64
	runRestarts := func(ws *workspace) {
		for {
			i := int(next.Add(1)) - 1
			if i >= opts.Restarts {
				return
			}
			// The claimed restart always descends and scores — even under a
			// dead context descend returns promptly with a valid state, so
			// at least one restart (index 0) is always ranked. The done
			// check sits after, mirroring the serial loop's "finish the
			// current restart, then stop restarting".
			states[i].descend(done, ce, se, opts, target, ws)
			scores[i] = states[i].score(ce, target)
			ran[i] = true
			select {
			case <-done:
				return
			default:
			}
		}
	}
	if extra > 0 {
		var wg sync.WaitGroup
		for w := 0; w < extra; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer env.Budget.Release()
				// Arena-lease-per-runner: the goroutine leases its own
				// scratch for the descend workspace and returns it before
				// exiting — the caller's arena (holding the factor blocks)
				// is never touched from here.
				rsc := env.Scratch.Get()
				defer env.Scratch.Put(rsc)
				runRestarts(newWorkspace(n, opts.Rank, len(ce), rsc))
			}()
		}
		runRestarts(newWorkspace(n, opts.Rank, len(ce), sc))
		wg.Wait()
	} else {
		runRestarts(newWorkspace(n, opts.Rank, len(ce), sc))
	}

	// Lexicographic (score, restart index) minimum over the restarts that
	// ran — the serial loop's strict-improvement rule, with each score
	// computed exactly once (the old comparison re-scored the incumbent's
	// full CE scan on every restart).
	best := -1
	for i := 0; i < opts.Restarts; i++ {
		if ran[i] && (best < 0 || scores[i] < scores[best]) {
			best = i
		}
	}

	sol := &Solution{Vectors: states[best].v}
	sol.Obj, sol.MaxViolation = evaluate(states[best].v, ce, se, opts.Alpha, target)
	return sol
}

// state is one restart's factor rows: n unit rows over one flat n×r block
// carved from the caller's arena, so the winning restart's vectors stay
// valid after the solve returns (Solution.Vectors alias them).
type state struct {
	v [][]float64
	// back is the flat n×r backing the rows of v alias — kept so the
	// line-search save/restore is one block copy instead of n row copies.
	back []float64
}

// workspace is one restart runner's reusable descend workspace: the
// gradient rows over one flat n×r backing — kept flat so zeroing is a
// single memclr-able clear instead of a row-by-row nested loop — plus the
// line-search save buffer and the conflict-edge dot cache. A runner carves
// it once and reuses it across every restart it executes: no state crosses
// restarts through it (the gradient is rebuilt from zero each iteration,
// the save buffer is overwritten before it is read, and the dot cache is
// guarded by descend's validity flag).
type workspace struct {
	grad     [][]float64
	gradBack []float64
	saved    []float64
	// xbuf caches Dot(v[e.U], v[e.V]) per conflict edge, filled by every
	// penalized scan. When the scanned point is the current iterate (the
	// accepted line-search step, or any penalized call outside the trial
	// loop), the next gradient pass reuses the cached dots instead of
	// recomputing them — the identical float64s, so the trajectory cannot
	// move.
	xbuf []float64
}

func newWorkspace(n, r, ces int, sc *pipeline.Scratch) *workspace {
	ws := &workspace{
		grad:     make([][]float64, n),
		gradBack: sc.Floats(n * r),
		saved:    sc.Floats(n * r),
		xbuf:     sc.Floats(ces),
	}
	for i := 0; i < n; i++ {
		ws.grad[i] = ws.gradBack[i*r : (i+1)*r : (i+1)*r]
	}
	return ws
}

// newState carves one restart's factor block from the scratch arena and
// fills it with the rng's normal deviates in the same row-major order as
// always — neither pooling nor the parallel fan-out may perturb the
// deterministic restart trajectory, so this is the only place randomness
// is consumed.
func newState(n, r int, rng *rand.Rand, sc *pipeline.Scratch) *state {
	vBack := sc.Floats(n * r)
	st := &state{v: make([][]float64, n), back: vBack}
	for i := 0; i < n; i++ {
		st.v[i] = vBack[i*r : (i+1)*r : (i+1)*r]
		for j := 0; j < r; j++ {
			st.v[i][j] = rng.NormFloat64()
		}
		normalize(st.v[i])
	}
	return st
}

func normalize(v []float64) { normalizeSq(v, matrix.Dot(v, v)) }

// normalizeSq is normalize with the squared norm already in hand (the
// fused line-search kernel computes it while writing the row). Norm is
// defined as √Dot(v,v), so √s here is the identical float64.
func normalizeSq(v []float64, s float64) {
	n := math.Sqrt(s)
	if n < 1e-12 {
		v[0] = 1
		for i := 1; i < len(v); i++ {
			v[i] = 0
		}
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// penalized returns the penalty-augmented objective, recording each
// conflict edge's dot product in xbuf (len(ce)) for the gradient pass to
// reuse when the scanned point is the one it descends from.
func penalized(v [][]float64, ce, se []graph.Edge, alpha, target, beta float64, xbuf []float64) float64 {
	xbuf = xbuf[:len(ce)]
	f := 0.0
	for i, e := range ce {
		x := matrix.Dot(v[e.U], v[e.V])
		xbuf[i] = x
		f += x
		if d := target - x; d > 0 {
			f += beta * d * d
		}
	}
	for _, e := range se {
		f -= alpha * matrix.Dot(v[e.U], v[e.V])
	}
	return f
}

// evaluate returns the raw relaxation objective and max constraint violation.
func evaluate(v [][]float64, ce, se []graph.Edge, alpha, target float64) (obj, viol float64) {
	for _, e := range ce {
		x := matrix.Dot(v[e.U], v[e.V])
		obj += x
		if d := target - x; d > viol {
			viol = d
		}
	}
	for _, e := range se {
		obj -= alpha * matrix.Dot(v[e.U], v[e.V])
	}
	return obj, viol
}

// score ranks restarts: raw objective plus a strong penalty on violations so
// infeasible local optima lose against feasible ones.
func (st *state) score(ce []graph.Edge, target float64) float64 {
	obj := 0.0
	for _, e := range ce {
		x := matrix.Dot(st.v[e.U], st.v[e.V])
		obj += x
		if d := target - x; d > 0 {
			obj += 50 * d * d
		}
	}
	return obj
}

// descend runs projected gradient descent with an escalating penalty weight.
// It polls done between iterations and stops early when closed. The
// workspace is the runner's own (never shared between goroutines); descend
// consumes no randomness, which is what lets restarts run concurrently.
func (st *state) descend(done <-chan struct{}, ce, se []graph.Edge, opts Options, target float64, ws *workspace) {
	n := len(st.v)
	if n == 0 {
		return
	}
	r := len(st.v[0])
	step := 0.5
	beta := 4.0
	const betaMax = 1 << 17
	fPrev := penalized(st.v, ce, se, opts.Alpha, target, beta, ws.xbuf)
	// xValid: ws.xbuf holds the conflict dots of the current iterate (the
	// last penalized scan saw exactly st.v). Only a rejected line search
	// breaks this — it restores st.v but leaves the failed trial's dots in
	// the cache.
	xValid := true
	stale := 0
	escalate := func() bool {
		// Converged at the current penalty weight: tighten the constraint
		// enforcement and continue, or finish once β is high enough that
		// the residual violation is negligible (≈ 1/(2β)).
		if beta >= betaMax {
			return false
		}
		beta *= 4
		fPrev = penalized(st.v, ce, se, opts.Alpha, target, beta, ws.xbuf)
		xValid = true
		stale = 0
		step = math.Max(step, 0.05)
		return true
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		select {
		case <-done:
			return
		default:
		}
		clear(ws.gradBack)
		for i, e := range ce {
			var x float64
			if xValid {
				x = ws.xbuf[i]
			} else {
				x = matrix.Dot(st.v[e.U], st.v[e.V])
			}
			w := 1.0
			if d := target - x; d > 0 {
				w -= 2 * beta * d
			}
			matrix.AxpyPair(ws.grad[e.U], ws.grad[e.V], w, st.v[e.U], st.v[e.V])
		}
		for _, e := range se {
			matrix.AxpyPair(ws.grad[e.U], ws.grad[e.V], -opts.Alpha, st.v[e.U], st.v[e.V])
		}
		// Project out the radial component (Riemannian gradient) and
		// measure its magnitude for the stopping test, one fused pass per
		// row.
		gnorm := 0.0
		for i := 0; i < n; i++ {
			radial := matrix.Dot(ws.grad[i], st.v[i])
			gnorm += matrix.AxpyNormSq(ws.grad[i], -radial, st.v[i])
		}
		if gnorm < 1e-12*float64(n) {
			if !escalate() {
				break
			}
			continue
		}

		// Backtracking line search along the projected direction. The save
		// and restore move the whole flat factor block at once; the rows
		// alias it, so the bytes are the ones the row-by-row copy moved.
		saved := ws.saved
		copy(saved, st.back)
		improved := false
		for try := 0; try < 12; try++ {
			for i := 0; i < n; i++ {
				s := matrix.AxpyIntoNormSq(st.v[i], saved[i*r:(i+1)*r], -step, ws.grad[i])
				normalizeSq(st.v[i], s)
			}
			f := penalized(st.v, ce, se, opts.Alpha, target, beta, ws.xbuf)
			if f < fPrev-1e-12 {
				fPrev = f
				improved = true
				xValid = true
				step *= 1.3
				break
			}
			step *= 0.5
		}
		if !improved {
			copy(st.back, saved)
			xValid = false
			stale++
			if stale > 3 {
				if !escalate() {
					break
				}
			}
		} else {
			stale = 0
		}
	}
}

// IdealVectors returns the K unit vectors in R^(K−1) whose pairwise inner
// products are all −1/(K−1) — the generalization of the four Fig. 3 vectors
// (for K = 4 they span the regular tetrahedron). They exist for every K ≥ 2
// and realize the discrete solutions of Eq. (1)/(3).
func IdealVectors(k int) [][]float64 {
	if k < 2 {
		panic("sdp: IdealVectors needs k >= 2")
	}
	// Cholesky of the Gram matrix G = (1+1/(k-1))·I − 1/(k−1)·J restricted
	// to rank k−1: the first k−1 vectors come out of the factorization, the
	// k-th is the negative sum of the others divided by... simpler: run a
	// rank-revealing Cholesky on the full k×k Gram matrix.
	c := -1.0 / float64(k-1)
	g := matrix.NewSym(k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				g.Set(i, j, 1)
			} else {
				g.Set(i, j, c)
			}
		}
	}
	vecs := make([][]float64, k)
	for i := range vecs {
		vecs[i] = make([]float64, k-1)
	}
	// L[i][j] for j ≤ min(i, k-2): standard Cholesky truncated to k−1
	// columns (the matrix has rank k−1, so the last pivot vanishes).
	for i := 0; i < k; i++ {
		for j := 0; j <= i && j < k-1; j++ {
			sum := g.At(i, j)
			for p := 0; p < j; p++ {
				sum -= vecs[i][p] * vecs[j][p]
			}
			if i == j {
				if sum < 0 {
					sum = 0
				}
				vecs[i][j] = math.Sqrt(sum)
			} else {
				vecs[i][j] = sum / vecs[j][j]
			}
		}
	}
	return vecs
}
