// Package sdp solves the semidefinite relaxation at the core of the DAC'14
// framework (Eq. (2) for quadruple patterning, Eq. (3) for general K):
//
//	min  Σ_{e_ij ∈ CE} v_i·v_j  −  α · Σ_{e_ij ∈ SE} v_i·v_j
//	s.t. v_i·v_i  =  1            ∀ i ∈ V
//	     v_i·v_j  ≥ −1/(K−1)      ∀ e_ij ∈ CE
//
// The paper solves this with the interior-point solver CSDP. This package
// substitutes a low-rank Burer–Monteiro formulation: the PSD matrix X is
// factored as X = VᵀV with V ∈ R^{r×n}, the unit-norm constraints are
// enforced by explicit renormalization (a Riemannian projection), and the
// conflict-edge inequalities by a smooth quadratic penalty with an
// escalating weight. Projected gradient descent with backtracking line
// search and deterministic multi-restart then minimizes the objective.
// Downstream consumers (SDP+Backtrack's t_th = 0.9 merge threshold,
// SDP+Greedy's descending-x_ij union order) only need the Gram entries
// x_ij = v_i·v_j to near-optimal accuracy, which this delivers on the small
// per-component problems produced by graph division. See DESIGN.md §2 for
// the substitution rationale.
package sdp

import (
	"context"
	"math"
	"math/rand"

	"mpl/internal/graph"
	"mpl/internal/matrix"
	"mpl/internal/pipeline"
)

// Options configures a relaxation solve.
type Options struct {
	// K is the number of masks (colors); must be ≥ 2. The conflict target
	// inner product is −1/(K−1).
	K int
	// Alpha is the stitch weight α in the objective (paper: 0.1).
	Alpha float64
	// Rank is the factorization rank r; 0 picks max(K, ⌈√(2n)⌉) capped at n.
	Rank int
	// Restarts is the number of random restarts; 0 means 3.
	Restarts int
	// MaxIter bounds gradient iterations per restart; 0 means 400.
	MaxIter int
	// Seed makes the run deterministic.
	Seed int64
}

func (o Options) withDefaults(n int) Options {
	if o.K < 2 {
		panic("sdp: K must be >= 2")
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 400
	}
	if o.Rank <= 0 {
		r := int(math.Ceil(math.Sqrt(float64(2 * n))))
		if r < o.K {
			r = o.K
		}
		o.Rank = r
	}
	if o.Rank > n && n > 0 {
		o.Rank = n
	}
	if o.Rank < 1 {
		o.Rank = 1
	}
	return o
}

// Solution is the relaxation output.
type Solution struct {
	// Vectors holds the n unit rows of V (dimension r each).
	Vectors [][]float64
	// Obj is the relaxation objective Σ_CE x_ij − α·Σ_SE x_ij.
	Obj float64
	// MaxViolation is the largest conflict-constraint violation
	// max(0, −1/(K−1) − x_ij) over CE; near zero for a converged solve.
	MaxViolation float64
}

// X returns the Gram matrix of the solution vectors.
func (s *Solution) X() *matrix.Sym { return matrix.Gram(s.Vectors) }

// Pair returns x_ij = v_i·v_j.
func (s *Solution) Pair(i, j int) float64 {
	return matrix.Dot(s.Vectors[i], s.Vectors[j])
}

// Solve runs the relaxation on the decomposition graph g.
func Solve(g *graph.Graph, opts Options) *Solution {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext runs the relaxation, polling ctx inside the gradient-descent
// iteration loop. On cancellation it returns the best solution found so far
// (after at least one restart has been initialized), which downstream
// consumers can still round — quality degrades gracefully with the time
// allowed rather than the call hanging until convergence.
func SolveContext(ctx context.Context, g *graph.Graph, opts Options) *Solution {
	return SolveScratch(ctx, g, opts, nil)
}

// SolveScratch is SolveContext carving its matrix workspace — the factor
// rows, gradients, and line-search saves of every restart — from the
// worker's scratch arena instead of the heap, so repeated solves on one
// worker stop re-allocating the (solve-count × n × rank)-sized hot-path
// memory. The arena is reset at the start of each solve, which means the
// returned Solution's Vectors alias scratch memory: they are valid only
// until the next SolveScratch call on the same arena. Every consumer in
// this repository (the greedy/backtrack rounding of one Dispatch region)
// finishes with the Solution before its worker solves the next piece; a
// caller that needs to retain vectors must copy them or pass a nil
// scratch, which allocates fresh memory exactly like SolveContext. The
// numerical trajectory is bit-identical either way — the workspace only
// changes where the floats live.
func SolveScratch(ctx context.Context, g *graph.Graph, opts Options, sc *pipeline.Scratch) *Solution {
	n := g.N()
	opts = opts.withDefaults(n)
	if n == 0 {
		return &Solution{}
	}
	sc.ResetFloats()

	ce := g.ConflictEdges()
	se := g.StitchEdges()
	target := -1.0 / float64(opts.K-1)

	done := ctx.Done()
	rng := rand.New(rand.NewSource(opts.Seed))
	var best *state
restarts:
	for restart := 0; restart < opts.Restarts; restart++ {
		st := newState(n, opts.Rank, rng, sc)
		st.descend(done, ce, se, opts, target)
		if best == nil || st.score(ce, target) < best.score(ce, target) {
			best = st
		}
		select {
		case <-done:
			break restarts // cancelled: keep the incumbent, stop restarting
		default:
		}
	}

	sol := &Solution{Vectors: best.v}
	sol.Obj, sol.MaxViolation = evaluate(best.v, ce, se, opts.Alpha, target)
	return sol
}

type state struct {
	v    [][]float64 // n unit rows
	grad [][]float64
	// saved is the line-search save buffer (n×r, one flat block). It lives
	// on the state so the backtracking search stops allocating it once per
	// iteration — the single largest allocation source of the old solver.
	saved []float64
}

// newState carves one restart's workspace from the scratch arena (three
// flat n×r blocks plus the row-header tables) and fills the factor rows
// with the rng's normal deviates in the same row-major order as always —
// pooling must not perturb the deterministic restart trajectory.
func newState(n, r int, rng *rand.Rand, sc *pipeline.Scratch) *state {
	vBack := sc.Floats(n * r)
	gradBack := sc.Floats(n * r)
	st := &state{
		v:     make([][]float64, n),
		grad:  make([][]float64, n),
		saved: sc.Floats(n * r),
	}
	for i := 0; i < n; i++ {
		st.v[i] = vBack[i*r : (i+1)*r : (i+1)*r]
		st.grad[i] = gradBack[i*r : (i+1)*r : (i+1)*r]
		for j := 0; j < r; j++ {
			st.v[i][j] = rng.NormFloat64()
		}
		normalize(st.v[i])
	}
	return st
}

func normalize(v []float64) {
	n := matrix.Norm(v)
	if n < 1e-12 {
		v[0] = 1
		for i := 1; i < len(v); i++ {
			v[i] = 0
		}
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// penalized returns the penalty-augmented objective.
func penalized(v [][]float64, ce, se []graph.Edge, alpha, target, beta float64) float64 {
	f := 0.0
	for _, e := range ce {
		x := matrix.Dot(v[e.U], v[e.V])
		f += x
		if d := target - x; d > 0 {
			f += beta * d * d
		}
	}
	for _, e := range se {
		f -= alpha * matrix.Dot(v[e.U], v[e.V])
	}
	return f
}

// evaluate returns the raw relaxation objective and max constraint violation.
func evaluate(v [][]float64, ce, se []graph.Edge, alpha, target float64) (obj, viol float64) {
	for _, e := range ce {
		x := matrix.Dot(v[e.U], v[e.V])
		obj += x
		if d := target - x; d > viol {
			viol = d
		}
	}
	for _, e := range se {
		obj -= alpha * matrix.Dot(v[e.U], v[e.V])
	}
	return obj, viol
}

// score ranks restarts: raw objective plus a strong penalty on violations so
// infeasible local optima lose against feasible ones.
func (st *state) score(ce []graph.Edge, target float64) float64 {
	obj := 0.0
	for _, e := range ce {
		x := matrix.Dot(st.v[e.U], st.v[e.V])
		obj += x
		if d := target - x; d > 0 {
			obj += 50 * d * d
		}
	}
	return obj
}

// descend runs projected gradient descent with an escalating penalty weight.
// It polls done between iterations and stops early when closed.
func (st *state) descend(done <-chan struct{}, ce, se []graph.Edge, opts Options, target float64) {
	n := len(st.v)
	if n == 0 {
		return
	}
	r := len(st.v[0])
	step := 0.5
	beta := 4.0
	const betaMax = 1 << 17
	fPrev := penalized(st.v, ce, se, opts.Alpha, target, beta)
	stale := 0
	escalate := func() bool {
		// Converged at the current penalty weight: tighten the constraint
		// enforcement and continue, or finish once β is high enough that
		// the residual violation is negligible (≈ 1/(2β)).
		if beta >= betaMax {
			return false
		}
		beta *= 4
		fPrev = penalized(st.v, ce, se, opts.Alpha, target, beta)
		stale = 0
		step = math.Max(step, 0.05)
		return true
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		select {
		case <-done:
			return
		default:
		}
		for i := range st.grad {
			for j := range st.grad[i] {
				st.grad[i][j] = 0
			}
		}
		for _, e := range ce {
			x := matrix.Dot(st.v[e.U], st.v[e.V])
			w := 1.0
			if d := target - x; d > 0 {
				w -= 2 * beta * d
			}
			axpy(st.grad[e.U], w, st.v[e.V])
			axpy(st.grad[e.V], w, st.v[e.U])
		}
		for _, e := range se {
			axpy(st.grad[e.U], -opts.Alpha, st.v[e.V])
			axpy(st.grad[e.V], -opts.Alpha, st.v[e.U])
		}
		// Project out the radial component (Riemannian gradient) and
		// measure its magnitude for the stopping test.
		gnorm := 0.0
		for i := 0; i < n; i++ {
			radial := matrix.Dot(st.grad[i], st.v[i])
			axpy(st.grad[i], -radial, st.v[i])
			gnorm += matrix.Dot(st.grad[i], st.grad[i])
		}
		if gnorm < 1e-12*float64(n) {
			if !escalate() {
				break
			}
			continue
		}

		// Backtracking line search along the projected direction.
		saved := st.saved
		for i := 0; i < n; i++ {
			copy(saved[i*r:(i+1)*r], st.v[i])
		}
		improved := false
		for try := 0; try < 12; try++ {
			for i := 0; i < n; i++ {
				copy(st.v[i], saved[i*r:(i+1)*r])
				axpy(st.v[i], -step, st.grad[i])
				normalize(st.v[i])
			}
			f := penalized(st.v, ce, se, opts.Alpha, target, beta)
			if f < fPrev-1e-12 {
				fPrev = f
				improved = true
				step *= 1.3
				break
			}
			step *= 0.5
		}
		if !improved {
			for i := 0; i < n; i++ {
				copy(st.v[i], saved[i*r:(i+1)*r])
			}
			stale++
			if stale > 3 {
				if !escalate() {
					break
				}
			}
		} else {
			stale = 0
		}
	}
}

func axpy(dst []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

// IdealVectors returns the K unit vectors in R^(K−1) whose pairwise inner
// products are all −1/(K−1) — the generalization of the four Fig. 3 vectors
// (for K = 4 they span the regular tetrahedron). They exist for every K ≥ 2
// and realize the discrete solutions of Eq. (1)/(3).
func IdealVectors(k int) [][]float64 {
	if k < 2 {
		panic("sdp: IdealVectors needs k >= 2")
	}
	// Cholesky of the Gram matrix G = (1+1/(k-1))·I − 1/(k−1)·J restricted
	// to rank k−1: the first k−1 vectors come out of the factorization, the
	// k-th is the negative sum of the others divided by... simpler: run a
	// rank-revealing Cholesky on the full k×k Gram matrix.
	c := -1.0 / float64(k-1)
	g := matrix.NewSym(k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				g.Set(i, j, 1)
			} else {
				g.Set(i, j, c)
			}
		}
	}
	vecs := make([][]float64, k)
	for i := range vecs {
		vecs[i] = make([]float64, k-1)
	}
	// L[i][j] for j ≤ min(i, k-2): standard Cholesky truncated to k−1
	// columns (the matrix has rank k−1, so the last pivot vanishes).
	for i := 0; i < k; i++ {
		for j := 0; j <= i && j < k-1; j++ {
			sum := g.At(i, j)
			for p := 0; p < j; p++ {
				sum -= vecs[i][p] * vecs[j][p]
			}
			if i == j {
				if sum < 0 {
					sum = 0
				}
				vecs[i][j] = math.Sqrt(sum)
			} else {
				vecs[i][j] = sum / vecs[j][j]
			}
		}
	}
	return vecs
}
