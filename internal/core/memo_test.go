package core

// Byte-equivalence harness for canonical-shape memoization (ISSUE 7): a
// memoized solve must be indistinguishable from a memo-off solve in every
// observable output — colors byte-for-byte, cn#/st#, Proven — on every
// committed circuit, every engine, serial and parallel. Plus the
// concurrency contract: N identical components dispatch exactly one engine
// solve, the rest rehydrate from the cache ("memo" bucket), even when the
// division worker pool hits the shape simultaneously under -race.

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"mpl/internal/canon"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/pipeline"
)

// memoRun solves dg with opts against a fresh shape cache (so hit/miss
// counters are a function of this run alone, not of test order).
func memoRun(t *testing.T, dg *Graph, opts Options) *Result {
	t.Helper()
	if _, err := ParseEngine(opts.Engine); err != nil {
		t.Fatal(err)
	}
	res, err := decomposeGraphShapes(context.Background(), dg, opts.withDefaults(),
		pipeline.NewRecorder(), sharedScratch, canon.NewShapeCache(4096))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func committedCircuit(t *testing.T, name string) *Graph {
	t.Helper()
	l, err := layout.ReadFile(filepath.Join("..", "..", "benchmarks", name+".lay"))
	if err != nil {
		t.Fatalf("%s: %v (pinned to the committed .lay files)", name, err)
	}
	dg, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	return dg
}

// TestMemoizedByteIdenticalToMemoOff is the headline equivalence gate:
// memo-on vs memo-off on all committed circuits × engines × workers 1/8.
func TestMemoizedByteIdenticalToMemoOff(t *testing.T) {
	circuits := []string{"C432", "C499", "C880", "C1355", "C5315"}
	type engine struct {
		label string
		opts  Options
	}
	engines := []engine{
		{"linear", Options{K: 4, Algorithm: AlgLinear, Seed: 1}},
		{"sdp-greedy", Options{K: 4, Algorithm: AlgSDPGreedy, Seed: 1}},
		{"sdp-backtrack", Options{K: 4, Algorithm: AlgSDPBacktrack, Seed: 1}},
		{"auto", Options{K: 4, Engine: EngineAuto, Seed: 1, ILPTimeLimit: 10 * time.Minute}},
	}
	if testing.Short() {
		circuits = circuits[:2]
		engines = engines[:2]
	}
	for _, name := range circuits {
		dg := committedCircuit(t, name)
		for _, eng := range engines {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/w%d", name, eng.label, workers), func(t *testing.T) {
					opts := eng.opts
					opts.Division.Workers = workers
					base := memoRun(t, dg, opts)
					opts.Memoize = true
					memo := memoRun(t, dg, opts)

					if !bytes.Equal(intsToBytes(base.Colors), intsToBytes(memo.Colors)) {
						t.Fatalf("memoized colors differ from memo-off")
					}
					if base.Conflicts != memo.Conflicts || base.Stitches != memo.Stitches {
						t.Fatalf("objective drifted: memo-off %d/%d, memo-on %d/%d",
							base.Conflicts, base.Stitches, memo.Conflicts, memo.Stitches)
					}
					if base.Proven != memo.Proven {
						t.Fatalf("Proven drifted: %v vs %v", base.Proven, memo.Proven)
					}
					// Counter accounting: every solver piece was either a
					// hit or a miss (committed circuits have no pieces over
					// canon.MaxVertices), hits match the memo bucket, and
					// the memo-off run reports no shape traffic at all.
					if base.DivisionStats.Shapes.Hits+base.DivisionStats.Shapes.Misses != 0 {
						t.Fatalf("memo-off run reports shape traffic: %+v", base.DivisionStats.Shapes)
					}
					sh := memo.DivisionStats.Shapes
					if sh.Hits+sh.Misses != memo.DivisionStats.SolverCalls {
						t.Fatalf("shape counters don't cover solver calls: %+v vs %d calls",
							sh, memo.DivisionStats.SolverCalls)
					}
					if sh.Hits != memo.DivisionStats.Engines["memo"] {
						t.Fatalf("memo engine bucket %d != shape hits %d",
							memo.DivisionStats.Engines["memo"], sh.Hits)
					}
					if sh.Distinct == 0 || sh.Distinct > sh.Hits+sh.Misses {
						t.Fatalf("implausible distinct-shape count: %+v", sh)
					}
				})
			}
		}
	}
}

func intsToBytes(xs []int) []byte {
	b := make([]byte, 0, len(xs))
	for _, x := range xs {
		b = append(b, byte(x))
	}
	return b
}

// TestMemoizedILPByteIdentical covers the exact engine separately (it is
// too slow for the full matrix): C432 under ILP, memo-on vs memo-off.
func TestMemoizedILPByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("exact engine on a committed circuit; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("exact search is ~25x slower under -race")
	}
	dg := committedCircuit(t, "C432")
	opts := Options{K: 4, Algorithm: AlgILP, Seed: 1, ILPTimeLimit: 10 * time.Minute}
	base := memoRun(t, dg, opts)
	opts.Memoize = true
	memo := memoRun(t, dg, opts)
	if !bytes.Equal(intsToBytes(base.Colors), intsToBytes(memo.Colors)) {
		t.Fatalf("memoized ILP colors differ from memo-off")
	}
	if !memo.Proven || !base.Proven {
		t.Fatalf("ILP run not proven (base %v, memo %v)", base.Proven, memo.Proven)
	}
}

// nIdenticalK5s builds a graph of n disjoint K5 cliques — n byte-identical
// solver pieces (K5 survives peeling at K=4: conflict degree 4, and its
// min cut 4 survives the (K−1)-cut removal), so a memoized solve must
// dispatch exactly one engine call.
func nIdenticalK5s(n int) *Graph {
	g := graph.New(5 * n)
	for c := 0; c < n; c++ {
		base := 5 * c
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddConflict(base+i, base+j)
			}
		}
	}
	return &Graph{G: g}
}

// TestMemoSingleFlightOneDispatchForIdenticalComponents pins the
// concurrency contract from the ISSUE: N identical components solved by 8
// division workers produce exactly 1 real engine dispatch; the other N−1
// rehydrate from the cache, and all N pieces count one distinct shape.
func TestMemoSingleFlightOneDispatchForIdenticalComponents(t *testing.T) {
	const n = 48
	dg := nIdenticalK5s(n)
	opts := Options{K: 4, Algorithm: AlgSDPBacktrack, Seed: 1, Memoize: true}
	opts.Division.Workers = 8
	res := memoRun(t, dg, opts)

	sh := res.DivisionStats.Shapes
	if sh.Misses != 1 || sh.Hits != n-1 || sh.Distinct != 1 {
		t.Fatalf("want 1 miss / %d hits / 1 distinct, got %+v", n-1, sh)
	}
	if res.DivisionStats.Engines["memo"] != n-1 {
		t.Fatalf("memo bucket = %d, want %d (engines: %v)",
			res.DivisionStats.Engines["memo"], n-1, res.DivisionStats.Engines)
	}
	real := 0
	for name, c := range res.DivisionStats.Engines {
		if name != "memo" {
			real += c
		}
	}
	if real != 1 {
		t.Fatalf("identical components dispatched %d engine solves, want 1 (engines: %v)",
			real, res.DivisionStats.Engines)
	}
	// And the result must equal the memo-off solve of the same graph.
	offOpts := opts
	offOpts.Memoize = false
	base := memoRun(t, dg, offOpts)
	if !bytes.Equal(intsToBytes(base.Colors), intsToBytes(res.Colors)) {
		t.Fatalf("single-flight rehydration changed the coloring")
	}
}

// TestMemoizedAutoNeverWorseThanGoldenBest extends the PR 4 portfolio gate:
// auto with memoization on still matches the golden best counts on every
// committed circuit — the cache must not change what auto produces.
func TestMemoizedAutoNeverWorseThanGoldenBest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale committed circuits; skipped in -short mode")
	}
	for circuit, engines := range goldenCounts {
		circuit, engines := circuit, engines
		t.Run(circuit, func(t *testing.T) {
			dg := committedCircuit(t, circuit)
			res := memoRun(t, dg, Options{
				K: 4, Engine: EngineAuto, Seed: 1, Memoize: true,
				ILPTimeLimit: 10 * time.Minute,
			})
			best := goldenBest(engines)
			if res.Conflicts > best[0] || (res.Conflicts == best[0] && res.Stitches > best[1]) {
				t.Errorf("memoized auto cn#/st# = %d/%d exceeds golden best %d/%d",
					res.Conflicts, res.Stitches, best[0], best[1])
			}
		})
	}
}

// TestMemoizeNormalizesOffUnderRace pins the options contract: race
// winners are wall-clock dependent, so Normalize forces Memoize off (and
// equivalent option spellings therefore share cache/session keys).
func TestMemoizeNormalizesOffUnderRace(t *testing.T) {
	o := Options{K: 4, Engine: EngineRace, Memoize: true}.Normalize()
	if o.Memoize {
		t.Fatalf("race must normalize Memoize off")
	}
	o = Options{K: 4, Engine: EngineAuto, Memoize: true}.Normalize()
	if !o.Memoize {
		t.Fatalf("auto must keep Memoize on")
	}
}
