package core

import (
	"slices"
	"testing"

	"mpl/internal/geom"
)

// editsEqual compares batches semantically: the decoder materializes empty
// rect slices where the encoder saw nil, which is the same edit.
func editsEqual(a, b []Edit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Op != y.Op || x.Feature != y.Feature || x.DX != y.DX || x.DY != y.DY {
			return false
		}
		if len(x.Shape.Rects) != len(y.Shape.Rects) || !slices.Equal(x.Shape.Rects, y.Shape.Rects) {
			return false
		}
	}
	return true
}

func TestEditCodecRoundTrip(t *testing.T) {
	batches := [][]Edit{
		nil,
		{{Op: EditRemove, Feature: 0}},
		{{Op: EditRemove, Feature: 1<<31 - 1}},
		{{Op: EditMove, Feature: 7, DX: -12345, DY: 67890}},
		{{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: -5, Y0: -5, X1: 20, Y1: 20})}},
		{
			{Op: EditAdd, Shape: geom.Polygon{Rects: []geom.Rect{
				{X0: 0, Y0: 0, X1: 10, Y1: 30},
				{X0: 10, Y0: 0, X1: 40, Y1: 10},
			}}},
			{Op: EditMove, Feature: 3, DX: 0, DY: -20},
			{Op: EditRemove, Feature: 2},
			{Op: EditAdd, Shape: geom.Polygon{}},
		},
	}
	for i, batch := range batches {
		enc := EncodeEdits(nil, batch)
		dec, err := DecodeEdits(enc)
		if err != nil {
			t.Fatalf("batch %d: decode: %v", i, err)
		}
		if !editsEqual(batch, dec) {
			t.Fatalf("batch %d: round trip changed the batch:\n in %+v\nout %+v", i, batch, dec)
		}
		// Deterministic encoding: the same batch must encode to the same
		// bytes (the log both hashes and replays these).
		if again := EncodeEdits(nil, batch); !slices.Equal(enc, again) {
			t.Fatalf("batch %d: encoding is not deterministic", i)
		}
	}
}

func TestEditCodecRejectsCorruption(t *testing.T) {
	good := EncodeEdits(nil, []Edit{
		{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})},
		{Op: EditMove, Feature: 1, DX: 40, DY: -40},
	})
	if _, err := DecodeEdits(good); err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail (truncation), never panic or
	// mis-decode into a shorter valid batch.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeEdits(good[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", i, len(good))
		}
	}
	// Trailing garbage must fail: the WAL frames exact payloads.
	if _, err := DecodeEdits(append(slices.Clone(good), 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
	// An unknown op byte must fail.
	bad := slices.Clone(good)
	bad[1] = 0xEE // first op byte (after the 1-byte batch length)
	if _, err := DecodeEdits(bad); err == nil {
		t.Fatal("unknown op decoded cleanly")
	}
}

// FuzzEditCodec drives the codec from both ends: structured batches from
// the same 5-byte decoder FuzzApplyEdits uses must round trip exactly, and
// the raw fuzz bytes fed straight into DecodeEdits must never panic.
func FuzzEditCodec(f *testing.F) {
	f.Add([]byte{0, 2, 3, 1, 1})
	f.Add([]byte{1, 7, 0, 0, 0})
	f.Add([]byte{2, 16, 4, 252, 0})
	f.Add([]byte{2, 0, 128, 127, 0, 1, 0, 0, 0, 0, 0, 200, 200, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		batch := decodeEdits(data, 16)
		enc := EncodeEdits(nil, batch)
		dec, err := DecodeEdits(enc)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !editsEqual(batch, dec) {
			t.Fatalf("round trip changed the batch:\n in %+v\nout %+v", batch, dec)
		}
		// Arbitrary bytes: any outcome but a panic. A clean decode must
		// itself round trip (binary.Uvarint accepts over-long varints, so
		// arbitrary input may decode to a batch whose canonical encoding is
		// shorter — that batch must still survive its own round trip).
		if got, err := DecodeEdits(data); err == nil {
			again, err := DecodeEdits(EncodeEdits(nil, got))
			if err != nil || !editsEqual(got, again) {
				t.Fatalf("accepted input does not round trip: %v (err %v)", got, err)
			}
		}
	})
}
