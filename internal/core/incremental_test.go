package core

// The randomized equivalence harness for incremental (ECO) decomposition:
// every test below drives ApplyEdits through generated edit sequences and
// checks observable equivalence against a from-scratch Decompose of the
// same post-edit layout — identical graph (byte-for-byte adjacency),
// identical colors, identical conflict/stitch counts, a clean
// coloring.Validate, and VerifySolution agreement. This is the correctness
// story of DESIGN.md §6: incremental must never be distinguishable from a
// full re-run.

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"mpl/internal/coloring"
	"mpl/internal/division"
	"mpl/internal/geom"
	"mpl/internal/layout"
	"mpl/internal/synth"
)

// randomEdits generates a batch of 1–3 edit operations against a layout
// with nf features, using the sequential index semantics of ApplyEdits.
// Adds drop contact-sized squares inside (or near) the current bounding
// box; moves translate by up to ±3 half-pitches, small enough that edited
// features usually stay coupled to their old neighborhood.
func randomEdits(rng *rand.Rand, l *layout.Layout) []Edit {
	cnt := len(l.Features)
	b := l.Bounds()
	w, h := b.Width(), b.Height()
	if w < 100 {
		w = 100
	}
	if h < 100 {
		h = 100
	}
	n := 1 + rng.Intn(3)
	var edits []Edit
	for i := 0; i < n; i++ {
		op := rng.Intn(3)
		if cnt == 0 {
			op = 0
		}
		switch op {
		case 0:
			x := b.X0 + rng.Intn(w)
			y := b.Y0 + rng.Intn(h)
			edits = append(edits, Edit{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: x, Y0: y, X1: x + 20, Y1: y + 20})})
			cnt++
		case 1:
			edits = append(edits, Edit{Op: EditRemove, Feature: rng.Intn(cnt)})
			cnt--
		default:
			edits = append(edits, Edit{
				Op: EditMove, Feature: rng.Intn(cnt),
				DX: (rng.Intn(7) - 3) * 20, DY: (rng.Intn(7) - 3) * 20,
			})
		}
	}
	return edits
}

// graphsEqual compares two decomposition graphs for byte-for-byte equality:
// fragment provenance and geometry, adjacency content and order, stats.
func graphsEqual(t *testing.T, inc, scratch *Graph) {
	t.Helper()
	if inc.G.N() != scratch.G.N() {
		t.Fatalf("fragment count: incremental %d, scratch %d", inc.G.N(), scratch.G.N())
	}
	for v := 0; v < inc.G.N(); v++ {
		fi, fs := inc.Fragments[v], scratch.Fragments[v]
		if fi.Feature != fs.Feature || !slices.Equal(fi.Shape.Rects, fs.Shape.Rects) {
			t.Fatalf("fragment %d differs: %+v vs %+v", v, fi, fs)
		}
		if !slices.Equal(inc.G.ConflictNeighbors(v), scratch.G.ConflictNeighbors(v)) {
			t.Fatalf("conflict adjacency of %d differs: %v vs %v", v, inc.G.ConflictNeighbors(v), scratch.G.ConflictNeighbors(v))
		}
		if !slices.Equal(inc.G.StitchNeighbors(v), scratch.G.StitchNeighbors(v)) {
			t.Fatalf("stitch adjacency of %d differs: %v vs %v", v, inc.G.StitchNeighbors(v), scratch.G.StitchNeighbors(v))
		}
		if !slices.Equal(inc.G.FriendNeighbors(v), scratch.G.FriendNeighbors(v)) {
			t.Fatalf("friend adjacency of %d differs: %v vs %v", v, inc.G.FriendNeighbors(v), scratch.G.FriendNeighbors(v))
		}
	}
	si, ss := inc.Stats, scratch.Stats
	si.Workers, ss.Workers = 0, 0
	si.Timing, ss.Timing = BuildTiming{}, BuildTiming{}
	if si != ss {
		t.Fatalf("build stats differ: %+v vs %+v", si, ss)
	}
}

// assertEquivalent is the harness core: the incremental result must be
// observably identical to the from-scratch one.
func assertEquivalent(t *testing.T, k int, inc, scratch *Result) {
	t.Helper()
	graphsEqual(t, inc.Graph, scratch.Graph)
	if !slices.Equal(inc.Colors, scratch.Colors) {
		for v := range inc.Colors {
			if inc.Colors[v] != scratch.Colors[v] {
				t.Fatalf("color of fragment %d: incremental %d, scratch %d", v, inc.Colors[v], scratch.Colors[v])
			}
		}
	}
	if inc.Conflicts != scratch.Conflicts || inc.Stitches != scratch.Stitches {
		t.Fatalf("objective: incremental %d/%d, scratch %d/%d",
			inc.Conflicts, inc.Stitches, scratch.Conflicts, scratch.Stitches)
	}
	for _, r := range []*Result{inc, scratch} {
		if err := coloring.Validate(r.Graph.G, r.Colors, k); err != nil {
			t.Fatalf("invalid coloring: %v", err)
		}
		conf, stit, err := VerifySolution(r)
		if err != nil {
			t.Fatal(err)
		}
		if conf != r.Conflicts || stit != r.Stitches {
			t.Fatalf("VerifySolution disagrees: geometry says %d/%d, result says %d/%d",
				conf, stit, r.Conflicts, r.Stitches)
		}
	}
}

// TestIncrementalEquivalenceRandomized chains random edit batches over the
// synthetic circuits and checks every step against a from-scratch run, at
// K = 3 and K = 4 and with 1 and 8 division workers, for each
// deterministic engine (the ILP engine's wall-clock budget makes it the
// one engine without a determinism guarantee).
func TestIncrementalEquivalenceRandomized(t *testing.T) {
	cases := []struct {
		name    string
		circuit string
		scale   float64
		k       int
		workers int
		alg     Algorithm
		steps   int
	}{
		{"K4-w1-linear", "C432", 0.30, 4, 1, AlgLinear, 6},
		{"K3-w1-linear", "C499", 0.25, 3, 1, AlgLinear, 6},
		{"K4-w8-linear", "C880", 0.20, 4, 8, AlgLinear, 6},
		{"K3-w8-linear", "C432", 0.25, 3, 8, AlgLinear, 6},
		{"K4-w1-sdp-backtrack", "C432", 0.15, 4, 1, AlgSDPBacktrack, 4},
		{"K4-w8-sdp-backtrack", "C499", 0.15, 4, 8, AlgSDPBacktrack, 4},
		{"K3-w1-sdp-greedy", "C499", 0.15, 3, 1, AlgSDPGreedy, 4},
		{"K3-w8-sdp-greedy", "C432", 0.15, 3, 8, AlgSDPGreedy, 4},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := synth.GenerateByName(tc.circuit, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{K: tc.k, Algorithm: tc.alg, Seed: 1, Division: division.Options{Workers: tc.workers}}
			prev, err := Decompose(l, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			for step := 0; step < tc.steps; step++ {
				edits := randomEdits(rng, l)
				newL, inc, es, err := ApplyEdits(context.Background(), l, prev, edits, opts)
				if err != nil {
					t.Fatalf("step %d (%v): %v", step, edits, err)
				}
				scratch, err := Decompose(newL, opts)
				if err != nil {
					t.Fatal(err)
				}
				assertEquivalent(t, tc.k, inc, scratch)
				if es.ReusedFragments+es.RebuiltFragments != len(inc.Graph.Fragments) {
					t.Fatalf("step %d: fragment provenance %d+%d != %d", step,
						es.ReusedFragments, es.RebuiltFragments, len(inc.Graph.Fragments))
				}
				if es.ResolvedComponents+es.CopiedComponents != es.Components {
					t.Fatalf("step %d: component partition %d+%d != %d", step,
						es.ResolvedComponents, es.CopiedComponents, es.Components)
				}
				l, prev = newL, inc
			}
		})
	}
}

// TestIncrementalReusesMostComponents: a single local edit on a spread-out
// circuit must not re-solve the world — the whole point of the subsystem.
func TestIncrementalReusesMostComponents(t *testing.T) {
	l, err := synth.GenerateByName("C880", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 4, Algorithm: AlgLinear}
	prev, err := Decompose(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	edits := []Edit{{Op: EditMove, Feature: 0, DX: 20, DY: 0}}
	_, _, es, err := ApplyEdits(context.Background(), l, prev, edits, opts)
	if err != nil {
		t.Fatal(err)
	}
	if es.Components < 10 {
		t.Fatalf("test layout too small to be meaningful: %d components", es.Components)
	}
	if es.ResolvedComponents > es.Components/4 {
		t.Fatalf("one local edit re-solved %d of %d components", es.ResolvedComponents, es.Components)
	}
	if es.RebuiltFragments > es.ReusedFragments {
		t.Fatalf("one local edit rebuilt %d fragments, reused only %d", es.RebuiltFragments, es.ReusedFragments)
	}
}

// TestIncrementalEdgeCases covers the degenerate shapes of the edit space.
func TestIncrementalEdgeCases(t *testing.T) {
	opts := Options{K: 4, Algorithm: AlgLinear}
	ctx := context.Background()

	t.Run("empty-batch", func(t *testing.T) {
		l, _ := synth.GenerateByName("C432", 0.2)
		prev, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		_, inc, es, err := ApplyEdits(ctx, l, prev, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if es.ResolvedComponents != 0 || es.RebuiltFragments != 0 {
			t.Fatalf("no-op batch did work: %+v", es)
		}
		if inc.Conflicts != prev.Conflicts || inc.Stitches != prev.Stitches {
			t.Fatalf("no-op batch changed the objective")
		}
	})

	t.Run("remove-everything", func(t *testing.T) {
		l := layout.New("tiny")
		l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})
		l.AddRect(geom.Rect{X0: 40, Y0: 0, X1: 60, Y1: 20})
		prev, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		newL, inc, _, err := ApplyEdits(ctx, l, prev, []Edit{
			{Op: EditRemove, Feature: 1}, {Op: EditRemove, Feature: 0},
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(newL.Features) != 0 || len(inc.Colors) != 0 || inc.Conflicts != 0 || inc.Stitches != 0 {
			t.Fatalf("emptying the layout left residue: %d features, %d colors, %d/%d",
				len(newL.Features), len(inc.Colors), inc.Conflicts, inc.Stitches)
		}
	})

	t.Run("grow-from-empty", func(t *testing.T) {
		l := layout.New("empty")
		prev, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		edits := []Edit{
			{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})},
			{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: 40, Y0: 0, X1: 60, Y1: 20})},
		}
		newL, inc, _, err := ApplyEdits(ctx, l, prev, edits, opts)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := Decompose(newL, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, 4, inc, scratch)
	})

	t.Run("invalid-edits-rejected", func(t *testing.T) {
		l, _ := synth.GenerateByName("C432", 0.2)
		prev, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		bad := [][]Edit{
			{{Op: EditRemove, Feature: len(l.Features)}},
			{{Op: EditMove, Feature: -1}},
			{{Op: EditAdd}}, // empty shape
			{{Op: EditOp(99)}},
		}
		for i, edits := range bad {
			if _, _, _, err := ApplyEdits(ctx, l, prev, edits, opts); err == nil {
				t.Fatalf("bad batch %d accepted", i)
			}
		}
	})

	t.Run("stale-result-rejected", func(t *testing.T) {
		l, _ := synth.GenerateByName("C432", 0.2)
		prev, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		other, _ := synth.GenerateByName("C499", 0.2)
		if _, _, _, err := ApplyEdits(ctx, other, prev, nil, opts); err == nil {
			t.Fatal("result/layout feature-count mismatch accepted")
		}
		if _, _, _, err := ApplyEdits(ctx, l, prev, nil, Options{K: 5, Algorithm: AlgLinear}); err == nil {
			t.Fatal("K mismatch accepted")
		}
		// Any solve-affecting option mismatch must be rejected: copied
		// components would mix engines/settings and break equivalence.
		for i, bad := range []Options{
			{K: 4, Algorithm: AlgSDPGreedy},
			{K: 4, Algorithm: AlgLinear, Seed: 99},
			{K: 4, Algorithm: AlgLinear, Alpha: 0.3},
			{K: 4, Algorithm: AlgLinear, Build: BuildOptions{DisableStitches: true}},
		} {
			if _, _, _, err := ApplyEdits(ctx, l, prev, nil, bad); err == nil {
				t.Fatalf("option mismatch %d accepted", i)
			}
		}
	})

	t.Run("stitch-region-edit", func(t *testing.T) {
		// Editing next to a wire changes its projection intervals, so its
		// fragmentation must be rebuilt (the suspect path) and the result
		// must still match scratch.
		l := layout.New("stitchy")
		l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 400, Y1: 20})    // the wire
		l.AddRect(geom.Rect{X0: 0, Y0: 60, X1: 60, Y1: 80})    // left pin
		l.AddRect(geom.Rect{X0: 340, Y0: 60, X1: 400, Y1: 80}) // right pin
		prev, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Add a contact over the wire's formerly uncovered middle: the
		// stitch candidate there must disappear, exactly as from scratch.
		edits := []Edit{{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: 180, Y0: 60, X1: 220, Y1: 80})}}
		newL, inc, es, err := ApplyEdits(ctx, l, prev, edits, opts)
		if err != nil {
			t.Fatal(err)
		}
		if es.RebuiltFeatures < 2 { // the added contact and the re-split wire
			t.Fatalf("expected the wire to be rebuilt: %+v", es)
		}
		scratch, err := Decompose(newL, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, 4, inc, scratch)
	})
}

// TestIncrementalDisabledStitches exercises the DisableStitches build mode,
// where fragmentation is feature-identity and only edges change.
func TestIncrementalDisabledStitches(t *testing.T) {
	l, err := synth.GenerateByName("C432", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 4, Algorithm: AlgLinear, Build: BuildOptions{DisableStitches: true}}
	prev, err := Decompose(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 4; step++ {
		edits := randomEdits(rng, l)
		newL, inc, _, err := ApplyEdits(context.Background(), l, prev, edits, opts)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := Decompose(newL, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, 4, inc, scratch)
		l, prev = newL, inc
	}
}

// TestIncrementalCancelledDegrades: the deadline contract carries over —
// a dead context still yields a valid coloring, flagged Degraded.
func TestIncrementalCancelledDegrades(t *testing.T) {
	l, err := synth.GenerateByName("C432", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 4, Algorithm: AlgSDPBacktrack}
	prev, err := Decompose(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Remove a macro-region feature so at least one dense component must be
	// re-solved under the dead context.
	_, inc, es, err := ApplyEdits(ctx, l, prev, []Edit{{Op: EditRemove, Feature: 3}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Validate(inc.Graph.G, inc.Colors, 4); err != nil {
		t.Fatalf("degraded incremental result invalid: %v", err)
	}
	if es.ResolvedComponents > 0 && inc.Degraded == 0 {
		t.Fatalf("dead context re-solved %d components at full quality", es.ResolvedComponents)
	}
	if inc.Degraded > 0 && inc.Proven {
		t.Fatal("degraded result claims Proven")
	}
}
