package core

import (
	"testing"
	"time"

	"mpl/internal/bound"
	"mpl/internal/division"
	"mpl/internal/geom"
	"mpl/internal/layout"
)

// contactCluster builds the Fig. 1 standard-cell contact scenario: four
// 20×20 contacts arranged in a square with 40 nm center pitch, so all four
// are pairwise within the QP coloring distance (80 nm) — a 4-clique.
func contactCluster() *layout.Layout {
	l := layout.New("fig1")
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 0, Y: 40}, {X: 40, Y: 40}} {
		l.AddRect(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 20, Y1: p.Y + 20})
	}
	return l
}

func TestFig1FourClique(t *testing.T) {
	l := contactCluster()
	dg, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.ConflictEdges != 6 {
		t.Fatalf("conflict edges = %d, want 6 (4-clique)", dg.Stats.ConflictEdges)
	}
	// Under TPL (K=3) one conflict is native; under QPL it vanishes.
	for _, tc := range []struct {
		k    int
		want int
	}{{3, 1}, {4, 0}} {
		res, err := Decompose(l, Options{K: tc.k, Algorithm: AlgLinear, Build: BuildOptions{MinS: 80}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Conflicts != tc.want {
			t.Fatalf("K=%d: conflicts = %d, want %d", tc.k, res.Conflicts, tc.want)
		}
	}
}

// TestFig7K5Structure: the paper's Fig. 7 — at mins = 2·sm + wm = 60 a
// regular pattern forms a K5 (center plus four arms all mutually within
// distance).
func TestFig7K5Structure(t *testing.T) {
	l := layout.New("fig7")
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: -40, Y: 0}, {X: 0, Y: 40}, {X: 0, Y: -40}} {
		l.AddRect(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 20, Y1: p.Y + 20})
	}
	dg, err := BuildGraph(l, BuildOptions{MinS: 60})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.ConflictEdges != 10 {
		t.Fatalf("conflict edges = %d, want 10 (K5)", dg.Stats.ConflictEdges)
	}
	// K5 is not 4-colorable: one conflict is native for every engine.
	for _, alg := range []Algorithm{AlgLinear, AlgSDPBacktrack, AlgSDPGreedy, AlgILP} {
		res, err := Decompose(l, Options{K: 4, Algorithm: alg, Build: BuildOptions{MinS: 60}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Conflicts != 1 {
			t.Fatalf("%v: conflicts = %d, want 1", alg, res.Conflicts)
		}
	}
}

func TestStitchCandidateGeneration(t *testing.T) {
	// A long horizontal wire flanked by two contacts near its ends: the
	// middle is projection-free, so exactly one stitch candidate appears.
	l := layout.New("stitch")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 400, Y1: 20})    // the wire
	l.AddRect(geom.Rect{X0: 0, Y0: 60, X1: 60, Y1: 80})    // left neighbor (gap 40 < 80)
	l.AddRect(geom.Rect{X0: 340, Y0: 60, X1: 400, Y1: 80}) // right neighbor
	dg, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.Fragments != 4 {
		t.Fatalf("fragments = %d, want 4 (wire split once + 2 contacts)", dg.Stats.Fragments)
	}
	if dg.Stats.StitchEdges != 1 {
		t.Fatalf("stitch edges = %d, want 1", dg.Stats.StitchEdges)
	}
	// The stitch lets the wire halves take different colors, resolving
	// both contacts conflict-free.
	res, err := Decompose(l, Options{K: 4, Algorithm: AlgILP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0", res.Conflicts)
	}
}

func TestStitchDisabled(t *testing.T) {
	l := layout.New("nostitch")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 400, Y1: 20})
	l.AddRect(geom.Rect{X0: 0, Y0: 60, X1: 60, Y1: 80})
	dg, err := BuildGraph(l, BuildOptions{K: 4, DisableStitches: true})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.Fragments != 2 || dg.Stats.StitchEdges != 0 {
		t.Fatalf("stats = %+v, want no splitting", dg.Stats)
	}
}

func TestColorFriendlyDetection(t *testing.T) {
	// Two contacts at gap 90: beyond mins=80 but inside mins+hp=100 →
	// friend edge, no conflict edge.
	l := layout.New("friend")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})
	l.AddRect(geom.Rect{X0: 110, Y0: 0, X1: 130, Y1: 20})
	dg, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.ConflictEdges != 0 || dg.Stats.FriendEdges != 1 {
		t.Fatalf("stats = %+v, want 0 conflicts / 1 friend", dg.Stats)
	}
}

func TestVerifySolutionAgrees(t *testing.T) {
	l := layout.New("verify")
	// A denser cluster with a wire to produce conflicts and stitches.
	for x := 0; x < 5; x++ {
		for y := 0; y < 3; y++ {
			l.AddRect(geom.Rect{X0: x * 40, Y0: y * 40, X1: x*40 + 20, Y1: y*40 + 20})
		}
	}
	l.AddRect(geom.Rect{X0: 0, Y0: 160, X1: 400, Y1: 180})
	for _, alg := range []Algorithm{AlgLinear, AlgSDPGreedy} {
		res, err := Decompose(l, Options{K: 4, Algorithm: alg, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		conf, stit, err := VerifySolution(res)
		if err != nil {
			t.Fatal(err)
		}
		if conf != res.Conflicts || stit != res.Stitches {
			t.Fatalf("%v: verifier says %d/%d, result says %d/%d",
				alg, conf, stit, res.Conflicts, res.Stitches)
		}
	}
}

func TestEmptyLayout(t *testing.T) {
	res, err := Decompose(layout.New("empty"), Options{K: 4, Algorithm: AlgLinear})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Colors) != 0 || res.Conflicts != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestInvalidLayoutRejected(t *testing.T) {
	l := layout.New("bad")
	l.Add(geom.NewPolygon(geom.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2}, geom.Rect{X0: 50, Y0: 50, X1: 52, Y1: 52}))
	if _, err := Decompose(l, Options{K: 4}); err == nil {
		t.Fatal("disconnected feature accepted")
	}
}

func TestMasksPartition(t *testing.T) {
	l := contactCluster()
	res, err := Decompose(l, Options{K: 4, Algorithm: AlgLinear})
	if err != nil {
		t.Fatal(err)
	}
	masks := res.Masks()
	if len(masks) != 4 {
		t.Fatalf("masks = %d", len(masks))
	}
	total := 0
	for _, m := range masks {
		total += len(m)
	}
	if total != len(res.Graph.Fragments) {
		t.Fatalf("mask fragments = %d, want %d", total, len(res.Graph.Fragments))
	}
	// The 4-clique must use all four masks exactly once.
	for c, m := range masks {
		if len(m) != 1 {
			t.Fatalf("mask %d holds %d fragments, want 1", c, len(m))
		}
	}
}

func TestILPTimeBudgetReportsUnproven(t *testing.T) {
	// A layout with several K5 clusters and a 1 ns budget: the ILP engine
	// must fall back and clear Proven.
	l := layout.New("budget")
	for cluster := 0; cluster < 3; cluster++ {
		ox := cluster * 1000
		for _, p := range []geom.Point{{X: ox, Y: 0}, {X: ox + 40, Y: 0}, {X: ox - 40, Y: 0}, {X: ox, Y: 40}, {X: ox, Y: -40}} {
			l.AddRect(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 20, Y1: p.Y + 20})
		}
	}
	res, err := Decompose(l, Options{
		K: 4, Algorithm: AlgILP, ILPTimeLimit: time.Nanosecond,
		Build: BuildOptions{MinS: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatal("1ns ILP budget reported proven")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for s, want := range map[string]Algorithm{
		"ilp": AlgILP, "sdp": AlgSDPBacktrack, "sdp-backtrack": AlgSDPBacktrack,
		"backtrack": AlgSDPBacktrack, "sdp-greedy": AlgSDPGreedy,
		"greedy": AlgSDPGreedy, "linear": AlgLinear,
	} {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAlgorithm("magic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgILP: "ILP", AlgSDPBacktrack: "SDP+Backtrack",
		AlgSDPGreedy: "SDP+Greedy", AlgLinear: "Linear",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", int(a), a.String())
		}
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm has empty name")
	}
}

func TestPentuplePatterning(t *testing.T) {
	// Section 5 generality: a K6 clique needs one conflict under K=5 and
	// none under K=6.
	l := layout.New("k6")
	pts := []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 80, Y: 0}, {X: 0, Y: 40}, {X: 40, Y: 40}, {X: 80, Y: 40}}
	for _, p := range pts {
		l.AddRect(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 20, Y1: p.Y + 20})
	}
	// With MinS=110 (pentuple distance) all 6 contacts are mutually close.
	for _, tc := range []struct{ k, want int }{{5, 1}, {6, 0}} {
		res, err := Decompose(l, Options{K: tc.k, Algorithm: AlgSDPBacktrack, Build: BuildOptions{MinS: 110}, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Conflicts != tc.want {
			t.Fatalf("K=%d: conflicts = %d, want %d", tc.k, res.Conflicts, tc.want)
		}
	}
}

func TestBalanceMasksInvariant(t *testing.T) {
	l := layout.New("balance")
	// Several disjoint contact pairs: lots of rotation freedom.
	for i := 0; i < 12; i++ {
		l.AddRect(geom.Rect{X0: i * 300, Y0: 0, X1: i*300 + 20, Y1: 20})
		l.AddRect(geom.Rect{X0: i*300 + 40, Y0: 0, X1: i*300 + 60, Y1: 20})
	}
	res, err := Decompose(l, Options{K: 4, Algorithm: AlgLinear})
	if err != nil {
		t.Fatal(err)
	}
	c0, s0 := res.Conflicts, res.Stitches
	before, after := BalanceMasks(res)
	if after > before+1e-12 {
		t.Fatalf("spread worsened: %v -> %v", before, after)
	}
	conf, stit, err := VerifySolution(res)
	if err != nil {
		t.Fatal(err)
	}
	if conf != c0 || stit != s0 {
		t.Fatalf("balancing changed cost: %d/%d -> %d/%d", c0, s0, conf, stit)
	}
	// Linear colors everything greedily toward low indices, so the
	// unbalanced input must actually improve here.
	if after >= before && before > 0 {
		t.Fatalf("no improvement: %v -> %v", before, after)
	}
}

func TestWorkersMatchSerialOnBenchmark(t *testing.T) {
	l := layout.New("par")
	for i := 0; i < 10; i++ {
		ox := i * 600
		for _, p := range []geom.Point{{X: ox, Y: 0}, {X: ox + 40, Y: 0}, {X: ox, Y: 40}, {X: ox + 40, Y: 40}} {
			l.AddRect(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 20, Y1: p.Y + 20})
		}
	}
	serial, err := Decompose(l, Options{K: 4, Algorithm: AlgSDPBacktrack, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Decompose(l, Options{
		K: 4, Algorithm: AlgSDPBacktrack, Seed: 2,
		Division: division.Options{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Colors {
		if serial.Colors[i] != par.Colors[i] {
			t.Fatalf("fragment %d: serial %d, parallel %d", i, serial.Colors[i], par.Colors[i])
		}
	}
	if serial.Conflicts != par.Conflicts || serial.Stitches != par.Stitches {
		t.Fatalf("cost mismatch: %d/%d vs %d/%d",
			serial.Conflicts, serial.Stitches, par.Conflicts, par.Stitches)
	}
}

func TestConflictBoundCertifiesHeuristics(t *testing.T) {
	// On a layout whose conflicts all come from K5 crosses, the clique
	// packing bound certifies the linear engine's conflict count as
	// optimal — no ILP needed.
	l := layout.New("cert")
	for c := 0; c < 4; c++ {
		ox := c * 1000
		for _, d := range []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: -40, Y: 0}, {X: 0, Y: 40}, {X: 0, Y: -40}} {
			l.AddRect(geom.Rect{X0: ox + d.X, Y0: d.Y, X1: ox + d.X + 20, Y1: d.Y + 20})
		}
	}
	dg, err := BuildGraph(l, BuildOptions{MinS: 60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecomposeGraph(dg, Options{K: 4, Algorithm: AlgLinear, Build: BuildOptions{MinS: 60}})
	if err != nil {
		t.Fatal(err)
	}
	lb := bound.MinConflicts(dg.G, 4)
	if lb != 4 {
		t.Fatalf("lower bound = %d, want 4", lb)
	}
	if res.Conflicts != lb {
		t.Fatalf("linear conflicts %d != certified optimum %d", res.Conflicts, lb)
	}
}
