package core

// Representation-equivalence suite for the CSR graph core: the arena-backed
// two-pass build (graph.Builder) must produce graphs byte-identical to the
// legacy mutable-adjacency representation — the pre-CSR per-insert path,
// preserved below as referenceBuildGraph — on every committed circuit and
// across a population of seeded random layouts, at workers 1 and 8 (the
// resident serial stream and the sharded parallel stream).

import (
	"fmt"
	"testing"

	"mpl/internal/geom"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/spatial"
	"mpl/internal/synth"
)

// referenceBuildGraph is the legacy serial builder kept as the test oracle:
// fragments split in feature order, then a graph.New mutable graph grown
// edge by edge through sorted per-insert Add* calls — the exact
// representation and insertion discipline the codebase used before the CSR
// core, whose output the golden suites pinned.
func referenceBuildGraph(l *layout.Layout, opts BuildOptions) (*Graph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	if k == 0 {
		k = 4
	}
	minS := opts.MinS
	if minS == 0 {
		minS = l.Process.MinColoringDistance(k)
	}
	if minS <= 0 {
		return nil, fmt.Errorf("core: non-positive minimum coloring distance %d", minS)
	}
	hp := l.Process.HalfPitch

	// Stage 1: per-feature stitch splitting (serial).
	nf := len(l.Features)
	pieces := make([][]geom.Polygon, nf)
	stitches := make([][][2]int, nf)
	if opts.DisableStitches {
		for fi := range l.Features {
			pieces[fi] = []geom.Polygon{l.Features[fi]}
		}
	} else {
		minSeg := opts.StitchMinSeg
		if minSeg == 0 {
			minSeg = l.Process.MinWidth
		}
		maxStitch := opts.MaxStitchesPerFeature
		if maxStitch == 0 {
			maxStitch = 2
		}
		splitter := newStitchSplitter(l, minS, minSeg, maxStitch)
		defer splitter.grid.Release()
		q := splitter.grid.NewQuerier()
		defer q.Release()
		for fi := range l.Features {
			ps := splitter.split(q, fi, l.Features[fi])
			pieces[fi] = ps
			for i := 0; i < len(ps); i++ {
				for j := i + 1; j < len(ps); j++ {
					if geom.GapSqPoly(ps[i], ps[j]) == 0 {
						stitches[fi] = append(stitches[fi], [2]int{i, j})
					}
				}
			}
		}
	}

	// Stage 2: fragment numbering and mutable stitch insertion.
	var frags []Fragment
	fragsOfFeature := make([][]int, nf)
	for fi, ps := range pieces {
		for _, p := range ps {
			fragsOfFeature[fi] = append(fragsOfFeature[fi], len(frags))
			frags = append(frags, Fragment{Feature: fi, Shape: p})
		}
	}
	g := graph.New(len(frags))
	stats := BuildStats{Features: nf, Fragments: len(frags), Workers: 1}
	for fi, pairs := range stitches {
		ids := fragsOfFeature[fi]
		for _, pr := range pairs {
			if g.AddStitch(ids[pr[0]], ids[pr[1]]) {
				stats.StitchEdges++
			}
		}
	}

	// Stage 3: per-insert conflict/friend discovery in ascending order.
	n := len(frags)
	if n > 0 {
		radius := minS + hp
		world := l.Bounds().Expand(radius + 1)
		grid := spatial.NewGrid(world, radius, n)
		defer grid.Release()
		for _, fr := range frags {
			grid.Insert(fr.Shape.Bounds())
		}
		minSq := int64(minS) * int64(minS)
		friendOuter := int64(radius) * int64(radius)
		for i := 0; i < n; i++ {
			fi := frags[i]
			grid.Near(fi.Shape.Bounds(), radius, func(j int) {
				if j <= i || fi.Feature == frags[j].Feature {
					return
				}
				d := geom.GapSqPoly(fi.Shape, frags[j].Shape)
				switch {
				case d <= minSq:
					if g.AddConflict(i, j) {
						stats.ConflictEdges++
					}
				case d < friendOuter:
					if g.AddFriend(i, j) {
						stats.FriendEdges++
					}
				}
			})
		}
	}
	return &Graph{G: g, Fragments: frags, Stats: stats, MinS: minS, HalfPitch: hp}, nil
}

// TestCSRMatchesLegacyCommitted: on every committed circuit (plus the two
// synthetic regimes), the CSR build at workers 1 (resident stream) and 8
// (sharded per-chunk streams) is byte-identical to the legacy mutable
// representation.
func TestCSRMatchesLegacyCommitted(t *testing.T) {
	for name, l := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := referenceBuildGraph(l, BuildOptions{K: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 8} {
				got, err := BuildGraph(l, BuildOptions{K: 4, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				graphsIdentical(t, ref, got)
			}
		})
	}
}

// TestCSRMatchesLegacyRandom is the population property: 200 seeded random
// layouts, CSR workers 1/8 versus the legacy oracle.
func TestCSRMatchesLegacyRandom(t *testing.T) {
	cases := 200
	if raceEnabled {
		cases = 40
	}
	if testing.Short() {
		cases = 25
	}
	for seed := 0; seed < cases; seed++ {
		l := synth.Random(int64(seed))
		ref, err := referenceBuildGraph(l, BuildOptions{K: 4})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, w := range []int{1, 8} {
			got, err := BuildGraph(l, BuildOptions{K: 4, Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			graphsIdentical(t, ref, got)
		}
	}
}
