package core

// Integration tests for the adaptive engine portfolio: auto/race dispatch
// through the full division pipeline, race-loser cancellation hygiene
// (no goroutine leaks), deadline degradation, and the ECO path under auto.

import (
	"context"
	"runtime"
	"slices"
	"testing"
	"time"

	"mpl/internal/coloring"
	"mpl/internal/geom"
	"mpl/internal/layout"
)

// crossesLayout builds two K5 cross clusters plus a sparse row: every piece
// reaching the solver is a 5-vertex cross whose optimal cost is 1 conflict
// at K=4 — never 0 — so a race between ILP (primary at this size) and
// SDP+Backtrack always ends in a cost tie broken toward the primary. That
// makes race-mode winners provably identical to auto mode's selections,
// the setup the byte-equivalence test needs.
func crossesLayout() *layout.Layout {
	l := layout.New("crosses")
	cross := func(cx, cy int) {
		for _, d := range [][2]int{{0, 0}, {40, 0}, {-40, 0}, {0, 40}, {0, -40}} {
			l.AddRect(geom.Rect{X0: cx + d[0], Y0: cy + d[1], X1: cx + d[0] + 20, Y1: cy + d[1] + 20})
		}
	}
	cross(0, 0)
	cross(1000, 0)
	for i := 0; i < 6; i++ {
		l.AddRect(geom.Rect{X0: i * 300, Y0: 600, X1: i*300 + 20, Y1: 620})
	}
	return l
}

func TestRaceByteEquivalentToAutoOnIdenticalWinners(t *testing.T) {
	l := crossesLayout()
	g, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := DecomposeGraph(g, Options{K: 4, Engine: EngineAuto, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	race, err := DecomposeGraph(g, Options{K: 4, Engine: EngineRace, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same winners (the tie-break sends every cross to the primary, which
	// is auto's selection) — so the colorings must be byte-identical.
	if len(auto.DivisionStats.Engines) == 0 {
		t.Fatalf("auto recorded no engine dispatches: %+v", auto.DivisionStats)
	}
	for name, n := range auto.DivisionStats.Engines {
		if race.DivisionStats.Engines[name] != n {
			t.Fatalf("winner histograms differ: auto %v, race %v — the cost-tie break no longer prefers the primary",
				auto.DivisionStats.Engines, race.DivisionStats.Engines)
		}
	}
	if !slices.Equal(auto.Colors, race.Colors) {
		t.Errorf("race winners match auto's selections but the colors differ")
	}
	if auto.Conflicts != 2 {
		t.Errorf("two K5 crosses at K=4 must cost exactly 2 conflicts, got %d", auto.Conflicts)
	}
}

func TestRaceLeaksNoGoroutines(t *testing.T) {
	l := crossesLayout()
	g, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: one run so lazily started runtime helpers don't count.
	if _, err := DecomposeGraph(g, Options{K: 4, Engine: EngineRace, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		res, err := DecomposeGraph(g, Options{K: 4, Engine: EngineRace, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := coloring.Validate(res.Graph.G, res.Colors, 4); err != nil {
			t.Fatal(err)
		}
	}
	// Cancelled losers exit at their next checkpoint; give them a moment,
	// then require the count back at (or below) the baseline. A small
	// tolerance absorbs unrelated runtime goroutines, not race losers —
	// 8 runs × several pieces × 1 loser each would blow well past it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d five seconds after 8 race runs — race losers are leaking",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRace1msDeadlineStillReturnsValidResult(t *testing.T) {
	l := fuzzBaseLayout()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := DecomposeContext(ctx, l, Options{K: 4, Engine: EngineRace, Seed: 1})
	if err != nil {
		t.Fatalf("a dead deadline must degrade, not fail: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("1ms-deadline race took %v; cancellation is not propagating", elapsed)
	}
	if err := coloring.Validate(res.Graph.G, res.Colors, 4); err != nil {
		t.Fatalf("degraded result must still be a valid coloring: %v", err)
	}
	conf, stit, err := VerifySolution(res)
	if err != nil {
		t.Fatal(err)
	}
	if conf != res.Conflicts || stit != res.Stitches {
		t.Fatalf("degraded result recount %d/%d disagrees with reported %d/%d", conf, stit, res.Conflicts, res.Stitches)
	}
	if res.Degraded > 0 && res.Proven {
		t.Fatal("a degraded result cannot claim to be proven")
	}
}

func TestRaceTinyBudgetDegradesGracefully(t *testing.T) {
	l := fuzzBaseLayout()
	// A 1ns budget expires before either racer reaches its first
	// checkpoint: both return incumbents, the better one is kept, and the
	// result stays a complete valid coloring (the engines' contract).
	res, err := Decompose(l, Options{K: 4, Engine: EngineRace, Seed: 1, RaceBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Validate(res.Graph.G, res.Colors, 4); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	l := fuzzBaseLayout()
	if _, err := Decompose(l, Options{K: 4, Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
	prev, err := Decompose(l, Options{K: 4, Algorithm: AlgLinear})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ApplyEdits(context.Background(), l, prev, []Edit{{Op: EditRemove, Feature: 0}}, Options{K: 4, Engine: "bogus"}); err == nil {
		t.Fatal("ApplyEdits must reject an unknown engine")
	}
}

func TestApplyEditsAutoMatchesScratch(t *testing.T) {
	// The ECO path under the auto policy: auto is deterministic (structural
	// selection + deterministic engines), so incremental results must still
	// be byte-equivalent to a from-scratch auto run of the edited layout.
	base := fuzzBaseLayout()
	opts := Options{K: 4, Engine: EngineAuto, Seed: 1}
	prev, err := Decompose(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	edits := []Edit{
		{Op: EditMove, Feature: 16, DX: 40},
		{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: 60, Y0: 220, X1: 80, Y1: 240})},
	}
	newL, inc, _, err := ApplyEdits(context.Background(), base, prev, edits, opts)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Decompose(newL, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, 4, inc, scratch)
}
