package core

import (
	"context"
	"slices"
	"testing"
	"time"

	"mpl/internal/geom"
	"mpl/internal/layout"
)

// fuzzBaseLayout is the fixed pre-edit layout FuzzApplyEdits mutates: a
// dense 4×4 contact cluster (survives peeling, reaches the solver), a wire
// with pinned ends (a live stitch candidate), a K5 cross (one native
// conflict), and a sparse contact row (single-vertex components) — every
// structural regime ApplyEdits has to preserve.
func fuzzBaseLayout() *layout.Layout {
	l := layout.New("fuzz-base")
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			l.AddRect(geom.Rect{X0: c * 50, Y0: r * 50, X1: c*50 + 20, Y1: r*50 + 20})
		}
	}
	l.AddRect(geom.Rect{X0: 400, Y0: 0, X1: 800, Y1: 20})
	l.AddRect(geom.Rect{X0: 400, Y0: 60, X1: 460, Y1: 80})
	l.AddRect(geom.Rect{X0: 740, Y0: 60, X1: 800, Y1: 80})
	for _, d := range [][2]int{{0, 0}, {40, 0}, {-40, 0}, {0, 40}, {0, -40}} {
		l.AddRect(geom.Rect{X0: 1000 + d[0], Y0: d[1], X1: 1000 + d[0] + 20, Y1: d[1] + 20})
	}
	for i := 0; i < 8; i++ {
		l.AddRect(geom.Rect{X0: i * 300, Y0: 400, X1: i*300 + 20, Y1: 420})
	}
	return l
}

// decodeEdits turns fuzz bytes into an edit batch: five bytes per op,
// indices reduced modulo the running feature count so most inputs exercise
// the interesting (valid) paths rather than the argument validation.
func decodeEdits(data []byte, nf int) []Edit {
	cnt := nf
	var edits []Edit
	for len(data) >= 5 && len(edits) < 8 {
		op := int(data[0]) % 3
		if cnt == 0 {
			op = 0
		}
		switch op {
		case 0:
			x, y := int(int8(data[1]))*20, int(int8(data[2]))*20
			w, h := 20+int(data[3]%5)*20, 20+int(data[4]%5)*20
			edits = append(edits, Edit{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: x, Y0: y, X1: x + w, Y1: y + h})})
			cnt++
		case 1:
			edits = append(edits, Edit{Op: EditRemove, Feature: int(data[1]) % cnt})
			cnt--
		case 2:
			edits = append(edits, Edit{
				Op: EditMove, Feature: int(data[1]) % cnt,
				DX: int(int8(data[2])) * 5, DY: int(int8(data[3])) * 5,
			})
		}
		data = data[5:]
	}
	return edits
}

// FuzzApplyEdits is the fuzz face of the equivalence harness: arbitrary
// byte-decoded edit batches applied incrementally must match a from-scratch
// build+solve of the post-edit layout exactly — and must never panic.
func FuzzApplyEdits(f *testing.F) {
	// Seeds: one op of each kind, a mixed batch, boundary-ish coordinates,
	// and a long batch that drains and regrows the layout.
	f.Add([]byte{0, 2, 3, 1, 1})                                       // add
	f.Add([]byte{1, 7, 0, 0, 0})                                       // remove
	f.Add([]byte{2, 16, 4, 252, 0})                                    // move the wire
	f.Add([]byte{2, 0, 128, 127, 0, 1, 0, 0, 0, 0, 0, 200, 200, 2, 2}) // move far, remove, add far
	f.Add([]byte{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0,
		0, 1, 1, 0, 0, 0, 2, 2, 0, 0, 2, 1, 5, 5, 0, 1, 3, 0, 0, 0})

	base := fuzzBaseLayout()
	opts := Options{K: 4, Algorithm: AlgLinear, Seed: 1}
	prev, err := Decompose(base, opts)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		edits := decodeEdits(data, len(base.Features))
		newL, inc, _, err := ApplyEdits(context.Background(), base, prev, edits, opts)
		if err != nil {
			t.Fatalf("decoded edits must be valid, got %v for %v", err, edits)
		}
		scratch, err := Decompose(newL, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, 4, inc, scratch)
	})
}

// FuzzPortfolioAuto drives the adaptive auto policy over the same byte-
// decoded edit-op layout space as FuzzApplyEdits: arbitrary edit batches
// morph the base layout, and the portfolio must dispatch every resulting
// component to *some* engine whose answer upholds the full solution
// invariant set (validity, stitch structure, cn#/st# recounts, histogram
// accounting) — and must be deterministic, since auto's selection is purely
// structural and its engines are seeded.
func FuzzPortfolioAuto(f *testing.F) {
	f.Add([]byte{0, 2, 3, 1, 1})
	f.Add([]byte{1, 7, 0, 0, 0})
	f.Add([]byte{2, 16, 4, 252, 0})
	f.Add([]byte{2, 0, 128, 127, 0, 1, 0, 0, 0, 0, 0, 200, 200, 2, 2})

	base := fuzzBaseLayout()
	// The thresholds bound the ILP tier by size and density, but a fuzzed
	// edit can still assemble a small dense piece whose exact search is
	// slow; the budget caps it (expiry degrades to the linear engine, which
	// upholds the same invariants) and keeps every input fast.
	opts := Options{K: 4, Engine: EngineAuto, Seed: 1, ILPTimeLimit: 2 * time.Second}

	f.Fuzz(func(t *testing.T, data []byte) {
		edits := decodeEdits(data, len(base.Features))
		l, err := EditLayout(base, edits)
		if err != nil {
			t.Fatalf("decoded edits must be valid, got %v for %v", err, edits)
		}
		res, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSolutionInvariants(t, "auto", len(l.Features), 4, res)
		if !res.Proven {
			// A truncated exact search (ILP budget) is wall-clock dependent;
			// determinism is only promised for untruncated runs.
			return
		}
		res2, err := Decompose(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Proven && !slices.Equal(res.Colors, res2.Colors) {
			t.Fatal("auto policy is not deterministic on identical input")
		}
	})
}
