package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpl/internal/balance"
	"mpl/internal/canon"
	"mpl/internal/coloring"
	"mpl/internal/division"
	"mpl/internal/geom"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/pipeline"
	"mpl/internal/portfolio"
	"mpl/internal/sdp"
	"mpl/internal/spatial"
)

// Algorithm selects the color-assignment engine of Section 3.
type Algorithm int

// The four engines compared in Tables 1 and 2 of the paper.
const (
	// AlgILP is the exact integer-linear-programming baseline.
	AlgILP Algorithm = iota
	// AlgSDPBacktrack is SDP relaxation + merged-graph backtracking (Alg. 1).
	AlgSDPBacktrack
	// AlgSDPGreedy is SDP relaxation + greedy mapping.
	AlgSDPGreedy
	// AlgLinear is the linear-time color assignment (Alg. 2).
	AlgLinear
)

// String implements fmt.Stringer with the paper's column names.
func (a Algorithm) String() string {
	switch a {
	case AlgILP:
		return "ILP"
	case AlgSDPBacktrack:
		return "SDP+Backtrack"
	case AlgSDPGreedy:
		return "SDP+Greedy"
	case AlgLinear:
		return "Linear"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Engine values: the per-component engine policy of Options.Engine. The
// empty string keeps the classic behavior — Options.Algorithm applied
// uniformly to every component.
const (
	// EngineFixed applies Options.Algorithm to every component.
	EngineFixed = ""
	// EngineAuto selects an engine per component from its structure
	// (internal/portfolio thresholds over size, density, odd cycles).
	EngineAuto = "auto"
	// EngineRace runs two candidate engines per component concurrently
	// under Options.RaceBudget, keeping the provably-optimal or better
	// result and cancelling the loser.
	EngineRace = "race"
)

// ParseEngine validates an engine policy name ("", "auto" or "race").
func ParseEngine(s string) (string, error) {
	switch s {
	case EngineFixed, EngineAuto, EngineRace:
		return s, nil
	}
	return "", fmt.Errorf("core: unknown engine %q (want \"auto\", \"race\" or empty for fixed)", s)
}

// ParseAlgorithm maps a command-line name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "ilp":
		return AlgILP, nil
	case "sdp", "sdp-backtrack", "backtrack":
		return AlgSDPBacktrack, nil
	case "sdp-greedy", "greedy":
		return AlgSDPGreedy, nil
	case "linear":
		return AlgLinear, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want ilp, sdp-backtrack, sdp-greedy or linear)", s)
}

// Options configures a decomposition run. The zero value plus K is usable;
// defaults follow the paper (α = 0.1, t_th = 0.9, all division techniques).
type Options struct {
	// K is the number of masks; 0 means 4 (quadruple patterning).
	K int
	// Algorithm picks the color-assignment engine applied to every
	// component when Engine is empty (the fixed policy).
	Algorithm Algorithm
	// Engine selects the per-component engine policy: EngineFixed (""),
	// EngineAuto or EngineRace. Auto and race ignore Algorithm and pick
	// engines per component (internal/portfolio).
	Engine string
	// Portfolio tunes the auto/race selection thresholds; the zero value
	// uses the BENCH-calibrated defaults. Ignored when Engine is fixed.
	Portfolio portfolio.Thresholds
	// RaceBudget is the shared per-component deadline of EngineRace: both
	// racers run under one child context bounded by it, so a component can
	// never hold the race longer than this even when the request context
	// has a distant deadline. 0 means 2s; negative disables the bound
	// (the request context still applies).
	RaceBudget time.Duration
	// Alpha is the stitch weight; 0 means 0.1.
	Alpha float64
	// Threshold is Algorithm 1's merge threshold t_th; 0 means 0.9.
	Threshold float64
	// Seed drives the SDP solver's deterministic restarts.
	Seed int64
	// ILPTimeLimit bounds the total ILP solve time across components; the
	// zero value means 60 s (the paper used 3600 s on full-chip cases).
	ILPTimeLimit time.Duration
	// BacktrackNodeLimit bounds Algorithm 1's search; 0 means 2e6 nodes.
	BacktrackNodeLimit int64
	// SDPRestarts / SDPMaxIter tune the relaxation solver (0 = defaults).
	SDPRestarts int
	SDPMaxIter  int
	// Memoize enables canonical-shape memoization of Dispatch solves
	// (internal/canon, DESIGN.md §11): every solver piece is canonicalized
	// and byte-identical repeats of an already-solved piece are answered
	// from a process-wide shape cache instead of re-running an engine.
	// Results are byte-identical to a memo-off run. Ignored (forced off)
	// by EngineRace, whose winners are wall-clock dependent.
	Memoize bool
	// Build controls graph construction.
	Build BuildOptions
	// Division toggles the Section 4 techniques (ablations).
	Division division.Options
	// Linear tunes Algorithm 2.
	Linear coloring.LinearOptions
}

// Normalize returns o with every defaulted field resolved to the value
// Decompose would actually use (K=4, α=0.1, t_th=0.9, ...), so that two
// Options spellings of the same run compare — and hash — equal. It panics
// for K == 1 or negative K, like Decompose.
func (o Options) Normalize() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 4
	}
	if o.K < 2 {
		panic("core: K must be >= 2")
	}
	if o.Alpha == 0 {
		o.Alpha = 0.1
	}
	if o.Threshold == 0 {
		o.Threshold = 0.9
	}
	if o.ILPTimeLimit == 0 {
		o.ILPTimeLimit = 60 * time.Second
	}
	// Engine-policy fields normalize to what the run actually reads, so
	// two spellings of the same run compare — and cache/session-key —
	// equal: a fixed-engine run reads neither portfolio field, auto reads
	// only the thresholds, only race reads the budget, and neither
	// adaptive policy ever reads Algorithm.
	switch o.Engine {
	case EngineFixed:
		o.Portfolio = portfolio.Thresholds{}
		o.RaceBudget = 0
	case EngineAuto:
		o.Algorithm = 0
		o.Portfolio = o.Portfolio.WithDefaults()
		o.RaceBudget = 0
	default:
		o.Algorithm = 0
		o.Portfolio = o.Portfolio.WithDefaults()
		if o.RaceBudget == 0 {
			o.RaceBudget = 2 * time.Second
		}
		// A race winner is wall-clock dependent, so caching its colors
		// would replay one timing outcome forever; memoization is a no-op
		// under race and normalizes off so option spellings compare equal.
		o.Memoize = false
	}
	o.Build.K = o.K
	o.Division.K = o.K
	o.Division.Alpha = o.Alpha
	o.Linear.K = o.K
	o.Linear.Alpha = o.Alpha
	// The cancellation fallback must honor the same linear-engine tuning
	// as a configured AlgLinear run.
	o.Division.Linear = o.Linear
	return o
}

// Result is a completed decomposition.
type Result struct {
	// Graph is the decomposition graph the solution colors.
	Graph *Graph
	// Colors holds one mask index in [0, K) per fragment.
	Colors []int
	// Conflicts and Stitches are the objective values (Table 1's cn#/st#).
	Conflicts int
	Stitches  int
	// Proven is false when the ILP engine hit its time budget — the
	// paper's "N/A (>3600s)" condition.
	Proven bool
	// AssignTime is the total time of division plus color assignment.
	AssignTime time.Duration
	// SolverTime is the time spent inside the per-component color
	// assignment engine only. This matches the paper's CPU(s) column:
	// Section 6 reports "color assignment time", with graph construction
	// and graph division being separate stages of the Fig. 2 flow. With
	// Division.Workers > 1 it sums across goroutines (CPU time, not wall
	// clock).
	SolverTime time.Duration
	// DivisionStats reports what the pipeline did, including the
	// per-stage telemetry map (DivisionStats.Stages, keyed by the
	// pipeline.Stage* names) covering every stage this call actually ran:
	// build appears for Decompose/DecomposeContext/ApplyEdits but not for
	// DecomposeGraph* (the graph was built earlier, possibly by someone
	// else's call — the serving layer re-attaches its own build timing).
	DivisionStats division.Stats
	// Degraded counts graph pieces colored by the linear-time fallback
	// because the context was cancelled (or its deadline passed) before
	// their engine solve started. Zero for an uncancelled run; when
	// positive, the coloring is valid but Proven is false and quality is
	// that of AlgLinear on the affected pieces.
	Degraded int
	// K and Alpha echo the options used.
	K     int
	Alpha float64
	// Options records the full normalized options of the run (worker
	// counts as requested). ApplyEdits compares them — ignoring the
	// result-neutral worker counts — against its own options, because
	// colors copied from this result are only valid under the exact
	// engine, seed, division, and stitch settings that produced them.
	Options Options
}

// Masks groups fragment shapes by assigned mask.
func (r *Result) Masks() [][]geom.Polygon {
	out := make([][]geom.Polygon, r.K)
	for i, c := range r.Colors {
		out[c] = append(out[c], r.Graph.Fragments[i].Shape)
	}
	return out
}

// sharedScratch is the process-wide scratch-arena pool every solve path
// leases per-worker buffers from: division workers thread an arena into
// each engine call (SDP matrix workspace), race-mode racers lease their
// own, and pooled arenas survive across service requests, so steady-state
// serving stops re-allocating hot-path memory. The allocation benchmarks
// (BenchmarkRepeatedSolve) compare this pool against an unpooled one.
var sharedScratch = pipeline.NewScratchPool()

// Decompose runs the full flow of Fig. 2 on a layout.
func Decompose(l *layout.Layout, opts Options) (*Result, error) {
	return DecomposeContext(context.Background(), l, opts)
}

// DecomposeContext is Decompose with cooperative cancellation: when ctx is
// cancelled (or its deadline passes), in-flight engine solves stop at their
// next cancellation checkpoint and return their incumbent, and pieces whose
// solve has not started fall back to the linear-time heuristic. The call
// therefore still returns a valid Result — with Degraded counting the
// fallback pieces and Proven false — rather than an error, so a serving
// layer can always answer with its best effort under a deadline.
func DecomposeContext(ctx context.Context, l *layout.Layout, opts Options) (*Result, error) {
	if _, err := ParseEngine(opts.Engine); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rec := pipeline.NewRecorder()
	var dg *Graph
	// The build deliberately ignores ctx: the degraded-result contract of
	// this API promises a valid best-effort coloring even when ctx is
	// already dead, and a half-built graph has no degraded form — an
	// abort-and-rebuild would only ever add work. Parallelism still applies
	// (opts.Build.Workers); callers that prefer abort-on-cancel semantics
	// compose BuildGraphContext with DecomposeGraphContext themselves.
	build := pipeline.Func(pipeline.StageBuild, func(context.Context) error {
		var err error
		//lint:ignore ctxflow deliberate: a half-built graph has no degraded form, so aborting the build only adds work (see comment above)
		dg, err = BuildGraph(l, opts.Build)
		return err
	})
	if err := pipeline.New(rec, build).Run(ctx); err != nil {
		return nil, err
	}
	return decomposeGraph(ctx, dg, opts, rec)
}

// DecomposeGraph colors an already-built decomposition graph; callers that
// sweep algorithms over one layout (cmd/evaluate) build the graph once.
func DecomposeGraph(dg *Graph, opts Options) (*Result, error) {
	return DecomposeGraphContext(context.Background(), dg, opts)
}

// DecomposeGraphContext is DecomposeGraph with the cancellation semantics
// of DecomposeContext.
func DecomposeGraphContext(ctx context.Context, dg *Graph, opts Options) (*Result, error) {
	if _, err := ParseEngine(opts.Engine); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	return decomposeGraph(ctx, dg, opts, pipeline.NewRecorder())
}

// graphRun carries one graph-coloring run through the stage pipeline. The
// divide stage is composite — internal/division tallies the Simplify,
// Partition, Dispatch and Stitch regions it interleaves per component —
// while Merge (validate + count + assemble) is recorded by the pipeline
// itself, and any stages the caller already ran (the Build of
// DecomposeContext, the incremental stages of ApplyEdits) arrive through
// the shared recorder.
type graphRun struct {
	dg     *Graph
	opts   Options
	pool   *pipeline.ScratchPool
	shapes *canon.ShapeCache

	colors     []int
	stats      division.Stats
	unproven   atomic.Bool
	solverNs   atomic.Int64
	assignTime time.Duration
	res        *Result
}

// divide runs graph division with the configured engine dispatcher over
// the shared scratch pool. The run's pipeline environment couples the
// division worker pool to the engines: one scratch pool for every arena
// lease, and one parallelism budget (sized to Division.Workers) shared by
// component-level workers and the SDP restart fan-out, so their combined
// goroutine count never exceeds the configured worker allowance.
func (r *graphRun) divide(ctx context.Context) error {
	start := time.Now()
	tally := newEngineTally()
	env := pipeline.Env{Scratch: r.pool, Budget: pipeline.NewBudget(r.opts.Division.Workers)}
	inner := makeSolver(ctx, r.opts, &r.unproven, tally, env)
	var shapeStats *shapeTally
	if r.opts.Memoize {
		shapeStats = newShapeTally()
		inner = memoSolver(ctx, r.opts, inner, &r.unproven, tally, r.shapes, shapeStats)
	}
	solver := func(g *graph.Graph, sc *pipeline.Scratch) []int {
		t0 := time.Now()
		colors := inner(g, sc)
		r.solverNs.Add(int64(time.Since(t0)))
		return colors
	}
	r.colors, r.stats = division.DecomposeEnv(ctx, r.dg.G, r.opts.Division, env, solver)
	tally.drainInto(&r.stats)
	if shapeStats != nil {
		shapeStats.drainInto(&r.stats)
	}
	r.assignTime = time.Since(start)
	return nil
}

// merge validates the full coloring, counts the objective, and assembles
// the Result.
func (r *graphRun) merge(context.Context) error {
	if err := coloring.Validate(r.dg.G, r.colors, r.opts.K); err != nil {
		return fmt.Errorf("core: internal error: %w", err)
	}
	conf, stit := coloring.Count(r.dg.G, r.colors)
	r.res = &Result{
		Graph:         r.dg,
		Colors:        r.colors,
		Conflicts:     conf,
		Stitches:      stit,
		Proven:        !r.unproven.Load() && r.stats.Fallbacks == 0,
		AssignTime:    r.assignTime,
		SolverTime:    time.Duration(r.solverNs.Load()),
		DivisionStats: r.stats,
		Degraded:      r.stats.Fallbacks,
		K:             r.opts.K,
		Alpha:         r.opts.Alpha,
		Options:       r.opts,
	}
	return nil
}

// decomposeGraph is the shared stage composition of every from-scratch
// solve: divide (composite) then merge, with rec carrying stages the
// caller already ran. opts must be validated and defaulted.
func decomposeGraph(ctx context.Context, dg *Graph, opts Options, rec *pipeline.Recorder) (*Result, error) {
	return decomposeGraphPool(ctx, dg, opts, rec, sharedScratch)
}

// decomposeGraphPool is decomposeGraph with an explicit scratch pool, so
// the allocation benchmarks can compare pooled against unpooled arenas
// without mutating the shared pool under everyone else.
func decomposeGraphPool(ctx context.Context, dg *Graph, opts Options, rec *pipeline.Recorder, pool *pipeline.ScratchPool) (*Result, error) {
	return decomposeGraphShapes(ctx, dg, opts, rec, pool, sharedShapes)
}

// decomposeGraphShapes additionally takes the shape cache, so equivalence
// and stress tests can run against a fresh cache whose hit/miss counters
// don't depend on what earlier tests populated process-wide.
func decomposeGraphShapes(ctx context.Context, dg *Graph, opts Options, rec *pipeline.Recorder, pool *pipeline.ScratchPool, shapes *canon.ShapeCache) (*Result, error) {
	run := &graphRun{dg: dg, opts: opts, pool: pool, shapes: shapes}
	p := pipeline.New(rec,
		pipeline.Composite(run.divide),
		pipeline.Func(pipeline.StageMerge, run.merge),
	)
	if err := p.Run(ctx); err != nil {
		return nil, err
	}
	// Fold the pipeline-recorded stages (build, merge) into the division
	// tally so the Result carries the complete per-stage map.
	run.res.DivisionStats.Stages = pipeline.MergeStages(run.res.DivisionStats.Stages, rec.Snapshot())
	return run.res, nil
}

// engineTally accumulates the per-engine dispatch histogram while division
// workers run the solver concurrently; drainInto publishes it to
// division.Stats.Engines once the pipeline has finished.
type engineTally struct {
	mu sync.Mutex
	m  map[string]int
}

func newEngineTally() *engineTally { return &engineTally{m: make(map[string]int)} }

func (t *engineTally) add(name string) {
	t.mu.Lock()
	t.m[name]++
	t.mu.Unlock()
}

func (t *engineTally) drainInto(st *division.Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, n := range t.m {
		st.AddEngine(name, n)
	}
}

// classSolver builds the context-aware solver for one portfolio engine
// class. The unproven flag is set when this engine's exact search is cut
// short (node limit, time budget, or ctx cancellation mid-solve); callers
// racing engines pass per-racer flags so a cancelled loser cannot taint the
// winner's provenness. fellBack (nil-safe) is set when the piece was not
// colored by the class at all — the ILP budget was already spent and the
// linear fallback answered — so dispatchers can attribute the piece to
// "fallback" instead of overstating the exact engine in the histogram.
// ilpDeadline is the run-global ILP budget expiry, shared across
// components like the classic AlgILP path. Solvers are safe for concurrent
// calls (division's Workers mode); each call carves its engine workspace
// from the scratch arena it is handed.
func classSolver(class portfolio.Class, opts Options, env pipeline.Env, unproven *atomic.Bool, fellBack *atomic.Bool, ilpDeadline time.Time) portfolio.Solver {
	switch class {
	case portfolio.Linear:
		lin := opts.Linear
		return func(_ context.Context, g *graph.Graph, _ *pipeline.Scratch) []int {
			return coloring.Linear(g, lin)
		}
	case portfolio.SDPGreedy:
		return func(ctx context.Context, g *graph.Graph, sc *pipeline.Scratch) []int {
			sol := solveSDP(ctx, g, opts, sc, env)
			return coloring.SDPGreedy(g, sol, opts.K, opts.Alpha)
		}
	case portfolio.SDPBacktrack:
		return func(ctx context.Context, g *graph.Graph, sc *pipeline.Scratch) []int {
			sol := solveSDP(ctx, g, opts, sc, env)
			colors, ok := coloring.SDPBacktrackContext(ctx, g, sol, opts.K, opts.Alpha, opts.Threshold, opts.BacktrackNodeLimit)
			if !ok {
				unproven.Store(true)
			}
			return colors
		}
	case portfolio.ILP:
		return func(ctx context.Context, g *graph.Graph, _ *pipeline.Scratch) []int {
			remaining := time.Until(ilpDeadline)
			if remaining <= 0 {
				unproven.Store(true)
				if fellBack != nil {
					fellBack.Store(true)
				}
				// Budget exhausted: greedy fallback keeps the run going so
				// the harness can still report a (non-optimal) solution.
				return coloring.Linear(g, opts.Linear)
			}
			res := coloring.ILPAssignContext(ctx, g, opts.K, opts.Alpha, remaining)
			if !res.Proven {
				unproven.Store(true)
			}
			return res.Colors
		}
	default:
		panic(fmt.Sprintf("core: unknown engine class %v", class))
	}
}

// classOf maps the classic Algorithm enum to its portfolio class.
func classOf(a Algorithm) portfolio.Class {
	switch a {
	case AlgILP:
		return portfolio.ILP
	case AlgSDPBacktrack:
		return portfolio.SDPBacktrack
	case AlgSDPGreedy:
		return portfolio.SDPGreedy
	case AlgLinear:
		return portfolio.Linear
	}
	panic(fmt.Sprintf("core: unknown algorithm %v", a))
}

// engineLabel is the histogram bucket of one dispatched piece: the engine
// class that colored it, or "fallback" when the class never ran (the ILP
// budget was already spent and the linear fallback answered) — the same
// bucket division's cancellation path uses, per docs/API.md.
func engineLabel(class portfolio.Class, fellBack bool) string {
	if fellBack {
		return "fallback"
	}
	return class.String()
}

// makeSolver builds the per-component solve function the division pipeline
// calls — the Dispatch stage's dispatcher: the fixed Options.Algorithm
// engine, or the adaptive auto/race portfolio when Options.Engine is set.
// The unproven flag is set when the kept result's exact search was cut
// short (node limit, time budget, or ctx cancellation mid-solve) — in race
// mode a cancelled loser does not taint it. Every dispatch is tallied per
// engine name into tally, with budget-fallback pieces attributed to
// "fallback", not their class. The worker's scratch arena is threaded into
// the engine (auto/fixed); race-mode racers lease their own arenas from
// the run's pool, because a cancelled loser may still be writing to its
// arena after the race returns. The env additionally carries the run's
// parallelism budget down into the SDP restart fan-out.
func makeSolver(ctx context.Context, opts Options, unproven *atomic.Bool, tally *engineTally, env pipeline.Env) division.Solver {
	// The shared ILP budget is a wall-clock deadline by contract: budget
	// exhaustion degrades pieces to the linear fallback, tallied as
	// "fallback" and surfaced via Proven=false — never as different bytes
	// under a proven label (portfolio_gate_test pins this).
	//lint:ignore determinism shared ILP budget; expiry degrades to fallback + Proven=false, not silent byte drift
	ilpDeadline := time.Now().Add(opts.ILPTimeLimit)
	switch opts.Engine {
	case EngineAuto:
		return func(g *graph.Graph, sc *pipeline.Scratch) []int {
			// fell tracks, per class, whether the selected engine actually
			// ran or the spent ILP budget made the linear fallback answer.
			var fell [portfolio.NumClasses]atomic.Bool
			var engines [portfolio.NumClasses]portfolio.Solver
			for c := portfolio.Class(0); c < portfolio.NumClasses; c++ {
				engines[c] = classSolver(c, opts, env, unproven, &fell[c], ilpDeadline)
			}
			colors, out := portfolio.Auto(ctx, g, opts.Portfolio, opts.K, engines, sc)
			tally.add(engineLabel(out.Winner, fell[out.Winner].Load()))
			return colors
		}
	case EngineRace:
		return func(g *graph.Graph, _ *pipeline.Scratch) []int {
			// Per-racer provenness: only the winner's truncation (or a
			// budget expiry it survived on quality) may mark the result
			// unproven; a cancelled loser's is irrelevant. fell tracks,
			// per racer, whether the class actually ran or the spent ILP
			// budget made the linear fallback answer in its place.
			var flags, fell [portfolio.NumClasses]atomic.Bool
			var engines [portfolio.NumClasses]portfolio.Solver
			for c := portfolio.Class(0); c < portfolio.NumClasses; c++ {
				engines[c] = classSolver(c, opts, env, &flags[c], &fell[c], ilpDeadline)
			}
			colors, out := portfolio.Race(ctx, g, opts.Portfolio, opts.K, opts.Alpha, opts.RaceBudget, engines, env)
			if !out.ProvenOptimal && flags[out.Winner].Load() {
				unproven.Store(true)
			}
			tally.add(engineLabel(out.Winner, fell[out.Winner].Load()))
			return colors
		}
	}
	class := classOf(opts.Algorithm)
	return func(g *graph.Graph, sc *pipeline.Scratch) []int {
		var fell atomic.Bool
		colors := classSolver(class, opts, env, unproven, &fell, ilpDeadline)(ctx, g, sc)
		tally.add(engineLabel(class, fell.Load()))
		return colors
	}
}

func solveSDP(ctx context.Context, g *graph.Graph, opts Options, sc *pipeline.Scratch, env pipeline.Env) *sdp.Solution {
	return sdp.SolveScratchEnv(ctx, g, sdp.Options{
		K:        opts.K,
		Alpha:    opts.Alpha,
		Restarts: opts.SDPRestarts,
		MaxIter:  opts.SDPMaxIter,
		Seed:     opts.Seed,
	}, sc, env)
}

// VerifySolution independently re-derives conflicts from geometry: it
// rebuilds neighbor relations with a fresh spatial query and counts
// same-mask fragment pairs of different features within MinS, plus stitch
// mismatches between touching fragments of one feature. It must agree with
// Result.Conflicts/Stitches — a cross-check that graph construction and
// coloring agree (used by tests and cmd/qpld -verify).
func VerifySolution(r *Result) (conflicts, stitches int, err error) {
	dg := r.Graph
	if len(r.Colors) != len(dg.Fragments) {
		return 0, 0, fmt.Errorf("core: color count %d != fragment count %d", len(r.Colors), len(dg.Fragments))
	}
	minSq := int64(dg.MinS) * int64(dg.MinS)
	world := worldOf(dg)
	grid := spatial.NewGrid(world, dg.MinS+1, len(dg.Fragments))
	defer grid.Release()
	for _, fr := range dg.Fragments {
		grid.Insert(fr.Shape.Bounds())
	}
	for i := range dg.Fragments {
		fi := dg.Fragments[i]
		grid.Near(fi.Shape.Bounds(), dg.MinS, func(j int) {
			if j <= i {
				return
			}
			fj := dg.Fragments[j]
			d := geom.GapSqPoly(fi.Shape, fj.Shape)
			if fi.Feature != fj.Feature {
				if d <= minSq && r.Colors[i] == r.Colors[j] {
					conflicts++
				}
			} else if d == 0 && r.Colors[i] != r.Colors[j] {
				stitches++
			}
		})
	}
	return conflicts, stitches, nil
}

func worldOf(dg *Graph) geom.Rect {
	if len(dg.Fragments) == 0 {
		return geom.Rect{}
	}
	b := dg.Fragments[0].Shape.Bounds()
	for _, fr := range dg.Fragments[1:] {
		b = b.Union(fr.Shape.Bounds())
	}
	return b.Expand(dg.MinS + 1)
}

// BalanceMasks rebalances mask usage by rotating the colors of whole
// connected components (cost-free: conflict and stitch counts are
// invariant), the extension of the balanced-density objective from the
// paper's reference [10]. It mutates r.Colors and returns the global
// density spread (max−min over mean of per-mask area) before and after.
func BalanceMasks(r *Result) (before, after float64) {
	areas := make([]int64, len(r.Graph.Fragments))
	for i, fr := range r.Graph.Fragments {
		areas[i] = fr.Shape.Area()
	}
	before = balance.Spread(balance.MaskAreas(r.Colors, areas, r.K))
	balance.Rebalance(r.Graph.G, r.Colors, areas, r.K)
	after = balance.Spread(balance.MaskAreas(r.Colors, areas, r.K))
	return before, after
}
