package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpl/internal/layout"
	"mpl/internal/synth"
)

// graphsIdentical fails the test unless the two built graphs are fully
// identical: fragment slice (owner + geometry), every adjacency list of
// every edge kind in the same order, counters, and stats (timing and the
// worker count are the only run-varying parts and are excluded).
func graphsIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if !reflect.DeepEqual(want.Fragments, got.Fragments) {
		t.Fatalf("fragment tables differ: %d vs %d fragments", len(want.Fragments), len(got.Fragments))
	}
	if want.MinS != got.MinS || want.HalfPitch != got.HalfPitch {
		t.Fatalf("parameters differ: minS %d/%d hp %d/%d", want.MinS, got.MinS, want.HalfPitch, got.HalfPitch)
	}
	ws, gs := want.Stats, got.Stats
	ws.Timing, gs.Timing = BuildTiming{}, BuildTiming{}
	ws.Workers, gs.Workers = 0, 0
	if ws != gs {
		t.Fatalf("stats differ: %+v vs %+v", ws, gs)
	}
	if want.G.N() != got.G.N() {
		t.Fatalf("vertex counts differ: %d vs %d", want.G.N(), got.G.N())
	}
	for v := 0; v < want.G.N(); v++ {
		if !reflect.DeepEqual(want.G.ConflictNeighbors(v), got.G.ConflictNeighbors(v)) {
			t.Fatalf("conflict adjacency of %d differs: %v vs %v", v, want.G.ConflictNeighbors(v), got.G.ConflictNeighbors(v))
		}
		if !reflect.DeepEqual(want.G.StitchNeighbors(v), got.G.StitchNeighbors(v)) {
			t.Fatalf("stitch adjacency of %d differs: %v vs %v", v, want.G.StitchNeighbors(v), got.G.StitchNeighbors(v))
		}
		if !reflect.DeepEqual(want.G.FriendNeighbors(v), got.G.FriendNeighbors(v)) {
			t.Fatalf("friend adjacency of %d differs: %v vs %v", v, want.G.FriendNeighbors(v), got.G.FriendNeighbors(v))
		}
	}
}

// parallelCases returns every committed benchmark layout plus two synthetic
// circuits whose regimes (macros, crosses, wires) exercise all edge kinds.
func parallelCases(t *testing.T) map[string]*layout.Layout {
	t.Helper()
	out := map[string]*layout.Layout{}
	lays, err := filepath.Glob(filepath.Join("..", "..", "benchmarks", "*.lay"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range lays {
		l, err := layout.ReadAny(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[filepath.Base(path)] = l
	}
	if len(out) == 0 {
		t.Fatal("no committed benchmarks/*.lay found")
	}
	for _, name := range []string{"C6288", "S15850"} {
		spec, ok := synth.ByName(name)
		if !ok {
			t.Fatalf("unknown synthetic circuit %s", name)
		}
		out["synth-"+name] = synth.Generate(spec, 0.3)
	}
	return out
}

// TestParallelBuildIdentical is the tentpole determinism contract: the
// sharded parallel build must produce a graph identical to the serial build
// — same fragments, same adjacency order, same stats — at every worker
// count, for every committed benchmark circuit.
func TestParallelBuildIdentical(t *testing.T) {
	for name, l := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := BuildGraph(l, BuildOptions{K: 4})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Stats.Workers != 1 {
				t.Fatalf("serial build reports %d workers", ref.Stats.Workers)
			}
			for _, w := range []int{2, 8} {
				got, err := BuildGraph(l, BuildOptions{K: 4, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				graphsIdentical(t, ref, got)
			}
		})
	}
}

// TestParallelBuildIdenticalNoStitches covers the DisableStitches path and a
// non-default K/MinS combination.
func TestParallelBuildIdenticalNoStitches(t *testing.T) {
	spec, _ := synth.ByName("C7552")
	l := synth.Generate(spec, 0.3)
	opts := BuildOptions{K: 5, DisableStitches: true}
	ref, err := BuildGraph(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	got, err := BuildGraph(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, ref, got)
}

// TestBuildGraphContextCancelled: a context cancelled before (or during) the
// build must surface as a wrapped ctx error, promptly, with no graph.
func TestBuildGraphContextCancelled(t *testing.T) {
	spec, _ := synth.ByName("S38417")
	l := synth.Generate(spec, 0.5)
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		g, err := BuildGraphContext(ctx, l, BuildOptions{K: 4, Workers: w})
		if err == nil || g != nil {
			t.Fatalf("workers=%d: cancelled build returned graph=%v err=%v", w, g != nil, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error %v does not wrap context.Canceled", w, err)
		}
	}
}

// TestBuildTimingPopulated: a successful build reports its per-stage wall
// clock, and the stages are bounded by the total.
func TestBuildTimingPopulated(t *testing.T) {
	spec, _ := synth.ByName("C6288")
	l := synth.Generate(spec, 0.3)
	g, err := BuildGraph(l, BuildOptions{K: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tm := g.Stats.Timing
	if tm.Total <= 0 {
		t.Fatalf("total build time not recorded: %+v", tm)
	}
	if tm.Split < 0 || tm.Edges < 0 || tm.Merge < 0 {
		t.Fatalf("negative stage time: %+v", tm)
	}
	if sum := tm.Split + tm.Edges + tm.Merge; sum > 2*tm.Total+1 {
		t.Fatalf("stage times %v exceed total %v", sum, tm.Total)
	}
	if g.Stats.Workers != 2 {
		t.Fatalf("workers = %d, want 2", g.Stats.Workers)
	}
}

// TestBuildWorkersMatchesBenchmarksOnDisk guards the committed .lay files
// against drifting from the generator: the graph built from the file must
// equal the graph built from a fresh synthetic generation at scale 1.
func TestBuildWorkersMatchesBenchmarksOnDisk(t *testing.T) {
	path := filepath.Join("..", "..", "benchmarks", "C432.lay")
	if _, err := os.Stat(path); err != nil {
		t.Skip("benchmarks/C432.lay not present")
	}
	onDisk, err := layout.ReadAny(path)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := synth.ByName("C432")
	fresh := synth.Generate(spec, 1.0)
	gd, err := BuildGraph(onDisk, BuildOptions{K: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	gf, err := BuildGraph(fresh, BuildOptions{K: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, gf, gd)
}
