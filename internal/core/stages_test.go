package core

// Stage-telemetry contract tests: every solve path must report the stages
// it actually ran in Result.DivisionStats.Stages, under the canonical
// pipeline.Stage* names, and the refactor onto the stage pipeline must be
// behavior-preserving (pinned separately by the golden, incremental, and
// portfolio suites).

import (
	"context"
	"testing"

	"mpl/internal/geom"
	"mpl/internal/layout"
	"mpl/internal/pipeline"
	"mpl/internal/synth"
)

// stageTestLayout returns a layout whose graph has unpeelable cores (K5
// crosses survive the Simplify stage), so the Dispatch stage actually runs.
func stageTestLayout(t testing.TB) (*layout.Layout, *Graph) {
	t.Helper()
	l, err := synth.GenerateByName("C432", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	return l, g
}

func TestDecomposeContextReportsAllStages(t *testing.T) {
	l, _ := stageTestLayout(t)
	res, err := DecomposeContext(context.Background(), l, Options{K: 4, Algorithm: AlgLinear})
	if err != nil {
		t.Fatal(err)
	}
	st := res.DivisionStats.Stages
	for _, name := range pipeline.StageNames {
		if st[name].Calls == 0 {
			t.Errorf("full solve did not record stage %q: %+v", name, st)
		}
	}
	if got := st[pipeline.StageDispatch].Calls; got != res.DivisionStats.SolverCalls+res.DivisionStats.Fallbacks {
		t.Errorf("dispatch calls = %d, want %d solver calls + fallbacks", got, res.DivisionStats.SolverCalls+res.DivisionStats.Fallbacks)
	}
	if res.AssignTime <= 0 || st[pipeline.StageBuild].Wall <= 0 {
		t.Errorf("timings missing: assign=%v build=%v", res.AssignTime, st[pipeline.StageBuild].Wall)
	}
}

func TestDecomposeGraphOmitsBuildStage(t *testing.T) {
	// DecomposeGraph* colors a graph somebody else built (possibly cached
	// and amortized over many solves); charging that build to this call
	// would double-count it, so only the stages the call ran may appear.
	_, g := stageTestLayout(t)
	res, err := DecomposeGraph(g, Options{K: 4, Algorithm: AlgLinear})
	if err != nil {
		t.Fatal(err)
	}
	st := res.DivisionStats.Stages
	if _, ok := st[pipeline.StageBuild]; ok {
		t.Errorf("graph-input solve must not report a build stage: %+v", st)
	}
	for _, name := range []string{pipeline.StagePartition, pipeline.StageDispatch, pipeline.StageMerge} {
		if st[name].Calls == 0 {
			t.Errorf("stage %q missing: %+v", name, st)
		}
	}
}

func TestApplyEditsReportsIncrementalStages(t *testing.T) {
	l := synth.Random(3)
	opts := Options{K: 4, Algorithm: AlgLinear}
	res, err := Decompose(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	b := l.Bounds()
	newL, res2, es, err := ApplyEdits(context.Background(), l, res, []Edit{
		{Op: EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: b.X1 + 100, Y0: b.Y0, X1: b.X1 + 120, Y1: b.Y0 + 20})},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if newL == nil || es == nil {
		t.Fatal("missing outputs")
	}
	st := res2.DivisionStats.Stages
	for _, name := range []string{pipeline.StageBuild, pipeline.StagePartition, pipeline.StageMerge} {
		if st[name].Calls == 0 {
			t.Errorf("incremental solve did not record stage %q: %+v", name, st)
		}
	}
	// The edit adds an isolated feature far from everything: its one-vertex
	// component is fully peeled, so the Simplify stage must appear while
	// Dispatch legitimately may not (nothing survived simplification).
	if es.ResolvedComponents == 0 {
		t.Fatalf("expected the added feature to form a dirty component: %+v", es)
	}
	if st[pipeline.StageSimplify].Calls == 0 {
		t.Errorf("dirty component was re-solved but no simplify region recorded: %+v", st)
	}
}

func TestStagesIdenticalStructureAcrossWorkers(t *testing.T) {
	// The stage *structure* (region counts) is deterministic at any worker
	// count; only wall times vary. This pins the parallel merge path.
	_, g := stageTestLayout(t)
	base, err := DecomposeGraph(g, Options{K: 4, Algorithm: AlgLinear})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		opts := Options{K: 4, Algorithm: AlgLinear}
		opts.Division.Workers = workers
		res, err := DecomposeGraph(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.DivisionStats.Stages) != len(base.DivisionStats.Stages) {
			t.Fatalf("workers=%d: stage set %v != serial %v", workers, res.DivisionStats.Stages, base.DivisionStats.Stages)
		}
		for name, want := range base.DivisionStats.Stages {
			if got := res.DivisionStats.Stages[name]; got.Calls != want.Calls {
				t.Errorf("workers=%d: stage %q calls = %d, serial %d", workers, name, got.Calls, want.Calls)
			}
		}
	}
}
