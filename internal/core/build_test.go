package core

import (
	"testing"

	"mpl/internal/geom"
	"mpl/internal/layout"
)

func TestVerticalWireStitch(t *testing.T) {
	// A vertical wire with neighbors near both ends splits once, same as
	// the horizontal case.
	l := layout.New("vstitch")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 400})
	l.AddRect(geom.Rect{X0: 60, Y0: 0, X1: 80, Y1: 60})
	l.AddRect(geom.Rect{X0: 60, Y0: 340, X1: 80, Y1: 400})
	dg, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.Fragments != 4 || dg.Stats.StitchEdges != 1 {
		t.Fatalf("stats = %+v, want vertical split", dg.Stats)
	}
}

func TestMaxStitchesPerFeatureCap(t *testing.T) {
	// A very long wire with many isolated neighbor clusters would admit
	// many stitches; the cap keeps it at the configured count.
	l := layout.New("cap")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 2000, Y1: 20})
	for i := 0; i < 8; i++ {
		x := i * 250
		l.AddRect(geom.Rect{X0: x, Y0: 60, X1: x + 40, Y1: 80})
	}
	for _, cap := range []int{1, 2, 3} {
		dg, err := BuildGraph(l, BuildOptions{K: 4, MaxStitchesPerFeature: cap})
		if err != nil {
			t.Fatal(err)
		}
		if got := dg.Stats.StitchEdges; got > cap {
			t.Fatalf("cap %d: %d stitch edges", cap, got)
		}
	}
}

func TestStitchMinSegRespected(t *testing.T) {
	// With a huge minimum segment, no stitch fits on a short wire.
	l := layout.New("minseg")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 300, Y1: 20})
	l.AddRect(geom.Rect{X0: 0, Y0: 60, X1: 40, Y1: 80})
	l.AddRect(geom.Rect{X0: 260, Y0: 60, X1: 300, Y1: 80})
	dg, err := BuildGraph(l, BuildOptions{K: 4, StitchMinSeg: 200})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.Fragments != 3 || dg.Stats.StitchEdges != 0 {
		t.Fatalf("stats = %+v, want no split", dg.Stats)
	}
}

func TestMultiRectFeatureNotSplit(t *testing.T) {
	// L-shaped features keep their geometry (the stitch model is defined
	// on wires; see DESIGN.md §5).
	l := layout.New("lshape")
	l.Add(geom.NewPolygon(
		geom.Rect{X0: 0, Y0: 0, X1: 400, Y1: 20},
		geom.Rect{X0: 0, Y0: 20, X1: 20, Y1: 400},
	))
	l.AddRect(geom.Rect{X0: 100, Y0: 60, X1: 140, Y1: 80})
	dg, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.Fragments != 2 {
		t.Fatalf("fragments = %d, want 2 (no L-shape splitting)", dg.Stats.Fragments)
	}
}

func TestFragmentsPreserveArea(t *testing.T) {
	// Splitting must conserve total feature area exactly.
	l := layout.New("area")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 20})
	l.AddRect(geom.Rect{X0: 100, Y0: 60, X1: 140, Y1: 80})
	l.AddRect(geom.Rect{X0: 700, Y0: 60, X1: 740, Y1: 80})
	var want int64
	for _, f := range l.Features {
		want += f.Area()
	}
	dg, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, fr := range dg.Fragments {
		got += fr.Shape.Area()
	}
	if got != want {
		t.Fatalf("area %d after split, want %d", got, want)
	}
}

func TestBadMinSRejected(t *testing.T) {
	l := layout.New("bad")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})
	if _, err := BuildGraph(l, BuildOptions{MinS: -5}); err == nil {
		t.Fatal("negative MinS accepted")
	}
}
