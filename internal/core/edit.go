package core

// Incremental (ECO) decomposition: ApplyEdits re-decomposes an edited layout
// in time proportional to the dirty region instead of re-running the whole
// build → division → solve pipeline (DESIGN.md §6).
//
// The correctness contract is observable equivalence: for deterministic
// engines (Linear, SDP+Greedy, SDP+Backtrack — everything except the
// wall-clock-budgeted ILP) an uncancelled ApplyEdits returns exactly the
// Result a from-scratch Decompose of the edited layout would return — same
// colors, same conflict/stitch counts, same graph. The proof rests on three
// invariants:
//
//  1. Canonical graphs. BuildGraph emits adjacency lists sorted ascending,
//     so a decomposition graph is a pure function of its edge set — never
//     of grid geometry or scan order. ApplyEdits can therefore splice
//     reused adjacency into freshly discovered edges and land on the
//     byte-identical graph a scratch build would produce.
//  2. Locality of construction. A feature's fragmentation depends only on
//     neighbors within MinS (projection intervals), and an edge only on the
//     geometry of its two endpoints. Features outside the dirty region keep
//     their fragments, and pairs of such features keep their edges.
//  3. Component independence. The division pipeline solves each connected
//     component of the (conflict ∪ stitch) graph in isolation, so a
//     component whose induced subgraph is unchanged — same vertices in the
//     same relative order, same edges, no vertex lost to the edit — must
//     receive the same colors from the same deterministic engine. Those
//     components keep their prior colors; only the rest are re-solved.

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"mpl/internal/coloring"
	"mpl/internal/division"
	"mpl/internal/geom"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/pipeline"
	"mpl/internal/spatial"
)

// EditOp selects the kind of one layout edit.
type EditOp uint8

// The three ECO operations. Feature indices follow the usual editing
// convention: each op addresses the layout as left by the ops before it —
// EditRemove shifts later features down, EditAdd appends at the end.
const (
	// EditAdd appends Edit.Shape as a new feature.
	EditAdd EditOp = iota
	// EditRemove deletes feature Edit.Feature.
	EditRemove
	// EditMove translates feature Edit.Feature by (Edit.DX, Edit.DY).
	EditMove
)

// String implements fmt.Stringer.
func (op EditOp) String() string {
	switch op {
	case EditAdd:
		return "add"
	case EditRemove:
		return "remove"
	case EditMove:
		return "move"
	}
	return fmt.Sprintf("EditOp(%d)", int(op))
}

// Edit is one ECO operation on a layout.
type Edit struct {
	// Op selects the operation.
	Op EditOp
	// Feature is the target feature index (EditRemove, EditMove).
	Feature int
	// Shape is the added feature geometry (EditAdd).
	Shape geom.Polygon
	// DX, DY is the translation in database units (EditMove).
	DX, DY int
}

// EditStats reports how much work one ApplyEdits call reused versus redid.
type EditStats struct {
	// Edits is the number of operations applied.
	Edits int
	// SuspectFeatures counts unedited features close enough to an edit
	// (within MinS) that their stitch fragmentation had to be re-derived
	// and compared against the prior build.
	SuspectFeatures int
	// RebuiltFeatures counts features whose fragments were rebuilt: the
	// edited features plus every suspect whose fragmentation changed.
	RebuiltFeatures int
	// ReusedFragments and RebuiltFragments partition the new graph's
	// vertices by provenance.
	ReusedFragments  int
	RebuiltFragments int
	// Components is the connected-component count of the post-edit graph;
	// ResolvedComponents of them intersected the dirty region and were
	// re-solved (ResolvedFragments vertices in total), CopiedComponents
	// kept their prior colors verbatim.
	Components         int
	ResolvedComponents int
	CopiedComponents   int
	ResolvedFragments  int
	// BuildTime is the incremental graph rebuild; SolveTime is division
	// plus color assignment over the dirty components.
	BuildTime time.Duration
	SolveTime time.Duration
}

// EditLayout returns the layout obtained by applying the edits in order,
// without decomposing anything. The input layout is not modified. It is the
// pure layout half of ApplyEdits, split out so callers (the serving layer)
// can hash the post-edit geometry before deciding whether a cached result
// already covers it.
func EditLayout(l *layout.Layout, edits []Edit) (*layout.Layout, error) {
	plan, err := planEdits(l, edits)
	if err != nil {
		return nil, err
	}
	return plan.newLayout(l), nil
}

// featureState tracks one post-edit feature back to its pre-edit identity.
type featureState struct {
	// orig is the feature's index in the pre-edit layout, or -1 for
	// features added by an edit.
	orig int
	// edited is true when the geometry differs from the pre-edit layout
	// (added or moved features).
	edited bool
	shape  geom.Polygon
}

// editPlan is the resolved edit batch: the post-edit feature list plus the
// bounding boxes of every piece of geometry that appeared or disappeared.
type editPlan struct {
	feats []featureState
	// dirty holds the bounds of all edited geometry — the old position of
	// removed and moved features and the new position of added and moved
	// ones. Everything within MinS of a dirty rect is suspect.
	dirty []geom.Rect
}

func planEdits(l *layout.Layout, edits []Edit) (*editPlan, error) {
	feats := make([]featureState, len(l.Features))
	for i, f := range l.Features {
		feats[i] = featureState{orig: i, shape: f}
	}
	p := &editPlan{feats: feats}
	for ei, e := range edits {
		switch e.Op {
		case EditAdd:
			if !e.Shape.Valid() || !e.Shape.Connected() {
				return nil, fmt.Errorf("core: edit %d: added feature is invalid or disconnected", ei)
			}
			p.feats = append(p.feats, featureState{orig: -1, edited: true, shape: e.Shape})
			p.dirty = append(p.dirty, e.Shape.Bounds())
		case EditRemove:
			if e.Feature < 0 || e.Feature >= len(p.feats) {
				return nil, fmt.Errorf("core: edit %d: remove of feature %d out of range [0,%d)", ei, e.Feature, len(p.feats))
			}
			p.dirty = append(p.dirty, p.feats[e.Feature].shape.Bounds())
			p.feats = append(p.feats[:e.Feature], p.feats[e.Feature+1:]...)
		case EditMove:
			if e.Feature < 0 || e.Feature >= len(p.feats) {
				return nil, fmt.Errorf("core: edit %d: move of feature %d out of range [0,%d)", ei, e.Feature, len(p.feats))
			}
			fs := &p.feats[e.Feature]
			p.dirty = append(p.dirty, fs.shape.Bounds())
			fs.shape = fs.shape.Translate(e.DX, e.DY)
			fs.edited = true
			p.dirty = append(p.dirty, fs.shape.Bounds())
		default:
			return nil, fmt.Errorf("core: edit %d: unknown op %v", ei, e.Op)
		}
	}
	return p, nil
}

// newLayout materializes the post-edit layout.
func (p *editPlan) newLayout(l *layout.Layout) *layout.Layout {
	shapes := make([]geom.Polygon, len(p.feats))
	for i, fs := range p.feats {
		shapes[i] = fs.shape
	}
	return &layout.Layout{Name: l.Name, Process: l.Process, Features: shapes}
}

// ApplyEdits incrementally re-decomposes an edited layout. l and prev are
// the layout and Result of the previous run (a Decompose of l, or a prior
// ApplyEdits that returned l) under the same opts; the returned layout is
// the post-edit geometry and the returned Result is its decomposition.
// Neither input is modified.
//
// Only the dirty region pays: fragments are rebuilt for edited features and
// for unedited features within MinS whose stitch fragmentation actually
// changed; edges are rediscovered only around rebuilt fragments; and only
// the connected components that intersect the dirty region are re-solved —
// every other component keeps its prior colors, which is exact, not an
// approximation, because its solver input is provably unchanged (see the
// package comment above and DESIGN.md §6). Conflict/stitch totals are
// updated by subtracting the invalidated components' old contribution and
// adding the re-solved components' new one.
//
// Cancellation follows DecomposeContext: a cancelled ctx degrades the dirty
// components to the linear-time fallback (Result.Degraded counts them)
// instead of failing. A degraded incremental result is still a valid
// coloring but no longer matches a from-scratch run.
func ApplyEdits(ctx context.Context, l *layout.Layout, prev *Result, edits []Edit, opts Options) (*layout.Layout, *Result, *EditStats, error) {
	if _, err := ParseEngine(opts.Engine); err != nil {
		return nil, nil, nil, err
	}
	opts = opts.withDefaults()
	if prev == nil || prev.Graph == nil {
		return nil, nil, nil, fmt.Errorf("core: ApplyEdits needs the previous result")
	}
	pg := prev.Graph
	if pg.Stats.Features != len(l.Features) {
		return nil, nil, nil, fmt.Errorf("core: previous result covers %d features, layout has %d", pg.Stats.Features, len(l.Features))
	}
	if len(prev.Colors) != len(pg.Fragments) {
		return nil, nil, nil, fmt.Errorf("core: previous result is inconsistent: %d colors for %d fragments", len(prev.Colors), len(pg.Fragments))
	}
	// Copied components are only valid under the exact options that
	// produced prev — engine, seed, division ablations, stitch settings,
	// everything. Compare the full normalized options, ignoring only the
	// result-neutral worker counts.
	want, have := opts, prev.Options
	want.Division.Workers, have.Division.Workers = 0, 0
	want.Build.Workers, have.Build.Workers = 0, 0
	if want != have {
		return nil, nil, nil, fmt.Errorf("core: previous result was solved under different options (%+v) than requested (%+v)", prev.Options, opts)
	}
	minS := opts.Build.MinS
	if minS == 0 {
		minS = l.Process.MinColoringDistance(opts.Build.K)
	}
	if minS <= 0 {
		return nil, nil, nil, fmt.Errorf("core: non-positive minimum coloring distance %d", minS)
	}
	if pg.MinS != minS || pg.HalfPitch != l.Process.HalfPitch {
		return nil, nil, nil, fmt.Errorf("core: previous result was built with mins=%d hp=%d, options derive mins=%d hp=%d",
			pg.MinS, pg.HalfPitch, minS, l.Process.HalfPitch)
	}

	plan, err := planEdits(l, edits)
	if err != nil {
		return nil, nil, nil, err
	}
	newL := plan.newLayout(l)
	if err := newL.Validate(); err != nil {
		return nil, nil, nil, err
	}

	// The incremental path is the regular stage pipeline with the Build
	// and Partition stages substituted by their dirty-region versions: the
	// build reuses every provably unchanged fragment and edge, the
	// partition classifies components as copy-safe versus dirty, the
	// divide/merge tail is shared with the from-scratch run (divide runs
	// the regular division pipeline over the dirty subgraph; merge applies
	// component-local objective deltas instead of a full recount).
	es := &EditStats{Edits: len(edits)}
	run := &editRun{l: l, newL: newL, prev: prev, plan: plan, opts: opts, minS: minS, es: es}
	rec := pipeline.NewRecorder()
	p := pipeline.New(rec,
		pipeline.Func(pipeline.StageBuild, run.build),
		pipeline.Func(pipeline.StagePartition, run.partition),
		pipeline.Composite(run.divide),
		pipeline.Func(pipeline.StageMerge, run.merge),
	)
	if err := p.Run(ctx); err != nil {
		return nil, nil, nil, err
	}
	run.res.DivisionStats.Stages = pipeline.MergeStages(run.res.DivisionStats.Stages, rec.Snapshot())
	return newL, run.res, es, nil
}

// incrementalGraph is the output of the dirty-region graph rebuild: the
// post-edit decomposition graph plus the fragment provenance maps the
// component diff needs.
type incrementalGraph struct {
	dg *Graph
	// oldToNew maps pre-edit fragment indices to post-edit ones (-1 when
	// the fragment's feature was removed or rebuilt); newToOld is the
	// inverse (-1 for rebuilt fragments). Both maps are monotonic on their
	// defined entries — feature order is preserved by edits — which is why
	// reused components keep their vertices in the same relative order.
	oldToNew []int32
	newToOld []int32
}

// rebuildGraph reconstructs the decomposition graph of the edited layout,
// reusing every fragment and every adjacency entry whose inputs provably
// did not change. The result is identical to BuildGraph(newLayout) — the
// equivalence harness and FuzzApplyEdits check this end to end.
func rebuildGraph(l, newL *layout.Layout, prev *Result, plan *editPlan, opts Options, minS int, es *EditStats) (*incrementalGraph, error) {
	pg := prev.Graph
	hp := l.Process.HalfPitch
	nf := len(plan.feats)
	nOld := len(pg.Fragments)

	// Prior fragments per pre-edit feature, for piece reuse and comparison.
	oldFragsOf := make([][]int32, len(l.Features))
	for i, fr := range pg.Fragments {
		oldFragsOf[fr.Feature] = append(oldFragsOf[fr.Feature], int32(i))
	}

	// Stage 1: fragmentation. Edited features always re-split; unedited
	// features within MinS of edited geometry ("suspects") re-split too,
	// because their projection intervals may have changed — but they count
	// as rebuilt only if the pieces actually differ. Everything else reuses
	// its prior pieces untouched (fragmentation is MinS-local).
	rebuild := make([]bool, nf)
	for fi, fs := range plan.feats {
		if fs.edited {
			rebuild[fi] = true
		}
	}
	var splitter *stitchSplitter
	if !opts.Build.DisableStitches {
		minSeg := opts.Build.StitchMinSeg
		if minSeg == 0 {
			minSeg = newL.Process.MinWidth
		}
		maxStitch := opts.Build.MaxStitchesPerFeature
		if maxStitch == 0 {
			maxStitch = 2
		}
		splitter = newStitchSplitter(newL, minS, minSeg, maxStitch)
	}
	suspect := make([]bool, nf)
	if splitter != nil {
		for _, dr := range plan.dirty {
			splitter.grid.Near(dr, minS, func(id int) {
				fi := splitter.owner[id]
				if !rebuild[fi] && !suspect[fi] {
					suspect[fi] = true
					es.SuspectFeatures++
				}
			})
		}
	}
	pieces := make([][]geom.Polygon, nf)
	var q *spatial.Querier
	if splitter != nil {
		q = splitter.grid.NewQuerier()
		defer q.Release()
		defer splitter.grid.Release()
	}
	split := func(fi int) []geom.Polygon {
		if splitter == nil {
			return []geom.Polygon{plan.feats[fi].shape}
		}
		return splitter.split(q, fi, plan.feats[fi].shape)
	}
	oldPieces := func(orig int) []geom.Polygon {
		ids := oldFragsOf[orig]
		out := make([]geom.Polygon, len(ids))
		for k, id := range ids {
			out[k] = pg.Fragments[id].Shape
		}
		return out
	}
	for fi, fs := range plan.feats {
		switch {
		case rebuild[fi]:
			pieces[fi] = split(fi)
		case suspect[fi]:
			ps := split(fi)
			if !piecesEqual(ps, oldPieces(fs.orig)) {
				rebuild[fi] = true
			}
			pieces[fi] = ps // identical to the prior pieces when stable
		default:
			pieces[fi] = oldPieces(fs.orig)
		}
		if rebuild[fi] {
			es.RebuiltFeatures++
		}
	}

	// Stage 2: fragment numbering (feature order, like a scratch build) and
	// the old↔new index maps for stable features.
	var frags []Fragment
	oldToNew := make([]int32, nOld)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for fi := range plan.feats {
		base := len(frags)
		for _, p := range pieces[fi] {
			frags = append(frags, Fragment{Feature: fi, Shape: p})
		}
		if !rebuild[fi] {
			for k, of := range oldFragsOf[plan.feats[fi].orig] {
				oldToNew[of] = int32(base + k)
			}
			es.ReusedFragments += len(pieces[fi])
		} else {
			es.RebuiltFragments += len(pieces[fi])
		}
	}
	nNew := len(frags)
	newToOld := make([]int32, nNew)
	for i := range newToOld {
		newToOld[i] = -1
	}
	for of, nw := range oldToNew {
		if nw >= 0 {
			newToOld[nw] = int32(of)
		}
	}

	// Stage 3: edge rediscovery around rebuilt fragments only. Edges
	// between two reused fragments are unchanged by construction (their
	// geometry is untouched), so the prior adjacency is spliced in; every
	// pair with a rebuilt endpoint is re-derived from geometry via a fresh
	// spatial grid. Near's candidate filter is a pure distance predicate,
	// so the discovered edge set matches a scratch scan exactly.
	radius := minS + hp
	minSq := int64(minS) * int64(minS)
	friendOuter := int64(radius) * int64(radius)
	grid := spatial.NewGrid(newL.Bounds().Expand(radius+1), radius, nNew)
	defer grid.Release()
	for _, fr := range frags {
		grid.Insert(fr.Shape.Bounds())
	}
	confOf := make([][]int32, nNew)
	friendOf := make([][]int32, nNew)
	for of := 0; of < nOld; of++ {
		i := oldToNew[of]
		if i < 0 {
			continue
		}
		for _, oj := range pg.G.ConflictNeighbors(of) {
			if j := oldToNew[oj]; int(oj) > of && j >= 0 {
				confOf[i] = append(confOf[i], j)
			}
		}
		for _, oj := range pg.G.FriendNeighbors(of) {
			if j := oldToNew[oj]; int(oj) > of && j >= 0 {
				friendOf[i] = append(friendOf[i], j)
			}
		}
	}
	var touched []int32
	for u := 0; u < nNew; u++ {
		if newToOld[u] >= 0 {
			continue // reused fragment: its new pairs are found from the rebuilt side
		}
		fu := frags[u]
		grid.Near(fu.Shape.Bounds(), radius, func(v int) {
			if v == u || frags[v].Feature == fu.Feature {
				return
			}
			d := geom.GapSqPoly(fu.Shape, frags[v].Shape)
			if d >= friendOuter {
				return
			}
			lo, hi := int32(u), int32(v)
			if lo > hi {
				lo, hi = hi, lo
			}
			if d <= minSq {
				confOf[lo] = append(confOf[lo], hi)
			} else {
				friendOf[lo] = append(friendOf[lo], hi)
			}
			touched = append(touched, lo)
		})
	}
	// Canonicalize the touched lists: spliced prior entries are already
	// sorted (canonical input graph, monotonic index map), fresh pairs
	// land unsorted and — when both endpoints are rebuilt — twice.
	slices.Sort(touched)
	touched = slices.Compact(touched)
	for _, i := range touched {
		slices.Sort(confOf[i])
		confOf[i] = slices.Compact(confOf[i])
		slices.Sort(friendOf[i])
		friendOf[i] = slices.Compact(friendOf[i])
	}

	// Stage 4: assemble in scratch-build order — stitch edges feature by
	// feature, then conflict/friend adjacency ascending — so the graph is
	// byte-identical to BuildGraph(newL).
	g := graph.New(nNew)
	stats := BuildStats{Features: nf, Fragments: nNew, Workers: 1}
	base := 0
	for fi := range plan.feats {
		ps := pieces[fi]
		if !opts.Build.DisableStitches {
			for i := 0; i < len(ps); i++ {
				for j := i + 1; j < len(ps); j++ {
					if geom.GapSqPoly(ps[i], ps[j]) == 0 && g.AddStitch(base+i, base+j) {
						stats.StitchEdges++
					}
				}
			}
		}
		base += len(ps)
	}
	for i := 0; i < nNew; i++ {
		for _, j := range confOf[i] {
			if g.AddConflict(i, int(j)) {
				stats.ConflictEdges++
			}
		}
		for _, j := range friendOf[i] {
			if g.AddFriend(i, int(j)) {
				stats.FriendEdges++
			}
		}
	}
	dg := &Graph{G: g, Fragments: frags, Stats: stats, MinS: minS, HalfPitch: hp}
	return &incrementalGraph{dg: dg, oldToNew: oldToNew, newToOld: newToOld}, nil
}

// piecesEqual reports whether two fragmentations are identical.
func piecesEqual(a, b []geom.Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !slices.Equal(a[i].Rects, b[i].Rects) {
			return false
		}
	}
	return true
}

// editRun carries one ApplyEdits call through the stage pipeline: the
// dirty-region Build and Partition substitutions, then the divide/merge
// tail every solve path shares.
type editRun struct {
	l, newL *layout.Layout
	prev    *Result
	plan    *editPlan
	opts    Options
	minS    int
	es      *EditStats

	ib *incrementalGraph

	// partition output: the copy-safe components' colors pre-filled, the
	// dirty vertex union, and the copied-vertex masks the merge deltas
	// need.
	colors    []int
	dirty     []int
	copiedOld []bool
	copiedNew []bool

	// divide output.
	unproven    atomic.Bool
	solverNanos atomic.Int64
	dstats      division.Stats

	res *Result
}

// build is the dirty-region Build stage: reconstruct the decomposition
// graph reusing every provably unchanged fragment and adjacency entry.
func (r *editRun) build(context.Context) error {
	t0 := time.Now()
	ib, err := rebuildGraph(r.l, r.newL, r.prev, r.plan, r.opts, r.minS, r.es)
	if err != nil {
		return err
	}
	r.es.BuildTime = time.Since(t0)
	ib.dg.Stats.Timing.Total = r.es.BuildTime
	r.ib = ib
	return nil
}

// partition is the dirty-region Partition stage: classify each post-edit
// component as copy-safe (prior colors reused verbatim) or dirty (queued
// for the divide stage).
func (r *editRun) partition(context.Context) error {
	prev, ib := r.prev, r.ib
	pg := prev.Graph
	g := ib.dg.G
	nNew := g.N()

	// A component may keep its prior colors only if its solver input is
	// provably the input the prior run solved: every vertex is a reused
	// fragment, and no vertex's old component reached a fragment that was
	// removed or rebuilt (otherwise the old component was larger than this
	// one and its coloring reflects constraints that are gone). Checking
	// each vertex's old conflict/stitch neighbors covers exactly that: a
	// missing neighbor is a lost constraint, and transitively the check
	// walks the whole old component. Friend edges need no check — they
	// only influence a solver within one component, and a friend edge to a
	// vanished fragment necessarily crossed a component boundary or its
	// loss is caught by the conflict/stitch walk.
	copySafe := func(comp []int) bool {
		for _, v := range comp {
			ov := ib.newToOld[v]
			if ov < 0 {
				return false
			}
			for _, w := range pg.G.ConflictNeighbors(int(ov)) {
				if ib.oldToNew[w] < 0 {
					return false
				}
			}
			for _, w := range pg.G.StitchNeighbors(int(ov)) {
				if ib.oldToNew[w] < 0 {
					return false
				}
			}
		}
		return true
	}

	comps := g.Components()
	r.es.Components = len(comps)
	r.colors = make([]int, nNew)
	for i := range r.colors {
		r.colors[i] = coloring.Uncolored
	}
	r.copiedOld = make([]bool, pg.G.N())
	r.copiedNew = make([]bool, nNew)
	for _, comp := range comps {
		if copySafe(comp) {
			for _, v := range comp {
				ov := ib.newToOld[v]
				r.colors[v] = prev.Colors[ov]
				r.copiedOld[ov] = true
				r.copiedNew[v] = true
			}
			r.es.CopiedComponents++
		} else {
			r.dirty = append(r.dirty, comp...)
			r.es.ResolvedComponents++
		}
	}
	return nil
}

// divide re-solves the dirty components exactly as a scratch run would:
// the induced subgraph over their union has those components as its
// components, and the double relabeling is order-preserving over canonical
// adjacency, so each engine sees the same per-component input a full
// DecomposeGraph would hand it. Composite — division tallies its own
// simplify/partition/dispatch/stitch regions into the run's stats.
func (r *editRun) divide(ctx context.Context) error {
	tSolve := time.Now()
	if len(r.dirty) > 0 {
		sort.Ints(r.dirty)
		tally := newEngineTally()
		// Same env coupling as the from-scratch divide: one scratch pool,
		// one worker-budget shared between division workers and the SDP
		// restart fan-out.
		env := pipeline.Env{Scratch: sharedScratch, Budget: pipeline.NewBudget(r.opts.Division.Workers)}
		inner := makeSolver(ctx, r.opts, &r.unproven, tally, env)
		var shapeStats *shapeTally
		if r.opts.Memoize {
			shapeStats = newShapeTally()
			inner = memoSolver(ctx, r.opts, inner, &r.unproven, tally, sharedShapes, shapeStats)
		}
		solver := func(sg *graph.Graph, sc *pipeline.Scratch) []int {
			t := time.Now()
			out := inner(sg, sc)
			r.solverNanos.Add(int64(time.Since(t)))
			return out
		}
		sub, orig := r.ib.dg.G.Subgraph(r.dirty)
		subColors, st := division.DecomposeEnv(ctx, sub, r.opts.Division, env, solver)
		for i, v := range orig {
			r.colors[v] = subColors[i]
		}
		tally.drainInto(&st)
		if shapeStats != nil {
			shapeStats.drainInto(&st)
		}
		r.dstats = st
		r.es.ResolvedFragments = len(r.dirty)
	}
	r.es.SolveTime = time.Since(tSolve)
	return nil
}

// merge validates the stitched-together coloring and updates the objective
// totals by component-local deltas. Conflict and stitch edges never cross
// component boundaries, so the copied components' contribution is
// byte-for-byte the same in both runs: subtract the old totals of
// everything not copied, add the new totals of everything re-solved (or
// newly built).
func (r *editRun) merge(context.Context) error {
	prev, ib := r.prev, r.ib
	pg := prev.Graph
	g := ib.dg.G
	nNew := g.N()
	nOld := pg.G.N()
	colors := r.colors

	if err := coloring.Validate(g, colors, r.opts.K); err != nil {
		return fmt.Errorf("core: internal error: %w", err)
	}

	conf, stit := prev.Conflicts, prev.Stitches
	for ov := 0; ov < nOld; ov++ {
		if r.copiedOld[ov] {
			continue
		}
		for _, w := range pg.G.ConflictNeighbors(ov) {
			if int(w) > ov && prev.Colors[ov] == prev.Colors[w] {
				conf--
			}
		}
		for _, w := range pg.G.StitchNeighbors(ov) {
			if int(w) > ov && prev.Colors[ov] != prev.Colors[w] {
				stit--
			}
		}
	}
	for v := 0; v < nNew; v++ {
		if r.copiedNew[v] {
			continue
		}
		for _, w := range g.ConflictNeighbors(v) {
			if int(w) > v && colors[v] == colors[w] {
				conf++
			}
		}
		for _, w := range g.StitchNeighbors(v) {
			if int(w) > v && colors[v] != colors[w] {
				stit++
			}
		}
	}

	r.res = &Result{
		Graph:         ib.dg,
		Colors:        colors,
		Conflicts:     conf,
		Stitches:      stit,
		Proven:        prev.Proven && !r.unproven.Load() && r.dstats.Fallbacks == 0,
		AssignTime:    r.es.SolveTime,
		SolverTime:    time.Duration(r.solverNanos.Load()),
		DivisionStats: r.dstats,
		Degraded:      r.dstats.Fallbacks,
		K:             r.opts.K,
		Alpha:         r.opts.Alpha,
		Options:       r.opts,
	}
	return nil
}
