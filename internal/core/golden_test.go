package core

// Golden regression test for the paper's Table-1 objective values on the
// committed benchmark circuits (benchmarks/*.lay — the .lay snapshots of
// the synthetic suite at scale 1.0). Solver or graph-construction changes
// that shift cn#/st# on these circuits must update this table consciously,
// in the same commit, with a BENCH trajectory entry explaining why — they
// can never drift silently again.
//
// The table pins seed 1, K = 4, paper defaults (α = 0.1, t_th = 0.9). All
// four engines are deterministic here: Linear and the SDP engines by
// construction (seeded restarts, node-count — not wall-clock — limits),
// and ILP because every row is required to prove optimality within the
// generous budget, making its answer the budget-independent optimum.

import (
	"path/filepath"
	"testing"
	"time"

	"mpl/internal/layout"
)

// goldenCounts is the committed baseline: circuit → engine → {cn#, st#}.
// Regenerate with:
//
//	go run ./cmd/evaluate -laydir benchmarks -circuits C432,C499,C880,C1355,C5315 \
//	    -algs ilp,sdp-backtrack,sdp-greedy,linear -batch-workers 1 -ilp-budget 600s
//
// C5315 (~4.3× C1355's feature count) is the scale representative: large
// enough that the stage pipeline's partition/dispatch split matters, small
// enough that its ILP row still proves within minutes.
var goldenCounts = map[string]map[Algorithm][2]int{
	"C432":  {AlgILP: {2, 18}, AlgSDPBacktrack: {2, 18}, AlgSDPGreedy: {4, 18}, AlgLinear: {2, 18}},
	"C499":  {AlgILP: {1, 20}, AlgSDPBacktrack: {1, 22}, AlgSDPGreedy: {3, 20}, AlgLinear: {1, 22}},
	"C880":  {AlgILP: {1, 62}, AlgSDPBacktrack: {1, 62}, AlgSDPGreedy: {3, 62}, AlgLinear: {1, 62}},
	"C1355": {AlgILP: {0, 81}, AlgSDPBacktrack: {0, 80}, AlgSDPGreedy: {0, 80}, AlgLinear: {0, 80}},
	"C5315": {AlgILP: {1, 369}, AlgSDPBacktrack: {1, 368}, AlgSDPGreedy: {1, 368}, AlgLinear: {1, 368}},
}

func TestGoldenTable1Counts(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep includes full-scale ILP solves; skipped in -short mode")
	}
	for circuit, engines := range goldenCounts {
		l, err := layout.ReadFile(filepath.Join("..", "..", "benchmarks", circuit+".lay"))
		if err != nil {
			t.Fatalf("%s: %v (the golden table is pinned to the committed .lay files)", circuit, err)
		}
		g, err := BuildGraph(l, BuildOptions{K: 4})
		if err != nil {
			t.Fatal(err)
		}
		for alg, want := range engines {
			alg, want := alg, want
			t.Run(circuit+"/"+alg.String(), func(t *testing.T) {
				if alg == AlgILP && raceEnabled {
					// The exact branch-and-bound is ~25× slower under the
					// race detector (single-goroutine code, nothing for the
					// detector to find); CI's non-race coverage step runs
					// these rows.
					t.Skip("ILP golden rows skipped under -race")
				}
				res, err := DecomposeGraph(g, Options{
					K: 4, Algorithm: alg, Seed: 1,
					// Ten minutes so a slow CI runner cannot flip an ILP row
					// into an unproven (wall-clock-dependent) answer.
					ILPTimeLimit: 10 * time.Minute,
				})
				if err != nil {
					t.Fatal(err)
				}
				if alg == AlgILP && !res.Proven {
					t.Fatalf("ILP row not proven within budget; golden comparison meaningless")
				}
				if res.Conflicts != want[0] || res.Stitches != want[1] {
					t.Errorf("cn#/st# = %d/%d, golden table says %d/%d — if this change is intended, update goldenCounts in the same commit",
						res.Conflicts, res.Stitches, want[0], want[1])
				}
				conf, stit, err := VerifySolution(res)
				if err != nil {
					t.Fatal(err)
				}
				if conf != res.Conflicts || stit != res.Stitches {
					t.Errorf("VerifySolution recount %d/%d disagrees with result %d/%d", conf, stit, res.Conflicts, res.Stitches)
				}
			})
		}
	}
}
