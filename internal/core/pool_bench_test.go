package core

// Allocation benchmarks for the pooled scratch-buffer layer. Run with
//
//	go test -run '^$' -bench BenchmarkRepeatedSolve -benchmem ./internal/core
//
// The "pooled" variant is the production configuration (the process-wide
// sharedScratch pool); "unpooled" swaps in a pool whose arenas never
// retain memory — the allocation behavior of the code before the scratch
// layer existed — so the delta in allocs/op and B/op is the pooling win
// for a repeated-solve (steady-state serving) loop. CI's bench-smoke job
// publishes both lines in the workflow summary to make pooling
// regressions visible per PR (see EXPERIMENTS.md for recorded numbers).

import (
	"context"
	"testing"

	"mpl/internal/pipeline"
	"mpl/internal/synth"
)

func benchSolveGraph(b *testing.B) *Graph {
	b.Helper()
	l, err := synth.GenerateByName("C432", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildGraph(l, BuildOptions{K: 4})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRepeatedSolve(b *testing.B, pool *pipeline.ScratchPool) {
	b.Helper()
	g := benchSolveGraph(b)
	opts := (Options{K: 4, Algorithm: AlgSDPBacktrack, Seed: 1}).withDefaults()
	solve := func() (*Result, error) {
		return decomposeGraphPool(context.Background(), g, opts, pipeline.NewRecorder(), pool)
	}
	// One warm-up solve so the pooled variant measures steady state (the
	// first request grows the arenas; every later one reuses them).
	if _, err := solve(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solve()
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkRepeatedSolve(b *testing.B) {
	b.Run("pooled", func(b *testing.B) { benchRepeatedSolve(b, pipeline.NewScratchPool()) })
	b.Run("unpooled", func(b *testing.B) { benchRepeatedSolve(b, pipeline.NewUnpooledScratchPool()) })
}

// BenchmarkRepeatedBuild measures the graph-construction path the serving
// layer pays on every cache-miss layout; the spatial visit-stamp pool
// keeps its steady-state allocations flat across requests.
func BenchmarkRepeatedBuild(b *testing.B) {
	l, err := synth.GenerateByName("C432", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := BuildGraph(l, BuildOptions{K: 4}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(l, BuildOptions{K: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
