package core

// The wire codec for ECO edit batches (DESIGN.md §13): a compact varint
// encoding used by the durable session store (internal/store) to persist
// the edit log and replay it through ApplyEdits after a restart. The codec
// is lossless — DecodeEdits(EncodeEdits(nil, batch)) returns the batch
// byte-for-byte — and decode never panics on arbitrary input, because the
// write-ahead log it frames may hand it torn or corrupted payloads whose
// CRC happened to survive (FuzzEditCodec drives both properties, seeded by
// the same 5-byte fuzz decoder that hardened ApplyEdits itself).

import (
	"encoding/binary"
	"fmt"
	"math"

	"mpl/internal/geom"
)

// maxDecodedEdits bounds one decoded batch against corrupt length prefixes:
// a batch is an interactive ECO step, not a bulk import, so anything past
// this is corruption, not workload.
const maxDecodedEdits = 1 << 20

// maxDecodedRects bounds one added feature's rectangle count, mirroring the
// uint16 rect-count bound of the binary layout format.
const maxDecodedRects = 1 << 16

// EncodeEdits appends the canonical binary encoding of an edit batch to buf
// and returns the extended slice. The encoding is deterministic (a pure
// function of the batch) so persisted logs replay and hash identically.
func EncodeEdits(buf []byte, edits []Edit) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(edits)))
	for _, e := range edits {
		buf = append(buf, byte(e.Op))
		switch e.Op {
		case EditAdd:
			buf = binary.AppendUvarint(buf, uint64(len(e.Shape.Rects)))
			for _, r := range e.Shape.Rects {
				buf = binary.AppendVarint(buf, int64(r.X0))
				buf = binary.AppendVarint(buf, int64(r.Y0))
				buf = binary.AppendVarint(buf, int64(r.X1))
				buf = binary.AppendVarint(buf, int64(r.Y1))
			}
		case EditRemove:
			buf = binary.AppendVarint(buf, int64(e.Feature))
		case EditMove:
			buf = binary.AppendVarint(buf, int64(e.Feature))
			buf = binary.AppendVarint(buf, int64(e.DX))
			buf = binary.AppendVarint(buf, int64(e.DY))
		}
	}
	return buf
}

// editDecoder tracks one DecodeEdits pass; its methods return zero values
// after the first error so call sites stay linear.
type editDecoder struct {
	data []byte
	err  error
}

func (d *editDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.err = fmt.Errorf("core: edit codec: truncated %s", what)
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *editDecoder) varint(what string) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.err = fmt.Errorf("core: edit codec: truncated %s", what)
		return 0
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		// Coordinates and feature indices are int32-scale everywhere else
		// (layout binary format, CSR ids); larger values are corruption.
		d.err = fmt.Errorf("core: edit codec: %s %d out of range", what, v)
		return 0
	}
	d.data = d.data[n:]
	return int(v)
}

// DecodeEdits parses an EncodeEdits payload back into the edit batch. It
// rejects trailing bytes, truncated fields, out-of-range values, and
// implausible counts — a corrupt log record must fail loudly here, never
// replay as a different batch.
func DecodeEdits(data []byte) ([]Edit, error) {
	d := &editDecoder{data: data}
	n := d.uvarint("batch length")
	if d.err != nil {
		return nil, d.err
	}
	if n > maxDecodedEdits {
		return nil, fmt.Errorf("core: edit codec: implausible batch length %d", n)
	}
	// Grow incrementally past a modest pre-allocation: a corrupt length
	// prefix under the plausibility bound must not become an alloc bomb.
	capHint := n
	if capHint > 256 {
		capHint = 256
	}
	edits := make([]Edit, 0, capHint)
	for i := uint64(0); i < n; i++ {
		if d.err == nil && len(d.data) == 0 {
			d.err = fmt.Errorf("core: edit codec: truncated batch (%d of %d edits)", i, n)
		}
		if d.err != nil {
			return nil, d.err
		}
		op := EditOp(d.data[0])
		d.data = d.data[1:]
		switch op {
		case EditAdd:
			nr := d.uvarint("rect count")
			if d.err == nil && nr > maxDecodedRects {
				d.err = fmt.Errorf("core: edit codec: implausible rect count %d", nr)
			}
			if d.err != nil {
				return nil, d.err
			}
			rectHint := nr
			if rectHint > 256 {
				rectHint = 256
			}
			rects := make([]geom.Rect, 0, rectHint)
			for r := uint64(0); r < nr; r++ {
				x0 := d.varint("rect x0")
				y0 := d.varint("rect y0")
				x1 := d.varint("rect x1")
				y1 := d.varint("rect y1")
				rects = append(rects, geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1})
			}
			edits = append(edits, Edit{Op: EditAdd, Shape: geom.Polygon{Rects: rects}})
		case EditRemove:
			edits = append(edits, Edit{Op: EditRemove, Feature: d.varint("feature index")})
		case EditMove:
			f := d.varint("feature index")
			dx := d.varint("dx")
			dy := d.varint("dy")
			edits = append(edits, Edit{Op: EditMove, Feature: f, DX: dx, DY: dy})
		default:
			return nil, fmt.Errorf("core: edit codec: unknown op %d", op)
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("core: edit codec: %d trailing bytes", len(d.data))
	}
	return edits, nil
}
