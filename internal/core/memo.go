package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"mpl/internal/canon"
	"mpl/internal/division"
	"mpl/internal/graph"
	"mpl/internal/pipeline"
)

// sharedShapes is the process-wide canonical-shape cache every memoized
// solve path shares (like sharedScratch): real workloads repeat standard
// cells across layouts and across requests, so hits compound over the
// life of the process. Bounded; distinct shapes beyond the bound evict
// least-recently-used classes.
var sharedShapes = canon.NewShapeCache(4096)

// shapeTally accumulates one run's shape-cache counters while division
// workers hit the cache concurrently; drainInto publishes them to
// division.Stats.Shapes after the pipeline finishes (the same lifecycle as
// engineTally). Distinct is counted run-locally — the process-wide cache
// cannot answer "how many shapes did *this* run touch".
type shapeTally struct {
	mu       sync.Mutex
	hits     int                 // guarded by mu
	misses   int                 // guarded by mu
	distinct map[string]struct{} // guarded by mu; only len() is read, never ranged
}

func newShapeTally() *shapeTally { return &shapeTally{distinct: make(map[string]struct{})} }

func (t *shapeTally) hit(key string) {
	t.mu.Lock()
	t.hits++
	t.distinct[key] = struct{}{}
	t.mu.Unlock()
}

func (t *shapeTally) miss(key string) {
	t.mu.Lock()
	t.misses++
	t.distinct[key] = struct{}{}
	t.mu.Unlock()
}

func (t *shapeTally) drainInto(st *division.Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st.Shapes.Hits += t.hits
	st.Shapes.Misses += t.misses
	st.Shapes.Distinct += len(t.distinct)
}

// shapeOptionsSig is the solver-configuration part of a shape-cache key:
// two runs may share cached colors only when every option an engine reads
// matches. Fields that cannot change a piece's deterministic solution are
// zeroed — worker counts and build tuning don't reach the engines, and the
// wall-clock budgets (ILPTimeLimit, RaceBudget) are excluded because a
// budget-expired solve is never stored in the first place (memoSolver
// skips storing once the run is unproven or cancelled), so every cached
// entry is the budget-independent exact answer.
func shapeOptionsSig(o Options) string {
	o = o.withDefaults()
	o.Memoize = false
	o.ILPTimeLimit = 0
	o.RaceBudget = 0
	o.Build = BuildOptions{}
	o.Division = division.Options{}
	return fmt.Sprintf("%#v", o)
}

// memoSolver wraps an engine dispatcher with the canonical-shape cache:
// each piece is encoded and canonicalized, byte-identical repeats of an
// already-solved piece rehydrate the stored canonical-space colors through
// the piece's own vertex mapping (tallied as the "memo" engine), and cache
// misses solve through inner under the class's single flight so a hot
// shape solves once even when every division worker hits it at the same
// time. Only clean solves are stored: a piece solved after the run went
// unproven (ILP budget) or under a dying context releases its flight with
// nil instead, so the cache never replays degraded colors.
func memoSolver(ctx context.Context, opts Options, inner division.Solver, unproven *atomic.Bool, tally *engineTally, shapes *canon.ShapeCache, st *shapeTally) division.Solver {
	sig := shapeOptionsSig(opts)
	return func(g *graph.Graph, sc *pipeline.Scratch) []int {
		n := g.N()
		if n > canon.MaxVertices {
			return inner(g, sc) // uncounted: never a cache candidate
		}
		enc := canon.Encode(g)
		form := canon.Canonicalize(g)
		key := sig + "\x00" + string(form.Key(enc))
		colors, state := shapes.Acquire(ctx, key, enc)
		switch state {
		case canon.Hit:
			st.hit(key)
			tally.add("memo")
			out := sc.Ints(n)
			for v := 0; v < n; v++ {
				out[v] = colors[form.Perm[v]]
			}
			return out
		case canon.Owner:
			out := inner(g, sc)
			var stored []int
			if ctx.Err() == nil && !unproven.Load() {
				stored = make([]int, n)
				for v := 0; v < n; v++ {
					stored[form.Perm[v]] = out[v]
				}
			}
			shapes.Finish(key, enc, stored)
			st.miss(key)
			return out
		default: // Bypass: context died waiting on another flight
			st.miss(key)
			return inner(g, sc)
		}
	}
}
