//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, so long exact-search tests can scale themselves down.
const raceEnabled = true
