package core

// Regression gate for the adaptive engine portfolio: auto mode must never
// be worse than the best single engine of the committed golden table
// (TestGoldenTable1Counts) on any committed circuit — that is the whole
// point of per-component selection, and the gate makes threshold or solver
// changes that lose it fail loudly instead of drifting. The race policy is
// wall-clock dependent by design, so the gate pins auto only; race gets the
// weaker (but still strict) validity and no-worse-than-linear checks in
// portfolio_test.go.

import (
	"path/filepath"
	"testing"
	"time"

	"mpl/internal/layout"
)

// goldenBest returns the lexicographically best (cn#, st#) across the four
// fixed engines of the golden table — conflicts first, then stitches, the
// paper's objective ordering.
func goldenBest(engines map[Algorithm][2]int) [2]int {
	best := [2]int{1 << 30, 1 << 30}
	for _, v := range engines {
		if v[0] < best[0] || (v[0] == best[0] && v[1] < best[1]) {
			best = v
		}
	}
	return best
}

func TestAutoNeverWorseThanGoldenBest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale committed circuits; skipped in -short mode")
	}
	for circuit, engines := range goldenCounts {
		circuit, engines := circuit, engines
		t.Run(circuit, func(t *testing.T) {
			l, err := layout.ReadFile(filepath.Join("..", "..", "benchmarks", circuit+".lay"))
			if err != nil {
				t.Fatalf("%s: %v (the gate is pinned to the committed .lay files)", circuit, err)
			}
			g, err := BuildGraph(l, BuildOptions{K: 4})
			if err != nil {
				t.Fatal(err)
			}
			res, err := DecomposeGraph(g, Options{
				K: 4, Engine: EngineAuto, Seed: 1,
				// Generous: the auto thresholds route only sub-cliff pieces
				// (≤ ILPMaxN vertices) to the exact engine, each tens of ms.
				ILPTimeLimit: 10 * time.Minute,
			})
			if err != nil {
				t.Fatal(err)
			}
			best := goldenBest(engines)
			if res.Conflicts > best[0] || (res.Conflicts == best[0] && res.Stitches > best[1]) {
				t.Errorf("auto cn#/st# = %d/%d exceeds the best single-engine golden counts %d/%d — "+
					"the portfolio thresholds regressed; recalibrate (internal/portfolio defaults) in the same commit",
					res.Conflicts, res.Stitches, best[0], best[1])
			}
			// The gate also guards the flip side: auto must actually be
			// reproducible, so the same run twice must agree (the selection
			// is structural, the engines deterministic).
			res2, err := DecomposeGraph(g, Options{K: 4, Engine: EngineAuto, Seed: 1, ILPTimeLimit: 10 * time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			if res2.Conflicts != res.Conflicts || res2.Stitches != res.Stitches {
				t.Errorf("auto is not deterministic: %d/%d then %d/%d", res.Conflicts, res.Stitches, res2.Conflicts, res2.Stitches)
			}
		})
	}
}
