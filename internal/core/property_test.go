package core

// Property-based test over seeded random layouts: every engine — the four
// fixed ones plus the adaptive auto and race policies — must uphold the
// solution invariants on arbitrary (valid) geometry, not just the curated
// benchmark circuits. The invariants are exactly what VerifySolution and
// the golden tests rely on elsewhere:
//
//   - every feature survives into ≥ 1 fragment and every fragment is
//     colored with a mask in [0, K);
//   - stitch edges connect distinct fragments of one feature;
//   - the reported cn#/st# match both a graph recount (coloring.Count) and
//     an independent geometric recount (VerifySolution).

import (
	"fmt"
	"testing"
	"time"

	"mpl/internal/coloring"
	"mpl/internal/synth"
)

// propertyEngines is every engine the solve stage can dispatch.
var propertyEngines = []struct {
	name string
	opts Options
}{
	{"linear", Options{Algorithm: AlgLinear}},
	{"sdp-greedy", Options{Algorithm: AlgSDPGreedy}},
	{"sdp-backtrack", Options{Algorithm: AlgSDPBacktrack}},
	{"ilp", Options{Algorithm: AlgILP}},
	{"auto", Options{Engine: EngineAuto}},
	{"race", Options{Engine: EngineRace}},
}

func TestPropertyAllEnginesUpholdInvariants(t *testing.T) {
	cases := 200
	if raceEnabled {
		// The full grid is 200 layouts × 2 K × 6 engines; under the race
		// detector that is minutes of SDP descent with nothing new to
		// find. CI's non-race pass runs the full grid.
		cases = 40
	}
	if testing.Short() {
		cases = 25
	}
	for seed := 0; seed < cases; seed++ {
		l := synth.Random(int64(seed))
		for _, k := range []int{3, 4} {
			g, err := BuildGraph(l, BuildOptions{K: k})
			if err != nil {
				t.Fatalf("seed %d k %d: build: %v", seed, k, err)
			}
			for _, eng := range propertyEngines {
				opts := eng.opts
				opts.K = k
				opts.Seed = 1
				// A global budget so a hostile random core cannot stall the
				// exact engine; budget expiry degrades to the linear engine,
				// which must uphold the same invariants.
				opts.ILPTimeLimit = 250 * time.Millisecond
				res, err := DecomposeGraph(g, opts)
				if err != nil {
					t.Fatalf("seed %d k %d %s: %v", seed, k, eng.name, err)
				}
				label := fmt.Sprintf("seed %d k %d %s", seed, k, eng.name)
				assertSolutionInvariants(t, label, len(l.Features), k, res)
			}
		}
	}
}

// assertSolutionInvariants checks the full invariant set on one result.
func assertSolutionInvariants(t *testing.T, label string, features, k int, res *Result) {
	t.Helper()
	// Every feature colored: each of the layout's features owns at least
	// one fragment, and every fragment has a color in [0, k).
	seen := make(map[int]bool)
	for _, fr := range res.Graph.Fragments {
		seen[fr.Feature] = true
	}
	if len(seen) != features {
		t.Fatalf("%s: %d features, only %d appear in fragments", label, features, len(seen))
	}
	if err := coloring.Validate(res.Graph.G, res.Colors, k); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	// Stitch edges join distinct fragments of one feature.
	for _, e := range res.Graph.G.StitchEdges() {
		if e.U == e.V {
			t.Fatalf("%s: stitch self-loop at %d", label, e.U)
		}
		if fu, fv := res.Graph.Fragments[e.U].Feature, res.Graph.Fragments[e.V].Feature; fu != fv {
			t.Fatalf("%s: stitch edge (%d,%d) crosses features %d and %d", label, e.U, e.V, fu, fv)
		}
	}
	// Reported objective matches a graph recount and a geometric recount.
	conf, stit := coloring.Count(res.Graph.G, res.Colors)
	if conf != res.Conflicts || stit != res.Stitches {
		t.Fatalf("%s: reported %d/%d, graph recount %d/%d", label, res.Conflicts, res.Stitches, conf, stit)
	}
	vc, vs, err := VerifySolution(res)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if vc != res.Conflicts || vs != res.Stitches {
		t.Fatalf("%s: reported %d/%d, geometric recount %d/%d", label, res.Conflicts, res.Stitches, vc, vs)
	}
	// The dispatch histogram accounts for every solved or degraded piece.
	total := 0
	for _, n := range res.DivisionStats.Engines {
		total += n
	}
	if want := res.DivisionStats.SolverCalls + res.DivisionStats.Fallbacks; total != want {
		t.Fatalf("%s: engine histogram sums to %d, solver calls + fallbacks = %d (%v)",
			label, total, want, res.DivisionStats.Engines)
	}
}
