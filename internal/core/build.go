// Package core assembles the full layout-decomposition flow of the DAC'14
// paper (Fig. 2): decomposition-graph construction from polygonal layout
// features (conflict edges, projection-based stitch candidates,
// color-friendly pairs), graph division, per-component color assignment
// with one of the paper's four engines, and mask output with independent
// verification.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpl/internal/geom"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/spatial"
)

// Fragment is one vertex of the decomposition graph: a piece of a layout
// feature (the whole feature when no stitch splits it).
type Fragment struct {
	// Feature is the index of the owning feature in the layout.
	Feature int
	// Shape is the fragment geometry.
	Shape geom.Polygon
}

// BuildTiming reports per-stage wall-clock times of one graph build
// (DESIGN.md §3). In a parallel build the Split and Edges stages run on the
// worker pool; Merge is the serial deterministic assembly.
type BuildTiming struct {
	// Split is the stitch-candidate stage: building the rectangle grid,
	// then features → fragments plus intra-feature stitch pair detection.
	Split time.Duration
	// Edges is conflict/color-friendly edge discovery: building the
	// fragment-bounds grid (and, in parallel builds, the tile ordering),
	// then the neighborhood scan.
	Edges time.Duration
	// Merge is the serial assembly: fragment numbering, stitch-edge
	// insertion, and (in parallel builds) the deterministic edge replay.
	Merge time.Duration
	// Total is the end-to-end BuildGraph wall clock; it exceeds
	// Split+Edges+Merge only by input validation and bookkeeping.
	Total time.Duration
}

// BuildStats summarizes a constructed decomposition graph.
type BuildStats struct {
	Features      int
	Fragments     int
	ConflictEdges int
	StitchEdges   int
	FriendEdges   int
	// Workers is the worker count the build actually used (≥ 1).
	Workers int
	// Timing is the per-stage wall clock of this build. It is the one part
	// of BuildStats that varies run to run; everything else is identical at
	// any worker count.
	Timing BuildTiming
}

// BuildOptions controls decomposition-graph construction.
type BuildOptions struct {
	// MinS is the minimum coloring distance; two fragments of different
	// features within (≤) this distance receive a conflict edge. Zero
	// derives the paper's value from the layout process and K.
	MinS int
	// K is the mask count used to derive MinS when MinS is zero.
	K int
	// DisableStitches turns off stitch candidate generation.
	DisableStitches bool
	// StitchMinSeg is the minimum fragment length left on each side of a
	// stitch; zero means the process minimum width.
	StitchMinSeg int
	// MaxStitchesPerFeature caps candidates per feature; zero means 2
	// (long wires rarely profit from more, and the cap keeps vertex counts
	// close to the paper's "stitch candidate" regime).
	MaxStitchesPerFeature int
	// Workers is the number of goroutines sharding the split and
	// edge-generation stages; 0 or 1 means serial (matching
	// division.Options.Workers). The constructed graph is identical —
	// fragment order, adjacency order, stats — at any worker count, so
	// Workers is purely a wall-clock knob.
	Workers int
}

// Graph couples the decomposition graph with fragment geometry.
type Graph struct {
	G         *graph.Graph
	Fragments []Fragment
	Stats     BuildStats
	MinS      int
	HalfPitch int
}

// BuildGraph constructs the decomposition graph of a layout (Definition 1):
// one vertex per fragment, conflict edges between fragments of different
// features within MinS, stitch edges between touching fragments of one
// feature, and color-friendly edges (Definition 2) between fragments of
// different features at distance in (MinS, MinS+hp).
func BuildGraph(l *layout.Layout, opts BuildOptions) (*Graph, error) {
	return BuildGraphContext(context.Background(), l, opts)
}

// BuildGraphContext is BuildGraph with cooperative cancellation and optional
// parallelism (BuildOptions.Workers). The build is sharded: features are
// split into stitch fragments on a bounded worker pool, fragments are
// grouped into spatial tile shards for conflict/friend edge discovery, and a
// serial merge replays everything in deterministic order, so the resulting
// graph is identical to a serial build. Unlike DecomposeContext — which
// degrades rather than fails — a half-built graph has no degraded form, so
// cancellation mid-build returns a wrapped ctx error and no graph.
func BuildGraphContext(ctx context.Context, l *layout.Layout, opts BuildOptions) (*Graph, error) {
	t0 := time.Now()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	if k == 0 {
		k = 4
	}
	minS := opts.MinS
	if minS == 0 {
		minS = l.Process.MinColoringDistance(k)
	}
	if minS <= 0 {
		return nil, fmt.Errorf("core: non-positive minimum coloring distance %d", minS)
	}
	hp := l.Process.HalfPitch

	workers := opts.Workers
	if workers <= 1 {
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > 4*max {
		// More goroutines than 4× the scheduler width only adds churn; the
		// output is identical anyway, so clamp silently.
		workers = 4 * max
		if workers < 1 {
			workers = 1
		}
	}

	b := &builder{l: l, opts: opts, minS: minS, hp: hp, workers: workers}

	// Stage 1 (parallel over features): stitch candidate generation — split
	// features into fragment pieces and detect intra-feature stitch pairs.
	tSplit := time.Now()
	if err := b.splitFeatures(ctx); err != nil {
		return nil, err
	}
	timing := BuildTiming{Split: time.Since(tSplit)}

	// Stage 2 (serial merge): number fragments in feature order and record
	// stitch pairs; fragment numbering matches a feature-by-feature serial
	// build.
	tMerge := time.Now()
	if err := b.assembleFragments(); err != nil {
		return nil, err
	}
	timing.Merge += time.Since(tMerge)

	// Stage 3 (parallel over tile shards): conflict and color-friendly edge
	// discovery via a shared read-only grid over fragment bounds. Each
	// fragment i is owned by exactly one shard, which records its neighbors
	// j > i in ascending order — the cross-tile deduplication rule: a pair
	// found from both sides is emitted only by its lower-indexed owner.
	tEdges := time.Now()
	if err := b.discoverEdges(ctx); err != nil {
		return nil, err
	}
	timing.Edges = time.Since(tEdges)

	// Stage 4 (serial merge): drain the per-shard edge lists into the CSR
	// builder and materialize the graph in one two-pass count-then-fill
	// build. The builder sorts and compacts every adjacency row, so the
	// graph is a pure function of the edge *set* — independent of grid
	// geometry, scan order, shard boundaries, and worker count. Incremental
	// rebuilds (ApplyEdits) rely on exactly this: they splice cached
	// adjacency into freshly discovered edges and must land on the same
	// canonical form as a from-scratch build.
	tMerge = time.Now()
	b.finishGraph()
	timing.Merge += time.Since(tMerge)

	timing.Total = time.Since(t0)
	b.stats.Workers = workers
	b.stats.Timing = timing
	return &Graph{G: b.g, Fragments: b.frags, Stats: b.stats, MinS: minS, HalfPitch: hp}, nil
}

// builder carries the intermediate state of one staged graph build.
type builder struct {
	l       *layout.Layout
	opts    BuildOptions
	minS    int
	hp      int
	workers int

	// Stage 1 output, indexed by feature.
	pieces   [][]geom.Polygon
	stitches [][][2]int // per feature: local piece index pairs touching (gap 0)

	// Stage 2 output.
	frags          []Fragment
	fragsOfFeature [][]int
	bld            *graph.Builder
	g              *graph.Graph
	stats          BuildStats

	// Stage 3 output, indexed by shard chunk: flat (u,v) conflict and
	// color-friendly pairs, u < v (owner-computes dedup). Each chunk is
	// written by exactly one worker; the merge drains them into the CSR
	// builder, which sorts and compacts — so shard boundaries never show
	// through in the finished graph.
	confShard   [][]int32
	friendShard [][]int32
}

// buildCancelled wraps the context error so callers can errors.Is it while
// seeing which stage was abandoned.
func buildCancelled(ctx context.Context, stage string) error {
	return fmt.Errorf("core: graph construction cancelled during %s: %w", stage, context.Cause(ctx))
}

// shardPlan returns the chunk size and chunk count runSharded will use over
// [0, n), so stages that stage per-chunk output (the streamed edge lists)
// can size their slots up front.
func (b *builder) shardPlan(n int) (chunk, nChunks int) {
	chunk = n/(b.workers*4) + 1
	if chunk < 32 {
		chunk = 32
	}
	return chunk, (n + chunk - 1) / chunk
}

// runSharded executes fn over [0, n) in contiguous chunks pulled from an
// atomic cursor by min(workers, needed) goroutines. fn receives the chunk
// index alongside the range, so a stage can write per-chunk output slots
// without coordination. Chunk processing order is nondeterministic but every
// output is indexed by its input position, so results are deterministic.
// Returns promptly with ctx's error when cancelled mid-build.
func (b *builder) runSharded(ctx context.Context, n int, stage string, fn func(ci, lo, hi int)) error {
	if n == 0 {
		return nil
	}
	workers := b.workers
	chunk, nChunks := b.shardPlan(n)
	if workers > nChunks {
		workers = nChunks
	}
	if workers == 1 {
		for ci := 0; ci < nChunks; ci++ {
			if ctx.Err() != nil {
				return buildCancelled(ctx, stage)
			}
			lo := ci * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(ci, lo, hi)
		}
		return nil
	}
	var cursor atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return buildCancelled(ctx, stage)
	}
	return nil
}

// splitFeatures runs stage 1: per-feature stitch splitting plus local
// stitch-pair detection, sharded across the worker pool. Output depends
// only on the feature index, never on the shard that computed it.
func (b *builder) splitFeatures(ctx context.Context) error {
	nf := len(b.l.Features)
	b.pieces = make([][]geom.Polygon, nf)
	b.stitches = make([][][2]int, nf)
	if b.opts.DisableStitches {
		for fi := range b.l.Features {
			b.pieces[fi] = []geom.Polygon{b.l.Features[fi]}
		}
		return nil
	}
	minSeg := b.opts.StitchMinSeg
	if minSeg == 0 {
		minSeg = b.l.Process.MinWidth
	}
	maxStitch := b.opts.MaxStitchesPerFeature
	if maxStitch == 0 {
		maxStitch = 2
	}
	splitter := newStitchSplitter(b.l, b.minS, minSeg, maxStitch)
	defer splitter.grid.Release()
	queriers := newQuerierLease(splitter.grid)
	defer queriers.release()
	return b.runSharded(ctx, nf, "stitch splitting", func(_, lo, hi int) {
		q := queriers.get()
		defer queriers.put(q)
		for fi := lo; fi < hi; fi++ {
			ps := splitter.split(q, fi, b.l.Features[fi])
			b.pieces[fi] = ps
			// Touching pieces of one feature are stitch candidates; record
			// local pairs now so the merge only replays them.
			for i := 0; i < len(ps); i++ {
				for j := i + 1; j < len(ps); j++ {
					if geom.GapSqPoly(ps[i], ps[j]) == 0 {
						b.stitches[fi] = append(b.stitches[fi], [2]int{i, j})
					}
				}
			}
		}
	})
}

// assembleFragments runs stage 2: deterministic fragment numbering in
// feature order and stitch-pair staging into the CSR builder. It returns an
// error — instead of letting graph.NewBuilder panic — when the fragment
// count exceeds the int32 vertex-id capacity, so million-feature inputs that
// overshoot fail with a diagnosis rather than silent id truncation.
func (b *builder) assembleFragments() error {
	total := 0
	for _, ps := range b.pieces {
		total += len(ps)
	}
	if total > graph.MaxVertices {
		return fmt.Errorf("core: layout splits into %d fragments, exceeding the graph capacity of %d vertices", total, graph.MaxVertices)
	}
	b.frags = make([]Fragment, 0, total)
	b.fragsOfFeature = make([][]int, len(b.pieces))
	for fi, ps := range b.pieces {
		for _, p := range ps {
			b.fragsOfFeature[fi] = append(b.fragsOfFeature[fi], len(b.frags))
			b.frags = append(b.frags, Fragment{Feature: fi, Shape: p})
		}
	}
	b.bld = graph.NewBuilder(len(b.frags))
	b.stats = BuildStats{Features: len(b.l.Features), Fragments: len(b.frags)}
	for fi, pairs := range b.stitches {
		ids := b.fragsOfFeature[fi]
		for _, pr := range pairs {
			b.bld.AddStitch(ids[pr[0]], ids[pr[1]])
		}
	}
	return nil
}

// discoverEdges runs stage 3: conflict and color-friendly candidate
// discovery over a shared fragment grid. Fragments are sorted into spatial
// tile shards so each worker's chunk touches a coherent region of the grid;
// every fragment records only neighbors with a larger index (owner-computes
// dedup: the lower-indexed endpoint owns the pair), sorted ascending so the
// final adjacency is canonical — a pure function of the edge set rather
// than of the grid's bucket enumeration order.
func (b *builder) discoverEdges(ctx context.Context) error {
	n := len(b.frags)
	if n == 0 {
		return nil
	}
	radius := b.minS + b.hp
	world := b.l.Bounds().Expand(radius + 1)
	grid := spatial.NewGrid(world, radius, n)
	defer grid.Release()
	for _, fr := range b.frags {
		grid.Insert(fr.Shape.Bounds())
	}

	// Tile sharding (parallel builds only): order fragment indices by the
	// coarse tile containing their bounds center (ties by index). Workers
	// then pull contiguous chunks of this order, so one chunk ≈ one
	// spatial tile run. The serial path scans in index order and streams
	// pairs straight into the CSR builder, so it allocates neither the
	// order nor the per-chunk staging buffers.
	var order []int32
	if b.workers > 1 {
		_, nChunks := b.shardPlan(n)
		b.confShard = make([][]int32, nChunks)
		b.friendShard = make([][]int32, nChunks)
		order = make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
		tile := make([]int32, n)
		tileSize := 4 * radius
		cols := world.Width()/tileSize + 1
		for i, fr := range b.frags {
			bb := fr.Shape.Bounds()
			tx := ((bb.X0+bb.X1)/2 - world.X0) / tileSize
			ty := ((bb.Y0+bb.Y1)/2 - world.Y0) / tileSize
			tile[i] = int32(ty*cols + tx)
		}
		sort.Slice(order, func(a, c int) bool {
			if tile[order[a]] != tile[order[c]] {
				return tile[order[a]] < tile[order[c]]
			}
			return order[a] < order[c]
		})
	}

	minSq := int64(b.minS) * int64(b.minS)
	friendOuter := int64(radius) * int64(radius)
	if b.workers == 1 {
		// Serial hot path: scan with the grid's own stamps and append each
		// discovered pair to the builder as soon as the query reports it.
		// No sorting here — the CSR build's sort+compact canonicalizes.
		return b.runSharded(ctx, n, "edge generation", func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				fi := b.frags[i]
				grid.Near(fi.Shape.Bounds(), radius, func(j int) {
					if j <= i || fi.Feature == b.frags[j].Feature {
						return
					}
					d := geom.GapSqPoly(fi.Shape, b.frags[j].Shape)
					switch {
					case d <= minSq:
						b.bld.AddConflict(i, j)
					case d < friendOuter:
						b.bld.AddFriend(i, j)
					}
				})
			}
		})
	}
	queriers := newQuerierLease(grid)
	defer queriers.release()
	return b.runSharded(ctx, n, "edge generation", func(ci, lo, hi int) {
		q := queriers.get()
		defer queriers.put(q)
		conf, friend := b.confShard[ci], b.friendShard[ci]
		for _, oi := range order[lo:hi] {
			i := int(oi)
			fi := b.frags[i]
			q.Near(fi.Shape.Bounds(), radius, func(j int) {
				if j <= i || fi.Feature == b.frags[j].Feature {
					return
				}
				d := geom.GapSqPoly(fi.Shape, b.frags[j].Shape)
				switch {
				case d <= minSq:
					conf = append(conf, int32(i), int32(j))
				case d < friendOuter:
					friend = append(friend, int32(i), int32(j))
				}
			})
		}
		b.confShard[ci], b.friendShard[ci] = conf, friend
	})
}

// finishGraph runs stage 4: drain the per-shard edge lists into the CSR
// builder (resident pairs from a serial build are already there) and run the
// two-pass count-then-fill build. Transient degree/offset arrays come from
// the shared scratch pool; the edge arenas belong to the finished graph.
// Edge-kind totals come from the builder's compacted rows, so they equal the
// per-insert tallies of the old mutable path by construction.
func (b *builder) finishGraph() {
	var nc, nf int
	for ci := range b.confShard {
		nc += len(b.confShard[ci])
		nf += len(b.friendShard[ci])
	}
	b.bld.Grow(nc, 0, nf)
	for ci := range b.confShard {
		// Each shard is dropped as it drains, so peak heap holds one copy of
		// the edge set plus the in-progress merge buffer — not two full
		// copies for the whole drain.
		b.bld.AddConflictPairs(b.confShard[ci])
		b.confShard[ci] = nil
		b.bld.AddFriendPairs(b.friendShard[ci])
		b.friendShard[ci] = nil
	}
	b.confShard, b.friendShard = nil, nil
	sc := sharedScratch.Get()
	b.g = b.bld.Build(sc)
	sharedScratch.Put(sc)
	b.bld = nil
	b.stats.ConflictEdges = b.g.ConflictEdgeCount()
	b.stats.StitchEdges = b.g.StitchEdgeCount()
	b.stats.FriendEdges = b.g.FriendEdgeCount()
}

// querierLease is a sync.Pool of queriers over one grid that also tracks
// every querier it ever created, so the build can Release their pooled
// stamp arrays once the sharded stage finishes (a bare sync.Pool cannot be
// enumerated, which would strand the stamps until GC instead of recycling
// them into the next build).
type querierLease struct {
	p       sync.Pool
	mu      sync.Mutex
	created []*spatial.Querier
}

func newQuerierLease(grid *spatial.Grid) *querierLease {
	ql := &querierLease{}
	ql.p.New = func() any {
		q := grid.NewQuerier()
		ql.mu.Lock()
		ql.created = append(ql.created, q)
		ql.mu.Unlock()
		return q
	}
	return ql
}

func (ql *querierLease) get() *spatial.Querier  { return ql.p.Get().(*spatial.Querier) }
func (ql *querierLease) put(q *spatial.Querier) { ql.p.Put(q) }

// release recycles every created querier's stamps. Call only after all
// workers are done.
func (ql *querierLease) release() {
	ql.mu.Lock()
	defer ql.mu.Unlock()
	for _, q := range ql.created {
		q.Release()
	}
	ql.created = nil
}

// stitchSplitter implements projection-based stitch candidate generation
// (DESIGN.md §5): a wire-like rectangle may be split at positions not
// covered by the projection of any conflicting neighbor, keeping at least
// minSeg of material on each side.
type stitchSplitter struct {
	l        *layout.Layout
	minS     int
	minSeg   int
	maxCount int
	grid     *spatial.Grid
	owner    []int // grid id -> feature index
	rects    []geom.Rect
}

func newStitchSplitter(l *layout.Layout, minS, minSeg, maxCount int) *stitchSplitter {
	s := &stitchSplitter{l: l, minS: minS, minSeg: minSeg, maxCount: maxCount}
	world := l.Bounds().Expand(minS + 1)
	total := l.RectCount()
	s.grid = spatial.NewGrid(world, minS, total)
	for fi, f := range l.Features {
		for _, r := range f.Rects {
			s.grid.Insert(r)
			s.owner = append(s.owner, fi)
			s.rects = append(s.rects, r)
		}
	}
	return s
}

// split returns the fragment polygons of one feature: single-rectangle
// wire features may be divided at stitch candidates; everything else stays
// whole. (Stitches inside complex polygons exist in practice but the
// paper's stitch model — one candidate per uncovered projection interval —
// is defined on wires; see DESIGN.md §5.) Queries go through the caller's
// Querier so shards can split concurrently over the shared grid.
func (s *stitchSplitter) split(q *spatial.Querier, fi int, f geom.Polygon) []geom.Polygon {
	if len(f.Rects) != 1 {
		return []geom.Polygon{f}
	}
	r := f.Rects[0]
	horizontal := r.Width() >= r.Height()
	length := r.Width()
	if !horizontal {
		length = r.Height()
	}
	if length < 2*s.minSeg {
		return []geom.Polygon{f}
	}

	// Forbidden intervals: projections of conflicting neighbor rectangles,
	// expanded by minSeg so a stitch keeps clearance from the region where
	// the neighbor actually constrains the wire.
	type iv struct{ lo, hi int }
	var forbidden []iv
	q.Near(r, s.minS, func(id int) {
		if s.owner[id] == fi {
			return
		}
		nr := s.rects[id]
		if geom.GapSq(r, nr) > int64(s.minS)*int64(s.minS) {
			return
		}
		if horizontal {
			forbidden = append(forbidden, iv{nr.X0 - s.minSeg, nr.X1 + s.minSeg})
		} else {
			forbidden = append(forbidden, iv{nr.Y0 - s.minSeg, nr.Y1 + s.minSeg})
		}
	})

	lo, hi := r.X0, r.X1
	if !horizontal {
		lo, hi = r.Y0, r.Y1
	}
	// Candidate window: stitches must leave minSeg on both sides.
	winLo, winHi := lo+s.minSeg, hi-s.minSeg
	if winLo >= winHi {
		return []geom.Polygon{f}
	}
	sort.Slice(forbidden, func(a, b int) bool { return forbidden[a].lo < forbidden[b].lo })

	// Walk the window collecting allowed gaps; one stitch per gap midpoint.
	var cuts []int
	cursor := winLo
	emit := func(gapLo, gapHi int) {
		if len(cuts) >= s.maxCount {
			return
		}
		if gapHi > gapLo {
			cuts = append(cuts, (gapLo+gapHi)/2)
		}
	}
	for _, ivl := range forbidden {
		if ivl.lo > cursor {
			gHi := min(ivl.lo, winHi)
			emit(cursor, gHi)
		}
		if ivl.hi > cursor {
			cursor = ivl.hi
		}
		if cursor >= winHi {
			break
		}
	}
	if cursor < winHi {
		emit(cursor, winHi)
	}
	if len(cuts) == 0 {
		return []geom.Polygon{f}
	}
	sort.Ints(cuts)

	var out []geom.Polygon
	prev := lo
	for _, c := range cuts {
		if c <= prev || c >= hi {
			continue
		}
		if horizontal {
			out = append(out, geom.NewPolygon(geom.Rect{X0: prev, Y0: r.Y0, X1: c, Y1: r.Y1}))
		} else {
			out = append(out, geom.NewPolygon(geom.Rect{X0: r.X0, Y0: prev, X1: r.X1, Y1: c}))
		}
		prev = c
	}
	if horizontal {
		out = append(out, geom.NewPolygon(geom.Rect{X0: prev, Y0: r.Y0, X1: hi, Y1: r.Y1}))
	} else {
		out = append(out, geom.NewPolygon(geom.Rect{X0: r.X0, Y0: prev, X1: r.X1, Y1: hi}))
	}
	return out
}
