// Package core assembles the full layout-decomposition flow of the DAC'14
// paper (Fig. 2): decomposition-graph construction from polygonal layout
// features (conflict edges, projection-based stitch candidates,
// color-friendly pairs), graph division, per-component color assignment
// with one of the paper's four engines, and mask output with independent
// verification.
package core

import (
	"fmt"
	"sort"

	"mpl/internal/geom"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/spatial"
)

// Fragment is one vertex of the decomposition graph: a piece of a layout
// feature (the whole feature when no stitch splits it).
type Fragment struct {
	// Feature is the index of the owning feature in the layout.
	Feature int
	// Shape is the fragment geometry.
	Shape geom.Polygon
}

// BuildStats summarizes a constructed decomposition graph.
type BuildStats struct {
	Features      int
	Fragments     int
	ConflictEdges int
	StitchEdges   int
	FriendEdges   int
}

// BuildOptions controls decomposition-graph construction.
type BuildOptions struct {
	// MinS is the minimum coloring distance; two fragments of different
	// features within (≤) this distance receive a conflict edge. Zero
	// derives the paper's value from the layout process and K.
	MinS int
	// K is the mask count used to derive MinS when MinS is zero.
	K int
	// DisableStitches turns off stitch candidate generation.
	DisableStitches bool
	// StitchMinSeg is the minimum fragment length left on each side of a
	// stitch; zero means the process minimum width.
	StitchMinSeg int
	// MaxStitchesPerFeature caps candidates per feature; zero means 2
	// (long wires rarely profit from more, and the cap keeps vertex counts
	// close to the paper's "stitch candidate" regime).
	MaxStitchesPerFeature int
}

// Graph couples the decomposition graph with fragment geometry.
type Graph struct {
	G         *graph.Graph
	Fragments []Fragment
	Stats     BuildStats
	MinS      int
	HalfPitch int
}

// BuildGraph constructs the decomposition graph of a layout (Definition 1):
// one vertex per fragment, conflict edges between fragments of different
// features within MinS, stitch edges between touching fragments of one
// feature, and color-friendly edges (Definition 2) between fragments of
// different features at distance in (MinS, MinS+hp).
func BuildGraph(l *layout.Layout, opts BuildOptions) (*Graph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	if k == 0 {
		k = 4
	}
	minS := opts.MinS
	if minS == 0 {
		minS = l.Process.MinColoringDistance(k)
	}
	if minS <= 0 {
		return nil, fmt.Errorf("core: non-positive minimum coloring distance %d", minS)
	}
	hp := l.Process.HalfPitch

	// Stage 1: stitch candidate generation — split features into fragments.
	var frags []Fragment
	fragsOfFeature := make([][]int, len(l.Features))
	if opts.DisableStitches {
		for fi, f := range l.Features {
			fragsOfFeature[fi] = []int{len(frags)}
			frags = append(frags, Fragment{Feature: fi, Shape: f})
		}
	} else {
		minSeg := opts.StitchMinSeg
		if minSeg == 0 {
			minSeg = l.Process.MinWidth
		}
		maxStitch := opts.MaxStitchesPerFeature
		if maxStitch == 0 {
			maxStitch = 2
		}
		splitter := newStitchSplitter(l, minS, minSeg, maxStitch)
		for fi, f := range l.Features {
			pieces := splitter.split(fi, f)
			for _, p := range pieces {
				fragsOfFeature[fi] = append(fragsOfFeature[fi], len(frags))
				frags = append(frags, Fragment{Feature: fi, Shape: p})
			}
		}
	}

	g := graph.New(len(frags))
	st := BuildStats{Features: len(l.Features), Fragments: len(frags)}

	// Stitch edges: touching fragments of the same feature.
	for _, ids := range fragsOfFeature {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := frags[ids[i]].Shape, frags[ids[j]].Shape
				if geom.GapSqPoly(a, b) == 0 {
					if g.AddStitch(ids[i], ids[j]) {
						st.StitchEdges++
					}
				}
			}
		}
	}

	// Conflict and color-friendly edges via a grid over fragment bounds.
	world := l.Bounds().Expand(minS + hp + 1)
	grid := spatial.NewGrid(world, minS+hp, len(frags))
	for _, fr := range frags {
		grid.Insert(fr.Shape.Bounds())
	}
	minSq := int64(minS) * int64(minS)
	friendOuter := int64(minS+hp) * int64(minS+hp)
	for i := range frags {
		grid.Near(frags[i].Shape.Bounds(), minS+hp, func(j int) {
			if j <= i || frags[i].Feature == frags[j].Feature {
				return
			}
			d := geom.GapSqPoly(frags[i].Shape, frags[j].Shape)
			switch {
			case d <= minSq:
				if g.AddConflict(i, j) {
					st.ConflictEdges++
				}
			case d < friendOuter:
				if g.AddFriend(i, j) {
					st.FriendEdges++
				}
			}
		})
	}

	return &Graph{G: g, Fragments: frags, Stats: st, MinS: minS, HalfPitch: hp}, nil
}

// stitchSplitter implements projection-based stitch candidate generation
// (DESIGN.md §5): a wire-like rectangle may be split at positions not
// covered by the projection of any conflicting neighbor, keeping at least
// minSeg of material on each side.
type stitchSplitter struct {
	l        *layout.Layout
	minS     int
	minSeg   int
	maxCount int
	grid     *spatial.Grid
	owner    []int // grid id -> feature index
	rects    []geom.Rect
}

func newStitchSplitter(l *layout.Layout, minS, minSeg, maxCount int) *stitchSplitter {
	s := &stitchSplitter{l: l, minS: minS, minSeg: minSeg, maxCount: maxCount}
	world := l.Bounds().Expand(minS + 1)
	total := l.RectCount()
	s.grid = spatial.NewGrid(world, minS, total)
	for fi, f := range l.Features {
		for _, r := range f.Rects {
			s.grid.Insert(r)
			s.owner = append(s.owner, fi)
			s.rects = append(s.rects, r)
		}
	}
	return s
}

// split returns the fragment polygons of one feature: single-rectangle
// wire features may be divided at stitch candidates; everything else stays
// whole. (Stitches inside complex polygons exist in practice but the
// paper's stitch model — one candidate per uncovered projection interval —
// is defined on wires; see DESIGN.md §5.)
func (s *stitchSplitter) split(fi int, f geom.Polygon) []geom.Polygon {
	if len(f.Rects) != 1 {
		return []geom.Polygon{f}
	}
	r := f.Rects[0]
	horizontal := r.Width() >= r.Height()
	length := r.Width()
	if !horizontal {
		length = r.Height()
	}
	if length < 2*s.minSeg {
		return []geom.Polygon{f}
	}

	// Forbidden intervals: projections of conflicting neighbor rectangles,
	// expanded by minSeg so a stitch keeps clearance from the region where
	// the neighbor actually constrains the wire.
	type iv struct{ lo, hi int }
	var forbidden []iv
	s.grid.Near(r, s.minS, func(id int) {
		if s.owner[id] == fi {
			return
		}
		nr := s.rects[id]
		if geom.GapSq(r, nr) > int64(s.minS)*int64(s.minS) {
			return
		}
		if horizontal {
			forbidden = append(forbidden, iv{nr.X0 - s.minSeg, nr.X1 + s.minSeg})
		} else {
			forbidden = append(forbidden, iv{nr.Y0 - s.minSeg, nr.Y1 + s.minSeg})
		}
	})

	lo, hi := r.X0, r.X1
	if !horizontal {
		lo, hi = r.Y0, r.Y1
	}
	// Candidate window: stitches must leave minSeg on both sides.
	winLo, winHi := lo+s.minSeg, hi-s.minSeg
	if winLo >= winHi {
		return []geom.Polygon{f}
	}
	sort.Slice(forbidden, func(a, b int) bool { return forbidden[a].lo < forbidden[b].lo })

	// Walk the window collecting allowed gaps; one stitch per gap midpoint.
	var cuts []int
	cursor := winLo
	emit := func(gapLo, gapHi int) {
		if len(cuts) >= s.maxCount {
			return
		}
		if gapHi > gapLo {
			cuts = append(cuts, (gapLo+gapHi)/2)
		}
	}
	for _, ivl := range forbidden {
		if ivl.lo > cursor {
			gHi := min(ivl.lo, winHi)
			emit(cursor, gHi)
		}
		if ivl.hi > cursor {
			cursor = ivl.hi
		}
		if cursor >= winHi {
			break
		}
	}
	if cursor < winHi {
		emit(cursor, winHi)
	}
	if len(cuts) == 0 {
		return []geom.Polygon{f}
	}
	sort.Ints(cuts)

	var out []geom.Polygon
	prev := lo
	for _, c := range cuts {
		if c <= prev || c >= hi {
			continue
		}
		if horizontal {
			out = append(out, geom.NewPolygon(geom.Rect{X0: prev, Y0: r.Y0, X1: c, Y1: r.Y1}))
		} else {
			out = append(out, geom.NewPolygon(geom.Rect{X0: r.X0, Y0: prev, X1: r.X1, Y1: c}))
		}
		prev = c
	}
	if horizontal {
		out = append(out, geom.NewPolygon(geom.Rect{X0: prev, Y0: r.Y0, X1: hi, Y1: r.Y1}))
	} else {
		out = append(out, geom.NewPolygon(geom.Rect{X0: r.X0, Y0: prev, X1: r.X1, Y1: hi}))
	}
	return out
}
