// Package matrix provides the small dense symmetric-matrix utilities the
// SDP layer needs: storage, Gram-matrix assembly, and a cyclic Jacobi
// eigendecomposition used to verify positive semidefiniteness of relaxation
// solutions in tests (the defining property of the matrix X in Eq. (2)).
package matrix

import (
	"fmt"
	"math"
)

// Sym is a dense symmetric n×n matrix stored as the full square for simple
// indexing. Set maintains symmetry.
type Sym struct {
	N int
	a []float64
}

// NewSym returns a zero symmetric matrix of order n.
func NewSym(n int) *Sym {
	if n < 0 {
		panic("matrix: negative order")
	}
	return &Sym{N: n, a: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Sym) At(i, j int) float64 { return m.a[i*m.N+j] }

// Set assigns element (i, j) and mirrors it to (j, i).
func (m *Sym) Set(i, j int, v float64) {
	m.a[i*m.N+j] = v
	m.a[j*m.N+i] = v
}

// Gram builds the Gram matrix X = VᵀV of the r-dimensional row vectors in
// vecs: X[i][j] = vecs[i]·vecs[j]. This is exactly how the low-rank SDP
// solver materializes its solution matrix.
func Gram(vecs [][]float64) *Sym {
	n := len(vecs)
	m := NewSym(n)
	for i := 0; i < n; i++ {
		if len(vecs[i]) != len(vecs[0]) {
			panic(fmt.Sprintf("matrix: ragged vector set (row %d)", i))
		}
		for j := i; j < n; j++ {
			m.Set(i, j, Dot(vecs[i], vecs[j]))
		}
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Eigenvalues computes all eigenvalues of the symmetric matrix with the
// cyclic Jacobi method. The input is not modified. Results are sorted
// ascending. Intended for the small matrices (n up to a few hundred) that
// appear per decomposition-graph component.
func (m *Sym) Eigenvalues() []float64 {
	n := m.N
	if n == 0 {
		return nil
	}
	a := make([]float64, len(m.a))
	copy(a, m.a)
	at := func(i, j int) float64 { return a[i*n+j] }
	set := func(i, j int, v float64) { a[i*n+j] = v }

	off := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += at(i, j) * at(i, j)
			}
		}
		return s
	}
	const tol = 1e-22
	for sweep := 0; sweep < 100 && off() > tol*float64(n*n); sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := at(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := at(p, p), at(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q.
				for k := 0; k < n; k++ {
					akp, akq := at(k, p), at(k, q)
					set(k, p, c*akp-s*akq)
					set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := at(p, k), at(q, k)
					set(p, k, c*apk-s*aqk)
					set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	ev := make([]float64, n)
	for i := 0; i < n; i++ {
		ev[i] = at(i, i)
	}
	// Insertion sort: n is small.
	for i := 1; i < n; i++ {
		v := ev[i]
		j := i - 1
		for j >= 0 && ev[j] > v {
			ev[j+1] = ev[j]
			j--
		}
		ev[j+1] = v
	}
	return ev
}

// MinEigenvalue returns the smallest eigenvalue (0 for an empty matrix).
func (m *Sym) MinEigenvalue() float64 {
	ev := m.Eigenvalues()
	if len(ev) == 0 {
		return 0
	}
	return ev[0]
}

// IsPSD reports whether the matrix is positive semidefinite within tol.
func (m *Sym) IsPSD(tol float64) bool { return m.MinEigenvalue() >= -tol }
