// Package matrix provides the small dense symmetric-matrix utilities the
// SDP layer needs: storage, Gram-matrix assembly, and a cyclic Jacobi
// eigendecomposition used to verify positive semidefiniteness of relaxation
// solutions in tests (the defining property of the matrix X in Eq. (2)).
package matrix

import (
	"fmt"
	"math"
)

// Sym is a dense symmetric n×n matrix stored as the full square for simple
// indexing. Set maintains symmetry.
type Sym struct {
	N int
	a []float64
}

// NewSym returns a zero symmetric matrix of order n.
func NewSym(n int) *Sym {
	if n < 0 {
		panic("matrix: negative order")
	}
	return &Sym{N: n, a: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Sym) At(i, j int) float64 { return m.a[i*m.N+j] }

// Set assigns element (i, j) and mirrors it to (j, i).
func (m *Sym) Set(i, j int, v float64) {
	m.a[i*m.N+j] = v
	m.a[j*m.N+i] = v
}

// Gram builds the Gram matrix X = VᵀV of the r-dimensional row vectors in
// vecs: X[i][j] = vecs[i]·vecs[j]. This is exactly how the low-rank SDP
// solver materializes its solution matrix.
func Gram(vecs [][]float64) *Sym {
	n := len(vecs)
	m := NewSym(n)
	for i := 0; i < n; i++ {
		if len(vecs[i]) != len(vecs[0]) {
			panic(fmt.Sprintf("matrix: ragged vector set (row %d)", i))
		}
		for j := i; j < n; j++ {
			m.Set(i, j, Dot(vecs[i], vecs[j]))
		}
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
//
// Small lengths — the SDP factorization ranks, K up to ~8 — are unrolled.
// The unrolled sums keep the generic loop's left-to-right association
// (Go never reassociates floating-point expressions), so the result is
// bit-identical to the fallback loop and the solver's deterministic
// trajectory does not depend on which case dispatched.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: dot length mismatch")
	}
	switch len(a) {
	case 2:
		return a[0]*b[0] + a[1]*b[1]
	case 3:
		return a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
	case 4:
		return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3]
	case 5:
		return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3] + a[4]*b[4]
	case 6:
		return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3] + a[4]*b[4] + a[5]*b[5]
	case 7:
		return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3] + a[4]*b[4] + a[5]*b[5] + a[6]*b[6]
	case 8:
		return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3] + a[4]*b[4] + a[5]*b[5] + a[6]*b[6] + a[7]*b[7]
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy accumulates dst += a·x element-wise over len(dst) entries. Small
// lengths are unrolled like Dot; every element update is independent, so
// the unrolling cannot move a single bit.
func Axpy(dst []float64, a float64, x []float64) {
	switch len(dst) {
	case 2:
		dst[0] += a * x[0]
		dst[1] += a * x[1]
	case 3:
		dst[0] += a * x[0]
		dst[1] += a * x[1]
		dst[2] += a * x[2]
	case 4:
		dst[0] += a * x[0]
		dst[1] += a * x[1]
		dst[2] += a * x[2]
		dst[3] += a * x[3]
	case 5:
		dst[0] += a * x[0]
		dst[1] += a * x[1]
		dst[2] += a * x[2]
		dst[3] += a * x[3]
		dst[4] += a * x[4]
	case 6:
		dst[0] += a * x[0]
		dst[1] += a * x[1]
		dst[2] += a * x[2]
		dst[3] += a * x[3]
		dst[4] += a * x[4]
		dst[5] += a * x[5]
	default:
		for i := range dst {
			dst[i] += a * x[i]
		}
	}
}

// AxpyPair applies the two symmetric gradient contributions of one edge
// (u, v) in a single pass over the rank: gu += a·vv and gv += a·vu. The
// gradient edge walk used to traverse three rows per edge (dot already
// touched vu and vv; two separate axpy calls re-read them and wrote gu
// and gv); fusing the writes halves the axpy-side row traffic. gu and gv
// must not alias (the endpoints of an edge are distinct vertices, so
// their gradient rows are disjoint); vu/vv are read-only, so the
// element-wise interleaving is bit-identical to two sequential Axpy
// calls.
func AxpyPair(gu, gv []float64, a float64, vu, vv []float64) {
	switch len(gu) {
	case 2:
		gu[0] += a * vv[0]
		gv[0] += a * vu[0]
		gu[1] += a * vv[1]
		gv[1] += a * vu[1]
	case 3:
		gu[0] += a * vv[0]
		gv[0] += a * vu[0]
		gu[1] += a * vv[1]
		gv[1] += a * vu[1]
		gu[2] += a * vv[2]
		gv[2] += a * vu[2]
	case 4:
		gu[0] += a * vv[0]
		gv[0] += a * vu[0]
		gu[1] += a * vv[1]
		gv[1] += a * vu[1]
		gu[2] += a * vv[2]
		gv[2] += a * vu[2]
		gu[3] += a * vv[3]
		gv[3] += a * vu[3]
	case 5:
		gu[0] += a * vv[0]
		gv[0] += a * vu[0]
		gu[1] += a * vv[1]
		gv[1] += a * vu[1]
		gu[2] += a * vv[2]
		gv[2] += a * vu[2]
		gu[3] += a * vv[3]
		gv[3] += a * vu[3]
		gu[4] += a * vv[4]
		gv[4] += a * vu[4]
	case 6:
		gu[0] += a * vv[0]
		gv[0] += a * vu[0]
		gu[1] += a * vv[1]
		gv[1] += a * vu[1]
		gu[2] += a * vv[2]
		gv[2] += a * vu[2]
		gu[3] += a * vv[3]
		gv[3] += a * vu[3]
		gu[4] += a * vv[4]
		gv[4] += a * vu[4]
		gu[5] += a * vv[5]
		gv[5] += a * vu[5]
	case 7:
		gu[0] += a * vv[0]
		gv[0] += a * vu[0]
		gu[1] += a * vv[1]
		gv[1] += a * vu[1]
		gu[2] += a * vv[2]
		gv[2] += a * vu[2]
		gu[3] += a * vv[3]
		gv[3] += a * vu[3]
		gu[4] += a * vv[4]
		gv[4] += a * vu[4]
		gu[5] += a * vv[5]
		gv[5] += a * vu[5]
		gu[6] += a * vv[6]
		gv[6] += a * vu[6]
	case 8:
		gu[0] += a * vv[0]
		gv[0] += a * vu[0]
		gu[1] += a * vv[1]
		gv[1] += a * vu[1]
		gu[2] += a * vv[2]
		gv[2] += a * vu[2]
		gu[3] += a * vv[3]
		gv[3] += a * vu[3]
		gu[4] += a * vv[4]
		gv[4] += a * vu[4]
		gu[5] += a * vv[5]
		gv[5] += a * vu[5]
		gu[6] += a * vv[6]
		gv[6] += a * vu[6]
		gu[7] += a * vv[7]
		gv[7] += a * vu[7]
	default:
		for i := range gu {
			gu[i] += a * vv[i]
			gv[i] += a * vu[i]
		}
	}
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AxpyIntoNormSq writes dst = src + a·x element-wise and returns the
// squared norm of the freshly written dst, accumulated left to right — the
// line-search trial step (restore + axpy + Dot(dst,dst)) in one row pass
// instead of three. Each written element is src[i] + a·x[i], the exact
// expression `copy(dst, src); Axpy(dst, a, x)` evaluates, and the norm
// accumulation visits elements in Dot's order, so the result is
// bit-identical to the unfused sequence. dst must not alias x.
func AxpyIntoNormSq(dst, src []float64, a float64, x []float64) float64 {
	switch len(dst) {
	case 2:
		y0 := src[0] + a*x[0]
		y1 := src[1] + a*x[1]
		dst[0], dst[1] = y0, y1
		return y0*y0 + y1*y1
	case 3:
		y0 := src[0] + a*x[0]
		y1 := src[1] + a*x[1]
		y2 := src[2] + a*x[2]
		dst[0], dst[1], dst[2] = y0, y1, y2
		return y0*y0 + y1*y1 + y2*y2
	case 4:
		y0 := src[0] + a*x[0]
		y1 := src[1] + a*x[1]
		y2 := src[2] + a*x[2]
		y3 := src[3] + a*x[3]
		dst[0], dst[1], dst[2], dst[3] = y0, y1, y2, y3
		return y0*y0 + y1*y1 + y2*y2 + y3*y3
	case 5:
		y0 := src[0] + a*x[0]
		y1 := src[1] + a*x[1]
		y2 := src[2] + a*x[2]
		y3 := src[3] + a*x[3]
		y4 := src[4] + a*x[4]
		dst[0], dst[1], dst[2], dst[3], dst[4] = y0, y1, y2, y3, y4
		return y0*y0 + y1*y1 + y2*y2 + y3*y3 + y4*y4
	case 6:
		y0 := src[0] + a*x[0]
		y1 := src[1] + a*x[1]
		y2 := src[2] + a*x[2]
		y3 := src[3] + a*x[3]
		y4 := src[4] + a*x[4]
		y5 := src[5] + a*x[5]
		dst[0], dst[1], dst[2], dst[3], dst[4], dst[5] = y0, y1, y2, y3, y4, y5
		return y0*y0 + y1*y1 + y2*y2 + y3*y3 + y4*y4 + y5*y5
	case 7:
		y0 := src[0] + a*x[0]
		y1 := src[1] + a*x[1]
		y2 := src[2] + a*x[2]
		y3 := src[3] + a*x[3]
		y4 := src[4] + a*x[4]
		y5 := src[5] + a*x[5]
		y6 := src[6] + a*x[6]
		dst[0], dst[1], dst[2], dst[3], dst[4], dst[5], dst[6] = y0, y1, y2, y3, y4, y5, y6
		return y0*y0 + y1*y1 + y2*y2 + y3*y3 + y4*y4 + y5*y5 + y6*y6
	case 8:
		y0 := src[0] + a*x[0]
		y1 := src[1] + a*x[1]
		y2 := src[2] + a*x[2]
		y3 := src[3] + a*x[3]
		y4 := src[4] + a*x[4]
		y5 := src[5] + a*x[5]
		y6 := src[6] + a*x[6]
		y7 := src[7] + a*x[7]
		dst[0], dst[1], dst[2], dst[3], dst[4], dst[5], dst[6], dst[7] = y0, y1, y2, y3, y4, y5, y6, y7
		return y0*y0 + y1*y1 + y2*y2 + y3*y3 + y4*y4 + y5*y5 + y6*y6 + y7*y7
	}
	s := 0.0
	for i := range dst {
		y := src[i] + a*x[i]
		dst[i] = y
		s += y * y
	}
	return s
}

// AxpyNormSq is AxpyIntoNormSq's in-place form: dst += a·x, returning the
// squared norm of the updated dst — the Riemannian projection's axpy +
// gnorm accumulation fused into one pass. Same bit-identity argument.
func AxpyNormSq(dst []float64, a float64, x []float64) float64 {
	return AxpyIntoNormSq(dst, dst, a, x)
}

// Eigenvalues computes all eigenvalues of the symmetric matrix with the
// cyclic Jacobi method. The input is not modified. Results are sorted
// ascending. Intended for the small matrices (n up to a few hundred) that
// appear per decomposition-graph component.
func (m *Sym) Eigenvalues() []float64 {
	n := m.N
	if n == 0 {
		return nil
	}
	a := make([]float64, len(m.a))
	copy(a, m.a)
	at := func(i, j int) float64 { return a[i*n+j] }
	set := func(i, j int, v float64) { a[i*n+j] = v }

	off := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += at(i, j) * at(i, j)
			}
		}
		return s
	}
	const tol = 1e-22
	for sweep := 0; sweep < 100 && off() > tol*float64(n*n); sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := at(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := at(p, p), at(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q.
				for k := 0; k < n; k++ {
					akp, akq := at(k, p), at(k, q)
					set(k, p, c*akp-s*akq)
					set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := at(p, k), at(q, k)
					set(p, k, c*apk-s*aqk)
					set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	ev := make([]float64, n)
	for i := 0; i < n; i++ {
		ev[i] = at(i, i)
	}
	// Insertion sort: n is small.
	for i := 1; i < n; i++ {
		v := ev[i]
		j := i - 1
		for j >= 0 && ev[j] > v {
			ev[j+1] = ev[j]
			j--
		}
		ev[j+1] = v
	}
	return ev
}

// MinEigenvalue returns the smallest eigenvalue (0 for an empty matrix).
func (m *Sym) MinEigenvalue() float64 {
	ev := m.Eigenvalues()
	if len(ev) == 0 {
		return 0
	}
	return ev[0]
}

// IsPSD reports whether the matrix is positive semidefinite within tol.
func (m *Sym) IsPSD(tol float64) bool { return m.MinEigenvalue() >= -tol }
