package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestSymSetAt(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 2, 5)
	if m.At(0, 2) != 5 || m.At(2, 0) != 5 {
		t.Fatalf("symmetry broken: %v %v", m.At(0, 2), m.At(2, 0))
	}
}

func TestEigen2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewSym(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	m.Set(0, 1, 1)
	ev := m.Eigenvalues()
	if math.Abs(ev[0]-1) > 1e-9 || math.Abs(ev[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues = %v, want [1 3]", ev)
	}
}

func TestEigenDiagonal(t *testing.T) {
	m := NewSym(4)
	for i, v := range []float64{4, -1, 2, 0} {
		m.Set(i, i, v)
	}
	ev := m.Eigenvalues()
	want := []float64{-1, 0, 2, 4}
	for i := range want {
		if math.Abs(ev[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues = %v, want %v", ev, want)
		}
	}
}

func TestEigenTraceAndPSD(t *testing.T) {
	// Random Gram matrices are PSD; eigenvalue sum equals trace.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		r := 1 + rng.Intn(4)
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = make([]float64, r)
			for j := range vecs[i] {
				vecs[i][j] = rng.NormFloat64()
			}
		}
		g := Gram(vecs)
		if !g.IsPSD(1e-8) {
			t.Fatalf("Gram matrix not PSD (min ev %v)", g.MinEigenvalue())
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += g.At(i, i)
		}
		sum := 0.0
		for _, ev := range g.Eigenvalues() {
			sum += ev
		}
		if math.Abs(trace-sum) > 1e-7*(1+math.Abs(trace)) {
			t.Fatalf("trace %v != eigenvalue sum %v", trace, sum)
		}
	}
}

func TestNotPSD(t *testing.T) {
	m := NewSym(2)
	m.Set(0, 1, 1) // eigenvalues ±1
	if m.IsPSD(1e-9) {
		t.Fatal("indefinite matrix reported PSD")
	}
}

func TestGramUnitVectors(t *testing.T) {
	// The four coloring vectors of Fig. 3: pairwise inner product −1/3.
	s2, s6 := math.Sqrt(2), math.Sqrt(6)
	vecs := [][]float64{
		{0, 0, 1},
		{0, 2 * s2 / 3, -1.0 / 3},
		{s6 / 3, -s2 / 3, -1.0 / 3},
		{-s6 / 3, -s2 / 3, -1.0 / 3},
	}
	g := Gram(vecs)
	for i := 0; i < 4; i++ {
		if math.Abs(g.At(i, i)-1) > 1e-12 {
			t.Fatalf("vector %d not unit: %v", i, g.At(i, i))
		}
		for j := i + 1; j < 4; j++ {
			if math.Abs(g.At(i, j)+1.0/3) > 1e-12 {
				t.Fatalf("inner product (%d,%d) = %v, want -1/3", i, j, g.At(i, j))
			}
		}
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm wrong")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewSym(-1) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { Gram([][]float64{{1, 2}, {1}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewSym(0)
	if ev := m.Eigenvalues(); ev != nil {
		t.Fatalf("empty eigenvalues = %v", ev)
	}
	if m.MinEigenvalue() != 0 {
		t.Fatal("empty MinEigenvalue != 0")
	}
}

// genericDot is the pre-unrolling reference: the plain left-to-right loop.
func genericDot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// TestFixedRankKernelsBitIdentical pins the unrolled Dot/Axpy/AxpyPair
// dispatch cases against their generic loops bit-for-bit, across every
// length the switch handles plus the fallback — the determinism contract
// the SDP trajectory rests on. Inputs mix magnitudes and signs so any
// reassociation would actually move bits.
func TestFixedRankKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 1; n <= 12; n++ {
		for trial := 0; trial < 50; trial++ {
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				a[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
				b[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
			}
			if got, want := Dot(a, b), genericDot(a, b); got != want {
				t.Fatalf("n=%d: Dot = %b, generic loop = %b", n, got, want)
			}

			w := (rng.Float64() - 0.5) * 4
			dst := make([]float64, n)
			ref := make([]float64, n)
			for i := range dst {
				dst[i] = (rng.Float64() - 0.5) * 8
				ref[i] = dst[i]
			}
			Axpy(dst, w, a)
			for i := range ref {
				ref[i] += w * a[i]
			}
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("n=%d: Axpy[%d] = %b, want %b", n, i, dst[i], ref[i])
				}
			}

			gu := make([]float64, n)
			gv := make([]float64, n)
			ru := make([]float64, n)
			rv := make([]float64, n)
			for i := range gu {
				gu[i] = (rng.Float64() - 0.5) * 8
				gv[i] = (rng.Float64() - 0.5) * 8
				ru[i], rv[i] = gu[i], gv[i]
			}
			AxpyPair(gu, gv, w, a, b)
			Axpy(ru, w, b)
			Axpy(rv, w, a)
			for i := range gu {
				if gu[i] != ru[i] || gv[i] != rv[i] {
					t.Fatalf("n=%d: AxpyPair[%d] = (%b,%b), want (%b,%b)", n, i, gu[i], gv[i], ru[i], rv[i])
				}
			}

			// AxpyIntoNormSq vs copy + Axpy + Dot(dst,dst): the fused trial
			// step must write the same bytes and return the same norm².
			out := make([]float64, n)
			refOut := make([]float64, n)
			copy(refOut, gv)
			Axpy(refOut, w, a)
			s := AxpyIntoNormSq(out, gv, w, a)
			for i := range out {
				if out[i] != refOut[i] {
					t.Fatalf("n=%d: AxpyIntoNormSq[%d] = %b, want %b", n, i, out[i], refOut[i])
				}
			}
			if want := Dot(refOut, refOut); s != want {
				t.Fatalf("n=%d: AxpyIntoNormSq norm² = %b, want %b", n, s, want)
			}
			// In-place form (the Riemannian projection's fused pass).
			inPlace := make([]float64, n)
			refIn := make([]float64, n)
			copy(inPlace, gu)
			copy(refIn, gu)
			Axpy(refIn, w, b)
			s = AxpyNormSq(inPlace, w, b)
			for i := range inPlace {
				if inPlace[i] != refIn[i] {
					t.Fatalf("n=%d: AxpyNormSq[%d] = %b, want %b", n, i, inPlace[i], refIn[i])
				}
			}
			if want := Dot(refIn, refIn); s != want {
				t.Fatalf("n=%d: AxpyNormSq norm² = %b, want %b", n, s, want)
			}
		}
	}
}

// BenchmarkDotFixedRank measures the unrolled Dot at the SDP's working
// ranks next to a just-past-the-switch length (the generic loop). CI's
// bench-smoke job publishes the lines; a regression here taxes every edge
// of every gradient iteration.
func BenchmarkDotFixedRank(b *testing.B) {
	for _, n := range []int{3, 4, 6, 8, 16} {
		a := make([]float64, n)
		c := make([]float64, n)
		for i := range a {
			a[i] = float64(i+1) * 0.375
			c[i] = float64(n-i) * 0.25
		}
		b.Run(fmt.Sprintf("rank%d", n), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Dot(a, c)
			}
			if sink == math.Inf(1) {
				b.Fatal("unreachable: keeps sink live")
			}
		})
	}
}
