// Package ilp implements a 0/1 integer linear programming solver by
// branch-and-bound over LP relaxations (package lp). It substitutes for the
// GUROBI solver the DAC'14 paper uses for its exact ILP baseline: exact when
// it finishes, and — like the paper's Table 1, where the four largest cases
// report "N/A (>3600s)" — it honors a wall-clock budget and reports whether
// the incumbent is proven optimal.
package ilp

import (
	"context"
	"math"
	"time"

	"mpl/internal/lp"
)

// Problem is a minimization ILP: the embedded LP plus a set of variables
// restricted to {0, 1}. Non-binary variables remain continuous ≥ 0.
type Problem struct {
	LP     lp.Problem
	Binary []bool // len == LP.NumVars
}

// NewBinaryProblem returns a problem whose variables are all binary.
func NewBinaryProblem(numVars int) *Problem {
	return &Problem{
		LP:     lp.Problem{NumVars: numVars, Objective: make([]float64, numVars)},
		Binary: makeTrue(numVars),
	}
}

func makeTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

// Status describes the solve outcome.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means the time budget expired with an incumbent that is
	// feasible but not proven optimal.
	Feasible
	// Infeasible means the problem has no integer solution.
	Infeasible
	// TimedOut means the budget expired before any integer solution was found.
	TimedOut
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case TimedOut:
		return "timed-out"
	}
	return "unknown"
}

// Result is the outcome of a branch-and-bound run.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	Nodes  int // explored branch-and-bound nodes
}

// Options tunes the search.
type Options struct {
	// TimeLimit bounds wall-clock time; zero means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds explored nodes; zero means no limit.
	MaxNodes int
}

const intTol = 1e-6

// Solve is SolveContext without cancellation (budget limits still apply).
func Solve(p *Problem, opts Options) Result {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext runs best-effort exact branch-and-bound. ctx cancels the
// search cooperatively: the incumbent at cancellation time is returned
// with a Feasible (or TimedOut) status, the same contract as an expired
// TimeLimit.
func SolveContext(ctx context.Context, p *Problem, opts Options) Result {
	if len(p.Binary) != p.LP.NumVars {
		panic("ilp: Binary mask length mismatch")
	}
	s := &searcher{
		prob:    p,
		maxNode: opts.MaxNodes,
		bestObj: math.Inf(1),
		done:    ctx.Done(),
	}
	if opts.TimeLimit > 0 {
		// Budget expiry is not a determinism hazard: it is surfaced as
		// Status TimedOut/Feasible, which callers map to Proven=false —
		// never as silently different bytes under a "solved" label.
		//lint:ignore determinism wall-clock TimeLimit is surfaced via Status (Proven=false), not output bytes
		s.deadline = time.Now().Add(opts.TimeLimit)
	}

	// Box constraints x_j <= 1 for binary variables, shared by every node.
	base := p.LP
	base.Constraints = append([]lp.Constraint(nil), p.LP.Constraints...)
	for j, isBin := range p.Binary {
		if isBin {
			base.Constraints = append(base.Constraints,
				lp.Constraint{Terms: []lp.Term{{Var: j, Coef: 1}}, Op: lp.LE, RHS: 1})
		}
	}
	s.base = base
	fixed := make([]int8, p.LP.NumVars) // -1 unfixed is 0 value; use 0=unfixed,1=zero,2=one
	s.branch(fixed)

	switch {
	case s.bestX != nil && !s.stopped:
		return Result{Status: Optimal, X: s.bestX, Obj: s.bestObj, Nodes: s.nodes}
	case s.bestX != nil:
		return Result{Status: Feasible, X: s.bestX, Obj: s.bestObj, Nodes: s.nodes}
	case s.stopped:
		return Result{Status: TimedOut, Nodes: s.nodes}
	default:
		return Result{Status: Infeasible, Nodes: s.nodes}
	}
}

type searcher struct {
	prob     *Problem
	base     lp.Problem
	deadline time.Time
	done     <-chan struct{}
	maxNode  int
	nodes    int
	bestObj  float64
	bestX    []float64
	stopped  bool
}

func (s *searcher) timeUp() bool {
	if s.stopped {
		return true
	}
	if s.maxNode > 0 && s.nodes >= s.maxNode {
		s.stopped = true
		return true
	}
	if s.done != nil {
		select {
		case <-s.done:
			s.stopped = true
			return true
		default:
		}
	}
	// Check the clock sparingly.
	//lint:ignore determinism deadline expiry sets stopped, surfaced as TimedOut/Feasible (Proven=false), never as different bytes under Optimal
	if !s.deadline.IsZero() && s.nodes%16 == 0 && time.Now().After(s.deadline) {
		s.stopped = true
		return true
	}
	return false
}

// branch explores the subproblem with the given variable fixings
// (0 = unfixed, 1 = fixed to zero, 2 = fixed to one).
func (s *searcher) branch(fixed []int8) {
	if s.timeUp() {
		return
	}
	s.nodes++

	// Assemble the node LP: base plus fixing constraints.
	node := s.base
	node.Constraints = append([]lp.Constraint(nil), s.base.Constraints...)
	for j, f := range fixed {
		switch f {
		case 1:
			node.Constraints = append(node.Constraints,
				lp.Constraint{Terms: []lp.Term{{Var: j, Coef: 1}}, Op: lp.LE, RHS: 0})
		case 2:
			node.Constraints = append(node.Constraints,
				lp.Constraint{Terms: []lp.Term{{Var: j, Coef: 1}}, Op: lp.GE, RHS: 1})
		}
	}
	rel := lp.Solve(&node)
	switch rel.Status {
	case lp.Infeasible:
		return
	case lp.Unbounded:
		// With all-binary variables this cannot happen; for mixed problems
		// treat as a dead end conservatively... an unbounded relaxation
		// admits arbitrarily good integer solutions only if one exists; we
		// cannot certify, so we abandon the node.
		return
	case lp.IterLimit:
		s.stopped = true
		return
	}
	if rel.Obj >= s.bestObj-1e-9 {
		return // bound: cannot improve the incumbent
	}

	// Find the most fractional binary variable.
	branchVar := -1
	worst := intTol
	for j, isBin := range s.prob.Binary {
		if !isBin || fixed[j] != 0 {
			continue
		}
		frac := math.Abs(rel.X[j] - math.Round(rel.X[j]))
		if frac > worst {
			worst = frac
			branchVar = j
		}
	}
	if branchVar < 0 {
		// Integral (on binaries): candidate incumbent. Round binaries exactly.
		x := append([]float64(nil), rel.X...)
		for j, isBin := range s.prob.Binary {
			if isBin {
				x[j] = math.Round(x[j])
			}
		}
		if rel.Obj < s.bestObj {
			s.bestObj = rel.Obj
			s.bestX = x
		}
		return
	}

	// Dive toward the nearer bound first: better incumbents earlier.
	first, second := int8(1), int8(2)
	if rel.X[branchVar] >= 0.5 {
		first, second = 2, 1
	}
	for _, dir := range []int8{first, second} {
		child := append([]int8(nil), fixed...)
		child[branchVar] = dir
		s.branch(child)
		if s.stopped {
			return
		}
	}
}
