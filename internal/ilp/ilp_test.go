package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mpl/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  → a=1,c=1 (17) vs b=1,c=1 (20).
	// Best: b + c = 20. Minimize the negation.
	p := NewBinaryProblem(3)
	p.LP.Objective = []float64{-10, -13, -7}
	p.LP.AddConstraint(lp.LE, 6, lp.Term{Var: 0, Coef: 3}, lp.Term{Var: 1, Coef: 4}, lp.Term{Var: 2, Coef: 2})
	r := Solve(p, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Obj+20) > 1e-6 {
		t.Fatalf("obj = %v, want -20 (x=%v)", r.Obj, r.X)
	}
	if r.X[1] != 1 || r.X[2] != 1 || r.X[0] != 0 {
		t.Fatalf("x = %v", r.X)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := NewBinaryProblem(2)
	p.LP.AddConstraint(lp.GE, 3, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1})
	if r := Solve(p, Options{}); r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestEqualityILP(t *testing.T) {
	// Exactly two of four variables, minimizing weights.
	p := NewBinaryProblem(4)
	p.LP.Objective = []float64{5, 1, 3, 2}
	p.LP.AddConstraint(lp.EQ, 2,
		lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1},
		lp.Term{Var: 2, Coef: 1}, lp.Term{Var: 3, Coef: 1})
	r := Solve(p, Options{})
	if r.Status != Optimal || math.Abs(r.Obj-3) > 1e-6 {
		t.Fatalf("r = %+v, want obj 3 (vars 1 and 3)", r)
	}
}

func TestVertexCoverTriangle(t *testing.T) {
	// Min vertex cover of a triangle = 2.
	p := NewBinaryProblem(3)
	p.LP.Objective = []float64{1, 1, 1}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		p.LP.AddConstraint(lp.GE, 1, lp.Term{Var: e[0], Coef: 1}, lp.Term{Var: e[1], Coef: 1})
	}
	r := Solve(p, Options{})
	if r.Status != Optimal || math.Abs(r.Obj-2) > 1e-6 {
		t.Fatalf("r = %+v", r)
	}
}

func TestMaxNodesStops(t *testing.T) {
	// Triangle vertex cover has the fractional LP optimum (½,½,½), so the
	// root must branch; with MaxNodes=1 the search stops before finding an
	// integer incumbent.
	p := NewBinaryProblem(3)
	p.LP.Objective = []float64{1, 1, 1}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		p.LP.AddConstraint(lp.GE, 1, lp.Term{Var: e[0], Coef: 1}, lp.Term{Var: e[1], Coef: 1})
	}
	r := Solve(p, Options{MaxNodes: 1})
	if r.Status == Optimal {
		t.Fatalf("status = %v with MaxNodes 1; expected early stop", r.Status)
	}
	if r.Nodes != 1 {
		t.Fatalf("nodes = %d, want exactly 1", r.Nodes)
	}
}

func TestTimeLimit(t *testing.T) {
	// Tight deadline on a nontrivial problem must not report Optimal
	// (either Feasible or TimedOut) and must return quickly.
	rng := rand.New(rand.NewSource(9))
	n := 18
	p := NewBinaryProblem(n)
	for j := 0; j < n; j++ {
		p.LP.Objective[j] = -float64(1 + rng.Intn(9))
	}
	for c := 0; c < 10; c++ {
		var terms []lp.Term
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, lp.Term{Var: j, Coef: float64(1 + rng.Intn(4))})
			}
		}
		if terms != nil {
			p.LP.AddConstraint(lp.LE, float64(3+rng.Intn(5)), terms...)
		}
	}
	start := time.Now()
	r := Solve(p, Options{TimeLimit: time.Nanosecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
	if r.Status == Optimal && r.Nodes > 20 {
		t.Fatalf("unexpected optimal with %d nodes under 1ns deadline", r.Nodes)
	}
}

func TestMismatchedBinaryMaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mask mismatch did not panic")
		}
	}()
	p := &Problem{LP: lp.Problem{NumVars: 3, Objective: []float64{0, 0, 0}}, Binary: []bool{true}}
	Solve(p, Options{})
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Feasible.String() != "feasible" ||
		Infeasible.String() != "infeasible" || TimedOut.String() != "timed-out" ||
		Status(9).String() != "unknown" {
		t.Fatal("Status.String mismatch")
	}
}

// TestRandomKnapsacksExact: ILP matches brute-force enumeration on random
// binary problems (the core exactness property Table 1 relies on).
func TestRandomKnapsacksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		p := NewBinaryProblem(n)
		for j := 0; j < n; j++ {
			p.LP.Objective[j] = float64(rng.Intn(21) - 10)
		}
		nc := 1 + rng.Intn(4)
		for c := 0; c < nc; c++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, lp.Term{Var: j, Coef: float64(rng.Intn(7) - 3)})
				}
			}
			if terms == nil {
				continue
			}
			ops := []lp.Op{lp.LE, lp.GE}
			p.LP.AddConstraint(ops[rng.Intn(2)], float64(rng.Intn(9)-2), terms...)
		}
		r := Solve(p, Options{})

		// Brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, c := range p.LP.Constraints {
				lhs := 0.0
				for _, term := range c.Terms {
					if mask&(1<<term.Var) != 0 {
						lhs += term.Coef
					}
				}
				switch c.Op {
				case lp.LE:
					ok = ok && lhs <= c.RHS+1e-9
				case lp.GE:
					ok = ok && lhs >= c.RHS-1e-9
				case lp.EQ:
					ok = ok && math.Abs(lhs-c.RHS) < 1e-9
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += p.LP.Objective[j]
				}
			}
			if obj < best {
				best = obj
			}
		}
		if math.IsInf(best, 1) {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: brute says infeasible, solver %v obj %v", trial, r.Status, r.Obj)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, r.Status)
		}
		if math.Abs(r.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: obj %v, brute force %v", trial, r.Obj, best)
		}
	}
}

func TestMixedContinuousBinary(t *testing.T) {
	// min -x0 - 0.5y with x0 binary, y continuous >= 0, x0 + y <= 1.5:
	// optimum x0=1, y=0.5 → obj -1.25.
	p := &Problem{
		LP:     lp.Problem{NumVars: 2, Objective: []float64{-1, -0.5}},
		Binary: []bool{true, false},
	}
	p.LP.AddConstraint(lp.LE, 1.5, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1})
	r := Solve(p, Options{})
	if r.Status != Optimal || math.Abs(r.Obj+1.25) > 1e-6 {
		t.Fatalf("r = %+v", r)
	}
	if r.X[0] != 1 || math.Abs(r.X[1]-0.5) > 1e-6 {
		t.Fatalf("x = %v", r.X)
	}
}

func TestAllZeroObjective(t *testing.T) {
	// Pure feasibility: any integer point satisfying x0 + x1 >= 1.
	p := NewBinaryProblem(2)
	p.LP.AddConstraint(lp.GE, 1, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1})
	r := Solve(p, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.X[0]+r.X[1] < 1-1e-9 {
		t.Fatalf("infeasible point %v", r.X)
	}
}
