package ilp

import (
	"context"
	"math"
	"testing"
	"time"

	"mpl/internal/lp"
)

// triangleCover is a problem whose LP relaxation is fractional (½,½,½), so
// the search must branch — enough work that cancellation has something to
// interrupt.
func triangleCover() *Problem {
	p := NewBinaryProblem(3)
	p.LP.Objective = []float64{1, 1, 1}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		p.LP.AddConstraint(lp.GE, 1, lp.Term{Var: e[0], Coef: 1}, lp.Term{Var: e[1], Coef: 1})
	}
	return p
}

// TestSolveContextPreCancelled is the regression test for moving the
// context out of Options (the Ctx field ctxflow flagged) into an explicit
// SolveContext parameter: a context cancelled before the call must stop
// the search at the very first node check, before any incumbent exists.
func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := SolveContext(ctx, triangleCover(), Options{})
	if r.Status != TimedOut {
		t.Fatalf("status = %v, want timed-out for a pre-cancelled context", r.Status)
	}
	if r.Nodes != 0 {
		t.Fatalf("nodes = %d, want 0: cancellation must precede the first node", r.Nodes)
	}
}

// TestSolveContextDeadline: an already-expired deadline behaves like the
// pre-cancelled case — the ctx path, not the TimeLimit path, stops it.
func TestSolveContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r := SolveContext(ctx, triangleCover(), Options{})
	if r.Status == Optimal {
		t.Fatalf("status = %v under an expired deadline", r.Status)
	}
}

// TestSolveMatchesSolveContext: the compatibility wrapper must be exactly
// SolveContext under a background context — same status, objective, and
// assignment, byte for byte the contract the golden tests assume.
func TestSolveMatchesSolveContext(t *testing.T) {
	build := func() *Problem {
		p := NewBinaryProblem(3)
		p.LP.Objective = []float64{-10, -13, -7}
		p.LP.AddConstraint(lp.LE, 6, lp.Term{Var: 0, Coef: 3}, lp.Term{Var: 1, Coef: 4}, lp.Term{Var: 2, Coef: 2})
		return p
	}
	a := Solve(build(), Options{})
	b := SolveContext(context.Background(), build(), Options{})
	if a.Status != b.Status || math.Abs(a.Obj-b.Obj) > 1e-12 || a.Nodes != b.Nodes {
		t.Fatalf("Solve %+v != SolveContext %+v", a, b)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("x[%d]: %v != %v", i, a.X[i], b.X[i])
		}
	}
}

// TestSolveContextUncancelledIsExact: threading a live context must not
// perturb the search — the triangle cover still proves optimality.
func TestSolveContextUncancelledIsExact(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r := SolveContext(ctx, triangleCover(), Options{})
	if r.Status != Optimal || math.Abs(r.Obj-2) > 1e-6 {
		t.Fatalf("r = %+v, want proven cover of size 2", r)
	}
}
