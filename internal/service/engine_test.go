package service

// Service-layer behavior of the adaptive engine policies: the cache must
// key on Options.Engine (an auto result is not a fixed-algorithm result),
// and executed solves must aggregate their per-engine dispatch histograms
// into the service stats.

import (
	"context"
	"testing"

	"mpl/internal/core"
	"mpl/internal/pipeline"
)

func TestEngineDistinguishesCacheKeys(t *testing.T) {
	svc := New(Config{})
	ctx := context.Background()
	l := denseRow("engine-key", 12)

	fixed := core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}
	auto := core.Options{K: 4, Algorithm: core.AlgSDPBacktrack, Engine: core.EngineAuto}

	if _, cached, err := svc.Decompose(ctx, l, fixed); err != nil || cached {
		t.Fatalf("first fixed solve: cached=%v err=%v", cached, err)
	}
	if _, cached, err := svc.Decompose(ctx, l, auto); err != nil || cached {
		t.Fatalf("auto must not reuse the fixed-engine entry: cached=%v err=%v", cached, err)
	}
	if _, cached, err := svc.Decompose(ctx, l, auto); err != nil || !cached {
		t.Fatalf("identical auto request must hit the cache: cached=%v err=%v", cached, err)
	}
	// Auto never reads Algorithm, so spellings differing only in that
	// ignored field must share the entry (and the incremental session).
	autoOtherAlg := core.Options{K: 4, Algorithm: core.AlgLinear, Engine: core.EngineAuto}
	if _, cached, err := svc.Decompose(ctx, l, autoOtherAlg); err != nil || !cached {
		t.Fatalf("auto with a different (ignored) Algorithm must still hit the cache: cached=%v err=%v", cached, err)
	}
	// Auto is deterministic, so cache-served and solved results agree.
	r1, _, err := svc.Decompose(ctx, l, auto)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Decompose(l, auto)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Conflicts != r2.Conflicts || r1.Stitches != r2.Stitches {
		t.Fatalf("cached auto result %d/%d differs from direct solve %d/%d", r1.Conflicts, r1.Stitches, r2.Conflicts, r2.Stitches)
	}
}

func TestStatsAggregateEngineHistograms(t *testing.T) {
	svc := New(Config{})
	ctx := context.Background()

	// Grids keep solver-reaching cores (rows peel away and would solve
	// nothing); two sizes so the two probes miss independently.
	if _, _, err := svc.Decompose(ctx, denseGrid(4), core.Options{K: 4, Engine: core.EngineAuto}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Decompose(ctx, denseGrid(5), core.Options{K: 4, Algorithm: core.AlgLinear}); err != nil {
		t.Fatal(err)
	}
	st := svc.StatsSnapshot()
	if len(st.Engines) == 0 {
		t.Fatal("no engine histogram after two executed solves")
	}
	if st.Engines[core.AlgLinear.String()] == 0 {
		t.Fatalf("fixed Linear solve missing from histogram: %v", st.Engines)
	}
	total := uint64(0)
	for _, n := range st.Engines {
		total += n
	}

	// A cache hit solves nothing and must not move the histogram.
	if _, cached, err := svc.Decompose(ctx, denseGrid(5), core.Options{K: 4, Algorithm: core.AlgLinear}); err != nil || !cached {
		t.Fatalf("expected cache hit, cached=%v err=%v", cached, err)
	}
	st2 := svc.StatsSnapshot()
	total2 := uint64(0)
	for _, n := range st2.Engines {
		total2 += n
	}
	if total2 != total {
		t.Fatalf("cache hit moved the engine histogram: %d -> %d", total, total2)
	}

	// The snapshot owns its map: mutating it must not corrupt the service.
	st2.Engines["probe"] = 99
	if svc.StatsSnapshot().Engines["probe"] != 0 {
		t.Fatal("StatsSnapshot leaked its internal map")
	}
}

func TestStatsAggregateStageTelemetry(t *testing.T) {
	svc := New(Config{})
	ctx := context.Background()

	if _, _, err := svc.Decompose(ctx, denseGrid(4), core.Options{K: 4, Algorithm: core.AlgLinear}); err != nil {
		t.Fatal(err)
	}
	st := svc.StatsSnapshot()
	for _, name := range []string{pipeline.StageBuild, pipeline.StagePartition, pipeline.StageDispatch, pipeline.StageMerge} {
		if st.Stages[name].Calls == 0 {
			t.Errorf("aggregate missing stage %q after an executed solve: %+v", name, st.Stages)
		}
	}
	if st.Stages[pipeline.StageBuild].Calls != 1 {
		t.Errorf("exactly one graph build ran, aggregate says %+v", st.Stages[pipeline.StageBuild])
	}

	// A cache hit runs nothing — graph build included — so the stage
	// aggregate must not move.
	before := st.Stages
	if _, cached, err := svc.Decompose(ctx, denseGrid(4), core.Options{K: 4, Algorithm: core.AlgLinear}); err != nil || !cached {
		t.Fatalf("expected cache hit, cached=%v err=%v", cached, err)
	}
	after := svc.StatsSnapshot().Stages
	for name, want := range before {
		if got := after[name]; got.Calls != want.Calls {
			t.Errorf("cache hit moved stage %q: %d -> %d calls", name, want.Calls, got.Calls)
		}
	}

	// The same layout under different build-relevant options shares the
	// graph cache entry; the second solve must not re-record a build.
	if _, cached, err := svc.Decompose(ctx, denseGrid(4), core.Options{K: 4, Algorithm: core.AlgSDPGreedy}); err != nil || cached {
		t.Fatalf("different engine must miss the result cache: cached=%v err=%v", cached, err)
	}
	if got := svc.StatsSnapshot().Stages[pipeline.StageBuild].Calls; got != 1 {
		t.Errorf("graph-cache hit re-recorded a build: %d builds", got)
	}

	// Snapshot owns its map.
	snap := svc.StatsSnapshot()
	snap.Stages["probe"] = pipeline.StageStats{Calls: 99}
	if svc.StatsSnapshot().Stages["probe"].Calls != 0 {
		t.Fatal("StatsSnapshot leaked its internal stages map")
	}
}
