package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"mpl/internal/core"
	"mpl/internal/layout"
)

// LayoutHash returns a hex digest identifying the layout geometry: the
// process parameters and every feature's rectangles, in order. The layout
// name is deliberately excluded — it never influences a decomposition — so
// renamed copies of one layout share cache entries. Feature and rectangle
// order are preserved: reordering changes fragment indexing (and hence the
// Colors slice), so order-insensitive hashing would alias distinct results.
func LayoutHash(l *layout.Layout) string {
	h := sha256.New()
	var buf [16]byte
	put := func(vals ...int) {
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:8], uint64(int64(v)))
			h.Write(buf[:8])
		}
	}
	put(l.Process.MinWidth, l.Process.MinSpace, l.Process.HalfPitch)
	put(len(l.Features))
	for _, f := range l.Features {
		put(len(f.Rects))
		for _, r := range f.Rects {
			put(r.X0, r.Y0, r.X1, r.Y1)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// resultKey keys the result cache: layout geometry plus every solve-affecting
// option. Options are normalized first so default spellings ({} vs {K: 4})
// share an entry, and the Division and Build worker counts are zeroed
// because worker count never changes the (deterministic) result, only how
// fast it arrives.
func resultKey(layoutHash string, opts core.Options) string {
	opts = opts.Normalize()
	opts.Division.Workers = 0
	opts.Build.Workers = 0
	return layoutHash + "|" + fmt.Sprintf("%#v", opts)
}

// graphKey keys the decomposition-graph cache: layout geometry plus the
// graph-construction options only, so algorithm sweeps over one layout
// (cmd/evaluate's tables) build each graph once. Workers is zeroed — the
// parallel build produces an identical graph at any worker count.
func graphKey(layoutHash string, build core.BuildOptions) string {
	build.Workers = 0
	return layoutHash + "|" + fmt.Sprintf("%#v", build)
}
