package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"mpl/internal/coloring"
	"mpl/internal/core"
	"mpl/internal/layout"
)

// LayoutHash returns a hex digest identifying the layout geometry: the
// process parameters and every feature's rectangles, in order. The layout
// name is deliberately excluded — it never influences a decomposition — so
// renamed copies of one layout share cache entries. Feature and rectangle
// order are preserved: reordering changes fragment indexing (and hence the
// Colors slice), so order-insensitive hashing would alias distinct results.
func LayoutHash(l *layout.Layout) string {
	h := sha256.New()
	var buf [16]byte
	put := func(vals ...int) {
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:8], uint64(int64(v)))
			h.Write(buf[:8])
		}
	}
	put(l.Process.MinWidth, l.Process.MinSpace, l.Process.HalfPitch)
	put(len(l.Features))
	for _, f := range l.Features {
		put(len(f.Rects))
		for _, r := range f.Rects {
			put(r.X0, r.Y0, r.X1, r.Y1)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// keyEnc builds the canonical option encoding of a cache key: an explicit
// field=value list, one entry per solve-affecting field. Every field is
// written through a value-typed formatter (ints, floats, bools), never
// through reflection or %#v — a %#v of a struct that later gains a pointer,
// func, or map field silently turns keys address-dependent (wrong hits
// across restarts, permanent misses within one process). The price of being
// explicit is that new Options fields must be added here consciously;
// TestOptionsKeyCoversEveryField fails until they are either encoded or
// recorded as deliberately key-neutral.
type keyEnc struct{ b strings.Builder }

func (e *keyEnc) int(name string, v int)     { e.str(name, strconv.Itoa(v)) }
func (e *keyEnc) int64(name string, v int64) { e.str(name, strconv.FormatInt(v, 10)) }
func (e *keyEnc) bool(name string, v bool)   { e.str(name, strconv.FormatBool(v)) }
func (e *keyEnc) float(name string, v float64) {
	e.str(name, strconv.FormatFloat(v, 'g', -1, 64))
}
func (e *keyEnc) str(name, v string) {
	e.b.WriteByte('|')
	e.b.WriteString(name)
	e.b.WriteByte('=')
	e.b.WriteString(v)
}

// encodeBuild writes every key-participating BuildOptions field. Workers is
// deliberately omitted: the parallel build produces an identical graph at
// any worker count.
func (e *keyEnc) encodeBuild(b core.BuildOptions) {
	e.int("b.mins", b.MinS)
	e.int("b.k", b.K)
	e.bool("b.nostitch", b.DisableStitches)
	e.int("b.minseg", b.StitchMinSeg)
	e.int("b.maxstitch", b.MaxStitchesPerFeature)
}

// encodeOptions writes every key-participating core.Options field. The
// caller normalizes first, so defaulted spellings encode identically; the
// Division and Build worker counts are key-neutral (deterministic results
// at any worker count) and are omitted.
func (e *keyEnc) encodeOptions(o core.Options) {
	e.int("k", o.K)
	e.int("alg", int(o.Algorithm))
	e.str("engine", o.Engine)
	e.int("pf.ilpn", o.Portfolio.ILPMaxN)
	e.int("pf.ilpm", o.Portfolio.ILPMaxM)
	e.int("pf.btn", o.Portfolio.BacktrackMaxN)
	e.int("pf.grn", o.Portfolio.GreedyMaxN)
	e.int64("race", int64(o.RaceBudget))
	e.float("alpha", o.Alpha)
	e.float("tth", o.Threshold)
	e.int64("seed", o.Seed)
	e.int64("ilpbudget", int64(o.ILPTimeLimit))
	e.int64("btnodes", o.BacktrackNodeLimit)
	e.int("sdprestarts", o.SDPRestarts)
	e.int("sdpmaxiter", o.SDPMaxIter)
	e.bool("memo", o.Memoize)
	e.encodeBuild(o.Build)
	e.int("d.k", o.Division.K)
	e.float("d.alpha", o.Division.Alpha)
	e.bool("d.nopeel", o.Division.DisablePeeling)
	e.bool("d.nobicon", o.Division.DisableBiconnected)
	e.bool("d.noght", o.Division.DisableGHTree)
	e.int("d.ghmaxn", o.Division.GHTreeMaxN)
	e.int("d.maxstitchdeg", o.Division.MaxStitchDegree)
	e.encodeLinear("d.lin.", o.Division.Linear)
	e.encodeLinear("lin.", o.Linear)
}

func (e *keyEnc) encodeLinear(prefix string, lo coloring.LinearOptions) {
	e.int(prefix+"k", lo.K)
	e.float(prefix+"alpha", lo.Alpha)
	e.bool(prefix+"nofriend", lo.DisableColorFriendly)
	e.float(prefix+"fw", lo.FriendWeight)
	e.int(prefix+"maxstitchdeg", lo.MaxStitchDegree)
	e.int(prefix+"order", int(lo.Order))
}

// optionsSig is the canonical encoding of every solve-affecting option —
// the options half of a resultKey, and the signature the durable session
// store (internal/store) keys sessions under. Two requests with the same
// signature are solve-equivalent: core.ApplyEdits accepts a persisted
// result recorded under one as the base for the other, because the only
// fields the signature omits are the result-neutral worker counts, which
// ApplyEdits also ignores.
func optionsSig(opts core.Options) string {
	opts = opts.Normalize()
	var e keyEnc
	e.encodeOptions(opts)
	return e.b.String()
}

// OptionsSig exposes the durable session signature to other writers of the
// session store (cmd/evaluate's durable replay): records they file under
// OptionsSig(opts) are the ones a Service configured with the same store
// will find.
func OptionsSig(opts core.Options) string { return optionsSig(opts) }

// resultKey keys the result cache: layout geometry plus every solve-affecting
// option. Options are normalized first so default spellings ({} vs {K: 4})
// share an entry, and the Division and Build worker counts never participate
// because worker count never changes the (deterministic) result, only how
// fast it arrives.
func resultKey(layoutHash string, opts core.Options) string {
	return layoutHash + optionsSig(opts)
}

// graphKey keys the decomposition-graph cache: layout geometry plus the
// graph-construction options only, so algorithm sweeps over one layout
// (cmd/evaluate's tables) build each graph once.
func graphKey(layoutHash string, build core.BuildOptions) string {
	var e keyEnc
	e.encodeBuild(build)
	return layoutHash + "|g" + e.b.String()
}
