package service

// Regression tests for the service-layer bugfix sweep: the bounded
// fallback-lane wait and the hit/miss re-tally rules of the two
// single-flight loops and the graph cache.

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpl/internal/core"
)

// TestFallbackLaneSaturationBounded: with both the full-quality semaphore
// and the fallback lane full and the context already dead, the request must
// fail with the context's error after the bounded wait — not park forever
// on the lane.
func TestFallbackLaneSaturationBounded(t *testing.T) {
	old := fallbackLaneWait
	fallbackLaneWait = 50 * time.Millisecond
	t.Cleanup(func() { fallbackLaneWait = old })

	s := New(Config{Workers: 1})
	s.sem <- struct{}{}   // a full-quality solve is running
	s.fbSem <- struct{}{} // and the fallback lane is busy too
	defer func() { <-s.sem; <-s.fbSem }()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := s.Decompose(dead, denseRow("sat", 4), core.Options{K: 4, Algorithm: core.AlgLinear})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the context error", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("saturated lane blocked for %v despite the bounded wait", waited)
	}

	// Once the lane frees up, the same dead-context request is served
	// (degraded), as before.
	<-s.fbSem
	defer func() { s.fbSem <- struct{}{} }()
	if _, _, err := s.Decompose(dead, denseRow("sat", 4), core.Options{K: 4, Algorithm: core.AlgLinear}); err != nil {
		t.Fatalf("free lane: %v", err)
	}
}

// TestWaiterDegradedRetalliedAsMiss: a waiter whose deadline expires while
// parked on someone else's in-flight solve runs its own uncached solve —
// which must count as a miss, not retain the optimistic hit tally.
func TestWaiterDegradedRetalliedAsMiss(t *testing.T) {
	s := New(Config{})
	l := denseRow("skew", 5)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	// A never-completing in-flight entry stands in for a slow owner.
	e := &entry{ready: make(chan struct{})}
	s.mu.Lock()
	s.results.put(resultKey(LayoutHash(l), opts), e, nil)
	s.mu.Unlock()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, cached, err := s.DecomposeHashed(dead, l, opts); err != nil || cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	st := s.StatsSnapshot()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 0/1 — the degraded waiter solved uncached", st.Hits, st.Misses)
	}
}

// TestIncrementalWaiterDegradedRetalliedAsMiss: the twin loop in
// DecomposeIncremental follows the same re-tally rule.
func TestIncrementalWaiterDegradedRetalliedAsMiss(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	l := denseRow("skew2", 6)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	if _, _, err := s.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	edits := []core.Edit{{Op: core.EditRemove, Feature: 0}}
	newL, err := core.EditLayout(l, edits)
	if err != nil {
		t.Fatal(err)
	}
	e := &entry{ready: make(chan struct{})}
	s.mu.Lock()
	s.results.put(resultKey(LayoutHash(newL), opts), e, nil)
	s.mu.Unlock()
	before := s.StatsSnapshot()

	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, _, cached, err := s.DecomposeIncremental(dead, LayoutHash(l), edits, opts); err != nil || cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	st := s.StatsSnapshot()
	if st.Hits != before.Hits || st.Misses != before.Misses+1 {
		t.Fatalf("hits %d->%d misses %d->%d, want unchanged/+1", before.Hits, st.Hits, before.Misses, st.Misses)
	}
}

// TestGraphHitRetalliedOnFailedBuild: a caller that waits on an in-flight
// graph build which then fails ends up building the graph itself — the
// optimistic GraphHits tally must be taken back.
func TestGraphHitRetalliedOnFailedBuild(t *testing.T) {
	s := New(Config{})
	l := denseRow("gskew", 5)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	ge := &graphEntry{ready: make(chan struct{})}
	gk := graphKey(LayoutHash(l), opts.Normalize().Build)
	s.mu.Lock()
	s.graphs.put(gk, ge, nil)
	s.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, _, err := s.Decompose(context.Background(), l, opts)
		done <- err
	}()
	// Wait until the caller is parked on the seeded entry (it tallied its
	// optimistic graph hit), then fail the build the way the owner path
	// does: remove the entry, set the error, release the waiters.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.StatsSnapshot().GraphHits == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("caller never reached the graph wait")
		}
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	s.graphs.removeIf(gk, ge)
	s.mu.Unlock()
	ge.err = errors.New("synthetic build failure")
	close(ge.ready)

	if err := <-done; err != nil {
		t.Fatalf("retry after failed in-flight build: %v", err)
	}
	if st := s.StatsSnapshot(); st.GraphHits != 0 {
		t.Fatalf("GraphHits = %d after a failed in-flight build, want 0", st.GraphHits)
	}
}
