package service

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"mpl/internal/coloring"
	"mpl/internal/core"
	"mpl/internal/division"
	"mpl/internal/portfolio"
)

// keyFields records, per option struct, every field the canonical cache-key
// encoder has consciously dealt with — either encoded (true) or deliberately
// key-neutral (false, with the reason in hash.go). When an option struct
// gains a field, TestOptionsKeyCoversEveryField fails until the field is
// added here AND to the encoder (or documented as neutral): the failure mode
// this guards against is a new field silently not participating in keys —
// wrong cache hits — or, under the old %#v scheme, a pointer/func field
// making keys address-dependent.
var keyFields = map[reflect.Type]map[string]bool{
	reflect.TypeOf(core.Options{}): {
		"K": true, "Algorithm": true, "Engine": true, "Portfolio": true,
		"RaceBudget": true, "Alpha": true, "Threshold": true, "Seed": true,
		"ILPTimeLimit": true, "BacktrackNodeLimit": true,
		"SDPRestarts": true, "SDPMaxIter": true, "Memoize": true,
		"Build": true, "Division": true, "Linear": true,
	},
	reflect.TypeOf(core.BuildOptions{}): {
		"MinS": true, "K": true, "DisableStitches": true,
		"StitchMinSeg": true, "MaxStitchesPerFeature": true,
		// Workers never changes the built graph, only wall clock.
		"Workers": false,
	},
	reflect.TypeOf(portfolio.Thresholds{}): {
		"ILPMaxN": true, "ILPMaxM": true, "BacktrackMaxN": true, "GreedyMaxN": true,
	},
	reflect.TypeOf(division.Options{}): {
		"K": true, "Alpha": true, "DisablePeeling": true,
		"DisableBiconnected": true, "DisableGHTree": true,
		"GHTreeMaxN": true, "MaxStitchDegree": true, "Linear": true,
		// Workers never changes the (deterministic) coloring.
		"Workers": false,
	},
	reflect.TypeOf(coloring.LinearOptions{}): {
		"K": true, "Alpha": true, "DisableColorFriendly": true,
		"FriendWeight": true, "MaxStitchDegree": true, "Order": true,
	},
}

// TestOptionsKeyCoversEveryField walks every struct participating in cache
// keys and fails when a field exists that keyFields does not list — the
// guard that keeps resultKey/graphKey in sync with the option surface.
func TestOptionsKeyCoversEveryField(t *testing.T) {
	for typ, known := range keyFields {
		var missing, stale []string
		seen := map[string]bool{}
		for i := 0; i < typ.NumField(); i++ {
			name := typ.Field(i).Name
			seen[name] = true
			if _, ok := known[name]; !ok {
				missing = append(missing, name)
			}
		}
		for name := range known {
			if !seen[name] {
				stale = append(stale, name)
			}
		}
		sort.Strings(missing)
		sort.Strings(stale)
		if len(missing) > 0 {
			t.Errorf("%v gained field(s) %s not consciously added to the cache key: encode them in hash.go (or record them as key-neutral) and extend keyFields",
				typ, strings.Join(missing, ", "))
		}
		if len(stale) > 0 {
			t.Errorf("%v: keyFields lists removed field(s) %s", typ, strings.Join(stale, ", "))
		}
	}
}

// TestResultKeyDistinguishesOptions: every encoded field must actually
// reach the key — flip each solve-affecting option and require a distinct
// key from the baseline.
func TestResultKeyDistinguishesOptions(t *testing.T) {
	base := core.Options{K: 4}
	variants := map[string]core.Options{
		"k":         {K: 3},
		"algorithm": {K: 4, Algorithm: core.AlgLinear},
		"engine":    {K: 4, Engine: core.EngineAuto},
		"portfolio": {K: 4, Engine: core.EngineAuto, Portfolio: portfolio.Thresholds{ILPMaxN: 9}},
		"racebudget": {K: 4, Engine: core.EngineRace,
			RaceBudget: 123 * time.Millisecond},
		"alpha":     {K: 4, Alpha: 0.25},
		"threshold": {K: 4, Threshold: 0.5},
		"seed":      {K: 4, Seed: 9},
		"memoize":   {K: 4, Memoize: true},
		"build":     {K: 4, Build: core.BuildOptions{DisableStitches: true}},
		"division":  {K: 4, Division: division.Options{DisableGHTree: true}},
		"linear":    {K: 4, Linear: coloring.LinearOptions{DisableColorFriendly: true}},
	}
	bk := resultKey("lh", base)
	for name, o := range variants {
		if vk := resultKey("lh", o); vk == bk {
			t.Errorf("option %s does not reach the result key", name)
		}
	}
	// Worker counts are key-neutral by design.
	w := base
	w.Division.Workers = 8
	w.Build.Workers = 8
	if resultKey("lh", w) != bk {
		t.Error("worker counts must not affect the result key")
	}
	// Default spellings share an entry through normalization.
	if resultKey("lh", core.Options{}) != bk {
		t.Error("{} and {K: 4} must normalize to one key")
	}
}

// TestGraphKeyDistinguishesBuildOptions mirrors the result-key check for
// the graph cache.
func TestGraphKeyDistinguishesBuildOptions(t *testing.T) {
	base := core.BuildOptions{K: 4}
	bk := graphKey("lh", base)
	variants := map[string]core.BuildOptions{
		"mins":      {K: 4, MinS: 70},
		"k":         {K: 5},
		"nostitch":  {K: 4, DisableStitches: true},
		"minseg":    {K: 4, StitchMinSeg: 33},
		"maxstitch": {K: 4, MaxStitchesPerFeature: 7},
	}
	for name, o := range variants {
		if vk := graphKey("lh", o); vk == bk {
			t.Errorf("build option %s does not reach the graph key", name)
		}
	}
	w := base
	w.Workers = 8
	if graphKey("lh", w) != bk {
		t.Error("build workers must not affect the graph key")
	}
	if graphKey("lh", base) == resultKey("lh", core.Options{K: 4}) {
		t.Error("graph and result keys must not collide")
	}
}
