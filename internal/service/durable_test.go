package service

// Tests of the durable session layer (Config.Store): restart recovery via
// snapshot + log replay, spill-on-eviction, full-solve rehydration, the
// snapshot re-rooting policy, and the never-serve-corrupt-state guarantee.
// Replay correctness leans on the incremental-≡-scratch equivalence the
// core package proves: every rehydrated result here is compared against a
// from-scratch solve of the same geometry.

import (
	"context"
	"errors"
	"slices"
	"testing"

	"mpl/internal/core"
	"mpl/internal/store"
)

func openTestStore(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	opts.NoSync = true
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// sameSolution asserts byte-identical colorings and objective values — the
// replay-vs-scratch equivalence bar.
func sameSolution(t *testing.T, what string, got, want *core.Result) {
	t.Helper()
	if !slices.Equal(got.Colors, want.Colors) {
		t.Fatalf("%s: colors differ from the from-scratch reference", what)
	}
	if got.Conflicts != want.Conflicts || got.Stitches != want.Stitches {
		t.Fatalf("%s: objectives %d/%d, reference %d/%d", what, got.Conflicts, got.Stitches, want.Conflicts, want.Stitches)
	}
}

// TestDurableRestartIncremental is the restart story end to end: solve,
// advance the session twice, drop every in-memory structure (a restart),
// and chain a further batch from the pre-crash hash without re-sending the
// layout. The rehydrated chain must solve to exactly what a never-crashed
// from-scratch pipeline produces.
func TestDurableRestartIncremental(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	l := denseRow("row", 8)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	batches := [][]core.Edit{
		{{Op: core.EditMove, Feature: 1, DX: 20, DY: 0}},
		{{Op: core.EditRemove, Feature: 0}},
		{{Op: core.EditMove, Feature: 3, DX: 0, DY: 40}},
	}

	st := openTestStore(t, dir, store.Options{})
	svcA := New(Config{Store: st})
	if _, _, err := svcA.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	hash := LayoutHash(l)
	for _, b := range batches[:2] {
		_, nh, _, _, err := svcA.DecomposeIncremental(ctx, hash, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		hash = nh
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh Service over a fresh Store on the same directory.
	st2 := openTestStore(t, dir, store.Options{})
	svcB := New(Config{Store: st2})
	resB, nh, estats, cached, err := svcB.DecomposeIncremental(ctx, hash, batches[2], opts)
	if err != nil {
		t.Fatalf("incremental from pre-restart hash: %v", err)
	}
	if cached || estats == nil {
		t.Fatalf("post-restart batch must be a fresh incremental solve (cached=%v)", cached)
	}
	stats := svcB.StatsSnapshot()
	if stats.Rehydrations == 0 {
		t.Fatalf("no rehydration recorded: %+v", stats)
	}
	if stats.Store == nil || stats.Store.LiveSessions == 0 {
		t.Fatalf("store stats not surfaced: %+v", stats.Store)
	}

	// From-scratch reference on a volatile service.
	cur := l
	for _, b := range batches {
		next, err := core.EditLayout(cur, b)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if LayoutHash(cur) != nh {
		t.Fatalf("post-restart chain landed on %.12s, reference geometry is %.12s", nh, LayoutHash(cur))
	}
	ref, _, err := New(Config{}).Decompose(ctx, cur, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "rehydrated chain", resB, ref)
}

// TestDurableSpillOnEviction: sessions pushed out of the LRU land on disk
// and rehydrate on demand within the same process.
func TestDurableSpillOnEviction(t *testing.T) {
	ctx := context.Background()
	st := openTestStore(t, t.TempDir(), store.Options{})
	svc := New(Config{CacheSize: 2, Store: st})
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}

	rows := []int{4, 5, 6, 7}
	for _, n := range rows {
		if _, _, err := svc.Decompose(ctx, denseRow("row", n), opts); err != nil {
			t.Fatal(err)
		}
	}
	stats := svc.StatsSnapshot()
	if stats.Spills == 0 {
		t.Fatalf("no session spilled despite evictions: %+v", stats)
	}
	first := denseRow("row", rows[0])
	if !st.Has(optionsSig(opts), LayoutHash(first)) {
		t.Fatal("evicted session is not on disk")
	}

	// Incremental from the evicted base: rehydrated, not ErrNoSession.
	edits := []core.Edit{{Op: core.EditRemove, Feature: 0}}
	res, _, _, _, err := svc.DecomposeIncremental(ctx, LayoutHash(first), edits, opts)
	if err != nil {
		t.Fatalf("incremental from spilled session: %v", err)
	}
	after := svc.StatsSnapshot()
	if after.Rehydrations == 0 {
		t.Fatalf("no rehydration recorded: %+v", after)
	}
	newL, err := core.EditLayout(first, edits)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := New(Config{}).Decompose(ctx, newL, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "spill-rehydrated session", res, ref)
}

// TestDurableFullSolveFromDisk: after a restart, a full Decompose of a
// snapshotted layout is answered from the log (graph rebuild plus
// verification, no solve) — and still registers a session.
func TestDurableFullSolveFromDisk(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	l1, l2 := denseRow("a", 6), denseRow("b", 7)

	st := openTestStore(t, dir, store.Options{})
	svcA := New(Config{CacheSize: 1, Store: st})
	if _, _, err := svcA.Decompose(ctx, l1, opts); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svcA.Decompose(ctx, l2, opts); err != nil {
		t.Fatal(err) // evicts and spills l1's session
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, store.Options{})
	svcB := New(Config{Store: st2})
	res, cached, err := svcB.Decompose(ctx, l1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("fresh process: nothing should be in the memory cache")
	}
	stats := svcB.StatsSnapshot()
	if stats.Rehydrations != 1 {
		t.Fatalf("full solve did not come from the store: %+v", stats)
	}
	ref, _, err := New(Config{}).Decompose(ctx, l1, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "disk-served full solve", res, ref)
	// The rehydrated state is a session: edits chain straight off it.
	if _, _, _, _, err := svcB.DecomposeIncremental(ctx, LayoutHash(l1), []core.Edit{{Op: core.EditRemove, Feature: 0}}, opts); err != nil {
		t.Fatalf("incremental after disk-served solve: %v", err)
	}
}

// TestDurableSnapshotReroot: when a chain reaches the snapshot-every-N
// depth, the service re-roots it with a successor snapshot, bounding the
// replay a future rehydration pays.
func TestDurableSnapshotReroot(t *testing.T) {
	ctx := context.Background()
	st := openTestStore(t, t.TempDir(), store.Options{SnapshotEvery: 2})
	svc := New(Config{Store: st})
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	l := denseRow("row", 8)
	if _, _, err := svc.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	hash := LayoutHash(l)
	for i := 0; i < 2; i++ {
		_, nh, _, _, err := svc.DecomposeIncremental(ctx, hash, []core.Edit{{Op: core.EditRemove, Feature: 0}}, opts)
		if err != nil {
			t.Fatal(err)
		}
		hash = nh
	}
	// Depth 2 hit the policy: the deepest session must be directly
	// replayable (snapshot, no edit tail).
	ch, err := st.Lookup(optionsSig(opts), hash)
	if err != nil || ch == nil {
		t.Fatalf("deepest session not in the log: %v, %v", ch, err)
	}
	if len(ch.Batches) != 0 {
		t.Fatalf("chain was not re-rooted: replay depth %d", len(ch.Batches))
	}
	if ss := st.StatsSnapshot(); ss.Snapshots < 2 {
		t.Fatalf("expected root + re-root snapshots, got %+v", ss)
	}
}

// TestDurableCorruptSnapshotNotServed: a well-framed snapshot whose
// coloring does not verify against its own geometry is treated as absent —
// ErrNoSession, a StoreErrors tick, and never a corrupt session.
func TestDurableCorruptSnapshotNotServed(t *testing.T) {
	ctx := context.Background()
	st := openTestStore(t, t.TempDir(), store.Options{})
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	l := denseRow("row", 5)
	// All-same-color is wrong for a dense row (adjacent features conflict),
	// so the claimed zero objective cannot verify.
	bogus := &store.Snapshot{Layout: l, Colors: make([]int, len(l.Features)), Conflicts: 0, Stitches: 0, Proven: true}
	if err := st.AppendSnapshot(optionsSig(opts), LayoutHash(l), bogus); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Store: st})
	_, _, _, _, err := svc.DecomposeIncremental(ctx, LayoutHash(l), []core.Edit{{Op: core.EditRemove, Feature: 0}}, opts)
	if !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
	if stats := svc.StatsSnapshot(); stats.StoreErrors == 0 || stats.Rehydrations != 0 {
		t.Fatalf("corrupt snapshot not accounted as a store error: %+v", stats)
	}
}

// TestDurableDisabledIsVolatile: without Config.Store every durable path is
// inert — the zero-value behavior is byte-identical to before the store
// existed.
func TestDurableDisabledIsVolatile(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	l := denseRow("row", 6)
	if _, _, err := svc.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	stats := svc.StatsSnapshot()
	if stats.Store != nil || stats.Rehydrations != 0 || stats.Spills != 0 || stats.StoreErrors != 0 {
		t.Fatalf("volatile service reports durable activity: %+v", stats)
	}
}
