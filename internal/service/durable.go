package service

// The durable half of the session store (DESIGN.md §13): how Service uses
// internal/store. Three flows, all no-ops without Config.Store:
//
//   - persistEdits: a successful DecomposeIncremental logs its edit batch
//     (rooting the chain with a base snapshot if the log has never seen
//     the base) before the successor session is registered in memory;
//   - spillEvicted: a session the LRU pushes out is snapshotted to disk
//     instead of dropped, unless the log can already replay it;
//   - rehydrate / fullFromStore: a miss in the in-memory stores loads the
//     nearest snapshot and replays the log tail through core.ApplyEdits —
//     the exact operation the incremental-≡-scratch equivalence harness
//     proves identical to a fresh solve.
//
// Store failures never fail the request: the solve result is valid with or
// without durability, so errors are counted (Stats.StoreErrors) and the
// request proceeds. Corrupt persisted state is never served — every
// rehydrated session is verified (coloring against its own graph, replay
// step against the logged post-edit hash) and a session that fails
// verification is treated as absent.

import (
	"context"
	"fmt"

	"mpl/internal/core"
	"mpl/internal/store"
)

// storeError counts one failed durable-store operation.
func (s *Service) storeError() {
	s.mu.Lock()
	s.stats.StoreErrors++
	s.mu.Unlock()
}

// snapOf builds the durable snapshot of a session. The field copies are
// shallow: the session is immutable and AppendSnapshot encodes
// synchronously, retaining nothing.
func snapOf(sess *session) *store.Snapshot {
	return &store.Snapshot{
		Layout:    sess.layout,
		Colors:    sess.res.Colors,
		Conflicts: sess.res.Conflicts,
		Stitches:  sess.res.Stitches,
		Proven:    sess.res.Proven,
	}
}

// persistEdits logs the edit batch deriving succ from base, rooting the
// chain with a snapshot of base if the log cannot replay it (full solves
// are persisted lazily — on eviction or on first derivation — so the first
// batch off a fresh solve lands here with an unrooted base). When the
// chain's replay depth hits the snapshot policy, or the edit record cannot
// be logged at all, a snapshot of the successor re-roots it.
func (s *Service) persistEdits(base, succ *session, edits []core.Edit) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	if !st.Has(succ.sig, base.hash) {
		if err := st.AppendSnapshot(succ.sig, base.hash, snapOf(base)); err != nil {
			s.storeError()
		}
	}
	needSnapshot, err := st.AppendEdits(succ.sig, base.hash, succ.hash, edits)
	if err != nil {
		// The base could not be rooted (or vanished under retention
		// between the probe and the append): fall back to snapshotting the
		// successor outright — dearer on disk, but the session survives.
		s.storeError()
		needSnapshot = true
	}
	if needSnapshot {
		if err := st.AppendSnapshot(succ.sig, succ.hash, snapOf(succ)); err != nil {
			s.storeError()
		}
	}
}

// spillEvicted persists sessions the LRU pushed out, so eviction demotes a
// session from memory to disk instead of destroying it. Sessions the log
// already replays (rooted by persistEdits, or spilled before and
// rehydrated since) are skipped. Called without s.mu — spilling writes to
// disk.
func (s *Service) spillEvicted(evicted []lruItem) {
	st := s.cfg.Store
	if st == nil || len(evicted) == 0 {
		return
	}
	for _, it := range evicted {
		sess, ok := it.val.(*session)
		if !ok {
			continue
		}
		if st.Has(sess.sig, sess.hash) {
			continue
		}
		if err := st.AppendSnapshot(sess.sig, sess.hash, snapOf(sess)); err != nil {
			s.storeError()
			continue
		}
		s.mu.Lock()
		s.stats.Spills++
		s.mu.Unlock()
	}
}

// sessionFromSnapshot reconstructs a servable session from a persisted
// snapshot: the decomposition graph is rebuilt deterministically (through
// the graph cache, so repeated rehydrations under one process build once)
// and the persisted coloring is verified against it — the objective values
// must reproduce exactly, or the snapshot is rejected as corrupt.
func (s *Service) sessionFromSnapshot(snap *store.Snapshot, sig string, opts core.Options) (*session, error) {
	lh := LayoutHash(snap.Layout)
	dg, err := s.graphFor(lh, snap.Layout, opts)
	if err != nil {
		return nil, err
	}
	nopts := opts.Normalize()
	for _, c := range snap.Colors {
		if c < 0 || c >= nopts.K {
			return nil, fmt.Errorf("service: persisted color %d outside [0, %d)", c, nopts.K)
		}
	}
	res := &core.Result{
		Graph:     dg,
		Colors:    append([]int(nil), snap.Colors...),
		Conflicts: snap.Conflicts,
		Stitches:  snap.Stitches,
		Proven:    snap.Proven,
		K:         nopts.K,
		Alpha:     nopts.Alpha,
		// Recording the requesting options is sound: the store keys
		// sessions by optionsSig, which covers every field ApplyEdits
		// compares (it ignores only the worker counts, as the signature
		// does).
		Options: nopts,
	}
	conflicts, stitches, err := core.VerifySolution(res)
	if err != nil {
		return nil, err
	}
	if conflicts != snap.Conflicts || stitches != snap.Stitches {
		return nil, fmt.Errorf("service: persisted session does not verify: logged cn=%d st=%d, coloring has cn=%d st=%d",
			snap.Conflicts, snap.Stitches, conflicts, stitches)
	}
	return &session{hash: lh, sig: sig, layout: snap.Layout, res: res}, nil
}

// rehydrate reconstructs the session for hash from the durable log:
// nearest snapshot, then the edit tail replayed through core.ApplyEdits
// under the service's regular concurrency lanes. It returns (nil, nil)
// when the log has nothing replayable — including anything that fails
// verification — and an error only when the caller's context died
// mid-replay (a degraded replay must never be registered as a session).
func (s *Service) rehydrate(ctx context.Context, hash, sig string, opts core.Options) (*session, error) {
	st := s.cfg.Store
	if st == nil {
		return nil, nil
	}
	chain, err := st.Lookup(sig, hash)
	if err != nil {
		s.storeError()
		return nil, nil
	}
	if chain == nil {
		return nil, nil
	}
	sess, err := s.sessionFromSnapshot(chain.Snap, sig, opts)
	if err != nil {
		s.storeError()
		return nil, nil
	}
	if len(chain.Batches) == 0 && sess.hash != hash {
		// The snapshot's geometry does not hash to the key it was filed
		// under; replay-step checks catch this for chained sessions.
		s.storeError()
		return nil, nil
	}
	for i, batch := range chain.Batches {
		resL, res, _, err := s.applyEdits(ctx, sess, batch, opts)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			s.storeError()
			return nil, nil
		}
		if res.Degraded > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("service: session replay degraded without cancellation")
		}
		h := LayoutHash(resL)
		if h != chain.Hashes[i] {
			// The replayed geometry diverged from what the log recorded:
			// corrupt chain, do not serve it.
			s.storeError()
			return nil, nil
		}
		sess = &session{hash: h, sig: sig, layout: resL, res: res}
	}
	var evicted []lruItem
	s.mu.Lock()
	evicted = s.sessions.put(hash+sig, sess, nil)
	s.stats.Sessions = s.sessions.len()
	s.stats.Rehydrations++
	s.mu.Unlock()
	s.spillEvicted(evicted)
	return sess, nil
}

// fullFromStore serves a full (non-incremental) solve from the durable log
// when the requested hash is persisted as a snapshot with no replay tail:
// the graph is rebuilt and the coloring verified, skipping only the solve
// itself. Deeper chains are left to rehydrate — replaying edit batches to
// answer a request that already carries the full layout can cost more than
// the solve it saves.
func (s *Service) fullFromStore(lh, sig string, opts core.Options) *core.Result {
	st := s.cfg.Store
	if st == nil {
		return nil
	}
	chain, err := st.Lookup(sig, lh)
	if err != nil {
		s.storeError()
		return nil
	}
	if chain == nil || len(chain.Batches) != 0 {
		return nil
	}
	sess, err := s.sessionFromSnapshot(chain.Snap, sig, opts)
	if err != nil || sess.hash != lh {
		s.storeError()
		return nil
	}
	s.mu.Lock()
	s.stats.Rehydrations++
	s.mu.Unlock()
	return sess.res
}
