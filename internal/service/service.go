// Package service is the serving layer over the decomposition pipeline: a
// layout-hash keyed LRU result cache with single-flight deduplication, a
// decomposition-graph cache shared by algorithm sweeps, a bounded-concurrency
// batch runner, and a session store for incremental (ECO) serving. It exists
// so callers with many or repeated layouts (the HTTP API of `qpld serve`,
// the table sweeps of cmd/evaluate) get concurrency and caching without
// re-implementing either, while cancellation flows straight through to
// core.DecomposeGraphContext.
//
// Sessions make edits first-class: every successful full-quality Decompose
// registers an immutable session (layout + result) under its layout hash,
// and DecomposeIncremental advances a session by an edit batch through
// core.ApplyEdits — re-solving only the dirty region — registering the
// post-edit state as a new session. Because a session is keyed by the
// geometry it decomposed (not by a mutable "current state"), concurrent
// conflicting edit batches never race: each derives its own successor state
// from the same immutable base.
package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mpl/internal/core"
	"mpl/internal/division"
	"mpl/internal/geom"
	"mpl/internal/layout"
	"mpl/internal/pipeline"
)

// ErrNoSession is returned by DecomposeIncremental when the base layout
// hash has no live session — the client must (re)send the full layout via
// Decompose first. Wrapped; test with errors.Is.
var ErrNoSession = errors.New("service: no session for base layout hash")

// Config sizes a Service. The zero value is usable.
type Config struct {
	// CacheSize caps the number of cached results (and, independently, of
	// cached decomposition graphs); 0 means 128, negative disables caching.
	CacheSize int
	// Workers caps concurrently running decompositions across all callers;
	// 0 means GOMAXPROCS.
	Workers int
	// DefaultTimeout, when positive, bounds each decomposition that arrives
	// with a context carrying no earlier deadline.
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits        uint64 // result served from cache (including waits on an in-flight solve)
	Misses      uint64 // result required a solve
	Evictions   uint64 // cache entries dropped by the LRU policy
	GraphHits   uint64 // graph builds avoided by the graph cache
	Incremental uint64 // incremental (ApplyEdits) solves actually executed
	Size        int    // current result-cache entry count
	Sessions    int    // current session-store entry count
	// Engines accumulates the per-engine dispatch histograms of every solve
	// this service executed (cache hits add nothing — no piece was solved):
	// engine name → pieces colored. Fixed-engine requests land in one
	// bucket; auto/race requests spread across the engines the portfolio
	// picked, plus "fallback" for deadline-degraded pieces.
	Engines map[string]uint64
	// Stages accumulates the per-stage telemetry of every solve this
	// service executed, keyed by the pipeline.Stage* names: division and
	// merge stages from each solve's Result, build stages from the graph
	// builds this service actually ran (cache-hit graphs add nothing —
	// the build they reuse was recorded when it happened).
	Stages map[string]pipeline.StageStats
	// Shapes accumulates the canonical-shape memoization counters of
	// every memoized solve this service executed (core Options.Memoize).
	// Distinct sums per-run distinct-shape counts, so a shape two solves
	// both touch is counted by each.
	Shapes division.ShapeStats
}

// Service runs decompositions with caching and bounded concurrency. Safe
// for concurrent use.
type Service struct {
	cfg   Config
	sem   chan struct{} // full-quality solves
	fbSem chan struct{} // fallback solves for requests whose deadline expired while queued

	mu       sync.Mutex
	results  *lru  // guarded by mu; key -> *entry (may be in-flight)
	graphs   *lru  // guarded by mu; key -> *graphEntry (may be in-flight)
	sessions *lru  // guarded by mu; key -> *session (always complete; immutable once stored)
	stats    Stats // guarded by mu
}

// session is one servable decomposition state: the layout geometry and the
// full-quality result computed for it under one options key. Both fields
// are immutable after the session is stored — DecomposeIncremental derives
// new sessions instead of updating old ones, so readers never see torn
// state and conflicting edit batches cannot race.
type session struct {
	layout *layout.Layout
	res    *core.Result
}

// snapshotLayout shields a stored session from later caller-side appends to
// the feature slice. (Callers mutating feature geometry in place would
// already have broken the hash-keyed caches; that contract is unchanged.)
func snapshotLayout(l *layout.Layout) *layout.Layout {
	return &layout.Layout{
		Name:     l.Name,
		Process:  l.Process,
		Features: append([]geom.Polygon(nil), l.Features...),
	}
}

// entry is one result-cache slot. ready is closed once res/err are set;
// until then other callers with the same key wait on it (single-flight).
type entry struct {
	ready chan struct{}
	res   *core.Result
	err   error
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		fbSem:    make(chan struct{}, cfg.Workers),
		results:  newLRU(cfg.CacheSize),
		graphs:   newLRU(cfg.CacheSize),
		sessions: newLRU(cfg.CacheSize),
	}
}

// Decompose runs (or reuses) one decomposition. cached reports whether the
// result was served from the cache or by waiting on an identical in-flight
// solve. The returned Result has its own Colors slice, so callers may
// mutate it (e.g. BalanceMasks) without corrupting the cache.
func (s *Service) Decompose(ctx context.Context, l *layout.Layout, opts core.Options) (res *core.Result, cached bool, err error) {
	res, _, cached, err = s.DecomposeHashed(ctx, l, opts)
	return res, cached, err
}

// DecomposeHashed is Decompose, additionally returning the layout hash it
// keyed the run under — the session base for DecomposeIncremental — so
// callers building responses (qpld serve) don't re-hash the geometry.
func (s *Service) DecomposeHashed(ctx context.Context, l *layout.Layout, opts core.Options) (res *core.Result, layoutHash string, cached bool, err error) {
	if opts.K != 0 && opts.K < 2 {
		return nil, "", false, fmt.Errorf("service: K must be >= 2, got %d", opts.K)
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	lh := LayoutHash(l)
	key := resultKey(lh, opts)

	var e *entry
	for e == nil {
		s.mu.Lock()
		if v, ok := s.results.get(key); ok {
			shared := v.(*entry)
			s.stats.Hits++
			// Probe the session store while the lock is already held: on
			// the steady-state hit path (live session) this costs one map
			// lookup, not an extra lock acquisition.
			_, sessOK := s.sessions.get(key)
			s.mu.Unlock()
			select {
			case <-shared.ready:
			case <-ctx.Done():
				// Our deadline expired while waiting on someone else's
				// solve. Answer degraded ourselves — the same contract the
				// owner path honors — instead of turning a cache-key
				// collision into an error. The result is uncacheable by
				// construction, so it bypasses the entry bookkeeping.
				res, err := s.solve(ctx, lh, l, opts)
				if err != nil {
					return nil, "", false, err
				}
				s.mu.Lock()
				s.recordEngines(res)
				s.mu.Unlock()
				return res, lh, false, nil
			}
			// A healthy completed solve is shareable. A degraded or failed
			// one reflects the owning caller's context, not this one's, so
			// retry under our own: the owner has already removed the entry,
			// making the next loop iteration a fresh miss (or a wait on a
			// newer in-flight solve).
			if shared.err == nil && shared.res.Degraded == 0 {
				// Re-register the session if it was LRU-evicted while the
				// result stayed hot: the documented recovery for a lost
				// session is "re-send the full layout", and that recovery
				// must work even when it lands here instead of on a solve.
				if !sessOK {
					s.ensureSession(key, l, shared.res)
				}
				return copyResult(shared.res), lh, true, nil
			}
			continue
		}
		e = &entry{ready: make(chan struct{})}
		s.stats.Misses++
		s.results.put(key, e, &s.stats.Evictions)
		s.stats.Size = s.results.len()
		s.mu.Unlock()
	}

	e.res, e.err = s.solve(ctx, lh, l, opts)
	// Degraded or failed solves are not worth caching: a later caller with
	// a healthy deadline deserves a full-quality run. removeIf guards
	// against deleting a newer entry that replaced ours after an eviction.
	// A healthy solve additionally registers a session so the caller can
	// follow up with DecomposeIncremental edit batches. The layout snapshot
	// is O(features) pure work, so it happens before taking the lock.
	// (DecomposeIncremental's post-solve bookkeeping mirrors this — keep
	// the two in sync.)
	var sess *session
	if e.err == nil && e.res.Degraded == 0 {
		sess = &session{layout: snapshotLayout(l), res: e.res}
	}
	s.mu.Lock()
	if e.err == nil {
		s.recordEngines(e.res)
	}
	if sess == nil {
		s.results.removeIf(key, e)
	} else {
		s.sessions.put(key, sess, nil)
		s.stats.Sessions = s.sessions.len()
	}
	s.stats.Size = s.results.len()
	s.mu.Unlock()
	close(e.ready)
	if e.err != nil {
		return nil, "", false, e.err
	}
	return copyResult(e.res), lh, false, nil
}

// recordEngines folds one executed solve's per-engine dispatch histogram
// and per-stage telemetry into the service totals. Callers must hold s.mu.
//
//lint:holds mu
func (s *Service) recordEngines(res *core.Result) {
	if res == nil {
		return
	}
	if len(res.DivisionStats.Engines) > 0 {
		if s.stats.Engines == nil {
			s.stats.Engines = make(map[string]uint64)
		}
		for name, n := range res.DivisionStats.Engines {
			s.stats.Engines[name] += uint64(n)
		}
	}
	s.stats.Stages = pipeline.MergeStages(s.stats.Stages, res.DivisionStats.Stages)
	s.stats.Shapes.Hits += res.DivisionStats.Shapes.Hits
	s.stats.Shapes.Misses += res.DivisionStats.Shapes.Misses
	s.stats.Shapes.Distinct += res.DivisionStats.Shapes.Distinct
}

// recordBuild folds one executed graph build into the aggregate stage
// telemetry. Solves over cached graphs never reach here — the build cost
// was paid (and recorded) once, by the caller that actually built.
func (s *Service) recordBuild(st core.BuildStats) {
	s.mu.Lock()
	s.stats.Stages = pipeline.MergeStages(s.stats.Stages, map[string]pipeline.StageStats{
		pipeline.StageBuild: {Wall: st.Timing.Total, Calls: 1},
	})
	s.mu.Unlock()
}

// ensureSession re-registers a session for a healthy cached result whose
// session entry may have been LRU-evicted independently. The (pure,
// O(features)) snapshot is taken outside the lock and only when actually
// needed.
func (s *Service) ensureSession(key string, l *layout.Layout, res *core.Result) {
	s.mu.Lock()
	_, ok := s.sessions.get(key) // present: just bumped its recency
	s.mu.Unlock()
	if ok {
		return
	}
	sess := &session{layout: snapshotLayout(l), res: res}
	s.mu.Lock()
	if _, ok := s.sessions.get(key); !ok {
		s.sessions.put(key, sess, nil)
		s.stats.Sessions = s.sessions.len()
	}
	s.mu.Unlock()
}

// solve acquires a concurrency slot, builds (or reuses) the decomposition
// graph, and colors it.
func (s *Service) solve(ctx context.Context, lh string, l *layout.Layout, opts core.Options) (*core.Result, error) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		// The deadline expired while queued for a full-quality slot. Under
		// a cancelled context the pipeline takes the cheap linear-fallback
		// path, so the caller still receives a valid degraded coloring
		// instead of an error — but through a separate bounded semaphore,
		// so an overload burst of expired requests cannot run unbounded
		// graph builds. The wait here is short: every fallback solve ahead
		// of us is milliseconds-scale.
		s.fbSem <- struct{}{}
		defer func() { <-s.fbSem }()
	}

	dg, err := s.graphFor(lh, l, opts)
	if err != nil {
		return nil, err
	}
	return core.DecomposeGraphContext(ctx, dg, opts)
}

// graphEntry is one graph-cache slot; ready is closed once g/err are set,
// so concurrent requests for one layout build its graph exactly once.
type graphEntry struct {
	ready chan struct{}
	g     *core.Graph
	err   error
}

// graphFor returns the decomposition graph for the layout, building it at
// most once per (layout, build options) across concurrent callers. Waiting
// on another caller's in-flight build is not interruptible: the build is
// already running, always terminates, and finishing the wait is the fastest
// route to any answer — including a degraded one.
func (s *Service) graphFor(lh string, l *layout.Layout, opts core.Options) (*core.Graph, error) {
	build := opts.Normalize().Build
	gk := graphKey(lh, build)
	for {
		s.mu.Lock()
		if v, ok := s.graphs.get(gk); ok {
			ge := v.(*graphEntry)
			s.stats.GraphHits++
			s.mu.Unlock()
			<-ge.ready
			if ge.err == nil {
				return ge.g, nil
			}
			continue // owner removed the failed entry; retry (or own) fresh
		}
		ge := &graphEntry{ready: make(chan struct{})}
		s.graphs.put(gk, ge, nil)
		s.mu.Unlock()
		ge.g, ge.err = core.BuildGraph(l, build)
		if ge.err != nil {
			s.mu.Lock()
			s.graphs.removeIf(gk, ge)
			s.mu.Unlock()
		} else {
			s.recordBuild(ge.g.Stats)
		}
		close(ge.ready)
		return ge.g, ge.err
	}
}

// DecomposeIncremental advances the session identified by baseHash (a
// LayoutHash previously returned alongside a Decompose or
// DecomposeIncremental of the same opts) by one edit batch, re-solving only
// the dirty region via core.ApplyEdits. It returns the post-edit result,
// the post-edit layout hash (the base for follow-up batches), the reuse
// statistics (nil when the result came from the cache), and whether it was
// cached.
//
// Identical concurrent batches are deduplicated through the result cache:
// the post-edit geometry is hashed first, so one caller applies the edits
// and the rest wait on its entry. Conflicting concurrent batches derive
// independent successor sessions from the same immutable base — there is
// no "current state" to race on. When baseHash has no live session
// (evicted, never created, or caching disabled) the call fails with
// ErrNoSession and the client re-sends the full layout via Decompose.
func (s *Service) DecomposeIncremental(ctx context.Context, baseHash string, edits []core.Edit, opts core.Options) (res *core.Result, newHash string, estats *core.EditStats, cached bool, err error) {
	if opts.K != 0 && opts.K < 2 {
		return nil, "", nil, false, fmt.Errorf("service: K must be >= 2, got %d", opts.K)
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	s.mu.Lock()
	v, ok := s.sessions.get(resultKey(baseHash, opts))
	s.mu.Unlock()
	if !ok {
		return nil, "", nil, false, fmt.Errorf("%w: %.16s…", ErrNoSession, baseHash)
	}
	sess := v.(*session)

	// Hash the post-edit geometry up front: the result cache and
	// single-flight machinery then work exactly as for full solves.
	newL, err := core.EditLayout(sess.layout, edits)
	if err != nil {
		return nil, "", nil, false, err
	}
	newHash = LayoutHash(newL)
	key := resultKey(newHash, opts)

	// NOTE: this single-flight loop is the deliberate twin of the one in
	// DecomposeHashed — entry lifecycle, degraded-entry retry, session
	// registration, close(ready) ordering. A semantic change to either
	// loop must be mirrored in the other.
	var e *entry
	for e == nil {
		s.mu.Lock()
		if v, ok := s.results.get(key); ok {
			shared := v.(*entry)
			s.stats.Hits++
			_, sessOK := s.sessions.get(key)
			s.mu.Unlock()
			select {
			case <-shared.ready:
			case <-ctx.Done():
				// Deadline expired while waiting on someone else's solve:
				// answer degraded under our own context, uncached, like
				// Decompose does.
				_, res, estats, err := s.applyEdits(ctx, sess, edits, opts)
				if err != nil {
					return nil, "", nil, false, err
				}
				s.mu.Lock()
				s.recordEngines(res)
				s.mu.Unlock()
				return res, newHash, estats, false, nil
			}
			if shared.err == nil && shared.res.Degraded == 0 {
				// The successor session may have been evicted while its
				// result stayed cached; chaining from newHash must work.
				if !sessOK {
					s.ensureSession(key, newL, shared.res)
				}
				return copyResult(shared.res), newHash, nil, true, nil
			}
			continue
		}
		e = &entry{ready: make(chan struct{})}
		s.stats.Misses++
		s.results.put(key, e, &s.stats.Evictions)
		s.stats.Size = s.results.len()
		s.mu.Unlock()
	}

	var resL *layout.Layout
	resL, e.res, estats, e.err = s.applyEdits(ctx, sess, edits, opts)
	s.mu.Lock()
	if e.err == nil {
		s.recordEngines(e.res)
	}
	if e.err != nil || e.res.Degraded > 0 {
		s.results.removeIf(key, e)
	} else {
		s.sessions.put(key, &session{layout: resL, res: e.res}, nil)
		s.stats.Sessions = s.sessions.len()
	}
	s.stats.Size = s.results.len()
	s.mu.Unlock()
	close(e.ready)
	if e.err != nil {
		return nil, "", nil, false, e.err
	}
	return copyResult(e.res), newHash, estats, false, nil
}

// applyEdits runs core.ApplyEdits under the same concurrency discipline as
// solve: a full-quality slot when the deadline is alive, the bounded
// fallback lane when it expired while queued.
func (s *Service) applyEdits(ctx context.Context, sess *session, edits []core.Edit, opts core.Options) (*layout.Layout, *core.Result, *core.EditStats, error) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.fbSem <- struct{}{}
		defer func() { <-s.fbSem }()
	}
	s.mu.Lock()
	s.stats.Incremental++
	s.mu.Unlock()
	return core.ApplyEdits(ctx, sess.layout, sess.res, edits, opts)
}

// StatsSnapshot returns current cache statistics.
func (s *Service) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Size = s.results.len()
	st.Sessions = s.sessions.len()
	if s.stats.Engines != nil {
		st.Engines = make(map[string]uint64, len(s.stats.Engines))
		for name, n := range s.stats.Engines {
			st.Engines[name] = n
		}
	}
	st.Stages = pipeline.MergeStages(nil, s.stats.Stages)
	return st
}

// copyResult returns a shallow copy with an independent Colors slice (the
// only part of a Result its public API mutates, via BalanceMasks).
func copyResult(r *core.Result) *core.Result {
	cp := *r
	cp.Colors = append([]int(nil), r.Colors...)
	return &cp
}

// Request is one unit of batch work.
type Request struct {
	// Name labels the request in its Response (e.g. a circuit name).
	Name string
	// Layout is the layout to decompose.
	Layout *layout.Layout
	// Options configures the run.
	Options core.Options
}

// Response pairs a Request with its outcome, in the same slice position.
type Response struct {
	Name    string
	Result  *core.Result
	Cached  bool
	Err     error
	Elapsed time.Duration
}

// DecomposeAll runs every request through Decompose with at most
// Config.Workers solves in flight, returning responses in request order.
// Cancelling ctx degrades rather than abandons the work already picked
// up — requests already solving finish promptly via core's fallback path,
// with valid degraded results — while requests a worker has not yet
// started are not solved at all: their responses carry the context's
// error, so the batch returns as soon as the in-flight tail drains
// instead of grinding every remaining layout through a fallback solve.
func (s *Service) DecomposeAll(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	workers := s.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = Response{Name: reqs[i].Name, Err: fmt.Errorf("service: batch cancelled before this request started: %w", err)}
					continue
				}
				t0 := time.Now()
				res, cached, err := s.Decompose(ctx, reqs[i].Layout, reqs[i].Options)
				out[i] = Response{
					Name:    reqs[i].Name,
					Result:  res,
					Cached:  cached,
					Err:     err,
					Elapsed: time.Since(t0),
				}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// lru is a tiny mutex-free (caller-locked) LRU map over container/list.
type lru struct {
	cap   int
	ll    *list.List // front = most recent; Value = *lruItem
	items map[string]*list.Element
}

type lruItem struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) len() int { return c.ll.Len() }

func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

func (c *lru) put(key string, val any, evictions *uint64) {
	if c.cap < 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		if evictions != nil {
			*evictions++
		}
	}
}

// removeIf deletes key only while it still maps to val: after an LRU
// eviction a newer caller may have re-registered the key, and that entry
// belongs to them, not to the evicted owner doing cleanup.
func (c *lru) removeIf(key string, val any) {
	if el, ok := c.items[key]; ok && el.Value.(*lruItem).val == val {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}
