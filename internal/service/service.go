// Package service is the serving layer over the decomposition pipeline: a
// layout-hash keyed LRU result cache with single-flight deduplication, a
// decomposition-graph cache shared by algorithm sweeps, a bounded-concurrency
// batch runner, and a session store for incremental (ECO) serving. It exists
// so callers with many or repeated layouts (the HTTP API of `qpld serve`,
// the table sweeps of cmd/evaluate) get concurrency and caching without
// re-implementing either, while cancellation flows straight through to
// core.DecomposeGraphContext.
//
// Sessions make edits first-class: every successful full-quality Decompose
// registers an immutable session (layout + result) under its layout hash,
// and DecomposeIncremental advances a session by an edit batch through
// core.ApplyEdits — re-solving only the dirty region — registering the
// post-edit state as a new session. Because a session is keyed by the
// geometry it decomposed (not by a mutable "current state"), concurrent
// conflicting edit batches never race: each derives its own successor state
// from the same immutable base.
package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mpl/internal/core"
	"mpl/internal/division"
	"mpl/internal/geom"
	"mpl/internal/layout"
	"mpl/internal/pipeline"
	"mpl/internal/store"
)

// ErrNoSession is returned by DecomposeIncremental when the base layout
// hash has no live session — the client must (re)send the full layout via
// Decompose first. Wrapped; test with errors.Is.
var ErrNoSession = errors.New("service: no session for base layout hash")

// Config sizes a Service. The zero value is usable.
type Config struct {
	// CacheSize caps the number of cached results (and, independently, of
	// cached decomposition graphs); 0 means 128, negative disables caching.
	CacheSize int
	// Workers caps concurrently running decompositions across all callers;
	// 0 means GOMAXPROCS.
	Workers int
	// DefaultTimeout, when positive, bounds each decomposition that arrives
	// with a context carrying no earlier deadline.
	DefaultTimeout time.Duration
	// Store, when non-nil, makes sessions durable (DESIGN.md §13): edit
	// batches are logged before the successor session is registered, a
	// session evicted from the LRU is spilled to disk instead of dropped,
	// and a session miss rehydrates from the nearest persisted snapshot by
	// replaying the log tail through core.ApplyEdits. Nil (the zero value)
	// keeps sessions purely in-memory. The caller owns the Store's
	// lifecycle and must not Close it while the Service is in use.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits        uint64 // result served from cache (including waits on an in-flight solve)
	Misses      uint64 // result required a solve
	Evictions   uint64 // cache entries dropped by the LRU policy
	GraphHits   uint64 // graph builds avoided by the graph cache
	Incremental uint64 // incremental (ApplyEdits) solves actually executed
	Size        int    // current result-cache entry count
	Sessions    int    // current session-store entry count
	// Rehydrations counts sessions reconstructed from the durable store
	// (nearest snapshot plus log-tail replay); Spills counts sessions
	// written to the durable store on LRU eviction; StoreErrors counts
	// durable-store operations that failed — the request itself still
	// succeeded, but durability of the affected session is degraded until
	// a later spill or snapshot lands. All zero without Config.Store.
	Rehydrations uint64
	Spills       uint64
	StoreErrors  uint64
	// Store carries the durable session store's own counters (log size,
	// compactions, recovery events); nil without Config.Store.
	Store *store.Stats
	// Engines accumulates the per-engine dispatch histograms of every solve
	// this service executed (cache hits add nothing — no piece was solved):
	// engine name → pieces colored. Fixed-engine requests land in one
	// bucket; auto/race requests spread across the engines the portfolio
	// picked, plus "fallback" for deadline-degraded pieces.
	Engines map[string]uint64
	// Stages accumulates the per-stage telemetry of every solve this
	// service executed, keyed by the pipeline.Stage* names: division and
	// merge stages from each solve's Result, build stages from the graph
	// builds this service actually ran (cache-hit graphs add nothing —
	// the build they reuse was recorded when it happened).
	Stages map[string]pipeline.StageStats
	// Shapes accumulates the canonical-shape memoization counters of
	// every memoized solve this service executed (core Options.Memoize).
	// Distinct sums per-run distinct-shape counts, so a shape two solves
	// both touch is counted by each.
	Shapes division.ShapeStats
	// Balance accumulates the dispatch-imbalance gauge across every solve
	// this service executed: worker contributions sum, busy-time extremes
	// are the lifetime max/min over all runs' workers (division.Balance
	// merge semantics). A MaxBusy far above MinBusy flags workloads whose
	// parallel Dispatch is dominated by straggler components.
	Balance division.Balance
}

// Service runs decompositions with caching and bounded concurrency. Safe
// for concurrent use.
type Service struct {
	cfg   Config
	sem   chan struct{} // full-quality solves
	fbSem chan struct{} // fallback solves for requests whose deadline expired while queued

	mu       sync.Mutex
	results  *lru  // guarded by mu; key -> *entry (may be in-flight)
	graphs   *lru  // guarded by mu; key -> *graphEntry (may be in-flight)
	sessions *lru  // guarded by mu; key -> *session (always complete; immutable once stored)
	stats    Stats // guarded by mu
}

// session is one servable decomposition state: the layout geometry and the
// full-quality result computed for it under one options key. All fields
// are immutable after the session is stored — DecomposeIncremental derives
// new sessions instead of updating old ones, so readers never see torn
// state and conflicting edit batches cannot race. hash and sig are the
// components of the session's cache key (LayoutHash of layout, optionsSig
// of the options that produced res), kept so the durable store can spill
// and chain sessions without re-deriving either.
type session struct {
	hash   string
	sig    string
	layout *layout.Layout
	res    *core.Result
}

// snapshotLayout shields a stored session from later caller-side appends to
// the feature slice. (Callers mutating feature geometry in place would
// already have broken the hash-keyed caches; that contract is unchanged.)
func snapshotLayout(l *layout.Layout) *layout.Layout {
	return &layout.Layout{
		Name:     l.Name,
		Process:  l.Process,
		Features: append([]geom.Polygon(nil), l.Features...),
	}
}

// entry is one result-cache slot. ready is closed once res/err are set;
// until then other callers with the same key wait on it (single-flight).
type entry struct {
	ready chan struct{}
	res   *core.Result
	err   error
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		fbSem:    make(chan struct{}, cfg.Workers),
		results:  newLRU(cfg.CacheSize),
		graphs:   newLRU(cfg.CacheSize),
		sessions: newLRU(cfg.CacheSize),
	}
}

// Decompose runs (or reuses) one decomposition. cached reports whether the
// result was served from the cache or by waiting on an identical in-flight
// solve. The returned Result has its own Colors slice, so callers may
// mutate it (e.g. BalanceMasks) without corrupting the cache.
func (s *Service) Decompose(ctx context.Context, l *layout.Layout, opts core.Options) (res *core.Result, cached bool, err error) {
	res, _, cached, err = s.DecomposeHashed(ctx, l, opts)
	return res, cached, err
}

// DecomposeHashed is Decompose, additionally returning the layout hash it
// keyed the run under — the session base for DecomposeIncremental — so
// callers building responses (qpld serve) don't re-hash the geometry.
func (s *Service) DecomposeHashed(ctx context.Context, l *layout.Layout, opts core.Options) (res *core.Result, layoutHash string, cached bool, err error) {
	if opts.K != 0 && opts.K < 2 {
		return nil, "", false, fmt.Errorf("service: K must be >= 2, got %d", opts.K)
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	lh := LayoutHash(l)
	sig := optionsSig(opts)
	key := lh + sig

	var e *entry
	for e == nil {
		s.mu.Lock()
		if v, ok := s.results.get(key); ok {
			shared := v.(*entry)
			s.stats.Hits++
			// Probe the session store while the lock is already held: on
			// the steady-state hit path (live session) this costs one map
			// lookup, not an extra lock acquisition.
			_, sessOK := s.sessions.get(key)
			s.mu.Unlock()
			select {
			case <-shared.ready:
			case <-ctx.Done():
				// Our deadline expired while waiting on someone else's
				// solve. Answer degraded ourselves — the same contract the
				// owner path honors — instead of turning a cache-key
				// collision into an error. The result is uncacheable by
				// construction, so it bypasses the entry bookkeeping, and
				// the optimistic Hits tally above is re-tallied as the
				// miss this turned out to be.
				res, err := s.solve(ctx, lh, l, opts)
				s.mu.Lock()
				s.stats.Hits--
				s.stats.Misses++
				s.recordEngines(res)
				s.mu.Unlock()
				if err != nil {
					return nil, "", false, err
				}
				return res, lh, false, nil
			}
			// A healthy completed solve is shareable. A degraded or failed
			// one reflects the owning caller's context, not this one's, so
			// retry under our own: the owner has already removed the entry,
			// making the next loop iteration a fresh miss (or a wait on a
			// newer in-flight solve).
			if shared.err == nil && shared.res.Degraded == 0 {
				// Re-register the session if it was LRU-evicted while the
				// result stayed hot: the documented recovery for a lost
				// session is "re-send the full layout", and that recovery
				// must work even when it lands here instead of on a solve.
				if !sessOK {
					s.ensureSession(lh, sig, l, shared.res)
				}
				return copyResult(shared.res), lh, true, nil
			}
			// The wait produced nothing servable: take back the optimistic
			// Hits tally. The retry iteration re-counts whatever actually
			// happens (a hit on a newer entry, or an owned miss).
			s.mu.Lock()
			s.stats.Hits--
			s.mu.Unlock()
			continue
		}
		e = &entry{ready: make(chan struct{})}
		s.stats.Misses++
		s.results.put(key, e, &s.stats.Evictions)
		s.stats.Size = s.results.len()
		s.mu.Unlock()
	}

	// A restart may have left this very solve on disk: a durable snapshot
	// of the requested hash with no replay tail reconstructs the result
	// (graph build + verification) without re-running the solve.
	if res := s.fullFromStore(lh, sig, opts); res != nil {
		e.res = res
	} else {
		e.res, e.err = s.solve(ctx, lh, l, opts)
	}
	// Degraded or failed solves are not worth caching: a later caller with
	// a healthy deadline deserves a full-quality run. removeIf guards
	// against deleting a newer entry that replaced ours after an eviction.
	// A healthy solve additionally registers a session so the caller can
	// follow up with DecomposeIncremental edit batches. The layout snapshot
	// is O(features) pure work, so it happens before taking the lock.
	// (DecomposeIncremental's post-solve bookkeeping mirrors this — keep
	// the two in sync.)
	var sess *session
	if e.err == nil && e.res.Degraded == 0 {
		sess = &session{hash: lh, sig: sig, layout: snapshotLayout(l), res: e.res}
	}
	var evicted []lruItem
	s.mu.Lock()
	if e.err == nil {
		s.recordEngines(e.res)
	}
	if sess == nil {
		s.results.removeIf(key, e)
	} else {
		evicted = s.sessions.put(key, sess, nil)
		s.stats.Sessions = s.sessions.len()
	}
	s.stats.Size = s.results.len()
	s.mu.Unlock()
	close(e.ready)
	s.spillEvicted(evicted)
	if e.err != nil {
		return nil, "", false, e.err
	}
	return copyResult(e.res), lh, false, nil
}

// recordEngines folds one executed solve's per-engine dispatch histogram
// and per-stage telemetry into the service totals. Callers must hold s.mu.
//
//lint:holds mu
func (s *Service) recordEngines(res *core.Result) {
	if res == nil {
		return
	}
	if len(res.DivisionStats.Engines) > 0 {
		if s.stats.Engines == nil {
			s.stats.Engines = make(map[string]uint64)
		}
		for name, n := range res.DivisionStats.Engines {
			s.stats.Engines[name] += uint64(n)
		}
	}
	s.stats.Stages = pipeline.MergeStages(s.stats.Stages, res.DivisionStats.Stages)
	s.stats.Shapes.Hits += res.DivisionStats.Shapes.Hits
	s.stats.Shapes.Misses += res.DivisionStats.Shapes.Misses
	s.stats.Shapes.Distinct += res.DivisionStats.Shapes.Distinct
	s.stats.Balance.Merge(res.DivisionStats.Balance)
}

// recordBuild folds one executed graph build into the aggregate stage
// telemetry. Solves over cached graphs never reach here — the build cost
// was paid (and recorded) once, by the caller that actually built.
func (s *Service) recordBuild(st core.BuildStats) {
	s.mu.Lock()
	s.stats.Stages = pipeline.MergeStages(s.stats.Stages, map[string]pipeline.StageStats{
		pipeline.StageBuild: {Wall: st.Timing.Total, Calls: 1},
	})
	s.mu.Unlock()
}

// ensureSession re-registers a session for a healthy cached result whose
// session entry may have been LRU-evicted independently. The (pure,
// O(features)) snapshot is taken outside the lock and only when actually
// needed.
func (s *Service) ensureSession(lh, sig string, l *layout.Layout, res *core.Result) {
	key := lh + sig
	s.mu.Lock()
	_, ok := s.sessions.get(key) // present: just bumped its recency
	s.mu.Unlock()
	if ok {
		return
	}
	sess := &session{hash: lh, sig: sig, layout: snapshotLayout(l), res: res}
	var evicted []lruItem
	s.mu.Lock()
	if _, ok := s.sessions.get(key); !ok {
		evicted = s.sessions.put(key, sess, nil)
		s.stats.Sessions = s.sessions.len()
	}
	s.mu.Unlock()
	s.spillEvicted(evicted)
}

// fallbackLaneWait bounds how long an expired request may queue for the
// fallback lane. Every fallback solve is milliseconds-scale linear work, so
// a lane that stays full this long is saturated and the request is better
// failed than parked: its own context is already dead, and unbounded
// parking here would pin handler goroutines past serve's drain budget.
// A variable only so the saturation regression test can shorten it.
var fallbackLaneWait = 2 * time.Second

// acquireLane claims a solve slot: a full-quality slot while the context
// is alive, else the bounded fallback lane (under a cancelled context the
// pipeline takes the cheap linear-fallback path, so the caller still
// receives a valid degraded coloring instead of an error — but through a
// separate bounded semaphore, so an overload burst of expired requests
// cannot run unbounded graph builds). release is non-nil exactly when err
// is nil.
func (s *Service) acquireLane(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
	}
	t := time.NewTimer(fallbackLaneWait)
	defer t.Stop()
	select {
	case s.fbSem <- struct{}{}:
		return func() { <-s.fbSem }, nil
	case <-t.C:
		return nil, fmt.Errorf("service: fallback lane saturated after %v: %w", fallbackLaneWait, ctx.Err())
	}
}

// solve acquires a concurrency slot, builds (or reuses) the decomposition
// graph, and colors it.
func (s *Service) solve(ctx context.Context, lh string, l *layout.Layout, opts core.Options) (*core.Result, error) {
	release, err := s.acquireLane(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	dg, err := s.graphFor(lh, l, opts)
	if err != nil {
		return nil, err
	}
	return core.DecomposeGraphContext(ctx, dg, opts)
}

// graphEntry is one graph-cache slot; ready is closed once g/err are set,
// so concurrent requests for one layout build its graph exactly once.
type graphEntry struct {
	ready chan struct{}
	g     *core.Graph
	err   error
}

// graphFor returns the decomposition graph for the layout, building it at
// most once per (layout, build options) across concurrent callers. Waiting
// on another caller's in-flight build is not interruptible: the build is
// already running, always terminates, and finishing the wait is the fastest
// route to any answer — including a degraded one.
func (s *Service) graphFor(lh string, l *layout.Layout, opts core.Options) (*core.Graph, error) {
	build := opts.Normalize().Build
	gk := graphKey(lh, build)
	for {
		s.mu.Lock()
		if v, ok := s.graphs.get(gk); ok {
			ge := v.(*graphEntry)
			s.stats.GraphHits++
			s.mu.Unlock()
			<-ge.ready
			if ge.err == nil {
				return ge.g, nil
			}
			// The in-flight build failed: no build was avoided after all,
			// so take back the optimistic GraphHits tally before retrying
			// (the retry either hits a real entry or builds — and counts —
			// fresh).
			s.mu.Lock()
			s.stats.GraphHits--
			s.mu.Unlock()
			continue // owner removed the failed entry; retry (or own) fresh
		}
		ge := &graphEntry{ready: make(chan struct{})}
		s.graphs.put(gk, ge, nil)
		s.mu.Unlock()
		ge.g, ge.err = core.BuildGraph(l, build)
		if ge.err != nil {
			s.mu.Lock()
			s.graphs.removeIf(gk, ge)
			s.mu.Unlock()
		} else {
			s.recordBuild(ge.g.Stats)
		}
		close(ge.ready)
		return ge.g, ge.err
	}
}

// DecomposeIncremental advances the session identified by baseHash (a
// LayoutHash previously returned alongside a Decompose or
// DecomposeIncremental of the same opts) by one edit batch, re-solving only
// the dirty region via core.ApplyEdits. It returns the post-edit result,
// the post-edit layout hash (the base for follow-up batches), the reuse
// statistics (nil when the result came from the cache), and whether it was
// cached.
//
// Identical concurrent batches are deduplicated through the result cache:
// the post-edit geometry is hashed first, so one caller applies the edits
// and the rest wait on its entry. Conflicting concurrent batches derive
// independent successor sessions from the same immutable base — there is
// no "current state" to race on. When baseHash has no live session
// (evicted, never created, or caching disabled) the call fails with
// ErrNoSession and the client re-sends the full layout via Decompose.
func (s *Service) DecomposeIncremental(ctx context.Context, baseHash string, edits []core.Edit, opts core.Options) (res *core.Result, newHash string, estats *core.EditStats, cached bool, err error) {
	if opts.K != 0 && opts.K < 2 {
		return nil, "", nil, false, fmt.Errorf("service: K must be >= 2, got %d", opts.K)
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	sig := optionsSig(opts)
	s.mu.Lock()
	v, ok := s.sessions.get(baseHash + sig)
	s.mu.Unlock()
	var sess *session
	if ok {
		sess = v.(*session)
	} else {
		// The in-memory store lost the session (evicted, or a restart) —
		// rehydrate it from the durable log before giving up. Only when
		// the disk has nothing either is it truly no session.
		var err error
		if sess, err = s.rehydrate(ctx, baseHash, sig, opts); err != nil {
			return nil, "", nil, false, err
		}
		if sess == nil {
			return nil, "", nil, false, fmt.Errorf("%w: %.16s…", ErrNoSession, baseHash)
		}
	}

	// Hash the post-edit geometry up front: the result cache and
	// single-flight machinery then work exactly as for full solves.
	newL, err := core.EditLayout(sess.layout, edits)
	if err != nil {
		return nil, "", nil, false, err
	}
	newHash = LayoutHash(newL)
	key := newHash + sig

	// NOTE: this single-flight loop is the deliberate twin of the one in
	// DecomposeHashed — entry lifecycle, degraded-entry retry, session
	// registration, close(ready) ordering. A semantic change to either
	// loop must be mirrored in the other.
	var e *entry
	for e == nil {
		s.mu.Lock()
		if v, ok := s.results.get(key); ok {
			shared := v.(*entry)
			s.stats.Hits++
			_, sessOK := s.sessions.get(key)
			s.mu.Unlock()
			select {
			case <-shared.ready:
			case <-ctx.Done():
				// Deadline expired while waiting on someone else's solve:
				// answer degraded under our own context, uncached, like
				// Decompose does — and re-tally the optimistic Hits count
				// as the miss this turned out to be.
				_, res, estats, err := s.applyEdits(ctx, sess, edits, opts)
				s.mu.Lock()
				s.stats.Hits--
				s.stats.Misses++
				s.recordEngines(res)
				s.mu.Unlock()
				if err != nil {
					return nil, "", nil, false, err
				}
				return res, newHash, estats, false, nil
			}
			if shared.err == nil && shared.res.Degraded == 0 {
				// The successor session may have been evicted while its
				// result stayed cached; chaining from newHash must work.
				if !sessOK {
					s.ensureSession(newHash, sig, newL, shared.res)
				}
				return copyResult(shared.res), newHash, nil, true, nil
			}
			// Nothing servable came of the wait: take back the optimistic
			// Hits tally before retrying (the twin loop in DecomposeHashed
			// does the same).
			s.mu.Lock()
			s.stats.Hits--
			s.mu.Unlock()
			continue
		}
		e = &entry{ready: make(chan struct{})}
		s.stats.Misses++
		s.results.put(key, e, &s.stats.Evictions)
		s.stats.Size = s.results.len()
		s.mu.Unlock()
	}

	var resL *layout.Layout
	resL, e.res, estats, e.err = s.applyEdits(ctx, sess, edits, opts)
	// A healthy successor is persisted to the durable log BEFORE it is
	// registered in memory (write-ahead discipline: once a client can chain
	// from newHash, a crash must not lose the state it chains from). The
	// layout snapshot mirrors the Decompose path — sessions are immutable
	// once stored, whichever loop stored them.
	var succ *session
	if e.err == nil && e.res.Degraded == 0 {
		succ = &session{hash: newHash, sig: sig, layout: snapshotLayout(resL), res: e.res}
		s.persistEdits(sess, succ, edits)
	}
	var evicted []lruItem
	s.mu.Lock()
	if e.err == nil {
		s.recordEngines(e.res)
	}
	if succ == nil {
		s.results.removeIf(key, e)
	} else {
		evicted = s.sessions.put(key, succ, nil)
		s.stats.Sessions = s.sessions.len()
	}
	s.stats.Size = s.results.len()
	s.mu.Unlock()
	close(e.ready)
	s.spillEvicted(evicted)
	if e.err != nil {
		return nil, "", nil, false, e.err
	}
	return copyResult(e.res), newHash, estats, false, nil
}

// applyEdits runs core.ApplyEdits under the same concurrency discipline as
// solve: a full-quality slot when the deadline is alive, the bounded
// fallback lane when it expired while queued.
func (s *Service) applyEdits(ctx context.Context, sess *session, edits []core.Edit, opts core.Options) (*layout.Layout, *core.Result, *core.EditStats, error) {
	release, err := s.acquireLane(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	defer release()
	s.mu.Lock()
	s.stats.Incremental++
	s.mu.Unlock()
	return core.ApplyEdits(ctx, sess.layout, sess.res, edits, opts)
}

// StatsSnapshot returns current cache statistics.
func (s *Service) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Size = s.results.len()
	st.Sessions = s.sessions.len()
	if s.stats.Engines != nil {
		st.Engines = make(map[string]uint64, len(s.stats.Engines))
		for name, n := range s.stats.Engines {
			st.Engines[name] = n
		}
	}
	st.Stages = pipeline.MergeStages(nil, s.stats.Stages)
	if s.cfg.Store != nil {
		ss := s.cfg.Store.StatsSnapshot()
		st.Store = &ss
	}
	return st
}

// copyResult returns a shallow copy with an independent Colors slice (the
// only part of a Result its public API mutates, via BalanceMasks).
func copyResult(r *core.Result) *core.Result {
	cp := *r
	cp.Colors = append([]int(nil), r.Colors...)
	return &cp
}

// Request is one unit of batch work.
type Request struct {
	// Name labels the request in its Response (e.g. a circuit name).
	Name string
	// Layout is the layout to decompose.
	Layout *layout.Layout
	// Options configures the run.
	Options core.Options
}

// Response pairs a Request with its outcome, in the same slice position.
type Response struct {
	Name    string
	Result  *core.Result
	Cached  bool
	Err     error
	Elapsed time.Duration
}

// DecomposeAll runs every request through Decompose with at most
// Config.Workers solves in flight, returning responses in request order.
// Cancelling ctx degrades rather than abandons the work already picked
// up — requests already solving finish promptly via core's fallback path,
// with valid degraded results — while requests a worker has not yet
// started are not solved at all: their responses carry the context's
// error, so the batch returns as soon as the in-flight tail drains
// instead of grinding every remaining layout through a fallback solve.
func (s *Service) DecomposeAll(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	workers := s.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = Response{Name: reqs[i].Name, Err: fmt.Errorf("service: batch cancelled before this request started: %w", err)}
					continue
				}
				t0 := time.Now()
				res, cached, err := s.Decompose(ctx, reqs[i].Layout, reqs[i].Options)
				out[i] = Response{
					Name:    reqs[i].Name,
					Result:  res,
					Cached:  cached,
					Err:     err,
					Elapsed: time.Since(t0),
				}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// lru is a tiny mutex-free (caller-locked) LRU map over container/list.
type lru struct {
	cap   int
	ll    *list.List // front = most recent; Value = *lruItem
	items map[string]*list.Element
}

type lruItem struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) len() int { return c.ll.Len() }

func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

// put inserts or refreshes key and returns the items the capacity bound
// pushed out (usually none) so the caller can dispose of them outside the
// lock — the session store spills evicted sessions to disk.
func (c *lru) put(key string, val any, evictions *uint64) (evicted []lruItem) {
	if c.cap < 0 {
		return nil
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = val
		c.ll.MoveToFront(el)
		return nil
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		it := oldest.Value.(*lruItem)
		delete(c.items, it.key)
		evicted = append(evicted, *it)
		if evictions != nil {
			*evictions++
		}
	}
	return evicted
}

// removeIf deletes key only while it still maps to val: after an LRU
// eviction a newer caller may have re-registered the key, and that entry
// belongs to them, not to the evicted owner doing cleanup.
func (c *lru) removeIf(key string, val any) {
	if el, ok := c.items[key]; ok && el.Value.(*lruItem).val == val {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}
