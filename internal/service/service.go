// Package service is the serving layer over the decomposition pipeline: a
// layout-hash keyed LRU result cache with single-flight deduplication, a
// decomposition-graph cache shared by algorithm sweeps, and a
// bounded-concurrency batch runner. It exists so callers with many or
// repeated layouts (the HTTP API of `qpld serve`, the table sweeps of
// cmd/evaluate) get concurrency and caching without re-implementing either,
// while cancellation flows straight through to core.DecomposeGraphContext.
package service

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mpl/internal/core"
	"mpl/internal/layout"
)

// Config sizes a Service. The zero value is usable.
type Config struct {
	// CacheSize caps the number of cached results (and, independently, of
	// cached decomposition graphs); 0 means 128, negative disables caching.
	CacheSize int
	// Workers caps concurrently running decompositions across all callers;
	// 0 means GOMAXPROCS.
	Workers int
	// DefaultTimeout, when positive, bounds each decomposition that arrives
	// with a context carrying no earlier deadline.
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      uint64 // result served from cache (including waits on an in-flight solve)
	Misses    uint64 // result required a solve
	Evictions uint64 // cache entries dropped by the LRU policy
	GraphHits uint64 // graph builds avoided by the graph cache
	Size      int    // current result-cache entry count
}

// Service runs decompositions with caching and bounded concurrency. Safe
// for concurrent use.
type Service struct {
	cfg   Config
	sem   chan struct{} // full-quality solves
	fbSem chan struct{} // fallback solves for requests whose deadline expired while queued

	mu      sync.Mutex
	results *lru // key -> *entry (may be in-flight)
	graphs  *lru // key -> *graphEntry (may be in-flight)
	stats   Stats
}

// entry is one result-cache slot. ready is closed once res/err are set;
// until then other callers with the same key wait on it (single-flight).
type entry struct {
	ready chan struct{}
	res   *core.Result
	err   error
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		fbSem:   make(chan struct{}, cfg.Workers),
		results: newLRU(cfg.CacheSize),
		graphs:  newLRU(cfg.CacheSize),
	}
}

// Decompose runs (or reuses) one decomposition. cached reports whether the
// result was served from the cache or by waiting on an identical in-flight
// solve. The returned Result has its own Colors slice, so callers may
// mutate it (e.g. BalanceMasks) without corrupting the cache.
func (s *Service) Decompose(ctx context.Context, l *layout.Layout, opts core.Options) (res *core.Result, cached bool, err error) {
	if opts.K != 0 && opts.K < 2 {
		return nil, false, fmt.Errorf("service: K must be >= 2, got %d", opts.K)
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	lh := LayoutHash(l)
	key := resultKey(lh, opts)

	var e *entry
	for e == nil {
		s.mu.Lock()
		if v, ok := s.results.get(key); ok {
			shared := v.(*entry)
			s.stats.Hits++
			s.mu.Unlock()
			select {
			case <-shared.ready:
			case <-ctx.Done():
				// Our deadline expired while waiting on someone else's
				// solve. Answer degraded ourselves — the same contract the
				// owner path honors — instead of turning a cache-key
				// collision into an error. The result is uncacheable by
				// construction, so it bypasses the entry bookkeeping.
				res, err := s.solve(ctx, lh, l, opts)
				if err != nil {
					return nil, false, err
				}
				return res, false, nil
			}
			// A healthy completed solve is shareable. A degraded or failed
			// one reflects the owning caller's context, not this one's, so
			// retry under our own: the owner has already removed the entry,
			// making the next loop iteration a fresh miss (or a wait on a
			// newer in-flight solve).
			if shared.err == nil && shared.res.Degraded == 0 {
				return copyResult(shared.res), true, nil
			}
			continue
		}
		e = &entry{ready: make(chan struct{})}
		s.stats.Misses++
		s.results.put(key, e, &s.stats.Evictions)
		s.stats.Size = s.results.len()
		s.mu.Unlock()
	}

	e.res, e.err = s.solve(ctx, lh, l, opts)
	// Degraded or failed solves are not worth caching: a later caller with
	// a healthy deadline deserves a full-quality run. removeIf guards
	// against deleting a newer entry that replaced ours after an eviction.
	if e.err != nil || e.res.Degraded > 0 {
		s.mu.Lock()
		s.results.removeIf(key, e)
		s.stats.Size = s.results.len()
		s.mu.Unlock()
	}
	close(e.ready)
	if e.err != nil {
		return nil, false, e.err
	}
	return copyResult(e.res), false, nil
}

// solve acquires a concurrency slot, builds (or reuses) the decomposition
// graph, and colors it.
func (s *Service) solve(ctx context.Context, lh string, l *layout.Layout, opts core.Options) (*core.Result, error) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		// The deadline expired while queued for a full-quality slot. Under
		// a cancelled context the pipeline takes the cheap linear-fallback
		// path, so the caller still receives a valid degraded coloring
		// instead of an error — but through a separate bounded semaphore,
		// so an overload burst of expired requests cannot run unbounded
		// graph builds. The wait here is short: every fallback solve ahead
		// of us is milliseconds-scale.
		s.fbSem <- struct{}{}
		defer func() { <-s.fbSem }()
	}

	dg, err := s.graphFor(lh, l, opts)
	if err != nil {
		return nil, err
	}
	return core.DecomposeGraphContext(ctx, dg, opts)
}

// graphEntry is one graph-cache slot; ready is closed once g/err are set,
// so concurrent requests for one layout build its graph exactly once.
type graphEntry struct {
	ready chan struct{}
	g     *core.Graph
	err   error
}

// graphFor returns the decomposition graph for the layout, building it at
// most once per (layout, build options) across concurrent callers. Waiting
// on another caller's in-flight build is not interruptible: the build is
// already running, always terminates, and finishing the wait is the fastest
// route to any answer — including a degraded one.
func (s *Service) graphFor(lh string, l *layout.Layout, opts core.Options) (*core.Graph, error) {
	build := opts.Normalize().Build
	gk := graphKey(lh, build)
	for {
		s.mu.Lock()
		if v, ok := s.graphs.get(gk); ok {
			ge := v.(*graphEntry)
			s.stats.GraphHits++
			s.mu.Unlock()
			<-ge.ready
			if ge.err == nil {
				return ge.g, nil
			}
			continue // owner removed the failed entry; retry (or own) fresh
		}
		ge := &graphEntry{ready: make(chan struct{})}
		s.graphs.put(gk, ge, nil)
		s.mu.Unlock()
		ge.g, ge.err = core.BuildGraph(l, build)
		if ge.err != nil {
			s.mu.Lock()
			s.graphs.removeIf(gk, ge)
			s.mu.Unlock()
		}
		close(ge.ready)
		return ge.g, ge.err
	}
}

// StatsSnapshot returns current cache statistics.
func (s *Service) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Size = s.results.len()
	return st
}

// copyResult returns a shallow copy with an independent Colors slice (the
// only part of a Result its public API mutates, via BalanceMasks).
func copyResult(r *core.Result) *core.Result {
	cp := *r
	cp.Colors = append([]int(nil), r.Colors...)
	return &cp
}

// Request is one unit of batch work.
type Request struct {
	// Name labels the request in its Response (e.g. a circuit name).
	Name string
	// Layout is the layout to decompose.
	Layout *layout.Layout
	// Options configures the run.
	Options core.Options
}

// Response pairs a Request with its outcome, in the same slice position.
type Response struct {
	Name    string
	Result  *core.Result
	Cached  bool
	Err     error
	Elapsed time.Duration
}

// DecomposeAll runs every request through Decompose with at most
// Config.Workers solves in flight, returning responses in request order.
// Cancelling ctx degrades rather than abandons: requests already solving
// finish via core's fallback path, and not-yet-started requests return
// quickly with linear-fallback results or ctx errors.
func (s *Service) DecomposeAll(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	workers := s.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				res, cached, err := s.Decompose(ctx, reqs[i].Layout, reqs[i].Options)
				out[i] = Response{
					Name:    reqs[i].Name,
					Result:  res,
					Cached:  cached,
					Err:     err,
					Elapsed: time.Since(t0),
				}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// lru is a tiny mutex-free (caller-locked) LRU map over container/list.
type lru struct {
	cap   int
	ll    *list.List // front = most recent; Value = *lruItem
	items map[string]*list.Element
}

type lruItem struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) len() int { return c.ll.Len() }

func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

func (c *lru) put(key string, val any, evictions *uint64) {
	if c.cap < 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		if evictions != nil {
			*evictions++
		}
	}
}

// removeIf deletes key only while it still maps to val: after an LRU
// eviction a newer caller may have re-registered the key, and that entry
// belongs to them, not to the evicted owner doing cleanup.
func (c *lru) removeIf(key string, val any) {
	if el, ok := c.items[key]; ok && el.Value.(*lruItem).val == val {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}
