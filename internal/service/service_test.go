package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpl/internal/core"
	"mpl/internal/geom"
	"mpl/internal/layout"
	"mpl/internal/synth"
)

// denseRow builds a small layout with real conflicts: n rectangles in a row
// closer than the quadruple-patterning coloring distance.
func denseRow(name string, n int) *layout.Layout {
	l := layout.New(name)
	for i := 0; i < n; i++ {
		x := i * 50 // 30 nm gaps < minS = 80 nm
		l.AddRect(geom.Rect{X0: x, Y0: 0, X1: x + 20, Y1: 200})
	}
	return l
}

// denseGrid builds an n×n grid at 50 nm pitch: interior squares conflict
// with 8 neighbors (orthogonal and diagonal gaps both < 80 nm), so the
// decomposition graph survives low-degree peeling and reaches the solver.
func denseGrid(n int) *layout.Layout {
	l := layout.New("grid")
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			l.AddRect(geom.Rect{X0: c * 50, Y0: r * 50, X1: c*50 + 20, Y1: r*50 + 20})
		}
	}
	return l
}

func TestCacheHitOnIdenticalRequest(t *testing.T) {
	s := New(Config{})
	l := denseRow("row", 8)
	opts := core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}

	r1, cached, err := s.Decompose(context.Background(), l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first call must be a miss")
	}
	r2, cached, err := s.Decompose(context.Background(), l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second identical call must be a hit")
	}
	if r1.Conflicts != r2.Conflicts || r1.Stitches != r2.Stitches {
		t.Fatalf("cached result differs: %d/%d vs %d/%d", r1.Conflicts, r1.Stitches, r2.Conflicts, r2.Stitches)
	}
	st := s.StatsSnapshot()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// A renamed but geometrically identical layout also hits.
	renamed := denseRow("other-name", 8)
	if _, cached, err = s.Decompose(context.Background(), renamed, opts); err != nil || !cached {
		t.Fatalf("renamed identical layout: cached=%v err=%v", cached, err)
	}
}

func TestCachedResultIsIsolated(t *testing.T) {
	s := New(Config{})
	l := denseRow("row", 8)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	r1, _, err := s.Decompose(context.Background(), l, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Colors {
		r1.Colors[i] = 0 // simulate caller mutation (BalanceMasks etc.)
	}
	r2, cached, err := s.Decompose(context.Background(), l, opts)
	if err != nil || !cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	conf, stit := 0, 0
	conf, stit, err = core.VerifySolution(r2)
	if err != nil {
		t.Fatal(err)
	}
	if conf != r2.Conflicts || stit != r2.Stitches {
		t.Fatalf("cached result corrupted by caller mutation: recount %d/%d vs %d/%d", conf, stit, r2.Conflicts, r2.Stitches)
	}
}

func TestDifferentOptionsMiss(t *testing.T) {
	s := New(Config{})
	l := denseRow("row", 8)
	base := core.Options{K: 4, Algorithm: core.AlgLinear}
	variants := []core.Options{
		{K: 3, Algorithm: core.AlgLinear},
		{K: 4, Algorithm: core.AlgSDPGreedy},
		{K: 4, Algorithm: core.AlgLinear, Alpha: 0.3},
		{K: 4, Algorithm: core.AlgLinear, Seed: 7},
	}
	if _, _, err := s.Decompose(context.Background(), l, base); err != nil {
		t.Fatal(err)
	}
	for i, opts := range variants {
		_, cached, err := s.Decompose(context.Background(), l, opts)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatalf("variant %d (%+v) must miss", i, opts)
		}
	}
	if st := s.StatsSnapshot(); st.Hits != 0 || st.Misses != uint64(1+len(variants)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNormalizedOptionsShareEntry(t *testing.T) {
	s := New(Config{})
	l := denseRow("row", 6)
	if _, _, err := s.Decompose(context.Background(), l, core.Options{Algorithm: core.AlgLinear}); err != nil {
		t.Fatal(err)
	}
	// Explicitly spelled defaults must hit the zero-value entry.
	_, cached, err := s.Decompose(context.Background(), l, core.Options{
		K: 4, Algorithm: core.AlgLinear, Alpha: 0.1, Threshold: 0.9, ILPTimeLimit: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("default-equivalent options must share the cache entry")
	}
}

func TestWorkersOptionSharesEntry(t *testing.T) {
	s := New(Config{})
	l := denseRow("row", 6)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	if _, _, err := s.Decompose(context.Background(), l, opts); err != nil {
		t.Fatal(err)
	}
	opts.Division.Workers = 8 // result-identical, must not split the cache
	if _, cached, err := s.Decompose(context.Background(), l, opts); err != nil || !cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
}

func TestGraphCacheSharedAcrossAlgorithms(t *testing.T) {
	s := New(Config{})
	l := denseRow("row", 8)
	if _, _, err := s.Decompose(context.Background(), l, core.Options{K: 4, Algorithm: core.AlgLinear}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Decompose(context.Background(), l, core.Options{K: 4, Algorithm: core.AlgSDPGreedy}); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsSnapshot(); st.GraphHits != 1 {
		t.Fatalf("stats = %+v, want one graph-cache hit across the algorithm sweep", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(Config{CacheSize: 2})
	ctx := context.Background()
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	for i := 0; i < 3; i++ {
		if _, _, err := s.Decompose(ctx, denseRow("row", 4+i), opts); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StatsSnapshot()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2 with 1 eviction", st)
	}
	// The oldest entry (4 rects) was evicted: re-requesting it misses.
	if _, cached, err := s.Decompose(ctx, denseRow("row", 4), opts); err != nil || cached {
		t.Fatalf("cached=%v err=%v, want evicted miss", cached, err)
	}
	// The most recent entry still hits.
	if _, cached, err := s.Decompose(ctx, denseRow("row", 6), opts); err != nil || !cached {
		t.Fatalf("cached=%v err=%v, want hit", cached, err)
	}
}

func TestSingleFlight(t *testing.T) {
	s := New(Config{Workers: 4})
	l, err := synth.GenerateByName("C432", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}
	const callers = 8
	var wg sync.WaitGroup
	results := make([]*core.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.Decompose(context.Background(), l, opts)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	st := s.StatsSnapshot()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one solve for %d identical concurrent requests", st, callers)
	}
	for i := 1; i < callers; i++ {
		if results[i].Conflicts != results[0].Conflicts {
			t.Fatalf("caller %d saw different conflicts", i)
		}
	}
}

func TestInvalidKRejected(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.Decompose(context.Background(), denseRow("row", 4), core.Options{K: 1}); err == nil {
		t.Fatal("K=1 must be rejected, not panic")
	}
}

func TestDegradedResultNotCached(t *testing.T) {
	s := New(Config{})
	l := denseGrid(8)
	opts := core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := s.Decompose(ctx, l, opts)
	if err == nil && res.Degraded == 0 {
		t.Fatal("cancelled context must yield an error or a degraded result")
	}
	if st := s.StatsSnapshot(); st.Size != 0 {
		t.Fatalf("degraded/failed solve must not be cached: %+v", st)
	}
	// A healthy follow-up gets a fresh full-quality run.
	res, cached, err := s.Decompose(context.Background(), l, opts)
	if err != nil {
		t.Fatal(err)
	}
	// (Proven may still be false here — the dense grid can exhaust the
	// backtrack node limit — but nothing may run on the fallback path.)
	if cached || res.Degraded != 0 {
		t.Fatalf("follow-up: cached=%v degraded=%d", cached, res.Degraded)
	}
}

func TestDecomposeAll(t *testing.T) {
	s := New(Config{Workers: 4})
	var reqs []Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, Request{
			Name:    fmt.Sprintf("row-%d", i%5), // duplicates exercise cache + single-flight
			Layout:  denseRow("row", 4+i%5),
			Options: core.Options{K: 4, Algorithm: core.AlgSDPGreedy},
		})
	}
	out := s.DecomposeAll(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d responses", len(out))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Name != reqs[i].Name {
			t.Fatalf("response %d out of order: %q != %q", i, r.Name, reqs[i].Name)
		}
		if len(r.Result.Colors) == 0 {
			t.Fatalf("request %d: empty result", i)
		}
	}
	st := s.StatsSnapshot()
	if st.Misses != 5 || st.Hits != 5 {
		t.Fatalf("stats = %+v, want 5 misses + 5 hits for 5 distinct layouts requested twice", st)
	}
}

func TestGraphBuildSingleFlight(t *testing.T) {
	s := New(Config{Workers: 8})
	l := denseRow("row", 10)
	algs := []core.Algorithm{core.AlgLinear, core.AlgSDPGreedy, core.AlgSDPBacktrack}
	var wg sync.WaitGroup
	for _, a := range algs {
		wg.Add(1)
		go func(a core.Algorithm) {
			defer wg.Done()
			if _, _, err := s.Decompose(context.Background(), l, core.Options{K: 4, Algorithm: a}); err != nil {
				t.Error(err)
			}
		}(a)
	}
	wg.Wait()
	// Three concurrent requests over one layout: exactly one graph build,
	// the other two wait on the in-flight entry.
	if st := s.StatsSnapshot(); st.GraphHits != uint64(len(algs)-1) {
		t.Fatalf("stats = %+v, want %d graph hits", st, len(algs)-1)
	}
}

func TestDecomposeAllCancelMidBatch(t *testing.T) {
	// Cancelling the batch context after the first response must return
	// promptly: the in-flight request degrades through core's fallback
	// path, requests never picked up carry the ctx error (no fallback
	// solves are wasted on them), and no worker goroutines leak.
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 1, CacheSize: -1})
	reqs := []Request{
		{Name: "fast", Layout: denseRow("fast", 4), Options: core.Options{K: 4, Algorithm: core.AlgLinear}},
		{Name: "slow1", Layout: denseGrid(18), Options: core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}},
		{Name: "slow2", Layout: denseGrid(19), Options: core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}},
		{Name: "slow3", Layout: denseGrid(20), Options: core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan []Response, 1)
	go func() { done <- s.DecomposeAll(ctx, reqs) }()

	// With one worker the requests run strictly in order; the second miss
	// means "fast" answered and "slow1" is now in flight.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if s.StatsSnapshot().Misses >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the batch never reached its second request")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	var out []Response
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("DecomposeAll did not return promptly after cancellation")
	}

	if out[0].Err != nil || out[0].Result == nil || out[0].Result.Degraded != 0 {
		t.Fatalf("pre-cancel response damaged: %+v", out[0])
	}
	// slow1 was in flight: it must still produce a valid (if degraded)
	// result rather than an error.
	if out[1].Err != nil || out[1].Result == nil {
		t.Fatalf("in-flight response must degrade, not fail: %+v", out[1])
	}
	// slow2/slow3 were never started: the ctx error, not a fallback solve.
	for _, r := range out[2:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("undispatched request %q: err = %v, want context.Canceled", r.Name, r.Err)
		}
		if r.Result != nil {
			t.Errorf("undispatched request %q was solved anyway", r.Name)
		}
	}

	// The worker pool exits without leaking goroutines.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled batch", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
