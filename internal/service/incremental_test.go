package service

// Tests of the incremental (ECO) session layer, including the concurrency
// stress test of the ISSUE acceptance list: one session hammered with
// concurrent identical and conflicting edit batches under -race, asserting
// single-flight deduplication and that no torn *Result is ever served.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"mpl/internal/coloring"
	"mpl/internal/core"
	"mpl/internal/geom"
	"mpl/internal/synth"
)

func TestIncrementalSessionRoundTrip(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	l, err := synth.GenerateByName("C432", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	if _, _, err := s.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	base := LayoutHash(l)

	edits := []core.Edit{{Op: core.EditMove, Feature: 2, DX: 20, DY: 0}}
	res, nh, es, cached, err := s.DecomposeIncremental(ctx, base, edits, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached || es == nil {
		t.Fatalf("first batch must be a fresh incremental solve (cached=%v, stats=%v)", cached, es)
	}

	// The session result must equal a from-scratch service solve of the
	// same post-edit geometry — and hit its cache entry.
	newL, err := core.EditLayout(l, edits)
	if err != nil {
		t.Fatal(err)
	}
	if LayoutHash(newL) != nh {
		t.Fatalf("returned hash %.12s does not match post-edit layout %.12s", nh, LayoutHash(newL))
	}
	ref, refCached, err := s.Decompose(ctx, newL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !refCached {
		t.Fatal("a full request for the post-edit geometry must hit the incremental result's cache entry")
	}
	if ref.Conflicts != res.Conflicts || ref.Stitches != res.Stitches {
		t.Fatalf("incremental %d/%d != cached reference %d/%d", res.Conflicts, res.Stitches, ref.Conflicts, ref.Stitches)
	}

	// An identical repeat batch is a pure cache hit (no new ApplyEdits).
	res2, nh2, es2, cached, err := s.DecomposeIncremental(ctx, base, edits, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || es2 != nil || nh2 != nh || res2.Conflicts != res.Conflicts {
		t.Fatalf("repeat batch: cached=%v stats=%v hash=%.12s", cached, es2, nh2)
	}

	// The new state is itself a session: chain a follow-up batch from it.
	_, _, es3, cached, err := s.DecomposeIncremental(ctx, nh, []core.Edit{{Op: core.EditRemove, Feature: 0}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached || es3 == nil {
		t.Fatal("chained batch from the advanced session must solve incrementally")
	}
	if st := s.StatsSnapshot(); st.Incremental != 2 || st.Sessions < 3 {
		t.Fatalf("stats = %+v, want 2 incremental solves and ≥3 sessions", st)
	}
}

func TestIncrementalUnknownSession(t *testing.T) {
	s := New(Config{})
	_, _, _, _, err := s.DecomposeIncremental(context.Background(), "deadbeef", nil, core.Options{K: 4})
	if !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

func TestIncrementalBadEditsRejected(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	l := denseRow("row", 6)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	if _, _, err := s.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, err := s.DecomposeIncremental(ctx, LayoutHash(l), []core.Edit{{Op: core.EditRemove, Feature: 99}}, opts)
	if err == nil || errors.Is(err, ErrNoSession) {
		t.Fatalf("out-of-range edit: err = %v, want a validation error", err)
	}
	if _, _, _, _, err := s.DecomposeIncremental(ctx, LayoutHash(l), nil, core.Options{K: 1}); err == nil {
		t.Fatal("K=1 must be rejected")
	}
}

// checkIntact asserts a served result is internally consistent — its Colors
// validate and recount to exactly the advertised objective. A torn result
// (colors from one solve, counts or graph from another) cannot pass this.
func checkIntact(t *testing.T, res *core.Result, k int) {
	t.Helper()
	if err := coloring.Validate(res.Graph.G, res.Colors, k); err != nil {
		t.Errorf("torn result: %v", err)
		return
	}
	conf, stit := coloring.Count(res.Graph.G, res.Colors)
	if conf != res.Conflicts || stit != res.Stitches {
		t.Errorf("torn result: colors recount to %d/%d, result says %d/%d", conf, stit, res.Conflicts, res.Stitches)
	}
	if vc, vs, err := core.VerifySolution(res); err != nil || vc != res.Conflicts || vs != res.Stitches {
		t.Errorf("torn result: geometry recount %d/%d (err %v), result says %d/%d", vc, vs, err, res.Conflicts, res.Stitches)
	}
}

// TestIncrementalConcurrencyStress hammers one session with concurrent
// identical and conflicting edit batches. Run under -race (CI always does):
// the assertions are (a) identical batches dedupe to one ApplyEdits via
// single-flight, (b) every served result — shared or not — is intact, and
// (c) every successor session is live and consistent afterwards.
func TestIncrementalConcurrencyStress(t *testing.T) {
	s := New(Config{Workers: 4, CacheSize: 256})
	ctx := context.Background()
	l, err := synth.GenerateByName("C499", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{K: 4, Algorithm: core.AlgSDPGreedy, Seed: 1}
	if _, _, err := s.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	base := LayoutHash(l)

	// Phase 1: G identical batches → exactly one incremental solve.
	const identical = 16
	same := []core.Edit{{Op: core.EditMove, Feature: 1, DX: 0, DY: 40}}
	var wg sync.WaitGroup
	results := make([]*core.Result, identical)
	hashes := make([]string, identical)
	for i := 0; i < identical; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, nh, _, _, err := s.DecomposeIncremental(ctx, base, same, opts)
			if err != nil {
				t.Error(err)
				return
			}
			results[i], hashes[i] = res, nh
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if st := s.StatsSnapshot(); st.Incremental != 1 {
		t.Fatalf("stats = %+v, want exactly 1 incremental solve for %d identical batches", st, identical)
	}
	for i := 0; i < identical; i++ {
		if hashes[i] != hashes[0] || results[i].Conflicts != results[0].Conflicts || results[i].Stitches != results[0].Stitches {
			t.Fatalf("caller %d diverged: %q %d/%d vs %q %d/%d", i,
				hashes[i][:12], results[i].Conflicts, results[i].Stitches,
				hashes[0][:12], results[0].Conflicts, results[0].Stitches)
		}
		checkIntact(t, results[i], 4)
	}

	// Phase 2: conflicting batches from the same base, concurrently, mixed
	// with repeats of the phase-1 batch. Every batch derives its own
	// successor state; nothing may tear.
	const conflicting = 12
	type out struct {
		edits []core.Edit
		res   *core.Result
		hash  string
	}
	outs := make([]out, conflicting)
	for i := 0; i < conflicting; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var edits []core.Edit
			switch i % 3 {
			case 0:
				edits = []core.Edit{{Op: core.EditMove, Feature: i + 1, DX: 20 * (i + 1), DY: 0}}
			case 1:
				edits = []core.Edit{{Op: core.EditRemove, Feature: i}}
			default:
				x := 5000 + 100*i
				edits = []core.Edit{{Op: core.EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: x, Y0: 0, X1: x + 20, Y1: 20})}}
			}
			res, nh, _, _, err := s.DecomposeIncremental(ctx, base, edits, opts)
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = out{edits: edits, res: res, hash: nh}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := range outs {
		checkIntact(t, outs[i].res, 4)
		// The successor session must be live and answer follow-ups whose
		// reference solve (a fresh scratch run of the same geometry through
		// an independent Service) agrees exactly.
		follow := []core.Edit{{Op: core.EditMove, Feature: 0, DX: 0, DY: 20}}
		res, nh, _, _, err := s.DecomposeIncremental(ctx, outs[i].hash, follow, opts)
		if err != nil {
			t.Fatalf("batch %d follow-up: %v", i, err)
		}
		checkIntact(t, res, 4)
		stepL, err := core.EditLayout(l, outs[i].edits)
		if err != nil {
			t.Fatal(err)
		}
		refL, err := core.EditLayout(stepL, follow)
		if err != nil {
			t.Fatal(err)
		}
		if LayoutHash(refL) != nh {
			t.Fatalf("batch %d follow-up hash mismatch", i)
		}
		ref, err := core.Decompose(refL, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Conflicts != res.Conflicts || ref.Stitches != res.Stitches {
			t.Fatalf("batch %d follow-up: incremental chain says %d/%d, scratch says %d/%d",
				i, res.Conflicts, res.Stitches, ref.Conflicts, ref.Stitches)
		}
	}
}

// TestSessionRecoveryAfterEviction: the documented recovery for a lost
// session ("re-send the full layout via Decompose") must work even when
// the result is still cached — a cache hit has to (re)register the
// session, or the client livelocks between 404 and cached full solves.
func TestSessionRecoveryAfterEviction(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	l := denseRow("row", 8)
	opts := core.Options{K: 4, Algorithm: core.AlgLinear}
	if _, _, err := s.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	// Simulate the session store evicting this entry while the result
	// cache kept it (the two LRUs age independently).
	s.mu.Lock()
	s.sessions = newLRU(s.cfg.CacheSize)
	s.mu.Unlock()
	edits := []core.Edit{{Op: core.EditRemove, Feature: 0}}
	if _, _, _, _, err := s.DecomposeIncremental(ctx, LayoutHash(l), edits, opts); !errors.Is(err, ErrNoSession) {
		t.Fatalf("evicted session: err = %v, want ErrNoSession", err)
	}
	// The recovery: a full request — served from cache — reopens it.
	if _, cached, err := s.Decompose(ctx, l, opts); err != nil || !cached {
		t.Fatalf("recovery request: cached=%v err=%v", cached, err)
	}
	if _, _, _, _, err := s.DecomposeIncremental(ctx, LayoutHash(l), edits, opts); err != nil {
		t.Fatalf("incremental after recovery: %v", err)
	}
}

// TestIncrementalDegradedNotCachedNotSessioned: a dead deadline yields a
// best-effort answer but must leave neither a cache entry nor a session.
func TestIncrementalDegradedNotCachedNotSessioned(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	l := denseGrid(8)
	opts := core.Options{K: 4, Algorithm: core.AlgSDPBacktrack}
	if _, _, err := s.Decompose(ctx, l, opts); err != nil {
		t.Fatal(err)
	}
	before := s.StatsSnapshot()
	dead, cancel := context.WithCancel(ctx)
	cancel()
	// Move an interior contact: the dense component must be re-solved, and
	// under a dead context that re-solve degrades.
	edits := []core.Edit{{Op: core.EditMove, Feature: 27, DX: 10, DY: 0}}
	res, nh, _, _, err := s.DecomposeIncremental(dead, LayoutHash(l), edits, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Skip("dead context still solved at full quality (tiny component); nothing to assert")
	}
	st := s.StatsSnapshot()
	if st.Size != before.Size || st.Sessions != before.Sessions {
		t.Fatalf("degraded incremental result was cached or sessioned: %+v -> %+v", before, st)
	}
	// A healthy retry must run fresh, not inherit the degraded answer.
	res2, _, _, cached, err := s.DecomposeIncremental(ctx, LayoutHash(l), edits, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached || res2.Degraded != 0 {
		t.Fatalf("healthy retry: cached=%v degraded=%d", cached, res2.Degraded)
	}
	if LayoutHash(l) == nh {
		t.Fatal("sanity: edit did not change the layout hash")
	}
}
