package canon_test

import (
	"bytes"
	"testing"

	"mpl/internal/canon"
	"mpl/internal/graph"
)

// decodeGraph builds a small graph from fuzz bytes: one byte of vertex
// count (mapped to 1..7 so the brute-force oracle below stays cheap and
// the canonical search always completes), then 3-byte [type, u, v] edge
// records until a 0xFF separator or the bytes run out. Returns the graph
// and the unconsumed remainder.
func decodeGraph(data []byte) (*graph.Graph, []byte) {
	if len(data) == 0 {
		return graph.New(1), nil
	}
	n := int(data[0])%7 + 1
	data = data[1:]
	g := graph.New(n)
	for len(data) > 0 {
		if data[0] == 0xFF {
			return g, data[1:]
		}
		if len(data) < 3 {
			return g, nil
		}
		typ, u, v := int(data[0])%3, int(data[1])%n, int(data[2])%n
		data = data[3:]
		if u == v {
			continue
		}
		switch typ {
		case 0:
			g.AddConflict(u, v)
		case 1:
			g.AddStitch(u, v)
		case 2:
			g.AddFriend(u, v)
		}
	}
	return g, nil
}

// permFromBytes derives a deterministic permutation of 0..n-1 from fuzz
// bytes (xorshift-driven Fisher–Yates, seeded by folding the bytes in).
func permFromBytes(b []byte, n int) []int {
	x := uint32(2463534242)
	for _, c := range b {
		x = (x ^ uint32(c)) * 2654435761
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		j := int(x % uint32(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// isomorphicBruteForce is the ground-truth oracle: try every permutation
// of g1's vertices and test whether it maps g1's edge sets onto g2's,
// using the byte encoding as the equality judge. Only called for n ≤ 7.
func isomorphicBruteForce(g1, g2 *graph.Graph) bool {
	if g1.N() != g2.N() {
		return false
	}
	enc2 := canon.Encode(g2)
	n := g1.N()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	var try func(k int) bool
	try = func(k int) bool {
		if k == n {
			return bytes.Equal(canon.EncodeRelabeled(g1, perm), enc2)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if try(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return try(0)
}

// seedPair encodes two graphs back to back in decodeGraph's byte format.
func seedPair(n1 int, edges1 [][3]int, n2 int, edges2 [][3]int) []byte {
	var b []byte
	emit := func(n int, edges [][3]int) {
		b = append(b, byte(n-1)) // (n-1)%7+1 == n for n ≤ 7
		for _, e := range edges {
			b = append(b, byte(e[0]), byte(e[1]), byte(e[2]))
		}
		b = append(b, 0xFF)
	}
	emit(n1, edges1)
	emit(n2, edges2)
	return b
}

// FuzzCanonicalForm drives two byte-decoded graphs and a byte-derived
// relabeling through Canonicalize and checks, against a brute-force
// isomorphism oracle, that the canonical identity is exactly isomorphism:
// never split by relabeling, never conflated by a fingerprint collision.
func FuzzCanonicalForm(f *testing.F) {
	// The engineered fingerprint collision: a 6-cycle vs two triangles
	// (identical WL profiles, non-isomorphic). Only the exact canonical
	// form separates them.
	f.Add(seedPair(6,
		[][3]int{{0, 0, 1}, {0, 1, 2}, {0, 2, 3}, {0, 3, 4}, {0, 4, 5}, {0, 5, 0}},
		6,
		[][3]int{{0, 0, 1}, {0, 1, 2}, {0, 2, 0}, {0, 3, 4}, {0, 4, 5}, {0, 5, 3}}))
	// An isomorphic pair under a nontrivial relabeling, with mixed edge
	// types: a conflict path 0-1-2 with a stitch pendant, twice.
	f.Add(seedPair(4,
		[][3]int{{0, 0, 1}, {0, 1, 2}, {1, 2, 3}, {2, 0, 3}},
		4,
		[][3]int{{0, 3, 2}, {0, 2, 1}, {1, 1, 0}, {2, 3, 0}}))
	// A K5 cross — the native QP conflict shape.
	f.Add(seedPair(5,
		[][3]int{{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}, {0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {0, 2, 3}, {0, 2, 4}, {0, 3, 4}},
		1, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		g1, rest := decodeGraph(data)
		g2, rest2 := decodeGraph(rest)

		f1 := canon.Canonicalize(g1)
		checkCertificate(t, g1, f1)
		if !f1.Exact {
			t.Fatalf("n=%d piece bailed within budget", g1.N())
		}

		// Relabeling invariance on g1.
		perm := permFromBytes(rest2, g1.N())
		h := relabel(g1, perm)
		fh := canon.Canonicalize(h)
		checkCertificate(t, h, fh)
		if f1.Fingerprint != fh.Fingerprint || !bytes.Equal(f1.Canon, fh.Canon) {
			t.Fatalf("canonical identity changed under relabeling %v", perm)
		}

		// Canonical identity ⟺ isomorphism, judged by brute force.
		f2 := canon.Canonicalize(g2)
		checkCertificate(t, g2, f2)
		iso := isomorphicBruteForce(g1, g2)
		formsEqual := bytes.Equal(f1.Canon, f2.Canon)
		if iso != formsEqual {
			t.Fatalf("canonical identity disagrees with isomorphism oracle: iso=%v formsEqual=%v (fp %x vs %x)",
				iso, formsEqual, f1.Fingerprint, f2.Fingerprint)
		}
		if iso && f1.Fingerprint != f2.Fingerprint {
			t.Fatalf("isomorphic pair with unequal fingerprints")
		}
	})
}
