package canon_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mpl/internal/canon"
	"mpl/internal/core"
	"mpl/internal/geom"
	"mpl/internal/graph"
	"mpl/internal/layout"
	"mpl/internal/synth"
)

// relabel builds the graph isomorphic to g under perm (vertex v of g
// becomes vertex perm[v]), with insertion order shuffled by the permutation
// so adjacency-list order differs too.
func relabel(g *graph.Graph, perm []int) *graph.Graph {
	h := graph.New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, w := range g.ConflictNeighbors(u) {
			if int(w) > u {
				h.AddConflict(perm[u], perm[int(w)])
			}
		}
		for _, w := range g.StitchNeighbors(u) {
			if int(w) > u {
				h.AddStitch(perm[u], perm[int(w)])
			}
		}
		for _, w := range g.FriendNeighbors(u) {
			if int(w) > u {
				h.AddFriend(perm[u], perm[int(w)])
			}
		}
	}
	return h
}

// components extracts every connected component of a layout's
// decomposition graph as its own graph.
func components(t *testing.T, l *layout.Layout) []*graph.Graph {
	t.Helper()
	dg, err := core.BuildGraph(l, core.BuildOptions{})
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	var out []*graph.Graph
	for _, comp := range dg.G.Components() {
		sub, _ := dg.G.Subgraph(comp)
		out = append(out, sub)
	}
	return out
}

// checkCertificate verifies a Form against the graph it came from: the
// permutation is a bijection and actually reproduces Canon.
func checkCertificate(t *testing.T, g *graph.Graph, f canon.Form) {
	t.Helper()
	if f.N != g.N() {
		t.Fatalf("Form.N = %d, graph has %d vertices", f.N, g.N())
	}
	if len(f.Perm) != g.N() {
		t.Fatalf("len(Perm) = %d, want %d", len(f.Perm), g.N())
	}
	seen := make([]bool, g.N())
	for _, p := range f.Perm {
		if p < 0 || int(p) >= g.N() || seen[p] {
			t.Fatalf("Perm is not a bijection: %v", f.Perm)
		}
		seen[p] = true
	}
	if !f.Exact {
		return
	}
	if got := canon.EncodeRelabeled(g, f.Perm); !bytes.Equal(got, f.Canon) {
		t.Fatalf("EncodeRelabeled(g, Perm) != Canon\n got %x\nwant %x", got, f.Canon)
	}
}

// TestCanonicalFormRelabelingInvariant is the core property: over 200
// seeded random layouts, every solver piece's canonical form is invariant
// under a random relabeling of its vertices, and the budget-bail decision
// (Exact) is the same for both labelings.
func TestCanonicalFormRelabelingInvariant(t *testing.T) {
	cases := 200
	if testing.Short() {
		cases = 40
	}
	for seed := 0; seed < cases; seed++ {
		l := synth.Random(int64(seed))
		for ci, g := range components(t, l) {
			f := canon.Canonicalize(g)
			checkCertificate(t, g, f)

			rng := rand.New(rand.NewSource(int64(seed)*1009 + int64(ci)))
			perm := rng.Perm(g.N())
			h := relabel(g, perm)
			fh := canon.Canonicalize(h)
			checkCertificate(t, h, fh)

			if f.Fingerprint != fh.Fingerprint {
				t.Fatalf("seed %d comp %d: fingerprint changed under relabeling: %x vs %x",
					seed, ci, f.Fingerprint, fh.Fingerprint)
			}
			if f.Exact != fh.Exact {
				t.Fatalf("seed %d comp %d: budget bail is label-dependent (%v vs %v)",
					seed, ci, f.Exact, fh.Exact)
			}
			if f.Exact && !bytes.Equal(f.Canon, fh.Canon) {
				t.Fatalf("seed %d comp %d: canonical form changed under relabeling", seed, ci)
			}
		}
	}
}

// shapeKeys returns the sorted multiset of canonical identities of a
// layout's components.
func shapeKeys(t *testing.T, l *layout.Layout) []string {
	t.Helper()
	var keys []string
	for _, g := range components(t, l) {
		f := canon.Canonicalize(g)
		keys = append(keys, fmt.Sprintf("%d:%x:%x", f.N, f.Fingerprint, f.Key(canon.Encode(g))))
	}
	sort.Strings(keys)
	return keys
}

// TestCanonicalFormTranslationInvariant: translating a layout's geometry
// leaves the multiset of component canonical forms unchanged — the
// property that makes repeated standard cells share cache entries.
func TestCanonicalFormTranslationInvariant(t *testing.T) {
	cases := 60
	if testing.Short() {
		cases = 15
	}
	for seed := 0; seed < cases; seed++ {
		l := synth.Random(int64(seed))
		moved := layout.New(l.Name + "-moved")
		dx, dy := 7_340, 12_660 // deliberately not grid-aligned multiples
		for _, pg := range l.Features {
			var rects []geom.Rect
			for _, r := range pg.Rects {
				rects = append(rects, geom.Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy})
			}
			moved.Add(geom.NewPolygon(rects...))
		}
		a, b := shapeKeys(t, l), shapeKeys(t, moved)
		if len(a) != len(b) {
			t.Fatalf("seed %d: component count changed under translation: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: shape multiset changed under translation:\n %s\nvs\n %s", seed, a[i], b[i])
			}
		}
	}
}

// sixCycle and twoTriangles have identical degree sequences and WL color
// partitions (every vertex: 2 conflict neighbors of the same class), so
// their fingerprints collide by construction — only the exact canonical
// form tells them apart. This is the pair that seeds the fuzz corpus.
func sixCycle() *graph.Graph {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddConflict(i, (i+1)%6)
	}
	return g
}

func twoTriangles() *graph.Graph {
	g := graph.New(6)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddConflict(2, 0)
	g.AddConflict(3, 4)
	g.AddConflict(4, 5)
	g.AddConflict(5, 3)
	return g
}

// TestFingerprintCollisionCaughtByExactCheck pins that the fingerprint is
// deliberately weaker than the canonical form: C6 and 2×C3 collide in
// fingerprint but have distinct canonical forms, so a cache keyed by
// Form.Key can never conflate them.
func TestFingerprintCollisionCaughtByExactCheck(t *testing.T) {
	c6, tt := sixCycle(), twoTriangles()
	fc, ft := canon.Canonicalize(c6), canon.Canonicalize(tt)
	if fc.Fingerprint != ft.Fingerprint {
		t.Fatalf("expected engineered fingerprint collision, got %x vs %x", fc.Fingerprint, ft.Fingerprint)
	}
	if !fc.Exact || !ft.Exact {
		t.Fatalf("6-vertex graphs must canonicalize exactly (Exact %v, %v)", fc.Exact, ft.Exact)
	}
	if bytes.Equal(fc.Canon, ft.Canon) {
		t.Fatalf("non-isomorphic graphs share a canonical form")
	}
}

// TestCanonicalFormsDistinguishNonIsomorphic: across the whole random
// corpus, byte-equal canonical forms only ever pair pieces with identical
// vertex and edge counts (a cheap necessary condition for isomorphism) —
// and decoding the canonical form itself must reproduce those counts.
func TestCanonicalFormsDistinguishNonIsomorphic(t *testing.T) {
	cases := 80
	if testing.Short() {
		cases = 20
	}
	type profile struct{ n, conf, stit int }
	byCanon := map[string]profile{}
	for seed := 0; seed < cases; seed++ {
		for _, g := range components(t, synth.Random(int64(seed))) {
			f := canon.Canonicalize(g)
			if !f.Exact {
				continue
			}
			p := profile{g.N(), g.ConflictEdgeCount(), g.StitchEdgeCount()}
			if prev, ok := byCanon[string(f.Canon)]; ok && prev != p {
				t.Fatalf("canonical form collision across distinct profiles: %+v vs %+v", prev, p)
			}
			byCanon[string(f.Canon)] = p
		}
	}
	if len(byCanon) < 2 {
		t.Fatalf("corpus degenerate: only %d distinct shapes", len(byCanon))
	}
}
