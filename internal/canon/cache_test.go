package canon_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"mpl/internal/canon"
)

func TestShapeCacheHitRequiresExactEncoding(t *testing.T) {
	c := canon.NewShapeCache(8)
	ctx := context.Background()
	colors, st := c.Acquire(ctx, "class-a", []byte("enc-1"))
	if st != canon.Owner || colors != nil {
		t.Fatalf("first Acquire: got (%v, %v), want (nil, Owner)", colors, st)
	}
	c.Finish("class-a", []byte("enc-1"), []int{0, 1, 2})

	colors, st = c.Acquire(ctx, "class-a", []byte("enc-1"))
	if st != canon.Hit || len(colors) != 3 {
		t.Fatalf("same encoding: got (%v, %v), want stored Hit", colors, st)
	}

	// Same class, different labeled encoding: must solve, not hit.
	colors, st = c.Acquire(ctx, "class-a", []byte("enc-2"))
	if st != canon.Owner {
		t.Fatalf("sibling encoding: got state %v, want Owner", st)
	}
	c.Finish("class-a", []byte("enc-2"), []int{2, 1, 0})
	if c.Len() != 1 {
		t.Fatalf("sibling encodings must share one class entry, have %d", c.Len())
	}
}

func TestShapeCacheFinishNilReleasesWithoutStoring(t *testing.T) {
	c := canon.NewShapeCache(8)
	ctx := context.Background()
	if _, st := c.Acquire(ctx, "k", []byte("e")); st != canon.Owner {
		t.Fatalf("want Owner, got %v", st)
	}
	c.Finish("k", []byte("e"), nil)
	if c.Len() != 0 {
		t.Fatalf("nil Finish stored an entry")
	}
	if _, st := c.Acquire(ctx, "k", []byte("e")); st != canon.Owner {
		t.Fatalf("after nil Finish the next caller must own the flight, got %v", st)
	}
	c.Finish("k", []byte("e"), []int{1})
}

func TestShapeCacheLRUEviction(t *testing.T) {
	c := canon.NewShapeCache(2)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if _, st := c.Acquire(ctx, k, []byte(k)); st != canon.Owner {
			t.Fatalf("key %q: want Owner, got %v", k, st)
		}
		c.Finish(k, []byte(k), []int{0})
	}
	if c.Len() != 2 {
		t.Fatalf("cache exceeded bound: %d classes", c.Len())
	}
	// "a" was least recently used and must be gone; "c" must still hit.
	if _, st := c.Acquire(ctx, "a", []byte("a")); st != canon.Owner {
		t.Fatalf("evicted key: want Owner, got %v", st)
	}
	c.Finish("a", []byte("a"), nil)
	if _, st := c.Acquire(ctx, "c", []byte("c")); st != canon.Hit {
		t.Fatalf("recent key evicted")
	}
}

// TestShapeCacheSingleFlight: N concurrent acquirers of one encoding
// produce exactly one owner; every waiter gets the owner's colors.
func TestShapeCacheSingleFlight(t *testing.T) {
	c := canon.NewShapeCache(8)
	ctx := context.Background()
	const n = 16
	var owners atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			colors, st := c.Acquire(ctx, "hot", []byte("enc"))
			switch st {
			case canon.Owner:
				owners.Add(1)
				c.Finish("hot", []byte("enc"), []int{7})
			case canon.Hit:
				if len(colors) != 1 || colors[0] != 7 {
					t.Errorf("hit returned wrong colors %v", colors)
				}
			default:
				t.Errorf("unexpected state %v", st)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := owners.Load(); got != 1 {
		t.Fatalf("%d owners for one hot shape, want 1", got)
	}
}

// TestShapeCacheBypassOnCancelledWait: a waiter whose context dies while
// another flight is in progress bypasses rather than blocking.
func TestShapeCacheBypassOnCancelledWait(t *testing.T) {
	c := canon.NewShapeCache(8)
	if _, st := c.Acquire(context.Background(), "k", []byte("e")); st != canon.Owner {
		t.Fatalf("want Owner, got %v", st)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, st := c.Acquire(ctx, "k", []byte("e")); st != canon.Bypass {
		t.Fatalf("cancelled waiter: want Bypass, got %v", st)
	}
	c.Finish("k", []byte("e"), []int{1})
}
