// Shape cache: a bounded, single-flight store of solved color assignments
// keyed by canonical form.
//
// Identity is two-level. The outer key (options signature + Form.Key) names
// an isomorphism class under one solver configuration; inside a class,
// representatives are keyed by the piece's exact labeled encoding. A hit is
// served only for a byte-identical labeled encoding: the engines break ties
// by vertex index, so they are not equivariant under relabeling, and
// serving a differently-labeled twin's colors through the vertex mapping
// could differ from what a memo-off solve of this piece would have
// produced. Byte-equal encodings, by contrast, drive the deterministic
// solver identically, so replaying a stored representative is exact
// (DESIGN.md §11). The canonical class still earns its keep: it is the
// granularity of single-flight, LRU accounting and the Distinct counter,
// and the unit a future cluster-wide store would ship.
//
// Colors are stored in canonical-label space (stored[Perm[v]] = colors[v])
// and rehydrated through the reader's own Perm; for byte-identical
// encodings the deterministic canonical search yields the identical Perm,
// so the round trip is exact. Storing canonical-space colors keeps every
// representative of a class directly comparable — the invariant the
// equivalence tests exercise.
package canon

import (
	"container/list"
	"context"
	"sync"
)

// State reports how an Acquire resolved.
type State int

const (
	// Hit: the returned colors are a cached solution for this exact
	// labeled encoding. The slice is shared and must not be written.
	Hit State = iota
	// Owner: the caller must solve the piece and then call Finish
	// (with the solved colors, or nil to release without storing).
	Owner
	// Bypass: the context died while waiting on another solver's flight;
	// the caller should solve locally and not call Finish.
	Bypass
)

// maxRepsPerClass bounds the labeled representatives retained per
// isomorphism class. Repeated standard cells produce a handful of distinct
// labelings per shape (one per fragment-numbering order the builder can
// emit); anything beyond this is solved without being stored.
const maxRepsPerClass = 8

// classEntry is one isomorphism class's cache line.
type classEntry struct {
	key  string
	elem *list.Element
	// reps maps a labeled encoding to its canonical-space colors. Values
	// are immutable once stored; the map is only read via keyed lookups,
	// never ranged, so it cannot leak iteration order.
	reps map[string][]int
}

// flight is an in-progress solve of some representative of a class.
type flight struct {
	done chan struct{}
}

// ShapeCache is a process-wide, bounded, single-flight shape store. The
// zero value is not usable; call NewShapeCache.
type ShapeCache struct {
	mu      sync.Mutex
	classes map[string]*classEntry // guarded by mu
	order   *list.List             // guarded by mu; front = most recently used
	flights map[string]*flight     // guarded by mu
	max     int                    // guarded by mu; class-count bound
}

// NewShapeCache returns a cache bounded to maxClasses isomorphism classes
// (LRU-evicted beyond that).
func NewShapeCache(maxClasses int) *ShapeCache {
	if maxClasses < 1 {
		maxClasses = 1
	}
	return &ShapeCache{
		classes: make(map[string]*classEntry),
		order:   list.New(),
		flights: make(map[string]*flight),
		max:     maxClasses,
	}
}

// Acquire looks up the class key and labeled encoding. On Hit the returned
// colors (canonical-space, shared, read-only) solve this encoding. On
// Owner the caller holds the class's single flight and must call Finish
// exactly once. On Bypass (context cancelled while another flight was in
// progress) the caller solves locally and must not call Finish. When a
// flight for the class completes without storing this encoding, waiters
// re-enter the loop and one becomes the next owner.
func (c *ShapeCache) Acquire(ctx context.Context, key string, enc []byte) ([]int, State) {
	for {
		c.mu.Lock()
		if e, ok := c.classes[key]; ok {
			if colors, ok := e.reps[string(enc)]; ok {
				c.order.MoveToFront(e.elem)
				c.mu.Unlock()
				return colors, Hit
			}
		}
		f, inFlight := c.flights[key]
		if !inFlight {
			c.flights[key] = &flight{done: make(chan struct{})}
			c.mu.Unlock()
			return nil, Owner
		}
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, Bypass
		}
	}
}

// Finish completes an Owner's flight. A non-nil colors slice (canonical
// space; ownership transfers to the cache) is stored for enc unless the
// class already holds maxRepsPerClass representatives; nil releases the
// flight without storing (degraded or cancelled solves must not populate
// the cache).
func (c *ShapeCache) Finish(key string, enc []byte, colors []int) {
	c.mu.Lock()
	if colors != nil {
		e, ok := c.classes[key]
		if !ok {
			e = &classEntry{key: key, reps: make(map[string][]int)}
			e.elem = c.order.PushFront(e)
			c.classes[key] = e
		} else {
			c.order.MoveToFront(e.elem)
		}
		if len(e.reps) < maxRepsPerClass {
			e.reps[string(enc)] = colors
		}
		c.evictLocked()
	}
	f := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if f != nil {
		close(f.done)
	}
}

// evictLocked drops least-recently-used classes until the bound holds.
//
//lint:holds mu
func (c *ShapeCache) evictLocked() {
	for len(c.classes) > c.max {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*classEntry)
		c.order.Remove(back)
		delete(c.classes, e.key)
	}
}

// Len reports the resident class count (test hook).
func (c *ShapeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.classes)
}
