// Package canon computes canonical forms of solver pieces so that
// components which are the same shape — equal up to vertex relabeling,
// which is what geometric translation of a repeated standard cell produces
// — can share one cached color assignment (DESIGN.md §11).
//
// The pipeline per piece is:
//
//  1. Encode: a deterministic byte serialization of the labeled graph
//     (vertex count plus sorted conflict/stitch/friend edge lists).
//  2. Fingerprint: a cheap isomorphism-invariant hash over the equilibrium
//     classes of one-dimensional Weisfeiler–Leman color refinement. Equal
//     shapes always fingerprint equal; unequal shapes may collide (the
//     canonical example — a 6-cycle versus two disjoint triangles — is a
//     committed fuzz corpus input), which is why the fingerprint is never
//     used as a cache identity on its own.
//  3. Canonicalize: an individualization–refinement search that produces
//     the lexicographically least relabeled encoding (the canonical form)
//     and the permutation reaching it. Two pieces are isomorphic iff their
//     canonical forms are byte-equal, so the exact check on fingerprint
//     collision is a bytes.Equal.
//
// The search visits the full branch tree with no pruning: the visited-node
// count is therefore a function of the isomorphism class alone, which makes
// the search-budget bail decision label-invariant — either every labeling
// of a shape gets an exact canonical form, or none does. A bailed Form
// falls back to the identity permutation with the labeled encoding as its
// cache key, which is still correct (merely less shared).
package canon

import (
	"bytes"
	"encoding/binary"
	"sort"

	"mpl/internal/graph"
)

const (
	// MaxVertices bounds the pieces the memoization layer considers at
	// all: larger pieces bypass the cache (solving them dwarfs any
	// canonicalization saving, and distinct huge shapes would only churn
	// the LRU).
	MaxVertices = 4096

	// searchBudget caps the individualization–refinement tree. Solver
	// pieces are small (division splits circuits into components, blocks
	// and GH fragments) and mostly rigid after refinement, so real shapes
	// discretize in a handful of nodes; the budget exists for adversarial
	// highly-symmetric inputs. Because the search never prunes, the node
	// count — and hence whether the budget trips — is label-invariant.
	searchBudget = 1 << 14
)

// Form is the canonical identity of one solver piece.
type Form struct {
	// Fingerprint is the WL-invariant hash: equal for isomorphic pieces,
	// probably unequal otherwise.
	Fingerprint uint64
	// N is the piece's vertex count.
	N int
	// Canon is the lexicographically least relabeled encoding, nil unless
	// Exact.
	Canon []byte
	// Perm maps piece labels to canonical labels: canonical vertex
	// Perm[v] is piece vertex v. Identity when !Exact.
	Perm []int32
	// Exact records whether the canonical search completed within budget.
	Exact bool
}

// Key returns the cache identity for a piece with this form and labeled
// encoding enc: the canonical form when the search completed (so every
// relabeling shares one entry), the labeled encoding otherwise.
func (f *Form) Key(enc []byte) []byte {
	if f.Exact {
		return f.Canon
	}
	return enc
}

// Encode serializes g with its own labeling. Byte-equal encodings are
// identical labeled graphs.
func Encode(g *graph.Graph) []byte {
	return EncodeRelabeled(g, identity(g.N()))
}

// EncodeRelabeled serializes g under the relabeling perm (vertex v becomes
// perm[v]): the vertex count followed by the sorted conflict, stitch and
// friend edge lists, all as uvarints. The encoding is a pure function of
// the relabeled edge sets, so two pieces have a common relabeled encoding
// iff they are isomorphic.
func EncodeRelabeled(g *graph.Graph, perm []int32) []byte {
	n := g.N()
	buf := make([]byte, 0, 16+8*(g.ConflictEdgeCount()+g.StitchEdgeCount()))
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = appendEdgeList(buf, g, perm, g.ConflictNeighbors)
	buf = appendEdgeList(buf, g, perm, g.StitchNeighbors)
	buf = appendEdgeList(buf, g, perm, g.FriendNeighbors)
	return buf
}

func appendEdgeList(buf []byte, g *graph.Graph, perm []int32, nbrs func(int) []int32) []byte {
	n := g.N()
	var pairs [][2]int32
	for u := 0; u < n; u++ {
		for _, w := range nbrs(u) {
			if int(w) <= u {
				continue // each undirected edge once
			}
			a, b := perm[u], perm[w]
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, [2]int32{a, b})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(p[0]))
		buf = binary.AppendUvarint(buf, uint64(p[1]))
	}
	return buf
}

func identity(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// Canonicalize computes g's Form. Always sets Fingerprint and N; sets
// Canon/Perm/Exact when the canonical search completes within budget.
func Canonicalize(g *graph.Graph) Form {
	n := g.N()
	f := Form{N: n}
	if n == 0 {
		f.Canon = Encode(g)
		f.Perm = []int32{}
		f.Exact = true
		return f
	}
	class, k := refineToEquilibrium(g, make([]int32, n))
	f.Fingerprint = fingerprint(g, class, k)
	if n > MaxVertices {
		f.Perm = identity(n)
		return f
	}
	s := &searcher{g: g, n: n, budget: searchBudget}
	s.search(class, k)
	if s.bailed {
		f.Perm = identity(n)
		return f
	}
	f.Canon = s.best
	f.Perm = s.bestPerm
	f.Exact = true
	return f
}

// refineToEquilibrium runs 1-WL color refinement from the initial classes
// until the partition stops splitting, returning dense equilibrium class
// ids and their count. Each round's signature for a vertex is its current
// class followed by the sorted class multisets of its conflict, stitch and
// friend neighborhoods; vertices are re-classed by the lexicographic rank
// of their signature. Signatures contain only class ids (label-invariant
// by induction from the uniform start), so the resulting partition and its
// class numbering are label-invariant too. Leading with the old class
// makes every round a refinement, so the class count is non-decreasing and
// equality between rounds is the fixpoint test.
func refineToEquilibrium(g *graph.Graph, class []int32) ([]int32, int) {
	n := g.N()
	sigs := make([][]int32, n)
	order := make([]int, n)
	prev := 0
	for {
		for v := 0; v < n; v++ {
			sig := sigs[v][:0]
			sig = append(sig, class[v], -1)
			sig = appendSortedClasses(sig, class, g.ConflictNeighbors(v))
			sig = append(sig, -1)
			sig = appendSortedClasses(sig, class, g.StitchNeighbors(v))
			sig = append(sig, -1)
			sig = appendSortedClasses(sig, class, g.FriendNeighbors(v))
			sigs[v] = sig
		}
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			return lessInt32s(sigs[order[i]], sigs[order[j]])
		})
		next := make([]int32, n)
		c := int32(-1)
		for i, v := range order {
			if i == 0 || !equalInt32s(sigs[v], sigs[order[i-1]]) {
				c++
			}
			next[v] = c
		}
		k := int(c) + 1
		class = next
		if k == prev || k == n {
			return class, k
		}
		prev = k
	}
}

func appendSortedClasses(sig []int32, class []int32, nbrs []int32) []int32 {
	start := len(sig)
	for _, w := range nbrs {
		sig = append(sig, class[w])
	}
	tail := sig[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return sig
}

func lessInt32s(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fingerprint hashes the label-invariant profile of the WL-equilibrium
// partition: vertex and edge counts plus, per class in class-id order
// (itself invariant), the class size and a member's per-edge-type degrees
// (identical across the class at equilibrium). FNV-1a over the values.
func fingerprint(g *graph.Graph, class []int32, k int) uint64 {
	n := g.N()
	nFriend := 0
	for v := 0; v < n; v++ {
		nFriend += len(g.FriendNeighbors(v))
	}
	size := make([]uint64, k)
	degC := make([]uint64, k)
	degS := make([]uint64, k)
	degF := make([]uint64, k)
	for v := 0; v < n; v++ {
		c := class[v]
		size[c]++
		degC[c] = uint64(len(g.ConflictNeighbors(v)))
		degS[c] = uint64(len(g.StitchNeighbors(v)))
		degF[c] = uint64(len(g.FriendNeighbors(v)))
	}
	h := fnvOffset
	h = fnvMix(h, uint64(n))
	h = fnvMix(h, uint64(g.ConflictEdgeCount()))
	h = fnvMix(h, uint64(g.StitchEdgeCount()))
	h = fnvMix(h, uint64(nFriend/2))
	for c := 0; c < k; c++ {
		h = fnvMix(h, size[c])
		h = fnvMix(h, degC[c])
		h = fnvMix(h, degS[c])
		h = fnvMix(h, degF[c])
	}
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one value into an FNV-1a style accumulator (value-at-a-time
// rather than byte-at-a-time; the stream of values is self-delimiting
// because the class count is mixed in via n and the fixed 4-per-class
// layout).
func fnvMix(h, v uint64) uint64 {
	return (h ^ v) * fnvPrime
}

// searcher runs the individualization–refinement search for the
// lexicographically least relabeled encoding.
type searcher struct {
	g        *graph.Graph
	n        int
	nodes    int
	budget   int
	bailed   bool
	best     []byte
	bestPerm []int32
}

// search explores one node of the branch tree: at a discrete partition
// (every class a singleton) the class assignment is itself the candidate
// permutation; otherwise it individualizes each vertex of the first
// non-singleton cell in turn and recurses on the refined partition.
// Deliberately no pruning — a pruned search's node count would depend on
// which labeling found the eventual minimum first, making the budget bail
// label-dependent (see the package comment).
func (s *searcher) search(class []int32, k int) {
	if s.bailed {
		return
	}
	s.nodes++
	if s.nodes > s.budget {
		s.bailed = true
		return
	}
	if k == s.n {
		enc := EncodeRelabeled(s.g, class)
		if s.best == nil || bytes.Compare(enc, s.best) < 0 {
			s.best = enc
			s.bestPerm = append([]int32(nil), class...)
		}
		return
	}
	size := make([]int32, k)
	for _, c := range class {
		size[c]++
	}
	target := int32(-1)
	for c := int32(0); c < int32(k); c++ {
		if size[c] > 1 {
			target = c
			break
		}
	}
	for v := 0; v < s.n; v++ {
		if class[v] != target {
			continue
		}
		// Individualize v: split it off below its cell-mates, keeping all
		// other class orderings intact, then re-refine.
		nc := make([]int32, s.n)
		for w := range nc {
			nc[w] = class[w] * 2
		}
		nc[v] = class[v]*2 - 1
		rc, rk := refineToEquilibrium(s.g, nc)
		s.search(rc, rk)
		if s.bailed {
			return
		}
	}
}
