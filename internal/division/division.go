// Package division implements the graph-division pipeline of Section 4 of
// the DAC'14 paper. Color assignment is exponential in the worst case, so
// the decomposition graph is shrunk before any solver runs:
//
//  1. independent component computation — each connected component is
//     processed separately;
//  2. iterative removal of vertices with conflict degree < K (and stitch
//     degree < 2), which can always be re-colored legally afterwards;
//  3. 2-vertex-connected (biconnected) component computation — blocks meet
//     only at articulation vertices, and a color rotation aligns each block
//     to the already-colored cut vertex;
//  4. GH-tree based (K−1)-cut removal (Section 4.1, Algorithm 3) — tree
//     edges with weight < K split the block into pieces joined by fewer
//     than K conflict edges; after independent coloring, each piece is
//     rotated so that no cut edge becomes a conflict (Lemma 1 guarantees a
//     safe rotation exists; Theorem 2 generalizes to any K).
//
// The pipeline is solver-agnostic: any function that colors one connected
// component can be plugged in, which is how the ILP / SDP / linear engines
// of the paper's Tables 1–2 share identical division treatment.
//
// In stage terms (internal/pipeline), this package implements the middle
// of the flow: step 2 is the Simplify stage, steps 1, 3 and 4 are the
// Partition stage, each solver call is one Dispatch, and every reassembly
// action — block rotations, GH cut rotations, peel-stack pops — is the
// Stitch stage. Per-stage wall time is tallied into Stats.Stages (summed
// across workers like every other Stats field), and each worker threads a
// pipeline.Scratch arena into its solver calls so engines reuse hot-path
// buffers instead of re-allocating them per piece.
package division

import (
	"context"
	"sort"
	"sync"
	"time"

	"mpl/internal/coloring"
	"mpl/internal/ghtree"
	"mpl/internal/graph"
	"mpl/internal/pipeline"
)

// Solver colors one connected decomposition (sub)graph with K colors,
// returning one color in [0, K) per vertex. The scratch arena is the
// calling worker's (nil-safe, single-goroutine); engines carve reusable
// workspace from it and must not retain carved buffers past the call's
// consumption — see pipeline.Scratch.
type Solver func(g *graph.Graph, sc *pipeline.Scratch) []int

// Env is the cross-cutting pipeline machinery of one decomposition run:
// the scratch-buffer pool workers lease their arenas from and the shared
// parallelism budget the worker pool hands its idle slots back to (so
// nested engine fan-outs, like the SDP restart runners, can claim them).
// The zero value disables both — every buffer request allocates and
// nested parallelism never engages.
type Env = pipeline.Env

// Options controls which division techniques run. The zero value enables
// everything with the paper's parameters except K, which must be set.
type Options struct {
	// K is the number of masks.
	K int
	// Alpha is the stitch weight used when scoring reassembly rotations
	// and stack pops (paper: 0.1).
	Alpha float64
	// DisablePeeling skips low-degree vertex removal (ablation).
	DisablePeeling bool
	// DisableBiconnected skips the biconnected split (ablation).
	DisableBiconnected bool
	// DisableGHTree skips GH-tree (K−1)-cut division (ablation).
	DisableGHTree bool
	// GHTreeMaxN caps the component size for which a GH tree is built
	// (n−1 max-flows get expensive on huge blocks); 0 means 3000.
	GHTreeMaxN int
	// MaxStitchDegree bounds dstit for peeling; 0 means the paper's 2.
	MaxStitchDegree int
	// Workers sets the number of goroutines coloring independent
	// components concurrently; 0 or 1 means serial. Results are
	// deterministic regardless of worker count because components are
	// disjoint and each is solved from the same inputs — but the solver
	// must be safe for concurrent calls.
	Workers int
	// Linear tunes the linear-time engine used as the cancellation
	// fallback, so degraded pieces honor the same heuristic settings as a
	// configured AlgLinear run. A zero value means K/Alpha with the
	// paper's defaults.
	Linear coloring.LinearOptions
}

func (o Options) withDefaults() Options {
	if o.K < 2 {
		panic("division: K must be >= 2")
	}
	if o.GHTreeMaxN == 0 {
		o.GHTreeMaxN = 3000
	}
	if o.MaxStitchDegree == 0 {
		o.MaxStitchDegree = 2
	}
	o.Linear.K = o.K
	if o.Linear.Alpha == 0 {
		o.Linear.Alpha = o.Alpha
	}
	return o
}

// Stats reports how much structure the pipeline exposed.
type Stats struct {
	Components   int // independent components
	Peeled       int // vertices removed by low-degree peeling
	Blocks       int // biconnected blocks solved
	GHComponents int // pieces created by (K−1)-cut removal
	SolverCalls  int // invocations of the underlying solver
	Fallbacks    int // pieces colored by the linear fallback after cancellation

	// Engines is the per-engine dispatch histogram: how many pieces each
	// named engine colored. The pipeline itself records only "fallback"
	// (the cancellation path of callSolver); the portfolio dispatcher in
	// internal/core fills in the engine names it routed pieces to, so a
	// fixed-engine run shows one bucket, an auto/race run shows the mix.
	// Lazily allocated — a Stats with no dispatches has a nil map.
	Engines map[string]int

	// Stages is the per-stage telemetry of the run, keyed by the
	// pipeline.Stage* names. This package tallies the stages it owns
	// (simplify, partition, dispatch, stitch; wall summed across workers,
	// like SolverTime); internal/core folds in the build and merge stages
	// around it. Lazily allocated, merged across workers like Engines.
	Stages map[string]pipeline.StageStats

	// Shapes reports the canonical-shape memoization counters of the run
	// (internal/canon, Options.Memoize). Like Engines, the counters are
	// produced by the dispatcher in internal/core — this package never
	// touches them — and arrive after the division finishes; worker-level
	// Stats always carry zeros here.
	Shapes ShapeStats

	// Balance is the dispatch-imbalance gauge of the run: the busy-time
	// extremes of the worker pool. A max/min ratio near 1 means LPT
	// scheduling kept the pool saturated; a large ratio means one
	// straggler component dominated the wall clock (which is exactly when
	// the shared parallelism budget lets that component's SDP restarts
	// fan out over the idle workers).
	Balance Balance
}

// Balance reports how evenly the parallel Dispatch fan-out loaded the
// worker pool. Unlike every other Stats field it merges by extremes, not
// sums: each worker contributes its own total busy time, and the
// aggregate keeps the max and the min observed.
type Balance struct {
	// Workers counts pool workers that processed at least one component
	// (a serial run reports 1). Workers that never received a job carry
	// no busy-time signal and are excluded.
	Workers int
	// MaxBusy and MinBusy are the busiest and least-busy workers' total
	// in-job wall time. Across runs (the service aggregate) they are the
	// lifetime extremes.
	MaxBusy time.Duration
	MinBusy time.Duration
}

// Merge folds another pool's (or worker's) balance into b, keeping the
// busy-time extremes: worker counts sum, MaxBusy/MinBusy stay the extremes
// observed. The zero value is the identity. The service aggregate uses the
// same rule, so /v1/stats reports lifetime extremes.
func (b *Balance) Merge(o Balance) {
	if o.Workers == 0 {
		return
	}
	if b.Workers == 0 {
		*b = o
		return
	}
	b.Workers += o.Workers
	if o.MaxBusy > b.MaxBusy {
		b.MaxBusy = o.MaxBusy
	}
	if o.MinBusy < b.MinBusy {
		b.MinBusy = o.MinBusy
	}
}

// ShapeStats counts canonical-shape cache traffic for one run: Hits is
// solver pieces answered from the cache, Misses is pieces that went to an
// engine (cache miss or memoization bypass), Distinct is the number of
// distinct shape identities the run touched.
type ShapeStats struct {
	Hits     int
	Misses   int
	Distinct int
}

// AddEngine accumulates n dispatches of the named engine into the
// histogram, allocating it on first use.
func (s *Stats) AddEngine(name string, n int) {
	if s.Engines == nil {
		s.Engines = make(map[string]int)
	}
	s.Engines[name] += n
}

// AddStage accumulates one timed region into the named stage bucket.
func (s *Stats) AddStage(name string, d time.Duration) {
	if s.Stages == nil {
		s.Stages = make(map[string]pipeline.StageStats, 8)
	}
	cur := s.Stages[name]
	cur.Wall += d
	cur.Calls++
	s.Stages[name] = cur
}

// addWorker accumulates one worker's per-component counters into s.
// Components is global (the component count, known before any worker runs)
// and is deliberately excluded. Every other field MUST be summed here —
// TestStatsMergeCoversAllFields enforces this by reflection, so a field
// added to Stats without a matching line below fails the suite instead of
// silently under-reporting in parallel runs.
func (s *Stats) addWorker(o Stats) {
	s.Peeled += o.Peeled
	s.Blocks += o.Blocks
	s.GHComponents += o.GHComponents
	s.SolverCalls += o.SolverCalls
	s.Fallbacks += o.Fallbacks
	for name, n := range o.Engines {
		s.AddEngine(name, n)
	}
	s.Stages = pipeline.MergeStages(s.Stages, o.Stages)
	s.Shapes.Hits += o.Shapes.Hits
	s.Shapes.Misses += o.Shapes.Misses
	s.Shapes.Distinct += o.Shapes.Distinct
	s.Balance.Merge(o.Balance)
}

// Decompose divides the graph, colors every piece with solve, and
// reassembles a full coloring.
func Decompose(g *graph.Graph, opts Options, solve Solver) ([]int, Stats) {
	return DecomposeContext(context.Background(), g, opts, solve)
}

// DecomposeContext is Decompose with cooperative cancellation. Every vertex
// still receives a valid color: pieces whose solve has not started when ctx
// is cancelled are colored by the linear-time heuristic (Algorithm 2)
// instead of the configured engine, and Stats.Fallbacks counts them. In
// parallel mode the worker pool drains its queued components the same way,
// so a cancelled call returns as soon as in-flight solver calls notice the
// cancellation rather than after the full queue is solved at full quality.
func DecomposeContext(ctx context.Context, g *graph.Graph, opts Options, solve Solver) ([]int, Stats) {
	return DecomposeEnv(ctx, g, opts, Env{}, solve)
}

// DecomposeEnv is DecomposeContext with an explicit pipeline environment:
// a scratch pool for per-worker engine arenas and the run's shared
// parallelism budget. Stats.Stages is tallied either way; the env only
// decides whether buffers are pooled and whether idle worker slots are
// handed to nested engine fan-outs.
func DecomposeEnv(ctx context.Context, g *graph.Graph, opts Options, env Env, solve Solver) ([]int, Stats) {
	opts = opts.withDefaults()
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = coloring.Uncolored
	}
	var st Stats
	tPart := time.Now()
	// Component discovery shards across the division worker pool on large
	// graphs (lock-free union-find over the CSR arenas); the result is
	// byte-identical to a serial scan at any worker count.
	comps := g.ComponentsWorkers(opts.Workers)
	// LPT (longest-processing-time-first) scheduling order for the parallel
	// pool: heaviest components first, sized by vertex count plus CSR
	// degree sum — a subgraph-free proxy for solve cost — with discovery
	// order breaking ties (stable sort), so a straggler component starts as
	// early as possible instead of arriving last into an otherwise-drained
	// pool. Computed inside the same Partition region as discovery so the
	// per-stage call structure stays identical at any worker count.
	var order []int
	if opts.Workers > 1 && len(comps) > 1 {
		order = make([]int, len(comps))
		weight := make([]int, len(comps))
		for ci, comp := range comps {
			w := len(comp)
			for _, v := range comp {
				w += g.ConflictDegree(v) + g.StitchDegree(v)
			}
			order[ci] = ci
			weight[ci] = w
		}
		sort.SliceStable(order, func(a, b int) bool { return weight[order[a]] > weight[order[b]] })
	}
	st.AddStage(pipeline.StagePartition, time.Since(tPart))
	st.Components = len(comps)
	if opts.Workers <= 1 {
		sc := env.Scratch.Get()
		defer env.Scratch.Put(sc)
		var busy time.Duration
		for _, comp := range comps {
			t0 := time.Now()
			sub, orig := subgraphTimed(g, comp, &st)
			subColors := decomposeComponent(ctx, sub, opts, solve, &st, sc)
			for i, v := range orig {
				colors[v] = subColors[i]
			}
			sc.PutInts(subColors)
			busy += time.Since(t0)
		}
		if len(comps) > 0 {
			st.Balance = Balance{Workers: 1, MaxBusy: busy, MinBusy: busy}
		}
		return colors, st
	}

	// Parallel mode: components are vertex-disjoint, so goroutines write
	// non-overlapping slices of colors; per-worker stats merge at the end.
	//
	// Components enter the (pre-filled, closed) jobs channel in the LPT
	// order computed above. Scheduling order is observably identical to
	// discovery order: each component is solved from the same inputs, the
	// writes are vertex-disjoint, and the per-worker stats merge the same
	// way regardless of which worker ran which job.
	type job struct{ comp []int }
	jobs := make(chan job, len(comps))
	if order != nil {
		for _, ci := range order {
			jobs <- job{comp: comps[ci]}
		}
	} else {
		for _, comp := range comps {
			jobs <- job{comp: comp}
		}
	}
	close(jobs)

	// Spare worker slots — workers this run will never spawn because there
	// are fewer components than Options.Workers — go straight to the shared
	// budget, where a huge component's SDP restart fan-out can claim them.
	spawn := opts.Workers
	if len(comps) < spawn {
		spawn = len(comps)
	}
	for w := spawn; w < opts.Workers; w++ {
		env.Budget.Free()
	}

	workerStats := make([]Stats, spawn)
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func(ws *Stats) {
			defer wg.Done()
			// The jobs channel is pre-filled and closed, so when this
			// worker's receive fails it is permanently idle: its slot
			// returns to the shared budget for nested fan-outs of the
			// still-running workers.
			defer env.Budget.Free()
			sc := env.Scratch.Get()
			defer env.Scratch.Put(sc)
			var busy time.Duration
			jobsRun := 0
			for j := range jobs {
				t0 := time.Now()
				sub, orig := subgraphTimed(g, j.comp, ws)
				subColors := decomposeComponent(ctx, sub, opts, solve, ws, sc)
				for i, v := range orig {
					colors[v] = subColors[i]
				}
				sc.PutInts(subColors)
				busy += time.Since(t0)
				jobsRun++
			}
			if jobsRun > 0 {
				ws.Balance = Balance{Workers: 1, MaxBusy: busy, MinBusy: busy}
			}
		}(&workerStats[w])
	}
	wg.Wait()
	for _, ws := range workerStats {
		st.addWorker(ws)
	}
	return colors, st
}

// subgraphTimed extracts an induced subgraph under the Partition stage
// clock (structural splitting is partition work wherever it happens).
func subgraphTimed(g *graph.Graph, vertices []int, st *Stats) (*graph.Graph, []int) {
	t0 := time.Now()
	sub, orig := g.Subgraph(vertices)
	st.AddStage(pipeline.StagePartition, time.Since(t0))
	return sub, orig
}

// callSolver invokes the engine for one piece unless ctx is already
// cancelled, in which case the linear-time heuristic colors it instead
// (the piece is connected, so quality degrades but validity never does).
// Either way the piece is one Dispatch-stage region.
func callSolver(ctx context.Context, g *graph.Graph, opts Options, solve Solver, st *Stats, sc *pipeline.Scratch) []int {
	t0 := time.Now()
	defer func() { st.AddStage(pipeline.StageDispatch, time.Since(t0)) }()
	select {
	case <-ctx.Done():
		st.Fallbacks++
		st.AddEngine("fallback", 1)
		return coloring.Linear(g, opts.Linear)
	default:
		st.SolverCalls++
		return solve(g, sc)
	}
}

// decomposeComponent handles one connected component: peel, solve the core
// (via biconnected + GH division), then pop the peel stack.
func decomposeComponent(ctx context.Context, g *graph.Graph, opts Options, solve Solver, st *Stats, sc *pipeline.Scratch) []int {
	n := g.N()
	colors := sc.Ints(n)
	for i := range colors {
		colors[i] = coloring.Uncolored
	}

	var stack, core []int
	if opts.DisablePeeling {
		core = make([]int, n)
		for i := range core {
			core[i] = i
		}
	} else {
		tSimp := time.Now()
		stack, core = g.PeelOrder(opts.K, opts.MaxStitchDegree, nil)
		st.AddStage(pipeline.StageSimplify, time.Since(tSimp))
		st.Peeled += len(stack)
	}

	if len(core) > 0 {
		coreSub, coreOrig := subgraphTimed(g, core, st)
		// Peeling can disconnect the core; re-split into components.
		tPart := time.Now()
		coreComps := coreSub.Components()
		st.AddStage(pipeline.StagePartition, time.Since(tPart))
		for _, cc := range coreComps {
			ccSub, ccOrig := subgraphTimed(coreSub, cc, st)
			ccColors := solveCore(ctx, ccSub, opts, solve, st, sc)
			for i, v := range ccOrig {
				colors[coreOrig[v]] = ccColors[i]
			}
			// Engine-returned slices are freshly allocated and consumed by
			// the copy above, so adopting them into the worker's freelist
			// is safe and lets the next piece reuse the memory.
			sc.PutInts(ccColors)
		}
	}

	// Pop the stack in reverse removal order; a conflict-free color always
	// exists (the peeling invariant), stitch cost breaks ties.
	tStitch := time.Now()
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		colors[v] = cheapestColor(g, colors, v, opts.K, opts.Alpha)
	}
	if len(stack) > 0 {
		st.AddStage(pipeline.StageStitch, time.Since(tStitch))
	}
	return colors
}

// solveCore applies the biconnected split to one connected core component.
func solveCore(ctx context.Context, g *graph.Graph, opts Options, solve Solver, st *Stats, sc *pipeline.Scratch) []int {
	if opts.DisableBiconnected {
		st.Blocks++
		return solveBlock(ctx, g, opts, solve, st, sc)
	}
	tPart := time.Now()
	blocks, _ := g.BiconnectedComponents()
	st.AddStage(pipeline.StagePartition, time.Since(tPart))
	if len(blocks) == 1 {
		st.Blocks++
		return solveBlock(ctx, g, opts, solve, st, sc)
	}

	n := g.N()
	colors := sc.Ints(n)
	for i := range colors {
		colors[i] = coloring.Uncolored
	}

	// Process blocks in an order where each new block shares at most one
	// already-colored vertex (BFS over the block-cut structure); rotate the
	// block's fresh coloring so that vertex matches.
	vertexBlocks := make(map[int][]int) // vertex -> block indices
	for bi, b := range blocks {
		for _, v := range b {
			vertexBlocks[v] = append(vertexBlocks[v], bi)
		}
	}
	done := make([]bool, len(blocks))
	queue := []int{0}
	done[0] = true
	for len(queue) > 0 {
		bi := queue[0]
		queue = queue[1:]
		st.Blocks++
		block := blocks[bi]
		bsub, borig := subgraphTimed(g, block, st)
		bcolors := solveBlock(ctx, bsub, opts, solve, st, sc)

		// Find the anchor: a vertex already colored by an earlier block.
		tStitch := time.Now()
		rot := 0
		for i, v := range borig {
			if colors[v] != coloring.Uncolored {
				rot = (colors[v] - bcolors[i]%opts.K + 2*opts.K) % opts.K
				break
			}
		}
		for i, v := range borig {
			if colors[v] == coloring.Uncolored {
				colors[v] = (bcolors[i] + rot) % opts.K
			}
		}
		sc.PutInts(bcolors)
		st.AddStage(pipeline.StageStitch, time.Since(tStitch))
		for _, v := range block {
			for _, nb := range vertexBlocks[v] {
				if !done[nb] {
					done[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return colors
}

// solveBlock applies GH-tree (K−1)-cut division to one biconnected block
// (Algorithm 3) and reassembles with color rotations.
func solveBlock(ctx context.Context, g *graph.Graph, opts Options, solve Solver, st *Stats, sc *pipeline.Scratch) []int {
	n := g.N()
	if opts.DisableGHTree || n > opts.GHTreeMaxN || n < 2 {
		return callSolver(ctx, g, opts, solve, st, sc)
	}
	tPart := time.Now()
	tr := ghtree.BuildFromConflictGraphScratch(ctx, g, sc)
	if tr == nil {
		// Cancelled during (or before) the n−1 max-flows: skip GH division
		// and let callSolver route the whole block to the linear fallback.
		st.AddStage(pipeline.StagePartition, time.Since(tPart))
		return callSolver(ctx, g, opts, solve, st, sc)
	}
	comps := tr.ComponentsBelowWeight(int64(opts.K))
	st.AddStage(pipeline.StagePartition, time.Since(tPart))
	if len(comps) == 1 {
		return callSolver(ctx, g, opts, solve, st, sc)
	}
	st.GHComponents += len(comps)

	colors := sc.Ints(n)
	for i := range colors {
		colors[i] = coloring.Uncolored
	}
	for _, comp := range comps {
		csub, corig := subgraphTimed(g, comp, st)
		// The piece may itself be disconnected once cut edges are ignored;
		// components inside it are solved independently (their relative
		// rotation is later fixed edge by edge).
		tSplit := time.Now()
		ccs := csub.Components()
		st.AddStage(pipeline.StagePartition, time.Since(tSplit))
		for _, cc := range ccs {
			ccSub, ccOrig := subgraphTimed(csub, cc, st)
			ccColors := callSolver(ctx, ccSub, opts, solve, st, sc)
			for i, v := range ccOrig {
				colors[corig[v]] = ccColors[i]
			}
			sc.PutInts(ccColors)
		}
	}

	// Color rotation (Lemma 1): for every removed tree edge, deepest
	// first, rotate the subtree side by the value that minimizes the cost
	// of the crossing edges. The cut-tree property bounds the crossing
	// conflict edges by K−1, so a conflict-free rotation always exists.
	tStitch := time.Now()
	ces := g.ConflictEdges()
	ses := g.StitchEdges()
	for _, cut := range tr.CutEdgesBelowWeight(int64(opts.K)) {
		mask := tr.SubtreeMask(cut.Child)
		bestRot, bestCost := 0, 1e18
		for r := 0; r < opts.K; r++ {
			cost := 0.0
			for _, e := range ces {
				if mask[e.U] != mask[e.V] {
					cu, cv := colors[e.U], colors[e.V]
					if mask[e.U] {
						cu = (cu + r) % opts.K
					} else {
						cv = (cv + r) % opts.K
					}
					if cu == cv {
						cost++
					}
				}
			}
			for _, e := range ses {
				if mask[e.U] != mask[e.V] {
					cu, cv := colors[e.U], colors[e.V]
					if mask[e.U] {
						cu = (cu + r) % opts.K
					} else {
						cv = (cv + r) % opts.K
					}
					if cu != cv {
						cost += opts.Alpha
					}
				}
			}
			if cost < bestCost-1e-12 {
				bestCost = cost
				bestRot = r
			}
		}
		if bestRot != 0 {
			for v := 0; v < n; v++ {
				if mask[v] {
					colors[v] = (colors[v] + bestRot) % opts.K
				}
			}
		}
	}
	st.AddStage(pipeline.StageStitch, time.Since(tStitch))
	return colors
}

// cheapestColor assigns v the color minimizing conflicts (then α-weighted
// stitches) against currently colored neighbors.
func cheapestColor(g *graph.Graph, colors []int, v, k int, alpha float64) int {
	bestCol, bestCost := 0, 1e18
	for c := 0; c < k; c++ {
		cost := 0.0
		for _, w := range g.ConflictNeighbors(v) {
			if colors[w] == c {
				cost++
			}
		}
		for _, w := range g.StitchNeighbors(v) {
			if colors[w] != coloring.Uncolored && colors[w] != c {
				cost += alpha
			}
		}
		if cost < bestCost-1e-12 {
			bestCost = cost
			bestCol = c
		}
	}
	return bestCol
}
