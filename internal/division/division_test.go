package division

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"mpl/internal/coloring"
	"mpl/internal/graph"
	"mpl/internal/pipeline"
)

// exactSolver is the reference per-component engine for the tests: full
// branch-and-bound on the component.
func exactSolver(k int, alpha float64) Solver {
	return func(g *graph.Graph, _ *pipeline.Scratch) []int {
		res := coloring.FromGraph(g).Backtrack(k, alpha, 0)
		return res.Colors
	}
}

// bruteForce enumerates all k^n colorings for the global optimum.
func bruteForce(g *graph.Graph, k int, alpha float64) (conf int, cost float64) {
	n := g.N()
	ces := g.ConflictEdges()
	ses := g.StitchEdges()
	colors := make([]int, n)
	bestCost := math.Inf(1)
	bestConf := -1
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c, s := 0, 0
			for _, e := range ces {
				if colors[e.U] == colors[e.V] {
					c++
				}
			}
			for _, e := range ses {
				if colors[e.U] != colors[e.V] {
					s++
				}
			}
			w := float64(c) + alpha*float64(s)
			if w < bestCost {
				bestCost = w
				bestConf = c
			}
			return
		}
		for c := 0; c < k; c++ {
			colors[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return bestConf, bestCost
}

func randomGraph(rng *rand.Rand, n, ce, se int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < ce; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasStitch(u, v) {
			g.AddConflict(u, v)
		}
	}
	for i := 0; i < se; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasConflict(u, v) && !g.HasStitch(u, v) {
			g.AddStitch(u, v)
		}
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	colors, st := Decompose(graph.New(0), Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
	if len(colors) != 0 || st.Components != 0 {
		t.Fatalf("empty = %v %+v", colors, st)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := graph.New(5)
	colors, st := Decompose(g, Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
	if err := coloring.Validate(g, colors, 4); err != nil {
		t.Fatal(err)
	}
	if st.Components != 5 {
		t.Fatalf("components = %d", st.Components)
	}
	// Isolated vertices peel away; the solver should never be called.
	if st.SolverCalls != 0 {
		t.Fatalf("solver calls = %d, want 0", st.SolverCalls)
	}
}

func TestFig5ThreeCutRotation(t *testing.T) {
	// Fig. 5: two triangles joined by the 3-cut (a-d, b-e, c-f). The prism
	// is 3-colorable, so with K=4 the result must have zero conflicts even
	// though the pieces are colored independently and reconnected by
	// rotation. Disable peeling so division actually exercises the GH path
	// (all prism vertices have degree 3 < 4 and would otherwise peel).
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}} {
		g.AddConflict(e[0], e[1])
	}
	opts := Options{K: 4, Alpha: 0.1, DisablePeeling: true}
	colors, st := Decompose(g, opts, exactSolver(4, 0.1))
	if err := coloring.Validate(g, colors, 4); err != nil {
		t.Fatal(err)
	}
	if c, _ := coloring.Count(g, colors); c != 0 {
		t.Fatalf("conflicts = %d, want 0 (colors %v)", c, colors)
	}
	if st.GHComponents == 0 {
		t.Fatalf("GH division did not trigger: %+v", st)
	}
}

func TestPeelingHandlesTree(t *testing.T) {
	// A path graph peels completely: zero solver calls, zero conflicts.
	g := graph.New(10)
	for i := 0; i < 9; i++ {
		g.AddConflict(i, i+1)
	}
	colors, st := Decompose(g, Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
	if c, _ := coloring.Count(g, colors); c != 0 {
		t.Fatalf("conflicts = %d", c)
	}
	if st.Peeled != 10 || st.SolverCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBiconnectedAlignment(t *testing.T) {
	// Two K5s sharing one articulation vertex. Each block needs 1 conflict
	// (K5 with 4 colors); the shared vertex must end with one consistent
	// color and total conflicts must be exactly 2.
	g := graph.New(9)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	second := []int{4, 5, 6, 7, 8} // vertex 4 shared
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(second[i], second[j])
		}
	}
	colors, st := Decompose(g, Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
	if err := coloring.Validate(g, colors, 4); err != nil {
		t.Fatal(err)
	}
	if c, _ := coloring.Count(g, colors); c != 2 {
		t.Fatalf("conflicts = %d, want 2", c)
	}
	if st.Blocks != 2 {
		t.Fatalf("blocks = %d, want 2 (%+v)", st.Blocks, st)
	}
}

// TestRotationNeverAddsConflict is the paper's Lemma 1 / Theorem 2 as a
// property test: with an exact per-piece solver, the divided solve reaches
// exactly the global optimum conflict count for K ∈ {4, 5, 6}.
func TestRotationNeverAddsConflict(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const alpha = 0.01
	for trial := 0; trial < 60; trial++ {
		k := 4 + rng.Intn(3)
		n := 4 + rng.Intn(5)
		g := randomGraph(rng, n, n+rng.Intn(2*n), rng.Intn(2))
		colors, _ := Decompose(g, Options{K: k, Alpha: alpha}, exactSolver(k, alpha))
		if err := coloring.Validate(g, colors, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gotConf, _ := coloring.Count(g, colors)
		wantConf, _ := bruteForce(g, k, alpha)
		if gotConf != wantConf {
			t.Fatalf("trial %d (k=%d, n=%d): division conflicts %d, optimum %d",
				trial, k, n, gotConf, wantConf)
		}
	}
}

func TestAblationSwitches(t *testing.T) {
	// All four technique combinations must produce valid colorings with
	// the same conflict count on a structured graph (two K5s + a bridge).
	g := graph.New(11)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
			g.AddConflict(5+i, 5+j)
		}
	}
	g.AddConflict(4, 10)
	g.AddConflict(10, 5)
	for _, opt := range []Options{
		{K: 4, Alpha: 0.1},
		{K: 4, Alpha: 0.1, DisablePeeling: true},
		{K: 4, Alpha: 0.1, DisableBiconnected: true},
		{K: 4, Alpha: 0.1, DisableGHTree: true},
		{K: 4, Alpha: 0.1, DisablePeeling: true, DisableBiconnected: true, DisableGHTree: true},
	} {
		colors, _ := Decompose(g, opt, exactSolver(4, 0.1))
		if err := coloring.Validate(g, colors, 4); err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		if c, _ := coloring.Count(g, colors); c != 2 {
			t.Fatalf("opts %+v: conflicts = %d, want 2", opt, c)
		}
	}
}

func TestGHTreeMaxNCap(t *testing.T) {
	// With the cap below the component size, GH division is skipped and the
	// solver sees the whole block.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}} {
		g.AddConflict(e[0], e[1])
	}
	opts := Options{K: 4, Alpha: 0.1, DisablePeeling: true, GHTreeMaxN: 2}
	var maxSeen int
	solver := func(sub *graph.Graph, sc *pipeline.Scratch) []int {
		if sub.N() > maxSeen {
			maxSeen = sub.N()
		}
		return exactSolver(4, 0.1)(sub, sc)
	}
	if _, st := Decompose(g, opts, solver); st.GHComponents != 0 {
		t.Fatalf("GH ran despite cap: %+v", st)
	}
	if maxSeen != 6 {
		t.Fatalf("solver saw max %d vertices, want whole block 6", maxSeen)
	}
}

func TestStitchEdgesSurviveDivision(t *testing.T) {
	// Stitch-linked vertices in different GH pieces: rotation scoring must
	// prefer matching them when conflict-free.
	g := graph.New(4)
	g.AddConflict(0, 1)
	g.AddConflict(2, 3)
	g.AddStitch(1, 2)
	colors, _ := Decompose(g, Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
	c, s := coloring.Count(g, colors)
	if c != 0 || s != 0 {
		t.Fatalf("conflicts=%d stitches=%d colors=%v, want clean", c, s, colors)
	}
}

func TestBadKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	Decompose(graph.New(1), Options{K: 0}, exactSolver(4, 0.1))
}

func TestParallelMatchesSerial(t *testing.T) {
	// Workers > 1 must produce the identical coloring and merged stats as
	// the serial pipeline (components are independent and the solver is
	// deterministic).
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(60)
		g := randomGraph(rng, n, n, n/4)
		serial, sst := Decompose(g, Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
		par, pst := Decompose(g, Options{K: 4, Alpha: 0.1, Workers: 4}, exactSolver(4, 0.1))
		for v := range serial {
			if serial[v] != par[v] {
				t.Fatalf("trial %d: vertex %d: serial %d, parallel %d", trial, v, serial[v], par[v])
			}
		}
		if !statsEqualIgnoringTime(sst, pst) {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, sst, pst)
		}
	}
}

func TestParallelRace(t *testing.T) {
	// Exercised under -race: many small components, several workers.
	g := graph.New(400)
	for i := 0; i < 400; i += 4 {
		g.AddConflict(i, i+1)
		g.AddConflict(i+1, i+2)
		g.AddConflict(i+2, i+3)
		g.AddConflict(i+3, i)
	}
	colors, st := Decompose(g, Options{K: 4, Alpha: 0.1, Workers: 8}, exactSolver(4, 0.1))
	if err := coloring.Validate(g, colors, 4); err != nil {
		t.Fatal(err)
	}
	if st.Components != 100 {
		t.Fatalf("components = %d", st.Components)
	}
}

func TestLPTDispatchMatchesDiscoveryOrder(t *testing.T) {
	// Size-aware (LPT) dispatch only reorders which worker solves which
	// component when; the coloring written back must stay byte-identical to
	// the serial, discovery-ordered run at every worker count. The graph is
	// built so LPT genuinely disagrees with discovery order: the components
	// appear smallest-first, so the descending-weight sort reverses the job
	// sequence entirely.
	g := graph.New(0)
	addChain := func(n int) {
		first := g.AddVertex()
		prev := first
		for i := 1; i < n; i++ {
			v := g.AddVertex()
			g.AddConflict(prev, v)
			prev = v
		}
		g.AddStitch(first, prev)
	}
	for _, size := range []int{2, 2, 2, 3, 4, 6, 9, 14, 21, 40} {
		addChain(size)
	}
	serial, _ := Decompose(g, Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
	for _, workers := range []int{1, 2, 8} {
		colors, st := Decompose(g, Options{K: 4, Alpha: 0.1, Workers: workers}, exactSolver(4, 0.1))
		for v := range serial {
			if colors[v] != serial[v] {
				t.Fatalf("workers=%d: vertex %d: got %d, want %d", workers, v, colors[v], serial[v])
			}
		}
		// The imbalance gauge must be populated whenever components ran:
		// at least one worker busy, extremes ordered.
		if st.Balance.Workers < 1 || st.Balance.Workers > workers {
			t.Fatalf("workers=%d: Balance.Workers = %d", workers, st.Balance.Workers)
		}
		if st.Balance.MaxBusy < st.Balance.MinBusy || st.Balance.MinBusy < 0 {
			t.Fatalf("workers=%d: Balance extremes inverted: %+v", workers, st.Balance)
		}
	}
}

// statsEqualIgnoringTime compares two Stats up to wall-clock noise: all
// counters, histograms, and per-stage region *counts* must match (the
// stage structure is deterministic at any worker count), while stage wall
// times and allocation deltas — genuinely run-dependent — are ignored.
// Balance is ignored entirely: both its busy times and its worker count
// (how many pool workers won at least one job) depend on scheduling.
func statsEqualIgnoringTime(a, b Stats) bool {
	sa, sb := a, b
	sa.Stages, sb.Stages = nil, nil
	sa.Balance, sb.Balance = Balance{}, Balance{}
	if !reflect.DeepEqual(sa, sb) {
		return false
	}
	if len(a.Stages) != len(b.Stages) {
		return false
	}
	for name, av := range a.Stages {
		bv, ok := b.Stages[name]
		if !ok || av.Calls != bv.Calls {
			return false
		}
	}
	return true
}

// probeMapValue builds a "1 everywhere" probe for a Stats map value type:
// plain counters get 1, struct values (pipeline.StageStats) get every
// numeric field set to 1.
func probeMapValue(t *testing.T, elem reflect.Type) reflect.Value {
	t.Helper()
	switch elem.Kind() {
	case reflect.Int:
		return reflect.ValueOf(1).Convert(elem)
	case reflect.Struct:
		p := reflect.New(elem).Elem()
		for j := 0; j < p.NumField(); j++ {
			switch p.Field(j).Kind() {
			case reflect.Int, reflect.Int64:
				p.Field(j).SetInt(1)
			case reflect.Uint, reflect.Uint64:
				p.Field(j).SetUint(1)
			default:
				t.Fatalf("map value field %s has kind %s; teach this test how to probe it",
					elem.Field(j).Name, p.Field(j).Kind())
			}
		}
		return p
	default:
		t.Fatalf("map value kind %s unsupported; teach this test how to probe it", elem.Kind())
		return reflect.Value{}
	}
}

// checkMerged verifies a probed value doubled after two addWorker calls.
func checkMerged(t *testing.T, field string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Int, reflect.Int64:
		if v.Int() != 2 {
			t.Errorf("Stats field %s is not merged by addWorker; parallel runs would under-report it", field)
		}
	case reflect.Uint, reflect.Uint64:
		if v.Uint() != 2 {
			t.Errorf("Stats field %s is not merged by addWorker; parallel runs would under-report it", field)
		}
	case reflect.Struct:
		for j := 0; j < v.NumField(); j++ {
			checkMerged(t, field+"."+v.Type().Field(j).Name, v.Field(j))
		}
	default:
		t.Fatalf("field %s kind %s unsupported", field, v.Kind())
	}
}

// TestStatsMergeCoversAllFields guards the parallel stats merge against
// silent under-reporting: every numeric field of Stats except Components
// (which is global, not per-worker) must be summed by addWorker. A field
// added to Stats without a matching line in addWorker fails here.
func TestStatsMergeCoversAllFields(t *testing.T) {
	var src Stats
	rv := reflect.ValueOf(&src).Elem()
	for i := 0; i < rv.NumField(); i++ {
		switch rv.Field(i).Kind() {
		case reflect.Int:
			rv.Field(i).SetInt(1)
		case reflect.Map:
			// Histogram fields (Engines, Stages): one probe bucket.
			m := reflect.MakeMap(rv.Field(i).Type())
			m.SetMapIndex(reflect.ValueOf("probe"), probeMapValue(t, rv.Field(i).Type().Elem()))
			rv.Field(i).Set(m)
		case reflect.Struct:
			// Sub-counter structs (Shapes, Balance): every int-kind field
			// set to 1 (Balance's busy times are time.Duration, kind int64).
			sv := rv.Field(i)
			for j := 0; j < sv.NumField(); j++ {
				switch sv.Field(j).Kind() {
				case reflect.Int, reflect.Int64:
					sv.Field(j).SetInt(1)
				default:
					t.Fatalf("Stats field %s.%s has kind %s; teach this test (and addWorker) how to merge it",
						rv.Type().Field(i).Name, sv.Type().Field(j).Name, sv.Field(j).Kind())
				}
			}
		default:
			t.Fatalf("Stats field %s has kind %s; teach this test (and addWorker) how to merge it",
				rv.Type().Field(i).Name, rv.Field(i).Kind())
		}
	}
	var dst Stats
	dst.addWorker(src)
	dst.addWorker(src)
	dv := reflect.ValueOf(dst)
	for i := 0; i < dv.NumField(); i++ {
		f := dv.Type().Field(i)
		if f.Name == "Components" {
			if dv.Field(i).Int() != 0 {
				t.Errorf("addWorker must not merge Components (global count)")
			}
			continue
		}
		if f.Name == "Balance" {
			// Balance merges by extremes, not sums: worker counts add,
			// busy-time extremes of identical {1,1} probes stay 1.
			got := dv.Field(i).Interface().(Balance)
			want := Balance{Workers: 2, MaxBusy: 1, MinBusy: 1}
			if got != want {
				t.Errorf("Balance merged to %+v, want %+v (max/min semantics)", got, want)
			}
			continue
		}
		switch dv.Field(i).Kind() {
		case reflect.Int:
			checkMerged(t, f.Name, dv.Field(i))
		case reflect.Map:
			got := dv.Field(i).MapIndex(reflect.ValueOf("probe"))
			if !got.IsValid() {
				t.Errorf("Stats map field %s is not merged by addWorker; parallel runs would under-report it", f.Name)
				continue
			}
			checkMerged(t, f.Name, got)
		case reflect.Struct:
			checkMerged(t, f.Name, dv.Field(i))
		}
	}
}

// TestStageTelemetry pins the stage accounting contract: a run that peels,
// splits and solves must report simplify/partition/dispatch/stitch regions
// with dispatch calls equal to solver invocations (engine + fallback), and
// the parallel run must report the identical region structure.
func TestStageTelemetry(t *testing.T) {
	// Three disjoint K5 cliques (conflict degree 4 = K, so they survive
	// peeling and reach the solver) with a peelable two-vertex tail each.
	g := graph.New(21)
	for base := 0; base < 15; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddConflict(base+i, base+j)
			}
		}
		tail := 15 + 2*(base/5)
		g.AddConflict(base, tail)
		g.AddConflict(tail, tail+1)
	}
	_, st := Decompose(g, Options{K: 4, Alpha: 0.1}, exactSolver(4, 0.1))
	for _, name := range []string{pipeline.StageSimplify, pipeline.StagePartition, pipeline.StageDispatch} {
		if st.Stages[name].Calls == 0 {
			t.Errorf("stage %q not recorded: %+v", name, st.Stages)
		}
	}
	if got := st.Stages[pipeline.StageDispatch].Calls; got != st.SolverCalls+st.Fallbacks {
		t.Errorf("dispatch calls = %d, want solver+fallback = %d", got, st.SolverCalls+st.Fallbacks)
	}
	for _, name := range []string{pipeline.StageBuild, pipeline.StageMerge} {
		if _, ok := st.Stages[name]; ok {
			t.Errorf("stage %q is owned by internal/core and must not be recorded here", name)
		}
	}
}

// TestCancelledContextFallsBackToLinear checks that a cancelled context
// makes every piece take the linear fallback, never the engine, while the
// coloring stays valid — for both serial and parallel pools, which must
// also agree exactly (determinism is preserved under cancellation).
func TestCancelledContextFallsBackToLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 80, 80, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	engine := func(sub *graph.Graph, _ *pipeline.Scratch) []int {
		t.Error("engine must not run once the context is cancelled")
		return make([]int, sub.N())
	}
	// Peeling is disabled so every component reaches the solver stage.
	serial, sst := DecomposeContext(ctx, g, Options{K: 4, Alpha: 0.1, DisablePeeling: true}, engine)
	if err := coloring.Validate(g, serial, 4); err != nil {
		t.Fatal(err)
	}
	if sst.Fallbacks == 0 || sst.SolverCalls != 0 {
		t.Fatalf("expected all-fallback stats, got %+v", sst)
	}
	par, pst := DecomposeContext(ctx, g, Options{K: 4, Alpha: 0.1, DisablePeeling: true, Workers: 4}, engine)
	if !statsEqualIgnoringTime(sst, pst) {
		t.Fatalf("serial stats %+v != parallel stats %+v", sst, pst)
	}
	for v := range serial {
		if serial[v] != par[v] {
			t.Fatalf("vertex %d: serial %d, parallel %d", v, serial[v], par[v])
		}
	}
}

// TestWorkerPoolDrainsOnCancel cancels mid-run: the pool must finish every
// component (no vertex left uncolored) with late components on the fallback.
func TestWorkerPoolDrainsOnCancel(t *testing.T) {
	// 100 disjoint K5 cliques: conflict degree 4 = K, so nothing peels and
	// every component reaches the solver (or its fallback) exactly once.
	g := graph.New(500)
	for base := 0; base < 500; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddConflict(base+i, base+j)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	engine := func(sub *graph.Graph, _ *pipeline.Scratch) []int {
		if calls.Add(1) == 5 {
			cancel()
		}
		res := coloring.FromGraph(sub).Backtrack(4, 0.1, 0)
		return res.Colors
	}
	colors, st := DecomposeContext(ctx, g, Options{K: 4, Alpha: 0.1, Workers: 4}, engine)
	if err := coloring.Validate(g, colors, 4); err != nil {
		t.Fatal(err)
	}
	if st.SolverCalls+st.Fallbacks != 100 {
		t.Fatalf("expected 100 pieces total, got %+v", st)
	}
	if st.Fallbacks == 0 {
		t.Fatalf("expected some fallbacks after mid-run cancel, got %+v", st)
	}
}
