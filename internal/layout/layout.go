// Package layout defines the layout model consumed by the decomposer: a set
// of polygonal features on a single layer together with the process
// parameters of the DAC'14 paper (minimum feature width wm, minimum spacing
// sm, half pitch hp) and a plain-text serialization so benchmark layouts can
// be generated once and decomposed by the command-line tools.
package layout

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"mpl/internal/geom"
)

// Process carries the technology parameters used to derive coloring
// distances. The paper scales Metal1 to a 20 nm half pitch with
// wm = sm = 20 nm; mins for quadruple patterning is 2·sm + 2·wm = 80 nm and
// for pentuple patterning 3·sm + 2.5·wm = 110 nm.
type Process struct {
	// MinWidth is the minimum feature width wm in database units.
	MinWidth int
	// MinSpace is the minimum feature spacing sm in database units.
	MinSpace int
	// HalfPitch is hp = (wm+sm)/2 ... the paper's 20 nm half pitch equals
	// MinWidth when wm = sm; stored explicitly so tests can vary it.
	HalfPitch int
}

// DefaultProcess returns the 20 nm half-pitch process of the paper.
func DefaultProcess() Process {
	return Process{MinWidth: 20, MinSpace: 20, HalfPitch: 20}
}

// MinColoringDistance returns the paper's mins for a mask count K:
// K = 4 → 2·sm + 2·wm; K = 5 → 3·sm + 2.5·wm (Section 6). Other K
// interpolate the same progression: (K-2)·sm + (K/2)·wm.
func (p Process) MinColoringDistance(k int) int {
	switch {
	case k <= 3:
		return 2*p.MinSpace + p.MinWidth // the TPL distance of Fig. 7
	case k == 4:
		return 2*p.MinSpace + 2*p.MinWidth
	case k == 5:
		return 3*p.MinSpace + (5*p.MinWidth)/2
	default:
		return (k-2)*p.MinSpace + (k*p.MinWidth)/2
	}
}

// Layout is a named collection of polygonal features on one layer.
type Layout struct {
	Name     string
	Process  Process
	Features []geom.Polygon
}

// New returns an empty layout with the default process.
func New(name string) *Layout {
	return &Layout{Name: name, Process: DefaultProcess()}
}

// Add appends a feature and returns its index.
func (l *Layout) Add(pg geom.Polygon) int {
	l.Features = append(l.Features, pg)
	return len(l.Features) - 1
}

// AddRect appends a single-rectangle feature and returns its index.
func (l *Layout) AddRect(r geom.Rect) int {
	return l.Add(geom.NewPolygon(r))
}

// Bounds returns the bounding box of all features; the zero Rect when empty.
func (l *Layout) Bounds() geom.Rect {
	if len(l.Features) == 0 {
		return geom.Rect{}
	}
	b := l.Features[0].Bounds()
	for _, f := range l.Features[1:] {
		b = b.Union(f.Bounds())
	}
	return b
}

// RectCount returns the total number of rectangles across features.
func (l *Layout) RectCount() int {
	n := 0
	for _, f := range l.Features {
		n += len(f.Rects)
	}
	return n
}

// Validate checks structural invariants: every feature valid and connected.
func (l *Layout) Validate() error {
	for i, f := range l.Features {
		if !f.Valid() {
			return fmt.Errorf("layout %q: feature %d invalid", l.Name, i)
		}
		if !f.Connected() {
			return fmt.Errorf("layout %q: feature %d is disconnected", l.Name, i)
		}
	}
	if l.Process.MinWidth <= 0 || l.Process.MinSpace <= 0 || l.Process.HalfPitch <= 0 {
		return fmt.Errorf("layout %q: non-positive process parameters %+v", l.Name, l.Process)
	}
	return nil
}

// Write serializes the layout in the .lay text format:
//
//	layout <name>
//	process <wm> <sm> <hp>
//	feature
//	rect <x0> <y0> <x1> <y1>
//	...
//	end
//
// One "feature"/"end" block per polygon.
func (l *Layout) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "layout %s\n", sanitizeName(l.Name))
	fmt.Fprintf(bw, "process %d %d %d\n", l.Process.MinWidth, l.Process.MinSpace, l.Process.HalfPitch)
	for _, f := range l.Features {
		fmt.Fprintln(bw, "feature")
		for _, r := range f.Rects {
			fmt.Fprintf(bw, "rect %d %d %d %d\n", r.X0, r.Y0, r.X1, r.Y1)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Join(strings.Fields(s), "_")
}

// Read parses the .lay text format produced by Write.
func Read(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	l := New("unnamed")
	var cur *geom.Polygon
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "layout":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: layout needs a name", line)
			}
			l.Name = fields[1]
		case "process":
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: process needs wm sm hp", line)
			}
			var p Process
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d",
				&p.MinWidth, &p.MinSpace, &p.HalfPitch); err != nil {
				return nil, fmt.Errorf("line %d: bad process: %v", line, err)
			}
			l.Process = p
		case "feature":
			if cur != nil {
				return nil, fmt.Errorf("line %d: nested feature", line)
			}
			cur = &geom.Polygon{}
		case "rect":
			if cur == nil {
				return nil, fmt.Errorf("line %d: rect outside feature", line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("line %d: rect needs 4 coordinates", line)
			}
			var x0, y0, x1, y1 int
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d %d",
				&x0, &y0, &x1, &y1); err != nil {
				return nil, fmt.Errorf("line %d: bad rect: %v", line, err)
			}
			rc := geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
			if !rc.Valid() {
				return nil, fmt.Errorf("line %d: invalid rect %v", line, rc)
			}
			cur.Rects = append(cur.Rects, rc)
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("line %d: end outside feature", line)
			}
			if len(cur.Rects) == 0 {
				return nil, fmt.Errorf("line %d: empty feature", line)
			}
			l.Features = append(l.Features, *cur)
			cur = nil
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("unterminated feature at EOF")
	}
	return l, nil
}

// WriteFile serializes the layout to path.
func (l *Layout) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile parses a .lay file from disk.
func ReadFile(path string) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
