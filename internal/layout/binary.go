package layout

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"mpl/internal/geom"
)

// Binary layout format (".layb"): a compact little-endian encoding for the
// large benchmark layouts, about 6× smaller than the text format and much
// faster to parse. Layout:
//
//	magic   [4]byte  "MPLB"
//	version uint16   (1)
//	name    uint16 length + bytes
//	process 3 × int32 (wm, sm, hp)
//	count   uint32   feature count
//	per feature: uint16 rect count, then 4 × int32 per rect
//	            (x0, y0 stored raw; x1, y1 stored as width, height)
var binaryMagic = [4]byte{'M', 'P', 'L', 'B'}

const binaryVersion = 1

// WriteBinary serializes the layout in the binary format.
func (l *Layout) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	name := []byte(sanitizeName(l.Name))
	if len(name) > 0xFFFF {
		return fmt.Errorf("layout: name too long (%d bytes)", len(name))
	}
	le := binary.LittleEndian
	var scratch [8]byte
	writeU16 := func(v uint16) {
		le.PutUint16(scratch[:2], v)
		bw.Write(scratch[:2])
	}
	writeU32 := func(v uint32) {
		le.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}
	writeI32 := func(v int) { writeU32(uint32(int32(v))) }

	writeU16(binaryVersion)
	writeU16(uint16(len(name)))
	bw.Write(name)
	writeI32(l.Process.MinWidth)
	writeI32(l.Process.MinSpace)
	writeI32(l.Process.HalfPitch)
	writeU32(uint32(len(l.Features)))
	for fi, f := range l.Features {
		if len(f.Rects) > 0xFFFF {
			return fmt.Errorf("layout: feature %d has %d rects (max 65535)", fi, len(f.Rects))
		}
		writeU16(uint16(len(f.Rects)))
		for _, r := range f.Rects {
			if !r.Valid() {
				return fmt.Errorf("layout: feature %d has invalid rect %v", fi, r)
			}
			writeI32(r.X0)
			writeI32(r.Y0)
			writeI32(r.Width())
			writeI32(r.Height())
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format produced by WriteBinary.
func ReadBinary(r io.Reader) (*Layout, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("layout: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("layout: bad magic %q", magic)
	}
	le := binary.LittleEndian
	var scratch [4]byte
	readU16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return 0, err
		}
		return le.Uint16(scratch[:2]), nil
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch[:4]), nil
	}
	readI32 := func() (int, error) {
		v, err := readU32()
		return int(int32(v)), err
	}

	ver, err := readU16()
	if err != nil {
		return nil, fmt.Errorf("layout: reading version: %w", err)
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("layout: unsupported binary version %d", ver)
	}
	nameLen, err := readU16()
	if err != nil {
		return nil, err
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	l := New(string(nameBytes))
	if l.Process.MinWidth, err = readI32(); err != nil {
		return nil, err
	}
	if l.Process.MinSpace, err = readI32(); err != nil {
		return nil, err
	}
	if l.Process.HalfPitch, err = readI32(); err != nil {
		return nil, err
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxFeatures = 1 << 28 // sanity bound against corrupt headers
	if count > maxFeatures {
		return nil, fmt.Errorf("layout: implausible feature count %d", count)
	}
	for fi := uint32(0); fi < count; fi++ {
		nr, err := readU16()
		if err != nil {
			return nil, fmt.Errorf("layout: feature %d header: %w", fi, err)
		}
		if nr == 0 {
			return nil, fmt.Errorf("layout: feature %d is empty", fi)
		}
		pg := geom.Polygon{Rects: make([]geom.Rect, 0, int(nr))}
		for ri := 0; ri < int(nr); ri++ {
			x0, err := readI32()
			if err != nil {
				return nil, err
			}
			y0, err := readI32()
			if err != nil {
				return nil, err
			}
			w, err := readI32()
			if err != nil {
				return nil, err
			}
			h, err := readI32()
			if err != nil {
				return nil, err
			}
			if w <= 0 || h <= 0 {
				return nil, fmt.Errorf("layout: feature %d rect %d has non-positive size %d×%d", fi, ri, w, h)
			}
			pg.Rects = append(pg.Rects, geom.Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + h})
		}
		l.Features = append(l.Features, pg)
	}
	return l, nil
}

// WriteBinaryFile serializes the layout to path in binary form.
func (l *Layout) WriteBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.WriteBinary(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadBinaryFile parses a binary layout file.
func ReadBinaryFile(path string) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ReadAny parses path as binary when it has the binary magic, text
// otherwise — the loader the command-line tools use.
func ReadAny(path string) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 && [4]byte(head) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}
