package layout

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpl/internal/geom"
)

func TestBinaryRoundTrip(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name || got.Process != l.Process {
		t.Fatalf("header mismatch: %q %+v", got.Name, got.Process)
	}
	if !reflect.DeepEqual(got.Features, l.Features) {
		t.Fatalf("features mismatch:\n got %v\nwant %v", got.Features, l.Features)
	}
}

func TestBinaryNegativeCoordinates(t *testing.T) {
	l := New("neg")
	l.AddRect(geom.Rect{X0: -100, Y0: -50, X1: -80, Y1: -30})
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features[0].Rects[0] != (geom.Rect{X0: -100, Y0: -50, X1: -80, Y1: -30}) {
		t.Fatalf("rect = %v", got.Features[0].Rects[0])
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncations at every prefix length must error, not panic.
	for cut := 0; cut < len(good); cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryRejectsInvalidRect(t *testing.T) {
	l := New("bad")
	l.Features = append(l.Features, geom.Polygon{Rects: []geom.Rect{{X0: 5, Y0: 5, X1: 1, Y1: 1}}})
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err == nil {
		t.Fatal("invalid rect written")
	}
}

func TestReadAnyDispatches(t *testing.T) {
	l := sample()
	dir := t.TempDir()
	tp := filepath.Join(dir, "t.lay")
	bp := filepath.Join(dir, "t.layb")
	if err := l.WriteFile(tp); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBinaryFile(bp); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{tp, bp} {
		got, err := ReadAny(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(got.Features) != len(l.Features) {
			t.Fatalf("%s: %d features", path, len(got.Features))
		}
	}
	if _, err := ReadAny(filepath.Join(dir, "missing.lay")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	l := New("size")
	for i := 0; i < 500; i++ {
		l.AddRect(geom.Rect{X0: i * 40, Y0: 0, X1: i*40 + 20, Y1: 20})
	}
	var tb, bb bytes.Buffer
	if err := l.Write(&tb); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBinary(&bb); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Fatalf("binary (%d) not smaller than text (%d)", bb.Len(), tb.Len())
	}
	if !strings.Contains(tb.String(), "layout size") {
		t.Fatal("text format sanity check failed")
	}
}
