package layout

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpl/internal/geom"
)

func sample() *Layout {
	l := New("sample")
	l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})
	l.Add(geom.NewPolygon(
		geom.Rect{X0: 100, Y0: 0, X1: 200, Y1: 20},
		geom.Rect{X0: 100, Y0: 20, X1: 120, Y1: 100},
	))
	return l
}

func TestMinColoringDistance(t *testing.T) {
	p := DefaultProcess()
	cases := []struct{ k, want int }{
		{3, 60},  // 2·20+20  (Fig. 7 distance)
		{4, 80},  // 2·20+2·20 (Section 6, QP)
		{5, 110}, // 3·20+2.5·20 (Section 6, pentuple)
		{6, 140}, // progression (K-2)·sm + (K/2)·wm
	}
	for _, c := range cases {
		if got := p.MinColoringDistance(c.k); got != c.want {
			t.Errorf("MinColoringDistance(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name {
		t.Errorf("Name = %q, want %q", got.Name, l.Name)
	}
	if got.Process != l.Process {
		t.Errorf("Process = %+v, want %+v", got.Process, l.Process)
	}
	if !reflect.DeepEqual(got.Features, l.Features) {
		t.Errorf("Features mismatch:\n got %v\nwant %v", got.Features, l.Features)
	}
}

func TestFileRoundTrip(t *testing.T) {
	l := sample()
	path := filepath.Join(t.TempDir(), "s.lay")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 2 {
		t.Fatalf("features = %d, want 2", len(got.Features))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"nested feature", "feature\nfeature\n"},
		{"rect outside", "rect 0 0 1 1\n"},
		{"bad rect arity", "feature\nrect 0 0 1\nend\n"},
		{"invalid rect", "feature\nrect 5 5 1 1\nend\n"},
		{"empty feature", "feature\nend\n"},
		{"unknown directive", "polygon\n"},
		{"unterminated", "feature\nrect 0 0 1 1\n"},
		{"bad process", "process 1 2\n"},
		{"layout no name", "layout\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", c.name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nlayout x\n  # indented comment\nfeature\nrect 0 0 1 1\nend\n"
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "x" || len(l.Features) != 1 {
		t.Fatalf("parsed %q with %d features", l.Name, len(l.Features))
	}
}

func TestValidate(t *testing.T) {
	l := sample()
	if err := l.Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	bad := New("bad")
	bad.Add(geom.NewPolygon(geom.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2}, geom.Rect{X0: 50, Y0: 50, X1: 52, Y1: 52}))
	if err := bad.Validate(); err == nil {
		t.Fatal("disconnected feature accepted")
	}
	badProc := New("badproc")
	badProc.AddRect(geom.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1})
	badProc.Process.MinWidth = 0
	if err := badProc.Validate(); err == nil {
		t.Fatal("zero MinWidth accepted")
	}
}

func TestBoundsAndCounts(t *testing.T) {
	l := sample()
	if got := l.Bounds(); got != (geom.Rect{X0: 0, Y0: 0, X1: 200, Y1: 100}) {
		t.Fatalf("Bounds = %v", got)
	}
	if got := l.RectCount(); got != 3 {
		t.Fatalf("RectCount = %d, want 3", got)
	}
	empty := New("e")
	if got := empty.Bounds(); got != (geom.Rect{}) {
		t.Fatalf("empty Bounds = %v", got)
	}
}

func TestSanitizedName(t *testing.T) {
	l := New("two words")
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "two_words" {
		t.Fatalf("Name = %q, want sanitized", got.Name)
	}
	empty := &Layout{Process: DefaultProcess()}
	buf.Reset()
	if err := empty.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "layout unnamed") {
		t.Fatalf("empty name not defaulted: %q", buf.String())
	}
}
