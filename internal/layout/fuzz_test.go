package layout

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusCircuits seeds a fuzz target with the four committed benchmark
// circuits (benchmarks/*.lay) — real full-scale inputs with every feature
// shape the generators produce, so mutation starts from meaningful files
// rather than toy snippets.
func corpusCircuits(f *testing.F) [][]byte {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "benchmarks", "*.lay"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no committed benchmark circuits found")
	}
	var out [][]byte
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

// FuzzRead: the text parser must never panic and must round-trip whatever
// it accepts.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := sample().Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("layout x\nfeature\nrect 0 0 1 1\nend\n")
	f.Add("feature\nrect -5 -5 5 5\nend\n")
	f.Add("# comment only\n")
	f.Add("rect 1 2 3 4\n")
	for _, data := range corpusCircuits(f) {
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatalf("accepted layout failed to serialize: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again.Features) != len(l.Features) {
			t.Fatalf("round trip changed feature count: %d -> %d", len(l.Features), len(again.Features))
		}
	})
}

// FuzzReadBinary: the binary parser must never panic on corrupt input.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := sample().WriteBinary(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("MPLB"))
	f.Add([]byte{})
	for _, data := range corpusCircuits(f) {
		l, err := Read(bytes.NewReader(data))
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := l.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		l, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must re-serialize cleanly.
		var buf bytes.Buffer
		if err := l.WriteBinary(&buf); err != nil {
			t.Fatalf("accepted binary layout failed to serialize: %v", err)
		}
	})
}
