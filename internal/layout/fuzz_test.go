package layout

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead: the text parser must never panic and must round-trip whatever
// it accepts.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := sample().Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("layout x\nfeature\nrect 0 0 1 1\nend\n")
	f.Add("feature\nrect -5 -5 5 5\nend\n")
	f.Add("# comment only\n")
	f.Add("rect 1 2 3 4\n")
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatalf("accepted layout failed to serialize: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again.Features) != len(l.Features) {
			t.Fatalf("round trip changed feature count: %d -> %d", len(l.Features), len(again.Features))
		}
	})
}

// FuzzReadBinary: the binary parser must never panic on corrupt input.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := sample().WriteBinary(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("MPLB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		l, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must re-serialize cleanly.
		var buf bytes.Buffer
		if err := l.WriteBinary(&buf); err != nil {
			t.Fatalf("accepted binary layout failed to serialize: %v", err)
		}
	})
}
