package synth

import (
	"testing"

	"mpl/internal/core"
	"mpl/internal/layout"
)

func TestTableCoverage(t *testing.T) {
	if len(Table1) != 15 {
		t.Fatalf("Table1 has %d circuits, want 15", len(Table1))
	}
	seen := map[string]bool{}
	for _, s := range Table1 {
		if seen[s.Name] {
			t.Fatalf("duplicate circuit %s", s.Name)
		}
		seen[s.Name] = true
		if s.Gates <= 0 {
			t.Fatalf("%s: gates = %d", s.Name, s.Gates)
		}
	}
	for _, n := range Table2Names {
		if !seen[n] {
			t.Fatalf("Table 2 circuit %s missing from Table 1", n)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("C432")
	if !ok || s.Name != "C432" {
		t.Fatalf("ByName(C432) = %+v, %v", s, ok)
	}
	if _, ok := ByName("C9999"); ok {
		t.Fatal("unknown circuit found")
	}
	if _, err := GenerateByName("C9999", 1); err == nil {
		t.Fatal("GenerateByName accepted unknown circuit")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Table1[0], 0.5)
	b := Generate(Table1[0], 0.5)
	if len(a.Features) != len(b.Features) {
		t.Fatalf("feature counts differ: %d vs %d", len(a.Features), len(b.Features))
	}
	for i := range a.Features {
		if len(a.Features[i].Rects) != len(b.Features[i].Rects) ||
			a.Features[i].Rects[0] != b.Features[i].Rects[0] {
			t.Fatalf("feature %d differs", i)
		}
	}
}

func TestGeneratedLayoutsValid(t *testing.T) {
	for _, s := range Table1[:6] {
		l := Generate(s, 0.2)
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(l.Features) < 20 {
			t.Fatalf("%s: only %d features", s.Name, len(l.Features))
		}
		if l.Process != layout.DefaultProcess() {
			t.Fatalf("%s: process %+v", s.Name, l.Process)
		}
	}
}

func TestSizesScaleWithGates(t *testing.T) {
	small := Generate(Table1[0], 1) // C432, 160 gates
	large := Generate(Table1[7], 1) // C5315, 2307 gates
	if len(large.Features) <= len(small.Features)*4 {
		t.Fatalf("C5315 (%d feats) not much larger than C432 (%d feats)",
			len(large.Features), len(small.Features))
	}
}

func TestCrossesProduceNativeConflicts(t *testing.T) {
	// C6288 is calibrated for 9 native conflicts at scale 1; the exact
	// SDP+Backtrack engine should land close to that (crosses can
	// occasionally interact with surrounding geometry).
	l := Generate(Table1[8], 1) // C6288
	res, err := core.Decompose(l, core.Options{K: 4, Algorithm: core.AlgSDPBacktrack, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts < 7 || res.Conflicts > 14 {
		t.Fatalf("C6288 conflicts = %d, want ≈9", res.Conflicts)
	}
}

func TestZeroCrossCircuitNearConflictFree(t *testing.T) {
	l := Generate(Table1[3], 1) // C1355, 0 crosses
	res, err := core.Decompose(l, core.Options{K: 4, Algorithm: core.AlgSDPBacktrack, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts > 2 {
		t.Fatalf("C1355 conflicts = %d, want ≈0", res.Conflicts)
	}
}

func TestScaleReducesSize(t *testing.T) {
	full := Generate(Table1[11], 1) // S38417
	tenth := Generate(Table1[11], 0.1)
	if len(tenth.Features)*5 >= len(full.Features) {
		t.Fatalf("scale 0.1: %d vs %d features", len(tenth.Features), len(full.Features))
	}
	neg := Generate(Table1[0], -1) // treated as 1
	if len(neg.Features) == 0 {
		t.Fatal("negative scale produced empty layout")
	}
}

func TestStitchOpportunitiesExist(t *testing.T) {
	l := Generate(Table1[0], 1)
	dg, err := core.BuildGraph(l, core.BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Stats.StitchEdges == 0 {
		t.Fatal("no stitch candidates generated — wires too short or projection rule broken")
	}
	if dg.Stats.ConflictEdges == 0 {
		t.Fatal("no conflict edges — layout too sparse")
	}
	if dg.Stats.FriendEdges == 0 {
		t.Fatal("no color-friendly pairs detected")
	}
}
