// Package synth generates deterministic synthetic benchmark layouts shaped
// like the scaled ISCAS-85/89 Metal1/contact layers used by the DAC'14
// paper's experiments (Tables 1 and 2). The paper's actual benchmark files
// are not distributed; per DESIGN.md §2 these generators reproduce the
// *regime* the paper evaluates in — 20 nm half pitch, wm = sm = 20 nm,
// row-structured standard-cell geometry — with four ingredients:
//
//   - sparse contact rows on a 60 nm site grid (mostly 4-colorable
//     king-graph neighborhoods under mins = 80 nm);
//   - dense "macro" patches: solid 4-line king-graph blocks that survive
//     every division technique (no low-degree vertices, biconnected, all
//     internal cuts ≥ 4) and therefore exercise the per-component engines;
//     macro width tunes ILP difficulty — ~24-vertex macros solve in
//     seconds, ~60-vertex macros push the exact baseline past any
//     reasonable budget, reproducing the paper's big-circuit timeouts;
//   - "bump" contacts on macro borders, which densify the patch without
//     creating K5s; they roughen the SDP landscape so the greedy mapping
//     degrades relative to backtracking, as in the paper's Table 1;
//   - Fig. 7-style cross clusters at 40 nm pitch — K5 patterns that are
//     native conflicts under quadruple patterning, calibrated per circuit
//     so conflict counts land near the paper's reported magnitudes;
//   - Metal1 wire segments over the sparse regions providing stitch
//     candidates.
//
// Generation is deterministic per (circuit, scale): the seed derives from
// the circuit name.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"mpl/internal/geom"
	"mpl/internal/layout"
)

// Spec describes one synthetic circuit.
type Spec struct {
	// Name is the ISCAS circuit name the row stands in for.
	Name string
	// Gates is the real circuit's gate count; it scales the layout area.
	Gates int
	// Crosses is the number of K5 cross clusters (native QP conflicts),
	// calibrated to the paper's reported conflict numbers.
	Crosses int
	// Macros is the number of dense king-graph patches.
	Macros int
	// MacroW is the macro width in sites (height is 4 lines). Around 6 the
	// exact ILP baseline needs seconds per macro; ≥ 12 it times out.
	MacroW int
	// Bumps is the number of border bump contacts per macro.
	Bumps int
}

// Table1 lists the fifteen circuits of Table 1 in paper order. Cross counts
// follow the paper's optimal conflict numbers (ILP column; SDP+Backtrack
// for the rows where ILP timed out). Macro widths grow with circuit size so
// the exact baseline ages the way the paper reports: seconds on the
// C-circuits, over an hour on the dense S-circuits.
var Table1 = []Spec{
	{Name: "C432", Gates: 160, Crosses: 2, Macros: 1, MacroW: 5, Bumps: 2},
	{Name: "C499", Gates: 202, Crosses: 1, Macros: 1, MacroW: 5, Bumps: 2},
	{Name: "C880", Gates: 383, Crosses: 1, Macros: 1, MacroW: 5, Bumps: 2},
	{Name: "C1355", Gates: 546, Crosses: 0, Macros: 1, MacroW: 6, Bumps: 2},
	{Name: "C1908", Gates: 880, Crosses: 2, Macros: 1, MacroW: 6, Bumps: 2},
	{Name: "C2670", Gates: 1269, Crosses: 0, Macros: 2, MacroW: 5, Bumps: 2},
	{Name: "C3540", Gates: 1669, Crosses: 1, Macros: 2, MacroW: 6, Bumps: 3},
	{Name: "C5315", Gates: 2307, Crosses: 1, Macros: 2, MacroW: 6, Bumps: 3},
	{Name: "C6288", Gates: 2416, Crosses: 9, Macros: 3, MacroW: 6, Bumps: 3},
	{Name: "C7552", Gates: 3513, Crosses: 2, Macros: 3, MacroW: 6, Bumps: 3},
	{Name: "S1488", Gates: 653, Crosses: 0, Macros: 1, MacroW: 5, Bumps: 2},
	{Name: "S38417", Gates: 23843, Crosses: 20, Macros: 8, MacroW: 7, Bumps: 3},
	{Name: "S35932", Gates: 16065, Crosses: 50, Macros: 14, MacroW: 14, Bumps: 7},
	{Name: "S38584", Gates: 19253, Crosses: 41, Macros: 14, MacroW: 14, Bumps: 7},
	{Name: "S15850", Gates: 10383, Crosses: 42, Macros: 12, MacroW: 14, Bumps: 7},
}

// Table2Names lists the six densest circuits evaluated for pentuple
// patterning in Table 2, in paper order.
var Table2Names = []string{"C6288", "C7552", "S38417", "S35932", "S38584", "S15850"}

// Extras lists circuits outside the paper's tables that exercise specific
// subsystems. REPCELL is the canonical-shape memoization workload: many
// copies of a small set of dense cell shapes (cross clusters and macro
// patches), with Bumps deliberately zero — bump contacts are placed by the
// per-macro RNG, so any bump would perturb each macro's surroundings and
// break the shape repetition the memo cache exists to exploit.
var Extras = []Spec{
	{Name: "REPCELL", Gates: 220, Crosses: 20, Macros: 10, MacroW: 5, Bumps: 0},
}

// ByName returns the spec for a circuit name (paper tables first, then the
// extra subsystem workloads).
func ByName(name string) (Spec, bool) {
	for _, s := range Table1 {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range Extras {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// region is a reserved site span [lo, hi) inside one row.
type region struct{ row, lo, hi int }

// Geometry constants (nm): the paper's 20 nm half-pitch process.
const (
	contactSize = 20  // wm
	sitePitch   = 60  // contact grid pitch (gap 40 → conflicts within ±1 site at mins=80)
	crossPitch  = 40  // cross cluster pitch (K5 under mins = 80)
	macroLines  = 4   // macro height in site lines (2-line patches peel away)
	wireTrackY  = 160 // wire track: 80 nm above line 2, conflicts with it
	wireHeight  = 20
	rowPitch    = 400 // row separation: no coupling across rows at mins=80
)

// Generate builds the layout for a spec at the given scale (1.0 = nominal
// size; smaller values shrink area and cluster counts proportionally).
// Generation is deterministic for a given (spec.Name, scale).
func Generate(spec Spec, scale float64) *layout.Layout {
	return GenerateSeeded(spec, scale, 0)
}

// GenerateSeeded is Generate with an extra seed mixed into the circuit's
// name-derived base seed, for generating layout variants of one circuit
// (load testing, fuzz corpora). Seed 0 reproduces Generate bit for bit —
// and therefore the committed benchmarks/*.lay files.
func GenerateSeeded(spec Spec, scale float64, seed int64) *layout.Layout {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seedOf(spec.Name) ^ seed))
	l := layout.New(spec.Name)

	sites := int(float64(spec.Gates) * 2 * scale)
	if sites < 60 {
		sites = 60
	}
	rows := int(math.Sqrt(float64(sites) / 40))
	if rows < 1 {
		rows = 1
	}
	perRow := sites / rows
	if perRow < 20 {
		perRow = 20
	}
	crosses := scaledCount(spec.Crosses, scale)
	macros := scaledCount(spec.Macros, scale)
	macroW := spec.MacroW
	if macroW < 4 {
		macroW = 4
	}

	addContact := func(x, y int) {
		l.AddRect(geom.Rect{X0: x, Y0: y, X1: x + contactSize, Y1: y + contactSize})
	}

	// Reserve non-overlapping site spans for crosses and macros. A span
	// [lo, hi) in a row is blocked for sparse contacts and wires; one site
	// of margin keeps the structures conflict-isolated horizontally.
	var crossRegions, macroRegions []region
	reserved := make(map[int][]region) // row -> regions
	overlaps := func(row, lo, hi int) bool {
		for _, r := range reserved[row] {
			if lo < r.hi+1 && r.lo < hi+1 {
				return true
			}
		}
		return false
	}
	place := func(width int) (region, bool) {
		for try := 0; try < 50; try++ {
			r := region{row: rng.Intn(rows)}
			if perRow <= width+2 {
				return region{}, false
			}
			r.lo = 1 + rng.Intn(perRow-width-2)
			r.hi = r.lo + width
			if !overlaps(r.row, r.lo, r.hi) {
				reserved[r.row] = append(reserved[r.row], r)
				return r, true
			}
		}
		return region{}, false
	}
	for i := 0; i < macros; i++ {
		if r, ok := place(macroW); ok {
			macroRegions = append(macroRegions, r)
		}
	}
	for i := 0; i < crosses; i++ {
		if r, ok := place(4); ok {
			crossRegions = append(crossRegions, r)
		}
	}

	const occupancy = 0.35
	for row := 0; row < rows; row++ {
		y0 := row * rowPitch
		// Sparse contact sites on two lines.
		for site := 0; site < perRow; site++ {
			if overlaps(row, site, site+1) {
				continue
			}
			for line := 0; line < 2; line++ {
				if rng.Float64() < occupancy {
					addContact(site*sitePitch, y0+line*sitePitch)
				}
			}
		}
		// Wire segments over the sparse stretches of the row's track.
		buildWires(l, rng, row, y0, perRow, reserved[row])
	}

	// Dense macros: solid 4-line king patches plus border bumps.
	for _, r := range macroRegions {
		y0 := r.row * rowPitch
		for site := r.lo; site < r.hi; site++ {
			for line := 0; line < macroLines; line++ {
				addContact(site*sitePitch, y0+line*sitePitch)
			}
		}
		for b := 0; b < spec.Bumps; b++ {
			s := r.lo + rng.Intn(r.hi-r.lo-1)
			x := s*sitePitch + sitePitch/2
			if rng.Intn(2) == 0 {
				addContact(x, y0+macroLines*sitePitch) // above the top line (gap 40)
			} else {
				addContact(x, y0-sitePitch) // below the bottom line (gap 40)
			}
		}
	}

	// Cross clusters: Fig. 7 K5 pattern at 40 nm pitch.
	for _, r := range crossRegions {
		y0 := r.row * rowPitch
		cx := (r.lo + 2) * sitePitch
		cy := y0 + contactSize
		for _, d := range [][2]int{{0, 0}, {crossPitch, 0}, {-crossPitch, 0}, {0, crossPitch}, {0, -crossPitch}} {
			addContact(cx+d[0], cy+d[1])
		}
	}
	return l
}

// buildWires lays metal segments on the row track, skipping reserved spans
// (macros keep their component structure clean; crosses stay pure K5s).
func buildWires(l *layout.Layout, rng *rand.Rand, row, y0, perRow int, blocked []region) {
	limit := perRow * sitePitch
	x := rng.Intn(3) * sitePitch
	for x < limit-2*sitePitch {
		segSites := 2 + rng.Intn(6)
		x1 := x + segSites*sitePitch - crossPitch
		if x1 > limit {
			x1 = limit
		}
		// Clip against reserved spans (with one site of margin).
		clipped := false
		for _, r := range blocked {
			bLo, bHi := (r.lo-1)*sitePitch, (r.hi+1)*sitePitch
			if x < bHi && bLo < x1 {
				if x >= bLo {
					x = bHi // segment starts inside: skip past
					clipped = true
					break
				}
				x1 = bLo // segment runs into the span: truncate
			}
		}
		if clipped {
			continue
		}
		if x1-x >= 2*contactSize {
			l.AddRect(geom.Rect{X0: x, Y0: y0 + wireTrackY, X1: x1, Y1: y0 + wireTrackY + wireHeight})
		}
		x = x1 + crossPitch
	}
}

// GenerateByName is Generate over the named Table 1 circuit.
func GenerateByName(name string, scale float64) (*layout.Layout, error) {
	spec, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("synth: unknown circuit %q", name)
	}
	return Generate(spec, scale), nil
}

// Random generates a small random layout for property-based tests:
// contact clusters, wire segments and K5 crosses placed by the seeded rng
// on the paper's 20 nm half-pitch process. Unlike the named circuits it has
// no structural guarantees — clusters may overlap rows, wires may couple to
// anything nearby — which is exactly what a property test wants: arbitrary
// (valid) geometry in the regime the decomposer serves. Deterministic per
// seed; the layout always has at least one feature.
func Random(seed int64) *layout.Layout {
	rng := rand.New(rand.NewSource(seed))
	l := layout.New(fmt.Sprintf("random-%d", seed))

	// A compact die: 2–4 rows of up to ~14 sites keeps graphs small enough
	// that even the exact engine answers in milliseconds.
	rows := 2 + rng.Intn(3)
	perRow := 8 + rng.Intn(7)
	for row := 0; row < rows; row++ {
		y0 := row * rowPitch
		for site := 0; site < perRow; site++ {
			for line := 0; line < 2; line++ {
				if rng.Float64() < 0.4 {
					l.AddRect(geom.Rect{
						X0: site * sitePitch, Y0: y0 + line*sitePitch,
						X1: site*sitePitch + contactSize, Y1: y0 + line*sitePitch + contactSize,
					})
				}
			}
		}
		// One wire segment per row half the time: stitch candidates.
		if rng.Intn(2) == 0 {
			x0 := rng.Intn(3) * sitePitch
			x1 := x0 + (3+rng.Intn(5))*sitePitch
			l.AddRect(geom.Rect{X0: x0, Y0: y0 + wireTrackY, X1: x1, Y1: y0 + wireTrackY + wireHeight})
		}
	}
	// A dense king patch one time in three: a piece that survives division
	// and reaches the per-component engines. Width ≤ 4 keeps the core at or
	// below 16 vertices, where even the exact engine answers in ~25 ms.
	if rng.Intn(3) == 0 {
		bx := rng.Intn(4) * sitePitch
		by := rows * rowPitch
		w := 3 + rng.Intn(2)
		for site := 0; site < w; site++ {
			for line := 0; line < macroLines; line++ {
				l.AddRect(geom.Rect{
					X0: bx + site*sitePitch, Y0: by + line*sitePitch,
					X1: bx + site*sitePitch + contactSize, Y1: by + line*sitePitch + contactSize,
				})
			}
		}
	}
	// A K5 cross one time in three: a native QP conflict.
	if rng.Intn(3) == 0 {
		cx := (perRow + 2) * sitePitch
		cy := rng.Intn(rows) * rowPitch
		for _, d := range [][2]int{{0, 0}, {crossPitch, 0}, {-crossPitch, 0}, {0, crossPitch}, {0, -crossPitch}} {
			l.AddRect(geom.Rect{X0: cx + d[0], Y0: cy + d[1], X1: cx + d[0] + contactSize, Y1: cy + d[1] + contactSize})
		}
	}
	if len(l.Features) == 0 {
		l.AddRect(geom.Rect{X0: 0, Y0: 0, X1: contactSize, Y1: contactSize})
	}
	return l
}

func scaledCount(n int, scale float64) int {
	if scale >= 1 {
		return n
	}
	v := int(math.Round(float64(n) * scale))
	if n > 0 && v == 0 {
		v = 1
	}
	return v
}

func seedOf(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
