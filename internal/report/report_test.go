package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("demo", []string{"ILP", "SDP+Backtrack", "Linear"}, "SDP+Backtrack")
	t.AddRow("C432", 100, []Cell{
		{Conflicts: 2, Stitches: 0, CPU: 0.6},
		{Conflicts: 2, Stitches: 0, CPU: 0.24},
		{Conflicts: 2, Stitches: 1, CPU: 0.001},
	})
	t.AddRow("S35932", 5000, []Cell{
		{CPU: 3600, NA: true},
		{Conflicts: 50, Stitches: 1745, CPU: 28.7},
		{Conflicts: 64, Stitches: 1927, CPU: 0.15},
	})
	return t
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := sample().Summarize()
	ilp := s["ILP"]
	if !ilp.Partial || ilp.Completed != 1 {
		t.Fatalf("ILP summary = %+v", ilp)
	}
	if !approx(ilp.MeanConflicts, 2) {
		t.Fatalf("ILP mean conflicts = %v", ilp.MeanConflicts)
	}
	if !approx(ilp.MeanCPU, (0.6+3600)/2) {
		t.Fatalf("ILP mean CPU = %v", ilp.MeanCPU)
	}
	bt := s["SDP+Backtrack"]
	if bt.Partial || !approx(bt.MeanConflicts, 26) || !approx(bt.MeanStitches, 872.5) {
		t.Fatalf("BT summary = %+v", bt)
	}
}

func TestRatios(t *testing.T) {
	r := sample().Ratios()
	if r["ILP"].Defined {
		t.Fatal("partial column must have undefined ratio")
	}
	bt := r["SDP+Backtrack"]
	if !bt.Defined || !approx(bt.Conflicts, 1) || !approx(bt.Stitches, 1) || !approx(bt.CPU, 1) {
		t.Fatalf("baseline ratio = %+v", bt)
	}
	lin := r["Linear"]
	if !lin.Defined || !approx(lin.Conflicts, 33.0/26.0) {
		t.Fatalf("linear conflict ratio = %+v", lin)
	}
	if lin.CPU > 0.01 {
		t.Fatalf("linear CPU ratio = %v, want tiny", lin.CPU)
	}
}

func TestWriteFormat(t *testing.T) {
	out := sample().String()
	for _, want := range []string{
		"# demo",
		"Circuit",
		"C432",
		"S35932",
		"N/A",
		">3600",
		"avg.",
		"ratio",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The NA column's ratio must print dashes.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "-") {
		t.Fatalf("ratio line = %q", last)
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := New("empty", []string{"A"}, "A")
	s := tbl.Summarize()["A"]
	if s.MeanCPU != 0 || s.Completed != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if out := tbl.String(); !strings.Contains(out, "avg.") {
		t.Fatalf("empty table output:\n%s", out)
	}
}

func TestBadBaselinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad baseline did not panic")
		}
	}()
	New("x", []string{"A"}, "B")
}

func TestBadRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	New("x", []string{"A", "B"}, "A").AddRow("r", 1, []Cell{{}})
}

func TestSafeDiv(t *testing.T) {
	if safeDiv(0, 0) != 1 {
		t.Fatal("0/0 should read as ratio 1 (both algorithms perfect)")
	}
	if safeDiv(3, 0) != 0 {
		t.Fatal("x/0 should collapse to 0 (incomparable)")
	}
	if !approx(safeDiv(3, 2), 1.5) {
		t.Fatal("plain division broken")
	}
}
