// Package report formats the evaluation tables of the DAC'14 paper: one
// row per circuit, one column group (cn#, st#, CPU) per algorithm, followed
// by the paper's "avg." and "ratio" summary rows. cmd/evaluate feeds it
// measurement cells; keeping the arithmetic here makes the summary
// semantics (N/A handling, partial averages, baseline ratios) testable.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Cell is one measurement: conflicts, stitches, color-assignment seconds.
// NA marks an exact run that exceeded its budget (the paper's ">3600s").
type Cell struct {
	Conflicts int
	Stitches  int
	CPU       float64
	NA        bool
}

// Table accumulates rows for a fixed list of algorithm columns.
type Table struct {
	Title    string
	Columns  []string // algorithm names, in print order
	Baseline string   // column used as the ratio denominator
	rows     []row
}

type row struct {
	name  string
	frags int
	cells []Cell
}

// New returns an empty table with the given columns. baseline must be one
// of the columns; it anchors the ratio row at 1.0 (the paper uses
// SDP+Backtrack).
func New(title string, columns []string, baseline string) *Table {
	found := false
	for _, c := range columns {
		if c == baseline {
			found = true
		}
	}
	if !found {
		panic(fmt.Sprintf("report: baseline %q not among columns %v", baseline, columns))
	}
	return &Table{Title: title, Columns: append([]string(nil), columns...), Baseline: baseline}
}

// AddRow appends one circuit's measurements; cells must match the column
// count and order.
func (t *Table) AddRow(circuit string, fragments int, cells []Cell) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row %s has %d cells for %d columns", circuit, len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, row{name: circuit, frags: fragments, cells: append([]Cell(nil), cells...)})
}

// Summary holds the aggregate of one column.
type Summary struct {
	// MeanConflicts / MeanStitches average the completed (non-NA) rows.
	MeanConflicts float64
	MeanStitches  float64
	// MeanCPU averages over all rows; NA rows contribute their consumed
	// budget, so the value is a lower bound when Partial is set.
	MeanCPU float64
	// Partial is true when at least one row was NA.
	Partial bool
	// Completed counts non-NA rows.
	Completed int
}

// Summarize computes per-column aggregates.
func (t *Table) Summarize() map[string]Summary {
	out := make(map[string]Summary, len(t.Columns))
	for ci, col := range t.Columns {
		var s Summary
		for _, r := range t.rows {
			c := r.cells[ci]
			s.MeanCPU += c.CPU
			if c.NA {
				s.Partial = true
				continue
			}
			s.MeanConflicts += float64(c.Conflicts)
			s.MeanStitches += float64(c.Stitches)
			s.Completed++
		}
		if s.Completed > 0 {
			s.MeanConflicts /= float64(s.Completed)
			s.MeanStitches /= float64(s.Completed)
		}
		if len(t.rows) > 0 {
			s.MeanCPU /= float64(len(t.rows))
		}
		out[col] = s
	}
	return out
}

// Ratio holds one column's summary normalized by the baseline column.
type Ratio struct {
	Conflicts float64
	Stitches  float64
	CPU       float64
	// Defined is false when the column cannot be compared (it has NA rows,
	// so its means are not commensurate with the baseline's).
	Defined bool
}

// Ratios returns per-column ratios against the baseline (baseline = 1.0).
func (t *Table) Ratios() map[string]Ratio {
	sums := t.Summarize()
	base := sums[t.Baseline]
	out := make(map[string]Ratio, len(t.Columns))
	for _, col := range t.Columns {
		s := sums[col]
		if s.Partial {
			out[col] = Ratio{}
			continue
		}
		out[col] = Ratio{
			Conflicts: safeDiv(s.MeanConflicts, base.MeanConflicts),
			Stitches:  safeDiv(s.MeanStitches, base.MeanStitches),
			CPU:       safeDiv(s.MeanCPU, base.MeanCPU),
			Defined:   true,
		}
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return a / b
}

// Write renders the table in the harness's plain-text format.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	header := fmt.Sprintf("%-8s %9s", "Circuit", "frags")
	for _, c := range t.Columns {
		header += fmt.Sprintf(" | %-24s", c)
	}
	sub := fmt.Sprintf("%-8s %9s", "", "")
	for range t.Columns {
		sub += fmt.Sprintf(" | %6s %6s %9s", "cn#", "st#", "CPU(s)")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sub); err != nil {
		return err
	}
	for _, r := range t.rows {
		line := fmt.Sprintf("%-8s %9d", r.name, r.frags)
		for _, c := range r.cells {
			if c.NA {
				line += fmt.Sprintf(" | %6s %6s %9s", "N/A", "N/A", fmt.Sprintf(">%.0f", c.CPU))
			} else {
				line += fmt.Sprintf(" | %6d %6d %9.3f", c.Conflicts, c.Stitches, c.CPU)
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(sub))); err != nil {
		return err
	}

	sums := t.Summarize()
	avgLine := fmt.Sprintf("%-8s %9s", "avg.", "-")
	for _, col := range t.Columns {
		s := sums[col]
		mark := " "
		if s.Partial {
			mark = ">"
		}
		avgLine += fmt.Sprintf(" | %6.1f %6.1f %s%8.3f", s.MeanConflicts, s.MeanStitches, mark, s.MeanCPU)
	}
	if _, err := fmt.Fprintln(w, avgLine); err != nil {
		return err
	}

	ratios := t.Ratios()
	ratioLine := fmt.Sprintf("%-8s %9s", "ratio", "-")
	for _, col := range t.Columns {
		r := ratios[col]
		if !r.Defined {
			ratioLine += fmt.Sprintf(" | %6s %6s %9s", "-", "-", "-")
			continue
		}
		ratioLine += fmt.Sprintf(" | %6.2f %6.2f %9.4f", r.Conflicts, r.Stitches, r.CPU)
	}
	_, err := fmt.Fprintln(w, ratioLine)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Write(&sb); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return sb.String()
}
