// Package portfolio implements adaptive per-component engine selection for
// the color-assignment stage. The paper's hybrid flow (SDP relaxation with
// an LP speedup, backtracking, exact ILP on small hard components) already
// implies that no single engine is right for every connected component: the
// exact ILP is unbeatable on the small dense cores the division pipeline
// isolates but ages exponentially with component size, while the SDP
// engines and the linear heuristic trade quality for orders of magnitude in
// wall time (see the recorded BENCH trajectory, EXPERIMENTS.md).
//
// The package offers two policies over a set of candidate engines:
//
//   - auto — inspect the component's structure (vertex count, conflict
//     density, odd-cycle evidence, K) and dispatch it to the engine the
//     thresholds predict is the cheapest one achieving reference quality;
//   - race — run two candidate engines concurrently under one shared
//     deadline budget, keep the first result whose cost is provably optimal
//     (cost 0: no conflicts, no stitches — the objective's lower bound), or
//     the better of the two once both finish or the budget expires, and
//     cancel the loser through the usual context plumbing.
//
// Engines are supplied by the caller as context-aware solve functions, so
// the package stays free of solver dependencies and the division pipeline
// stays solver-agnostic. Thresholds are exported and comparable so they can
// ride inside cache keys and options-equality checks.
package portfolio

import (
	"context"
	"fmt"
	"time"

	"mpl/internal/coloring"
	"mpl/internal/graph"
	"mpl/internal/pipeline"
)

// Class identifies one candidate engine, in ascending quality-per-cost
// order: Linear is the cheapest, ILP the reference-quality exact baseline.
type Class int

// The four engine classes of the paper's Tables 1–2.
const (
	Linear Class = iota
	SDPGreedy
	SDPBacktrack
	ILP
	// NumClasses sizes engine tables indexed by Class.
	NumClasses
)

// String returns the trajectory/report label of the class.
func (c Class) String() string {
	switch c {
	case Linear:
		return "Linear"
	case SDPGreedy:
		return "SDP+Greedy"
	case SDPBacktrack:
		return "SDP+Backtrack"
	case ILP:
		return "ILP"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Solver colors one connected component, honoring ctx cooperatively: on
// cancellation it returns its incumbent (a complete, valid coloring) rather
// than blocking — the contract every engine in this repository obeys. The
// scratch arena (nil-safe) is the worker's reusable engine workspace; a
// solver must be done with every carved buffer by the time its colors are
// consumed, because the next solve on the same arena reclaims them.
type Solver func(ctx context.Context, g *graph.Graph, sc *pipeline.Scratch) []int

// Profile captures the component structure the selection thresholds read.
type Profile struct {
	// N is the vertex (fragment) count.
	N int
	// ConflictEdges and StitchEdges are the component's |CE| and |SE|.
	ConflictEdges int
	StitchEdges   int
	// Density is 2·|CE| / (N·(N−1)), in [0, 1]; 0 for N < 2.
	Density float64
	// OddEdges counts conflict edges whose endpoints land in the same part
	// of a BFS 2-coloring — each one closes an odd cycle, the structures
	// that make K-coloring hard. Zero means the conflict graph is
	// bipartite (2-colorable, so conflicts are always avoidable).
	OddEdges int
	// MaxConflictDegree is the largest conflict degree in the component.
	MaxConflictDegree int
}

// Analyze profiles one component in O(N + E).
func Analyze(g *graph.Graph) Profile {
	n := g.N()
	p := Profile{N: n, ConflictEdges: g.ConflictEdgeCount(), StitchEdges: g.StitchEdgeCount()}
	if n > 1 {
		p.Density = 2 * float64(p.ConflictEdges) / (float64(n) * float64(n-1))
	}
	// BFS 2-coloring of the conflict graph; same-side edges witness odd
	// cycles. The count is deterministic for a given adjacency (BFS from
	// ascending roots over canonical sorted adjacency).
	side := make([]int8, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if side[s] != 0 {
			continue
		}
		side[s] = 1
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if d := g.ConflictDegree(u); d > p.MaxConflictDegree {
				p.MaxConflictDegree = d
			}
			for _, w := range g.ConflictNeighbors(u) {
				wi := int(w)
				if side[wi] == 0 {
					side[wi] = -side[u]
					queue = append(queue, wi)
				} else if side[wi] == side[u] && wi > u {
					p.OddEdges++ // counted once per undirected edge
				}
			}
		}
	}
	return p
}

// Thresholds are the auto-mode decision boundaries. The zero value selects
// the defaults calibrated on the recorded BENCH trajectory (DESIGN.md
// §"Engine selection & racing"); all fields are comparable ints so a
// Thresholds can sit inside cache keys and options-equality checks.
type Thresholds struct {
	// ILPMaxN is the largest component (vertices) routed to the exact ILP.
	// Below it the branch-and-bound proves optimality in microseconds to
	// low milliseconds; past it the exact search ages exponentially
	// (BENCH: the C1355 core at 20 vertices / 56 conflict edges alone
	// costs ~3.4 s, versus ~25 ms for the 16-vertex / 43-edge cores of
	// the other committed circuits). 0 means the calibrated default;
	// negative disables the ILP tier.
	ILPMaxN int
	// ILPMaxM caps the conflict-edge count for the ILP tier — a second
	// guard because dense king-graph patches blow up the model size long
	// before the vertex bound does. 0 means the calibrated default.
	ILPMaxM int
	// BacktrackMaxN is the largest component routed to SDP+Backtrack;
	// larger bipartite-ish components go to SDP+Greedy and anything past
	// GreedyMaxN to the linear-time engine. 0 means the default.
	BacktrackMaxN int
	// GreedyMaxN is the largest component routed to SDP+Greedy. 0 means
	// the default.
	GreedyMaxN int
}

// Calibrated defaults: see DESIGN.md §"Engine selection & racing" for the
// BENCH-trajectory derivation.
const (
	defaultILPMaxN       = 16
	defaultILPMaxM       = 48
	defaultBacktrackMaxN = 3000
	defaultGreedyMaxN    = 20000
)

// WithDefaults resolves zero fields to the calibrated defaults.
func (t Thresholds) WithDefaults() Thresholds {
	if t.ILPMaxN == 0 {
		t.ILPMaxN = defaultILPMaxN
	}
	if t.ILPMaxM == 0 {
		t.ILPMaxM = defaultILPMaxM
	}
	if t.BacktrackMaxN == 0 {
		t.BacktrackMaxN = defaultBacktrackMaxN
	}
	if t.GreedyMaxN == 0 {
		t.GreedyMaxN = defaultGreedyMaxN
	}
	return t
}

// Select is the auto policy: the cheapest engine class the thresholds
// predict will reach reference quality on a component shaped like p.
//
//   - Small hard components — ≤ ILPMaxN vertices, ≤ ILPMaxM conflict edges
//     (the density guard: exact-search cost tracks edges as much as
//     vertices), and at least one odd cycle — go to the exact ILP: optimal
//     and cheap at this size, covering the K5 crosses and small macro
//     cores that dominate the committed circuits' conflict counts.
//   - A bipartite conflict graph (OddEdges == 0) skips the ILP tier: its
//     conflicts are always avoidable and SDP+Backtrack reaches the
//     conflict-free optimum in milliseconds, so only stitch ties remain —
//     not worth the exact search in auto mode (race mode may still bet on
//     ILP under budget, see RacePair).
//   - Everything else up to BacktrackMaxN stays on SDP+Backtrack —
//     odd-cycle-rich mid-size components are exactly where greedy SDP
//     mapping degrades (Table 1).
//   - Past BacktrackMaxN the backtrack search space is hopeless within any
//     serving deadline: SDP+Greedy until GreedyMaxN, Linear beyond.
func (t Thresholds) Select(p Profile, k int) Class {
	t = t.WithDefaults()
	if p.N <= t.ILPMaxN && p.ConflictEdges <= t.ILPMaxM && p.OddEdges > 0 && t.ILPMaxN > 0 {
		return ILP
	}
	if p.N <= t.BacktrackMaxN {
		return SDPBacktrack
	}
	if p.N <= t.GreedyMaxN {
		return SDPGreedy
	}
	return Linear
}

// RacePair is the race policy: the primary is auto's Select choice (so a
// race degenerates to auto whenever the secondary cannot beat it), the
// secondary is the complementary bet:
//
//   - primary ILP races SDP+Backtrack — insurance against an exact search
//     that overruns the budget (the backtrack incumbent is near-optimal);
//   - primary SDP+Backtrack races the exact ILP while the component is
//     within 3× of the ILP tier — the budget, not a size cliff, decides
//     whether exactness was affordable;
//   - everything larger races the linear-time engine, which guarantees a
//     full-quality *completed* answer inside any budget the expensive
//     primary might miss.
func (t Thresholds) RacePair(p Profile, k int) (primary, secondary Class) {
	t = t.WithDefaults()
	primary = t.Select(p, k)
	switch primary {
	case ILP:
		return ILP, SDPBacktrack
	case SDPBacktrack:
		if p.N <= 3*t.ILPMaxN && p.ConflictEdges <= 3*t.ILPMaxM {
			return SDPBacktrack, ILP
		}
		return SDPBacktrack, Linear
	default:
		return primary, Linear
	}
}

// Outcome reports how one auto or race dispatch went.
type Outcome struct {
	// Winner is the class whose coloring was kept.
	Winner Class
	// Raced reports whether a second engine actually ran.
	Raced bool
	// Loser is the cancelled/outscored class (valid only when Raced).
	Loser Class
	// ProvenOptimal reports the cost-0 early exit: the winner's coloring
	// has no conflicts and no stitches, the objective's lower bound.
	ProvenOptimal bool
}

// Auto profiles g, selects a class, and runs it on the caller's scratch
// arena (the dispatching division worker owns exactly one solve at a time,
// so sharing its arena is safe).
func Auto(ctx context.Context, g *graph.Graph, t Thresholds, k int, engines [NumClasses]Solver, sc *pipeline.Scratch) ([]int, Outcome) {
	class := t.Select(Analyze(g), k)
	return engines[class](ctx, g, sc), Outcome{Winner: class}
}

// Race profiles g, picks the candidate pair, and runs both concurrently
// under the shared budget (a child context of ctx; 0 means no extra bound
// beyond ctx itself). The first result with cost 0 wins immediately and the
// loser is cancelled; otherwise both results are awaited — every engine
// returns its incumbent promptly once the budget context expires — and the
// better cost wins, ties going to the primary so that a race whose
// secondary cannot strictly beat auto's choice returns byte-identical
// colors to auto mode.
// Racers lease their own scratch arenas from the env's pool (nil disables
// pooling) rather than sharing the caller's: a cancelled loser keeps
// running — and writing into its arena — until its next checkpoint, which
// may be after Race has returned, so the caller's arena must never be
// exposed to it. The env's parallelism budget rides along untouched — the
// engines themselves (SDP restarts) decide whether to claim idle slots.
func Race(ctx context.Context, g *graph.Graph, t Thresholds, k int, alpha float64, budget time.Duration, engines [NumClasses]Solver, env pipeline.Env) ([]int, Outcome) {
	pool := env.Scratch
	primary, secondary := t.RacePair(Analyze(g), k)
	if primary == secondary {
		sc := pool.Get()
		colors, out := engines[primary](ctx, g, sc), Outcome{Winner: primary}
		pool.Put(sc)
		return colors, out
	}
	var rctx context.Context
	var cancel context.CancelFunc
	if budget > 0 {
		rctx, cancel = context.WithTimeout(ctx, budget)
	} else {
		rctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type attempt struct {
		class  Class
		colors []int
		cost   float64
	}
	// Buffered: the loser's send never blocks, so a cancelled engine's
	// goroutine always exits once it reaches its next checkpoint — the
	// leak-freedom the race/cancellation tests pin down.
	ch := make(chan attempt, 2)
	run := func(c Class) {
		// The racer goroutine owns its lease: the arena returns to the
		// pool only once this engine has actually finished, which for a
		// cancelled loser can be after Race itself has returned.
		sc := pool.Get()
		colors := engines[c](rctx, g, sc)
		pool.Put(sc)
		ch <- attempt{class: c, colors: colors, cost: coloring.Cost(g, colors, alpha)}
	}
	go run(primary)
	go run(secondary)

	first := <-ch
	if first.cost == 0 {
		// Provably optimal: cost has lower bound 0, nothing can beat it.
		// Cancel the loser and return without waiting for it.
		cancel()
		return first.colors, Outcome{Winner: first.class, Raced: true, Loser: other(first.class, primary, secondary), ProvenOptimal: true}
	}
	second := <-ch

	pri, sec := first, second
	if pri.class != primary {
		pri, sec = second, first
	}
	if sec.cost < pri.cost {
		return sec.colors, Outcome{Winner: sec.class, Raced: true, Loser: pri.class, ProvenOptimal: false}
	}
	return pri.colors, Outcome{Winner: pri.class, Raced: true, Loser: sec.class, ProvenOptimal: false}
}

func other(c, a, b Class) Class {
	if c == a {
		return b
	}
	return a
}
