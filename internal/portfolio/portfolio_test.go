package portfolio

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"mpl/internal/graph"
	"mpl/internal/pipeline"
)

func path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddConflict(i, i+1)
	}
	return g
}

func clique(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddConflict(i, j)
		}
	}
	return g
}

func TestAnalyze(t *testing.T) {
	p := Analyze(path(5))
	if p.N != 5 || p.ConflictEdges != 4 || p.OddEdges != 0 || p.MaxConflictDegree != 2 {
		t.Fatalf("path profile %+v", p)
	}
	tri := Analyze(clique(3))
	if tri.OddEdges == 0 {
		t.Fatalf("a triangle closes an odd cycle: %+v", tri)
	}
	k5 := Analyze(clique(5))
	if k5.Density != 1.0 || k5.MaxConflictDegree != 4 || k5.OddEdges == 0 {
		t.Fatalf("K5 profile %+v", k5)
	}
	// Deterministic: same graph, same profile.
	if Analyze(clique(5)) != k5 {
		t.Fatal("Analyze is not deterministic")
	}
}

func TestSelectThresholds(t *testing.T) {
	var th Thresholds // defaults
	cases := []struct {
		p    Profile
		want Class
	}{
		{Profile{N: 5, ConflictEdges: 10, OddEdges: 4}, ILP},                // K5 cross
		{Profile{N: 16, ConflictEdges: 43, OddEdges: 13}, ILP},              // committed-circuit core
		{Profile{N: 16, ConflictEdges: 16}, SDPBacktrack},                   // bipartite: exact search buys nothing
		{Profile{N: 16, ConflictEdges: 58, OddEdges: 21}, SDPBacktrack},     // too dense for exact (13 s measured)
		{Profile{N: 20, ConflictEdges: 56, OddEdges: 16}, SDPBacktrack},     // past the size cliff (3.4 s measured)
		{Profile{N: 2500, ConflictEdges: 4000, OddEdges: 40}, SDPBacktrack}, // mid tier
		{Profile{N: 5000, ConflictEdges: 9000, OddEdges: 90}, SDPGreedy},    // past BacktrackMaxN
		{Profile{N: 100000, ConflictEdges: 150000, OddEdges: 99}, Linear},   // past GreedyMaxN
	}
	for _, c := range cases {
		if got := th.Select(c.p, 4); got != c.want {
			t.Errorf("Select(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
	// A negative ILPMaxN disables the exact tier entirely.
	noILP := Thresholds{ILPMaxN: -1}
	if got := noILP.Select(Profile{N: 5, ConflictEdges: 10, OddEdges: 4}, 4); got != SDPBacktrack {
		t.Errorf("disabled ILP tier still selected %v", got)
	}
}

func TestRacePair(t *testing.T) {
	var th Thresholds
	if p, s := th.RacePair(Profile{N: 5, ConflictEdges: 10, OddEdges: 4}, 4); p != ILP || s != SDPBacktrack {
		t.Errorf("ILP-tier pair = (%v, %v)", p, s)
	}
	if p, s := th.RacePair(Profile{N: 30, ConflictEdges: 60}, 4); p != SDPBacktrack || s != ILP {
		t.Errorf("near-tier pair = (%v, %v)", p, s)
	}
	if p, s := th.RacePair(Profile{N: 500, ConflictEdges: 900}, 4); p != SDPBacktrack || s != Linear {
		t.Errorf("mid pair = (%v, %v)", p, s)
	}
	if p, s := th.RacePair(Profile{N: 5000, ConflictEdges: 9000}, 4); p != SDPGreedy || s != Linear {
		t.Errorf("large pair = (%v, %v)", p, s)
	}
}

// raceGraph is a triangle: small, with an odd cycle, so its profile lands
// in the ILP tier and the race pair is (ILP primary, SDPBacktrack
// secondary). Colorings of length 3 cost 1 per same-colored edge.
func raceGraph() *graph.Graph { return clique(3) }

// stub builds an engine that waits for delay (or ctx) and returns colors.
func stub(delay time.Duration, colors []int, ran *atomic.Int32) Solver {
	return func(ctx context.Context, g *graph.Graph, _ *pipeline.Scratch) []int {
		if ran != nil {
			ran.Add(1)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
		}
		return colors
	}
}

func TestRaceFirstProvablyOptimalWinsAndCancelsLoser(t *testing.T) {
	g := raceGraph()
	cancelled := make(chan struct{})
	var engines [NumClasses]Solver
	// Primary (ILP) would take forever; it must be cancelled.
	engines[ILP] = func(ctx context.Context, _ *graph.Graph, _ *pipeline.Scratch) []int {
		<-ctx.Done()
		close(cancelled)
		return []int{0, 0, 0} // cost-3 incumbent
	}
	engines[SDPBacktrack] = stub(0, []int{0, 1, 2}, nil) // cost 0, instant
	colors, out := Race(context.Background(), g, Thresholds{}, 4, 0.1, 0, engines, pipeline.Env{})
	if !out.ProvenOptimal || out.Winner != SDPBacktrack || !out.Raced || out.Loser != ILP {
		t.Fatalf("outcome %+v", out)
	}
	if colors[0] == colors[1] {
		t.Fatalf("kept the losing coloring %v", colors)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("loser was never cancelled")
	}
}

func TestRaceTieGoesToPrimary(t *testing.T) {
	g := raceGraph()
	var engines [NumClasses]Solver
	// Both colorings cost 3 (all vertices share a color); the secondary
	// finishes long before the primary, but a tie must keep the primary so
	// race degenerates to auto deterministically.
	engines[ILP] = stub(30*time.Millisecond, []int{1, 1, 1}, nil)
	engines[SDPBacktrack] = stub(0, []int{2, 2, 2}, nil)
	colors, out := Race(context.Background(), g, Thresholds{}, 4, 0.1, 0, engines, pipeline.Env{})
	if out.Winner != ILP || out.ProvenOptimal {
		t.Fatalf("outcome %+v", out)
	}
	if colors[0] != 1 {
		t.Fatalf("tie did not keep the primary's coloring: %v", colors)
	}
}

func TestRaceStrictlyBetterSecondaryWins(t *testing.T) {
	g := raceGraph() // triangle: primary ILP, secondary SDPBacktrack
	var engines [NumClasses]Solver
	engines[ILP] = stub(0, []int{0, 0, 0}, nil)          // cost 3 (all edges conflict)
	engines[SDPBacktrack] = stub(0, []int{0, 1, 1}, nil) // cost 1 — strictly better, nonzero
	colors, out := Race(context.Background(), g, Thresholds{}, 4, 0.1, 0, engines, pipeline.Env{})
	if out.Winner != SDPBacktrack || out.ProvenOptimal {
		t.Fatalf("outcome %+v, colors %v", out, colors)
	}
}

func TestRaceBudgetBoundsTheRace(t *testing.T) {
	g := raceGraph()
	var engines [NumClasses]Solver
	// Both racers only return on cancellation; without the budget the race
	// would hang. Their incumbents tie, so the primary wins.
	engines[ILP] = stub(time.Hour, []int{0, 0, 0}, nil)
	engines[SDPBacktrack] = stub(time.Hour, []int{1, 1, 1}, nil)
	start := time.Now()
	_, out := Race(context.Background(), g, Thresholds{}, 4, 0.1, 50*time.Millisecond, engines, pipeline.Env{})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("race ran %v past a 50ms budget", elapsed)
	}
	if out.Winner != ILP {
		t.Fatalf("outcome %+v", out)
	}
}

func TestAutoDispatchesSelectedClass(t *testing.T) {
	var ran [NumClasses]atomic.Int32
	var engines [NumClasses]Solver
	for c := Class(0); c < NumClasses; c++ {
		engines[c] = stub(0, []int{0, 1, 2}, &ran[c])
	}
	_, out := Auto(context.Background(), raceGraph(), Thresholds{}, 4, engines, nil)
	if out.Winner != ILP || out.Raced {
		t.Fatalf("outcome %+v", out)
	}
	for c := Class(0); c < NumClasses; c++ {
		want := int32(0)
		if c == ILP {
			want = 1
		}
		if got := ran[c].Load(); got != want {
			t.Errorf("engine %v ran %d times, want %d", c, got, want)
		}
	}
}
