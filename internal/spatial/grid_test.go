package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"mpl/internal/geom"
)

func collect(g *Grid, q geom.Rect, radius int) []int {
	var out []int
	g.Near(q, radius, func(id int) { out = append(out, id) })
	sort.Ints(out)
	return out
}

func TestGridBasicQuery(t *testing.T) {
	g := NewGrid(geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}, 50, 4)
	a := g.Insert(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10})
	b := g.Insert(geom.Rect{X0: 30, Y0: 0, X1: 40, Y1: 10})
	c := g.Insert(geom.Rect{X0: 500, Y0: 500, X1: 510, Y1: 510})
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	got := collect(g, g.Bounds(a), 25)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Near = %v, want [a b]", got)
	}
	got = collect(g, g.Bounds(a), 19)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("Near tight = %v, want only a (gap is exactly 20)", got)
	}
	got = collect(g, g.Bounds(a), 20)
	if len(got) != 2 {
		t.Fatalf("Near radius==gap = %v, want inclusive match", got)
	}
	got = collect(g, g.Bounds(c), 100)
	if len(got) != 1 || got[0] != c {
		t.Fatalf("far query = %v", got)
	}
}

func TestGridDeduplicates(t *testing.T) {
	// A rectangle spanning many cells must still be reported once.
	g := NewGrid(geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}, 10, 1)
	id := g.Insert(geom.Rect{X0: 0, Y0: 0, X1: 900, Y1: 15})
	got := collect(g, geom.Rect{X0: 400, Y0: 0, X1: 410, Y1: 10}, 5)
	if len(got) != 1 || got[0] != id {
		t.Fatalf("Near = %v, want exactly one report", got)
	}
}

func TestGridQueryOutsideWorld(t *testing.T) {
	g := NewGrid(geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}, 20, 1)
	id := g.Insert(geom.Rect{X0: 90, Y0: 90, X1: 99, Y1: 99})
	// Query beyond the world bounds should clamp, not panic.
	got := collect(g, geom.Rect{X0: 150, Y0: 150, X1: 160, Y1: 160}, 80)
	if len(got) != 1 || got[0] != id {
		t.Fatalf("clamped query = %v", got)
	}
	got = collect(g, geom.Rect{X0: -50, Y0: -50, X1: -40, Y1: -40}, 10)
	if len(got) != 0 {
		t.Fatalf("far negative query = %v, want empty", got)
	}
}

func TestGridDegenerateWorld(t *testing.T) {
	// A world smaller than one cell must still work.
	g := NewGrid(geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}, 100, 1)
	id := g.Insert(geom.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2})
	got := collect(g, geom.Rect{X0: 3, Y0: 0, X1: 4, Y1: 2}, 1)
	if len(got) != 1 || got[0] != id {
		t.Fatalf("Near = %v", got)
	}
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	world := geom.Rect{X0: 0, Y0: 0, X1: 2000, Y1: 2000}
	g := NewGrid(world, 64, 256)
	var rects []geom.Rect
	for i := 0; i < 300; i++ {
		x, y := rng.Intn(1900), rng.Intn(1900)
		r := geom.Rect{X0: x, Y0: y, X1: x + 1 + rng.Intn(80), Y1: y + 1 + rng.Intn(80)}
		rects = append(rects, r)
		g.Insert(r)
	}
	for trial := 0; trial < 100; trial++ {
		x, y := rng.Intn(1900), rng.Intn(1900)
		q := geom.Rect{X0: x, Y0: y, X1: x + 1 + rng.Intn(60), Y1: y + 1 + rng.Intn(60)}
		radius := rng.Intn(150)
		var want []int
		rr := int64(radius) * int64(radius)
		for id, r := range rects {
			if geom.GapSq(q, r) <= rr {
				want = append(want, id)
			}
		}
		got := collect(g, q, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestGridStampWraparound(t *testing.T) {
	g := NewGrid(geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}, 10, 2)
	g.Insert(geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5})
	g.visit = -2 // force wrap within two queries
	got := collect(g, geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}, 1)
	if len(got) != 1 {
		t.Fatalf("pre-wrap query = %v", got)
	}
	got = collect(g, geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}, 1)
	if len(got) != 1 {
		t.Fatalf("post-wrap query = %v", got)
	}
}

// TestGridExactRadiusBoundary: a neighbor at gap exactly equal to the query
// radius must be reported no matter where the cell boundaries fall.
// Regression test: the bucket scan used q.Expand(radius), whose half-open
// far edge could exclude the neighbor's first cell row when a boundary fell
// exactly between them — a false negative at the inclusive boundary of the
// GapSq predicate (found by FuzzApplyEdits via a VerifySolution recount
// that missed a conflict pair at gap exactly mins).
func TestGridExactRadiusBoundary(t *testing.T) {
	const radius = 80
	a := geom.Rect{X0: 100, Y0: 0, X1: 120, Y1: 20}
	b := geom.Rect{X0: 100, Y0: 100, X1: 120, Y1: 120} // vertical gap exactly 80
	for _, cell := range []int{radius - 1, radius, radius + 1, 33, 7} {
		// Sweep the world origin so every cell-boundary phase relative to
		// the gap is hit at least once.
		for off := 0; off <= cell; off++ {
			world := geom.Rect{X0: -200 - off, Y0: -200 - off, X1: 400, Y1: 400}
			g := NewGrid(world, cell, 2)
			g.Insert(a)
			g.Insert(b)
			if got := collect(g, a, radius); len(got) != 2 {
				t.Fatalf("cell=%d off=%d: ids at gap exactly %d = %v, want both", cell, off, radius, got)
			}
		}
	}
}

// TestInsertCapacityGuard pins the int32-id overflow guard: at the entry
// limit, Insert must fail loudly instead of wrapping the id silently (which
// would corrupt bucket contents with phantom small ids). The limit is
// lowered through the internal maxEntries var — the real one is 2^31−1.
func TestInsertCapacityGuard(t *testing.T) {
	defer func(old int) { maxEntries = old }(maxEntries)
	maxEntries = 3
	g := NewGrid(geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}, 10, 4)
	for i := 0; i < 3; i++ {
		g.Insert(geom.Rect{X0: i, Y0: 0, X1: i + 1, Y1: 1})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("insert past capacity did not panic")
		}
	}()
	g.Insert(geom.Rect{X0: 50, Y0: 50, X1: 51, Y1: 51})
}

// TestZeroCapHint: zero-capacity grids stay well-defined.
func TestZeroCapHint(t *testing.T) {
	g := NewGrid(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, 5, 0)
	id := g.Insert(geom.Rect{X0: 1, Y0: 1, X1: 2, Y1: 2})
	if id != 0 || g.Len() != 1 {
		t.Fatalf("insert into zero-hint grid: id=%d len=%d", id, g.Len())
	}
}
