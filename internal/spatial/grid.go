// Package spatial provides a uniform grid index over rectangles for fast
// neighborhood queries. The decomposer uses it to find all features within
// the minimum coloring distance (conflict edges) and within the
// color-friendly band (mins, mins+hp) without an O(n²) scan.
//
// Visit-stamp arrays — the per-query deduplication state of Grid and
// Querier — are recycled through a process-wide pool: grids and queriers
// are per-build objects, but their stamp arrays are size-stable across
// repeated service requests, so Release-ing them keeps steady-state graph
// builds from re-allocating O(n) stamp memory every time.
package spatial

import (
	"fmt"
	"math"
	"sync"

	"mpl/internal/geom"
)

// MaxEntries is the largest number of rectangles one Grid can hold: bucket
// entries are int32 IDs, so anything past 2^31−1 would silently truncate.
// Insert enforces it with a diagnosing panic — million-feature layouts stay
// far below it, but the guard turns a would-be silent wraparound (phantom
// neighbors, missed conflicts) into an immediate, attributable failure.
const MaxEntries = math.MaxInt32

// maxEntries is MaxEntries behind a var, so the guard test can lower it to
// an addressable size instead of allocating 2^31 rectangles.
var maxEntries = MaxEntries

// stampPool recycles visit-stamp backing arrays across grids and queriers.
var stampPool = sync.Pool{New: func() any { return new([]int32) }}

// getStamps leases a zeroed stamp array with capacity ≥ capHint, length 0.
func getStamps(capHint int) []int32 {
	b := *stampPool.Get().(*[]int32)
	if cap(b) < capHint {
		return make([]int32, 0, capHint)
	}
	b = b[:cap(b)]
	clear(b)
	return b[:0]
}

func putStamps(b []int32) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	stampPool.Put(&b)
}

// Grid is a uniform bucket grid over rectangle bounding boxes. Each entry is
// identified by the integer ID supplied at insertion. Entries are bucketed by
// every cell their bounding box overlaps, so queries must deduplicate; the
// Grid handles that internally with a visit-stamp array.
type Grid struct {
	cell    int // cell edge length
	minX    int
	minY    int
	cols    int
	rows    int
	buckets [][]int32
	bounds  []geom.Rect // per-ID bounding boxes
	stamp   []int32     // visit stamps for deduplication
	visit   int32
}

// NewGrid creates a grid covering the world rectangle with the given cell
// size. The cell size should be on the order of the query radius; the
// decomposer uses mins+hp. capHint sizes the per-ID tables.
func NewGrid(world geom.Rect, cell int, capHint int) *Grid {
	if cell < 1 {
		cell = 1
	}
	cols := (world.Width() + cell - 1) / cell
	rows := (world.Height() + cell - 1) / cell
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		cell:    cell,
		minX:    world.X0,
		minY:    world.Y0,
		cols:    cols,
		rows:    rows,
		buckets: make([][]int32, cols*rows),
		bounds:  make([]geom.Rect, 0, capHint),
		stamp:   getStamps(capHint),
	}
}

// Release returns the grid's visit-stamp array to the process-wide pool.
// Call it when the grid is done (end of a graph build, end of a
// verification pass); the grid must not be queried afterwards. Releasing
// is optional — an un-released grid is merely garbage-collected without
// recycling its stamps.
func (g *Grid) Release() {
	putStamps(g.stamp)
	g.stamp = nil
}

func (g *Grid) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= g.cols {
		return g.cols - 1
	}
	return c
}

func (g *Grid) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= g.rows {
		return g.rows - 1
	}
	return r
}

// cellRange returns the inclusive cell index range overlapped by r.
func (g *Grid) cellRange(r geom.Rect) (c0, r0, c1, r1 int) {
	c0 = g.clampCol((r.X0 - g.minX) / g.cell)
	c1 = g.clampCol((r.X1 - 1 - g.minX) / g.cell)
	r0 = g.clampRow((r.Y0 - g.minY) / g.cell)
	r1 = g.clampRow((r.Y1 - 1 - g.minY) / g.cell)
	return
}

// Insert adds a rectangle under the next sequential ID (0, 1, 2, ...) and
// returns that ID. IDs are dense and stable. Insert panics with a clear
// diagnosis when the grid is at MaxEntries — the int32 ID would otherwise
// wrap silently.
func (g *Grid) Insert(r geom.Rect) int {
	if len(g.bounds) >= maxEntries {
		panic(fmt.Sprintf("spatial: grid full at %d entries; int32 ids cannot address more", maxEntries))
	}
	id := int32(len(g.bounds))
	g.bounds = append(g.bounds, r)
	g.stamp = append(g.stamp, 0)
	c0, r0, c1, r1 := g.cellRange(r)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			idx := row*g.cols + col
			g.buckets[idx] = append(g.buckets[idx], id)
		}
	}
	return int(id)
}

// Len returns the number of inserted rectangles.
func (g *Grid) Len() int { return len(g.bounds) }

// Bounds returns the bounding box stored for id.
func (g *Grid) Bounds(id int) geom.Rect { return g.bounds[id] }

// Near calls fn for every stored ID whose bounding box gap distance to the
// query rectangle is at most radius (squared comparison, exact integer
// arithmetic). Each ID is reported once per query; the query ID itself is
// reported too if it matches, so callers filter self-pairs. Near mutates the
// grid's visit stamps, so it is not safe for concurrent use — concurrent
// readers use per-goroutine Queriers instead.
func (g *Grid) Near(q geom.Rect, radius int, fn func(id int)) {
	g.near(g.stamp, &g.visit, q, radius, fn)
}

// near is the shared query kernel: the caller supplies the stamp array and
// visit counter, so Grid.Near (grid-owned stamps) and Querier.Near
// (per-goroutine stamps) enumerate identically — same bucket scan order,
// same per-query deduplication — over the same immutable bucket structure.
func (g *Grid) near(stamp []int32, visit *int32, q geom.Rect, radius int, fn func(id int)) {
	*visit++
	if *visit == 0 { // stamp wrapped; reset
		for i := range stamp {
			stamp[i] = 0
		}
		*visit = 1
	}
	rr := int64(radius) * int64(radius)
	// Expand by radius+1, not radius: rectangles are half-open, so a
	// neighbor at gap exactly radius starts at the first coordinate
	// *outside* q.Expand(radius), and when a cell boundary falls there the
	// bucket scan would skip its cells entirely — a false negative at the
	// inclusive boundary of the distance predicate below. The extra cell
	// ring only adds candidates; GapSq still decides.
	expanded := q.Expand(radius + 1)
	c0, r0, c1, r1 := g.cellRange(expanded)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, id := range g.buckets[row*g.cols+col] {
				if stamp[id] == *visit {
					continue
				}
				stamp[id] = *visit
				if geom.GapSq(q, g.bounds[id]) <= rr {
					fn(int(id))
				}
			}
		}
	}
}

// Querier is a read-only query cursor over a frozen Grid with its own
// visit-stamp state, so multiple goroutines can run Near queries over one
// shared grid concurrently (the parallel graph-construction shards of
// internal/core). The grid must not receive further Inserts while queriers
// exist: a querier's stamp array is sized at creation time.
type Querier struct {
	g     *Grid
	stamp []int32
	visit int32
}

// NewQuerier returns an independent query cursor over the grid's current
// contents. Each goroutine gets its own; a single Querier is not safe for
// concurrent use with itself. Pair with Release to recycle its stamp
// array across builds.
func (g *Grid) NewQuerier() *Querier {
	return &Querier{g: g, stamp: getStamps(len(g.bounds))[:len(g.bounds)]}
}

// Release returns the querier's stamp array to the process-wide pool. The
// querier must not be used afterwards. Optional, like Grid.Release.
func (q *Querier) Release() {
	putStamps(q.stamp)
	q.stamp = nil
}

// Near is Grid.Near using this cursor's private stamps: identical
// enumeration order and semantics, safe to run concurrently with other
// Queriers over the same grid.
func (q *Querier) Near(r geom.Rect, radius int, fn func(id int)) {
	q.g.near(q.stamp, &q.visit, r, radius, fn)
}
