// Package balance implements mask-density balancing, the natural extension
// of the DAC'14 decomposer toward the balanced-density objective of Yu et
// al.'s ICCAD'13 triple-patterning work (the paper's reference [10]): after
// color assignment, exposure masks should carry comparable pattern density,
// or some masks print far off their process window.
//
// The balancer exploits the same observation as the division pipeline's
// reassembly: rotating every vertex of a connected component by the same
// color offset changes no conflict and no stitch (color equality is
// rotation-invariant), but redistributes area across masks. Components are
// therefore rotated greedily — largest area first — to minimize the spread
// between the heaviest and lightest mask.
package balance

import (
	"sort"

	"mpl/internal/graph"
)

// Spread measures imbalance: (max − min) / mean of the per-mask totals.
// Zero means perfectly balanced; the metric is scale-free.
func Spread(areas []int64) float64 {
	if len(areas) == 0 {
		return 0
	}
	minA, maxA, sum := areas[0], areas[0], int64(0)
	for _, a := range areas {
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
		sum += a
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(areas))
	return float64(maxA-minA) / mean
}

// MaskAreas totals per-mask area for a coloring, given each vertex's area.
func MaskAreas(colors []int, areas []int64, k int) []int64 {
	out := make([]int64, k)
	for v, c := range colors {
		if c >= 0 && c < k {
			out[c] += areas[v]
		}
	}
	return out
}

// Rebalance rotates the colors of each connected component of g to even
// out per-mask area. colors is modified in place and returned. The
// transformation is exactly cost-preserving: conflict and stitch counts
// are invariant under per-component rotation because components share no
// edges.
func Rebalance(g *graph.Graph, colors []int, areas []int64, k int) []int {
	if len(colors) != g.N() || len(areas) != g.N() {
		panic("balance: slice lengths must match graph order")
	}
	if k < 2 {
		panic("balance: k must be >= 2")
	}
	comps := g.Components()

	// Per-component area histograms by current color.
	type compInfo struct {
		verts []int
		hist  []int64
		total int64
	}
	infos := make([]compInfo, 0, len(comps))
	for _, comp := range comps {
		ci := compInfo{verts: comp, hist: make([]int64, k)}
		for _, v := range comp {
			if c := colors[v]; c >= 0 && c < k {
				ci.hist[c] += areas[v]
				ci.total += areas[v]
			}
		}
		infos = append(infos, ci)
	}
	// Largest components first: their rotation choices matter most, and
	// small components then fine-tune the residual imbalance.
	sort.SliceStable(infos, func(i, j int) bool { return infos[i].total > infos[j].total })

	running := make([]int64, k)
	trial := make([]int64, k)
	for _, ci := range infos {
		bestRot, bestSpread := 0, 0.0
		for r := 0; r < k; r++ {
			copy(trial, running)
			for c := 0; c < k; c++ {
				trial[(c+r)%k] += ci.hist[c]
			}
			s := Spread(trial)
			if r == 0 || s < bestSpread {
				bestSpread = s
				bestRot = r
			}
		}
		for c := 0; c < k; c++ {
			running[(c+bestRot)%k] += ci.hist[c]
		}
		if bestRot != 0 {
			for _, v := range ci.verts {
				if colors[v] >= 0 {
					colors[v] = (colors[v] + bestRot) % k
				}
			}
		}
	}
	return colors
}

// WindowDensity computes per-mask density over a uniform window grid:
// result[mask][window] = colored area of that mask inside the window. The
// caller supplies a window assignment per vertex (e.g. by fragment
// centroid); vertices with window -1 are skipped. This is the measurement
// side of the balanced-density objective — lithography cares about local,
// not just global, balance.
func WindowDensity(colors []int, areas []int64, windowOf []int, k, numWindows int) [][]int64 {
	out := make([][]int64, k)
	for c := range out {
		out[c] = make([]int64, numWindows)
	}
	for v, c := range colors {
		w := windowOf[v]
		if c >= 0 && c < k && w >= 0 && w < numWindows {
			out[c][w] += areas[v]
		}
	}
	return out
}

// MaxWindowSpread returns the worst Spread across windows of a
// WindowDensity result.
func MaxWindowSpread(density [][]int64, numWindows int) float64 {
	worst := 0.0
	col := make([]int64, len(density))
	for w := 0; w < numWindows; w++ {
		for c := range density {
			col[c] = density[c][w]
		}
		if s := Spread(col); s > worst {
			worst = s
		}
	}
	return worst
}
