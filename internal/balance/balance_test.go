package balance

import (
	"math"
	"math/rand"
	"testing"

	"mpl/internal/coloring"
	"mpl/internal/graph"
)

func TestSpread(t *testing.T) {
	cases := []struct {
		areas []int64
		want  float64
	}{
		{nil, 0},
		{[]int64{5, 5, 5, 5}, 0},
		{[]int64{0, 0, 0, 0}, 0},
		{[]int64{10, 0}, 2}, // (10-0)/5
		{[]int64{4, 8}, 4.0 / 6.0},
	}
	for _, c := range cases {
		if got := Spread(c.areas); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Spread(%v) = %v, want %v", c.areas, got, c.want)
		}
	}
}

func TestMaskAreas(t *testing.T) {
	colors := []int{0, 1, 1, 3, -1}
	areas := []int64{10, 20, 30, 40, 99}
	got := MaskAreas(colors, areas, 4)
	want := []int64{10, 50, 0, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MaskAreas = %v, want %v", got, want)
		}
	}
}

func TestRebalanceTwoComponents(t *testing.T) {
	// Two disjoint edges, all area initially on masks 0/1. Rebalancing can
	// rotate one component to masks 2/3, halving the spread.
	g := graph.New(4)
	g.AddConflict(0, 1)
	g.AddConflict(2, 3)
	colors := []int{0, 1, 0, 1}
	areas := []int64{10, 10, 10, 10}
	before := Spread(MaskAreas(colors, areas, 4))
	Rebalance(g, colors, areas, 4)
	after := Spread(MaskAreas(colors, areas, 4))
	if after >= before {
		t.Fatalf("spread %v -> %v, want improvement", before, after)
	}
	if after != 0 {
		t.Fatalf("perfectly balanceable case ended at spread %v (colors %v)", after, colors)
	}
}

// TestRebalancePreservesCost is the core invariant: rotation never changes
// conflicts or stitches.
func TestRebalancePreservesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(40)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasStitch(u, v) {
				g.AddConflict(u, v)
			}
		}
		for i := 0; i < n/3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasConflict(u, v) && !g.HasStitch(u, v) {
				g.AddStitch(u, v)
			}
		}
		k := 4 + rng.Intn(2)
		colors := make([]int, n)
		areas := make([]int64, n)
		for v := range colors {
			colors[v] = rng.Intn(k)
			areas[v] = int64(1 + rng.Intn(100))
		}
		c0, s0 := coloring.Count(g, colors)
		before := Spread(MaskAreas(colors, areas, k))
		Rebalance(g, colors, areas, k)
		c1, s1 := coloring.Count(g, colors)
		after := Spread(MaskAreas(colors, areas, k))
		if c0 != c1 || s0 != s1 {
			t.Fatalf("trial %d: cost changed: %d/%d -> %d/%d", trial, c0, s0, c1, s1)
		}
		if after > before+1e-12 {
			t.Fatalf("trial %d: spread worsened %v -> %v", trial, before, after)
		}
		if err := coloring.Validate(g, colors, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRebalancePanics(t *testing.T) {
	g := graph.New(2)
	cases := []func(){
		func() { Rebalance(g, []int{0}, []int64{1, 1}, 4) },
		func() { Rebalance(g, []int{0, 0}, []int64{1}, 4) },
		func() { Rebalance(g, []int{0, 0}, []int64{1, 1}, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWindowDensity(t *testing.T) {
	colors := []int{0, 0, 1, 2}
	areas := []int64{5, 7, 11, 13}
	windows := []int{0, 1, 0, -1}
	d := WindowDensity(colors, areas, windows, 4, 2)
	if d[0][0] != 5 || d[0][1] != 7 || d[1][0] != 11 || d[2][0] != 0 {
		t.Fatalf("density = %v", d)
	}
	if s := MaxWindowSpread(d, 2); s <= 0 {
		t.Fatalf("spread = %v, want positive (unbalanced windows)", s)
	}
	balanced := [][]int64{{5, 5}, {5, 5}}
	if s := MaxWindowSpread(balanced, 2); s != 0 {
		t.Fatalf("balanced spread = %v", s)
	}
}
