// Package ctxflow enforces the cancellation contract (DESIGN.md §7, §10):
// deadlines flow from the caller into every solve, so no internal package
// may mint a fresh root context or drop a caller's ctx on the floor.
//
// Rules (internal/ packages only, except where noted):
//
//  1. noFreshCtx: context.Background()/context.TODO() are forbidden,
//     except as the ctx argument of the enclosing function's own
//     ...Context variant — the documented compatibility-wrapper shape
//     `func Solve(...) { return SolveContext(context.Background(), ...) }`.
//  2. ctxFirst: a context.Context parameter must be the first parameter
//     (receivers aside), the position every caller and go vet expects.
//  3. contextSuffix: an exported function named ...Context must actually
//     take a context.Context first — the suffix is the API's promise.
//  4. threadCtx: calling Foo when FooContext exists (same package or an
//     imported one) from a function that has a ctx in scope silently
//     discards cancellation; call the Context variant.
//  5. noCtxField: storing a context.Context in a struct field outlives
//     the request it belongs to; pass it as a parameter instead.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"mpl/internal/lint/lintkit"
)

// Analyzer is the context-threading checker.
var Analyzer = &lintkit.Analyzer{
	Name: "ctxflow",
	Doc: "enforces context.Context threading: no fresh Background/TODO outside\n" +
		"compatibility wrappers, ctx first, no ctx struct fields, and no calls that\n" +
		"drop an in-scope ctx when a ...Context variant exists",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.PathWithin(pass.Path, "internal") {
		return nil
	}
	if lintkit.PathWithin(pass.Path, "internal/lint") {
		return nil // the linter's own plumbing is not solve-path code
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if st, ok := n.(*ast.StructType); ok {
				checkNoCtxField(pass, st)
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignature(pass, fd.Name, fd.Type, fd.Name.IsExported())
			if fd.Body != nil {
				walkFunc(pass, fd.Name.Name, hasCtxParam(fd.Type), fd.Body)
			}
		}
	}
	return nil
}

// walkFunc checks the calls of one function body. name is the enclosing
// declared function ("" inside a literal — wrappers must be declared);
// hasCtx reports whether a ctx is lexically in scope, which closures
// inherit from their enclosing function.
func walkFunc(pass *lintkit.Pass, name string, hasCtx bool, body ast.Node) {
	allowedFresh := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkSignature(pass, nil, n.Type, false)
			walkFunc(pass, name, hasCtx || hasCtxParam(n.Type), n.Body)
			return false
		case *ast.CallExpr:
			// The compatibility-wrapper shape: Foo calling
			// FooContext(context.Background(), ...) is the one sanctioned
			// fresh-context site; remember the inner call before
			// descending into it.
			if len(n.Args) > 0 && calleeName(n) == name+"Context" {
				if inner, ok := n.Args[0].(*ast.CallExpr); ok && isFreshCtxCall(pass, inner) {
					allowedFresh[inner] = true
				}
			}
			checkCall(pass, name, hasCtx, allowedFresh, n)
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isFreshCtxCall matches context.Background() / context.TODO().
func isFreshCtxCall(pass *lintkit.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") && isContextPkg(pass, pkg)
}

func hasCtxParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(field.Type) {
			return true
		}
	}
	return false
}

// isCtxType matches the syntactic type context.Context.
func isCtxType(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

// checkSignature applies ctxFirst and contextSuffix to one signature.
func checkSignature(pass *lintkit.Pass, name *ast.Ident, ft *ast.FuncType, exported bool) {
	if ft.Params != nil {
		argPos := 0
		for _, field := range ft.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isCtxType(field.Type) && argPos != 0 {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			}
			argPos += n
		}
	}
	if name != nil && exported && strings.HasSuffix(name.Name, "Context") && name.Name != "Context" {
		first := firstParamIsCtx(ft)
		if !first {
			pass.Reportf(name.Pos(), "%s is named ...Context but does not take a context.Context first parameter", name.Name)
		}
	}
}

func firstParamIsCtx(ft *ast.FuncType) bool {
	return ft.Params != nil && len(ft.Params.List) > 0 && isCtxType(ft.Params.List[0].Type)
}

// checkNoCtxField applies noCtxField to one struct type.
func checkNoCtxField(pass *lintkit.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isCtxType(field.Type) {
			pass.Reportf(field.Pos(), "context.Context stored in a struct field outlives its request; pass ctx as a parameter instead")
		}
	}
}

// checkCall applies noFreshCtx and threadCtx to one call.
func checkCall(pass *lintkit.Pass, name string, hasCtx bool, allowedFresh map[ast.Node]bool, call *ast.CallExpr) {
	// Rule 1: context.Background()/TODO().
	if isFreshCtxCall(pass, call) {
		if !allowedFresh[call] {
			pass.Reportf(call.Pos(), "context.%s() mints a fresh root context inside internal code; thread the caller's ctx (compatibility wrappers must pass it to their own ...Context variant)", calleeName(call))
		}
		return
	}
	// Rule 4: Foo(...) where FooContext exists and ctx is in scope.
	if !hasCtx {
		return
	}
	callee, scope := calleeNameAndScope(pass, call)
	if callee == "" || strings.HasSuffix(callee, "Context") || scope == nil {
		return
	}
	variant := callee + "Context"
	if obj := scope.Lookup(variant); obj != nil {
		if fn, isFn := obj.(*types.Func); isFn && fnTakesCtx(fn) {
			pass.Reportf(call.Pos(), "%s drops the in-scope ctx; call %s and pass it", callee, variant)
		}
	}
}

func isContextPkg(pass *lintkit.Pass, pkgID *ast.Ident) bool {
	obj, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	return ok && obj.Imported().Path() == "context"
}

// calleeNameAndScope resolves a call's target name and the scope in which
// to look for a ...Context sibling: the package scope for local calls and
// the imported package's scope for pkg.Foo calls. Method calls resolve to
// the receiver's named-type methods via types info.
func calleeNameAndScope(pass *lintkit.Pass, call *ast.CallExpr) (string, *types.Scope) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok && obj.Pkg() == pass.Pkg {
			return fun.Name, pass.Pkg.Scope()
		}
	case *ast.SelectorExpr:
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pn, isPkg := pass.TypesInfo.Uses[pkgID].(*types.PkgName); isPkg {
				return fun.Sel.Name, pn.Imported().Scope()
			}
		}
		// Method call x.Foo(...): look for a FooContext method on the
		// same receiver type.
		if sel := pass.TypesInfo.Selections[fun]; sel != nil {
			if named, ok := derefNamed(sel.Recv()); ok {
				variant := fun.Sel.Name + "Context"
				for i := 0; i < named.NumMethods(); i++ {
					m := named.Method(i)
					if m.Name() == variant && fnTakesCtx(m) {
						// Report through a synthetic one-entry scope.
						sc := types.NewScope(nil, 0, 0, "")
						sc.Insert(m)
						return fun.Sel.Name, sc
					}
				}
			}
		}
	}
	return "", nil
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

func fnTakesCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	named, ok := derefNamed(sig.Params().At(0).Type())
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
