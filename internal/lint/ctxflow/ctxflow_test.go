package ctxflow_test

import (
	"testing"

	"mpl/internal/lint/ctxflow"
	"mpl/internal/lint/lintkit"
)

func TestAnalyzer(t *testing.T) {
	lintkit.RunFixture(t, "testdata", []*lintkit.Analyzer{ctxflow.Analyzer}, "./...")
}
