// Package svc is a ctxflow fixture: an internal/ package, so all five
// context-threading rules apply.
package svc

import "context"

// Server stores a context — rule 5 (noCtxField).
type Server struct {
	ctx context.Context // want `context.Context stored in a struct field outlives its request`
}

// Solve is the sanctioned compatibility-wrapper shape: the fresh context
// goes straight into the function's own ...Context variant.
func Solve(n int) int {
	return SolveContext(context.Background(), n)
}

// SolveContext is the real entry point.
func SolveContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Fresh mints a root context outside the wrapper shape — rule 1.
func Fresh() context.Context {
	return context.Background() // want `context.Background\(\) mints a fresh root context inside internal code`
}

// BadOrder takes ctx second — rule 2 (ctxFirst).
func BadOrder(n int, ctx context.Context) { // want `context.Context must be the first parameter`
	_ = ctx
	_ = n
}

// RunContext breaks the ...Context naming promise — rule 3.
func RunContext(n int) { // want `RunContext is named ...Context but does not take a context.Context first parameter`
	_ = n
}

// Drops has a ctx in scope but calls the non-Context variant — rule 4.
func Drops(ctx context.Context, n int) int {
	_ = ctx
	return Solve(n) // want `Solve drops the in-scope ctx; call SolveContext and pass it`
}

// Threads is rule 4 done right: the in-scope ctx flows into the variant.
func Threads(ctx context.Context, n int) int {
	return SolveContext(ctx, n)
}

// Detach is a suppressed fresh context with its contract argument.
func Detach() context.Context {
	//lint:ignore ctxflow fixture: deliberately detached background task, documented at the call site
	return context.Background()
}
