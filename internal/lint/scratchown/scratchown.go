// Package scratchown enforces the DESIGN.md §9 scratch-arena ownership
// rules that make pooled scratch memory race-free: a *pipeline.Scratch is
// a single-goroutine lease, threaded by parameter, returned to its pool,
// and never referenced again.
//
// Rules:
//
//  1. noField (§9 rule 1): a Scratch must not be stored in a struct field
//     — fields outlive the lease and invite cross-goroutine sharing.
//     (*pipeline.ScratchPool fields are fine: pools are shared by design.)
//  2. noGoCapture (§9 rule 2): a goroutine must not capture or receive an
//     enclosing scope's Scratch — each racer/worker leases its own arena
//     inside its own goroutine (`sc := pool.Get()` in the goroutine body).
//     The SDP restart fan-out (DESIGN.md §14) is the canonical sanctioned
//     shape: the caller's arena keeps the pre-carved factor blocks, and
//     each extra restart runner opens `rsc := env.Scratch.Get()` /
//     `defer env.Scratch.Put(rsc)` inside its goroutine for the workspace
//     it descends with. Pool, Env, and Budget captures are exempt — those
//     are shared by design; only the leased arena is single-goroutine.
//  3. noUseAfterPut (§9 rule 3): after pool.Put(sc), sc (and every buffer
//     carved from it) belongs to the next lessee; any later use of sc in
//     the same block is a finding. `defer pool.Put(sc)` is the idiomatic
//     shape and is exempt.
//  4. noChanSend: sending a Scratch across a channel hands the lease to
//     another goroutine — same hazard as rule 2.
//
// The defining package (internal/pipeline) is exempt: the pool and arena
// internals necessarily hold scratches in fields.
package scratchown

import (
	"go/ast"
	"go/types"

	"mpl/internal/lint/lintkit"
)

// Analyzer is the scratch-ownership checker.
var Analyzer = &lintkit.Analyzer{
	Name: "scratchown",
	Doc: "enforces pipeline.Scratch ownership (DESIGN.md §9): no struct fields,\n" +
		"no goroutine captures, no channel sends, no use after Put",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if lintkit.PathWithin(pass.Path, "internal/pipeline") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkNoField(pass, n)
			case *ast.GoStmt:
				checkGoStmt(pass, n)
			case *ast.SendStmt:
				if isScratchExpr(pass, n.Value) {
					pass.Reportf(n.Pos(), "pipeline.Scratch sent on a channel: the lease is single-goroutine (DESIGN.md §9 rule 2); the receiver must lease its own arena")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkUseAfterPut(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// isScratchType matches pipeline.Scratch / *pipeline.Scratch by name and
// defining-package tail, so fixture stubs under internal/pipeline match
// like the real package.
func isScratchType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Scratch" && obj.Pkg() != nil && lintkit.PathWithin(obj.Pkg().Path(), "internal/pipeline")
}

func isScratchExpr(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isScratchType(tv.Type)
}

// checkNoField applies rule 1 to one struct type.
func checkNoField(pass *lintkit.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isScratchType(tv.Type) {
			pass.Reportf(field.Pos(), "pipeline.Scratch stored in a struct field outlives its lease (DESIGN.md §9 rule 1); thread it as a parameter")
		}
	}
}

// checkGoStmt applies rule 2: `go func(){ ...sc... }()` capturing an outer
// Scratch, or `go f(sc)` passing one, hands the caller's lease to another
// goroutine.
func checkGoStmt(pass *lintkit.Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if isScratchExpr(pass, arg) {
			pass.Reportf(arg.Pos(), "pipeline.Scratch passed into a goroutine: the lease is single-goroutine (DESIGN.md §9 rule 2); lease inside the goroutine instead")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !isScratchVar(obj) {
			return true
		}
		// Declared inside the literal: the goroutine's own lease — the
		// sanctioned racer pattern.
		if lit.Body.Pos() <= obj.Pos() && obj.Pos() <= lit.Body.End() {
			return true
		}
		pass.Reportf(id.Pos(), "goroutine captures pipeline.Scratch %s from its enclosing scope (DESIGN.md §9 rule 2); racers lease their own arena with pool.Get() inside the goroutine", id.Name)
		return true
	})
}

func isScratchVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && isScratchType(v.Type())
}

// checkUseAfterPut applies rule 3 with a straight-line scan of each block:
// a non-deferred pool.Put(sc) kills sc for the statements after it in the
// same block (branch-crossing liveness is left to the race detector).
func checkUseAfterPut(pass *lintkit.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		dead := map[types.Object]bool{}
		for _, stmt := range block.List {
			// Reassignment revives the variable (a fresh lease): the plain
			// identifier on the left is the new lease's home, not a use of
			// the dead one, so it is exempted before uses are reported.
			if as, ok := stmt.(*ast.AssignStmt); ok {
				if len(dead) > 0 {
					for _, rhs := range as.Rhs {
						reportDeadUses(pass, rhs, dead)
					}
				}
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							delete(dead, obj)
						}
					} else if len(dead) > 0 {
						reportDeadUses(pass, lhs, dead) // e.g. sc.buf = ... stores into a dead arena
					}
				}
			} else if len(dead) > 0 {
				reportDeadUses(pass, stmt, dead)
			}
			if obj := putTarget(pass, stmt); obj != nil {
				dead[obj] = true
			}
		}
		return true
	})
}

// putTarget matches the statement form `pool.Put(sc)` (any receiver whose
// method is named Put with a single Scratch argument) and returns sc's
// object.
func putTarget(pass *lintkit.Pass, stmt ast.Stmt) types.Object {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok || !isScratchExpr(pass, id) {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

func reportDeadUses(pass *lintkit.Pass, node ast.Node, dead map[types.Object]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && dead[obj] {
			pass.Reportf(id.Pos(), "%s used after being returned to its pool with Put (DESIGN.md §9 rule 3); the arena now belongs to the next lessee", id.Name)
		}
		return true
	})
}
