package scratchown_test

import (
	"testing"

	"mpl/internal/lint/lintkit"
	"mpl/internal/lint/scratchown"
)

func TestAnalyzer(t *testing.T) {
	lintkit.RunFixture(t, "testdata", []*lintkit.Analyzer{scratchown.Analyzer}, "./...")
}
