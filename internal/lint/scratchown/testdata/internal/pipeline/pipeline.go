// Package pipeline is a fixture stub of the real scratch arena: the
// analyzer matches Scratch by name plus defining-package path tail, so
// this stub exercises the same code paths as mpl/internal/pipeline.
package pipeline

// Scratch is a pooled arena leased to exactly one goroutine at a time.
type Scratch struct {
	buf []int
}

// Ints carves an int slice from the arena.
func (s *Scratch) Ints(n int) []int {
	s.buf = append(s.buf[:0], make([]int, n)...)
	return s.buf
}

// ScratchPool hands out arenas.
type ScratchPool struct{}

// Get leases an arena.
func (p *ScratchPool) Get() *Scratch { return &Scratch{} }

// Put returns an arena to the pool.
func (p *ScratchPool) Put(s *Scratch) { _ = s }
