// Package pipeline is a fixture stub of the real scratch arena: the
// analyzer matches Scratch by name plus defining-package path tail, so
// this stub exercises the same code paths as mpl/internal/pipeline.
package pipeline

// Scratch is a pooled arena leased to exactly one goroutine at a time.
type Scratch struct {
	buf []int
}

// Ints carves an int slice from the arena.
func (s *Scratch) Ints(n int) []int {
	s.buf = append(s.buf[:0], make([]int, n)...)
	return s.buf
}

// ScratchPool hands out arenas.
type ScratchPool struct{}

// Get leases an arena.
func (p *ScratchPool) Get() *Scratch { return &Scratch{} }

// Put returns an arena to the pool.
func (p *ScratchPool) Put(s *Scratch) { _ = s }

// Env mirrors the real pipeline.Env: pool and budget are shared by design,
// so carrying them in a struct (or capturing them in goroutines) is fine —
// only the leased Scratch itself is single-goroutine.
type Env struct {
	Scratch *ScratchPool
	Budget  *Budget
}

// Budget is a stub of the shared parallelism budget.
type Budget struct{}

// TryAcquire claims an idle-worker slot if one is free.
func (b *Budget) TryAcquire() bool { return b != nil }

// Release returns a claimed slot.
func (b *Budget) Release() {}
