// Package division is a scratchown fixture exercising every ownership
// rule of DESIGN.md §9 against the pipeline stub.
package division

import "fix/internal/pipeline"

// holder breaks rule 1: a field outlives the lease.
type holder struct {
	sc *pipeline.Scratch // want `pipeline.Scratch stored in a struct field outlives its lease`
}

// pools holding pools is fine — pools are shared by design.
type worker struct {
	pool *pipeline.ScratchPool
}

// GoCapture breaks rule 2: the goroutine borrows the caller's lease.
func GoCapture(pool *pipeline.ScratchPool) {
	sc := pool.Get()
	go func() {
		_ = sc.Ints(8) // want `goroutine captures pipeline.Scratch sc from its enclosing scope`
	}()
	pool.Put(sc)
}

// GoArg breaks rule 2 by parameter instead of capture.
func GoArg(pool *pipeline.ScratchPool) {
	sc := pool.Get()
	go use(sc) // want `pipeline.Scratch passed into a goroutine`
}

func use(sc *pipeline.Scratch) { _ = sc.Ints(4) }

// Racer is the sanctioned shape: each goroutine leases its own arena.
func Racer(pool *pipeline.ScratchPool) {
	go func() {
		sc := pool.Get()
		defer pool.Put(sc)
		_ = sc.Ints(8)
	}()
}

// Send breaks rule 4: a channel send hands the lease to the receiver.
func Send(pool *pipeline.ScratchPool, ch chan *pipeline.Scratch) {
	sc := pool.Get()
	ch <- sc // want `pipeline.Scratch sent on a channel`
}

// HandOff is the same send under a documented handoff protocol.
func HandOff(pool *pipeline.ScratchPool, ch chan *pipeline.Scratch) {
	sc := pool.Get()
	//lint:ignore scratchown fixture: documented handoff protocol — the send transfers the lease and the sender never touches sc again
	ch <- sc
}

// UseAfterPut breaks rule 3: the arena belongs to the next lessee.
func UseAfterPut(pool *pipeline.ScratchPool) []int {
	sc := pool.Get()
	_ = sc.Ints(4)
	pool.Put(sc)
	return sc.Ints(8) // want `sc used after being returned to its pool with Put`
}

// DeferPut is the idiomatic release: exempt from rule 3.
func DeferPut(pool *pipeline.ScratchPool) []int {
	sc := pool.Get()
	defer pool.Put(sc)
	return sc.Ints(4)
}

// Release is fine: reassignment starts a fresh lease.
func Release(pool *pipeline.ScratchPool) []int {
	sc := pool.Get()
	pool.Put(sc)
	sc = pool.Get()
	defer pool.Put(sc)
	return sc.Ints(4)
}
