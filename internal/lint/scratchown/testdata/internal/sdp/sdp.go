// Package sdp is a scratchown fixture for the per-restart arena-lease
// pattern of the parallel SDP fan-out (DESIGN.md §14): the caller's arena
// keeps the factor blocks carved before any concurrency, and every extra
// restart runner leases its own workspace arena inside its goroutine.
// Capturing the caller's lease in a runner is the rule-2 violation the
// pattern exists to avoid.
package sdp

import "fix/internal/pipeline"

// RestartFanOut is the sanctioned shape: blocks carved serially from the
// caller's lease, runner workspaces leased per goroutine from the shared
// pool (pool and budget captures are fine — they are shared by design).
func RestartFanOut(sc *pipeline.Scratch, env pipeline.Env) {
	_ = sc.Ints(64) // factor blocks: carved before any concurrency
	for env.Budget.TryAcquire() {
		go func() {
			defer env.Budget.Release()
			rsc := env.Scratch.Get()
			defer env.Scratch.Put(rsc)
			_ = rsc.Ints(32) // runner-owned workspace
		}()
	}
}

// RestartBorrow hands the caller's lease to a runner — rule 2.
func RestartBorrow(sc *pipeline.Scratch, env pipeline.Env) {
	for env.Budget.TryAcquire() {
		go func() {
			defer env.Budget.Release()
			_ = sc.Ints(32) // want `goroutine captures pipeline.Scratch sc from its enclosing scope`
		}()
	}
}
