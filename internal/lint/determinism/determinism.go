// Package determinism enforces the repository's byte-identical-output
// contract (DESIGN.md §3, §10): the same layout and options must produce
// the same bytes at any worker count, because golden tests, cache keys,
// and the incremental-≡-scratch equivalence all hash or compare outputs.
//
// Three rules:
//
//  1. mapOrder (all packages): ranging over a map must not emit output or
//     accumulate an order-dependent slice that escapes unsorted. Copying
//     into another map, summing, or counting is commutative and fine;
//     fmt.Fprintf inside the loop, or append-then-return without an
//     intervening sort, is a finding.
//  2. wallClock (solver-path packages only): time.Now is allowed solely
//     in the duration-telemetry pattern `t := time.Now()` where every use
//     of t is time.Since(t) or a .Sub operand. Deadlines and any other
//     escape of wall-clock values need a //lint:ignore determinism with
//     the contract argument (e.g. "budget expiry is surfaced as
//     Proven=false, never as different bytes").
//  3. seededRand (solver-path packages only): the global math/rand source
//     (rand.Intn, rand.Shuffle, ...) is process-seeded and forbidden;
//     construct a seeded rand.New(rand.NewSource(seed)) instead.
package determinism

import (
	"go/ast"
	"go/types"

	"mpl/internal/lint/lintkit"
)

// solverPaths are the package-path tails whose computations feed golden
// outputs and cache keys. cmd/* and the serving layer are covered by
// mapOrder but may read wall clocks freely (request timing, logs).
var solverPaths = []string{
	"internal/core", "internal/division", "internal/portfolio",
	"internal/sdp", "internal/ilp", "internal/pipeline",
	"internal/ghtree", "internal/maxflow", "internal/coloring",
	"internal/graph", "internal/canon",
}

// Analyzer is the determinism checker.
var Analyzer = &lintkit.Analyzer{
	Name: "determinism",
	Doc: "flags map-iteration order escaping into outputs, and wall-clock/global-rand\n" +
		"reads in solver-path packages, which would break byte-identical replay",
	Run: run,
}

func solverPath(path string) bool {
	for _, p := range solverPaths {
		if lintkit.PathWithin(path, p) {
			return true
		}
	}
	return false
}

func run(pass *lintkit.Pass) error {
	inSolver := solverPath(pass.Path)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
				return true
			case *ast.CallExpr:
				if !inSolver {
					return true
				}
				checkWallClockAndRand(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkFunc applies the mapOrder rule to one function body: every
// range-over-map inside it is checked for emits and unsorted escapes.
func checkFunc(pass *lintkit.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

// emitFuncs are fmt output calls whose interleaving with map iteration
// makes the emitted byte order follow the (randomized) map order.
var emitFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// emitMethods write to an accumulating sink (io.Writer, strings.Builder,
// json/xml encoders) — same hazard as the fmt functions.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

func checkMapRange(pass *lintkit.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	// Pass 1 over the loop body: emits, and slice objects appended to.
	appended := map[types.Object]ast.Node{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "fmt" && emitFuncs[fun.Sel.Name] {
				pass.Reportf(call.Pos(), "output emitted while ranging over a map: iteration order is randomized; collect and sort keys first")
				return true
			}
			if emitMethods[fun.Sel.Name] && pass.TypesInfo.Selections[fun] != nil {
				pass.Reportf(call.Pos(), "%s called while ranging over a map: iteration order is randomized; collect and sort keys first", fun.Sel.Name)
				return true
			}
		case *ast.Ident:
			if fun.Name == "append" && len(call.Args) > 0 {
				if obj := appendTarget(pass, rs, call); obj != nil {
					appended[obj] = call
				}
			}
		}
		return true
	})
	if len(appended) == 0 {
		return
	}
	// Pass 2 over the whole function: an appended slice is safe once any
	// sort touches it; otherwise escaping it (return, call argument,
	// field/index store, channel send) carries map order out.
	for obj, site := range appended {
		if sortedInFunc(pass, fn, obj) {
			continue
		}
		if escape := escapeInFunc(pass, fn, rs, obj); escape != "" {
			pass.Reportf(site.Pos(), "slice %s accumulates map-iteration order and %s without an intervening sort", obj.Name(), escape)
		}
	}
}

// appendTarget resolves `x = append(x, ...)` inside the range body to x's
// object, when x is a plain identifier (not the loop's own variable).
func appendTarget(pass *lintkit.Pass, rs *ast.RangeStmt, call *ast.CallExpr) types.Object {
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return nil
	}
	// An append to a slice of the loop's own making (declared inside the
	// body) that never leaves the iteration is per-key work, not
	// accumulation across keys.
	if rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End() {
		return nil
	}
	return obj
}

// sortedInFunc reports whether fn contains a sort/slices call that
// references obj anywhere in its arguments.
func sortedInFunc(pass *lintkit.Pass, fn *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if referencesObj(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// escapeInFunc reports how obj's contents leave the function (or shared
// state) after the range loop, as a human-readable phrase; empty means no
// escape was found.
func escapeInFunc(pass *lintkit.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) string {
	escape := ""
	ast.Inspect(fn, func(n ast.Node) bool {
		if escape != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if referencesObj(pass, res, obj) {
					escape = "is returned"
					return false
				}
			}
		case *ast.CallExpr:
			if n.Pos() >= rs.Body.Pos() && n.End() <= rs.Body.End() {
				return true // appends inside the loop itself
			}
			if isAppendOrBuiltin(n) {
				return true
			}
			for _, arg := range n.Args {
				if referencesObj(pass, arg, obj) {
					escape = "is passed along"
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && !referencesObj(pass, n.Rhs[i], obj) {
					continue
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escape = "is stored"
					return false
				}
			}
		case *ast.SendStmt:
			if referencesObj(pass, n.Value, obj) {
				escape = "is sent on a channel"
				return false
			}
		}
		return true
	})
	// A named result escapes by definition even without an explicit
	// return expression.
	if escape == "" {
		if v, ok := obj.(*types.Var); ok && namedResult(pass, fn, v) {
			escape = "is a named result"
		}
	}
	return escape
}

func isAppendOrBuiltin(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && (id.Name == "append" || id.Name == "len" || id.Name == "cap" || id.Name == "copy")
}

func namedResult(pass *lintkit.Pass, fn *ast.BlockStmt, v *types.Var) bool {
	// Heuristic: the variable was declared before the body began.
	return v.Pos() < fn.Pos()
}

func referencesObj(pass *lintkit.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkWallClockAndRand applies rules 2 and 3 to one call expression.
func checkWallClockAndRand(pass *lintkit.Pass, f *ast.File, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return
	}
	switch obj.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" && !durationOnly(pass, f, call) {
			pass.Reportf(call.Pos(), "time.Now in a solver-path package escapes the duration-telemetry pattern; wall-clock values must not influence output bytes (//lint:ignore determinism <why> if this is a budget deadline surfaced via Proven/Degraded)")
		}
	case "math/rand", "math/rand/v2":
		// Constructors and source plumbing are fine — only draws from the
		// package-global, process-seeded source are flagged.
		switch sel.Sel.Name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		pass.Reportf(call.Pos(), "%s.%s draws from the global rand source; use a rand.New(rand.NewSource(seed)) threaded from Options so replays are reproducible", pkgID.Name, sel.Sel.Name)
	}
}

// durationOnly reports whether the time.Now() call is the duration-
// telemetry pattern: its value lands in a single variable whose every use
// is time.Since(t) or a .Sub operand.
func durationOnly(pass *lintkit.Pass, f *ast.File, now *ast.CallExpr) bool {
	var obj types.Object
	ok := false
	ast.Inspect(f, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		for i, rhs := range as.Rhs {
			if rhs != now || i >= len(as.Lhs) {
				continue
			}
			if id, isID := as.Lhs[i].(*ast.Ident); isID {
				if o := pass.TypesInfo.Defs[id]; o != nil {
					obj, ok = o, true
				} else if o := pass.TypesInfo.Uses[id]; o != nil {
					obj, ok = o, true
				}
			}
		}
		return !ok
	})
	if !ok {
		return false
	}
	// Every use of the variable must be a duration computation.
	safe := true
	ast.Inspect(f, func(n ast.Node) bool {
		if !safe {
			return false
		}
		id, isID := n.(*ast.Ident)
		if !isID || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if !durationUse(pass, f, id) {
			safe = false
		}
		return true
	})
	return safe
}

// durationUse reports whether this use of the time variable is a duration
// computation — time.Since(t), t.Sub(u), u.Sub(t) — or the target of a
// reassignment (itself checked as its own time.Now site).
func durationUse(pass *lintkit.Pass, f *ast.File, id *ast.Ident) bool {
	path := enclosing(f, id)
	if len(path) == 0 {
		return false
	}
	switch parent := path[len(path)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == ast.Expr(id) {
				return true
			}
		}
	case *ast.CallExpr:
		if fun, ok := parent.Fun.(*ast.SelectorExpr); ok {
			if pkg, isPkg := fun.X.(*ast.Ident); isPkg && pkg.Name == "time" && fun.Sel.Name == "Since" {
				return true // time.Since(t)
			}
			if fun.Sel.Name == "Sub" {
				return true // u.Sub(t)
			}
		}
	case *ast.SelectorExpr:
		if parent.Sel.Name == "Sub" && parent.X == ast.Expr(id) {
			return true // t.Sub(u)
		}
	}
	return false
}

// enclosing returns the path of nodes from the file down to (and
// excluding) target.
func enclosing(f *ast.File, target ast.Node) []ast.Node {
	var path, best []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		if n == target {
			best = append([]ast.Node(nil), path...)
			return false
		}
		path = append(path, n)
		return true
	})
	return best
}
