package determinism_test

import (
	"testing"

	"mpl/internal/lint/determinism"
	"mpl/internal/lint/lintkit"
)

func TestAnalyzer(t *testing.T) {
	lintkit.RunFixture(t, "testdata", []*lintkit.Analyzer{determinism.Analyzer}, "./...")
}
