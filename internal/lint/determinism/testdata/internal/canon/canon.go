// Package canon is a determinism fixture for the shape-cache pattern: its
// import path ends in internal/canon, so the solver-path rules apply. The
// real cache (internal/canon.ShapeCache) holds maps keyed by canonical
// encodings; the contract is that those maps are only read through keyed
// lookups — ranging over one and letting the order escape would make cache
// behavior (eviction, reporting) depend on Go's randomized map order.
package canon

import (
	"fmt"
	"sort"
)

// cache mirrors the shape-cache shape: entries keyed by encoded form.
type cache struct {
	reps map[string][]int
}

// Lookup is the sanctioned access pattern: a keyed read, never a range.
func (c *cache) Lookup(enc string) ([]int, bool) {
	colors, ok := c.reps[enc]
	return colors, ok
}

// Store is likewise keyed; no iteration order exists to leak.
func (c *cache) Store(enc string, colors []int) {
	c.reps[enc] = colors
}

// Len folds to a single order-independent count — no finding.
func (c *cache) Len() int {
	n := 0
	for range c.reps {
		n++
	}
	return n
}

// DumpUnsorted is the forbidden shape: emitting entries in map-iteration
// order makes the dump bytes nondeterministic.
func (c *cache) DumpUnsorted() {
	for enc, colors := range c.reps {
		fmt.Printf("%x: %v\n", enc, colors) // want `output emitted while ranging over a map`
	}
}

// KeysUnsorted lets map-iteration order escape through the return value.
func (c *cache) KeysUnsorted() []string {
	var keys []string
	for enc := range c.reps {
		keys = append(keys, enc) // want `slice keys accumulates map-iteration order and is returned`
	}
	return keys
}

// KeysSorted is the sanctioned escape: collect, sort, then return.
func (c *cache) KeysSorted() []string {
	var keys []string
	for enc := range c.reps {
		keys = append(keys, enc)
	}
	sort.Strings(keys)
	return keys
}
