// Package core is a determinism fixture: its import path ends in
// internal/core, so the solver-path rules (wallClock, seededRand) apply in
// addition to the everywhere rule (mapOrder).
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EmitUnsorted interleaves output with map iteration: the byte order
// follows the randomized map order.
func EmitUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `output emitted while ranging over a map`
	}
}

// ReturnUnsorted accumulates keys in iteration order and returns them.
func ReturnUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys accumulates map-iteration order and is returned`
	}
	return keys
}

// ReturnSorted is the sanctioned shape: collect, sort, then use.
func ReturnSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SumValues folds commutatively over a map — order-independent, no finding.
func SumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Deadline lets a wall-clock value escape the duration-telemetry pattern.
func Deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget) // want `time.Now in a solver-path package escapes the duration-telemetry pattern`
}

// AllowedDeadline is the same code with the documented contract argument.
func AllowedDeadline(budget time.Duration) time.Time {
	//lint:ignore determinism fixture: budget expiry is surfaced as Proven=false, never as different output bytes
	return time.Now().Add(budget)
}

// Telemetry is the allowed time.Now pattern: every use of t is a duration
// computation.
func Telemetry() time.Duration {
	t := time.Now()
	work()
	return time.Since(t)
}

func work() {}

// GlobalRand draws from the process-seeded global source.
func GlobalRand(n int) int {
	return rand.Intn(n) // want `rand.Intn draws from the global rand source`
}

// SeededRand constructs its own seeded source — reproducible, no finding.
func SeededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// SuppressedRand shows the trailing-directive form.
func SuppressedRand(n int) int {
	return rand.Intn(n) //lint:ignore determinism fixture: jitter for a retry backoff, never reaches output bytes
}
