// Package service is a lockdiscipline fixture: the counter's field is
// annotated `guarded by mu`, so every access must hold c.mu.
package service

import "sync"

// Counter is the annotated struct under test.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc is the plain lock/access/unlock shape.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Bad reads the guarded field with no lock at all.
func (c *Counter) Bad() int {
	return c.n // want `c\.n is guarded by c\.mu but accessed without holding it`
}

// DeferStyle holds via a deferred unlock — held for the rest of the body.
func (c *Counter) DeferStyle() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// incLocked documents its precondition machine-readably: callers hold c.mu.
//
//lint:holds mu
func (c *Counter) incLocked() {
	c.n++
}

// AfterUnlock releases and then touches the field again.
func (c *Counter) AfterUnlock() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + c.n // want `c\.n is guarded by c\.mu but accessed without holding it`
}

// Branch shows path-sensitivity: the early-unlock path returns, so the
// surviving path still holds the lock at the read.
func (c *Counter) Branch(early bool) int {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// MaybeUnlock merges a held path with an unlocked one: after the if, the
// lock is held only on one way in, so the read is a finding.
func (c *Counter) MaybeUnlock(early bool) int {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
	}
	n := c.n // want `c\.n is guarded by c\.mu but accessed without holding it`
	if !early {
		c.mu.Unlock()
	}
	return n
}

// Goroutine bodies start with nothing held, whatever the spawner holds.
func (c *Counter) Spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `c\.n is guarded by c\.mu but accessed without holding it`
	}()
}

// Snapshot is a deliberately racy read with its contract argument.
func (c *Counter) Snapshot() int {
	//lint:ignore lockdiscipline fixture: monotonic gauge read, torn values are acceptable and documented
	return c.n
}
