package lockdiscipline_test

import (
	"testing"

	"mpl/internal/lint/lintkit"
	"mpl/internal/lint/lockdiscipline"
)

func TestAnalyzer(t *testing.T) {
	lintkit.RunFixture(t, "testdata", []*lintkit.Analyzer{lockdiscipline.Analyzer}, "./...")
}
