// Package lockdiscipline enforces annotated mutex contracts: a struct
// field whose declaration carries a `// guarded by <mu>` comment may only
// be read or written while <mu> (a sibling field of the same struct
// value) is held.
//
// The analysis is a forward walk over each function body tracking the set
// of held mutexes per (receiver variable, mutex field) pair:
//
//   - x.mu.Lock()/RLock() acquires, x.mu.Unlock()/RUnlock() releases;
//     `defer x.mu.Unlock()` releases at exit and so keeps the lock held
//     for the remainder of the body.
//   - Branches fork the state; paths that terminate (return, branch,
//     panic, log.Fatal, os.Exit) do not rejoin, and surviving paths merge
//     by intersection — held only if held on every way in.
//   - A `go` statement's function literal starts with nothing held; other
//     function literals are also analyzed from an empty state, because
//     nothing ties their call time to the current lock region.
//   - A function whose doc carries `//lint:holds <mu>` is analyzed with
//     the receiver's <mu> pre-held — the machine-readable spelling of
//     "callers must hold s.mu", checked at its call sites' leisure by the
//     same annotation appearing where they lock.
//
// Scope: any package that annotates fields (today internal/service, whose
// Service caches and stats are all `guarded by mu`).
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"mpl/internal/lint/lintkit"
)

// Analyzer is the annotated-mutex checker.
var Analyzer = &lintkit.Analyzer{
	Name: "lockdiscipline",
	Doc: "checks that struct fields annotated `// guarded by <mu>` are only\n" +
		"accessed with that mutex held (//lint:holds <mu> marks helpers whose\n" +
		"callers hold it)",
	Run: run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardKey identifies one held mutex: the object of the receiver-ish root
// identifier plus the mutex field name ("" for a package-level mutex).
type guardKey struct {
	root types.Object
	mu   string
}

type lockState map[guardKey]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func intersect(a, b lockState) lockState {
	out := lockState{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// guards maps a named struct type to its field→mutex annotations.
type guards map[*types.TypeName]map[string]string

func run(pass *lintkit.Pass) error {
	g := collectGuards(pass)
	if len(g) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, guards: g}
			state := lockState{}
			// //lint:holds <mu>: the receiver's mutex is held on entry.
			for _, mu := range holdsDirectives(fd) {
				if obj := receiverObj(pass, fd); obj != nil {
					state[guardKey{root: obj, mu: mu}] = true
				}
			}
			w.walkStmts(fd.Body.List, state)
		}
	}
	return nil
}

// collectGuards finds `guarded by <mu>` field annotations on struct type
// declarations.
func collectGuards(pass *lintkit.Pass) guards {
	g := guards{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := fieldGuard(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						if g[tn] == nil {
							g[tn] = map[string]string{}
						}
						g[tn][name.Name] = mu
					}
				}
			}
		}
	}
	return g
}

func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func holdsDirectives(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//lint:holds "); ok {
			for _, mu := range strings.Fields(rest) {
				out = append(out, mu)
			}
		}
	}
	return out
}

func receiverObj(pass *lintkit.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

type walker struct {
	pass   *lintkit.Pass
	guards guards
}

// walkStmts interprets a statement list, returning the lock state at its
// end and whether control cannot fall out of it.
func (w *walker) walkStmts(list []ast.Stmt, state lockState) (lockState, bool) {
	for _, stmt := range list {
		var terminated bool
		state, terminated = w.walkStmt(stmt, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (w *walker) walkStmt(stmt ast.Stmt, state lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.checkExpr(s.X, state)
		if key, op, ok := lockOp(w.pass, s.X); ok {
			if op {
				state = state.clone()
				state[key] = true
			} else {
				state = state.clone()
				delete(state, key)
			}
			return state, false
		}
		return state, isTerminalCall(s.X)
	case *ast.DeferStmt:
		// A deferred unlock fires at exit: the lock stays held from here
		// on. A deferred literal runs at exit too — approximate with the
		// current state.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, state.clone())
		} else {
			w.checkExpr(s.Call, state)
		}
		return state, false
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, state)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, lockState{}) // a new goroutine holds nothing
		}
		return state, false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		w.checkExpr(s.Cond, state)
		thenState, thenTerm := w.walkStmts(s.Body.List, state.clone())
		elseState, elseTerm := state, false
		if s.Else != nil {
			elseState, elseTerm = w.walkStmt(s.Else, state.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return state, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			return intersect(thenState, elseState), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, state)
		}
		bodyState, _ := w.walkStmts(s.Body.List, state.clone())
		if s.Post != nil {
			w.walkStmt(s.Post, bodyState)
		}
		// After the loop: held only if held both before it and at the end
		// of an iteration (zero or more passes).
		return intersect(state, bodyState), false
	case *ast.RangeStmt:
		w.checkExpr(s.X, state)
		bodyState, _ := w.walkStmts(s.Body.List, state.clone())
		return intersect(state, bodyState), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(stmt, state)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, state)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, state)
		}
		return state, true
	case *ast.BranchStmt:
		return state, true
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, state)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, state)
		}
		return state, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.checkNode(stmt, state)
		return state, false
	default:
		if stmt != nil {
			w.checkNode(stmt, state)
		}
		return state, false
	}
}

// walkCases handles switch/type-switch/select: each clause runs from the
// pre-state; the post-state intersects the survivors (plus the pre-state
// when no clause need run — no default).
func (w *walker) walkCases(stmt ast.Stmt, state lockState) (lockState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, state)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		w.checkNode(s.Assign, state)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var outs []lockState
	allTerm := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.checkExpr(e, state)
			}
			hasDefault = hasDefault || c.List == nil
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				_, _ = w.walkStmt(c.Comm, state.clone())
			}
			hasDefault = hasDefault || c.Comm == nil
			stmts = c.Body
		}
		out, term := w.walkStmts(stmts, state.clone())
		if !term {
			allTerm = false
			outs = append(outs, out)
		}
	}
	// A select always runs a clause; a switch without default may run
	// none.
	_, isSelect := stmt.(*ast.SelectStmt)
	if !isSelect && !hasDefault {
		outs = append(outs, state)
		allTerm = false
	}
	if allTerm && len(outs) == 0 {
		return state, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersect(merged, o)
	}
	return merged, false
}

// lockOp matches `x.mu.Lock()`-shaped calls, returning the guard key and
// whether it acquires (true) or releases (false).
func lockOp(pass *lintkit.Pass, e ast.Expr) (guardKey, bool, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return guardKey{}, false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return guardKey{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return guardKey{}, false, false
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr: // x.mu.Lock()
		if root, ok := recv.X.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[root]; obj != nil {
				return guardKey{root: obj, mu: recv.Sel.Name}, acquire, true
			}
		}
	case *ast.Ident: // mu.Lock() on a package-level or local mutex
		if obj := pass.TypesInfo.Uses[recv]; obj != nil {
			return guardKey{root: obj, mu: recv.Name}, acquire, true
		}
	}
	return guardKey{}, false, false
}

// isTerminalCall recognizes calls that never return.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln"
	}
	return false
}

func (w *walker) checkNode(n ast.Node, state lockState) {
	ast.Inspect(n, func(nn ast.Node) bool {
		if e, ok := nn.(ast.Expr); ok {
			if sel, isSel := e.(*ast.SelectorExpr); isSel {
				w.checkSelector(sel, state)
			}
		}
		return true
	})
}

// checkExpr scans an expression for guarded-field selectors, descending
// into everything except function literals (analyzed separately).
func (w *walker) checkExpr(e ast.Expr, state lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, lockState{})
			return false
		case *ast.SelectorExpr:
			w.checkSelector(n, state)
		}
		return true
	})
}

// checkSelector reports x.f where f is a guarded field of x's struct type
// and the guarding mutex is not held.
func (w *walker) checkSelector(sel *ast.SelectorExpr, state lockState) {
	root, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pass.TypesInfo.Uses[root]
	if obj == nil {
		return
	}
	tn := namedTypeOf(obj)
	if tn == nil {
		return
	}
	fields, ok := w.guards[tn]
	if !ok {
		return
	}
	mu, guarded := fields[sel.Sel.Name]
	if !guarded {
		return
	}
	if !state[guardKey{root: obj, mu: mu}] {
		w.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s.%s but accessed without holding it (//lint:holds %s on the enclosing function if its callers hold the lock)", root.Name, sel.Sel.Name, root.Name, mu, mu)
	}
}

func namedTypeOf(obj types.Object) *types.TypeName {
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
