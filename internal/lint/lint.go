// Package lint assembles the qpldvet analyzer suite: the four contract
// checkers that turn this repository's dynamically-tested invariants —
// byte-identical determinism, context threading, scratch-arena ownership,
// and annotated lock discipline — into machine-checked ones (DESIGN.md
// §10). cmd/qpldvet is the multichecker binary over this suite.
package lint

import (
	"mpl/internal/lint/ctxflow"
	"mpl/internal/lint/determinism"
	"mpl/internal/lint/lintkit"
	"mpl/internal/lint/lockdiscipline"
	"mpl/internal/lint/scratchown"
)

// Analyzers is the full qpldvet suite, in reporting order.
func Analyzers() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		determinism.Analyzer,
		ctxflow.Analyzer,
		scratchown.Analyzer,
		lockdiscipline.Analyzer,
	}
}
