package lintkit_test

import (
	"fmt"
	"go/ast"
	"sort"
	"testing"

	"mpl/internal/lint/lintkit"
)

// mockAnalyzer flags every call to a function literally named flagme —
// enough signal to observe which lines directives do and do not silence.
var mockAnalyzer = &lintkit.Analyzer{
	Name: "mock",
	Doc:  "flags calls to flagme (test analyzer)",
	Run: func(pass *lintkit.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						pass.Reportf(call.Pos(), "flagme called")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestDirectives drives the loader and the whole directive pipeline over
// the fixture module: malformed directives are findings, well-formed ones
// suppress exactly their line, and everything else passes through.
func TestDirectives(t *testing.T) {
	pkgs, err := lintkit.Load("testdata", ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "fix" {
		t.Fatalf("loaded %d packages, want the single package fix", len(pkgs))
	}
	diags, err := lintkit.Run(pkgs, []*lintkit.Analyzer{mockAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Analyzer))
	}
	want := []string{
		"10:directive", // reasonless ignore
		"11:mock",      // ...which therefore suppresses nothing
		"16:directive", // unknown verb
		"17:mock",
		"34:mock",      // no directive anywhere near
		"39:directive", // holds without a mutex name
	}
	sort.Strings(got)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("diagnostics mismatch\n got: %v\nwant: %v\nfull: %v", got, want, diags)
	}

	counts := lintkit.Counts(diags, []*lintkit.Analyzer{mockAnalyzer})
	if counts["mock"] != 3 || counts[lintkit.DirectiveAnalyzer] != 3 {
		t.Errorf("counts = %v, want mock:3 directive:3", counts)
	}
}

// TestCountsZeroEntries: analyzers with no findings still appear, so the
// CI summary can report an explicit zero.
func TestCountsZeroEntries(t *testing.T) {
	counts := lintkit.Counts(nil, []*lintkit.Analyzer{mockAnalyzer})
	if n, ok := counts["mock"]; !ok || n != 0 {
		t.Errorf("counts = %v, want an explicit mock:0 entry", counts)
	}
	if _, ok := counts[lintkit.DirectiveAnalyzer]; !ok {
		t.Errorf("counts = %v, want an explicit directive entry", counts)
	}
}

func TestPathWithin(t *testing.T) {
	cases := []struct {
		path, dir string
		want      bool
	}{
		{"mpl/internal/core", "internal/core", true},
		{"fix/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"mpl/internal/core/sub", "internal/core", true},
		{"mpl/internal/coloring", "internal/core", false},
		{"mpl/internal/lint", "internal", true},
		{"mpl/cmd/qpld", "internal", false},
	}
	for _, c := range cases {
		if got := lintkit.PathWithin(c.path, c.dir); got != c.want {
			t.Errorf("PathWithin(%q, %q) = %v, want %v", c.path, c.dir, got, c.want)
		}
	}
}
