package lintkit

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// want is one expectation parsed from a `// want "regex"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")(?:\\s+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))*)")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// RunFixture loads the fixture module at dir, analyzes the packages
// matching patterns with the given analyzers, and checks the findings
// against `// want "regex"` comments in the fixture sources — each
// expectation must be matched by exactly one finding on its line, and
// every finding must be expected. Mirrors x/tools analysistest.Run.
func RunFixture(t *testing.T, dir string, analyzers []*Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages matched %v", dir, patterns)
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fname := pkg.Fset.Position(f.Pos()).Filename
			ws, err := parseWants(fname, pkg.Source(fname))
			if err != nil {
				t.Fatalf("%s: %v", fname, err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts want expectations from one file's source. Scanning
// text rather than the AST keeps expectations usable on lines whose
// comments the parser attaches elsewhere.
func parseWants(filename string, src []byte) ([]*want, error) {
	var out []*want
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, arg := range wantArgRE.FindAllString(m[1], -1) {
			var pat string
			if strings.HasPrefix(arg, "`") {
				pat = strings.Trim(arg, "`")
			} else {
				unq, err := strconv.Unquote(arg)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want pattern %s: %w", i+1, arg, err)
				}
				pat = unq
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad want regexp %q: %w", i+1, pat, err)
			}
			out = append(out, &want{file: filename, line: i + 1, re: re})
		}
	}
	return out, nil
}
