// Package lintkit is the analysis framework under cmd/qpldvet: a minimal,
// offline, dependency-free stand-in for the golang.org/x/tools/go/analysis
// and .../go/analysis/analysistest APIs, built on go/parser + go/types and
// a `go list -deps -json` package loader.
//
// Why not x/tools itself: this module deliberately has zero external
// dependencies (go.mod carries no require directives), which keeps the
// reproduction buildable on an offline toolchain image — the same property
// the BENCH trajectory and golden tests rely on. lintkit implements just
// the subset the qpldvet analyzers need (Pass with full type info, //lint:
// directives, `// want` fixture tests); if x/tools ever becomes an
// acceptable dependency the analyzers port mechanically, since the shapes
// (Analyzer{Name, Doc, Run}, Pass.Reportf) match on purpose.
//
// Directives: a finding is suppressed by
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either trailing on the offending line or alone on the line above it. The
// reason is mandatory — a directive without one is itself reported (by the
// built-in "directive" pseudo-analyzer), so every suppression documents the
// contract argument that makes the flagged code safe.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Mirrors x/tools go/analysis.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the contract the analyzer
	// enforces, shown by `qpldvet -help`.
	Doc string
	// Run performs the check on one package and reports findings through
	// the pass. An error aborts the whole run (reserve it for internal
	// failures, not findings).
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one loaded package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path (fixture modules get fixture
	// paths; analyzers scope themselves with PathWithin / path suffix
	// helpers so the same rules apply under test).
	Path string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// DirectiveAnalyzer is the name under which lintkit reports malformed
// //lint: directives (missing reason, unknown verb). It participates in
// counts and cannot itself be ignored.
const DirectiveAnalyzer = "directive"

// Run applies every analyzer to every package, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs, derrs := collectDirectives(pkg)
		diags = append(diags, derrs...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				diags:     &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			diags = dirs.filter(diags, before)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Counts tallies findings per analyzer name (zero entries included for
// every analyzer passed, so "0 findings" is reportable).
func Counts(diags []Diagnostic, analyzers []*Analyzer) map[string]int {
	c := make(map[string]int, len(analyzers)+1)
	for _, a := range analyzers {
		c[a.Name] = 0
	}
	c[DirectiveAnalyzer] = 0
	for _, d := range diags {
		c[d.Analyzer]++
	}
	return c
}

// directive is one parsed //lint:ignore comment: the set of analyzer names
// it silences and the source line it applies to.
type directive struct {
	file      string
	line      int
	analyzers map[string]bool
}

type directiveSet []directive

// collectDirectives parses every //lint: comment in the package. A
// directive on a line of its own applies to the next line; a trailing
// directive applies to its own line.
func collectDirectives(pkg *Package) (directiveSet, []Diagnostic) {
	var set directiveSet
	var errs []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				if verb == "holds" {
					// Consumed by the lockdiscipline analyzer (a lock
					// precondition, not a suppression); validate shape only.
					if strings.TrimSpace(rest) == "" {
						errs = append(errs, Diagnostic{
							Analyzer: DirectiveAnalyzer, Pos: pos,
							Message: "malformed //lint:holds: want `//lint:holds <mutex>` naming the mutex the caller must hold",
						})
					}
					continue
				}
				if verb != "ignore" {
					errs = append(errs, Diagnostic{
						Analyzer: DirectiveAnalyzer, Pos: pos,
						Message: fmt.Sprintf("unknown //lint: directive %q (only //lint:ignore is supported)", verb),
					})
					continue
				}
				names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					errs = append(errs, Diagnostic{
						Analyzer: DirectiveAnalyzer, Pos: pos,
						Message: "malformed //lint:ignore: want `//lint:ignore <analyzer>[,<analyzer>] <reason>` — the reason is mandatory",
					})
					continue
				}
				d := directive{file: pos.Filename, line: pos.Line, analyzers: map[string]bool{}}
				for _, n := range strings.Split(names, ",") {
					d.analyzers[n] = true
				}
				if standalone(pkg, pos) {
					d.line++
				}
				set = append(set, d)
			}
		}
	}
	return set, errs
}

// standalone reports whether the comment at pos is the only thing on its
// source line (so the directive targets the following line, not its own),
// by checking that everything before it on the line is whitespace.
func standalone(pkg *Package, pos token.Position) bool {
	src := pkg.Source(pos.Filename)
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// filter drops diagnostics appended since index from that are silenced by a
// directive naming their analyzer on their line.
func (ds directiveSet) filter(diags []Diagnostic, from int) []Diagnostic {
	if len(ds) == 0 {
		return diags
	}
	out := diags[:from]
	for _, d := range diags[from:] {
		if !ds.silences(d) {
			out = append(out, d)
		}
	}
	return out
}

func (ds directiveSet) silences(d Diagnostic) bool {
	for _, dir := range ds {
		if dir.file == d.Pos.Filename && dir.line == d.Pos.Line && dir.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}

// PathWithin reports whether the package import path contains dir as a
// complete path segment sequence (e.g. PathWithin("mpl/internal/core",
// "internal") or a suffix match like "internal/core"). Matching on
// segments rather than raw substrings keeps fixture module paths
// ("fix/internal/core") in scope under test.
func PathWithin(path, dir string) bool {
	if path == dir {
		return true
	}
	if strings.HasSuffix(path, "/"+dir) {
		return true
	}
	return strings.Contains(path, "/"+dir+"/") || strings.HasPrefix(path, dir+"/")
}
