package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	src map[string][]byte // filename -> raw source, for directive parsing
}

// Source returns the raw bytes of one of the package's files (empty for
// unknown filenames).
func (p *Package) Source(filename string) []byte { return p.src[filename] }

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
	Match      []string
}

// Load type-checks the packages matching patterns in the module rooted at
// (or containing) dir, returning only the matched packages — their
// dependencies, including the standard library, are type-checked from
// source as needed (this loader runs fully offline; nothing is fetched).
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	typed := map[string]*types.Package{"unsafe": types.Unsafe}
	var out []*Package

	// `go list -deps` emits dependencies before dependents, so a single
	// in-order sweep has every import available when it is needed.
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files, src, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", lp.ImportPath, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if mapped, ok := lp.ImportMap[path]; ok {
					path = mapped
				}
				if tp, ok := typed[path]; ok {
					return tp, nil
				}
				return nil, fmt.Errorf("package %s not loaded before its dependent", path)
			}),
			// The standard library (and only it) may use compiler
			// intrinsics and documented unsafe tricks that a plain
			// go/types pass rejects; tolerate errors there, never in
			// module code.
			Error: func(error) {},
		}
		tp, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil && !lp.Standard {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		typed[lp.ImportPath] = tp
		if len(lp.Match) > 0 {
			out = append(out, &Package{
				Path:  lp.ImportPath,
				Dir:   lp.Dir,
				Fset:  fset,
				Files: files,
				Types: tp,
				Info:  info,
				src:   src,
			})
		}
	}
	return out, nil
}

// goList shells out to `go list -deps -json` with cgo disabled (so every
// listed file is plain Go source, checkable without a build step).
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Standard,Incomplete,Error,DepsErrors,Match"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOFLAGS=-mod=mod")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, map[string][]byte, error) {
	files := make([]*ast.File, len(names))
	src := make(map[string][]byte, len(names))
	for i, name := range names {
		full := filepath.Join(dir, name)
		b, err := os.ReadFile(full)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, full, b, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files[i] = f
		src[full] = b
	}
	return files, src, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
