// Package fix exercises lintkit's directive handling: reasonless and
// unknown directives are findings, well-formed ones suppress.
package fix

func flagme() {}

// Reasonless: the ignore below is missing its mandatory reason, so it is
// itself reported and suppresses nothing.
func Reasonless() {
	//lint:ignore mock
	flagme()
}

// Unknown: only ignore (and holds) are //lint: verbs.
func Unknown() {
	//lint:frobnicate some reason
	flagme()
}

// SuppressedStandalone: a standalone directive silences the next line.
func SuppressedStandalone() {
	//lint:ignore mock the documented contract argument
	flagme()
}

// SuppressedTrailing: a trailing directive silences its own line, and may
// name several analyzers.
func SuppressedTrailing() {
	flagme() //lint:ignore mock,other trailing reason
}

// Unsuppressed keeps the analyzer honest.
func Unsuppressed() {
	flagme()
}

// HoldsBad: a holds directive must name the mutex.
//
//lint:holds
func HoldsBad() {}
