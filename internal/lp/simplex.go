// Package lp implements a dense two-phase primal simplex solver for linear
// programs in inequality form. It is the LP engine underneath the
// branch-and-bound ILP solver (package ilp), which together substitute for
// the commercial GUROBI solver used by the DAC'14 paper's exact baseline.
//
// The solver targets the small-to-medium dense problems produced by layout
// decomposition components (hundreds of variables and constraints); it uses
// Dantzig pricing with an automatic switch to Bland's rule to guarantee
// termination, and explicit tolerance handling suitable for the 0/1
// formulations the decomposer generates.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse linear constraint  Σ Coef·x  Op  RHS.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// Problem is a minimization LP over variables x ≥ 0.
//
//	minimize  Objective · x
//	subject to Constraints, x ≥ 0
//
// Upper bounds (e.g. the x ≤ 1 of binary relaxations) are expressed as
// ordinary LE constraints by the caller.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// AddConstraint appends a constraint built from (var, coef) pairs.
func (p *Problem) AddConstraint(op Op, rhs float64, terms ...Term) {
	p.Constraints = append(p.Constraints, Constraint{Terms: terms, Op: op, RHS: rhs})
}

// Status describes the outcome of a Solve call.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Result carries the solution of an LP.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
}

const (
	eps        = 1e-9
	blandAfter = 2000 // pivots before switching to Bland's rule
)

// tableau is the dense simplex tableau: rows = constraints, one extra
// objective row; columns = structural + slack + artificial variables plus
// the RHS column.
type tableau struct {
	m, n  int // constraint rows, total columns (excluding RHS)
	a     [][]float64
	rhs   []float64
	basis []int // basis[i] = column basic in row i
}

// Solve optimizes the problem. A nil Objective is treated as all zeros
// (pure feasibility).
func Solve(p *Problem) Result {
	if p.NumVars < 0 {
		panic("lp: negative NumVars")
	}
	obj := p.Objective
	if obj == nil {
		obj = make([]float64, p.NumVars)
	}
	if len(obj) != p.NumVars {
		panic(fmt.Sprintf("lp: objective has %d entries for %d vars", len(obj), p.NumVars))
	}

	m := len(p.Constraints)
	nStruct := p.NumVars

	// Count slack and artificial columns.
	nSlack := 0
	nArt := 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		op := c.Op
		if rhs < 0 { // normalize to rhs >= 0
			op = flip(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := nStruct + nSlack + nArt
	t := &tableau{
		m:     m,
		n:     n,
		a:     make([][]float64, m),
		rhs:   make([]float64, m),
		basis: make([]int, m),
	}
	artCols := make([]bool, n)
	slackAt := nStruct
	artAt := nStruct + nSlack
	for i, c := range p.Constraints {
		row := make([]float64, n)
		sign := 1.0
		op := c.Op
		rhs := c.RHS
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			op = flip(op)
		}
		for _, term := range c.Terms {
			if term.Var < 0 || term.Var >= nStruct {
				panic(fmt.Sprintf("lp: constraint %d references var %d of %d", i, term.Var, nStruct))
			}
			row[term.Var] += sign * term.Coef
		}
		switch op {
		case LE:
			row[slackAt] = 1
			t.basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			artCols[artAt] = true
			t.basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			artCols[artAt] = true
			t.basis[i] = artAt
			artAt++
		}
		t.a[i] = row
		t.rhs[i] = rhs
	}

	// Phase 1: minimize the sum of artificial variables.
	if nArt > 0 {
		phase1 := make([]float64, n)
		for j := range artCols {
			if artCols[j] {
				phase1[j] = 1
			}
		}
		st, obj1 := t.optimize(phase1, nil)
		if st == IterLimit {
			return Result{Status: IterLimit}
		}
		if obj1 > 1e-6 {
			return Result{Status: Infeasible}
		}
		// Pivot remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if !artCols[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < n && !pivoted; j++ {
				if !artCols[j] && math.Abs(t.a[i][j]) > 1e-7 {
					t.pivot(i, j)
					pivoted = true
				}
			}
			// If no pivot exists the row is redundant; the artificial stays
			// basic at value 0, harmless as long as its column is barred.
		}
	}

	// Phase 2: minimize the real objective with artificial columns barred.
	fullObj := make([]float64, n)
	copy(fullObj, obj)
	st, objVal := t.optimize(fullObj, artCols)
	if st != Optimal {
		return Result{Status: st}
	}
	x := make([]float64, nStruct)
	for i, b := range t.basis {
		if b < nStruct {
			x[b] = t.rhs[i]
		}
	}
	return Result{Status: Optimal, X: x, Obj: objVal}
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// optimize runs primal simplex minimizing obj over the current tableau.
// barred marks columns that may not enter the basis (artificials in
// phase 2). It returns the status and the objective value.
func (t *tableau) optimize(obj []float64, barred []bool) (Status, float64) {
	// Reduced-cost row: z_j = obj_j - Σ_i obj[basis[i]] * a[i][j].
	// Maintained implicitly: recompute from scratch each pivot would be
	// O(mn); instead keep an explicit cost row and eliminate basic columns.
	cost := make([]float64, t.n)
	copy(cost, obj)
	objVal := 0.0
	for i, b := range t.basis {
		if cost[b] != 0 {
			c := cost[b]
			for j := 0; j < t.n; j++ {
				cost[j] -= c * t.a[i][j]
			}
			objVal -= c * t.rhs[i]
		}
	}

	for iter := 0; ; iter++ {
		if iter > blandAfter+20000 {
			return IterLimit, 0
		}
		bland := iter > blandAfter
		// Choose entering column.
		enter := -1
		best := -eps
		for j := 0; j < t.n; j++ {
			if barred != nil && barred[j] {
				continue
			}
			if cost[j] < -eps {
				if bland {
					enter = j
					break
				}
				if cost[j] < best {
					best = cost[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, -objVal
		}
		// Ratio test for leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				r := t.rhs[i] / aij
				if r < bestRatio-eps || (r < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, 0
		}
		t.pivot(leave, enter)
		// Update the cost row for the pivot.
		c := cost[enter]
		if c != 0 {
			for j := 0; j < t.n; j++ {
				cost[j] -= c * t.a[leave][j]
			}
			objVal -= c * t.rhs[leave]
		}
	}
}

// pivot makes column enter basic in row leave via Gauss–Jordan elimination.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	rowL := t.a[leave]
	for j := 0; j < t.n; j++ {
		rowL[j] *= inv
	}
	t.rhs[leave] *= inv
	rowL[enter] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			row[j] -= f * rowL[j]
		}
		t.rhs[i] -= f * t.rhs[leave]
		row[enter] = 0 // exact
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	t.basis[leave] = enter
}
