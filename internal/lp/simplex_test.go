package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMax(t *testing.T) {
	// maximize 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  → x=2, y=6, obj=36.
	// As minimization: minimize -3x -5y.
	p := &Problem{NumVars: 2, Objective: []float64{-3, -5}}
	p.AddConstraint(LE, 4, Term{0, 1})
	p.AddConstraint(LE, 12, Term{1, 2})
	p.AddConstraint(LE, 18, Term{0, 3}, Term{1, 2})
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !approx(r.Obj, -36) || !approx(r.X[0], 2) || !approx(r.X[1], 6) {
		t.Fatalf("got obj=%v x=%v", r.Obj, r.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// minimize x + 2y s.t. x + y = 10, x - y = 2  → x=6, y=4, obj=14.
	p := &Problem{NumVars: 2, Objective: []float64{1, 2}}
	p.AddConstraint(EQ, 10, Term{0, 1}, Term{1, 1})
	p.AddConstraint(EQ, 2, Term{0, 1}, Term{1, -1})
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !approx(r.X[0], 6) || !approx(r.X[1], 4) || !approx(r.Obj, 14) {
		t.Fatalf("got %v obj=%v", r.X, r.Obj)
	}
}

func TestGEConstraints(t *testing.T) {
	// minimize 2x + 3y s.t. x + y >= 4, x >= 1 → x=4, y=0? check: obj 2·4=8;
	// or x=1, y=3 → 2+9=11. So x=4,y=0 obj 8.
	p := &Problem{NumVars: 2, Objective: []float64{2, 3}}
	p.AddConstraint(GE, 4, Term{0, 1}, Term{1, 1})
	p.AddConstraint(GE, 1, Term{0, 1})
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !approx(r.Obj, 8) {
		t.Fatalf("obj = %v, want 8 (x=%v)", r.Obj, r.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(GE, 5, Term{0, 1})
	p.AddConstraint(LE, 3, Term{0, 1})
	if r := Solve(p); r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{-1}}
	p.AddConstraint(GE, 0, Term{0, 1})
	if r := Solve(p); r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y <= -2 with minimize x+y, x,y>=0 → y >= x+2 → x=0, y=2.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(LE, -2, Term{0, 1}, Term{1, -1})
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !approx(r.Obj, 2) || !approx(r.X[1], 2) {
		t.Fatalf("got %v obj %v", r.X, r.Obj)
	}
}

func TestNilObjectiveFeasibility(t *testing.T) {
	p := &Problem{NumVars: 2}
	p.AddConstraint(EQ, 3, Term{0, 1}, Term{1, 1})
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !approx(r.X[0]+r.X[1], 3) {
		t.Fatalf("x = %v", r.X)
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// 2x (written as x + x) = 6 → x = 3.
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(EQ, 6, Term{0, 1}, Term{0, 1})
	r := Solve(p)
	if r.Status != Optimal || !approx(r.X[0], 3) {
		t.Fatalf("r = %+v", r)
	}
}

func TestDegenerateRedundantConstraints(t *testing.T) {
	// Redundant equalities exercise the artificial-pivot-out path.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(EQ, 4, Term{0, 1}, Term{1, 1})
	p.AddConstraint(EQ, 8, Term{0, 2}, Term{1, 2}) // same hyperplane ×2
	p.AddConstraint(GE, 1, Term{0, 1})
	r := Solve(p)
	if r.Status != Optimal || !approx(r.Obj, 4) {
		t.Fatalf("r = %+v", r)
	}
}

func TestBinaryRelaxationBox(t *testing.T) {
	// Typical ILP relaxation shape: min -x1 -x2 with x1 + x2 <= 1, x <= 1 boxes.
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint(LE, 1, Term{0, 1}, Term{1, 1})
	p.AddConstraint(LE, 1, Term{0, 1})
	p.AddConstraint(LE, 1, Term{1, 1})
	r := Solve(p)
	if r.Status != Optimal || !approx(r.Obj, -1) {
		t.Fatalf("r = %+v", r)
	}
}

func TestPanicOnBadVarIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad var index did not panic")
		}
	}()
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(LE, 1, Term{3, 1})
	Solve(p)
}

func TestPanicOnObjectiveMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("objective length mismatch did not panic")
		}
	}()
	Solve(&Problem{NumVars: 2, Objective: []float64{1}})
}

// TestRandomBinaryCornerBound: random small LPs over the box [0,1]^n with
// LE constraints (zero point always feasible). The LP optimum must be at
// least as good as the best feasible binary corner, and the returned point
// must satisfy every constraint — together a strong sanity check for the
// relaxations the ILP solver feeds in.
func TestRandomBinaryCornerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Objective[j] = float64(rng.Intn(11) - 5)
			p.AddConstraint(LE, 1, Term{j, 1}) // box
		}
		for c := 0; c < n; c++ {
			terms := []Term{}
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, float64(1 + rng.Intn(3))})
				}
			}
			if len(terms) > 0 {
				p.AddConstraint(LE, float64(1+rng.Intn(4)), terms...)
			}
		}
		r := Solve(p)
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		// Brute force over binary corners that satisfy the constraints.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			feasible := true
			for _, c := range p.Constraints {
				lhs := 0.0
				for _, term := range c.Terms {
					if mask&(1<<term.Var) != 0 {
						lhs += term.Coef
					}
				}
				if lhs > c.RHS+1e-9 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += p.Objective[j]
				}
			}
			if obj < best {
				best = obj
			}
		}
		if r.Obj > best+1e-6 {
			t.Fatalf("trial %d: LP obj %v worse than best corner %v", trial, r.Obj, best)
		}
		// And the LP solution must itself be feasible.
		for ci, c := range p.Constraints {
			lhs := 0.0
			for _, term := range c.Terms {
				lhs += term.Coef * r.X[term.Var]
			}
			switch c.Op {
			case LE:
				if lhs > c.RHS+1e-6 {
					t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, ci, lhs, c.RHS)
				}
			}
		}
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" ||
		Status(99).String() != "unknown" {
		t.Fatal("Status.String mismatch")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" || Op(9).String() != "?" {
		t.Fatal("Op.String mismatch")
	}
}
