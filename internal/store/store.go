// Package store is the durable half of the serving layer's ECO sessions
// (DESIGN.md §13): a per-directory write-ahead log of session records that
// survives restarts of `qpld serve` and lets the session LRU spill cold
// sessions to disk instead of dropping them.
//
// Two record kinds share one append-only log, both keyed by (options
// signature, layout hash) — the same pair that keys the in-memory session
// store:
//
//   - a snapshot holds a full session state: the layout geometry (the
//     binary .layb encoding) plus the coloring and objective values of its
//     full-quality result;
//   - an edit record holds one ECO batch (core.EncodeEdits) and the base
//     hash it applies to, chaining sessions the way DecomposeIncremental
//     derived them.
//
// The store never replays anything itself: Lookup returns the nearest
// snapshot and the ordered tail of edit batches from it to the requested
// hash, and the serving layer replays that tail through core.ApplyEdits —
// which is exactly the operation the incremental-≡-scratch equivalence
// harness proves byte-identical to a fresh solve, so recovery correctness
// rides on an already-proven path.
//
// Durability discipline: records are CRC-framed and fsynced (unless
// Options.NoSync), appends go through a logical end-of-log offset so a
// torn append is overwritten rather than fenced in, Open truncates a torn
// tail (and only the tail — everything before the first bad frame is
// kept), and compaction rewrites the log to a temporary file that is
// atomically renamed into place. A crash at any byte leaves either the old
// log or the new one, never a hybrid.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mpl/internal/core"
	"mpl/internal/layout"
)

// logName is the write-ahead log's file name inside the data directory;
// compactName is the compaction scratch file renamed over it.
const (
	logName     = "wal.log"
	compactName = "wal.compact"
)

// fileMagic opens every log file; the trailing byte is the format version.
var fileMagic = [8]byte{'Q', 'P', 'L', 'D', 'W', 'A', 'L', '1'}

// Record framing: one marker byte, the record type, the payload length,
// and a CRC32-Castagnoli over (type, length, payload). The CRC covers the
// header fields so a flipped type or length byte is detected, not just
// payload rot.
const (
	recMarker   = 0xA7
	recSnapshot = 1
	recEdits    = 2
	headerSize  = 1 + 1 + 4 + 4
	// maxPayload bounds one record against corrupt length fields; the
	// largest legitimate payload is a snapshot of a full layout, and the
	// binary layout encoding keeps those far under this.
	maxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Store. The zero value is usable.
type Options struct {
	// SnapshotEvery is the edit-chain depth at which AppendEdits asks the
	// caller for a fresh snapshot, bounding replay work on rehydration;
	// 0 means 8.
	SnapshotEvery int
	// CompactMin is the minimum number of log records before automatic
	// compaction considers running; 0 means 128.
	CompactMin int
	// MaxSessions caps the distinct sessions compaction retains, dropping
	// the least recently appended lineages first (ancestors a retained
	// chain still replays through are always kept); 0 means unlimited.
	MaxSessions int
	// NoSync skips the fsync after each append. Records still survive a
	// killed process (the OS has the writes); only power loss can lose
	// the un-synced tail. Tests use it for speed.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 8
	}
	if o.CompactMin <= 0 {
		o.CompactMin = 128
	}
	return o
}

// Snapshot is one full persisted session state.
type Snapshot struct {
	// Layout is the session's geometry.
	Layout *layout.Layout
	// Colors is the full-quality coloring, one mask index per fragment of
	// the decomposition graph a deterministic rebuild of Layout produces.
	Colors []int
	// Conflicts and Stitches are the result's objective values; Proven is
	// its optimality flag.
	Conflicts int
	Stitches  int
	Proven    bool
}

// Chain is a Lookup result: the nearest snapshot plus the edit batches
// that, replayed in order through core.ApplyEdits, reconstruct the
// requested session. Hashes holds the expected post-batch layout hash per
// batch (the last entry is the requested hash), so the replayer can verify
// each step landed on the geometry the log recorded.
type Chain struct {
	Snap    *Snapshot
	Batches [][]core.Edit
	Hashes  []string
}

// Stats is a point-in-time snapshot of store state and traffic.
type Stats struct {
	// LiveSessions is the number of distinct (sig, hash) keys currently
	// replayable from the log.
	LiveSessions int
	// WALBytes and WALRecords describe the log file, including records a
	// later append superseded (compaction reclaims those).
	WALBytes   int64
	WALRecords int
	// Snapshots and Edits count records appended by this process.
	Snapshots uint64
	Edits     uint64
	// Compactions counts log rewrites (automatic and explicit).
	Compactions uint64
	// TornTail counts Open-time truncations of a torn or corrupt tail.
	TornTail uint64
	// Orphans counts records dropped at Open because their base chain was
	// missing — corruption fallout, not a normal lifecycle event.
	Orphans uint64
}

// rec locates one live record in the log.
type rec struct {
	typ  byte
	off  int64  // offset of the frame (marker byte)
	n    int    // payload length
	base string // edit records: the base hash the batch applies to
	// depth is the replay distance to the nearest snapshot (0 for a
	// snapshot record).
	depth int
	// seq orders records by append recency across compactions.
	seq uint64
}

// Store is a durable session store over one data directory. Safe for
// concurrent use: one mutex serializes appends, lookups, and compaction —
// all are rare next to the solves they bracket.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File       // guarded by mu
	size    int64          // guarded by mu; logical end of log (next append offset)
	index   map[string]rec // guarded by mu; (sig NUL hash) -> latest live record
	nextSeq uint64         // guarded by mu
	records int            // guarded by mu; frames in the log, live or dead
	stats   Stats          // guarded by mu
}

// key builds the index key for one session.
func key(sig, hash string) string { return sig + "\x00" + hash }

// Open opens (creating if necessary) the store rooted at dir and recovers
// its index from the log, truncating a torn tail if the previous process
// died mid-append.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A crash between compaction's write and rename leaves the scratch
	// file behind; it was never the log, so it is garbage.
	os.Remove(filepath.Join(dir, compactName))
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), f: f, index: make(map[string]rec)}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the log, builds the index, and truncates everything from
// the first bad frame on. Called from Open only, before the Store is
// published — the construction-time equivalent of holding the lock.
//
//lint:holds mu
func (s *Store) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fileSize := fi.Size()
	if fileSize < int64(len(fileMagic)) {
		// New store, or a crash before the header hit the disk: nothing
		// recoverable can exist yet, so (re)initialize.
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := s.f.WriteAt(fileMagic[:], 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.sync(); err != nil {
			return err
		}
		s.size = int64(len(fileMagic))
		return nil
	}
	var magic [8]byte
	if _, err := s.f.ReadAt(magic[:], 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if magic != fileMagic {
		return fmt.Errorf("store: %s is not a qpld session log (bad magic %q)", logName, magic[:])
	}

	sr := io.NewSectionReader(s.f, 0, fileSize)
	off := int64(len(fileMagic))
	good := off
	for off < fileSize {
		frameLen, k, r, err := scanRecord(sr, off, fileSize)
		if err != nil {
			// First bad frame: everything after it is unordered garbage.
			// Drop the tail, keep the prefix.
			s.stats.TornTail++
			break
		}
		r.seq = s.nextSeq
		s.nextSeq++
		s.records++
		if r.typ == recEdits {
			base, ok := s.index[keyFrom(k, r.base)]
			if !ok {
				// Unreplayable: its base chain never made it to the log.
				s.stats.Orphans++
				off += frameLen
				good = off
				continue
			}
			r.depth = base.depth + 1
		}
		s.index[k] = r
		off += frameLen
		good = off
	}
	if good < fileSize {
		if err := s.f.Truncate(good); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := s.sync(); err != nil {
			return err
		}
	}
	s.size = good
	return nil
}

// keyFrom swaps the hash component of an index key, keeping its sig.
func keyFrom(k, hash string) string {
	i := strings.IndexByte(k, 0)
	return k[:i+1] + hash
}

// scanRecord reads and CRC-verifies the frame at off, returning the frame
// length, the index key, and the record locator. It never reads past end.
func scanRecord(sr *io.SectionReader, off, end int64) (frameLen int64, k string, r rec, err error) {
	var hdr [headerSize]byte
	if off+headerSize > end {
		return 0, "", rec{}, fmt.Errorf("store: truncated header")
	}
	if _, err := sr.ReadAt(hdr[:], off); err != nil {
		return 0, "", rec{}, err
	}
	if hdr[0] != recMarker {
		return 0, "", rec{}, fmt.Errorf("store: bad record marker 0x%02x", hdr[0])
	}
	typ := hdr[1]
	n := int64(binary.LittleEndian.Uint32(hdr[2:6]))
	want := binary.LittleEndian.Uint32(hdr[6:10])
	if n > maxPayload || off+headerSize+n > end {
		return 0, "", rec{}, fmt.Errorf("store: implausible payload length %d", n)
	}
	payload := make([]byte, n)
	if _, err := sr.ReadAt(payload, off+headerSize); err != nil {
		return 0, "", rec{}, err
	}
	crc := crc32.Update(0, crcTable, hdr[1:6])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != want {
		return 0, "", rec{}, fmt.Errorf("store: CRC mismatch")
	}
	sig, hash, base, err := parseKeys(typ, payload)
	if err != nil {
		return 0, "", rec{}, err
	}
	return headerSize + n, key(sig, hash), rec{typ: typ, off: off, n: int(n), base: base}, nil
}

// Close releases the log file handle. Appends already on disk stay
// recoverable; the store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Dir returns the data directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// Has reports whether the session is replayable from the log.
func (s *Store) Has(sig, hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key(sig, hash)]
	return ok
}

// StatsSnapshot returns current store statistics.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.LiveSessions = len(s.index)
	st.WALBytes = s.size
	st.WALRecords = s.records
	return st
}

// AppendSnapshot durably records a full session state. An existing record
// for the same key is superseded (rehydration will use this snapshot) and
// reclaimed by the next compaction.
func (s *Store) AppendSnapshot(sig, hash string, snap *Snapshot) error {
	payload, err := encodeSnapshot(sig, hash, snap)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(recSnapshot, payload, key(sig, hash), rec{typ: recSnapshot}); err != nil {
		return err
	}
	s.stats.Snapshots++
	return s.maybeCompact()
}

// AppendEdits durably records one ECO batch deriving session next from
// session base. needSnapshot reports that the new chain's replay depth
// reached Options.SnapshotEvery — the caller should follow up with an
// AppendSnapshot of the successor state it already holds, re-rooting the
// chain. An unknown base is an error: the service persists a session
// before ever deriving from it, so an unpersisted base means the caller
// and the log disagree.
func (s *Store) AppendEdits(sig, base, next string, edits []core.Edit) (needSnapshot bool, err error) {
	payload, err := encodeEditsRecord(sig, base, next, edits)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.index[key(sig, base)]
	if !ok {
		return false, fmt.Errorf("store: base session %.16s… is not in the log", base)
	}
	r := rec{typ: recEdits, base: base, depth: b.depth + 1}
	// An index entry is only ever replaced by a record of equal or smaller
	// replay depth. This keeps the chain graph acyclic — an ECO that edits
	// A→B and later B→A would otherwise make the two records each other's
	// base — and means a session already replayable at this depth or better
	// (say, from its own snapshot) has nothing to gain from the append.
	if prev, ok := s.index[key(sig, next)]; ok && prev.depth <= r.depth {
		return false, nil
	}
	if err := s.append(recEdits, payload, key(sig, next), r); err != nil {
		return false, err
	}
	s.stats.Edits++
	if err := s.maybeCompact(); err != nil {
		return false, err
	}
	return r.depth >= s.opts.SnapshotEvery, nil
}

// append frames and writes one record at the logical end of the log,
// fsyncs, and only then updates the index — a crash mid-append leaves the
// previous logical end intact and the partial frame is overwritten by the
// next append (or truncated by the next Open).
//
//lint:holds mu
func (s *Store) append(typ byte, payload []byte, k string, r rec) error {
	frame := make([]byte, headerSize+len(payload))
	frame[0] = recMarker
	frame[1] = typ
	binary.LittleEndian.PutUint32(frame[2:6], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, frame[1:6])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(frame[6:10], crc)
	copy(frame[headerSize:], payload)
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.sync(); err != nil {
		return err
	}
	r.off = s.size
	r.n = len(payload)
	r.seq = s.nextSeq
	s.nextSeq++
	s.size += int64(len(frame))
	s.records++
	s.index[k] = r
	return nil
}

// Lookup returns the replay chain for a session, or (nil, nil) when the
// log has no record of it. A broken chain (possible only after on-disk
// corruption) is an error, never a partial chain.
func (s *Store) Lookup(sig, hash string) (*Chain, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[key(sig, hash)]
	if !ok {
		return nil, nil
	}
	var (
		batches [][]core.Edit
		hashes  []string
	)
	// AppendEdits keeps the chain graph acyclic by construction; the
	// visited set is insurance against a corrupt log whose CRCs survived.
	visited := map[string]bool{hash: true}
	cur, curHash := r, hash
	for cur.typ == recEdits {
		payload, err := s.readPayload(cur)
		if err != nil {
			return nil, err
		}
		_, _, base, edits, err := decodeEditsRecord(payload)
		if err != nil {
			return nil, err
		}
		batches = append(batches, edits)
		hashes = append(hashes, curHash)
		if visited[base] {
			return nil, fmt.Errorf("store: cyclic chain through %.16s…", base)
		}
		visited[base] = true
		next, ok := s.index[key(sig, base)]
		if !ok {
			return nil, fmt.Errorf("store: broken chain: base %.16s… vanished", base)
		}
		cur, curHash = next, base
	}
	payload, err := s.readPayload(cur)
	if err != nil {
		return nil, err
	}
	_, _, snap, err := decodeSnapshot(payload)
	if err != nil {
		return nil, err
	}
	// The walk collected batches newest-first; replay wants oldest-first.
	for i, j := 0, len(batches)-1; i < j; i, j = i+1, j-1 {
		batches[i], batches[j] = batches[j], batches[i]
		hashes[i], hashes[j] = hashes[j], hashes[i]
	}
	return &Chain{Snap: snap, Batches: batches, Hashes: hashes}, nil
}

// readPayload re-reads and re-verifies one record's payload from the log —
// bit rot between Open and Lookup must surface as an error, not as a
// corrupt session.
//
//lint:holds mu
func (s *Store) readPayload(r rec) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := s.f.ReadAt(hdr[:], r.off); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	payload := make([]byte, r.n)
	if _, err := s.f.ReadAt(payload, r.off+headerSize); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	crc := crc32.Update(0, crcTable, hdr[1:6])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(hdr[6:10]) {
		return nil, fmt.Errorf("store: record at %d failed its CRC re-check", r.off)
	}
	return payload, nil
}

// Compact rewrites the log keeping only live records (and, when
// Options.MaxSessions caps retention, only the most recent lineages plus
// the ancestors their replay needs), writing to a scratch file renamed
// atomically over the log.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compact()
}

// maybeCompact runs compaction when the log has accumulated enough dead
// weight: at least Options.CompactMin records, over half of them dead.
//
//lint:holds mu
func (s *Store) maybeCompact() error {
	if s.records < s.opts.CompactMin {
		return nil
	}
	if s.records < 2*len(s.index) {
		return nil
	}
	return s.compact()
}

// retained returns the index keys compaction keeps, ordered so every edit
// record's base precedes it in the output log (recover scans front to back
// and drops base-less edits as orphans). Replay depth is that order:
// AppendEdits only ever lowers a key's depth, so a base's current depth is
// always strictly below its children's. Recency (seq) breaks ties for a
// deterministic output log.
//
//lint:holds mu
func (s *Store) retained() []string {
	index := s.index // sort closures run with the same lock held
	keys := make([]string, 0, len(index))
	for k := range index {
		keys = append(keys, k)
	}
	if s.opts.MaxSessions > 0 && len(keys) > s.opts.MaxSessions {
		// Keep the newest (by append recency) MaxSessions lineages plus
		// every ancestor their replay chains pass through (an ancestor may
		// be older than the cut).
		sort.Slice(keys, func(i, j int) bool { return index[keys[i]].seq < index[keys[j]].seq })
		keep := make(map[string]bool, s.opts.MaxSessions)
		for _, k := range keys[len(keys)-s.opts.MaxSessions:] {
			for cur := k; !keep[cur]; {
				keep[cur] = true
				r := index[cur]
				if r.typ != recEdits {
					break
				}
				cur = keyFrom(cur, r.base)
				if _, ok := index[cur]; !ok {
					break // broken chain; Lookup will report it
				}
			}
		}
		kept := keys[:0]
		for _, k := range keys {
			if keep[k] {
				kept = append(kept, k)
			}
		}
		keys = kept
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := index[keys[i]], index[keys[j]]
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.seq < b.seq
	})
	return keys
}

//lint:holds mu
func (s *Store) compact() error {
	keys := s.retained()
	tmpPath := filepath.Join(s.dir, compactName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	if _, err := tmp.Write(fileMagic[:]); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	newIndex := make(map[string]rec, len(keys))
	off := int64(len(fileMagic))
	var nextSeq uint64
	for _, k := range keys {
		r := s.index[k]
		frame := make([]byte, headerSize+r.n)
		if _, err := s.f.ReadAt(frame, r.off); err != nil {
			cleanup()
			return fmt.Errorf("store: %w", err)
		}
		if _, err := tmp.Write(frame); err != nil {
			cleanup()
			return fmt.Errorf("store: %w", err)
		}
		nr := r
		nr.off = off
		nr.seq = nextSeq
		nextSeq++
		newIndex[k] = nr
		off += int64(len(frame))
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	s.syncDir()
	// The scratch fd followed the rename: it is the new log.
	s.f.Close()
	s.f = tmp
	s.size = off
	s.index = newIndex
	s.nextSeq = nextSeq
	s.records = len(newIndex)
	s.stats.Compactions++
	return nil
}

//lint:holds mu
func (s *Store) sync() error {
	if s.opts.NoSync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs the data directory so a rename survives power loss. Best
// effort: some filesystems reject directory fsync, and the rename itself
// is already crash-atomic.
//
//lint:holds mu
func (s *Store) syncDir() {
	if s.opts.NoSync {
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}
