package store

// Payload encodings for the two record kinds. Every payload opens with its
// key strings (length-prefixed), so recovery can rebuild the index without
// decoding geometry; the heavyweight parts (binary layout, colors) decode
// lazily at Lookup time. Integrity is the frame CRC's job — these decoders
// only need to fail cleanly on payloads whose corruption the CRC happened
// to miss or that a newer writer produced.

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"mpl/internal/core"
	"mpl/internal/layout"
)

// maxKeyLen bounds one key string (an options signature or a layout hash);
// real signatures are a few hundred bytes, hashes 64.
const maxKeyLen = 1 << 12

// payloadReader is a cursor over one record payload with error latching.
type payloadReader struct {
	data []byte
	err  error
}

func (p *payloadReader) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("store: "+format, args...)
	}
}

func (p *payloadReader) str(what string) string {
	if p.err != nil {
		return ""
	}
	if len(p.data) < 2 {
		p.fail("truncated %s length", what)
		return ""
	}
	n := int(binary.LittleEndian.Uint16(p.data))
	p.data = p.data[2:]
	if n > maxKeyLen {
		p.fail("implausible %s length %d", what, n)
		return ""
	}
	if len(p.data) < n {
		p.fail("truncated %s", what)
		return ""
	}
	v := string(p.data[:n])
	p.data = p.data[n:]
	return v
}

func (p *payloadReader) bytes(what string) []byte {
	if p.err != nil {
		return nil
	}
	if len(p.data) < 4 {
		p.fail("truncated %s length", what)
		return nil
	}
	n := int(binary.LittleEndian.Uint32(p.data))
	p.data = p.data[4:]
	if n > maxPayload || len(p.data) < n {
		p.fail("truncated %s (%d bytes claimed)", what, n)
		return nil
	}
	v := p.data[:n]
	p.data = p.data[n:]
	return v
}

func (p *payloadReader) uvarint(what string) uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.data)
	if n <= 0 {
		p.fail("truncated %s", what)
		return 0
	}
	p.data = p.data[n:]
	return v
}

func (p *payloadReader) varint(what string) int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.data)
	if n <= 0 {
		p.fail("truncated %s", what)
		return 0
	}
	p.data = p.data[n:]
	return v
}

func (p *payloadReader) byte(what string) byte {
	if p.err != nil {
		return 0
	}
	if len(p.data) < 1 {
		p.fail("truncated %s", what)
		return 0
	}
	v := p.data[0]
	p.data = p.data[1:]
	return v
}

func appendStr(buf []byte, s string) ([]byte, error) {
	if len(s) > maxKeyLen {
		return nil, fmt.Errorf("store: key string of %d bytes exceeds the format bound", len(s))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// encodeSnapshot serializes (sig, hash, snapshot) into one payload.
func encodeSnapshot(sig, hash string, snap *Snapshot) ([]byte, error) {
	if snap == nil || snap.Layout == nil {
		return nil, fmt.Errorf("store: nil snapshot")
	}
	var lay bytes.Buffer
	if err := snap.Layout.WriteBinary(&lay); err != nil {
		return nil, fmt.Errorf("store: encoding snapshot layout: %w", err)
	}
	buf, err := appendStr(nil, sig)
	if err != nil {
		return nil, err
	}
	if buf, err = appendStr(buf, hash); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lay.Len()))
	buf = append(buf, lay.Bytes()...)
	buf = binary.AppendUvarint(buf, uint64(len(snap.Colors)))
	for _, c := range snap.Colors {
		if c < 0 {
			return nil, fmt.Errorf("store: negative color %d in snapshot", c)
		}
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendVarint(buf, int64(snap.Conflicts))
	buf = binary.AppendVarint(buf, int64(snap.Stitches))
	if snap.Proven {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf, nil
}

func decodeSnapshot(payload []byte) (sig, hash string, snap *Snapshot, err error) {
	p := &payloadReader{data: payload}
	sig = p.str("options signature")
	hash = p.str("layout hash")
	layBytes := p.bytes("layout")
	if p.err != nil {
		return "", "", nil, p.err
	}
	l, err := layout.ReadBinary(bytes.NewReader(layBytes))
	if err != nil {
		return "", "", nil, fmt.Errorf("store: snapshot layout: %w", err)
	}
	nc := p.uvarint("color count")
	if p.err == nil && nc > uint64(maxPayload) {
		p.fail("implausible color count %d", nc)
	}
	if p.err != nil {
		return "", "", nil, p.err
	}
	capHint := nc
	if capHint > 4096 {
		capHint = 4096
	}
	colors := make([]int, 0, capHint)
	for i := uint64(0); i < nc; i++ {
		colors = append(colors, int(p.uvarint("color")))
	}
	snap = &Snapshot{
		Layout:    l,
		Colors:    colors,
		Conflicts: int(p.varint("conflict count")),
		Stitches:  int(p.varint("stitch count")),
		Proven:    p.byte("proven flag") != 0,
	}
	if p.err != nil {
		return "", "", nil, p.err
	}
	if len(p.data) != 0 {
		return "", "", nil, fmt.Errorf("store: %d trailing bytes in snapshot record", len(p.data))
	}
	return sig, hash, snap, nil
}

// encodeEditsRecord serializes (sig, next, base, batch) into one payload.
// next (the successor hash, this record's index key) comes before base so
// parseKeys reads the key fields at the same positions for both kinds.
func encodeEditsRecord(sig, base, next string, edits []core.Edit) ([]byte, error) {
	buf, err := appendStr(nil, sig)
	if err != nil {
		return nil, err
	}
	if buf, err = appendStr(buf, next); err != nil {
		return nil, err
	}
	if buf, err = appendStr(buf, base); err != nil {
		return nil, err
	}
	return core.EncodeEdits(buf, edits), nil
}

func decodeEditsRecord(payload []byte) (sig, next, base string, edits []core.Edit, err error) {
	p := &payloadReader{data: payload}
	sig = p.str("options signature")
	next = p.str("layout hash")
	base = p.str("base hash")
	if p.err != nil {
		return "", "", "", nil, p.err
	}
	edits, err = core.DecodeEdits(p.data)
	if err != nil {
		return "", "", "", nil, err
	}
	return sig, next, base, edits, nil
}

// parseKeys extracts the index key fields from a payload without decoding
// its body — all recovery needs.
func parseKeys(typ byte, payload []byte) (sig, hash, base string, err error) {
	p := &payloadReader{data: payload}
	sig = p.str("options signature")
	hash = p.str("layout hash")
	switch typ {
	case recSnapshot:
	case recEdits:
		base = p.str("base hash")
	default:
		return "", "", "", fmt.Errorf("store: unknown record type %d", typ)
	}
	if p.err != nil {
		return "", "", "", p.err
	}
	return sig, hash, base, nil
}
