package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"mpl/internal/core"
	"mpl/internal/geom"
	"mpl/internal/layout"
)

// testOpts keeps unit tests fast and deterministic: no fsync, no automatic
// compaction unless a test asks for it.
var testOpts = Options{NoSync: true, CompactMin: 1 << 30}

func testLayout(n int) *layout.Layout {
	l := layout.New("store-test")
	for i := 0; i < n; i++ {
		l.AddRect(geom.Rect{X0: i * 100, Y0: 0, X1: i*100 + 20, Y1: 20})
	}
	return l
}

func testSnap(n int) *Snapshot {
	s := &Snapshot{Layout: testLayout(n), Conflicts: n % 3, Stitches: n % 2, Proven: n%2 == 0}
	for i := 0; i < n; i++ {
		s.Colors = append(s.Colors, i%3)
	}
	return s
}

func testEdits(seed int) []core.Edit {
	return []core.Edit{
		{Op: core.EditAdd, Shape: geom.NewPolygon(geom.Rect{X0: seed, Y0: seed, X1: seed + 20, Y1: seed + 20})},
		{Op: core.EditMove, Feature: seed % 4, DX: 5 * seed, DY: -5 * seed},
	}
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func snapsEqual(a, b *Snapshot) bool {
	var la, lb bytes.Buffer
	if a.Layout.WriteBinary(&la) != nil || b.Layout.WriteBinary(&lb) != nil {
		return false
	}
	return bytes.Equal(la.Bytes(), lb.Bytes()) &&
		slices.Equal(a.Colors, b.Colors) &&
		a.Conflicts == b.Conflicts && a.Stitches == b.Stitches && a.Proven == b.Proven
}

func batchesEqual(a, b [][]core.Edit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(core.EncodeEdits(nil, a[i]), core.EncodeEdits(nil, b[i])) {
			return false
		}
	}
	return true
}

const sig = "|k=3|alpha=0.1"

func TestStoreRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir(), testOpts)

	snap := testSnap(5)
	if err := s.AppendSnapshot(sig, "h0", snap); err != nil {
		t.Fatal(err)
	}
	batches := [][]core.Edit{testEdits(1), testEdits(2), testEdits(3)}
	hashes := []string{"h1", "h2", "h3"}
	base := "h0"
	for i, b := range batches {
		need, err := s.AppendEdits(sig, base, hashes[i], b)
		if err != nil {
			t.Fatal(err)
		}
		if need {
			t.Fatalf("needSnapshot at depth %d with default SnapshotEvery", i+1)
		}
		base = hashes[i]
	}

	// The deepest session replays the full tail; an intermediate one only
	// its prefix; the root none.
	ch, err := s.Lookup(sig, "h3")
	if err != nil {
		t.Fatal(err)
	}
	if ch == nil {
		t.Fatal("Lookup(h3) found nothing")
	}
	if !snapsEqual(ch.Snap, snap) {
		t.Fatal("snapshot did not round trip")
	}
	if !batchesEqual(ch.Batches, batches) {
		t.Fatalf("batches did not round trip: got %d", len(ch.Batches))
	}
	if !slices.Equal(ch.Hashes, hashes) {
		t.Fatalf("hashes = %v, want %v", ch.Hashes, hashes)
	}
	if ch, err = s.Lookup(sig, "h1"); err != nil || ch == nil {
		t.Fatalf("Lookup(h1): %v, %v", ch, err)
	}
	if !batchesEqual(ch.Batches, batches[:1]) || !slices.Equal(ch.Hashes, hashes[:1]) {
		t.Fatal("intermediate session replays the wrong tail")
	}
	if ch, err = s.Lookup(sig, "h0"); err != nil || ch == nil || len(ch.Batches) != 0 {
		t.Fatalf("root session should replay zero batches: %v, %v", ch, err)
	}

	// Misses: unknown hash, wrong sig — (nil, nil), not an error.
	if ch, err = s.Lookup(sig, "nope"); err != nil || ch != nil {
		t.Fatalf("Lookup(miss) = %v, %v", ch, err)
	}
	if ch, err = s.Lookup("other-sig", "h3"); err != nil || ch != nil {
		t.Fatalf("Lookup(wrong sig) = %v, %v", ch, err)
	}
	if !s.Has(sig, "h2") || s.Has(sig, "nope") {
		t.Fatal("Has disagrees with Lookup")
	}

	// Deriving from a base the log never saw is a caller bug.
	if _, err := s.AppendEdits(sig, "ghost", "h9", testEdits(9)); err == nil {
		t.Fatal("AppendEdits from unknown base succeeded")
	}

	st := s.StatsSnapshot()
	if st.LiveSessions != 4 || st.Snapshots != 1 || st.Edits != 3 || st.WALRecords != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, testOpts)
	snap := testSnap(4)
	if err := s.AppendSnapshot(sig, "h0", snap); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "h0", "h1", testEdits(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, testOpts)
	st := s2.StatsSnapshot()
	if st.LiveSessions != 2 || st.TornTail != 0 || st.Orphans != 0 {
		t.Fatalf("stats after clean reopen = %+v", st)
	}
	ch, err := s2.Lookup(sig, "h1")
	if err != nil || ch == nil {
		t.Fatalf("Lookup after reopen: %v, %v", ch, err)
	}
	if !snapsEqual(ch.Snap, snap) || !batchesEqual(ch.Batches, [][]core.Edit{testEdits(1)}) {
		t.Fatal("chain changed across reopen")
	}
	// The log stays appendable after recovery.
	if _, err := s2.AppendEdits(sig, "h1", "h2", testEdits(2)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSnapshotPolicy(t *testing.T) {
	opts := testOpts
	opts.SnapshotEvery = 3
	s := openStore(t, t.TempDir(), opts)
	if err := s.AppendSnapshot(sig, "h0", testSnap(3)); err != nil {
		t.Fatal(err)
	}
	wantNeed := []bool{false, false, true} // depths 1, 2, 3
	base := "h0"
	for i, want := range wantNeed {
		next := fmt.Sprintf("h%d", i+1)
		need, err := s.AppendEdits(sig, base, next, testEdits(i))
		if err != nil {
			t.Fatal(err)
		}
		if need != want {
			t.Fatalf("depth %d: needSnapshot = %v, want %v", i+1, need, want)
		}
		base = next
	}
	// Snapshotting the deep session re-roots its chain: the next edit is
	// depth 1 again, and its replay starts at the new snapshot.
	if err := s.AppendSnapshot(sig, base, testSnap(6)); err != nil {
		t.Fatal(err)
	}
	need, err := s.AppendEdits(sig, base, "h4", testEdits(4))
	if err != nil || need {
		t.Fatalf("edit after re-rooting: need=%v err=%v", need, err)
	}
	ch, err := s.Lookup(sig, "h4")
	if err != nil || ch == nil {
		t.Fatalf("Lookup(h4): %v, %v", ch, err)
	}
	if len(ch.Batches) != 1 {
		t.Fatalf("replay depth after re-rooting = %d, want 1", len(ch.Batches))
	}
}

// TestStoreDepthRule pins the acyclicity invariant: an index entry is never
// replaced by a deeper record, so an ECO that returns to an earlier layout
// (A→B→A) cannot make the chain graph cyclic.
func TestStoreDepthRule(t *testing.T) {
	s := openStore(t, t.TempDir(), testOpts)
	if err := s.AppendSnapshot(sig, "hA", testSnap(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "hA", "hB", testEdits(1)); err != nil {
		t.Fatal(err)
	}
	// Editing back to A must not replace A's snapshot with a depth-2 record.
	if _, err := s.AppendEdits(sig, "hB", "hA", testEdits(2)); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"hA", "hB"} {
		ch, err := s.Lookup(sig, h)
		if err != nil || ch == nil {
			t.Fatalf("Lookup(%s): %v, %v", h, ch, err)
		}
	}
	ch, _ := s.Lookup(sig, "hA")
	if len(ch.Batches) != 0 {
		t.Fatalf("hA should still replay from its own snapshot, got depth %d", len(ch.Batches))
	}
	if st := s.StatsSnapshot(); st.Edits != 1 {
		t.Fatalf("the A→B→A back-edit should have been skipped, stats = %+v", st)
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, testOpts)
	// Supersede one key many times; compaction keeps only the live record.
	for i := 0; i < 10; i++ {
		if err := s.AppendSnapshot(sig, "h0", testSnap(3+i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AppendEdits(sig, "h0", "h1", testEdits(1)); err != nil {
		t.Fatal(err)
	}
	before := s.StatsSnapshot()
	if before.WALRecords != 11 {
		t.Fatalf("pre-compaction records = %d", before.WALRecords)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.StatsSnapshot()
	if after.WALRecords != 2 || after.LiveSessions != 2 || after.Compactions != 1 {
		t.Fatalf("post-compaction stats = %+v", after)
	}
	if after.WALBytes >= before.WALBytes {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.WALBytes, after.WALBytes)
	}
	// The compacted log is a valid log: same sessions after reopen, and the
	// re-rooted snapshot (the last one appended) is the one that survived.
	want := testSnap(3 + 9%2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, testOpts)
	ch, err := s2.Lookup(sig, "h1")
	if err != nil || ch == nil {
		t.Fatalf("Lookup after compaction+reopen: %v, %v", ch, err)
	}
	if !snapsEqual(ch.Snap, want) {
		t.Fatal("compaction kept a superseded snapshot")
	}
	if st := s2.StatsSnapshot(); st.Orphans != 0 || st.TornTail != 0 {
		t.Fatalf("compacted log did not recover cleanly: %+v", st)
	}
}

// TestStoreCompactionOrdersBases pins the reorder hazard: re-snapshotting a
// base gives it a newer seq than its children, and a recency-ordered
// compaction would write the child first — recover would then drop it as an
// orphan. Output order is by replay depth, so bases always come first.
func TestStoreCompactionOrdersBases(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, testOpts)
	if err := s.AppendSnapshot(sig, "h0", testSnap(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "h0", "h1", testEdits(1)); err != nil {
		t.Fatal(err)
	}
	// Re-snapshot the base: its live record is now newer than its child's.
	if err := s.AppendSnapshot(sig, "h0", testSnap(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, testOpts)
	st := s2.StatsSnapshot()
	if st.Orphans != 0 || st.LiveSessions != 2 {
		t.Fatalf("child lost across compaction+reopen: %+v", st)
	}
	if ch, err := s2.Lookup(sig, "h1"); err != nil || ch == nil || len(ch.Batches) != 1 {
		t.Fatalf("Lookup(h1) after compaction+reopen: %v, %v", ch, err)
	}
}

func TestStoreRetention(t *testing.T) {
	opts := testOpts
	opts.MaxSessions = 2
	s := openStore(t, t.TempDir(), opts)
	// Lineage 1: h0 -> h1 (old). Lineage 2: g0 (newer). Lineage 3: f0 (newest).
	if err := s.AppendSnapshot(sig, "h0", testSnap(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "h0", "h1", testEdits(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSnapshot(sig, "g0", testSnap(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSnapshot(sig, "f0", testSnap(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Newest two sessions are f0 and g0; the h lineage is dropped whole.
	for h, want := range map[string]bool{"f0": true, "g0": true, "h0": false, "h1": false} {
		if s.Has(sig, h) != want {
			t.Fatalf("after retention, Has(%s) = %v, want %v", h, !want, want)
		}
	}

	// Ancestor closure: a retained chain keeps the ancestors it replays
	// through even when they fall outside the recency cut.
	if _, err := s.AppendEdits(sig, "f0", "f1", testEdits(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "f1", "f2", testEdits(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Newest two are f2 and f1, but f0 must survive as their root.
	for h, want := range map[string]bool{"f0": true, "f1": true, "f2": true, "g0": false} {
		if s.Has(sig, h) != want {
			t.Fatalf("after ancestor closure, Has(%s) = %v, want %v", h, !want, want)
		}
	}
	if ch, err := s.Lookup(sig, "f2"); err != nil || ch == nil || len(ch.Batches) != 2 {
		t.Fatalf("retained chain does not replay: %v, %v", ch, err)
	}
}

func TestStoreAutoCompaction(t *testing.T) {
	opts := testOpts
	opts.CompactMin = 8
	s := openStore(t, t.TempDir(), opts)
	for i := 0; i < 20; i++ {
		if err := s.AppendSnapshot(sig, "h0", testSnap(3)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StatsSnapshot()
	if st.Compactions == 0 {
		t.Fatal("auto-compaction never ran")
	}
	if st.WALRecords >= 8 {
		t.Fatalf("log still carries %d records for one live session", st.WALRecords)
	}
}

// TestStoreTornTail is the crash-recovery torture test: for a log whose
// tail record is torn (truncated at every possible byte offset) or rotted
// (every byte of the tail frame corrupted in turn), Open must keep every
// earlier record, drop only the tail, and never panic or serve a corrupt
// chain.
func TestStoreTornTail(t *testing.T) {
	// Build the pristine log: a snapshot, one edit chain, then a tail edit
	// record under a distinct key so its loss is observable in isolation.
	base := t.TempDir()
	s := openStore(t, base, testOpts)
	snap := testSnap(4)
	if err := s.AppendSnapshot(sig, "h0", snap); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "h0", "h1", testEdits(1)); err != nil {
		t.Fatal(err)
	}
	sizeBeforeTail := s.StatsSnapshot().WALBytes
	if _, err := s.AppendEdits(sig, "h1", "h2", testEdits(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(filepath.Join(base, logName))
	if err != nil {
		t.Fatal(err)
	}
	tailOff := int(sizeBeforeTail)

	check := func(t *testing.T, dir string, wantTail bool) {
		t.Helper()
		s, err := Open(dir, testOpts)
		if err != nil {
			t.Fatalf("recovery failed outright: %v", err)
		}
		defer s.Close()
		// Everything before the tail record survives, byte-identical.
		ch, err := s.Lookup(sig, "h1")
		if err != nil || ch == nil {
			t.Fatalf("pre-tail session lost: %v, %v", ch, err)
		}
		if !snapsEqual(ch.Snap, snap) || !batchesEqual(ch.Batches, [][]core.Edit{testEdits(1)}) {
			t.Fatal("pre-tail chain corrupted")
		}
		if s.Has(sig, "h2") != wantTail {
			t.Fatalf("Has(tail) = %v, want %v", !wantTail, wantTail)
		}
		// The recovered log accepts appends and survives another reopen.
		if _, err := s.AppendEdits(sig, "h1", "h9", testEdits(9)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for off := tailOff; off < len(pristine); off++ {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, logName), pristine[:off], 0o644); err != nil {
				t.Fatal(err)
			}
			check(t, dir, false)
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		for off := tailOff; off < len(pristine); off++ {
			dir := t.TempDir()
			mut := slices.Clone(pristine)
			mut[off] ^= 0x41
			if err := os.WriteFile(filepath.Join(dir, logName), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			// A flipped bit anywhere in the tail frame fails its CRC (or its
			// marker/length sanity checks first): only the tail is dropped.
			check(t, dir, false)
		}
	})
	t.Run("intact", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, true)
	})
}

// TestStoreOrphanedEdit: an edit record whose base chain never made it to
// the log (corruption fallout) is dropped at recovery, not served broken.
func TestStoreOrphanedEdit(t *testing.T) {
	dir := t.TempDir()
	payload, err := encodeEditsRecord(sig, "missing-base", "h1", testEdits(1))
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, headerSize+len(payload))
	frame[0] = recMarker
	frame[1] = recEdits
	putFrame(frame, payload)
	if err := os.WriteFile(filepath.Join(dir, logName), append(slices.Clone(fileMagic[:]), frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, testOpts)
	st := s.StatsSnapshot()
	if st.Orphans != 1 || st.LiveSessions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Has(sig, "h1") {
		t.Fatal("orphaned session is still visible")
	}
}

func TestStoreBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("NOTAWAL1-and-some-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts); err == nil {
		t.Fatal("Open accepted a file that is not a session log")
	}
}

func TestStoreStaleCompactScratch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, testOpts)
	if err := s.AppendSnapshot(sig, "h0", testSnap(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash between compaction's write and rename leaves the scratch file;
	// reopening must ignore and remove it.
	scratch := filepath.Join(dir, compactName)
	if err := os.WriteFile(scratch, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, testOpts)
	if !s2.Has(sig, "h0") {
		t.Fatal("session lost")
	}
	if _, err := os.Stat(scratch); !os.IsNotExist(err) {
		t.Fatalf("stale scratch file still present: %v", err)
	}
}

// putFrame fills in the length and CRC fields of a pre-built frame whose
// marker and type bytes are already set, and copies the payload in.
func putFrame(frame, payload []byte) {
	binary.LittleEndian.PutUint32(frame[2:6], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, frame[1:6])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(frame[6:10], crc)
	copy(frame[headerSize:], payload)
}
