package store

import (
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// buildPristineLog writes a representative log — a snapshot root, a
// two-deep edit chain, a second lineage, and one superseding re-snapshot —
// and returns its bytes.
func buildPristineLog(f *testing.F) []byte {
	dir := f.TempDir()
	s, err := Open(dir, testOpts)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.AppendSnapshot(sig, "h0", testSnap(4)); err != nil {
		f.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "h0", "h1", testEdits(1)); err != nil {
		f.Fatal(err)
	}
	if _, err := s.AppendEdits(sig, "h1", "h2", testEdits(2)); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendSnapshot(sig, "g0", testSnap(3)); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendSnapshot(sig, "h1", testSnap(5)); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzWALReplay is the recovery-robustness face of the torture test:
// arbitrary byte-level damage (flips, overwrites, truncation) to a valid
// log must never panic Open or Lookup, whatever survives recovery must be
// a coherent chain, and a recovered log must accept appends and reopen
// cleanly — recovery converges instead of rotting further.
func FuzzWALReplay(f *testing.F) {
	pristine := buildPristineLog(f)
	f.Add([]byte{})                      // undamaged
	f.Add([]byte{1, 0, 0, 0})            // truncate to nothing
	f.Add([]byte{0, 9, 0, 0xFF})         // flip a header byte of the first record
	f.Add([]byte{2, 40, 0, 0xA7})        // forge a marker byte mid-record
	f.Add([]byte{1, 200, 0, 0, 0, 3, 0}) // truncate then flip
	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpret the fuzz input as damage ops, 4 bytes each:
		// kind, offset (u16 LE), value.
		mut := slices.Clone(pristine)
		for len(data) >= 4 {
			off := int(data[1]) | int(data[2])<<8
			switch data[0] % 3 {
			case 0: // flip bits
				if len(mut) > 0 {
					mut[off%len(mut)] ^= data[3] | 1
				}
			case 1: // truncate
				mut = mut[:off%(len(mut)+1)]
			case 2: // overwrite
				if len(mut) > 0 {
					mut[off%len(mut)] = data[3]
				}
			}
			data = data[4:]
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, testOpts)
		if err != nil {
			return // bad magic is a legitimate refusal — just must not panic
		}
		hashes := []string{"h0", "h1", "h2", "g0"}
		visible := make(map[string]bool)
		for _, h := range hashes {
			ch, err := s.Lookup(sig, h)
			if err != nil || ch == nil {
				continue // dropped or unreadable — allowed under damage
			}
			visible[h] = true
			if ch.Snap == nil || ch.Snap.Layout == nil {
				t.Fatalf("Lookup(%s) returned a chain without a snapshot", h)
			}
			if len(ch.Batches) != len(ch.Hashes) {
				t.Fatalf("Lookup(%s): %d batches but %d hashes", h, len(ch.Batches), len(ch.Hashes))
			}
			if n := len(ch.Hashes); n > 0 && ch.Hashes[n-1] != h {
				t.Fatalf("Lookup(%s): chain ends at %s", h, ch.Hashes[n-1])
			}
		}
		// A recovered log must accept new records...
		if visible["h0"] {
			if _, err := s.AppendEdits(sig, "h0", "z1", testEdits(7)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
		} else if err := s.AppendSnapshot(sig, "z0", testSnap(3)); err != nil {
			t.Fatalf("snapshot after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// ...and reopen cleanly: recovery already cut the torn tail, so a
		// second pass finds nothing new to cut and loses nothing.
		s2, err := Open(dir, testOpts)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer s2.Close()
		if st := s2.StatsSnapshot(); st.TornTail != 0 {
			t.Fatalf("second recovery found a torn tail again: %+v", st)
		}
		for h := range visible {
			if !s2.Has(sig, h) {
				t.Fatalf("session %s vanished across a clean reopen", h)
			}
		}
	})
}
