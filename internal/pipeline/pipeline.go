// Package pipeline defines the stage decomposition of the solve flow and
// the telemetry that rides on it. The DAC'14 flow (Fig. 2) is one
// conceptual pipeline —
//
//	Build → Simplify → Partition → Dispatch → Stitch → Merge
//
// — and every solve path in this repository (from-scratch decomposition,
// incremental ECO re-decomposition, the portfolio auto/race dispatch) is a
// composition of these six stages over different inputs: the incremental
// path substitutes a dirty-region Build and Partition, nothing more
// (DESIGN.md §"Pipeline architecture"). The package provides:
//
//   - the canonical stage names and a Stage/Pipeline composition type that
//     runs stages in order while recording per-stage wall time and heap
//     allocation deltas;
//   - Recorder, a concurrency-safe accumulator the division workers and
//     the top-level pipeline share, so interleaved per-component work
//     (peel this component, solve that one) still lands in the right
//     stage bucket;
//   - Scratch / ScratchPool, sync.Pool-backed per-worker arenas for the
//     hot-path buffers that used to be re-allocated on every solve
//     (per-component color slices, SDP matrix workspace, spatial visit
//     stamps), so repeated service requests stop paying allocation and GC
//     cost for memory whose size is stable across requests.
//
// The package deliberately knows nothing about graphs, layouts or engines:
// stages are plain functions, scratch buffers are plain slices, and the
// consumers (internal/division, internal/core, internal/sdp) decide what
// lives in them.
package pipeline

import (
	"context"
	"runtime/metrics"
	"sync"
	"time"
)

// Canonical stage names, in flow order. Every telemetry consumer — the
// division pipeline, /v1/stats, cmd/evaluate's stage columns, the BENCH
// trajectory — uses exactly these strings, so timings from different
// layers merge into one histogram.
const (
	// StageBuild is decomposition-graph construction: from-scratch
	// (core.BuildGraph) or the dirty-region incremental rebuild
	// (core.ApplyEdits).
	StageBuild = "build"
	// StageSimplify is low-degree vertex peeling — removing vertices that
	// can always be re-colored legally afterwards.
	StageSimplify = "simplify"
	// StagePartition is structural splitting: connected components,
	// biconnected blocks, GH-tree (K−1)-cut pieces, and — on the
	// incremental path — the dirty/copy-safe component diff.
	StagePartition = "partition"
	// StageDispatch is per-piece color assignment: engine selection
	// (fixed, auto, or race) plus the engine solve itself.
	StageDispatch = "dispatch"
	// StageStitch is reassembly: block rotations at articulation vertices,
	// GH cut-edge rotations, and peel-stack pops.
	StageStitch = "stitch"
	// StageMerge is final assembly: validating the full coloring, counting
	// the objective (or applying incremental deltas), and building the
	// Result.
	StageMerge = "merge"
)

// StageNames lists the canonical stages in flow order (report columns).
var StageNames = []string{StageBuild, StageSimplify, StagePartition, StageDispatch, StageStitch, StageMerge}

// StageStats is the accumulated telemetry of one named stage.
type StageStats struct {
	// Wall is total wall-clock time inside the stage. Stages that run on
	// several division workers sum across goroutines (CPU time, not
	// elapsed time), matching how Result.SolverTime is reported.
	Wall time.Duration
	// Allocs and Bytes are heap allocation deltas (objects and bytes)
	// measured across the stage via runtime/metrics. They are recorded
	// only for the serial top-level stages (Build, Partition, Merge) —
	// the process-global counters cannot be attributed per goroutine, so
	// concurrent stages record wall time only. Treat them as an
	// approximation in both directions: anything else the process
	// allocates during the stage is included, while small allocations are
	// batched in per-P span caches and may not reach the global counter
	// until later (a microseconds-scale stage can legitimately read 0).
	// The -benchmem benchmarks, not this telemetry, are the precision
	// instrument for allocation regressions.
	Allocs uint64
	Bytes  uint64
	// Calls counts how many timed regions were folded into this bucket
	// (per-piece dispatch regions make this the piece count).
	Calls int
}

// add folds another accumulation into s.
func (s *StageStats) add(o StageStats) {
	s.Wall += o.Wall
	s.Allocs += o.Allocs
	s.Bytes += o.Bytes
	s.Calls += o.Calls
}

// MergeStages folds src into dst, allocating dst on first use, and returns
// it. It is the single merge rule for every Stages map in the repository
// (division.Stats.addWorker, the service aggregate).
func MergeStages(dst, src map[string]StageStats) map[string]StageStats {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]StageStats, len(src))
	}
	for name, st := range src {
		cur := dst[name]
		cur.add(st)
		dst[name] = cur
	}
	return dst
}

// Recorder accumulates per-stage telemetry. It is safe for concurrent use:
// division workers observe dispatch/stitch regions from many goroutines
// while the top-level pipeline records its serial stages. The zero value
// is NOT usable; a nil *Recorder is — every method no-ops — so telemetry
// can be threaded optionally.
type Recorder struct {
	mu sync.Mutex
	m  map[string]StageStats
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{m: make(map[string]StageStats)}
}

// Observe folds one timed region into the named stage.
func (r *Recorder) Observe(name string, wall time.Duration) {
	if r == nil {
		return
	}
	r.observe(name, StageStats{Wall: wall, Calls: 1})
}

func (r *Recorder) observe(name string, st StageStats) {
	r.mu.Lock()
	cur := r.m[name]
	cur.add(st)
	r.m[name] = cur
	r.mu.Unlock()
}

// ObserveStats folds a pre-accumulated StageStats map (a worker's local
// tally, a nested pipeline's snapshot) into the recorder.
func (r *Recorder) ObserveStats(stages map[string]StageStats) {
	if r == nil || len(stages) == 0 {
		return
	}
	r.mu.Lock()
	r.m = MergeStages(r.m, stages)
	r.mu.Unlock()
}

// Snapshot returns a copy of the accumulated per-stage telemetry. A nil
// recorder returns nil.
func (r *Recorder) Snapshot() map[string]StageStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.m) == 0 {
		return nil
	}
	out := make(map[string]StageStats, len(r.m))
	for name, st := range r.m {
		out[name] = st
	}
	return out
}

// Stage is one named step of a solve pipeline.
type Stage struct {
	// Name is the canonical stage name the run is recorded under. A stage
	// with an empty name is composite: its body records its own
	// fine-grained regions into the pipeline's Recorder (the division
	// stages), so the pipeline itself records nothing for it — wrapping it
	// too would double-count the same wall time.
	Name string
	// Run executes the stage. Stages receive the pipeline's context and
	// must honor the repository's cancellation contract themselves (most
	// degrade rather than abort); the pipeline does not cancel between
	// stages.
	Run func(ctx context.Context) error
}

// Func builds a recorded stage.
func Func(name string, run func(ctx context.Context) error) Stage {
	return Stage{Name: name, Run: run}
}

// Composite builds a stage whose body does its own stage accounting.
func Composite(run func(ctx context.Context) error) Stage {
	return Stage{Run: run}
}

// readAllocs samples the heap-allocation counters into the caller's
// two-element buffer (objects, bytes). Reading is cheap (two counter
// loads, no stop-the-world), so the pipeline can afford it per stage
// boundary; the buffer is reused so the telemetry itself stays off the
// allocation profile it measures.
func readAllocs(s []metrics.Sample) (objects, bytes uint64) {
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		objects = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		bytes = s[1].Value.Uint64()
	}
	return objects, bytes
}

// Pipeline composes stages over a shared Recorder. Run is single-shot and
// single-goroutine, so the metrics sample buffer is reused across stages.
type Pipeline struct {
	rec     *Recorder
	stages  []Stage
	samples [2]metrics.Sample
}

// New builds a pipeline recording into rec (which may be nil for untimed
// runs; composite stages then receive no telemetry sink either).
func New(rec *Recorder, stages ...Stage) *Pipeline {
	p := &Pipeline{rec: rec, stages: stages}
	p.samples[0].Name = "/gc/heap/allocs:objects"
	p.samples[1].Name = "/gc/heap/allocs:bytes"
	return p
}

// Run executes the stages in order, recording wall time and allocation
// deltas for every named stage, and stops at the first stage error.
// Cancellation is deliberately left to the stages: the decomposition
// contract returns a degraded-but-valid result under a dead context, so
// the pipeline must keep running stages rather than aborting between them.
func (p *Pipeline) Run(ctx context.Context) error {
	for _, st := range p.stages {
		if st.Name == "" {
			if err := st.Run(ctx); err != nil {
				return err
			}
			continue
		}
		var a0, b0 uint64
		if p.rec != nil {
			a0, b0 = readAllocs(p.samples[:])
		}
		t0 := time.Now()
		err := st.Run(ctx)
		wall := time.Since(t0)
		if p.rec != nil {
			a1, b1 := readAllocs(p.samples[:])
			p.rec.observe(st.Name, StageStats{Wall: wall, Allocs: a1 - a0, Bytes: b1 - b0, Calls: 1})
		}
		if err != nil {
			return err
		}
	}
	return nil
}
