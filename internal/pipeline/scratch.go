package pipeline

import "sync"

// Scratch is one worker's reusable scratch memory for the hot solve path.
// A Scratch is single-goroutine property: the division pipeline hands each
// worker its own and threads it through the Dispatch stage into the
// engines, so nothing here is locked. Buffers handed out by a Scratch are
// valid until they are put back (Ints/Int32s) or until the next
// ResetFloats (arena slices); the dispatch discipline — solve one piece,
// consume its outputs, then start the next — guarantees a piece's scratch
// memory is never recycled while still referenced.
//
// All methods are nil-safe: a nil *Scratch allocates fresh buffers and
// discards returns, so callers can thread scratch optionally without
// branching.
type Scratch struct {
	// noReuse turns every request into a fresh allocation (the un-pooled
	// baseline of the allocation benchmarks — the behavior of the code
	// before the scratch layer existed).
	noReuse bool

	ints   [][]int
	int32s [][]int32
	int64s [][]int64

	// Float arena: one growing backing array carved left to right;
	// ResetFloats reclaims every carved slice at once. The SDP engine
	// resets at the start of each solve and carves its matrix workspace
	// (factor rows, gradients, line-search saves) from it.
	floats []float64
	off    int
}

// maxFreelist bounds each typed freelist: a worker juggles at most a
// handful of live buffers per piece (network arrays, index maps, color
// slices), so anything deeper only pins memory.
const maxFreelist = 16

// Ints returns a length-n int slice with undefined contents. Callers that
// need zeroing (none today — color slices are filled with Uncolored
// immediately) must do it themselves.
func (s *Scratch) Ints(n int) []int {
	if s == nil || s.noReuse {
		return make([]int, n)
	}
	for i := len(s.ints) - 1; i >= 0; i-- {
		if cap(s.ints[i]) >= n {
			b := s.ints[i][:n]
			s.ints[i] = s.ints[len(s.ints)-1]
			s.ints = s.ints[:len(s.ints)-1]
			return b
		}
	}
	return make([]int, n)
}

// PutInts returns a slice obtained from Ints for reuse. Putting a slice
// the scratch did not hand out is allowed (the division pipeline adopts
// engine-returned color slices whose contents it has already consumed);
// the only contract is that the caller no longer references it.
func (s *Scratch) PutInts(b []int) {
	if s == nil || s.noReuse || cap(b) == 0 || len(s.ints) >= maxFreelist {
		return
	}
	s.ints = append(s.ints, b[:0])
}

// Int32s returns a zeroed length-n int32 slice (visit stamps and index
// maps rely on the zero state).
func (s *Scratch) Int32s(n int) []int32 {
	if s == nil || s.noReuse {
		return make([]int32, n)
	}
	for i := len(s.int32s) - 1; i >= 0; i-- {
		if cap(s.int32s[i]) >= n {
			b := s.int32s[i][:n]
			s.int32s[i] = s.int32s[len(s.int32s)-1]
			s.int32s = s.int32s[:len(s.int32s)-1]
			clear(b)
			return b
		}
	}
	return make([]int32, n)
}

// PutInt32s returns a slice obtained from Int32s for reuse.
func (s *Scratch) PutInt32s(b []int32) {
	if s == nil || s.noReuse || cap(b) == 0 || len(s.int32s) >= maxFreelist {
		return
	}
	s.int32s = append(s.int32s, b[:0])
}

// Int64s returns a zeroed length-n int64 slice.
func (s *Scratch) Int64s(n int) []int64 {
	if s == nil || s.noReuse {
		return make([]int64, n)
	}
	for i := len(s.int64s) - 1; i >= 0; i-- {
		if cap(s.int64s[i]) >= n {
			b := s.int64s[i][:n]
			s.int64s[i] = s.int64s[len(s.int64s)-1]
			s.int64s = s.int64s[:len(s.int64s)-1]
			clear(b)
			return b
		}
	}
	return make([]int64, n)
}

// PutInt64s returns a slice obtained from Int64s for reuse.
func (s *Scratch) PutInt64s(b []int64) {
	if s == nil || s.noReuse || cap(b) == 0 || len(s.int64s) >= maxFreelist {
		return
	}
	s.int64s = append(s.int64s, b[:0])
}

// ResetFloats reclaims the whole float arena. Every slice previously
// returned by Floats becomes reusable memory; the caller must be done
// with all of them.
func (s *Scratch) ResetFloats() {
	if s != nil {
		s.off = 0
	}
}

// Floats carves a zeroed length-n float64 slice from the arena. When the
// backing array is exhausted it is regrown (old carvings stay valid —
// they keep referencing the previous backing), so a sequence of takes is
// always safe; steady-state solves of similar size never allocate.
func (s *Scratch) Floats(n int) []float64 {
	if s == nil || s.noReuse {
		return make([]float64, n)
	}
	if s.off+n > len(s.floats) {
		grow := 2 * (s.off + n)
		s.floats = make([]float64, grow)
		s.off = 0
	}
	b := s.floats[s.off : s.off+n : s.off+n]
	s.off += n
	clear(b)
	return b
}

// ScratchPool is a sync.Pool of per-worker Scratch arenas. The zero value
// is NOT usable; a nil *ScratchPool is — Get returns nil (callers then
// allocate fresh via the nil-safe Scratch methods) and Put discards.
type ScratchPool struct {
	unpooled bool
	p        sync.Pool
}

// NewScratchPool returns a pool whose scratches retain their buffers
// across Get/Put cycles (and across GC survivors, per sync.Pool).
func NewScratchPool() *ScratchPool {
	return &ScratchPool{p: sync.Pool{New: func() any { return new(Scratch) }}}
}

// NewUnpooledScratchPool returns a pool whose scratches allocate fresh
// memory on every request — the pre-pooling behavior, kept as the
// comparison baseline for the allocation benchmarks and for bisecting
// pooling bugs (run with the unpooled pool to rule the scratch layer out).
func NewUnpooledScratchPool() *ScratchPool {
	return &ScratchPool{unpooled: true, p: sync.Pool{New: func() any { return &Scratch{noReuse: true} }}}
}

// Get leases a scratch arena; pair with Put.
func (p *ScratchPool) Get() *Scratch {
	if p == nil {
		return nil
	}
	return p.p.Get().(*Scratch)
}

// Put returns a scratch to the pool. The caller must not use it (or any
// buffer obtained from it) afterwards.
func (p *ScratchPool) Put(s *Scratch) {
	if p == nil || s == nil {
		return
	}
	s.ResetFloats()
	p.p.Put(s)
}
