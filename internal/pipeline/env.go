package pipeline

// Env bundles the cross-cutting machinery one decomposition run threads
// through its layers (core → division → portfolio → sdp): the scratch-arena
// pool workers lease their per-goroutine arenas from, and the shared
// parallelism budget that keeps component-level division workers and
// restart-level SDP goroutines inside a single worker allowance. The zero
// value disables both — every buffer request allocates and nested
// parallelism never engages — so callers can thread an Env optionally.
type Env struct {
	// Scratch is the per-worker arena pool; each division worker (and each
	// race-mode racer or restart runner) leases one arena for its own
	// lifetime. Nil disables pooling.
	Scratch *ScratchPool
	// Budget is the run's shared goroutine budget (Options.Workers slots).
	// Nil means no budget: nested fan-outs stay serial.
	Budget *Budget
}

// Budget is the shared parallelism budget of one decomposition run: a
// fixed pool of idle-worker slots sized to the run's worker count.
//
// The accounting is deliberately one-directional. Every slot starts owned
// by a (current or future) division worker, so a fresh Budget has no free
// slots. A worker that runs out of components for good returns its slot
// with Free — the component queue is pre-filled and closed before workers
// start, so a drained queue means no job will ever arrive for it again.
// Nested parallelism (the SDP restart fan-out) claims only freed slots
// with TryAcquire, never blocking, and hands them back with Release. The
// invariant follows directly: every claimed slot corresponds to a worker
// that has already exited, so running division workers plus claimed extra
// goroutines never exceed the slot count. This is exactly the shape of
// the one-huge-component workload — component parallelism has nothing
// left to do, the idle slots drain into the budget, and the lone SDP
// solve fans its restarts out across them.
//
// All methods are nil-safe: a nil *Budget never grants a slot and
// discards returns, so serial runs thread no budget at all.
type Budget struct {
	slots chan struct{}
}

// NewBudget returns a budget of n slots, all initially owned by workers
// (none free). n ≤ 1 returns nil — a run with at most one worker has no
// idle slots to share, so the no-op budget serves it.
func NewBudget(n int) *Budget {
	if n <= 1 {
		return nil
	}
	return &Budget{slots: make(chan struct{}, n)}
}

// Free returns one slot to the budget — a worker going permanently idle.
func (b *Budget) Free() {
	if b == nil {
		return
	}
	select {
	case b.slots <- struct{}{}:
	default:
		// Freeing beyond capacity indicates a bookkeeping bug somewhere;
		// dropping the slot errs in the safe direction (under-parallelize,
		// never oversubscribe).
	}
}

// TryAcquire claims one free slot without blocking. It reports false when
// no slot is free (or the budget is nil), in which case the caller stays
// serial — the cheap, always-correct degradation.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return false
	}
	select {
	case <-b.slots:
		return true
	default:
		return false
	}
}

// Release hands back a slot claimed with TryAcquire.
func (b *Budget) Release() { b.Free() }
