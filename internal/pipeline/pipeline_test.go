package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var allocSink []byte

func TestPipelineRecordsNamedStages(t *testing.T) {
	rec := NewRecorder()
	var order []string
	p := New(rec,
		Func(StageBuild, func(context.Context) error {
			order = append(order, "build")
			allocSink = make([]byte, 1<<16) // visible in the alloc delta
			return nil
		}),
		Composite(func(context.Context) error {
			order = append(order, "composite")
			rec.Observe(StageDispatch, 5*time.Millisecond)
			rec.Observe(StageDispatch, 7*time.Millisecond)
			return nil
		}),
		Func(StageMerge, func(context.Context) error {
			order = append(order, "merge")
			return nil
		}),
	)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "build" || order[1] != "composite" || order[2] != "merge" {
		t.Fatalf("stage order = %v", order)
	}
	snap := rec.Snapshot()
	if _, ok := snap[StageBuild]; !ok {
		t.Fatalf("build stage not recorded: %v", snap)
	}
	if snap[StageBuild].Allocs == 0 || snap[StageBuild].Bytes < 1<<16 {
		t.Errorf("build stage alloc delta not captured: %+v", snap[StageBuild])
	}
	d := snap[StageDispatch]
	if d.Calls != 2 || d.Wall != 12*time.Millisecond {
		t.Errorf("dispatch bucket = %+v, want 2 calls / 12ms", d)
	}
	if _, ok := snap["composite"]; ok {
		t.Errorf("composite stage must not be recorded under a name")
	}
}

func TestPipelineStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	p := New(nil,
		Func(StageBuild, func(context.Context) error { ran++; return boom }),
		Func(StageMerge, func(context.Context) error { ran++; return nil }),
	)
	if err := p.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d stages, want 1", ran)
	}
}

func TestPipelineRunsStagesUnderDeadCtx(t *testing.T) {
	// The decomposition contract degrades under a dead context instead of
	// aborting, so the pipeline must keep running stages.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	p := New(NewRecorder(), Func(StageBuild, func(context.Context) error { ran++; return nil }),
		Func(StageMerge, func(context.Context) error { ran++; return nil }))
	if err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran %d stages under cancelled ctx, want 2", ran)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Observe(StageBuild, time.Second)
	r.ObserveStats(map[string]StageStats{StageMerge: {Wall: 1}})
	if r.Snapshot() != nil {
		t.Fatal("nil recorder must snapshot nil")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rec.Observe(StageDispatch, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := rec.Snapshot()[StageDispatch]; got.Calls != 8000 || got.Wall != 8000*time.Microsecond {
		t.Fatalf("concurrent tally = %+v", got)
	}
}

func TestMergeStages(t *testing.T) {
	var dst map[string]StageStats
	dst = MergeStages(dst, map[string]StageStats{StageBuild: {Wall: 2, Calls: 1}})
	dst = MergeStages(dst, map[string]StageStats{StageBuild: {Wall: 3, Calls: 1}, StageMerge: {Wall: 1, Calls: 1}})
	if dst[StageBuild].Wall != 5 || dst[StageBuild].Calls != 2 || dst[StageMerge].Calls != 1 {
		t.Fatalf("merged = %+v", dst)
	}
	if out := MergeStages(nil, nil); out != nil {
		t.Fatalf("merging nothing must stay nil, got %+v", out)
	}
}

func TestScratchReuse(t *testing.T) {
	pool := NewScratchPool()
	s := pool.Get()
	a := s.Ints(100)
	a[0] = 42
	s.PutInts(a)
	b := s.Ints(50)
	if &b[0] != &a[0] {
		t.Error("Ints did not reuse the returned buffer")
	}
	st := s.Int32s(64)
	st[3] = 9
	s.PutInt32s(st)
	st2 := s.Int32s(64)
	if &st2[0] != &st[0] {
		t.Error("Int32s did not reuse the returned buffer")
	}
	if st2[3] != 0 {
		t.Error("Int32s must re-zero reused buffers")
	}

	s.ResetFloats()
	f1 := s.Floats(32)
	f1[0] = 1
	f2 := s.Floats(32)
	if &f1[31] == &f2[0] {
		t.Error("arena carvings overlap")
	}
	s.ResetFloats()
	f3 := s.Floats(16)
	if &f3[0] != &f1[0] {
		t.Error("ResetFloats did not reclaim the arena")
	}
	if f3[0] != 0 {
		t.Error("Floats must return zeroed memory")
	}
	pool.Put(s)
	if again := pool.Get(); again != s {
		// sync.Pool gives no hard guarantee, but single-goroutine
		// put-then-get returning a different object would break the
		// steady-state reuse the layer exists for.
		t.Log("pool returned a different scratch (allowed, but unexpected in-test)")
	}
}

func TestScratchArenaGrowKeepsOldCarvings(t *testing.T) {
	s := NewScratchPool().Get()
	s.ResetFloats()
	f1 := s.Floats(8)
	f1[7] = 3.5
	_ = s.Floats(1 << 16) // forces a regrow
	if f1[7] != 3.5 {
		t.Fatal("regrow invalidated an existing carving")
	}
}

func TestScratchNilAndUnpooled(t *testing.T) {
	var s *Scratch
	if got := s.Ints(4); len(got) != 4 {
		t.Fatal("nil scratch Ints")
	}
	s.PutInts(nil)
	if got := s.Int32s(4); len(got) != 4 {
		t.Fatal("nil scratch Int32s")
	}
	if got := s.Floats(4); len(got) != 4 {
		t.Fatal("nil scratch Floats")
	}
	s.ResetFloats()

	var pool *ScratchPool
	if pool.Get() != nil {
		t.Fatal("nil pool must lease nil scratches")
	}
	pool.Put(nil)

	up := NewUnpooledScratchPool().Get()
	a := up.Ints(16)
	up.PutInts(a)
	b := up.Ints(16)
	if &a[0] == &b[0] {
		t.Fatal("unpooled scratch must not reuse buffers")
	}
}
