// Package geom provides the integer-coordinate planar geometry used by the
// layout decomposer: points, axis-aligned rectangles, and rectilinear
// polygons represented as unions of rectangles.
//
// All coordinates are integers in layout database units (1 unit = 1 nm in the
// benchmarks of the DAC'14 paper). Distances between shapes are Euclidean
// gap distances: the smallest distance between any two points of the two
// shapes, which is zero when the shapes touch or overlap.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the layout grid.
type Point struct {
	X, Y int
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy int) Point { return Point{p.X + dx, p.Y + dy} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with inclusive lower-left corner
// (X0, Y0) and exclusive upper-right corner (X1, Y1) in the half-open sense
// commonly used for layout database geometry. A Rect is valid when
// X0 < X1 and Y0 < Y1.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Valid reports whether the rectangle has positive width and height.
func (r Rect) Valid() bool { return r.X0 < r.X1 && r.Y0 < r.Y1 }

// Width returns the horizontal extent.
func (r Rect) Width() int { return r.X1 - r.X0 }

// Height returns the vertical extent.
func (r Rect) Height() int { return r.Y1 - r.Y0 }

// Area returns the rectangle area.
func (r Rect) Area() int64 { return int64(r.Width()) * int64(r.Height()) }

// Center returns the center point, rounded down.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// Expand returns r grown by d on every side. A negative d shrinks the
// rectangle and may make it invalid.
func (r Rect) Expand(d int) Rect {
	return Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
}

// Contains reports whether p lies inside r (half-open).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Intersects reports whether the two rectangles share interior area.
func (r Rect) Intersects(o Rect) bool {
	return r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// Touches reports whether the rectangles share at least a boundary point
// (including corner contact) or overlap.
func (r Rect) Touches(o Rect) bool {
	return r.X0 <= o.X1 && o.X0 <= r.X1 && r.Y0 <= o.Y1 && o.Y0 <= r.Y1
}

// Union returns the bounding box of both rectangles.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		min(r.X0, o.X0), min(r.Y0, o.Y0),
		max(r.X1, o.X1), max(r.Y1, o.Y1),
	}
}

// Intersection returns the overlapping region; the result is invalid
// (Width or Height <= 0) when the rectangles do not overlap.
func (r Rect) Intersection(o Rect) Rect {
	return Rect{
		max(r.X0, o.X0), max(r.Y0, o.Y0),
		min(r.X1, o.X1), min(r.Y1, o.Y1),
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}

// axisGap returns the separation between intervals [a0,a1) and [b0,b1)
// along one axis; zero when they overlap or touch.
func axisGap(a0, a1, b0, b1 int) int {
	switch {
	case b0 > a1:
		return b0 - a1
	case a0 > b1:
		return a0 - b1
	default:
		return 0
	}
}

// GapSq returns the squared Euclidean gap distance between two rectangles:
// 0 when they touch or overlap, otherwise the squared distance between the
// two closest boundary points. Using the squared value keeps everything in
// exact integer arithmetic; callers compare against mins² to decide
// conflicts, matching the paper's "within minimum coloring distance" test.
func GapSq(a, b Rect) int64 {
	dx := int64(axisGap(a.X0, a.X1, b.X0, b.X1))
	dy := int64(axisGap(a.Y0, a.Y1, b.Y0, b.Y1))
	return dx*dx + dy*dy
}

// Gap returns the Euclidean gap distance between two rectangles as a float.
func Gap(a, b Rect) float64 { return math.Sqrt(float64(GapSq(a, b))) }

// Polygon is a rectilinear shape stored as a union of rectangles. The
// rectangles may touch but should not overlap; layout readers and the
// synthetic generators produce non-overlapping decompositions.
type Polygon struct {
	Rects []Rect
}

// NewPolygon returns a polygon over the given rectangles.
func NewPolygon(rects ...Rect) Polygon {
	return Polygon{Rects: append([]Rect(nil), rects...)}
}

// Valid reports whether the polygon has at least one valid rectangle and no
// invalid member rectangles.
func (pg Polygon) Valid() bool {
	if len(pg.Rects) == 0 {
		return false
	}
	for _, r := range pg.Rects {
		if !r.Valid() {
			return false
		}
	}
	return true
}

// Bounds returns the bounding box of the polygon. The zero Rect is returned
// for an empty polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg.Rects) == 0 {
		return Rect{}
	}
	b := pg.Rects[0]
	for _, r := range pg.Rects[1:] {
		b = b.Union(r)
	}
	return b
}

// Area returns the total area assuming non-overlapping member rectangles.
func (pg Polygon) Area() int64 {
	var a int64
	for _, r := range pg.Rects {
		a += r.Area()
	}
	return a
}

// Translate returns the polygon shifted by (dx, dy).
func (pg Polygon) Translate(dx, dy int) Polygon {
	out := Polygon{Rects: make([]Rect, len(pg.Rects))}
	for i, r := range pg.Rects {
		out.Rects[i] = r.Translate(dx, dy)
	}
	return out
}

// GapSqPoly returns the squared gap distance between two polygons: the
// minimum pairwise rectangle gap. Zero means the polygons touch or overlap.
func GapSqPoly(a, b Polygon) int64 {
	best := int64(math.MaxInt64)
	for _, ra := range a.Rects {
		for _, rb := range b.Rects {
			if g := GapSq(ra, rb); g < best {
				best = g
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

// Connected reports whether the polygon's rectangles form one connected
// shape under touch-adjacency. Single-rectangle polygons are connected.
func (pg Polygon) Connected() bool {
	n := len(pg.Rects)
	if n <= 1 {
		return n == 1
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if !seen[j] && pg.Rects[i].Touches(pg.Rects[j]) {
				seen[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	return count == n
}
