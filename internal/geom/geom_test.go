package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(10, 20, 0, 5)
	want := Rect{0, 5, 10, 20}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect should be valid")
	}
}

func TestRectValid(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, true},
		{Rect{0, 0, 0, 1}, false},
		{Rect{0, 0, 1, 0}, false},
		{Rect{2, 2, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.r.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectDimensions(t *testing.T) {
	r := Rect{1, 2, 5, 10}
	if r.Width() != 4 || r.Height() != 8 {
		t.Fatalf("Width/Height = %d/%d, want 4/8", r.Width(), r.Height())
	}
	if r.Area() != 32 {
		t.Fatalf("Area = %d, want 32", r.Area())
	}
	if c := r.Center(); c != (Point{3, 6}) {
		t.Fatalf("Center = %v, want (3,6)", c)
	}
}

func TestRectTranslateExpand(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if got := r.Translate(3, -1); got != (Rect{3, -1, 5, 1}) {
		t.Fatalf("Translate = %v", got)
	}
	if got := r.Expand(1); got != (Rect{-1, -1, 3, 3}) {
		t.Fatalf("Expand = %v", got)
	}
	if r.Expand(-1).Valid() {
		t.Fatalf("over-shrunk rect must be invalid")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Point{0, 0}) {
		t.Error("lower-left corner should be contained (half-open)")
	}
	if r.Contains(Point{10, 5}) {
		t.Error("upper edge should be excluded (half-open)")
	}
}

func TestIntersectsTouches(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b                 Rect
		intersects, touch bool
	}{
		{Rect{5, 5, 15, 15}, true, true},    // overlap
		{Rect{10, 0, 20, 10}, false, true},  // shared edge
		{Rect{10, 10, 20, 20}, false, true}, // shared corner
		{Rect{11, 0, 20, 10}, false, false}, // 1 unit apart
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.intersects {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.intersects)
		}
		if got := a.Touches(c.b); got != c.touch {
			t.Errorf("Touches(%v) = %v, want %v", c.b, got, c.touch)
		}
	}
}

func TestUnionIntersection(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 8, 3}
	if got := a.Union(b); got != (Rect{0, 0, 8, 4}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersection(b); got != (Rect{2, 2, 4, 3}) {
		t.Fatalf("Intersection = %v", got)
	}
	far := Rect{100, 100, 101, 101}
	if a.Intersection(far).Valid() {
		t.Fatalf("disjoint intersection must be invalid")
	}
}

func TestGapSq(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want int64
	}{
		{Rect{2, 2, 5, 5}, 0},     // contained
		{Rect{10, 0, 20, 10}, 0},  // touching edge
		{Rect{13, 0, 20, 10}, 9},  // 3 apart horizontally
		{Rect{0, 14, 10, 20}, 16}, // 4 apart vertically
		{Rect{13, 14, 20, 20}, 25},
	}
	for _, c := range cases {
		if got := GapSq(a, c.b); got != c.want {
			t.Errorf("GapSq(%v) = %d, want %d", c.b, got, c.want)
		}
	}
	if g := Gap(a, Rect{13, 14, 20, 20}); math.Abs(g-5) > 1e-12 {
		t.Errorf("Gap = %v, want 5", g)
	}
}

func TestGapSymmetry(t *testing.T) {
	// Property: gap distance is symmetric and zero iff Touches.
	rng := rand.New(rand.NewSource(1))
	randRect := func() Rect {
		x := rng.Intn(100)
		y := rng.Intn(100)
		return Rect{x, y, x + 1 + rng.Intn(20), y + 1 + rng.Intn(20)}
	}
	for i := 0; i < 2000; i++ {
		a, b := randRect(), randRect()
		ga, gb := GapSq(a, b), GapSq(b, a)
		if ga != gb {
			t.Fatalf("asymmetric gap: %v vs %v for %v %v", ga, gb, a, b)
		}
		if (ga == 0) != a.Touches(b) {
			t.Fatalf("gap==0 (%d) disagrees with Touches (%v) for %v %v", ga, a.Touches(b), a, b)
		}
	}
}

func TestPolygonBasics(t *testing.T) {
	pg := NewPolygon(Rect{0, 0, 10, 2}, Rect{0, 2, 2, 10})
	if !pg.Valid() {
		t.Fatal("polygon should be valid")
	}
	if got := pg.Bounds(); got != (Rect{0, 0, 10, 10}) {
		t.Fatalf("Bounds = %v", got)
	}
	if got := pg.Area(); got != 20+16 {
		t.Fatalf("Area = %d, want 36", got)
	}
	if !pg.Connected() {
		t.Fatal("L-shape should be connected")
	}
}

func TestPolygonDisconnected(t *testing.T) {
	pg := NewPolygon(Rect{0, 0, 2, 2}, Rect{5, 5, 7, 7})
	if pg.Connected() {
		t.Fatal("separated rects must not be connected")
	}
	if (Polygon{}).Valid() {
		t.Fatal("empty polygon must be invalid")
	}
	if (Polygon{}).Connected() {
		t.Fatal("empty polygon must not be connected")
	}
}

func TestPolygonTranslate(t *testing.T) {
	pg := NewPolygon(Rect{0, 0, 2, 2})
	moved := pg.Translate(5, 7)
	if moved.Rects[0] != (Rect{5, 7, 7, 9}) {
		t.Fatalf("Translate = %v", moved.Rects[0])
	}
	// Original untouched.
	if pg.Rects[0] != (Rect{0, 0, 2, 2}) {
		t.Fatalf("Translate mutated receiver")
	}
}

func TestGapSqPoly(t *testing.T) {
	a := NewPolygon(Rect{0, 0, 2, 2}, Rect{20, 0, 22, 2})
	b := NewPolygon(Rect{5, 0, 7, 2})
	// Closest pair: rect (5..7) vs (0..2) → gap 3 and vs (20..22) → gap 13.
	if got := GapSqPoly(a, b); got != 9 {
		t.Fatalf("GapSqPoly = %d, want 9", got)
	}
	if got := GapSqPoly(a, a); got != 0 {
		t.Fatalf("self distance = %d, want 0", got)
	}
}

func TestGapSqPolyMatchesBruteForce(t *testing.T) {
	// Property via testing/quick: polygon gap equals min over rect pairs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Polygon {
			n := 1 + rng.Intn(4)
			rects := make([]Rect, n)
			for i := range rects {
				x, y := rng.Intn(50), rng.Intn(50)
				rects[i] = Rect{x, y, x + 1 + rng.Intn(10), y + 1 + rng.Intn(10)}
			}
			return Polygon{Rects: rects}
		}
		a, b := mk(), mk()
		want := int64(math.MaxInt64)
		for _, ra := range a.Rects {
			for _, rb := range b.Rects {
				if g := GapSq(ra, rb); g < want {
					want = g
				}
			}
		}
		return GapSqPoly(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{3, -4}).String(); got != "(3,-4)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Point{1, 2}).Add(2, 3); got != (Point{3, 5}) {
		t.Fatalf("Add = %v", got)
	}
	if got := (Rect{0, 0, 1, 2}).String(); got != "[0,0 1,2]" {
		t.Fatalf("Rect.String = %q", got)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Rect {
			x, y := rng.Intn(100)-50, rng.Intn(100)-50
			return Rect{x, y, x + 1 + rng.Intn(30), y + 1 + rng.Intn(30)}
		}
		a, b := mk(), mk()
		u := a.Union(b)
		// Union contains all four corners of both rects.
		for _, r := range []Rect{a, b} {
			if r.X0 < u.X0 || r.Y0 < u.Y0 || r.X1 > u.X1 || r.Y1 > u.Y1 {
				return false
			}
		}
		// Intersection, when valid, lies inside both.
		if iv := a.Intersection(b); iv.Valid() {
			if !a.Intersects(b) {
				return false
			}
			if iv.X0 < a.X0 || iv.X1 > a.X1 || iv.X0 < b.X0 || iv.X1 > b.X1 {
				return false
			}
		} else if a.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestGapTriangleInequality(t *testing.T) {
	// Euclidean gap satisfies a weak triangle inequality through any
	// intermediate rectangle: gap(a,c) <= gap(a,b) + diam(b) + gap(b,c).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		mk := func() Rect {
			x, y := rng.Intn(200), rng.Intn(200)
			return Rect{x, y, x + 1 + rng.Intn(40), y + 1 + rng.Intn(40)}
		}
		a, b, c := mk(), mk(), mk()
		diam := math.Hypot(float64(b.Width()), float64(b.Height()))
		if Gap(a, c) > Gap(a, b)+diam+Gap(b, c)+1e-9 {
			t.Fatalf("triangle violated for %v %v %v", a, b, c)
		}
	}
}
