package ghtree

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpl/internal/graph"
	"mpl/internal/maxflow"
	"mpl/internal/pipeline"
)

func TestFig6GHTree(t *testing.T) {
	// Fig. 6(a): decomposition graph on vertices a..e (0..4).
	// a-b-c form a triangle-ish dense left part, d, e hang off c.
	// We reproduce the figure's topology: a-b, a-c, b-c, b-d, c-d, d-e,
	// and an extra a-b parallel strengthening is not possible with unit
	// edges; the figure's published GH-tree weights are {a-b:4?, ...}.
	// Rather than chase the exact drawing, we verify the defining GH-tree
	// property on this graph: every tree-path minimum equals the true
	// s-t min cut.
	g := graph.New(5)
	edges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}
	for _, e := range edges {
		g.AddConflict(e[0], e[1])
	}
	tr := BuildFromConflictGraph(g)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			nw := maxflow.NewNetwork(5)
			for _, e := range edges {
				nw.AddUndirectedEdge(e[0], e[1], 1)
			}
			want := nw.MaxFlow(u, v)
			if got := tr.MinCut(u, v); got != want {
				t.Errorf("MinCut(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	// Degree-1 vertex e: its min cut to anything is 1 < 4, so 3-cut
	// removal must split it off.
	comps := tr.ComponentsBelowWeight(4)
	if len(comps) < 2 {
		t.Fatalf("expected a split, got %v", comps)
	}
}

func TestSingleAndEmpty(t *testing.T) {
	tr := Build(0, nil)
	if tr.N() != 0 {
		t.Fatalf("empty tree N = %d", tr.N())
	}
	tr = Build(1, nil)
	if tr.N() != 1 || tr.Parent[0] != -1 {
		t.Fatalf("singleton tree = %+v", tr)
	}
	comps := tr.ComponentsBelowWeight(4)
	if !reflect.DeepEqual(comps, [][]int{{0}}) {
		t.Fatalf("singleton components = %v", comps)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	tr := Build(4, []WeightedEdge{{U: 0, V: 1, W: 5}, {U: 2, V: 3, W: 7}})
	if got := tr.MinCut(0, 1); got != 5 {
		t.Fatalf("MinCut(0,1) = %d", got)
	}
	if got := tr.MinCut(0, 2); got != 0 {
		t.Fatalf("MinCut(0,2) = %d, want 0 (disconnected)", got)
	}
	comps := tr.ComponentsBelowWeight(1)
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
}

func TestMinCutSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinCut(v,v) did not panic")
		}
	}()
	Build(2, []WeightedEdge{{U: 0, V: 1, W: 1}}).MinCut(1, 1)
}

func TestComponentsBelowWeightK5(t *testing.T) {
	// K5 has all-pairs min cut 4, so with minWeight 4 it must stay whole,
	// and with minWeight 5 it must shatter.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	tr := BuildFromConflictGraph(g)
	whole := tr.ComponentsBelowWeight(4)
	if len(whole) != 1 || len(whole[0]) != 5 {
		t.Fatalf("K5 at minWeight 4 = %v", whole)
	}
	shattered := tr.ComponentsBelowWeight(5)
	if len(shattered) != 5 {
		t.Fatalf("K5 at minWeight 5 = %v", shattered)
	}
}

func TestFig5ThreeCutSplits(t *testing.T) {
	// Fig. 5(a): two triangles {a,b,c} and {d,e,f} joined by the 3-cut
	// (a-d, b-e, c-f). All cross-pairs have min cut 3 < 4 → two components.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}} {
		g.AddConflict(e[0], e[1])
	}
	tr := BuildFromConflictGraph(g)
	if got := tr.MinCut(0, 3); got != 3 {
		t.Fatalf("cross min cut = %d, want 3", got)
	}
	// In the prism every vertex has degree 3, so *all* pairs have min cut
	// 3 < 4; (K−1)-cut division therefore shatters the graph completely.
	// (The figure highlights one 3-cut; Lemma 2 applies to every pair.)
	comps := tr.ComponentsBelowWeight(4)
	if len(comps) != 6 {
		t.Fatalf("components = %v, want 6 singletons", comps)
	}
	// Each removed tree edge must be a genuine ≤3 cut of the prism.
	for _, ce := range tr.CutEdgesBelowWeight(4) {
		mask := tr.SubtreeMask(ce.Child)
		crossing := 0
		for _, e := range g.ConflictEdges() {
			if mask[e.U] != mask[e.V] {
				crossing++
			}
		}
		if int64(crossing) != ce.Weight {
			t.Fatalf("tree edge at child %d: weight %d but %d crossing edges",
				ce.Child, ce.Weight, crossing)
		}
	}
}

// TestAllPairsMinCutProperty: on random graphs, the tree-path minimum must
// equal a fresh max-flow for every pair (the defining Gomory–Hu property).
func TestAllPairsMinCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		var edges []WeightedEdge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, WeightedEdge{U: u, V: v, W: int64(1 + rng.Intn(4))})
		}
		tr := Build(n, edges)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				nw := maxflow.NewNetwork(n)
				for _, e := range edges {
					nw.AddUndirectedEdge(e.U, e.V, e.W)
				}
				if tr.MinCut(u, v) != nw.MaxFlow(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCutTreeProperty: each tree edge's weight equals the true capacity of
// the bipartition induced by removing that edge — the stronger cut-tree
// property the (K−1)-cut division relies on (crossing edges between two
// divided components really number < K).
func TestCutTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		var edges []WeightedEdge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, WeightedEdge{U: u, V: v, W: int64(1 + rng.Intn(3))})
		}
		tr := Build(n, edges)
		for v := 1; v < n; v++ {
			// Bipartition: subtree under v vs rest.
			inSub := make([]bool, n)
			for x := 0; x < n; x++ {
				y := x
				for y >= 0 && y != v {
					y = tr.Parent[y]
				}
				inSub[x] = y == v
			}
			var cap int64
			for _, e := range edges {
				if inSub[e.U] != inSub[e.V] {
					cap += e.W
				}
			}
			if cap != tr.Weight[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsPartition(t *testing.T) {
	// Property: ComponentsBelowWeight always yields a partition of [0,n).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		var edges []WeightedEdge
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, WeightedEdge{U: u, V: v, W: int64(1 + rng.Intn(5))})
			}
		}
		tr := Build(n, edges)
		for _, mw := range []int64{1, 2, 4, 100} {
			seen := make([]bool, n)
			for _, c := range tr.ComponentsBelowWeight(mw) {
				for _, v := range c {
					if seen[v] {
						return false
					}
					seen[v] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildScratchIdenticalTree(t *testing.T) {
	// The scratch-carved build must emit the byte-identical tree — the
	// division pipeline's GH cuts (and therefore the final coloring)
	// depend on it.
	rng := rand.New(rand.NewSource(23))
	sc := pipeline.NewScratchPool().Get()
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		g := graph.New(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddConflict(u, v)
			}
		}
		ref := BuildFromConflictGraph(g)
		got := BuildFromConflictGraphScratch(context.Background(), g, sc)
		if !reflect.DeepEqual(ref.Parent, got.Parent) || !reflect.DeepEqual(ref.Weight, got.Weight) {
			t.Fatalf("trial %d: scratch tree differs:\nref %v / %v\ngot %v / %v", trial, ref.Parent, ref.Weight, got.Parent, got.Weight)
		}
	}
}
