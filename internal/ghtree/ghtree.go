// Package ghtree builds Gomory–Hu cut trees (Gomory & Hu 1961, the paper's
// reference [20]) using the classical contraction algorithm with Dinic's
// max-flow as the cut engine (reference [22]). The resulting weighted tree
// encodes all-pairs minimum cuts — for vertices u, v the minimum cut equals
// the smallest edge weight on the tree path between them — and, being a true
// cut tree, each tree edge's weight equals the capacity of the bipartition
// obtained by removing that edge.
//
// Section 4.1 of the DAC'14 paper uses the tree for (K−1)-cut removal:
// every tree edge with weight < K separates the decomposition graph into
// sides joined by fewer than K conflict edges, so the sides can be colored
// independently and reconnected by color rotation without new conflicts
// (Lemma 1 / Theorem 2).
//
// The paper cites Gusfield's simplification [21]; we implement the
// contraction form instead because the division step depends on the strict
// cut-tree property, which Gusfield's no-contraction variant does not always
// deliver for the tree bipartitions (it guarantees flow equivalence). The
// observable behaviour — n−1 max-flows, all-pairs cut values — is identical.
package ghtree

import (
	"context"
	"sort"

	"mpl/internal/graph"
	"mpl/internal/maxflow"
	"mpl/internal/pipeline"
)

// WeightedEdge is an undirected edge with capacity W.
type WeightedEdge struct {
	U, V int
	W    int64
}

// Tree is a Gomory–Hu cut tree over vertices [0, n). Parent[0] is -1; for
// v > 0, the tree edge {v, Parent[v]} has capacity Weight[v].
type Tree struct {
	Parent []int
	Weight []int64
}

// N returns the vertex count.
func (t *Tree) N() int { return len(t.Parent) }

// node is a super-node of the intermediate tree: a set of original vertices.
type node struct {
	verts []int
	// adjacency to other nodes: parallel slices of neighbor index and weight
	nbr []int
	w   []int64
}

// Build constructs the Gomory–Hu cut tree of the weighted undirected graph
// given as an edge list over n vertices. Vertices in different connected
// components are joined by weight-0 tree edges, consistent with their
// minimum cut being 0. Parallel edges are allowed and their capacities add.
func Build(n int, edges []WeightedEdge) *Tree {
	return buildCtx(nil, n, edges, nil)
}

// BuildContext is Build with cooperative cancellation: ctx is polled before
// each of the n−1 max-flow computations (the dominant cost on large blocks)
// and the function returns nil when cancelled before the tree is complete —
// a partial contraction tree is not a cut tree, so no partial result exists.
func BuildContext(ctx context.Context, n int, edges []WeightedEdge) *Tree {
	return buildCtx(ctx.Done(), n, edges, nil)
}

func buildCtx(done <-chan struct{}, n int, edges []WeightedEdge, sc *pipeline.Scratch) *Tree {
	t := &Tree{Parent: make([]int, n), Weight: make([]int64, n)}
	if n == 0 {
		return t
	}
	t.Parent[0] = -1
	if n == 1 {
		return t
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	nodes := []*node{{verts: all}}

	addTreeEdge := func(a, b int, w int64) {
		nodes[a].nbr = append(nodes[a].nbr, b)
		nodes[a].w = append(nodes[a].w, w)
		nodes[b].nbr = append(nodes[b].nbr, a)
		nodes[b].w = append(nodes[b].w, w)
	}
	removeTreeEdge := func(a, b int) {
		drop := func(x, y int) {
			nx := nodes[x]
			for i, nb := range nx.nbr {
				if nb == y {
					nx.nbr = append(nx.nbr[:i], nx.nbr[i+1:]...)
					nx.w = append(nx.w[:i], nx.w[i+1:]...)
					return
				}
			}
		}
		drop(a, b)
		drop(b, a)
	}

	// Reusable per-contraction buffers, carved once per build: the vertex
	// contraction map and the filtered contracted edge list the max-flow
	// network is built from (capacity is the full edge count, so the
	// per-contraction appends below never reallocate).
	vmap := sc.Int32s(n)
	cu := sc.Int32s(len(edges))[:0]
	cv := sc.Int32s(len(edges))[:0]
	cw := sc.Int64s(len(edges))[:0]
	defer func() {
		sc.PutInt32s(vmap)
		sc.PutInt32s(cu[:0])
		sc.PutInt32s(cv[:0])
		sc.PutInt64s(cw[:0])
	}()

	// Work queue of node indices that may still hold multiple vertices.
	queue := []int{0}
	for len(queue) > 0 {
		if done != nil {
			select {
			case <-done:
				return nil
			default:
			}
		}
		xi := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		x := nodes[xi]
		if len(x.verts) < 2 {
			continue
		}
		s, tt := x.verts[0], x.verts[1]

		// Contract each subtree hanging off x into a single vertex.
		// vmap[v] = contracted-graph vertex for original vertex v.
		for i := range vmap {
			vmap[i] = -1
		}
		for i, v := range x.verts {
			vmap[v] = int32(i)
		}
		next := len(x.verts)
		// subtreeOf[neighborNode] = contracted id for that whole subtree.
		subtreeID := make(map[int]int)
		for _, root := range x.nbr {
			if _, done := subtreeID[root]; done {
				continue
			}
			id := next
			next++
			subtreeID[root] = id
			// BFS the intermediate tree from root avoiding x.
			stack := []int{root}
			seen := map[int]bool{xi: true, root: true}
			for len(stack) > 0 {
				ci := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range nodes[ci].verts {
					vmap[v] = int32(id)
				}
				for _, nb := range nodes[ci].nbr {
					if !seen[nb] {
						seen[nb] = true
						stack = append(stack, nb)
					}
				}
			}
		}

		cu, cv, cw = cu[:0], cv[:0], cw[:0]
		for _, e := range edges {
			mu, mv := vmap[e.U], vmap[e.V]
			if mu != mv && mu >= 0 && mv >= 0 {
				cu = append(cu, mu)
				cv = append(cv, mv)
				cw = append(cw, e.W)
			}
		}
		nw := maxflow.BuildUndirected(next, cu, cv, cw, sc)
		f := nw.MaxFlow(int(vmap[s]), int(vmap[tt]))
		side := nw.MinCutSide(int(vmap[s]))
		nw.ReleaseScratch(sc)

		// Split x into xs (s side) and xt.
		var vs, vt []int
		for _, v := range x.verts {
			if side[vmap[v]] {
				vs = append(vs, v)
			} else {
				vt = append(vt, v)
			}
		}
		x.verts = vs
		ti := len(nodes)
		nodes = append(nodes, &node{verts: vt})
		// Reattach old neighbors of x by which side their subtree fell on.
		oldNbr := append([]int(nil), x.nbr...)
		oldW := append([]int64(nil), x.w...)
		for i, nb := range oldNbr {
			if !side[subtreeID[nb]] {
				removeTreeEdge(xi, nb)
				addTreeEdge(ti, nb, oldW[i])
			}
		}
		addTreeEdge(xi, ti, f)

		if len(nodes[xi].verts) > 1 {
			queue = append(queue, xi)
		}
		if len(nodes[ti].verts) > 1 {
			queue = append(queue, ti)
		}
	}

	// Every node now holds exactly one vertex; root the node tree at the
	// node containing vertex 0 and translate to Parent/Weight arrays.
	nodeOf := make([]int, n)
	for i, nd := range nodes {
		nodeOf[nd.verts[0]] = i
	}
	rooti := nodeOf[0]
	visited := make([]bool, len(nodes))
	visited[rooti] = true
	t.Parent[0] = -1
	stack := []int{rooti}
	for len(stack) > 0 {
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cv := nodes[ci].verts[0]
		for i, nb := range nodes[ci].nbr {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			nv := nodes[nb].verts[0]
			t.Parent[nv] = cv
			t.Weight[nv] = nodes[ci].w[i]
			stack = append(stack, nb)
		}
	}
	return t
}

// BuildFromConflictGraph builds the tree over the conflict edges of a
// decomposition graph, each with unit capacity — the configuration used by
// the paper's 3-cut (general (K−1)-cut) detection.
func BuildFromConflictGraph(g *graph.Graph) *Tree {
	return Build(g.N(), conflictEdges(g))
}

// BuildFromConflictGraphContext is BuildFromConflictGraph with the
// cancellation semantics of BuildContext (nil when cancelled).
func BuildFromConflictGraphContext(ctx context.Context, g *graph.Graph) *Tree {
	return BuildContext(ctx, g.N(), conflictEdges(g))
}

// BuildFromConflictGraphScratch is BuildFromConflictGraphContext with the
// contraction maps and max-flow networks of the n−1 flow computations
// carved from the worker's scratch arena (nil-safe) — the division
// pipeline's Partition stage calls this once per GH-divided block, and
// without pooling those throwaway networks dominate the whole solve's
// allocation profile. The resulting tree is identical.
func BuildFromConflictGraphScratch(ctx context.Context, g *graph.Graph, sc *pipeline.Scratch) *Tree {
	return buildCtx(ctx.Done(), g.N(), conflictEdges(g), sc)
}

func conflictEdges(g *graph.Graph) []WeightedEdge {
	edges := g.ConflictEdges()
	wedges := make([]WeightedEdge, len(edges))
	for i, e := range edges {
		wedges[i] = WeightedEdge{U: e.U, V: e.V, W: 1}
	}
	return wedges
}

// MinCut returns the minimum cut value between u and v: the smallest edge
// weight on the tree path from u to v.
func (t *Tree) MinCut(u, v int) int64 {
	if u == v {
		panic("ghtree: MinCut of a vertex with itself")
	}
	du, dv := t.depth(u), t.depth(v)
	best := int64(1)<<62 - 1
	for du > dv {
		if t.Weight[u] < best {
			best = t.Weight[u]
		}
		u = t.Parent[u]
		du--
	}
	for dv > du {
		if t.Weight[v] < best {
			best = t.Weight[v]
		}
		v = t.Parent[v]
		dv--
	}
	for u != v {
		if t.Weight[u] < best {
			best = t.Weight[u]
		}
		if t.Weight[v] < best {
			best = t.Weight[v]
		}
		u = t.Parent[u]
		v = t.Parent[v]
	}
	return best
}

func (t *Tree) depth(x int) int {
	d := 0
	for t.Parent[x] >= 0 {
		x = t.Parent[x]
		d++
	}
	return d
}

// CutEdge identifies a removed tree edge by its child endpoint: the edge
// {Child, Parent[Child]} with weight Weight[Child].
type CutEdge struct {
	Child  int
	Weight int64
}

// CutEdgesBelowWeight returns the tree edges with weight < minWeight,
// ordered by decreasing depth of the child endpoint. Processing rotations in
// this order reattaches leaf-most bipartitions first, which the division
// pipeline relies on.
func (t *Tree) CutEdgesBelowWeight(minWeight int64) []CutEdge {
	type de struct {
		CutEdge
		depth int
	}
	var tmp []de
	for v := 0; v < t.N(); v++ {
		if t.Parent[v] >= 0 && t.Weight[v] < minWeight {
			tmp = append(tmp, de{CutEdge{Child: v, Weight: t.Weight[v]}, t.depth(v)})
		}
	}
	sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].depth > tmp[j].depth })
	out := make([]CutEdge, len(tmp))
	for i, e := range tmp {
		out[i] = e.CutEdge
	}
	return out
}

// SubtreeMask returns a membership mask of the vertices in the subtree
// rooted at child (the child side of the tree edge {child, Parent[child]}).
func (t *Tree) SubtreeMask(child int) []bool {
	n := t.N()
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if p := t.Parent[v]; p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	mask := make([]bool, n)
	stack := []int{child}
	mask[child] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range children[v] {
			if !mask[c] {
				mask[c] = true
				stack = append(stack, c)
			}
		}
	}
	return mask
}

// ComponentsBelowWeight removes every tree edge with weight < minWeight and
// returns the resulting vertex components (sorted, in first-vertex order).
// With minWeight = K this realizes the paper's (K−1)-cut division: each
// returned component can be colored independently (Theorem 2).
func (t *Tree) ComponentsBelowWeight(minWeight int64) [][]int {
	n := t.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		if t.Parent[v] >= 0 && t.Weight[v] >= minWeight {
			a, b := find(v), find(t.Parent[v])
			if a != b {
				parent[a] = b
			}
		}
	}
	groups := map[int][]int{}
	var order []int
	for v := 0; v < n; v++ {
		r := find(v)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], v)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		members := groups[r]
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}
