package ghtree

import (
	"testing"

	"mpl/internal/graph"
)

func TestCutEdgesBelowWeightOrdering(t *testing.T) {
	// Path a-b-c-d with unit edges: the GH tree is the path itself and all
	// edges have weight 1. CutEdgesBelowWeight(4) must return every tree
	// edge, deepest child first.
	g := graph.New(4)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddConflict(2, 3)
	tr := BuildFromConflictGraph(g)
	cuts := tr.CutEdgesBelowWeight(4)
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v, want 3", cuts)
	}
	prevDepth := int(^uint(0) >> 1)
	for _, c := range cuts {
		d := tr.depth(c.Child)
		if d > prevDepth {
			t.Fatalf("cut edges not in decreasing depth order: %v", cuts)
		}
		prevDepth = d
		if c.Weight != 1 {
			t.Fatalf("path cut weight = %d, want 1", c.Weight)
		}
	}
	// Nothing is below weight 1.
	if got := tr.CutEdgesBelowWeight(1); len(got) != 0 {
		t.Fatalf("CutEdgesBelowWeight(1) = %v, want empty", got)
	}
}

func TestSubtreeMaskProperties(t *testing.T) {
	// Star with center 0: every leaf's subtree is itself.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		g.AddConflict(0, v)
	}
	tr := BuildFromConflictGraph(g)
	for v := 0; v < 5; v++ {
		if tr.Parent[v] < 0 {
			continue
		}
		mask := tr.SubtreeMask(v)
		if !mask[v] {
			t.Fatalf("subtree of %d excludes itself", v)
		}
		if mask[rootOf(tr, v)] && rootOf(tr, v) != v {
			t.Fatalf("subtree of %d contains the root", v)
		}
		// The mask must be closed under the child relation.
		for w := 0; w < tr.N(); w++ {
			if p := tr.Parent[w]; p >= 0 && mask[p] && !mask[w] && w != v {
				// w's parent is inside but w outside — only legal when the
				// parent is v's own parent chain boundary... for a subtree
				// mask this must not happen.
				t.Fatalf("subtree of %d not closed: parent %d in, child %d out", v, p, w)
			}
		}
	}
}

func rootOf(t *Tree, v int) int {
	for t.Parent[v] >= 0 {
		v = t.Parent[v]
	}
	return v
}

func TestWeightedParallelEdgesAccumulate(t *testing.T) {
	// Two parallel unit edges between 0 and 1 behave like capacity 2.
	tr := Build(2, []WeightedEdge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 1}})
	if got := tr.MinCut(0, 1); got != 2 {
		t.Fatalf("parallel-edge min cut = %d, want 2", got)
	}
}

func TestLargeCycleAllCutsTwo(t *testing.T) {
	n := 20
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddConflict(i, (i+1)%n)
	}
	tr := BuildFromConflictGraph(g)
	for v := 1; v < n; v++ {
		if got := tr.MinCut(0, v); got != 2 {
			t.Fatalf("cycle min cut (0,%d) = %d, want 2", v, got)
		}
	}
}
