package maxflow

import (
	"math/rand"
	"testing"

	"mpl/internal/pipeline"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	nw := NewNetwork(3)
	nw.AddEdge(0, 1, 5)
	nw.AddEdge(1, 2, 3)
	if got := nw.MaxFlow(0, 2); got != 3 {
		t.Fatalf("MaxFlow = %d, want 3", got)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS figure: max flow 23.
	nw := NewNetwork(6)
	nw.AddEdge(0, 1, 16)
	nw.AddEdge(0, 2, 13)
	nw.AddEdge(1, 2, 10)
	nw.AddEdge(2, 1, 4)
	nw.AddEdge(1, 3, 12)
	nw.AddEdge(3, 2, 9)
	nw.AddEdge(2, 4, 14)
	nw.AddEdge(4, 3, 7)
	nw.AddEdge(3, 5, 20)
	nw.AddEdge(4, 5, 4)
	if got := nw.MaxFlow(0, 5); got != 23 {
		t.Fatalf("MaxFlow = %d, want 23", got)
	}
}

func TestDisconnected(t *testing.T) {
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 7)
	nw.AddEdge(2, 3, 7)
	if got := nw.MaxFlow(0, 3); got != 0 {
		t.Fatalf("MaxFlow = %d, want 0", got)
	}
}

func TestUndirectedTriangle(t *testing.T) {
	nw := NewNetwork(3)
	nw.AddUndirectedEdge(0, 1, 1)
	nw.AddUndirectedEdge(1, 2, 1)
	nw.AddUndirectedEdge(0, 2, 1)
	if got := nw.MaxFlow(0, 2); got != 2 {
		t.Fatalf("triangle cut = %d, want 2", got)
	}
}

func TestResetAllowsReuse(t *testing.T) {
	nw := NewNetwork(3)
	nw.AddUndirectedEdge(0, 1, 4)
	nw.AddUndirectedEdge(1, 2, 2)
	first := nw.MaxFlow(0, 2)
	nw.Reset()
	second := nw.MaxFlow(0, 2)
	if first != 2 || second != 2 {
		t.Fatalf("flows = %d, %d; want 2, 2", first, second)
	}
	nw.Reset()
	if got := nw.MaxFlow(0, 1); got != 4 {
		t.Fatalf("reused flow = %d, want 4", got)
	}
}

func TestMinCutSide(t *testing.T) {
	// Bottleneck between 1 and 2: cut side should be {0, 1}.
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 10)
	nw.AddEdge(1, 2, 1)
	nw.AddEdge(2, 3, 10)
	if got := nw.MaxFlow(0, 3); got != 1 {
		t.Fatalf("flow = %d", got)
	}
	side := nw.MinCutSide(0)
	want := []bool{true, true, false, false}
	for i := range want {
		if side[i] != want[i] {
			t.Fatalf("MinCutSide = %v, want %v", side, want)
		}
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewNetwork(2).AddEdge(0, 0, 1) },
		func() { NewNetwork(2).AddEdge(0, 5, 1) },
		func() { NewNetwork(2).AddEdge(0, 1, -1) },
		func() { NewNetwork(2).AddUndirectedEdge(0, 1, -2) },
		func() { NewNetwork(2).MaxFlow(1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// brute-force min cut by enumerating vertex bipartitions (undirected, unit
// capacities) for cross-checking Dinic on small graphs.
func bruteMinCut(n int, edges [][2]int, s, t int) int64 {
	best := int64(1) << 60
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		var cut int64
		for _, e := range edges {
			a := mask&(1<<e[0]) != 0
			b := mask&(1<<e[1]) != 0
			if a != b {
				cut++
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestMatchesBruteForceOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		var edges [][2]int
		nw := NewNetwork(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, [2]int{u, v})
			nw.AddUndirectedEdge(u, v, 1)
		}
		s := 0
		tt := 1 + rng.Intn(n-1)
		got := nw.MaxFlow(s, tt)
		want := bruteMinCut(n, edges, s, tt)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinCutSideSeparates(t *testing.T) {
	// Property: after max-flow, the residual-reachable side never contains t,
	// and the cut capacity across the side equals the flow value.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		nw := NewNetwork(n)
		type e struct {
			u, v int
			c    int64
		}
		var edges []e
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(1 + rng.Intn(5))
			edges = append(edges, e{u, v, c})
			nw.AddUndirectedEdge(u, v, c)
		}
		s, tt := 0, n-1
		flow := nw.MaxFlow(s, tt)
		side := nw.MinCutSide(s)
		if side[tt] && flow < (1<<60) {
			// t reachable means flow was not maximal (only possible if
			// truly disconnected... then flow is 0 and side must not reach t
			// unless connected). Treat as failure.
			return false
		}
		var cut int64
		for _, ed := range edges {
			if side[ed.u] != side[ed.v] {
				cut += ed.c
			}
		}
		return cut == flow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUndirectedMatchesIncremental(t *testing.T) {
	// BuildUndirected must be indistinguishable from AddUndirectedEdge
	// calls in the same order: same flows, same min-cut sides (the
	// Gomory–Hu construction depends on identical arc enumeration, not
	// just identical flow values). Exercised both with and without a
	// scratch arena, and across arena reuse.
	rng := rand.New(rand.NewSource(11))
	sc := pipeline.NewScratchPool().Get()
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		m := rng.Intn(30)
		var us, vs []int32
		var ws []int64
		ref := NewNetwork(n)
		for i := 0; i < m; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			w := int64(1 + rng.Intn(5))
			ref.AddUndirectedEdge(u, v, w)
			us = append(us, int32(u))
			vs = append(vs, int32(v))
			ws = append(ws, w)
		}
		bulk := BuildUndirected(n, us, vs, ws, sc)
		s, tt := 0, 1+rng.Intn(n-1)
		ref.Reset()
		bulk.Reset()
		fRef := ref.MaxFlow(s, tt)
		fBulk := bulk.MaxFlow(s, tt)
		if fRef != fBulk {
			t.Fatalf("trial %d: flow %d != incremental %d", trial, fBulk, fRef)
		}
		sideRef := ref.MinCutSide(s)
		sideBulk := bulk.MinCutSide(s)
		for v := range sideRef {
			if sideRef[v] != sideBulk[v] {
				t.Fatalf("trial %d: cut side differs at vertex %d", trial, v)
			}
		}
		bulk.ReleaseScratch(sc)
	}
}
