// Package maxflow implements Dinic's blocking-flow maximum-flow algorithm,
// the network-flow engine behind the Gomory–Hu tree construction of
// Section 4.1 (the paper cites Dinic [22] for exactly this role).
//
// The network is directed internally; AddUndirectedEdge inserts the
// symmetric pair used when cutting the undirected decomposition graph.
package maxflow

import "fmt"

const inf = int64(1) << 62

// Network is a flow network over vertices [0, n).
type Network struct {
	n     int
	to    []int32
	cap   []int64
	base  []int64 // original capacities, for Reset
	head  [][]int32
	level []int32
	iter  []int32
}

// NewNetwork returns an empty network with n vertices.
func NewNetwork(n int) *Network {
	return &Network{
		n:     n,
		head:  make([][]int32, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
}

// N returns the vertex count.
func (nw *Network) N() int { return nw.n }

func (nw *Network) addArc(u, v int, c int64) {
	nw.head[u] = append(nw.head[u], int32(len(nw.to)))
	nw.to = append(nw.to, int32(v))
	nw.cap = append(nw.cap, c)
	nw.base = append(nw.base, c)
}

// AddEdge inserts a directed edge u→v with the given capacity (plus the
// zero-capacity reverse residual arc).
func (nw *Network) AddEdge(u, v int, c int64) {
	nw.checkPair(u, v)
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	nw.addArc(u, v, c)
	nw.addArc(v, u, 0)
}

// AddUndirectedEdge inserts an undirected edge with capacity c in each
// direction, the standard encoding for undirected min-cut.
func (nw *Network) AddUndirectedEdge(u, v int, c int64) {
	nw.checkPair(u, v)
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	nw.addArc(u, v, c)
	nw.addArc(v, u, c)
}

func (nw *Network) checkPair(u, v int) {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, nw.n))
	}
	if u == v {
		panic("maxflow: self-loop")
	}
}

// Reset restores all residual capacities to their original values so the
// network can be reused for another max-flow computation (the Gomory–Hu
// construction runs n−1 flows over the same network).
func (nw *Network) Reset() {
	copy(nw.cap, nw.base)
}

func (nw *Network) bfs(s, t int) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := make([]int32, 0, nw.n)
	queue = append(queue, int32(s))
	nw.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ei := range nw.head[u] {
			v := nw.to[ei]
			if nw.cap[ei] > 0 && nw.level[v] < 0 {
				nw.level[v] = nw.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return nw.level[t] >= 0
}

func (nw *Network) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; nw.iter[u] < int32(len(nw.head[u])); nw.iter[u]++ {
		ei := nw.head[u][nw.iter[u]]
		v := nw.to[ei]
		if nw.cap[ei] <= 0 || nw.level[v] != nw.level[u]+1 {
			continue
		}
		d := nw.dfs(int(v), t, min64(f, nw.cap[ei]))
		if d > 0 {
			nw.cap[ei] -= d
			nw.cap[ei^1] += d
			return d
		}
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxFlow computes the maximum s–t flow on the current residual network.
// Call Reset first to start from original capacities.
func (nw *Network) MaxFlow(s, t int) int64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	var flow int64
	for nw.bfs(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			f := nw.dfs(s, t, inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// MinCutSide returns the set of vertices reachable from s in the residual
// network after a MaxFlow(s, t) call: the s-side of a minimum cut. The
// returned slice is a membership mask of length N.
func (nw *Network) MinCutSide(s int) []bool {
	side := make([]bool, nw.n)
	stack := []int32{int32(s)}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range nw.head[u] {
			v := nw.to[ei]
			if nw.cap[ei] > 0 && !side[v] {
				side[v] = true
				stack = append(stack, v)
			}
		}
	}
	return side
}
