// Package maxflow implements Dinic's blocking-flow maximum-flow algorithm,
// the network-flow engine behind the Gomory–Hu tree construction of
// Section 4.1 (the paper cites Dinic [22] for exactly this role).
//
// The network is directed internally; AddUndirectedEdge inserts the
// symmetric pair used when cutting the undirected decomposition graph.
package maxflow

import (
	"fmt"

	"mpl/internal/pipeline"
)

const inf = int64(1) << 62

// Network is a flow network over vertices [0, n).
type Network struct {
	n     int
	to    []int32
	cap   []int64
	base  []int64 // original capacities, for Reset
	head  [][]int32
	level []int32
	iter  []int32
	// queue is the BFS work list, retained across MaxFlow phases (and, for
	// scratch-built networks, across network constructions).
	queue []int32
	// headBack is the flat backing of head for scratch-built networks
	// (BuildUndirected); nil for incrementally built ones.
	headBack []int32
}

// NewNetwork returns an empty network with n vertices.
func NewNetwork(n int) *Network {
	return &Network{
		n:     n,
		head:  make([][]int32, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
}

// N returns the vertex count.
func (nw *Network) N() int { return nw.n }

func (nw *Network) addArc(u, v int, c int64) {
	nw.head[u] = append(nw.head[u], int32(len(nw.to)))
	nw.to = append(nw.to, int32(v))
	nw.cap = append(nw.cap, c)
	nw.base = append(nw.base, c)
}

// AddEdge inserts a directed edge u→v with the given capacity (plus the
// zero-capacity reverse residual arc).
func (nw *Network) AddEdge(u, v int, c int64) {
	nw.checkPair(u, v)
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	nw.addArc(u, v, c)
	nw.addArc(v, u, 0)
}

// AddUndirectedEdge inserts an undirected edge with capacity c in each
// direction, the standard encoding for undirected min-cut.
func (nw *Network) AddUndirectedEdge(u, v int, c int64) {
	nw.checkPair(u, v)
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	nw.addArc(u, v, c)
	nw.addArc(v, u, c)
}

// BuildUndirected constructs, in one preallocated shot, exactly the
// network that calling AddUndirectedEdge(u[i], v[i], w[i]) for every i in
// order would produce — identical arc indices (arcs 2i and 2i+1 are the
// i-th edge's two directions, preserving the ei^1 residual pairing) and
// identical per-vertex arc order, so every flow and min-cut result is
// bit-for-bit the same. All storage is carved from the scratch arena
// (nil-safe): two passes over the edges (degree count, fill) replace the
// per-arc append storm of the incremental API, which is what makes the
// Gomory–Hu construction's n−1 throwaway networks affordable on the hot
// path. Pair with ReleaseScratch.
func BuildUndirected(n int, u, v []int32, w []int64, sc *pipeline.Scratch) *Network {
	m := len(u)
	arcs := 2 * m
	nw := &Network{
		n:        n,
		to:       sc.Int32s(arcs),
		cap:      sc.Int64s(arcs),
		base:     sc.Int64s(arcs),
		level:    sc.Int32s(n),
		iter:     sc.Int32s(n),
		queue:    sc.Int32s(n)[:0],
		headBack: sc.Int32s(arcs),
		head:     make([][]int32, n),
	}
	// Pass 1: arc count per vertex (level doubles as the counter — it is
	// zeroed again below, before any flow runs).
	deg := nw.level
	for i := 0; i < m; i++ {
		deg[u[i]]++
		deg[v[i]]++
	}
	off := 0
	for x := 0; x < n; x++ {
		d := int(deg[x])
		nw.head[x] = nw.headBack[off : off : off+d]
		off += d
	}
	// Pass 2: fill in AddUndirectedEdge order.
	for i := 0; i < m; i++ {
		ai := int32(2 * i)
		bi := ai + 1
		nw.head[u[i]] = append(nw.head[u[i]], ai)
		nw.to[ai], nw.cap[ai], nw.base[ai] = v[i], w[i], w[i]
		nw.head[v[i]] = append(nw.head[v[i]], bi)
		nw.to[bi], nw.cap[bi], nw.base[bi] = u[i], w[i], w[i]
	}
	clear(deg)
	return nw
}

// ReleaseScratch returns a BuildUndirected network's carved buffers to the
// arena. The network must not be used afterwards.
func (nw *Network) ReleaseScratch(sc *pipeline.Scratch) {
	sc.PutInt32s(nw.to)
	sc.PutInt64s(nw.cap)
	sc.PutInt64s(nw.base)
	sc.PutInt32s(nw.level)
	sc.PutInt32s(nw.iter)
	sc.PutInt32s(nw.queue)
	sc.PutInt32s(nw.headBack)
	nw.to, nw.cap, nw.base, nw.level, nw.iter, nw.queue, nw.headBack, nw.head = nil, nil, nil, nil, nil, nil, nil, nil
}

func (nw *Network) checkPair(u, v int) {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, nw.n))
	}
	if u == v {
		panic("maxflow: self-loop")
	}
}

// Reset restores all residual capacities to their original values so the
// network can be reused for another max-flow computation (the Gomory–Hu
// construction runs n−1 flows over the same network).
func (nw *Network) Reset() {
	copy(nw.cap, nw.base)
}

func (nw *Network) bfs(s, t int) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := nw.queue[:0]
	if cap(queue) < nw.n {
		queue = make([]int32, 0, nw.n)
	}
	queue = append(queue, int32(s))
	nw.level[s] = 0
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, ei := range nw.head[u] {
			v := nw.to[ei]
			if nw.cap[ei] > 0 && nw.level[v] < 0 {
				nw.level[v] = nw.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	nw.queue = queue[:0]
	return nw.level[t] >= 0
}

func (nw *Network) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; nw.iter[u] < int32(len(nw.head[u])); nw.iter[u]++ {
		ei := nw.head[u][nw.iter[u]]
		v := nw.to[ei]
		if nw.cap[ei] <= 0 || nw.level[v] != nw.level[u]+1 {
			continue
		}
		d := nw.dfs(int(v), t, min64(f, nw.cap[ei]))
		if d > 0 {
			nw.cap[ei] -= d
			nw.cap[ei^1] += d
			return d
		}
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxFlow computes the maximum s–t flow on the current residual network.
// Call Reset first to start from original capacities.
func (nw *Network) MaxFlow(s, t int) int64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	var flow int64
	for nw.bfs(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			f := nw.dfs(s, t, inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// MinCutSide returns the set of vertices reachable from s in the residual
// network after a MaxFlow(s, t) call: the s-side of a minimum cut. The
// returned slice is a membership mask of length N.
func (nw *Network) MinCutSide(s int) []bool {
	side := make([]bool, nw.n)
	stack := []int32{int32(s)}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range nw.head[u] {
			v := nw.to[ei]
			if nw.cap[ei] > 0 && !side[v] {
				side[v] = true
				stack = append(stack, v)
			}
		}
	}
	return side
}
