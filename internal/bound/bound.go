// Package bound computes combinatorial lower bounds on the conflict number
// of a K-patterning color assignment. The paper's Table 1 certifies
// optimality with an expensive exact ILP; a cheap certificate is available
// whenever the decomposition graph packs vertex-disjoint (K+1)-cliques:
// each such clique forces at least one conflict for any K-coloring, so the
// packing size bounds the achievable conflict number from below. When a
// heuristic's conflict count meets the bound, its result is proven
// conflict-optimal without running the ILP.
//
// The bound is exact for the paper's native-conflict structures (Fig. 1's
// 4-cliques under TPL, Fig. 7's K5s under QPL) and a valid — if sometimes
// loose — lower bound in general.
package bound

import (
	"sort"

	"mpl/internal/graph"
)

// MinConflicts returns a lower bound on the conflict number of any
// K-coloring of g: the size of a greedily-packed set of vertex-disjoint
// (K+1)-cliques.
func MinConflicts(g *graph.Graph, k int) int {
	if k < 1 {
		panic("bound: k must be >= 1")
	}
	cliques := PackCliques(g, k+1)
	return len(cliques)
}

// PackCliques greedily packs vertex-disjoint cliques of the given size,
// returning the vertex sets found. Vertices are scanned in ascending
// conflict-degree order of their candidates so small cliques in sparse
// regions are found before dense hubs are consumed.
func PackCliques(g *graph.Graph, size int) [][]int {
	n := g.N()
	if size < 1 || n == 0 {
		return nil
	}
	if size == 1 {
		out := make([][]int, n)
		for v := 0; v < n; v++ {
			out[v] = []int{v}
		}
		return out
	}

	used := make([]bool, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.ConflictDegree(order[a]) < g.ConflictDegree(order[b])
	})

	var out [][]int
	clique := make([]int, 0, size)
	for _, v := range order {
		if used[v] || g.ConflictDegree(v) < size-1 {
			continue
		}
		clique = clique[:0]
		clique = append(clique, v)
		if extend(g, used, &clique, size) {
			members := append([]int(nil), clique...)
			sort.Ints(members)
			out = append(out, members)
			for _, u := range members {
				used[u] = true
			}
		}
	}
	return out
}

// extend grows the clique to the target size by backtracking over common
// neighbors. The search space per vertex is bounded by its degree, which
// the decomposition graphs keep small; a node budget guards pathological
// dense inputs.
func extend(g *graph.Graph, used []bool, clique *[]int, size int) bool {
	const budget = 200_000
	nodes := 0
	var rec func() bool
	rec = func() bool {
		nodes++
		if nodes > budget {
			return false
		}
		cur := *clique
		if len(cur) == size {
			return true
		}
		last := cur[len(cur)-1]
		for _, w := range g.ConflictNeighbors(last) {
			wi := int(w)
			// Keep candidates above the newest member to avoid revisiting
			// permutations of the same set.
			if wi <= last || used[wi] {
				continue
			}
			if g.ConflictDegree(wi) < size-1 {
				continue
			}
			ok := true
			for _, u := range cur {
				if u != last && !g.HasConflict(u, wi) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			*clique = append(cur, wi)
			if rec() {
				return true
			}
			*clique = cur
		}
		return false
	}
	return rec()
}
