package bound

import (
	"math"
	"math/rand"
	"testing"

	"mpl/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddConflict(i, j)
		}
	}
	return g
}

func TestK5Bound(t *testing.T) {
	g := completeGraph(5)
	if got := MinConflicts(g, 4); got != 1 {
		t.Fatalf("K5 bound = %d, want 1", got)
	}
	// K5 is 5-colorable: bound under K=5 is 0.
	if got := MinConflicts(g, 5); got != 0 {
		t.Fatalf("K5 with 5 colors = %d, want 0", got)
	}
}

func TestDisjointK5s(t *testing.T) {
	// Three disjoint K5s → bound 3.
	g := graph.New(15)
	for c := 0; c < 3; c++ {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddConflict(c*5+i, c*5+j)
			}
		}
	}
	if got := MinConflicts(g, 4); got != 3 {
		t.Fatalf("bound = %d, want 3", got)
	}
}

func TestSparseGraphBoundZero(t *testing.T) {
	g := graph.New(10)
	for i := 0; i < 9; i++ {
		g.AddConflict(i, i+1)
	}
	if got := MinConflicts(g, 4); got != 0 {
		t.Fatalf("path bound = %d, want 0", got)
	}
}

func TestPackCliquesEdgeCases(t *testing.T) {
	if got := PackCliques(graph.New(0), 3); got != nil {
		t.Fatalf("empty graph = %v", got)
	}
	if got := PackCliques(graph.New(3), 1); len(got) != 3 {
		t.Fatalf("size-1 packing = %v", got)
	}
	if got := PackCliques(completeGraph(4), 9); len(got) != 0 {
		t.Fatalf("oversized clique = %v", got)
	}
}

func TestBadKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	MinConflicts(graph.New(1), 0)
}

// bruteChromaticConflicts computes the true minimum conflict count by
// enumeration (small n).
func bruteChromaticConflicts(g *graph.Graph, k int) int {
	n := g.N()
	edges := g.ConflictEdges()
	colors := make([]int, n)
	best := math.MaxInt
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c := 0
			for _, e := range edges {
				if colors[e.U] == colors[e.V] {
					c++
				}
			}
			if c < best {
				best = c
			}
			return
		}
		for c := 0; c < k; c++ {
			colors[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// TestBoundIsSound: the packing bound never exceeds the true optimum.
func TestBoundIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		g := graph.New(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddConflict(u, v)
			}
		}
		k := 2 + rng.Intn(3)
		lb := MinConflicts(g, k)
		opt := bruteChromaticConflicts(g, k)
		if lb > opt {
			t.Fatalf("trial %d: bound %d exceeds optimum %d (k=%d, n=%d)", trial, lb, opt, k, n)
		}
	}
}

// TestCliquesAreCliquesAndDisjoint: structural validity of the packing.
func TestCliquesAreCliquesAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(20)
		g := graph.New(n)
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddConflict(u, v)
			}
		}
		size := 3 + rng.Intn(3)
		seen := make([]bool, n)
		for _, cl := range PackCliques(g, size) {
			if len(cl) != size {
				t.Fatalf("clique size %d, want %d", len(cl), size)
			}
			for i, u := range cl {
				if seen[u] {
					t.Fatalf("vertex %d reused across cliques", u)
				}
				seen[u] = true
				for _, v := range cl[i+1:] {
					if !g.HasConflict(u, v) {
						t.Fatalf("non-edge (%d,%d) inside clique %v", u, v, cl)
					}
				}
			}
		}
	}
}
