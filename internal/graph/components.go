package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ComponentsWorkers is Components with the edge scan sharded across workers
// goroutines (0 or 1 means serial — identical to Components). The parallel
// path runs a lock-free union-find over the CSR adjacency arenas: workers
// sweep disjoint vertex ranges and union each vertex with its conflict and
// stitch neighbors, roots always winning toward the smaller id, so the final
// partition — and therefore the output — is independent of scheduling. The
// result is byte-identical to Components at any worker count: components
// ordered by smallest member, members sorted ascending.
func (g *Graph) ComponentsWorkers(workers int) [][]int {
	// Below this size the serial DFS wins on constant factors; the threshold
	// only affects wall clock, never output.
	const parallelMin = 1 << 14
	if workers <= 1 || g.n < parallelMin {
		return g.Components()
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}

	parent := make([]atomic.Int32, g.n)
	for i := range parent {
		parent[i].Store(int32(i))
	}
	find := func(x int32) int32 {
		for {
			p := parent[x].Load()
			if p == x {
				return x
			}
			gp := parent[p].Load()
			if gp != p {
				// Path halving: safe to race, only shortens chains.
				parent[x].CompareAndSwap(p, gp)
			}
			x = p
		}
	}
	union := func(u, v int32) {
		for {
			ru, rv := find(u), find(v)
			if ru == rv {
				return
			}
			if ru > rv {
				ru, rv = rv, ru
			}
			// Smaller root wins: a root only ever re-parents to a smaller id,
			// so the eventual forest (and every component's minimum) is a
			// pure function of the edge set.
			if parent[rv].CompareAndSwap(rv, ru) {
				return
			}
		}
	}

	chunk := g.n/(workers*4) + 1
	nChunks := (g.n + chunk - 1) / chunk
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunk
				hi := min(lo+chunk, g.n)
				for u := lo; u < hi; u++ {
					for _, v := range g.conf[u] {
						if int(v) > u {
							union(int32(u), v)
						}
					}
					for _, v := range g.stit[u] {
						if int(v) > u {
							union(int32(u), v)
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	// Serial relabel in vertex order: component ids are assigned at each
	// root's first appearance — i.e. at the component's smallest vertex —
	// and members append in ascending order, matching the DFS layout.
	comp := make([]int32, g.n)
	var out [][]int
	for v := 0; v < g.n; v++ {
		r := find(int32(v))
		if int(r) == v {
			comp[v] = int32(len(out))
			out = append(out, []int{v})
			continue
		}
		id := comp[r]
		comp[v] = id
		out[id] = append(out[id], v)
	}
	return out
}
