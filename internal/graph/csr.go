package graph

// Arena-backed CSR (compressed sparse row) construction. A Builder collects
// raw undirected edge pairs in flat append-only buffers — no per-insert
// deduplication, no per-vertex allocation — and Build materializes the
// decomposition graph in two passes per edge kind:
//
//	count: one sweep over the pairs tallies every vertex's degree, and a
//	       prefix sum turns the tallies into row offsets;
//	fill:  a second sweep scatters both directions of every pair into one
//	       contiguous int32 arena at those offsets.
//
// Each row is then sorted and compacted in place (sort + compact replaces
// the per-insert `contains` scan of the mutable Add* path, which went
// quadratic on hub vertices), so duplicate insertions cost O(log deg)
// amortized instead of O(deg). The resulting Graph stores its adjacency as
// three arenas — one per edge kind, struct-of-arrays — with the [][]int32
// row headers pointing into them.
//
// The row headers are also the mutable-adjacency shim: every view is a
// full-capacity (three-index) subslice, so appending to a row — what
// AddConflict and friends do during ApplyEdits' dirty-region rebuild —
// reallocates that one row out of the arena instead of bleeding into its
// neighbor. The arena itself is never mutated after Build; a graph that was
// never edited keeps every row contiguous.

import (
	"fmt"
	"math"
	"slices"
)

// MaxVertices is the largest vertex count a Graph can hold: vertex ids are
// int32, so anything beyond 2^31−1 would overflow silently. New, AddVertex
// and NewBuilder enforce it; internal/core checks fragment counts against it
// before building and returns an error instead of panicking.
const MaxVertices = math.MaxInt32

// maxArenaEntries bounds one edge kind's directed adjacency arena (two
// entries per undirected edge). Row offsets are int32, so the arena must
// stay addressable by them.
const maxArenaEntries = math.MaxInt32

// Int32Arena is the slice-recycling surface a Builder can lease transient
// build state (degree counters, row offsets) from; *pipeline.Scratch
// satisfies it. A nil arena — or a typed-nil one, since the Scratch methods
// are nil-safe — simply allocates.
type Int32Arena interface {
	Int32s(n int) []int32
	PutInt32s(b []int32)
}

// Builder accumulates the edge set of a graph with n vertices for a
// two-pass count-then-fill CSR build. Duplicate pairs are allowed (Build
// compacts them); the zero Builder is not usable — call NewBuilder.
type Builder struct {
	n      int
	conf   []int32 // flat (u,v) pairs
	stit   []int32
	friend []int32
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 || n > MaxVertices {
		panic(fmt.Sprintf("graph: vertex count %d outside [0, %d]", n, MaxVertices))
	}
	return &Builder{n: n}
}

// N returns the vertex count the builder was created with.
func (b *Builder) N() int { return b.n }

func (b *Builder) checkPair(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
}

// AddConflict records an undirected conflict edge. Duplicates are fine.
func (b *Builder) AddConflict(u, v int) {
	b.checkPair(int32(u), int32(v))
	b.conf = append(b.conf, int32(u), int32(v))
}

// AddStitch records an undirected stitch edge.
func (b *Builder) AddStitch(u, v int) {
	b.checkPair(int32(u), int32(v))
	b.stit = append(b.stit, int32(u), int32(v))
}

// AddFriend records an undirected color-friendly edge.
func (b *Builder) AddFriend(u, v int) {
	b.checkPair(int32(u), int32(v))
	b.friend = append(b.friend, int32(u), int32(v))
}

// AddConflictPairs bulk-appends flat (u,v) pairs — the streaming build's
// per-shard edge lists drain through here without re-boxing into ints.
func (b *Builder) AddConflictPairs(pairs []int32) {
	b.validatePairs(pairs)
	b.conf = append(b.conf, pairs...)
}

// AddStitchPairs bulk-appends flat stitch (u,v) pairs.
func (b *Builder) AddStitchPairs(pairs []int32) {
	b.validatePairs(pairs)
	b.stit = append(b.stit, pairs...)
}

// AddFriendPairs bulk-appends flat color-friendly (u,v) pairs.
func (b *Builder) AddFriendPairs(pairs []int32) {
	b.validatePairs(pairs)
	b.friend = append(b.friend, pairs...)
}

// Grow pre-extends the pair buffers for at least the given number of
// additional flat entries per edge kind (two entries per undirected edge).
// The streaming build sums its shard sizes and grows once, so draining a
// million-feature edge set appends into place instead of repeatedly
// reallocating — and copying — multi-hundred-megabyte buffers.
func (b *Builder) Grow(conf, stit, friend int) {
	b.conf = slices.Grow(b.conf, conf)
	b.stit = slices.Grow(b.stit, stit)
	b.friend = slices.Grow(b.friend, friend)
}

func (b *Builder) validatePairs(pairs []int32) {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("graph: odd pair buffer length %d", len(pairs)))
	}
	for i := 0; i < len(pairs); i += 2 {
		b.checkPair(pairs[i], pairs[i+1])
	}
}

// Build materializes the graph. sc, when non-nil, lends the transient
// degree/offset arrays (they are returned before Build exits); the edge
// arenas themselves belong to the returned Graph and are never pooled.
// The builder must not be reused afterwards.
func (b *Builder) Build(sc Int32Arena) *Graph {
	g := &Graph{n: b.n}
	var nc, ns, nf int
	// Each pair buffer is released as soon as its arena is materialized:
	// holding all three alongside all three arenas would double peak heap on
	// million-feature builds (and, on a GC-pressured machine, the collector's
	// marking time with it).
	g.conf, nc = csrRows(b.n, b.conf, sc)
	b.conf = nil
	g.stit, ns = csrRows(b.n, b.stit, sc)
	b.stit = nil
	g.friend, nf = csrRows(b.n, b.friend, sc)
	b.friend = nil
	g.nConf, g.nStit, g.nFriend = nc, ns, nf
	return g
}

// csrRows runs the two-pass count-then-fill for one edge kind and returns
// the row views plus the number of unique undirected edges.
func csrRows(n int, pairs []int32, sc Int32Arena) ([][]int32, int) {
	rows := make([][]int32, n)
	if len(pairs) == 0 {
		return rows, 0
	}
	if len(pairs) > maxArenaEntries {
		panic(fmt.Sprintf("graph: edge arena needs %d entries, max %d", len(pairs), maxArenaEntries))
	}

	// Pass 1: count. off[v+1] accumulates deg(v), then a prefix sum turns
	// counts into row start offsets.
	var off []int32
	if sc != nil {
		off = sc.Int32s(n + 1)
		defer sc.PutInt32s(off)
	} else {
		off = make([]int32, n+1)
	}
	for i := 0; i < len(pairs); i += 2 {
		off[pairs[i]+1]++
		off[pairs[i+1]+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}

	// Pass 2: fill. cursor[v] (reusing off, shifted) walks each row while
	// both directions of every pair scatter into the shared arena.
	arena := make([]int32, len(pairs))
	for i := 0; i < len(pairs); i += 2 {
		u, v := pairs[i], pairs[i+1]
		arena[off[u]] = v
		off[u]++
		arena[off[v]] = u
		off[v]++
	}
	// off[v] is now the END of row v (and the start of row v+1): recover
	// starts from the previous row's end.
	unique := 0
	end := off
	start := int32(0)
	for v := 0; v < n; v++ {
		row := arena[start:end[v]]
		start = end[v]
		if len(row) == 0 {
			continue
		}
		slices.Sort(row)
		row = slices.Compact(row)
		unique += len(row)
		// Full-capacity view: an append (mutable shim) reallocates the row
		// instead of clobbering the next row's slack.
		rows[v] = row[:len(row):len(row)]
	}
	return rows, unique / 2
}
