package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// equalGraphs reports whether two graphs are byte-identical: same vertex
// count, same edge-kind totals, and the same adjacency slice contents for
// every vertex and edge kind.
func equalGraphs(a, b *Graph) bool {
	if a.n != b.n || a.nConf != b.nConf || a.nStit != b.nStit || a.nFriend != b.nFriend {
		return false
	}
	eq := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for v := 0; v < a.n; v++ {
		if !eq(a.conf[v], b.conf[v]) || !eq(a.stit[v], b.stit[v]) || !eq(a.friend[v], b.friend[v]) {
			return false
		}
	}
	return true
}

// randomEdges returns m random pairs over n vertices, possibly duplicated
// (both directions), the multiset both construction paths must agree on.
func randomEdges(rng *rand.Rand, n, m int) [][2]int {
	pairs := make([][2]int, 0, m)
	for len(pairs) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if rng.Intn(4) == 0 {
			u, v = v, u // exercise both orientations
		}
		pairs = append(pairs, [2]int{u, v})
		if rng.Intn(3) == 0 { // duplicate pressure: Build must compact
			pairs = append(pairs, [2]int{u, v})
		}
	}
	return pairs
}

// TestBuilderMatchesMutable is the representation-equivalence property: for
// random edge multisets, the CSR two-pass build and the legacy mutable Add*
// path produce byte-identical graphs — adjacency contents, edge counts,
// duplicate handling.
func TestBuilderMatchesMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := 200
	if testing.Short() {
		cases = 40
	}
	for it := 0; it < cases; it++ {
		n := 2 + rng.Intn(60)
		conf := randomEdges(rng, n, rng.Intn(4*n))
		stit := randomEdges(rng, n, rng.Intn(n))
		friend := randomEdges(rng, n, rng.Intn(2*n))

		mutable := New(n)
		bld := NewBuilder(n)
		for _, p := range conf {
			mutable.AddConflict(p[0], p[1])
			bld.AddConflict(p[0], p[1])
		}
		for _, p := range stit {
			mutable.AddStitch(p[0], p[1])
			bld.AddStitch(p[0], p[1])
		}
		for _, p := range friend {
			mutable.AddFriend(p[0], p[1])
			bld.AddFriend(p[0], p[1])
		}
		if csr := bld.Build(nil); !equalGraphs(mutable, csr) {
			t.Fatalf("iteration %d: CSR build differs from mutable build (n=%d, %d/%d/%d pairs)",
				it, n, len(conf), len(stit), len(friend))
		}
	}
}

// TestBuilderPairsMatchSingles: the bulk pair interface (the streamed
// build's shard drain) is equivalent to per-edge appends in any order.
func TestBuilderPairsMatchSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	conf := randomEdges(rng, n, 120)

	single := NewBuilder(n)
	for _, p := range conf {
		single.AddConflict(p[0], p[1])
	}

	// Split the same multiset into shards appended in reverse order.
	bulk := NewBuilder(n)
	flat := make([]int32, 0, 2*len(conf))
	for _, p := range conf {
		flat = append(flat, int32(p[0]), int32(p[1]))
	}
	half := (len(flat) / 2) &^ 1
	bulk.AddConflictPairs(flat[half:])
	bulk.AddConflictPairs(flat[:half])

	if !equalGraphs(single.Build(nil), bulk.Build(nil)) {
		t.Fatal("bulk pair append differs from per-edge append")
	}
}

// TestBuilderArenaRows: a never-edited CSR graph keeps full-capacity row
// views (appending via the mutable shim must reallocate the row, not
// clobber the neighbor row in the shared arena).
func TestBuilderArenaRows(t *testing.T) {
	bld := NewBuilder(4)
	bld.AddConflict(0, 1)
	bld.AddConflict(0, 2)
	bld.AddConflict(1, 2)
	g := bld.Build(nil)
	before := append([]int32(nil), g.ConflictNeighbors(1)...)
	if !g.AddConflict(0, 3) {
		t.Fatal("shim insert rejected")
	}
	if got := g.ConflictNeighbors(1); !reflect.DeepEqual(got, before) {
		t.Fatalf("neighbor row of 1 changed by insert at 0: %v -> %v", before, got)
	}
	if want := []int32{1, 2, 3}; !reflect.DeepEqual(g.ConflictNeighbors(0), want) {
		t.Fatalf("row 0 = %v, want %v", g.ConflictNeighbors(0), want)
	}
}

// TestBuilderScratchArena: building through a scratch arena returns the
// transient offsets and produces the same graph.
func TestBuilderScratchArena(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50
	conf := randomEdges(rng, n, 200)
	mk := func(sc Int32Arena) *Graph {
		b := NewBuilder(n)
		for _, p := range conf {
			b.AddConflict(p[0], p[1])
		}
		return b.Build(sc)
	}
	if !equalGraphs(mk(nil), mk(&countingArena{})) {
		t.Fatal("scratch-fed build differs from allocating build")
	}
	ca := &countingArena{}
	mk(ca)
	if ca.got == 0 || ca.got != ca.put {
		t.Fatalf("arena leases not balanced: %d leased, %d returned", ca.got, ca.put)
	}
}

type countingArena struct{ got, put int }

func (c *countingArena) Int32s(n int) []int32 { c.got++; return make([]int32, n) }
func (c *countingArena) PutInt32s([]int32)    { c.put++ }

// TestComponentsWorkersMatchesSerial forces the lock-free union-find path
// (n above the parallel threshold) and checks byte-identical output against
// the serial DFS at several worker counts.
func TestComponentsWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 1 << 15
	bld := NewBuilder(n)
	// Sparse random graph: many components of varied size, plus stitch
	// edges binding some pairs.
	pick := func(not int) int {
		j := rng.Intn(n - 1)
		if j >= not {
			j++ // uniform over [0, n) \ {not}: no self loops
		}
		return j
	}
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 {
			bld.AddConflict(i, pick(i))
		}
		if rng.Intn(16) == 0 {
			bld.AddStitch(i, pick(i))
		}
	}
	g := bld.Build(nil)
	want := g.Components()
	for _, workers := range []int{2, 4, 8} {
		got := g.ComponentsWorkers(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: sharded components differ from serial DFS", workers)
		}
	}
}

// BenchmarkDenseHub pins the O(deg²) dense-hub fix: building a graph whose
// vertex 0 neighbors everyone — with every edge inserted twice, the dedup
// pressure that made the old linear `contains` scan quadratic — through the
// mutable path versus the CSR builder. The builder's sort+compact build is
// near-linear in the edge count; regressions show up as a superlinear gap
// between the /size=... variants.
func BenchmarkDenseHub(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 12, 1 << 14} {
		b.Run("mutable/size="+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := New(size)
				for v := 1; v < size; v++ {
					g.AddConflict(0, v)
					g.AddConflict(v, 0) // duplicate: dedup probe on the hub row
				}
			}
		})
		b.Run("builder/size="+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bld := NewBuilder(size)
				for v := 1; v < size; v++ {
					bld.AddConflict(0, v)
					bld.AddConflict(v, 0)
				}
				bld.Build(nil)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestVertexCapacityGuards: constructors must reject vertex counts outside
// the int32 id range before any allocation happens, with a clear diagnosis
// — the silent-overflow bugfix of the million-feature hardening pass.
func TestVertexCapacityGuards(t *testing.T) {
	for _, n := range []int{-1, MaxVertices + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBuilder(%d) did not panic", n)
				}
			}()
			NewBuilder(n)
		}()
	}
}
