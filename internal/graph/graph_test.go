package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddAndQueryEdges(t *testing.T) {
	g := New(4)
	if !g.AddConflict(0, 1) {
		t.Fatal("first AddConflict returned false")
	}
	if g.AddConflict(1, 0) {
		t.Fatal("duplicate conflict accepted")
	}
	g.AddStitch(1, 2)
	g.AddFriend(2, 3)
	if !g.HasConflict(0, 1) || !g.HasConflict(1, 0) {
		t.Fatal("HasConflict missing edge")
	}
	if g.HasConflict(0, 2) || g.HasConflict(0, 0) || g.HasConflict(-1, 2) {
		t.Fatal("HasConflict phantom edge")
	}
	if !g.HasStitch(2, 1) {
		t.Fatal("HasStitch missing edge")
	}
	if g.ConflictEdgeCount() != 1 || g.StitchEdgeCount() != 1 {
		t.Fatalf("edge counts = %d/%d", g.ConflictEdgeCount(), g.StitchEdgeCount())
	}
	if g.ConflictDegree(1) != 1 || g.StitchDegree(1) != 1 {
		t.Fatalf("degrees at 1 = %d/%d", g.ConflictDegree(1), g.StitchDegree(1))
	}
	if got := g.FriendNeighbors(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FriendNeighbors = %v", got)
	}
}

func TestAddVertex(t *testing.T) {
	g := New(1)
	v := g.AddVertex()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddVertex = %d, N = %d", v, g.N())
	}
	g.AddConflict(0, 1)
	if !g.HasConflict(0, 1) {
		t.Fatal("edge to appended vertex lost")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddConflict(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New(2).AddConflict(0, 5)
}

func TestEdgeLists(t *testing.T) {
	g := New(4)
	g.AddConflict(2, 0)
	g.AddConflict(3, 1)
	g.AddStitch(0, 3)
	want := []Edge{{0, 2}, {1, 3}}
	if got := g.ConflictEdges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ConflictEdges = %v, want %v", got, want)
	}
	if got := g.StitchEdges(); !reflect.DeepEqual(got, []Edge{{0, 3}}) {
		t.Fatalf("StitchEdges = %v", got)
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddConflict(0, 1)
	g.AddStitch(1, 2) // stitch edges connect components too
	g.AddConflict(3, 4)
	// 5, 6 isolated
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4: %v", len(comps), comps)
	}
	if !reflect.DeepEqual(comps[0], []int{0, 1, 2}) {
		t.Fatalf("first component = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []int{3, 4}) {
		t.Fatalf("second component = %v", comps[1])
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddStitch(2, 3)
	g.AddFriend(0, 2)
	sub, orig := g.Subgraph([]int{0, 1, 2})
	if sub.N() != 3 || !reflect.DeepEqual(orig, []int{0, 1, 2}) {
		t.Fatalf("Subgraph N=%d orig=%v", sub.N(), orig)
	}
	if !sub.HasConflict(0, 1) || !sub.HasConflict(1, 2) {
		t.Fatal("subgraph lost conflict edges")
	}
	if sub.StitchEdgeCount() != 0 {
		t.Fatal("subgraph kept stitch edge with endpoint outside subset")
	}
	if len(sub.FriendNeighbors(0)) != 1 {
		t.Fatal("subgraph lost friend edge")
	}
}

func TestSubgraphPanics(t *testing.T) {
	g := New(3)
	for _, verts := range [][]int{{0, 0}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Subgraph(%v) did not panic", verts)
				}
			}()
			g.Subgraph(verts)
		}()
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.AddConflict(0, 1)
	g.AddStitch(1, 2)
	c := g.Clone()
	c.AddConflict(0, 2)
	if g.HasConflict(0, 2) {
		t.Fatal("Clone shares adjacency storage")
	}
	if !c.HasConflict(0, 1) || !c.HasStitch(1, 2) {
		t.Fatal("Clone lost edges")
	}
}

func TestPeelOrderSimple(t *testing.T) {
	// Path 0-1-2 with K=4: every vertex has conflict degree <= 2 < 4,
	// so everything peels and the core is empty.
	g := New(3)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	stack, core := g.PeelOrder(4, 2, nil)
	if len(stack) != 3 || len(core) != 0 {
		t.Fatalf("stack=%v core=%v", stack, core)
	}
}

func TestPeelOrderKeepsDenseCore(t *testing.T) {
	// K5 with K=4: all vertices have conflict degree 4, nothing peels.
	g := New(6)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	g.AddConflict(0, 5) // pendant vertex: degree 1, peels; then K5 stays
	stack, core := g.PeelOrder(4, 2, nil)
	if len(stack) != 1 || stack[0] != 5 {
		t.Fatalf("stack = %v, want [5]", stack)
	}
	if !reflect.DeepEqual(core, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("core = %v", core)
	}
}

func TestPeelOrderCascades(t *testing.T) {
	// Removing a pendant chain one by one: 0-1-2-3-K5.
	g := New(9)
	for i := 4; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			g.AddConflict(i, j)
		}
	}
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddConflict(2, 3)
	g.AddConflict(3, 4)
	stack, core := g.PeelOrder(4, 2, nil)
	if len(stack) != 4 {
		t.Fatalf("stack = %v, want chain of 4", stack)
	}
	if len(core) != 5 {
		t.Fatalf("core = %v", core)
	}
}

func TestPeelOrderStitchBound(t *testing.T) {
	// A vertex with 2 stitch edges must not peel even with low conflict degree.
	g := New(3)
	g.AddStitch(0, 1)
	g.AddStitch(1, 2)
	stack, core := g.PeelOrder(4, 2, nil)
	// Vertices 0 and 2 peel first (1 stitch each); vertex 1 then drops to
	// 0 stitch degree and peels too.
	if len(stack) != 3 || len(core) != 0 {
		t.Fatalf("stack=%v core=%v", stack, core)
	}
	if stack[len(stack)-1] != 1 {
		t.Fatalf("middle vertex should peel last: %v", stack)
	}
}

func TestPeelOrderActiveMask(t *testing.T) {
	g := New(4)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddConflict(2, 3)
	active := []bool{true, true, false, false}
	stack, core := g.PeelOrder(1, 2, active)
	for _, v := range append(append([]int{}, stack...), core...) {
		if !active[v] {
			t.Fatalf("inactive vertex %d appeared in result", v)
		}
	}
	// With K=1, vertex 0 (deg 1 inside active set) does not peel... deg(0)=1 >= 1.
	// Vertex 1 has active degree 1 as well. Nothing peels.
	if len(stack) != 0 || len(core) != 2 {
		t.Fatalf("stack=%v core=%v", stack, core)
	}
}

// peelSafety is the paper's invariant: popping the stack in reverse removal
// order, each vertex sees fewer than k conflict-colored neighbors, so a legal
// color always exists.
func TestPeelSafetyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddConflict(u, v)
			}
		}
		k := 2 + rng.Intn(4)
		stack, core := g.PeelOrder(k, 2, nil)
		inCore := make(map[int]bool)
		for _, v := range core {
			inCore[v] = true
		}
		// Replay: start with core "colored", pop stack in reverse.
		colored := make([]bool, g.N())
		for _, v := range core {
			colored[v] = true
		}
		for i := len(stack) - 1; i >= 0; i-- {
			v := stack[i]
			cnt := 0
			for _, w := range g.ConflictNeighbors(v) {
				if colored[w] {
					cnt++
				}
			}
			if cnt >= k {
				return false
			}
			colored[v] = true
		}
		// Everything accounted for exactly once.
		return len(stack)+len(core) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBiconnectedTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus tail 2-3: blocks {0,1,2} and {2,3}; cut vertex 2.
	g := New(4)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddConflict(0, 2)
	g.AddConflict(2, 3)
	blocks, cuts := g.BiconnectedComponents()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	sort.Slice(blocks, func(i, j int) bool { return len(blocks[i]) < len(blocks[j]) })
	if !reflect.DeepEqual(blocks[0], []int{2, 3}) || !reflect.DeepEqual(blocks[1], []int{0, 1, 2}) {
		t.Fatalf("blocks = %v", blocks)
	}
	if !reflect.DeepEqual(cuts, []int{2}) {
		t.Fatalf("cuts = %v", cuts)
	}
}

func TestBiconnectedBridge(t *testing.T) {
	// Two triangles joined by a bridge 2-3.
	g := New(6)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddConflict(0, 2)
	g.AddConflict(3, 4)
	g.AddConflict(4, 5)
	g.AddConflict(3, 5)
	g.AddConflict(2, 3)
	blocks, cuts := g.BiconnectedComponents()
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v, want 3", blocks)
	}
	if !reflect.DeepEqual(cuts, []int{2, 3}) {
		t.Fatalf("cuts = %v, want [2 3]", cuts)
	}
}

func TestBiconnectedIsolatedAndSingle(t *testing.T) {
	g := New(3)
	g.AddConflict(0, 1)
	blocks, cuts := g.BiconnectedComponents()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	if len(cuts) != 0 {
		t.Fatalf("cuts = %v", cuts)
	}
}

func TestBiconnectedStitchEdgesBind(t *testing.T) {
	// A stitch edge must participate in connectivity: 0-1 conflict,
	// 1-2 stitch, 2-0 conflict forms one biconnected triangle.
	g := New(3)
	g.AddConflict(0, 1)
	g.AddStitch(1, 2)
	g.AddConflict(2, 0)
	blocks, cuts := g.BiconnectedComponents()
	if len(blocks) != 1 || len(blocks[0]) != 3 {
		t.Fatalf("blocks = %v", blocks)
	}
	if len(cuts) != 0 {
		t.Fatalf("cuts = %v", cuts)
	}
}

// TestBiconnectedCoversAllVertices: every vertex appears in at least one
// block, and every edge's endpoints co-occur in some block.
func TestBiconnectedCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := New(n)
		for i := 0; i < n*3/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddConflict(u, v)
			}
		}
		blocks, _ := g.BiconnectedComponents()
		seen := make([]bool, n)
		for _, b := range blocks {
			for _, v := range b {
				seen[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if !seen[v] {
				return false
			}
		}
		for _, e := range g.ConflictEdges() {
			ok := false
			for _, b := range blocks {
				hasU, hasV := false, false
				for _, v := range b {
					hasU = hasU || v == e.U
					hasV = hasV || v == e.V
				}
				if hasU && hasV {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBiconnectedCycleIsOneBlock(t *testing.T) {
	n := 12
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddConflict(i, (i+1)%n)
	}
	blocks, cuts := g.BiconnectedComponents()
	if len(blocks) != 1 || len(blocks[0]) != n {
		t.Fatalf("cycle blocks = %v", blocks)
	}
	if len(cuts) != 0 {
		t.Fatalf("cycle cuts = %v", cuts)
	}
}

// TestArticulationMatchesBruteForce: a vertex is an articulation point iff
// removing it increases the number of connected components (over CE ∪ SE).
func TestArticulationMatchesBruteForce(t *testing.T) {
	countComponents := func(g *Graph, skip int) int {
		n := g.N()
		seen := make([]bool, n)
		comps := 0
		for s := 0; s < n; s++ {
			if s == skip || seen[s] {
				continue
			}
			comps++
			stack := []int{s}
			seen[s] = true
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				visit := func(adj []int32) {
					for _, w := range adj {
						wi := int(w)
						if wi != skip && !seen[wi] {
							seen[wi] = true
							stack = append(stack, wi)
						}
					}
				}
				visit(g.ConflictNeighbors(u))
				visit(g.StitchNeighbors(u))
			}
		}
		return comps
	}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(14)
		g := New(n)
		for i := 0; i < n*3/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if rng.Intn(5) == 0 {
				if !g.HasConflict(u, v) {
					g.AddStitch(u, v)
				}
			} else if !g.HasStitch(u, v) {
				g.AddConflict(u, v)
			}
		}
		_, cuts := g.BiconnectedComponents()
		isCut := make([]bool, n)
		for _, v := range cuts {
			isCut[v] = true
		}
		base := countComponents(g, -1)
		for v := 0; v < n; v++ {
			// Removing v: isolated vertices don't count as splits; brute
			// force compares component counts excluding v itself.
			deg := g.ConflictDegree(v) + g.StitchDegree(v)
			want := deg > 0 && countComponents(g, v) > base
			if isCut[v] != want {
				t.Fatalf("trial %d: vertex %d articulation = %v, brute force %v", trial, v, isCut[v], want)
			}
		}
	}
}
