// Package graph implements the decomposition graph of the DAC'14 paper
// (Definition 1): an undirected graph with one vertex per polygonal feature
// fragment and two edge sets, conflict edges (CE, features within the
// minimum coloring distance) and stitch edges (SE, stitch candidates inside
// one feature). A third edge set records the paper's color-friendly pairs
// (Definition 2, distance in (mins, mins+hp)), which the linear color
// assignment consults as soft same-color hints.
//
// The package also provides the structural operations the graph-division
// pipeline needs: connected components, iterative peeling of vertices with
// conflict degree < K, biconnected components and articulation points, and
// vertex-subset extraction.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is the decomposition graph. Vertices are dense integers [0, N).
// Adjacency lists are kept deduplicated, loop-free, and sorted ascending —
// the sort order is what lets edge membership tests run in O(log deg) and
// what makes the graph a pure function of its edge set (insertion order
// never shows through), the determinism contract the golden suites pin.
//
// Bulk construction goes through Builder (csr.go), which lays each edge
// kind out in one contiguous int32 arena and points these adjacency headers
// into it. The Add* methods below remain the mutable shim on top: on an
// arena-built graph an insert reallocates just the affected row (the views
// are full-capacity subslices), leaving the arena and every other row
// untouched.
type Graph struct {
	n       int
	conf    [][]int32
	stit    [][]int32
	friend  [][]int32
	nConf   int
	nStit   int
	nFriend int
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 || n > MaxVertices {
		panic(fmt.Sprintf("graph: vertex count %d outside [0, %d]", n, MaxVertices))
	}
	return &Graph{
		n:      n,
		conf:   make([][]int32, n),
		stit:   make([][]int32, n),
		friend: make([][]int32, n),
	}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// ConflictEdgeCount returns |CE|.
func (g *Graph) ConflictEdgeCount() int { return g.nConf }

// StitchEdgeCount returns |SE|.
func (g *Graph) StitchEdgeCount() int { return g.nStit }

// FriendEdgeCount returns the number of color-friendly pairs.
func (g *Graph) FriendEdgeCount() int { return g.nFriend }

// AddVertex appends an isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	if g.n >= MaxVertices {
		panic(fmt.Sprintf("graph: vertex count would exceed %d", MaxVertices))
	}
	g.conf = append(g.conf, nil)
	g.stit = append(g.stit, nil)
	g.friend = append(g.friend, nil)
	g.n++
	return g.n - 1
}

// sortedInsert puts v into ascending adjacency adj, reporting whether it was
// absent. Membership is a binary search; the shift is O(deg) but runs only
// on actual inserts, so repeated duplicate insertions on a hub vertex cost
// O(log deg) each instead of the old linear contains scan.
func sortedInsert(adj []int32, v int32) ([]int32, bool) {
	i, found := slices.BinarySearch(adj, v)
	if found {
		return adj, false
	}
	return slices.Insert(adj, i, v), true
}

func (g *Graph) check(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
}

// AddConflict inserts an undirected conflict edge; duplicate insertions are
// ignored. It reports whether the edge was new.
func (g *Graph) AddConflict(u, v int) bool {
	g.check(u, v)
	row, fresh := sortedInsert(g.conf[u], int32(v))
	if !fresh {
		return false
	}
	g.conf[u] = row
	g.conf[v], _ = sortedInsert(g.conf[v], int32(u))
	g.nConf++
	return true
}

// AddStitch inserts an undirected stitch edge; duplicates are ignored.
func (g *Graph) AddStitch(u, v int) bool {
	g.check(u, v)
	row, fresh := sortedInsert(g.stit[u], int32(v))
	if !fresh {
		return false
	}
	g.stit[u] = row
	g.stit[v], _ = sortedInsert(g.stit[v], int32(u))
	g.nStit++
	return true
}

// AddFriend inserts an undirected color-friendly edge; duplicates ignored.
func (g *Graph) AddFriend(u, v int) bool {
	g.check(u, v)
	row, fresh := sortedInsert(g.friend[u], int32(v))
	if !fresh {
		return false
	}
	g.friend[u] = row
	g.friend[v], _ = sortedInsert(g.friend[v], int32(u))
	g.nFriend++
	return true
}

// HasConflict reports whether {u,v} is a conflict edge.
func (g *Graph) HasConflict(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	_, found := slices.BinarySearch(g.conf[u], int32(v))
	return found
}

// HasStitch reports whether {u,v} is a stitch edge.
func (g *Graph) HasStitch(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	_, found := slices.BinarySearch(g.stit[u], int32(v))
	return found
}

// ConflictDegree returns dconf(v), the number of conflict edges at v.
func (g *Graph) ConflictDegree(v int) int { return len(g.conf[v]) }

// StitchDegree returns dstit(v), the number of stitch edges at v.
func (g *Graph) StitchDegree(v int) int { return len(g.stit[v]) }

// ConflictNeighbors returns the conflict adjacency of v. The slice is owned
// by the graph; callers must not modify it.
func (g *Graph) ConflictNeighbors(v int) []int32 { return g.conf[v] }

// StitchNeighbors returns the stitch adjacency of v (read-only).
func (g *Graph) StitchNeighbors(v int) []int32 { return g.stit[v] }

// FriendNeighbors returns the color-friendly adjacency of v (read-only).
func (g *Graph) FriendNeighbors(v int) []int32 { return g.friend[v] }

// Edge is an undirected vertex pair with U < V.
type Edge struct {
	U, V int
}

// ConflictEdges returns all conflict edges with U < V, sorted.
func (g *Graph) ConflictEdges() []Edge { return collectEdges(g.conf) }

// StitchEdges returns all stitch edges with U < V, sorted.
func (g *Graph) StitchEdges() []Edge { return collectEdges(g.stit) }

func collectEdges(adj [][]int32) []Edge {
	var out []Edge
	for u := range adj {
		for _, v := range adj[u] {
			if int(v) > u {
				out = append(out, Edge{U: u, V: int(v)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Components returns the connected components of the graph under the union
// of conflict and stitch edges (independent component computation of the
// division pipeline). Each component is a sorted vertex list.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		comp[s] = id
		stack = append(stack[:0], s)
		var members []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range g.conf[u] {
				if comp[v] == -1 {
					comp[v] = id
					stack = append(stack, int(v))
				}
			}
			for _, v := range g.stit[u] {
				if comp[v] == -1 {
					comp[v] = id
					stack = append(stack, int(v))
				}
			}
		}
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// Subgraph extracts the induced subgraph over the given vertices. It returns
// the new graph and the mapping from new indices to original vertex IDs
// (which equals the input slice, copied). Edges of every kind are preserved
// when both endpoints are inside the subset.
func (g *Graph) Subgraph(vertices []int) (*Graph, []int) {
	idx := make(map[int]int32, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.n {
			panic(fmt.Sprintf("graph: subgraph vertex %d out of range", v))
		}
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("graph: subgraph vertex %d repeated", v))
		}
		idx[v] = int32(i)
		orig[i] = v
	}
	sub := New(len(vertices))
	for i, v := range vertices {
		for _, w := range g.conf[v] {
			if j, ok := idx[int(w)]; ok && int32(i) < j {
				sub.AddConflict(i, int(j))
			}
		}
		for _, w := range g.stit[v] {
			if j, ok := idx[int(w)]; ok && int32(i) < j {
				sub.AddStitch(i, int(j))
			}
		}
		for _, w := range g.friend[v] {
			if j, ok := idx[int(w)]; ok && int32(i) < j {
				sub.AddFriend(i, int(j))
			}
		}
	}
	return sub, orig
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:       g.n,
		conf:    make([][]int32, g.n),
		stit:    make([][]int32, g.n),
		friend:  make([][]int32, g.n),
		nConf:   g.nConf,
		nStit:   g.nStit,
		nFriend: g.nFriend,
	}
	for i := 0; i < g.n; i++ {
		c.conf[i] = append([]int32(nil), g.conf[i]...)
		c.stit[i] = append([]int32(nil), g.stit[i]...)
		c.friend[i] = append([]int32(nil), g.friend[i]...)
	}
	return c
}

// PeelOrder computes the iterative low-degree vertex removal of Algorithm 2
// (stage 1) and the division pipeline: repeatedly remove a vertex whose
// remaining conflict degree is < k and stitch degree is < maxStitch,
// pushing it onto a stack. It returns the removal stack (in removal order)
// and the sorted list of remaining "core" vertices. The graph itself is not
// modified; removal is simulated with degree counters.
//
// When a removed vertex is later popped and colored, one of the k colors is
// always conflict-free because fewer than k conflict neighbors remain — the
// paper's safety argument.
func (g *Graph) PeelOrder(k, maxStitch int, active []bool) (stack []int, core []int) {
	deg := make([]int, g.n)
	sdeg := make([]int, g.n)
	removed := make([]bool, g.n)
	isActive := func(v int) bool { return active == nil || active[v] }
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if !isActive(v) {
			removed[v] = true // outside the working set; never peeled or core
			continue
		}
		for _, w := range g.conf[v] {
			if isActive(int(w)) {
				deg[v]++
			}
		}
		for _, w := range g.stit[v] {
			if isActive(int(w)) {
				sdeg[v]++
			}
		}
		if deg[v] < k && sdeg[v] < maxStitch {
			queue = append(queue, v)
		}
	}
	inQueue := make([]bool, g.n)
	for _, v := range queue {
		inQueue[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if removed[v] {
			continue
		}
		removed[v] = true
		stack = append(stack, v)
		for _, w := range g.conf[v] {
			wi := int(w)
			if removed[wi] {
				continue
			}
			deg[wi]--
			if deg[wi] < k && sdeg[wi] < maxStitch && !inQueue[wi] {
				inQueue[wi] = true
				queue = append(queue, wi)
			}
		}
		for _, w := range g.stit[v] {
			wi := int(w)
			if removed[wi] {
				continue
			}
			sdeg[wi]--
			if deg[wi] < k && sdeg[wi] < maxStitch && !inQueue[wi] {
				inQueue[wi] = true
				queue = append(queue, wi)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if isActive(v) && !removed[v] {
			core = append(core, v)
		}
	}
	return stack, core
}

// BiconnectedComponents computes the 2-vertex-connected components of the
// conflict graph (stitch edges are treated as binding too, since a stitch
// couples the coloring of its endpoints). It returns one vertex set per
// block and the articulation (cut) vertices. Isolated vertices form
// singleton blocks.
func (g *Graph) BiconnectedComponents() (blocks [][]int, cuts []int) {
	const none = -1
	disc := make([]int, g.n)
	low := make([]int, g.n)
	parent := make([]int, g.n)
	isCut := make([]bool, g.n)
	for i := range disc {
		disc[i] = none
		parent[i] = none
	}
	timer := 0

	type frame struct {
		v, parentEdge int
		childIdx      int
		children      int
	}
	var edgeStack []Edge

	neighbors := func(v int) []int32 {
		// Combined conflict+stitch adjacency, materialized lazily per call.
		if len(g.stit[v]) == 0 {
			return g.conf[v]
		}
		out := make([]int32, 0, len(g.conf[v])+len(g.stit[v]))
		out = append(out, g.conf[v]...)
		out = append(out, g.stit[v]...)
		return out
	}

	popBlock := func(until Edge) []int {
		seen := map[int]bool{}
		var verts []int
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			for _, v := range []int{e.U, e.V} {
				if !seen[v] {
					seen[v] = true
					verts = append(verts, v)
				}
			}
			if e == until {
				break
			}
		}
		sort.Ints(verts)
		return verts
	}

	for s := 0; s < g.n; s++ {
		if disc[s] != none {
			continue
		}
		adj := neighbors(s)
		if len(adj) == 0 {
			disc[s] = timer
			timer++
			blocks = append(blocks, []int{s})
			continue
		}
		stack := []frame{{v: s, parentEdge: none}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			vAdj := neighbors(v)
			if f.childIdx < len(vAdj) {
				w := int(vAdj[f.childIdx])
				f.childIdx++
				if w == f.parentEdge {
					continue
				}
				if disc[w] == none {
					parent[w] = v
					f.children++
					e := Edge{U: min(v, w), V: max(v, w)}
					edgeStack = append(edgeStack, e)
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{v: w, parentEdge: v})
				} else if disc[w] < disc[v] {
					e := Edge{U: min(v, w), V: max(v, w)}
					edgeStack = append(edgeStack, e)
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) == 0 {
					if f.children >= 2 {
						isCut[v] = true
					}
					continue
				}
				p := stack[len(stack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] >= disc[p] {
					if parent[p] != none {
						isCut[p] = true
					}
					e := Edge{U: min(p, v), V: max(p, v)}
					blocks = append(blocks, popBlock(e))
				}
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if isCut[v] {
			cuts = append(cuts, v)
		}
	}
	return blocks, cuts
}
