// Package viz renders layouts and decomposition results as SVG, the
// inspection format for the examples and the qpld tool: each mask gets a
// distinct fill color, conflicts are drawn as connecting lines, and stitch
// cuts as dashed marks — the visual language of the paper's figures.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"mpl/internal/core"
	"mpl/internal/geom"
)

// maskPalette holds fill colors for up to eight masks (K ≤ 8 covers every
// configuration the paper discusses).
var maskPalette = []string{
	"#4363d8", // blue
	"#e6194b", // red
	"#3cb44b", // green
	"#ffe119", // yellow
	"#911eb4", // purple
	"#f58231", // orange
	"#42d4f4", // cyan
	"#f032e6", // magenta
}

// Options controls rendering.
type Options struct {
	// Scale multiplies database units into SVG units; 0 means 0.5.
	Scale float64
	// ShowConflicts draws a line between every conflicting same-mask pair.
	ShowConflicts bool
	// ShowStitches draws dashed marks between stitch-linked fragments of
	// different masks.
	ShowStitches bool
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.5
	}
	return o
}

// WriteResult renders a decomposition result: fragments filled by mask.
func WriteResult(w io.Writer, r *core.Result, opts Options) error {
	opts = opts.withDefaults()
	bw := bufio.NewWriter(w)

	bounds := geom.Rect{}
	first := true
	for _, fr := range r.Graph.Fragments {
		b := fr.Shape.Bounds()
		if first {
			bounds = b
			first = false
		} else {
			bounds = bounds.Union(b)
		}
	}
	bounds = bounds.Expand(40)
	s := opts.Scale
	width := float64(bounds.Width()) * s
	height := float64(bounds.Height()) * s
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	// Flip y: layout coordinates grow up, SVG grows down.
	tx := func(x int) float64 { return float64(x-bounds.X0) * s }
	ty := func(y int) float64 { return float64(bounds.Y1-y) * s }

	for i, fr := range r.Graph.Fragments {
		color := "#808080"
		if c := r.Colors[i]; c >= 0 && c < len(maskPalette) {
			color = maskPalette[c]
		}
		for _, rc := range fr.Shape.Rects {
			fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="black" stroke-width="0.4"/>`+"\n",
				tx(rc.X0), ty(rc.Y1), float64(rc.Width())*s, float64(rc.Height())*s, color)
		}
	}

	if opts.ShowConflicts {
		for _, e := range r.Graph.G.ConflictEdges() {
			if r.Colors[e.U] != r.Colors[e.V] {
				continue
			}
			cu := r.Graph.Fragments[e.U].Shape.Bounds().Center()
			cv := r.Graph.Fragments[e.V].Shape.Bounds().Center()
			fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="red" stroke-width="2"/>`+"\n",
				tx(cu.X), ty(cu.Y), tx(cv.X), ty(cv.Y))
		}
	}
	if opts.ShowStitches {
		for _, e := range r.Graph.G.StitchEdges() {
			if r.Colors[e.U] == r.Colors[e.V] {
				continue
			}
			cu := r.Graph.Fragments[e.U].Shape.Bounds().Center()
			cv := r.Graph.Fragments[e.V].Shape.Bounds().Center()
			fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="1.5" stroke-dasharray="3,3"/>`+"\n",
				tx(cu.X), ty(cu.Y), tx(cv.X), ty(cv.Y))
		}
	}

	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// WriteResultFile renders to a file path.
func WriteResultFile(path string, r *core.Result, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteResult(f, r, opts); err != nil {
		return err
	}
	return f.Close()
}
