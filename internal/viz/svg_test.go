package viz

import (
	"bytes"
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpl/internal/core"
	"mpl/internal/geom"
	"mpl/internal/layout"
)

func testResult(t *testing.T) *core.Result {
	t.Helper()
	l := layout.New("viz")
	// Fig. 7 cross (guaranteed conflict) plus a splittable wire (stitch).
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: -40, Y: 0}, {X: 0, Y: 40}, {X: 0, Y: -40}} {
		l.AddRect(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 20, Y1: p.Y + 20})
	}
	l.AddRect(geom.Rect{X0: -200, Y0: 200, X1: 240, Y1: 220})
	l.AddRect(geom.Rect{X0: -200, Y0: 260, X1: -140, Y1: 280})
	l.AddRect(geom.Rect{X0: 180, Y0: 260, X1: 240, Y1: 280})
	res, err := core.Decompose(l, core.Options{K: 4, Algorithm: core.AlgILP, Build: core.BuildOptions{MinS: 60}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteResultWellFormed(t *testing.T) {
	res := testResult(t)
	var buf bytes.Buffer
	if err := WriteResult(&buf, res, Options{ShowConflicts: true, ShowStitches: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatalf("missing svg root: %.60s", out)
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	// One rect per fragment plus the background.
	wantRects := len(res.Graph.Fragments) + 1
	if got := strings.Count(out, "<rect"); got != wantRects {
		t.Fatalf("rect count = %d, want %d", got, wantRects)
	}
	// The cross forces one conflict line.
	if res.Conflicts > 0 && !strings.Contains(out, `stroke="red"`) {
		t.Fatal("conflict line missing")
	}
}

func TestWriteResultNoOverlays(t *testing.T) {
	res := testResult(t)
	var buf bytes.Buffer
	if err := WriteResult(&buf, res, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<line") {
		t.Fatal("overlay lines drawn despite disabled options")
	}
}

func TestWriteResultFile(t *testing.T) {
	res := testResult(t)
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := WriteResultFile(path, res, Options{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty SVG file")
	}
}
