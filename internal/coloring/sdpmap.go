package coloring

import (
	"context"
	"sort"

	"mpl/internal/graph"
	"mpl/internal/sdp"
)

// unionFind is a plain disjoint-set structure used for vertex merging.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// pairScore is an off-diagonal SDP Gram entry.
type pairScore struct {
	u, v int
	x    float64
}

// sortedPairs lists all vertex pairs by descending x_ij. Only pairs above
// floor are returned (pairs near −1/(K−1) carry no merge signal).
func sortedPairs(sol *sdp.Solution, floor float64) []pairScore {
	n := len(sol.Vectors)
	var out []pairScore
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if x := sol.Pair(i, j); x > floor {
				out = append(out, pairScore{u: i, v: j, x: x})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].x > out[b].x })
	return out
}

// groupsOf converts a union-find into dense group IDs and member lists.
func groupsOf(uf *unionFind, n int) (groupOf []int, members [][]int) {
	groupOf = make([]int, n)
	id := map[int]int{}
	for v := 0; v < n; v++ {
		r := uf.find(v)
		g, ok := id[r]
		if !ok {
			g = len(members)
			id[r] = g
			members = append(members, nil)
		}
		groupOf[v] = g
		members[g] = append(members[g], v)
	}
	return groupOf, members
}

// conflictBetween reports whether any conflict edge joins the two groups
// (which would make merging them immediately pay a conflict).
func conflictBetween(g *graph.Graph, a, b []int) bool {
	for _, u := range a {
		for _, v := range b {
			if g.HasConflict(u, v) {
				return true
			}
		}
	}
	return false
}

// buildMerged collapses the graph under the grouping into a weighted merged
// graph (Algorithm 1 line 4).
func buildMerged(g *graph.Graph, groupOf []int, numGroups int) *Weighted {
	w := NewWeighted(numGroups)
	for _, e := range g.ConflictEdges() {
		gu, gv := groupOf[e.U], groupOf[e.V]
		if gu != gv {
			w.AddConflict(gu, gv, 1)
		}
	}
	for _, e := range g.StitchEdges() {
		gu, gv := groupOf[e.U], groupOf[e.V]
		if gu != gv {
			w.AddStitch(gu, gv, 1)
		}
	}
	return w
}

// SDPBacktrack implements Algorithm 1 (SDP + Backtrack): solve the
// relaxation, merge every pair with x_ij ≥ threshold into one vertex
// (skipping merges that would trap a conflict edge inside a group), then run
// exact branch-and-bound backtracking on the merged graph.
func SDPBacktrack(g *graph.Graph, sol *sdp.Solution, k int, alpha, threshold float64, nodeLimit int64) ([]int, bool) {
	return SDPBacktrackContext(context.Background(), g, sol, k, alpha, threshold, nodeLimit)
}

// SDPBacktrackContext is SDPBacktrack with cooperative cancellation of the
// exact search phase (the merge phase is linear-time and runs to completion).
func SDPBacktrackContext(ctx context.Context, g *graph.Graph, sol *sdp.Solution, k int, alpha, threshold float64, nodeLimit int64) ([]int, bool) {
	n := g.N()
	if n == 0 {
		return []int{}, true
	}
	uf := newUnionFind(n)
	for _, p := range sortedPairs(sol, threshold) {
		if p.x < threshold {
			break
		}
		ra, rb := uf.find(p.u), uf.find(p.v)
		if ra == rb {
			continue
		}
		// Materialize current members lazily: small components keep this cheap.
		groupOf, members := groupsOf(uf, n)
		if conflictBetween(g, members[groupOf[p.u]], members[groupOf[p.v]]) {
			continue
		}
		uf.union(p.u, p.v)
	}
	groupOf, members := groupsOf(uf, n)
	merged := buildMerged(g, groupOf, len(members))
	res := merged.BacktrackContext(ctx, k, alpha, nodeLimit)
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = res.Colors[groupOf[v]]
	}
	return colors, res.Proven
}

// SDPGreedy implements the greedy mapping of Yu et al. (ICCAD'11) adapted to
// K masks: agglomeratively union the vertex pair with the largest x_ij
// whose union creates no internal conflict, until at most K groups remain
// (or no mergeable pair is left); groups then become colors. If more than K
// groups survive, the extra groups are colored greedily against the K
// anchor groups.
func SDPGreedy(g *graph.Graph, sol *sdp.Solution, k int, alpha float64) []int {
	n := g.N()
	if n == 0 {
		return []int{}
	}
	uf := newUnionFind(n)
	numGroups := n
	for _, p := range sortedPairs(sol, -0.5) {
		if numGroups <= k {
			break
		}
		if uf.find(p.u) == uf.find(p.v) {
			continue
		}
		groupOf, members := groupsOf(uf, n)
		if conflictBetween(g, members[groupOf[p.u]], members[groupOf[p.v]]) {
			continue
		}
		uf.union(p.u, p.v)
		numGroups--
	}
	groupOf, members := groupsOf(uf, n)

	// Assign colors group by group, biggest first, greedily minimizing the
	// weighted cost against already-colored groups.
	merged := buildMerged(g, groupOf, len(members))
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(members[order[a]]) > len(members[order[b]])
	})
	groupColor := merged.greedyColors(order, k, alpha)

	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = groupColor[groupOf[v]]
	}
	return colors
}
