package coloring

import (
	"sort"

	"mpl/internal/graph"
)

// Order selects the stage-2 vertex ordering of Algorithm 2.
type Order int

// Vertex orders. OrderAuto is the paper's peer selection: all three orders
// run and the best result wins; the specific values force one order (used
// by the ablation study).
const (
	OrderAuto Order = iota
	OrderSequence
	OrderDegree
	OrderThreeRound
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderAuto:
		return "peer-selection"
	case OrderSequence:
		return "sequence"
	case OrderDegree:
		return "degree"
	case OrderThreeRound:
		return "3round"
	}
	return "unknown"
}

// LinearOptions configures the linear color assignment (Algorithm 2).
type LinearOptions struct {
	// K is the number of masks.
	K int
	// Alpha is the stitch weight (paper: 0.1).
	Alpha float64
	// DisableColorFriendly turns off Definition 2's same-color hints
	// (used by the ablation study; the paper always keeps them on).
	DisableColorFriendly bool
	// FriendWeight is the soft bonus for matching a color-friendly
	// neighbor; it must stay below Alpha so hints never outweigh real
	// stitch costs. 0 means the default 0.05.
	FriendWeight float64
	// MaxStitchDegree is the dstit bound of the stage-1 removal; 0 means
	// the paper's 2.
	MaxStitchDegree int
	// Order forces a single stage-2 vertex order; OrderAuto (zero) keeps
	// the paper's peer selection over all three.
	Order Order
}

func (o LinearOptions) withDefaults() LinearOptions {
	if o.K < 2 {
		panic("coloring: Linear needs K >= 2")
	}
	if o.FriendWeight == 0 {
		o.FriendWeight = 0.05
	}
	if o.MaxStitchDegree == 0 {
		o.MaxStitchDegree = 2
	}
	return o
}

// Linear implements Algorithm 2, the O(n) three-stage color assignment:
//
//  1. iteratively remove non-critical vertices (dconf < K, dstit < 2) onto
//     a stack;
//  2. color the remaining core greedily under three simultaneous vertex
//     orders — SEQUENCE, DEGREE, 3ROUND — consulting color-friendly
//     neighbors (Definition 2), and keep the best of the three
//     (peer selection);
//  3. post-refine each vertex once, then pop the stack assigning each
//     vertex a legal color (one is always conflict-free, by construction).
func Linear(g *graph.Graph, opts LinearOptions) []int {
	opts = opts.withDefaults()
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	if n == 0 {
		return colors
	}

	// Stage 1: removal.
	stack, core := g.PeelOrder(opts.K, opts.MaxStitchDegree, nil)

	// Stage 2: peer selection across the three orders (or the single
	// order forced by the ablation option).
	if len(core) > 0 {
		var orders [][]int
		switch opts.Order {
		case OrderSequence:
			orders = [][]int{sequenceOrder(core)}
		case OrderDegree:
			orders = [][]int{degreeOrder(g, core)}
		case OrderThreeRound:
			orders = [][]int{threeRoundOrder(g, core, opts.K)}
		default:
			orders = [][]int{
				sequenceOrder(core),
				degreeOrder(g, core),
				threeRoundOrder(g, core, opts.K),
			}
		}
		var bestColors []int
		bestC, bestS := 0, 0
		for i, ord := range orders {
			trial := make([]int, n)
			for j := range trial {
				trial[j] = Uncolored
			}
			for _, v := range ord {
				trial[v] = chooseColor(g, trial, v, opts)
			}
			c, s := Count(g, trial)
			if i == 0 || better(c, s, bestC, bestS) {
				bestColors, bestC, bestS = trial, c, s
			}
		}
		copy(colors, bestColors)

		// Stage 3a: post-refinement — one greedy improvement pass.
		postRefine(g, colors, core, opts)
	}

	// Stage 3b: pop the stack, always picking a legal color.
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		colors[v] = chooseColor(g, colors, v, opts)
	}
	return colors
}

// sequenceOrder is SEQUENCE-COLORING's order: graph construction order.
func sequenceOrder(core []int) []int {
	return append([]int(nil), core...)
}

// degreeOrder is DEGREE-COLORING's order: descending conflict degree
// (most-constrained first), stitch degree as tiebreak.
func degreeOrder(g *graph.Graph, core []int) []int {
	ord := append([]int(nil), core...)
	sort.SliceStable(ord, func(i, j int) bool {
		a, b := ord[i], ord[j]
		da, db := g.ConflictDegree(a), g.ConflictDegree(b)
		if da != db {
			return da > db
		}
		return g.StitchDegree(a) > g.StitchDegree(b)
	})
	return ord
}

// threeRoundOrder is our reading of 3ROUND-COLORING (the paper names but
// does not define it; see DESIGN.md §5): three criticality rounds —
// (1) vertices with conflict degree ≥ K, (2) their uncolored conflict
// neighbors, (3) everything else — each round sorted by descending degree.
func threeRoundOrder(g *graph.Graph, core []int, k int) []int {
	inCore := make(map[int]bool, len(core))
	for _, v := range core {
		inCore[v] = true
	}
	round := make(map[int]int, len(core))
	for _, v := range core {
		if g.ConflictDegree(v) >= k {
			round[v] = 1
		} else {
			round[v] = 3
		}
	}
	for _, v := range core {
		if round[v] != 1 {
			continue
		}
		for _, w := range g.ConflictNeighbors(v) {
			if inCore[int(w)] && round[int(w)] == 3 {
				round[int(w)] = 2
			}
		}
	}
	ord := append([]int(nil), core...)
	sort.SliceStable(ord, func(i, j int) bool {
		a, b := ord[i], ord[j]
		if round[a] != round[b] {
			return round[a] < round[b]
		}
		return g.ConflictDegree(a) > g.ConflictDegree(b)
	})
	return ord
}

// chooseColor picks the cheapest color for v against the currently colored
// graph: conflicts cost 1, stitch mismatches cost α, and each
// color-friendly neighbor of the same color grants a small bonus
// (Definition 2's rule that color-friendly patterns tend to share a color).
// Ties resolve to the lowest color index.
func chooseColor(g *graph.Graph, colors []int, v int, opts LinearOptions) int {
	bestCol, bestCost := 0, 1e18
	for c := 0; c < opts.K; c++ {
		cost := 0.0
		for _, w := range g.ConflictNeighbors(v) {
			if colors[w] == c {
				cost++
			}
		}
		for _, w := range g.StitchNeighbors(v) {
			if colors[w] != Uncolored && colors[w] != c {
				cost += opts.Alpha
			}
		}
		if !opts.DisableColorFriendly {
			for _, w := range g.FriendNeighbors(v) {
				if colors[w] == c {
					cost -= opts.FriendWeight
				}
			}
		}
		if cost < bestCost-1e-12 {
			bestCost = cost
			bestCol = c
		}
	}
	return bestCol
}

// postRefine performs the stage-3 greedy improvement: each vertex is
// visited once and recolored if a different color strictly lowers the
// actual objective (conflicts + α·stitches, no friend bonus).
func postRefine(g *graph.Graph, colors []int, verts []int, opts LinearOptions) {
	for _, v := range verts {
		cur := colors[v]
		if cur == Uncolored {
			continue
		}
		localCost := func(c int) float64 {
			cost := 0.0
			for _, w := range g.ConflictNeighbors(v) {
				if colors[w] == c {
					cost++
				}
			}
			for _, w := range g.StitchNeighbors(v) {
				if colors[w] != Uncolored && colors[w] != c {
					cost += opts.Alpha
				}
			}
			return cost
		}
		bestCol, bestCost := cur, localCost(cur)
		for c := 0; c < opts.K; c++ {
			if c == cur {
				continue
			}
			if cost := localCost(c); cost < bestCost-1e-12 {
				bestCost = cost
				bestCol = c
			}
		}
		colors[v] = bestCol
	}
}
