package coloring

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mpl/internal/graph"
	"mpl/internal/sdp"
)

// bruteForce finds the minimum-cost assignment by enumerating k^n colorings.
func bruteForce(g *graph.Graph, k int, alpha float64) (best []int, bestCost float64) {
	n := g.N()
	colors := make([]int, n)
	best = make([]int, n)
	bestCost = math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if c := Cost(g, colors, alpha); c < bestCost {
				bestCost = c
				copy(best, colors)
			}
			return
		}
		for c := 0; c < k; c++ {
			colors[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestCost
}

func randomGraph(rng *rand.Rand, n, ce, se int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < ce; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasStitch(u, v) {
			g.AddConflict(u, v)
		}
	}
	for i := 0; i < se; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasConflict(u, v) && !g.HasStitch(u, v) {
			g.AddStitch(u, v)
		}
	}
	return g
}

func TestCountAndCost(t *testing.T) {
	g := graph.New(4)
	g.AddConflict(0, 1)
	g.AddConflict(1, 2)
	g.AddStitch(2, 3)
	colors := []int{0, 0, 1, 0}
	c, s := Count(g, colors)
	if c != 1 || s != 1 {
		t.Fatalf("Count = %d,%d want 1,1", c, s)
	}
	if got := Cost(g, colors, 0.1); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("Cost = %v", got)
	}
	// Uncolored endpoints are skipped.
	colors[1] = Uncolored
	c, s = Count(g, colors)
	if c != 0 || s != 1 {
		t.Fatalf("Count with uncolored = %d,%d", c, s)
	}
}

func TestValidate(t *testing.T) {
	g := graph.New(2)
	if err := Validate(g, []int{0, 3}, 4); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if err := Validate(g, []int{0}, 4); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Validate(g, []int{0, 4}, 4); err == nil {
		t.Fatal("out-of-range color accepted")
	}
	if err := Validate(g, []int{0, Uncolored}, 4); err == nil {
		t.Fatal("uncolored vertex accepted")
	}
}

func TestWeightedBasics(t *testing.T) {
	w := NewWeighted(3)
	w.AddConflict(0, 1, 2)
	w.AddConflict(0, 1, 1) // accumulates to 3
	w.AddStitch(1, 2, 5)
	c, s := w.CountWeighted([]int{0, 0, 1})
	if c != 3 || s != 5 {
		t.Fatalf("CountWeighted = %d,%d want 3,5", c, s)
	}
	c, s = w.CountWeighted([]int{0, 1, 1})
	if c != 0 || s != 0 {
		t.Fatalf("CountWeighted = %d,%d want 0,0", c, s)
	}
}

func TestBacktrackEmptyAndSingle(t *testing.T) {
	res := NewWeighted(0).Backtrack(4, 0.1, 0)
	if !res.Proven || len(res.Colors) != 0 {
		t.Fatalf("empty = %+v", res)
	}
	res = NewWeighted(1).Backtrack(4, 0.1, 0)
	if !res.Proven || res.Conflicts != 0 {
		t.Fatalf("single = %+v", res)
	}
}

func TestBacktrackK5(t *testing.T) {
	// K5 with 4 colors: the minimum conflict count is 1.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	res := FromGraph(g).Backtrack(4, 0.1, 0)
	if !res.Proven || res.Conflicts != 1 || res.Stitches != 0 {
		t.Fatalf("K5 result = %+v", res)
	}
}

func TestBacktrackMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		g := randomGraph(rng, n, n+rng.Intn(2*n), rng.Intn(3))
		k := 3 + rng.Intn(2)
		_, wantCost := bruteForce(g, k, 0.1)
		res := FromGraph(g).Backtrack(k, 0.1, 0)
		gotCost := float64(res.Conflicts) + 0.1*float64(res.Stitches)
		if !res.Proven {
			t.Fatalf("trial %d: not proven", trial)
		}
		if math.Abs(gotCost-wantCost) > 1e-9 {
			t.Fatalf("trial %d: backtrack cost %v, brute force %v", trial, gotCost, wantCost)
		}
	}
}

func TestBacktrackNodeLimit(t *testing.T) {
	// A dense graph with a tiny node budget still returns a valid coloring.
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 20, 80, 5)
	res := FromGraph(g).Backtrack(4, 0.1, 5)
	if res.Proven {
		t.Fatal("5-node budget cannot prove optimality here")
	}
	if err := Validate(g, res.Colors, 4); err != nil {
		t.Fatalf("invalid fallback coloring: %v", err)
	}
}

func TestSDPBacktrackNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		g := randomGraph(rng, n, n+rng.Intn(n), rng.Intn(3))
		sol := sdp.Solve(g, sdp.Options{K: 4, Alpha: 0.1, Seed: int64(trial)})
		colors, proven := SDPBacktrack(g, sol, 4, 0.1, 0.9, 0)
		if !proven {
			t.Fatalf("trial %d: merged backtrack not proven", trial)
		}
		if err := Validate(g, colors, 4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gotC, _ := Count(g, colors)
		bf, _ := bruteForce(g, 4, 0.1)
		wantC, _ := Count(g, bf)
		if gotC > wantC {
			t.Errorf("trial %d: SDP+Backtrack conflicts %d > optimal %d", trial, gotC, wantC)
		}
	}
}

func TestSDPGreedyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(7)
		g := randomGraph(rng, n, n+rng.Intn(n), rng.Intn(3))
		sol := sdp.Solve(g, sdp.Options{K: 4, Alpha: 0.1, Seed: int64(trial)})
		colors := SDPGreedy(g, sol, 4, 0.1)
		if err := Validate(g, colors, 4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSDPGreedyTwoCliques(t *testing.T) {
	// Two K4s with K=4: both algorithms must find zero conflicts.
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddConflict(i, j)
			g.AddConflict(4+i, 4+j)
		}
	}
	sol := sdp.Solve(g, sdp.Options{K: 4, Alpha: 0.1, Seed: 2, Restarts: 4})
	colors := SDPGreedy(g, sol, 4, 0.1)
	if c, _ := Count(g, colors); c != 0 {
		t.Fatalf("greedy conflicts = %d, want 0", c)
	}
	colors, _ = SDPBacktrack(g, sol, 4, 0.1, 0.9, 0)
	if c, _ := Count(g, colors); c != 0 {
		t.Fatalf("backtrack conflicts = %d, want 0", c)
	}
}

func TestLinearEmptyAndValidity(t *testing.T) {
	if got := Linear(graph.New(0), LinearOptions{K: 4, Alpha: 0.1}); len(got) != 0 {
		t.Fatalf("empty = %v", got)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, 2*n, n/2)
		colors := Linear(g, LinearOptions{K: 4, Alpha: 0.1})
		if err := Validate(g, colors, 4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLinearK5(t *testing.T) {
	// K5 with K=4: optimal is 1 conflict; linear must match (nothing peels,
	// peer selection and refinement keep it tight on this symmetric case).
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	colors := Linear(g, LinearOptions{K: 4, Alpha: 0.1})
	if c, _ := Count(g, colors); c != 1 {
		t.Fatalf("K5 conflicts = %d, want 1", c)
	}
}

func TestLinearPeelSafety(t *testing.T) {
	// Paper's claim: stack pops never add conflicts, so the final conflict
	// count equals the conflict count among core vertices alone.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(30)
		g := randomGraph(rng, n, 2*n, 0)
		k := 4
		_, core := g.PeelOrder(k, 2, nil)
		colors := Linear(g, LinearOptions{K: k, Alpha: 0.1})
		total, _ := Count(g, colors)
		inCore := make(map[int]bool)
		for _, v := range core {
			inCore[v] = true
		}
		coreConf := 0
		for _, e := range g.ConflictEdges() {
			if inCore[e.U] && inCore[e.V] && colors[e.U] == colors[e.V] {
				coreConf++
			}
		}
		if total != coreConf {
			t.Fatalf("trial %d: total conflicts %d != core conflicts %d (pops added conflicts)",
				trial, total, coreConf)
		}
	}
}

func TestFig4ColorFriendly(t *testing.T) {
	// Fig. 4's mechanism: a vertex with a color-friendly neighbor prefers
	// that neighbor's color when otherwise indifferent — and a real
	// conflict still dominates the friendly bonus.
	g := graph.New(4)
	g.AddConflict(0, 3) // vertex 3 conflicts with vertex 0
	g.AddFriend(1, 3)   // vertex 3 is color-friendly to vertex 1
	colors := []int{0, 2, Uncolored, Uncolored}
	opts := LinearOptions{K: 4, Alpha: 0.1}.withDefaults()

	// Without friends, vertex 3 avoids color 0 and takes the lowest free
	// color, 1. With friends it prefers 2 (vertex 1's color).
	noFriends := opts
	noFriends.DisableColorFriendly = true
	if got := chooseColor(g, colors, 3, noFriends); got != 1 {
		t.Fatalf("no-friend choice = %d, want 1", got)
	}
	if got := chooseColor(g, colors, 3, opts); got != 2 {
		t.Fatalf("friend choice = %d, want 2", got)
	}
	// A conflict with the friendly color overrides the bonus.
	g2 := graph.New(4)
	g2.AddConflict(2, 3)
	g2.AddFriend(1, 3)
	colors2 := []int{0, 2, 2, Uncolored}
	if got := chooseColor(g2, colors2, 3, opts); got == 2 {
		t.Fatal("friend bonus overrode a real conflict")
	}
}

func TestLinearOrdersAndPeerSelection(t *testing.T) {
	// The three orders must be permutations of the core.
	g := graph.New(8)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	g.AddConflict(5, 0)
	g.AddConflict(6, 1)
	g.AddConflict(7, 2)
	_, core := g.PeelOrder(4, 2, nil)
	for name, ord := range map[string][]int{
		"sequence": sequenceOrder(core),
		"degree":   degreeOrder(g, core),
		"3round":   threeRoundOrder(g, core, 4),
	} {
		if len(ord) != len(core) {
			t.Fatalf("%s: length %d, want %d", name, len(ord), len(core))
		}
		seen := map[int]bool{}
		for _, v := range ord {
			if seen[v] {
				t.Fatalf("%s: duplicate vertex %d", name, v)
			}
			seen[v] = true
		}
	}
}

func TestLinearPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=1 did not panic")
		}
	}()
	Linear(graph.New(1), LinearOptions{K: 1})
}

func TestILPAssignMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		g := randomGraph(rng, n, n+rng.Intn(n), rng.Intn(2))
		res := ILPAssign(g, 4, 0.1, 30*time.Second)
		if !res.Proven {
			t.Fatalf("trial %d: ILP not proven (%v)", trial, res.Status)
		}
		if err := Validate(g, res.Colors, 4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, want := bruteForce(g, 4, 0.1)
		got := Cost(g, res.Colors, 0.1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ILP cost %v, brute force %v", trial, got, want)
		}
	}
}

func TestILPAssignK5(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	res := ILPAssign(g, 4, 0.1, time.Minute)
	if !res.Proven {
		t.Fatalf("status %v", res.Status)
	}
	if c, _ := Count(g, res.Colors); c != 1 {
		t.Fatalf("K5 ILP conflicts = %d, want 1", c)
	}
}

func TestILPAssignEmpty(t *testing.T) {
	res := ILPAssign(graph.New(0), 4, 0.1, 0)
	if !res.Proven || len(res.Colors) != 0 {
		t.Fatalf("empty = %+v", res)
	}
}

func TestILPStitchTradeoff(t *testing.T) {
	// Path 0-1 conflict; stitch 1-2; conflict 2-0. Coloring 0,1 differ;
	// vertex 2 must differ from 0; stitch to 1 avoidable by matching 1.
	g := graph.New(3)
	g.AddConflict(0, 1)
	g.AddStitch(1, 2)
	g.AddConflict(0, 2)
	res := ILPAssign(g, 4, 0.1, time.Minute)
	c, s := Count(g, res.Colors)
	if c != 0 || s != 0 {
		t.Fatalf("conflicts=%d stitches=%d, want 0,0 (colors %v)", c, s, res.Colors)
	}
}

func TestSDPGreedyPentuple(t *testing.T) {
	// K5 clique at K=5 is cleanly colorable; greedy must find it.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddConflict(i, j)
		}
	}
	sol := sdp.Solve(g, sdp.Options{K: 5, Alpha: 0.1, Seed: 8})
	colors := SDPGreedy(g, sol, 5, 0.1)
	if c, _ := Count(g, colors); c != 0 {
		t.Fatalf("K5 with 5 colors: greedy conflicts = %d", c)
	}
	bt, _ := SDPBacktrack(g, sol, 5, 0.1, 0.9, 0)
	if c, _ := Count(g, bt); c != 0 {
		t.Fatalf("K5 with 5 colors: backtrack conflicts = %d", c)
	}
}

func TestBacktrackStitchTradeoff(t *testing.T) {
	// Merged graph with weighted edges: a stitch of weight 30 (cost 3.0 at
	// α=0.1) outweighs one conflict of weight 2 — the optimizer must take
	// the conflict.
	w := NewWeighted(2)
	w.AddConflict(0, 1, 2)
	w.AddStitch(0, 1, 30)
	res := w.Backtrack(4, 0.1, 0)
	if !res.Proven {
		t.Fatal("not proven")
	}
	if res.Conflicts != 2 || res.Stitches != 0 {
		t.Fatalf("cn/st = %d/%d, want 2/0 (same color despite conflicts)", res.Conflicts, res.Stitches)
	}
	// Flip the weights: now splitting wins.
	w2 := NewWeighted(2)
	w2.AddConflict(0, 1, 2)
	w2.AddStitch(0, 1, 3)
	res2 := w2.Backtrack(4, 0.1, 0)
	if res2.Conflicts != 0 || res2.Stitches != 3 {
		t.Fatalf("cn/st = %d/%d, want 0/3", res2.Conflicts, res2.Stitches)
	}
}

func TestLinearStitchAwareness(t *testing.T) {
	// A stitch pair whose endpoints have disjoint conflict constraints:
	// linear should avoid the stitch when a shared color exists.
	g := graph.New(4)
	g.AddStitch(0, 1)
	g.AddConflict(0, 2) // 2 will take some color; 0 must differ from 2
	g.AddConflict(1, 3)
	colors := Linear(g, LinearOptions{K: 4, Alpha: 0.1})
	if c, s := Count(g, colors); c != 0 || s != 0 {
		t.Fatalf("cn/st = %d/%d, want 0/0 (colors %v)", c, s, colors)
	}
}
