package coloring

import (
	"context"
	"sort"

	"mpl/internal/graph"
)

// WArc is a weighted adjacency entry of a merged graph.
type WArc struct {
	To     int
	Weight int
}

// Weighted is a vertex-weighted multigraph: the merged graph of Algorithm 1.
// Merging vertex groups collapses parallel edges into integer weights, so a
// conflict between two merged groups costs Weight original conflicts.
type Weighted struct {
	NumV int
	Conf [][]WArc
	Stit [][]WArc
}

// NewWeighted returns an empty weighted graph on n vertices.
func NewWeighted(n int) *Weighted {
	return &Weighted{
		NumV: n,
		Conf: make([][]WArc, n),
		Stit: make([][]WArc, n),
	}
}

func addWArc(adj [][]WArc, u, v, w int) {
	for i := range adj[u] {
		if adj[u][i].To == v {
			adj[u][i].Weight += w
			return
		}
	}
	adj[u] = append(adj[u], WArc{To: v, Weight: w})
}

// AddConflict accumulates conflict weight between u and v.
func (w *Weighted) AddConflict(u, v, wt int) {
	addWArc(w.Conf, u, v, wt)
	addWArc(w.Conf, v, u, wt)
}

// AddStitch accumulates stitch weight between u and v.
func (w *Weighted) AddStitch(u, v, wt int) {
	addWArc(w.Stit, u, v, wt)
	addWArc(w.Stit, v, u, wt)
}

// FromGraph converts a plain decomposition graph into unit-weight form.
func FromGraph(g *graph.Graph) *Weighted {
	w := NewWeighted(g.N())
	for _, e := range g.ConflictEdges() {
		w.AddConflict(e.U, e.V, 1)
	}
	for _, e := range g.StitchEdges() {
		w.AddStitch(e.U, e.V, 1)
	}
	return w
}

// CountWeighted returns the weighted conflict and stitch totals of a
// complete assignment on the merged graph.
func (w *Weighted) CountWeighted(colors []int) (conflicts, stitches int) {
	for u := 0; u < w.NumV; u++ {
		for _, a := range w.Conf[u] {
			if a.To > u && colors[u] == colors[a.To] {
				conflicts += a.Weight
			}
		}
		for _, a := range w.Stit[u] {
			if a.To > u && colors[u] != colors[a.To] {
				stitches += a.Weight
			}
		}
	}
	return conflicts, stitches
}

// BacktrackResult reports an exact (or node-limited) search outcome.
type BacktrackResult struct {
	Colors    []int
	Conflicts int
	Stitches  int
	// Proven is true when the search space was exhausted, making the
	// result optimal for the merged graph.
	Proven bool
	Nodes  int64
}

// Backtrack performs the branch-and-bound backtracking of Algorithm 1
// (lines 7–19) on the merged graph: it enumerates color assignments in a
// static order (descending weighted conflict degree), prunes when the
// partial cost reaches the incumbent, and breaks color symmetry by only
// allowing each vertex one fresh color beyond those already used.
// nodeLimit bounds the search; 0 means 2,000,000 nodes.
func (w *Weighted) Backtrack(k int, alpha float64, nodeLimit int64) BacktrackResult {
	return w.BacktrackContext(context.Background(), k, alpha, nodeLimit)
}

// BacktrackContext is Backtrack with cooperative cancellation: ctx is polled
// every 1024 expanded nodes, and on cancellation the search stops and the
// incumbent (at worst the greedy seed) is returned with Proven=false —
// exactly the node-limit behavior, triggered by deadline instead of count.
func (w *Weighted) BacktrackContext(ctx context.Context, k int, alpha float64, nodeLimit int64) BacktrackResult {
	n := w.NumV
	if nodeLimit <= 0 {
		nodeLimit = 2_000_000
	}
	if n == 0 {
		return BacktrackResult{Colors: []int{}, Proven: true}
	}

	// Static order: descending weighted conflict degree, then stitch degree.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	wdeg := make([]int, n)
	sdeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, a := range w.Conf[v] {
			wdeg[v] += a.Weight
		}
		for _, a := range w.Stit[v] {
			sdeg[v] += a.Weight
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if wdeg[a] != wdeg[b] {
			return wdeg[a] > wdeg[b]
		}
		return sdeg[a] > sdeg[b]
	})
	pos := make([]int, n) // vertex -> position in order
	for i, v := range order {
		pos[v] = i
	}

	// Greedy incumbent so a node-limited search still returns something.
	greedy := w.greedyColors(order, k, alpha)
	bestC, bestS := w.CountWeighted(greedy)
	best := append([]int(nil), greedy...)
	bestCost := float64(bestC) + alpha*float64(bestS)

	colors := make([]int, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	var nodes int64
	exhausted := true
	stopped := false
	done := ctx.Done()

	// deltaCost returns the cost increase of giving v color c, considering
	// only neighbors earlier in the order (already colored).
	deltaCost := func(v, c int) float64 {
		d := 0.0
		for _, a := range w.Conf[v] {
			if pos[a.To] < pos[v] && colors[a.To] == c {
				d += float64(a.Weight)
			}
		}
		for _, a := range w.Stit[v] {
			if pos[a.To] < pos[v] && colors[a.To] != c {
				d += alpha * float64(a.Weight)
			}
		}
		return d
	}

	var rec func(idx int, cost float64, used int)
	rec = func(idx int, cost float64, used int) {
		nodes++
		if nodes&1023 == 0 {
			select {
			case <-done:
				stopped = true
			default:
			}
		}
		if stopped || nodes > nodeLimit {
			exhausted = false
			return
		}
		if cost >= bestCost-1e-12 {
			return
		}
		if idx == n {
			c, s := w.CountWeighted(colors)
			cc := float64(c) + alpha*float64(s)
			if cc < bestCost-1e-12 {
				bestCost = cc
				bestC, bestS = c, s
				copy(best, colors)
			}
			return
		}
		v := order[idx]
		limit := used + 1
		if limit > k {
			limit = k
		}
		for c := 0; c < limit; c++ {
			colors[v] = c
			nu := used
			if c == used {
				nu++
			}
			rec(idx+1, cost+deltaCost(v, c), nu)
			colors[v] = Uncolored
			if stopped || nodes > nodeLimit {
				return
			}
		}
	}
	select {
	case <-done:
		exhausted = false // already cancelled: return the greedy incumbent
	default:
		rec(0, 0, 0)
	}

	return BacktrackResult{
		Colors:    best,
		Conflicts: bestC,
		Stitches:  bestS,
		Proven:    exhausted,
		Nodes:     nodes,
	}
}

// greedyColors colors vertices in the given order, picking the locally
// cheapest color (ties to the lowest index).
func (w *Weighted) greedyColors(order []int, k int, alpha float64) []int {
	colors := make([]int, w.NumV)
	for i := range colors {
		colors[i] = Uncolored
	}
	for _, v := range order {
		bestCol, bestCost := 0, 1e18
		for c := 0; c < k; c++ {
			d := 0.0
			for _, a := range w.Conf[v] {
				if colors[a.To] == c {
					d += float64(a.Weight)
				}
			}
			for _, a := range w.Stit[v] {
				if colors[a.To] != Uncolored && colors[a.To] != c {
					d += alpha * float64(a.Weight)
				}
			}
			if d < bestCost {
				bestCost = d
				bestCol = c
			}
		}
		colors[v] = bestCol
	}
	return colors
}
