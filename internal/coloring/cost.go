// Package coloring implements the color-assignment engines of the DAC'14
// paper for K-patterning layout decomposition: the exact ILP baseline, the
// two SDP-driven algorithms (backtrack mapping and greedy mapping), and the
// linear-time three-stage heuristic with color-friendly rules and peer
// selection. All engines operate on a decomposition graph (one connected,
// already-divided component) and minimize the paper's objective
//
//	cost = conflict# + α · stitch#
//
// where a conflict is a conflict edge whose endpoints share a color and a
// stitch is a stitch edge whose endpoints differ.
package coloring

import "mpl/internal/graph"

// Uncolored marks a vertex without an assigned color.
const Uncolored = -1

// Count returns the number of conflicts (same-colored conflict edges) and
// stitches (differently-colored stitch edges) of a complete assignment.
// Edges with an uncolored endpoint are not counted.
func Count(g *graph.Graph, colors []int) (conflicts, stitches int) {
	for _, e := range g.ConflictEdges() {
		cu, cv := colors[e.U], colors[e.V]
		if cu != Uncolored && cu == cv {
			conflicts++
		}
	}
	for _, e := range g.StitchEdges() {
		cu, cv := colors[e.U], colors[e.V]
		if cu != Uncolored && cv != Uncolored && cu != cv {
			stitches++
		}
	}
	return conflicts, stitches
}

// Cost returns the weighted objective conflict# + α·stitch#.
func Cost(g *graph.Graph, colors []int, alpha float64) float64 {
	c, s := Count(g, colors)
	return float64(c) + alpha*float64(s)
}

// Validate checks that every color is in [0, k) and the slice covers the
// graph. It reports the first problem found.
func Validate(g *graph.Graph, colors []int, k int) error {
	if len(colors) != g.N() {
		return errLength(len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 || c >= k {
			return errColor(v, c, k)
		}
	}
	return nil
}

type errLengthT struct{ got, want int }

func errLength(got, want int) error { return errLengthT{got, want} }

func (e errLengthT) Error() string {
	return "coloring: assignment length mismatch"
}

type errColorT struct{ v, c, k int }

func errColor(v, c, k int) error { return errColorT{v, c, k} }

func (e errColorT) Error() string {
	return "coloring: vertex color out of range"
}

// better reports whether (c1, s1) is a strictly better result than (c2, s2)
// under the paper's ranking: fewer conflicts first, then fewer stitches.
func better(c1, s1, c2, s2 int) bool {
	if c1 != c2 {
		return c1 < c2
	}
	return s1 < s2
}
