package coloring

import (
	"context"
	"time"

	"mpl/internal/graph"
	"mpl/internal/ilp"
	"mpl/internal/lp"
)

// ILPResult reports an exact ILP color assignment.
type ILPResult struct {
	Colors []int
	// Proven is true when the branch-and-bound search completed and the
	// assignment is optimal. When false the search timed out; Colors holds
	// the incumbent (or a greedy fallback) — Table 1 reports such rows as
	// "N/A" for the paper's 3600 s budget.
	Proven bool
	Status ilp.Status
}

// ILPAssign solves the component exactly via integer linear programming,
// the paper's baseline (extended from the triple-patterning ILP of Yu et
// al. ICCAD'11 to K masks). The encoding is one-hot:
//
//	y_{v,c} ∈ {0,1}   vertex v uses color c;  Σ_c y_{v,c} = 1
//	conf_e ≥ y_{u,c} + y_{v,c} − 1            ∀ conflict e=(u,v), ∀ c
//	stit_e ≥ ±(y_{u,c} − y_{v,c})             ∀ stitch e=(u,v), ∀ c
//	min  Σ conf_e + α·Σ stit_e
//
// conf/stit variables relax to continuous values because minimization
// forces them onto {0,1} whenever the y's are integral. A zero timeLimit
// means no limit.
func ILPAssign(g *graph.Graph, k int, alpha float64, timeLimit time.Duration) ILPResult {
	return ILPAssignContext(context.Background(), g, k, alpha, timeLimit)
}

// ILPAssignContext is ILPAssign with cooperative cancellation of the
// branch-and-bound search; on cancellation the incumbent (or the greedy
// fallback) is returned with Proven=false.
func ILPAssignContext(ctx context.Context, g *graph.Graph, k int, alpha float64, timeLimit time.Duration) ILPResult {
	n := g.N()
	if n == 0 {
		return ILPResult{Colors: []int{}, Proven: true, Status: ilp.Optimal}
	}
	ce := g.ConflictEdges()
	se := g.StitchEdges()

	yVar := func(v, c int) int { return v*k + c }
	confVar := func(ei int) int { return n*k + ei }
	stitVar := func(si int) int { return n*k + len(ce) + si }
	numVars := n*k + len(ce) + len(se)

	prob := &ilp.Problem{
		LP:     lp.Problem{NumVars: numVars, Objective: make([]float64, numVars)},
		Binary: make([]bool, numVars),
	}
	for v := 0; v < n; v++ {
		for c := 0; c < k; c++ {
			prob.Binary[yVar(v, c)] = true
		}
	}
	for ei := range ce {
		prob.LP.Objective[confVar(ei)] = 1
	}
	for si := range se {
		prob.LP.Objective[stitVar(si)] = alpha
	}

	// One color per vertex.
	for v := 0; v < n; v++ {
		terms := make([]lp.Term, k)
		for c := 0; c < k; c++ {
			terms[c] = lp.Term{Var: yVar(v, c), Coef: 1}
		}
		prob.LP.AddConstraint(lp.EQ, 1, terms...)
	}
	// Conflict detection.
	for ei, e := range ce {
		for c := 0; c < k; c++ {
			prob.LP.AddConstraint(lp.LE, 1,
				lp.Term{Var: yVar(e.U, c), Coef: 1},
				lp.Term{Var: yVar(e.V, c), Coef: 1},
				lp.Term{Var: confVar(ei), Coef: -1})
		}
	}
	// Stitch detection.
	for si, e := range se {
		for c := 0; c < k; c++ {
			prob.LP.AddConstraint(lp.LE, 0,
				lp.Term{Var: yVar(e.U, c), Coef: 1},
				lp.Term{Var: yVar(e.V, c), Coef: -1},
				lp.Term{Var: stitVar(si), Coef: -1})
			prob.LP.AddConstraint(lp.LE, 0,
				lp.Term{Var: yVar(e.V, c), Coef: 1},
				lp.Term{Var: yVar(e.U, c), Coef: -1},
				lp.Term{Var: stitVar(si), Coef: -1})
		}
	}
	// Symmetry breaking: pin the first vertex to color 0.
	prob.LP.AddConstraint(lp.EQ, 1, lp.Term{Var: yVar(0, 0), Coef: 1})

	res := ilp.SolveContext(ctx, prob, ilp.Options{TimeLimit: timeLimit})
	out := ILPResult{Status: res.Status, Proven: res.Status == ilp.Optimal}
	if res.X != nil {
		colors := make([]int, n)
		for v := 0; v < n; v++ {
			colors[v] = 0
			for c := 0; c < k; c++ {
				if res.X[yVar(v, c)] > 0.5 {
					colors[v] = c
					break
				}
			}
		}
		out.Colors = colors
		return out
	}
	// No incumbent within budget: fall back to a greedy coloring so the
	// caller still gets a usable (unproven) assignment.
	w := FromGraph(g)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	out.Colors = w.greedyColors(order, k, alpha)
	return out
}
