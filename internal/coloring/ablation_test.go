package coloring

import (
	"math/rand"
	"testing"

	"mpl/internal/graph"
)

// denseGraph builds a random dense component with friend edges, the regime
// where ordering and color-friendly rules matter.
func denseGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddConflict(u, v)
		}
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasConflict(u, v) {
			g.AddFriend(u, v)
		}
	}
	return g
}

// TestAblationPeerSelection: peer selection (OrderAuto) must never do worse
// than the worst single order, and on aggregate must match or beat the best
// single order (it picks the best of the three before refinement, and
// refinement is monotone).
func TestAblationPeerSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	singles := []Order{OrderSequence, OrderDegree, OrderThreeRound}
	var autoTotal int
	bestSingleTotal := make(map[Order]int)
	for trial := 0; trial < 40; trial++ {
		g := denseGraph(rng, 12+rng.Intn(20))
		auto := Linear(g, LinearOptions{K: 4, Alpha: 0.1})
		ca, _ := Count(g, auto)
		autoTotal += ca
		worst := -1
		for _, ord := range singles {
			colors := Linear(g, LinearOptions{K: 4, Alpha: 0.1, Order: ord})
			c, _ := Count(g, colors)
			bestSingleTotal[ord] += c
			if c > worst {
				worst = c
			}
		}
		if ca > worst {
			t.Fatalf("trial %d: peer selection (%d conflicts) worse than the worst single order (%d)",
				trial, ca, worst)
		}
	}
	for _, ord := range singles {
		if autoTotal > bestSingleTotal[ord] {
			t.Errorf("aggregate: peer selection %d conflicts > %v alone %d",
				autoTotal, ord, bestSingleTotal[ord])
		}
	}
}

// TestAblationColorFriendly: with color-friendly hints enabled the
// aggregate conflict count over friend-rich graphs must not exceed the
// disabled variant (Definition 2's empirical rule).
func TestAblationColorFriendly(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	withTotal, withoutTotal := 0, 0
	for trial := 0; trial < 60; trial++ {
		g := denseGraph(rng, 10+rng.Intn(16))
		on := Linear(g, LinearOptions{K: 4, Alpha: 0.1})
		off := Linear(g, LinearOptions{K: 4, Alpha: 0.1, DisableColorFriendly: true})
		cOn, _ := Count(g, on)
		cOff, _ := Count(g, off)
		withTotal += cOn
		withoutTotal += cOff
	}
	if withTotal > withoutTotal+3 {
		t.Fatalf("color-friendly rules hurt overall: %d conflicts with vs %d without",
			withTotal, withoutTotal)
	}
	t.Logf("conflicts with friends: %d, without: %d", withTotal, withoutTotal)
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{
		OrderAuto: "peer-selection", OrderSequence: "sequence",
		OrderDegree: "degree", OrderThreeRound: "3round", Order(9): "unknown",
	} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

// TestForcedOrdersValid: every forced order yields a complete valid coloring.
func TestForcedOrdersValid(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := denseGraph(rng, 30)
	for _, ord := range []Order{OrderSequence, OrderDegree, OrderThreeRound} {
		colors := Linear(g, LinearOptions{K: 4, Alpha: 0.1, Order: ord})
		if err := Validate(g, colors, 4); err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
	}
}
