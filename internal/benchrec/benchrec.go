// Package benchrec records the repository's benchmark trajectory: one JSON
// file per recorded run, named BENCH_<timestamp>.json, holding per-circuit
// graph-construction, division, and color-assignment wall times next to the
// conflict and stitch counts of the paper's Tables 1–2. Every PR that
// touches a hot path appends a new file (via `cmd/evaluate -json` or the
// bench smoke path in bench_test.go) so regressions and speedups are
// visible as a series, not anecdotes; EXPERIMENTS.md interprets the series.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mpl/internal/core"
	"mpl/internal/pipeline"
	"mpl/internal/store"
)

// Run is one recorded benchmark run: the environment it ran in plus one
// entry per circuit. Wall-clock fields are milliseconds (floats, so
// sub-millisecond stages stay visible).
type Run struct {
	// Timestamp is the RFC 3339 UTC time the run started.
	Timestamp string `json:"timestamp"`
	// Label distinguishes runs recorded for different reasons
	// ("trajectory-baseline", "ci-smoke", ...).
	Label string `json:"label,omitempty"`
	// GoVersion, NumCPU and Maxprocs pin the hardware/runtime context —
	// wall times from a 1-CPU container and a 32-core builder are not
	// comparable, and the trajectory must say which one produced them.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Maxprocs  int    `json:"gomaxprocs"`

	// Sweep parameters.
	K            int     `json:"k"`
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	BuildWorkers int     `json:"build_workers"`
	DivWorkers   int     `json:"division_workers"`
	ILPBudgetMs  float64 `json:"ilp_budget_ms,omitempty"`
	// Memoize records whether canonical-shape memoization was on for the
	// sweep (shape counters then appear per algorithm run).
	Memoize bool `json:"memoize,omitempty"`

	Circuits []Circuit `json:"circuits"`

	// Store carries the durable session store's counters after the run
	// (`cmd/evaluate -data-dir`: every replayed edit batch is write-ahead
	// logged, so the trajectory records the WAL cost of durability next to
	// the replay latencies it taxed). Absent for volatile runs.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the trajectory form of internal/store's counters.
type StoreStats struct {
	LiveSessions int    `json:"live_sessions"`
	WALBytes     int64  `json:"wal_bytes"`
	WALRecords   int    `json:"wal_records"`
	Snapshots    uint64 `json:"snapshots"`
	Edits        uint64 `json:"edits"`
	Compactions  uint64 `json:"compactions"`
	TornTail     uint64 `json:"torn_tail,omitempty"`
	Orphans      uint64 `json:"orphans,omitempty"`
}

// StoreStatsOf converts a store's counters to the trajectory schema — the
// single conversion point, like CircuitOf, so writers cannot drift.
func StoreStatsOf(s store.Stats) *StoreStats {
	return &StoreStats{
		LiveSessions: s.LiveSessions,
		WALBytes:     s.WALBytes,
		WALRecords:   s.WALRecords,
		Snapshots:    s.Snapshots,
		Edits:        s.Edits,
		Compactions:  s.Compactions,
		TornTail:     s.TornTail,
		Orphans:      s.Orphans,
	}
}

// Circuit is one benchmark circuit's build stats and per-engine results.
type Circuit struct {
	Name          string  `json:"name"`
	Features      int     `json:"features"`
	Fragments     int     `json:"fragments"`
	ConflictEdges int     `json:"conflict_edges"`
	StitchEdges   int     `json:"stitch_edges"`
	BuildMs       float64 `json:"build_ms"`
	SplitMs       float64 `json:"split_ms"`
	EdgeMs        float64 `json:"edge_ms"`
	MergeMs       float64 `json:"merge_ms"`

	Algorithms []AlgorithmRun `json:"algorithms"`

	// EditReplay records the ECO replay of `cmd/evaluate -edits`: per edit
	// batch, the incremental (ApplyEdits) latency next to a full
	// from-scratch re-decomposition of the same post-edit layout.
	EditReplay *EditReplay `json:"edit_replay,omitempty"`
}

// EditBatch is one replayed edit batch. IncrementalMs covers the dirty
// region rebuild plus the dirty-component re-solve; FullMs covers a
// complete build + division + solve of the identical post-edit layout —
// the cost an ECO would pay without the incremental path.
type EditBatch struct {
	Ops                int     `json:"ops"`
	IncrementalMs      float64 `json:"incremental_ms"`
	FullMs             float64 `json:"full_ms"`
	RebuiltFragments   int     `json:"rebuilt_fragments"`
	ResolvedComponents int     `json:"resolved_components"`
	CopiedComponents   int     `json:"copied_components"`
	// DurableMs is the time spent write-ahead logging this batch to the
	// durable session store (`cmd/evaluate -data-dir`; absent when the
	// replay was volatile). Comparing it with IncrementalMs answers "what
	// does durability cost per ECO batch".
	DurableMs float64 `json:"durable_ms,omitempty"`
}

// EditReplay is one circuit's replay series. The replay engine must be
// deterministic (not ILP), because every batch is equivalence-checked
// against the from-scratch run it is timed against.
type EditReplay struct {
	Algorithm         string      `json:"algorithm"`
	Batches           []EditBatch `json:"batches"`
	MeanIncrementalMs float64     `json:"mean_incremental_ms"`
	MeanFullMs        float64     `json:"mean_full_ms"`
	// Speedup is MeanFullMs / MeanIncrementalMs.
	Speedup float64 `json:"speedup"`
}

// Summarize fills the aggregate fields from Batches.
func (er *EditReplay) Summarize() {
	if len(er.Batches) == 0 {
		return
	}
	var inc, full float64
	for _, b := range er.Batches {
		inc += b.IncrementalMs
		full += b.FullMs
	}
	er.MeanIncrementalMs = inc / float64(len(er.Batches))
	er.MeanFullMs = full / float64(len(er.Batches))
	if inc > 0 {
		er.Speedup = full / inc
	}
}

// AlgorithmRun is one engine's result on one circuit: the cn#/st# columns
// of the paper plus the division+assignment and solver-only wall times.
type AlgorithmRun struct {
	Algorithm string `json:"algorithm"`
	Conflicts int    `json:"conflicts"`
	Stitches  int    `json:"stitches"`
	Proven    bool   `json:"proven"`
	// AssignMs is division plus color assignment (Result.AssignTime);
	// SolverMs is time inside the engine only (Result.SolverTime, the
	// paper's CPU(s) column).
	AssignMs float64 `json:"assign_ms"`
	SolverMs float64 `json:"solver_ms"`
	// StageMs breaks the run down by pipeline stage (simplify/partition/
	// dispatch/stitch/merge wall milliseconds; the build stage is recorded
	// per circuit, not per engine — see Circuit.BuildMs). Stage wall sums
	// across division workers, so with DivWorkers > 1 it is CPU-style
	// time, like SolverMs.
	StageMs map[string]float64 `json:"stage_ms,omitempty"`
	// Shape-cache counters of the run (canonical-shape memoization;
	// all omitted for memo-off runs, which report no shape traffic).
	ShapeHits     int `json:"shape_hits,omitempty"`
	ShapeMisses   int `json:"shape_misses,omitempty"`
	ShapeDistinct int `json:"shape_distinct,omitempty"`
	// Dispatch-imbalance gauge: how many division workers processed at
	// least one component, and the busiest/idlest worker's busy wall time.
	// MaxBusy/MinBusy close together means the LPT schedule kept the pool
	// saturated; far apart means a straggler. Omitted for serial runs with
	// no components and for cache-served results.
	DispatchWorkers   int     `json:"dispatch_workers,omitempty"`
	DispatchMaxBusyMs float64 `json:"dispatch_max_busy_ms,omitempty"`
	DispatchMinBusyMs float64 `json:"dispatch_min_busy_ms,omitempty"`
}

// Ms converts a duration to the trajectory's unit (milliseconds, with
// microsecond resolution so sub-millisecond stages stay visible).
func Ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// CircuitOf seeds a Circuit from one build's stats — the single conversion
// point for every trajectory writer (cmd/evaluate -json, the bench smoke
// path), so the schema cannot drift between them.
func CircuitOf(name string, st core.BuildStats) Circuit {
	return Circuit{
		Name:          name,
		Features:      st.Features,
		Fragments:     st.Fragments,
		ConflictEdges: st.ConflictEdges,
		StitchEdges:   st.StitchEdges,
		BuildMs:       Ms(st.Timing.Total),
		SplitMs:       Ms(st.Timing.Split),
		EdgeMs:        Ms(st.Timing.Edges),
		MergeMs:       Ms(st.Timing.Merge),
	}
}

// AlgorithmRunOf records one engine's result under the given column name.
func AlgorithmRunOf(algorithm string, res *core.Result) AlgorithmRun {
	return AlgorithmRun{
		Algorithm:         algorithm,
		Conflicts:         res.Conflicts,
		Stitches:          res.Stitches,
		Proven:            res.Proven,
		AssignMs:          Ms(res.AssignTime),
		SolverMs:          Ms(res.SolverTime),
		StageMs:           StageMsOf(res.DivisionStats.Stages),
		ShapeHits:         res.DivisionStats.Shapes.Hits,
		ShapeMisses:       res.DivisionStats.Shapes.Misses,
		ShapeDistinct:     res.DivisionStats.Shapes.Distinct,
		DispatchWorkers:   res.DivisionStats.Balance.Workers,
		DispatchMaxBusyMs: Ms(res.DivisionStats.Balance.MaxBusy),
		DispatchMinBusyMs: Ms(res.DivisionStats.Balance.MinBusy),
	}
}

// StageMsOf flattens per-stage telemetry to the trajectory's stage → wall
// milliseconds map (nil for an empty map, so cache-served results omit the
// field entirely).
func StageMsOf(stages map[string]pipeline.StageStats) map[string]float64 {
	if len(stages) == 0 {
		return nil
	}
	out := make(map[string]float64, len(stages))
	for name, st := range stages {
		out[name] = Ms(st.Wall)
	}
	return out
}

// Delta is one (circuit, algorithm) quality comparison between two runs.
type Delta struct {
	Circuit   string
	Algorithm string
	// Base/Cur are the baseline and current cn#/st# pairs.
	BaseConflicts, BaseStitches int
	CurConflicts, CurStitches   int
	// Worse reports a quality regression under the paper's ranking: more
	// conflicts, or equal conflicts and more stitches.
	Worse bool
	// Improved reports the strict opposite; a Delta with neither flag set
	// is unchanged.
	Improved bool
}

// worse ranks (c1, s1) strictly worse than (c2, s2): conflicts first, then
// stitches — the paper's objective ordering.
func worse(c1, s1, c2, s2 int) bool {
	if c1 != c2 {
		return c1 > c2
	}
	return s1 > s2
}

// Compare matches every (circuit, algorithm) pair present in both runs and
// reports the quality movement, in baseline order. Pairs present in only
// one run are skipped — a new engine column or a dropped circuit is not a
// regression. Wall times are deliberately not compared: the trajectory
// records them for trend reading, but two runs rarely share hardware, so a
// time gate would only flap. The regression-gate tests consume the Worse
// flag; EXPERIMENTS.md reads the full list.
func Compare(baseline, current *Run) []Delta {
	curByName := make(map[string]*Circuit, len(current.Circuits))
	for i := range current.Circuits {
		curByName[current.Circuits[i].Name] = &current.Circuits[i]
	}
	var out []Delta
	for _, bc := range baseline.Circuits {
		cc, ok := curByName[bc.Name]
		if !ok {
			continue
		}
		curAlg := make(map[string]AlgorithmRun, len(cc.Algorithms))
		for _, a := range cc.Algorithms {
			curAlg[a.Algorithm] = a
		}
		for _, ba := range bc.Algorithms {
			ca, ok := curAlg[ba.Algorithm]
			if !ok {
				continue
			}
			out = append(out, Delta{
				Circuit:       bc.Name,
				Algorithm:     ba.Algorithm,
				BaseConflicts: ba.Conflicts, BaseStitches: ba.Stitches,
				CurConflicts: ca.Conflicts, CurStitches: ca.Stitches,
				Worse:    worse(ca.Conflicts, ca.Stitches, ba.Conflicts, ba.Stitches),
				Improved: worse(ba.Conflicts, ba.Stitches, ca.Conflicts, ca.Stitches),
			})
		}
	}
	return out
}

// Regressions filters a Compare result down to the quality regressions.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Worse {
			out = append(out, d)
		}
	}
	return out
}

// DefaultFilename returns the canonical trajectory filename for a run
// started at t: BENCH_<UTC timestamp>.json, lexicographically sortable.
func DefaultFilename(t time.Time) string {
	return fmt.Sprintf("BENCH_%s.json", t.UTC().Format("20060102T150405Z"))
}

// WriteFile writes the run as indented JSON. The file is written whole (no
// partial trajectory entries on error).
func (r *Run) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchrec: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a previously recorded run (trajectory comparisons, tests).
func ReadFile(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchrec: %s: %w", path, err)
	}
	return &r, nil
}
