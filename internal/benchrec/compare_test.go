package benchrec

import "testing"

func run(circuits ...Circuit) *Run { return &Run{Circuits: circuits} }

func circuit(name string, algs ...AlgorithmRun) Circuit {
	return Circuit{Name: name, Algorithms: algs}
}

func alg(name string, cn, st int) AlgorithmRun {
	return AlgorithmRun{Algorithm: name, Conflicts: cn, Stitches: st}
}

func TestCompareFlagsQualityMovement(t *testing.T) {
	base := run(
		circuit("C432", alg("auto", 2, 18), alg("Linear", 2, 18)),
		circuit("C499", alg("auto", 1, 20)),
		circuit("GONE", alg("auto", 0, 0)),
	)
	cur := run(
		circuit("C432", alg("auto", 2, 19), alg("Linear", 1, 30)), // worse st / better cn
		circuit("C499", alg("auto", 1, 20), alg("race", 1, 22)),   // unchanged; race only in current
	)
	deltas := Compare(base, cur)
	if len(deltas) != 3 {
		t.Fatalf("expected 3 matched pairs, got %d: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Circuit+"/"+d.Algorithm] = d
	}
	if d := byKey["C432/auto"]; !d.Worse || d.Improved {
		t.Errorf("C432/auto (2,18)->(2,19) must be Worse: %+v", d)
	}
	if d := byKey["C432/Linear"]; d.Worse || !d.Improved {
		// Conflicts dominate stitches in the paper's ranking.
		t.Errorf("C432/Linear (2,18)->(1,30) must be Improved: %+v", d)
	}
	if d := byKey["C499/auto"]; d.Worse || d.Improved {
		t.Errorf("C499/auto unchanged must have neither flag: %+v", d)
	}
	if regs := Regressions(deltas); len(regs) != 1 || regs[0].Circuit != "C432" || regs[0].Algorithm != "auto" {
		t.Errorf("Regressions must be exactly C432/auto: %+v", regs)
	}
}

func TestCompareEmptyRuns(t *testing.T) {
	if deltas := Compare(run(), run()); len(deltas) != 0 {
		t.Fatalf("empty runs must compare empty, got %+v", deltas)
	}
}
