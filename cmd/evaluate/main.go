// Command evaluate regenerates the experimental tables of the DAC'14 QPLD
// paper on the synthetic benchmark suite:
//
//	evaluate -k 4              # Table 1: ILP vs SDP+Backtrack vs SDP+Greedy vs Linear
//	evaluate -k 5              # Table 2: SDP+Backtrack vs SDP+Greedy vs Linear
//	evaluate -ablation division   # GH-tree / peeling / biconnected on-off sweep
//	evaluate -ablation threshold  # Algorithm 1 t_th sweep
//	evaluate -json auto           # record a BENCH_<timestamp>.json trajectory entry
//	evaluate -json auto -edits 8  # …additionally replay ECO edit batches per circuit
//	evaluate -stages              # …print per-stage wall times under each table
//
// Per circuit and algorithm it prints the conflict number (cn#), stitch
// number (st#) and color-assignment CPU seconds (the solver stage of the
// Fig. 2 flow), then the avg and ratio rows in the paper's format. ILP rows
// whose time budget expires print "N/A", mirroring the paper's ">3600s"
// entries.
//
// The -json mode runs circuits one at a time (no batch concurrency, so wall
// times are uncontended) and writes per-stage graph-construction, division
// and solver timings plus cn#/st# to a benchmark-trajectory file; see
// EXPERIMENTS.md for how the recorded series is used.
//
// The -edits replay (with -json) generates deterministic random edit
// batches per circuit and, for each batch, times the incremental
// ApplyEdits path against a full from-scratch re-decomposition of the same
// post-edit layout, failing hard if the two disagree on conflicts or
// stitches — so every recorded speedup doubles as an equivalence check.
// -laydir reads circuits from committed .lay snapshots (benchmarks/)
// instead of synthesizing them, pinning replays to the exact bytes the
// golden regression test covers. -data-dir additionally write-ahead logs
// every replayed batch to a durable session store (internal/store, the
// same layer behind `qpld serve -data-dir`), recording per-batch logging
// cost and final log size — the price of durability, measured.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mpl"
	"mpl/internal/benchrec"
	"mpl/internal/division"
	"mpl/internal/pipeline"
	"mpl/internal/report"
	"mpl/internal/service"
	"mpl/internal/store"
)

// loadLayout resolves a circuit name to a layout: synthesized at -scale by
// default, read from -laydir (committed .lay snapshots, where -scale does
// not apply) when set. main rebinds it once flags are parsed.
var loadLayout = func(name string, scale float64) (*mpl.Layout, error) {
	return mpl.GenerateBenchmark(name, scale)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaluate: ")
	k := flag.Int("k", 4, "number of masks: 4 reproduces Table 1, 5 reproduces Table 2")
	scale := flag.Float64("scale", 1.0, "benchmark scale factor")
	seed := flag.Int64("seed", 1, "SDP random seed")
	ilpBudget := flag.Duration("ilp-budget", 60*time.Second, "ILP time budget per circuit (paper: 3600s)")
	circuits := flag.String("circuits", "", "comma-separated circuit subset (default: the table's own list)")
	algsFlag := flag.String("algs", "", "comma-separated algorithm subset (default: the table's own list; 'none' with -engine runs only the portfolio policies)")
	workers := flag.Int("workers", 1, "parallel component workers (deterministic for any value)")
	buildWorkers := flag.Int("build-workers", 1, "parallel graph-construction workers (deterministic for any value)")
	batchWorkers := flag.Int("batch-workers", 0, "concurrent circuit solves in table mode (0 = GOMAXPROCS)")
	engine := flag.String("engine", "", "adaptive engine policies to add to the sweep: auto, race, or auto,race (portfolio per-component dispatch instead of one fixed algorithm)")
	ablation := flag.String("ablation", "", "run an ablation instead of a table: division, threshold")
	jsonOut := flag.String("json", "", "write a benchmark-trajectory JSON instead of a table: a path, or 'auto' for BENCH_<timestamp>.json")
	jsonLabel := flag.String("json-label", "trajectory", "label stored in the -json record")
	edits := flag.Int("edits", 0, "with -json: replay this many random ECO edit batches per circuit with the first -algs engine, recording incremental vs from-scratch latency")
	stages := flag.Bool("stages", false, "after each table, print per-stage wall times (simplify/partition/dispatch/stitch/merge) per circuit and engine")
	memo := flag.Bool("memo", false, "enable canonical-shape memoization (byte-identical results; shape hit/miss counters appear in -stages and -json output)")
	laydir := flag.String("laydir", "", "read circuits from <dir>/<name>.lay instead of synthesizing them (-scale does not apply)")
	dataDir := flag.String("data-dir", "", "with -json -edits: write-ahead log every replayed batch to this durable session store (internal/store), recording the per-batch logging cost and the log counters in the trajectory entry")
	flag.Parse()

	if *laydir != "" {
		dir := *laydir
		loadLayout = func(name string, _ float64) (*mpl.Layout, error) {
			return mpl.ReadLayout(filepath.Join(dir, name+".lay"))
		}
	}
	names := circuitList(*circuits, *k)
	specs := sweepList(*algsFlag, *engine, *k)
	if *jsonOut != "" {
		if *ablation != "" {
			log.Fatal("-json and -ablation are mutually exclusive")
		}
		if *batchWorkers > 1 {
			// Trajectory wall times must be uncontended to be comparable.
			// (-batch-workers 1 requests exactly the sequential behavior
			// -json already guarantees, so it passes.)
			log.Fatal("-json runs circuits strictly sequentially; -batch-workers > 1 does not apply")
		}
		if *dataDir != "" && *edits == 0 {
			log.Fatal("-data-dir measures the durable replay; it requires -edits")
		}
		runJSON(names, *k, *scale, *seed, *ilpBudget, specs, *workers, *buildWorkers, *edits, *memo, *jsonOut, *jsonLabel, *dataDir)
		return
	}
	if *edits > 0 {
		log.Fatal("-edits requires -json (the replay is a trajectory recording)")
	}
	if *dataDir != "" {
		log.Fatal("-data-dir requires -json -edits (the durable replay is a trajectory recording)")
	}
	switch *ablation {
	case "":
		runTable(names, *k, *scale, *seed, *ilpBudget, specs, *workers, *buildWorkers, *batchWorkers, *stages, *memo)
	case "division":
		runDivisionAblation(names, *k, *scale, *seed, *workers, *buildWorkers)
	case "threshold":
		runThresholdAblation(names, *k, *scale, *seed, *workers, *buildWorkers)
	default:
		log.Fatalf("unknown ablation %q (want division or threshold)", *ablation)
	}
}

func circuitList(flagVal string, k int) []string {
	if flagVal != "" {
		var names []string
		for _, n := range strings.Split(flagVal, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	if k >= 5 {
		return mpl.PentupleSuite()
	}
	var names []string
	for _, s := range mpl.BenchmarkSuite() {
		names = append(names, s.Name)
	}
	return names
}

func buildGraphs(names []string, k int, scale float64, buildWorkers int) map[string]*mpl.DecompGraph {
	out := make(map[string]*mpl.DecompGraph, len(names))
	for _, name := range names {
		l, err := loadLayout(name, scale)
		if err != nil {
			log.Fatal(err)
		}
		g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: k, Workers: buildWorkers})
		if err != nil {
			log.Fatal(err)
		}
		out[name] = g
	}
	return out
}

// algList resolves the -algs flag, defaulting to the table's own columns.
// "none" selects no fixed algorithms, for sweeps that run only the -engine
// policies.
func algList(algsFlag string, k int) []mpl.Algorithm {
	var algs []mpl.Algorithm
	switch {
	case algsFlag == "none":
		return nil
	case algsFlag != "":
		for _, a := range strings.Split(algsFlag, ",") {
			alg, err := mpl.ParseAlgorithm(strings.TrimSpace(a))
			if err != nil {
				log.Fatal(err)
			}
			algs = append(algs, alg)
		}
	case k >= 5:
		algs = []mpl.Algorithm{mpl.SDPBacktrack, mpl.SDPGreedy, mpl.Linear}
	default:
		algs = []mpl.Algorithm{mpl.ILP, mpl.SDPBacktrack, mpl.SDPGreedy, mpl.Linear}
	}
	return algs
}

// sweepSpec is one column of a table or trajectory sweep: a fixed algorithm,
// or an adaptive engine policy (portfolio auto/race per-component dispatch).
type sweepSpec struct {
	label  string
	alg    mpl.Algorithm // used when engine is empty
	engine string        // "auto" or "race"
}

// options builds the mpl.Options for this spec with the shared sweep knobs.
func (s sweepSpec) options(k int, seed int64, ilpBudget time.Duration, workers, buildWorkers int, memo bool) mpl.Options {
	return mpl.Options{
		K:            k,
		Algorithm:    s.alg,
		Engine:       s.engine,
		Seed:         seed,
		ILPTimeLimit: ilpBudget,
		Memoize:      memo,
		Build:        mpl.BuildOptions{K: k, Workers: buildWorkers},
		Division:     division.Options{Workers: workers},
	}
}

// deterministic reports whether the spec's results are wall-clock
// independent: race-mode winners can flip on budget expiry and ILP rows
// depend on the time budget, so neither anchors an -edits equivalence check.
func (s sweepSpec) deterministic() bool {
	if s.engine != "" {
		return s.engine == mpl.EngineAuto
	}
	return s.alg != mpl.ILP
}

// sweepList combines -algs (fixed algorithms) and -engine (adaptive
// policies) into the sweep's column list.
func sweepList(algsFlag, engineFlag string, k int) []sweepSpec {
	var specs []sweepSpec
	for _, a := range algList(algsFlag, k) {
		specs = append(specs, sweepSpec{label: a.String(), alg: a})
	}
	if engineFlag != "" {
		for _, e := range strings.Split(engineFlag, ",") {
			eng, err := mpl.ParseEngine(strings.TrimSpace(e))
			if err != nil || eng == "" {
				log.Fatalf("-engine: want auto, race or auto,race; got %q", e)
			}
			// The portfolio dispatches to SDP+Backtrack defaults for its
			// middle tier, so the classic Algorithm field stays zero-valued.
			specs = append(specs, sweepSpec{label: eng, engine: eng})
		}
	}
	if len(specs) == 0 {
		log.Fatal("-algs none without -engine leaves nothing to run")
	}
	return specs
}

func runTable(names []string, k int, scale float64, seed int64, ilpBudget time.Duration, specs []sweepSpec, workers, buildWorkers, batchWorkers int, showStages, memo bool) {
	cols := make([]string, len(specs))
	hasBT := false
	for i, s := range specs {
		cols[i] = s.label
		hasBT = hasBT || (s.engine == "" && s.alg == mpl.SDPBacktrack)
	}
	baseline := cols[0]
	if hasBT {
		baseline = mpl.SDPBacktrack.String()
	}
	title := fmt.Sprintf("%d-patterning layout decomposition (synthetic suite, scale %.2f, seed %d)", k, scale, seed)
	tbl := report.New(title, cols, baseline)

	// All (circuit, algorithm) pairs run through the service's batch
	// runner, and the per-layout graph cache builds each decomposition
	// graph once for the whole algorithm sweep. The seeded SDP and linear
	// engines give identical cn#/st# at any -batch-workers; ILP rows keep
	// the paper's caveat — the -ilp-budget wall clock decides Proven/N/A,
	// so CPU contention from concurrent circuits can flip borderline rows
	// (run -batch-workers 1 for budget-faithful ILP columns).
	svc := service.New(service.Config{
		Workers:   batchWorkers,
		CacheSize: len(names) * (len(specs) + 1),
	})
	reqs := make([]service.Request, 0, len(names)*len(specs))
	for _, name := range names {
		l, err := loadLayout(name, scale)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range specs {
			reqs = append(reqs, service.Request{
				Name:    name,
				Layout:  l,
				Options: s.options(k, seed, ilpBudget, workers, buildWorkers, memo),
			})
		}
	}
	out := svc.DecomposeAll(context.Background(), reqs)

	for ci, name := range names {
		cells := make([]report.Cell, 0, len(specs))
		fragments := 0
		for si, s := range specs {
			r := out[ci*len(specs)+si]
			if r.Err != nil {
				log.Fatalf("%s/%s: %v", name, s.label, r.Err)
			}
			res := r.Result
			fragments = len(res.Graph.Fragments)
			// CPU(s) is color-assignment (solver) time, matching the
			// paper's column; division overhead is shared by all engines.
			cell := report.Cell{Conflicts: res.Conflicts, Stitches: res.Stitches, CPU: res.SolverTime.Seconds()}
			if s.engine == "" && s.alg == mpl.ILP && !res.Proven {
				cell.NA = true
				cell.CPU = ilpBudget.Seconds()
			}
			cells = append(cells, cell)
		}
		tbl.AddRow(name, fragments, cells)
		fmt.Fprintf(os.Stderr, "done %s\n", name)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if showStages {
		writeStageTable(os.Stdout, names, specs, out)
	}
}

// writeStageTable prints the per-stage wall-time breakdown of a finished
// sweep: one block per engine column, one row per circuit, one column per
// solve stage (the build stage is amortized by the service's graph cache
// across the whole sweep, so it is not a per-solve number; use -json for
// per-circuit build times).
func writeStageTable(w io.Writer, names []string, specs []sweepSpec, out []service.Response) {
	stageCols := []string{pipeline.StageSimplify, pipeline.StagePartition, pipeline.StageDispatch, pipeline.StageStitch, pipeline.StageMerge}
	// Shape-cache columns appear only when the sweep had shape traffic
	// (i.e. it ran with -memo); memo-off tables keep the classic layout.
	shapes := false
	for _, r := range out {
		if r.Err == nil && r.Result != nil {
			sh := r.Result.DivisionStats.Shapes
			shapes = shapes || sh.Hits+sh.Misses > 0
		}
	}
	for si, s := range specs {
		fmt.Fprintf(w, "\nstage timings (ms, %s):\n%-10s", s.label, "circuit")
		for _, sc := range stageCols {
			fmt.Fprintf(w, " %10s", sc)
		}
		if shapes {
			fmt.Fprintf(w, " %8s %8s %8s", "sh-hit", "sh-miss", "sh-dist")
		}
		// Dispatch-imbalance gauge: workers that processed ≥1 component and
		// the busiest/idlest worker's busy wall (ms). A busy-max far above
		// busy-min means a straggler held the dispatch stage hostage.
		fmt.Fprintf(w, " %6s %9s %9s\n", "disp-w", "busy-max", "busy-min")
		for ci, name := range names {
			r := out[ci*len(specs)+si]
			if r.Err != nil || r.Result == nil {
				continue
			}
			ms := benchrec.StageMsOf(r.Result.DivisionStats.Stages)
			fmt.Fprintf(w, "%-10s", name)
			for _, sc := range stageCols {
				fmt.Fprintf(w, " %10.3f", ms[sc])
			}
			if shapes {
				sh := r.Result.DivisionStats.Shapes
				fmt.Fprintf(w, " %8d %8d %8d", sh.Hits, sh.Misses, sh.Distinct)
			}
			bal := r.Result.DivisionStats.Balance
			fmt.Fprintf(w, " %6d %9.3f %9.3f\n",
				bal.Workers, benchrec.Ms(bal.MaxBusy), benchrec.Ms(bal.MinBusy))
		}
	}
}

// runDivisionAblation compares SDP+Backtrack with each division technique
// disabled in turn (the DESIGN.md §4 ablation).
func runDivisionAblation(names []string, k int, scale float64, seed int64, workers, buildWorkers int) {
	configs := []struct {
		name string
		opt  division.Options
	}{
		{"all-on", division.Options{}},
		{"no-peel", division.Options{DisablePeeling: true}},
		{"no-bicon", division.Options{DisableBiconnected: true}},
		{"no-ghtree", division.Options{DisableGHTree: true}},
	}
	cols := make([]string, len(configs))
	for i, c := range configs {
		cols[i] = c.name
	}
	title := fmt.Sprintf("division ablation, SDP+Backtrack, K=%d, scale %.2f", k, scale)
	tbl := report.New(title, cols, "all-on")
	for _, name := range names {
		g := buildGraphs([]string{name}, k, scale, buildWorkers)[name]
		cells := make([]report.Cell, 0, len(configs))
		for _, c := range configs {
			opt := c.opt
			opt.Workers = workers
			res, err := mpl.DecomposeGraph(g, mpl.Options{
				K: k, Algorithm: mpl.SDPBacktrack, Seed: seed, Division: opt,
			})
			if err != nil {
				log.Fatal(err)
			}
			// For division ablations the relevant cost is the whole
			// pipeline (division + assignment), not just the solver.
			cells = append(cells, report.Cell{
				Conflicts: res.Conflicts, Stitches: res.Stitches, CPU: res.AssignTime.Seconds(),
			})
		}
		tbl.AddRow(name, len(g.Fragments), cells)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runJSON records one benchmark-trajectory entry (internal/benchrec): per
// circuit, a timed graph build plus every requested engine, run strictly
// sequentially so wall times do not contend with each other. With edits > 0
// each circuit additionally replays that many ECO batches (first engine);
// with dataDir also set, every batch is write-ahead logged to a durable
// session store the way `qpld serve -data-dir` would log it, so the entry
// records what durability costs per batch and what the log grew to.
func runJSON(names []string, k int, scale float64, seed int64, ilpBudget time.Duration, specs []sweepSpec, workers, buildWorkers, edits int, memo bool, outPath, label, dataDir string) {
	start := time.Now()
	if outPath == "auto" {
		outPath = benchrec.DefaultFilename(start)
	}
	if edits > 0 && !specs[0].deterministic() {
		log.Fatal("-edits replay needs a deterministic engine first in the sweep (its equivalence check cannot cover the wall-clock-budgeted ILP or race modes)")
	}
	var st *store.Store
	if dataDir != "" {
		// Production fsync discipline: the recorded per-batch cost must be
		// the one a durable server pays, not a no-sync approximation.
		var err error
		st, err = store.Open(dataDir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
	}
	run := &benchrec.Run{
		Timestamp:    start.UTC().Format(time.RFC3339),
		Label:        label,
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Maxprocs:     runtime.GOMAXPROCS(0),
		K:            k,
		Scale:        scale,
		Seed:         seed,
		BuildWorkers: buildWorkers,
		DivWorkers:   workers,
		ILPBudgetMs:  float64(ilpBudget.Milliseconds()),
		Memoize:      memo,
	}
	for _, name := range names {
		l, err := loadLayout(name, scale)
		if err != nil {
			log.Fatal(err)
		}
		g, err := mpl.BuildGraph(l, mpl.BuildOptions{K: k, Workers: buildWorkers})
		if err != nil {
			log.Fatal(err)
		}
		c := benchrec.CircuitOf(name, g.Stats)
		var first *mpl.Result
		for _, s := range specs {
			o := s.options(k, seed, ilpBudget, workers, buildWorkers, memo)
			o.Build = mpl.BuildOptions{} // graph already built above
			res, err := mpl.DecomposeGraph(g, o)
			if err != nil {
				log.Fatalf("%s/%s: %v", name, s.label, err)
			}
			if first == nil {
				first = res
			}
			c.Algorithms = append(c.Algorithms, benchrec.AlgorithmRunOf(s.label, res))
		}
		if edits > 0 {
			opts := specs[0].options(k, seed, ilpBudget, workers, buildWorkers, memo)
			er, err := runEditReplay(name, l, first, opts, specs[0].label, edits, st)
			if err != nil {
				log.Fatal(err)
			}
			c.EditReplay = er
			fmt.Fprintf(os.Stderr, "  edits %s: %d batches, incremental %.2fms vs full %.2fms (%.1f×)\n",
				name, len(er.Batches), er.MeanIncrementalMs, er.MeanFullMs, er.Speedup)
		}
		run.Circuits = append(run.Circuits, c)
		fmt.Fprintf(os.Stderr, "done %s (build %.1fms, %d fragments)\n", name, c.BuildMs, c.Fragments)
	}
	if st != nil {
		run.Store = benchrec.StoreStatsOf(st.StatsSnapshot())
		fmt.Fprintf(os.Stderr, "durable log: %d sessions, %d records, %d bytes\n",
			run.Store.LiveSessions, run.Store.WALRecords, run.Store.WALBytes)
	}
	if err := run.WriteFile(outPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d circuits, %d engines, total %.1fs)\n",
		outPath, len(run.Circuits), len(specs), time.Since(start).Seconds())
}

// runEditReplay chains deterministic random edit batches over one circuit,
// timing the incremental ApplyEdits path against a full from-scratch
// re-decomposition of the identical post-edit layout, and fails hard if the
// two disagree — the recorded speedups double as equivalence evidence. With
// st non-nil every batch is additionally write-ahead logged under the same
// (options signature, layout hash) keys `qpld serve -data-dir` uses, and
// the logging wall time lands in the batch record.
func runEditReplay(name string, l *mpl.Layout, start *mpl.Result, opts mpl.Options, label string, batches int, st *store.Store) (*benchrec.EditReplay, error) {
	er := &benchrec.EditReplay{Algorithm: label}
	rng := rand.New(rand.NewSource(int64(len(name)*7919) + int64(name[0])))
	sig := service.OptionsSig(opts)
	curL, curRes := l, start
	for b := 0; b < batches; b++ {
		edits := replayBatch(rng, curL)
		t0 := time.Now()
		newL, incRes, es, err := mpl.ApplyEdits(curL, curRes, edits, opts)
		incMs := benchrec.Ms(time.Since(t0))
		if err != nil {
			return nil, fmt.Errorf("%s batch %d: %w", name, b, err)
		}
		var durableMs float64
		if st != nil {
			t := time.Now()
			if err := logReplayBatch(st, sig, curL, curRes, newL, incRes, edits); err != nil {
				return nil, fmt.Errorf("%s batch %d (durable log): %w", name, b, err)
			}
			durableMs = benchrec.Ms(time.Since(t))
		}
		t1 := time.Now()
		fullRes, err := mpl.Decompose(newL, opts)
		fullMs := benchrec.Ms(time.Since(t1))
		if err != nil {
			return nil, fmt.Errorf("%s batch %d (from scratch): %w", name, b, err)
		}
		if opts.Engine == mpl.EngineAuto && (!incRes.Proven || !fullRes.Proven) {
			// Auto is only deterministic while its ILP tier stays inside the
			// wall-clock budget; a truncated run would turn the equivalence
			// check into a coin flip, so fail it with the actual cause.
			return nil, fmt.Errorf("%s batch %d: the auto replay hit the ILP budget (unproven result); raise -ilp-budget so the equivalence check stays meaningful", name, b)
		}
		if incRes.Conflicts != fullRes.Conflicts || incRes.Stitches != fullRes.Stitches {
			return nil, fmt.Errorf("%s batch %d: EQUIVALENCE VIOLATION — incremental %d/%d, from-scratch %d/%d",
				name, b, incRes.Conflicts, incRes.Stitches, fullRes.Conflicts, fullRes.Stitches)
		}
		er.Batches = append(er.Batches, benchrec.EditBatch{
			Ops:                len(edits),
			IncrementalMs:      incMs,
			FullMs:             fullMs,
			RebuiltFragments:   es.RebuiltFragments,
			ResolvedComponents: es.ResolvedComponents,
			CopiedComponents:   es.CopiedComponents,
			DurableMs:          durableMs,
		})
		curL, curRes = newL, incRes
	}
	er.Summarize()
	if st != nil {
		// The chain must actually be replayable — a log that recorded every
		// batch but cannot produce the final session measured nothing.
		ch, err := st.Lookup(sig, service.LayoutHash(curL))
		if err != nil || ch == nil {
			return nil, fmt.Errorf("%s: final session not replayable from the durable log (%v)", name, err)
		}
	}
	return er, nil
}

// logReplayBatch persists one replayed batch with the write-ahead
// discipline internal/service uses: root the base with a snapshot if the
// log has never seen it, append the edit record, and re-root with a
// successor snapshot when the chain's replay depth hits the snapshot
// policy.
func logReplayBatch(st *store.Store, sig string, baseL *mpl.Layout, baseRes *mpl.Result, newL *mpl.Layout, newRes *mpl.Result, edits []mpl.Edit) error {
	snap := func(l *mpl.Layout, r *mpl.Result) *store.Snapshot {
		return &store.Snapshot{Layout: l, Colors: r.Colors, Conflicts: r.Conflicts, Stitches: r.Stitches, Proven: r.Proven}
	}
	baseHash, newHash := service.LayoutHash(baseL), service.LayoutHash(newL)
	if !st.Has(sig, baseHash) {
		if err := st.AppendSnapshot(sig, baseHash, snap(baseL, baseRes)); err != nil {
			return err
		}
	}
	needSnapshot, err := st.AppendEdits(sig, baseHash, newHash, edits)
	if err != nil {
		return err
	}
	if needSnapshot {
		return st.AppendSnapshot(sig, newHash, snap(newL, newRes))
	}
	return nil
}

// replayBatch generates 1–3 ECO-shaped ops: nudge a feature by up to a site
// pitch, drop one, or add a contact inside the die.
func replayBatch(rng *rand.Rand, l *mpl.Layout) []mpl.Edit {
	b := l.Bounds()
	w, h := b.Width(), b.Height()
	if w < 100 {
		w = 100
	}
	if h < 100 {
		h = 100
	}
	cnt := len(l.Features)
	n := 1 + rng.Intn(3)
	var edits []mpl.Edit
	for i := 0; i < n; i++ {
		op := rng.Intn(3)
		if cnt == 0 {
			op = 0
		}
		switch op {
		case 0:
			x, y := b.X0+rng.Intn(w), b.Y0+rng.Intn(h)
			edits = append(edits, mpl.Edit{Op: mpl.EditAdd, Shape: mpl.NewPolygon(mpl.Rect{X0: x, Y0: y, X1: x + 20, Y1: y + 20})})
			cnt++
		case 1:
			edits = append(edits, mpl.Edit{Op: mpl.EditRemove, Feature: rng.Intn(cnt)})
			cnt--
		default:
			edits = append(edits, mpl.Edit{
				Op: mpl.EditMove, Feature: rng.Intn(cnt),
				DX: (rng.Intn(7) - 3) * 20, DY: (rng.Intn(7) - 3) * 20,
			})
		}
	}
	return edits
}

// runThresholdAblation sweeps Algorithm 1's merge threshold t_th.
func runThresholdAblation(names []string, k int, scale float64, seed int64, workers, buildWorkers int) {
	ths := []float64{0.7, 0.8, 0.9, 0.99}
	cols := make([]string, len(ths))
	for i, t := range ths {
		cols[i] = fmt.Sprintf("tth=%.2f", t)
	}
	title := fmt.Sprintf("t_th ablation, SDP+Backtrack, K=%d, scale %.2f", k, scale)
	tbl := report.New(title, cols, "tth=0.90")
	for _, name := range names {
		g := buildGraphs([]string{name}, k, scale, buildWorkers)[name]
		cells := make([]report.Cell, 0, len(ths))
		for _, th := range ths {
			res, err := mpl.DecomposeGraph(g, mpl.Options{
				K: k, Algorithm: mpl.SDPBacktrack, Seed: seed, Threshold: th,
				Division: division.Options{Workers: workers},
			})
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, report.Cell{
				Conflicts: res.Conflicts, Stitches: res.Stitches, CPU: res.SolverTime.Seconds(),
			})
		}
		tbl.AddRow(name, len(g.Fragments), cells)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
