// The serve subcommand exposes layout decomposition as an HTTP JSON API
// backed by internal/service: a layout-hash keyed LRU result cache,
// single-flight deduplication, and bounded solver concurrency. Every
// request runs under a deadline (client-supplied timeout_ms capped by the
// server's -timeout), and a request that overruns it still answers with a
// valid linear-fallback coloring marked "degraded".
//
// Endpoints:
//
//	POST /v1/decompose              decompose one layout (opens a session)
//	POST /v1/decompose/batch        decompose many layouts concurrently
//	POST /v1/decompose/incremental  advance a session by an ECO edit batch
//	GET  /v1/stats                  cache and concurrency statistics
//	GET  /healthz                   liveness probe
//
// Every decompose response carries the layout_hash of the geometry it
// colored; passing that hash as "base" to the incremental endpoint applies
// add/remove/move edits and re-solves only the dirty region
// (core.ApplyEdits), returning a new layout_hash for further batches.
//
// With -data-dir set, sessions are durable (internal/store): edit batches
// are logged before they are acknowledged, evicted sessions spill to disk,
// and after a restart an incremental request against a pre-crash hash
// rehydrates its session from the log instead of answering 404. Without
// the flag the server is exactly as volatile as before the store existed.
//
// The full request/response schema, error codes, and cache semantics are
// documented in docs/API.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mpl"
	"mpl/internal/benchrec"
	"mpl/internal/core"
	"mpl/internal/division"
	"mpl/internal/geom"
	"mpl/internal/layout"
	"mpl/internal/service"
	"mpl/internal/store"
)

// rectJSON is [x0, y0, x1, y1] in database units (nm).
type rectJSON [4]int

// layoutJSON is the wire form of a layout: one rectangle list per feature.
type layoutJSON struct {
	Process  *processJSON `json:"process,omitempty"`
	Features [][]rectJSON `json:"features"`
}

type processJSON struct {
	MinWidth  int `json:"min_width"`
	MinSpace  int `json:"min_space"`
	HalfPitch int `json:"half_pitch"`
}

// decomposeRequest is the body of POST /v1/decompose (and one element of a
// batch request).
type decomposeRequest struct {
	Name      string `json:"name,omitempty"`
	K         int    `json:"k,omitempty"`         // default 4
	Algorithm string `json:"algorithm,omitempty"` // ilp, sdp-backtrack, sdp-greedy, linear
	// Engine selects the adaptive per-component policy: "auto" (pick an
	// engine per component from its structure) or "race" (run two
	// candidates concurrently, keep the better). Empty applies Algorithm
	// uniformly. Auto/race ignore Algorithm.
	Engine string `json:"engine,omitempty"`
	// RaceBudgetMs bounds each component's race (engine "race" only);
	// 0 means the server default (2000 ms), capped by the request deadline.
	RaceBudgetMs int64   `json:"race_budget_ms,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Workers      int     `json:"workers,omitempty"`       // per-request component workers
	BuildWorkers int     `json:"build_workers,omitempty"` // graph-construction workers, capped by -build-workers
	// Memoize enables canonical-shape memoization: repeated identical
	// components (standard cells) are answered from the server's
	// process-wide shape cache instead of re-solved. Byte-identical
	// results; ignored by engine "race".
	Memoize      bool       `json:"memoize,omitempty"`
	TimeoutMs    int64      `json:"timeout_ms,omitempty"` // capped by the server's -timeout
	IncludeMasks bool       `json:"include_masks,omitempty"`
	Layout       layoutJSON `json:"layout"`
}

type decomposeResponse struct {
	Name      string `json:"name,omitempty"`
	K         int    `json:"k"`
	Algorithm string `json:"algorithm"`
	// Engine echoes the requested policy ("auto"/"race"; absent for fixed),
	// and Engines is this solve's per-engine dispatch histogram (engine
	// name → pieces colored; absent on cache hits — nothing was solved).
	Engine  string         `json:"engine,omitempty"`
	Engines map[string]int `json:"engines,omitempty"`
	// StageMs is this solve's per-stage wall time in milliseconds, keyed
	// by the canonical stage names (build/simplify/partition/dispatch/
	// stitch/merge). Absent on cache hits — nothing ran. Full solves omit
	// "build" (the graph may have come from the graph cache); incremental
	// solves include their dirty-region build.
	StageMs map[string]float64 `json:"stage_ms,omitempty"`
	// Shapes reports this solve's canonical-shape cache traffic (memoized
	// requests only; absent on cache hits and memo-off solves).
	Shapes    *shapeJSON `json:"shapes,omitempty"`
	Fragments int        `json:"fragments"`
	Conflicts int        `json:"conflicts"`
	Stitches  int        `json:"stitches"`
	Proven    bool       `json:"proven"`
	Degraded  int        `json:"degraded"`
	Cached    bool       `json:"cached"`
	ElapsedMs float64    `json:"elapsed_ms"`
	// LayoutHash identifies the decomposed geometry; it is the session key
	// for POST /v1/decompose/incremental.
	LayoutHash  string           `json:"layout_hash,omitempty"`
	Incremental *incrementalJSON `json:"incremental,omitempty"`
	Masks       [][]rectJSON     `json:"masks,omitempty"`
	Error       string           `json:"error,omitempty"`
}

// shapeJSON is the wire form of one solve's (or the aggregate) shape-cache
// counters.
type shapeJSON struct {
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	Distinct int `json:"distinct"`
}

// editJSON is the wire form of one ECO operation.
type editJSON struct {
	Op      string     `json:"op"` // "add", "remove", "move"
	Feature int        `json:"feature,omitempty"`
	Rects   []rectJSON `json:"rects,omitempty"` // added feature geometry
	DX      int        `json:"dx,omitempty"`
	DY      int        `json:"dy,omitempty"`
}

// incrementalRequest is the body of POST /v1/decompose/incremental. The
// option fields must repeat the ones the base session was solved with —
// sessions are keyed by (geometry, options).
type incrementalRequest struct {
	Name         string     `json:"name,omitempty"`
	Base         string     `json:"base"` // layout_hash of the session to edit
	Edits        []editJSON `json:"edits"`
	K            int        `json:"k,omitempty"`
	Algorithm    string     `json:"algorithm,omitempty"`
	Engine       string     `json:"engine,omitempty"`
	RaceBudgetMs int64      `json:"race_budget_ms,omitempty"`
	Alpha        float64    `json:"alpha,omitempty"`
	Seed         int64      `json:"seed,omitempty"`
	Workers      int        `json:"workers,omitempty"`
	BuildWorkers int        `json:"build_workers,omitempty"`
	Memoize      bool       `json:"memoize,omitempty"`
	TimeoutMs    int64      `json:"timeout_ms,omitempty"`
	IncludeMasks bool       `json:"include_masks,omitempty"`
}

// incrementalJSON reports what the dirty-region rebuild reused (absent on
// cache hits — a cached answer did no incremental work).
type incrementalJSON struct {
	RebuiltFeatures    int     `json:"rebuilt_features"`
	ReusedFragments    int     `json:"reused_fragments"`
	RebuiltFragments   int     `json:"rebuilt_fragments"`
	Components         int     `json:"components"`
	ResolvedComponents int     `json:"resolved_components"`
	CopiedComponents   int     `json:"copied_components"`
	BuildMs            float64 `json:"build_ms"`
	SolveMs            float64 `json:"solve_ms"`
}

type batchRequest struct {
	Requests []decomposeRequest `json:"requests"`
}

type batchResponse struct {
	Responses []decomposeResponse `json:"responses"`
}

func runServe(args []string) {
	fs := flag.NewFlagSet("qpld serve", flag.ExitOnError)
	addr := fs.String("addr", ":8470", "listen address")
	cacheSize := fs.Int("cache", 256, "LRU result-cache entries (negative disables caching)")
	workers := fs.Int("workers", 0, "max concurrent decompositions (0 = GOMAXPROCS)")
	buildWorkers := fs.Int("build-workers", 0, "graph-construction workers: default for requests and cap on their build_workers (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request solve deadline cap")
	maxBody := fs.Int64("max-body", 64<<20, "maximum request body bytes")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown budget: how long in-flight requests may finish after SIGINT/SIGTERM before their contexts are cancelled")
	dataDir := fs.String("data-dir", "", "directory for durable sessions (empty = in-memory only; sessions do not survive restarts)")
	fs.Parse(args)

	bw := *buildWorkers
	if bw <= 0 {
		bw = runtime.GOMAXPROCS(0)
	}
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{})
		if err != nil {
			log.Fatalf("open data dir %s: %v", *dataDir, err)
		}
		ss := st.StatsSnapshot()
		log.Printf("durable sessions in %s (%d replayable, %d log records; %d torn-tail truncations, %d orphans dropped at recovery)",
			st.Dir(), ss.LiveSessions, ss.WALRecords, ss.TornTail, ss.Orphans)
	}
	svc := service.New(service.Config{CacheSize: *cacheSize, Workers: *workers, Store: st})
	srv := &server{svc: svc, maxTimeout: *timeout, maxBody: *maxBody, buildWorkers: bw}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (cache %d, workers %d, build workers %d, timeout cap %s, drain %s)", ln.Addr(), *cacheSize, w, bw, *timeout, *drain)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	err = serveUntil(ctx, srv.mux(), ln, *drain)
	if st != nil {
		// Closed only after the drain: in-flight requests may still append.
		if cerr := st.Close(); cerr != nil {
			log.Printf("close data dir: %v", cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// serveUntil runs the HTTP server on ln until ctx is cancelled (SIGINT or
// SIGTERM in production, the test harness's cancel in tests), then shuts
// down gracefully: the listener closes immediately — new connections are
// refused — while in-flight requests get up to drain to finish. If the
// drain budget expires first, every still-running request has its context
// cancelled, which the solve paths answer degraded-but-valid (their
// documented cancellation contract), and the server is then closed hard.
// Queued work never outlives shutdown: request contexts descend from a
// base context this function cancels on its way out.
func serveUntil(ctx context.Context, h http.Handler, ln net.Listener, drain time.Duration) error {
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	hs := &http.Server{
		Handler:     h,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown was requested
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// Drain budget exhausted: cancel the stragglers' contexts so their
		// solves degrade immediately, then close the connections.
		cancelBase()
		hs.Close()
		return fmt.Errorf("drain budget %s exhausted: %w", drain, err)
	}
	return nil
}

type server struct {
	svc        *service.Service
	maxTimeout time.Duration
	maxBody    int64
	// buildWorkers is the resolved -build-workers value: the default for
	// requests that omit build_workers and the cap for those that set it.
	buildWorkers int
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/decompose", s.handleDecompose)
	m.HandleFunc("POST /v1/decompose/batch", s.handleBatch)
	m.HandleFunc("POST /v1/decompose/incremental", s.handleIncremental)
	m.HandleFunc("GET /v1/stats", s.handleStats)
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return m
}

func (s *server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req decomposeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, err := s.decomposeOne(r.Context(), &req)
	if err != nil {
		// Deadline/cancellation is load shedding, not a malformed request.
		code := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, resp)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Each element carries its own options and deadline; the service's
	// worker pool bounds how many solve at once. Per-item failures are
	// reported inline so one bad layout cannot sink the batch.
	out := batchResponse{Responses: make([]decomposeResponse, len(req.Requests))}
	type slot struct {
		i    int
		resp decomposeResponse
	}
	results := make(chan slot, len(req.Requests))
	for i := range req.Requests {
		go func(i int) {
			resp, err := s.decomposeOne(r.Context(), &req.Requests[i])
			if err != nil {
				resp = decomposeResponse{Name: req.Requests[i].Name, Error: err.Error()}
			}
			results <- slot{i: i, resp: resp}
		}(i)
	}
	for range req.Requests {
		sl := <-results
		out.Responses[sl.i] = sl.resp
	}
	writeJSON(w, out)
}

// maxK bounds client-requested mask counts: the paper evaluates K = 4 and
// 5, and beyond ~8 the per-component ILP/SDP models explode; an absurd K
// must be a 400, not an allocation storm.
const maxK = 16

// resolveOptions validates and clamps the shared option fields of full and
// incremental requests into a core.Options. Workers values are performance
// knobs, not semantic ones (results are identical at any value), so they
// are clamped rather than rejected — one request cannot demand an arbitrary
// goroutine count. Graph construction likewise: build_workers defaults to
// the server's -build-workers and is capped by it. Note the bound is per
// request — aggregate build goroutines can reach -workers × -build-workers
// when every in-flight request is in its build stage (builds are short
// relative to solves, so sustained overlap is rare); operators running high
// request concurrency on narrow machines should lower -build-workers (see
// docs/API.md).
func (s *server) resolveOptions(k int, algName, engine string, raceBudgetMs int64, alpha float64, seed int64, workers, buildWorkers int, memoize bool) (core.Options, error) {
	if k < 0 || k > maxK {
		return core.Options{}, fmt.Errorf("k must be in [2, %d] (or 0 for the default 4), got %d", maxK, k)
	}
	if workers < 0 {
		workers = 0
	}
	if limit := runtime.GOMAXPROCS(0); workers > limit {
		workers = limit
	}
	if buildWorkers <= 0 || buildWorkers > s.buildWorkers {
		buildWorkers = s.buildWorkers
	}
	if algName == "" {
		algName = "sdp-backtrack"
	}
	alg, err := mpl.ParseAlgorithm(algName)
	if err != nil {
		return core.Options{}, err
	}
	eng, err := core.ParseEngine(engine)
	if err != nil {
		return core.Options{}, err
	}
	if raceBudgetMs < 0 {
		return core.Options{}, fmt.Errorf("race_budget_ms must be >= 0, got %d", raceBudgetMs)
	}
	var raceBudget time.Duration
	if raceBudgetMs > 0 {
		if eng != core.EngineRace {
			return core.Options{}, fmt.Errorf("race_budget_ms requires engine \"race\"")
		}
		raceBudget = time.Duration(raceBudgetMs) * time.Millisecond
	}
	return core.Options{
		K:          k,
		Algorithm:  alg,
		Engine:     eng,
		RaceBudget: raceBudget,
		Alpha:      alpha,
		Seed:       seed,
		Memoize:    memoize,
		Build:      core.BuildOptions{Workers: buildWorkers},
		Division:   division.Options{Workers: workers},
	}, nil
}

// requestCtx applies the effective deadline: the client's timeout_ms capped
// by the server's -timeout. The client deadline is honored even when the
// server cap is disabled (-timeout 0); the cap only ever shortens it.
func (s *server) requestCtx(ctx context.Context, timeoutMs int64) (context.Context, context.CancelFunc) {
	timeout := s.maxTimeout
	if timeoutMs > 0 {
		if t := time.Duration(timeoutMs) * time.Millisecond; timeout <= 0 || t < timeout {
			timeout = t
		}
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// decomposeOne converts one wire request into a service call.
func (s *server) decomposeOne(ctx context.Context, req *decomposeRequest) (decomposeResponse, error) {
	opts, err := s.resolveOptions(req.K, req.Algorithm, req.Engine, req.RaceBudgetMs, req.Alpha, req.Seed, req.Workers, req.BuildWorkers, req.Memoize)
	if err != nil {
		return decomposeResponse{}, err
	}
	l, err := layoutFromJSON(req.Layout)
	if err != nil {
		return decomposeResponse{}, err
	}
	ctx, cancel := s.requestCtx(ctx, req.TimeoutMs)
	defer cancel()

	t0 := time.Now()
	res, lh, cached, err := s.svc.DecomposeHashed(ctx, l, opts)
	if err != nil {
		return decomposeResponse{}, err
	}
	resp := decomposeResponse{
		Name:       req.Name,
		K:          res.K,
		Algorithm:  opts.Algorithm.String(),
		Engine:     opts.Engine,
		Fragments:  len(res.Graph.Fragments),
		Conflicts:  res.Conflicts,
		Stitches:   res.Stitches,
		Proven:     res.Proven,
		Degraded:   res.Degraded,
		Cached:     cached,
		ElapsedMs:  float64(time.Since(t0).Microseconds()) / 1000,
		LayoutHash: lh,
	}
	if !cached {
		resp.Engines = res.DivisionStats.Engines
		resp.StageMs = benchrec.StageMsOf(res.DivisionStats.Stages)
		if sh := res.DivisionStats.Shapes; sh.Hits+sh.Misses > 0 {
			resp.Shapes = &shapeJSON{Hits: sh.Hits, Misses: sh.Misses, Distinct: sh.Distinct}
		}
	}
	if req.IncludeMasks {
		resp.Masks = masksToJSON(res)
	}
	return resp, nil
}

// handleIncremental advances a session by an edit batch. An unknown base
// hash is 404 — the canonical client reaction is to re-send the full
// layout via /v1/decompose, which (re)opens the session.
func (s *server) handleIncremental(w http.ResponseWriter, r *http.Request) {
	var req incrementalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Base == "" {
		httpError(w, http.StatusBadRequest, "base layout hash is required")
		return
	}
	if len(req.Edits) == 0 {
		httpError(w, http.StatusBadRequest, "empty edit batch")
		return
	}
	opts, err := s.resolveOptions(req.K, req.Algorithm, req.Engine, req.RaceBudgetMs, req.Alpha, req.Seed, req.Workers, req.BuildWorkers, req.Memoize)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	edits, err := editsFromJSON(req.Edits)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), req.TimeoutMs)
	defer cancel()

	t0 := time.Now()
	res, newHash, estats, cached, err := s.svc.DecomposeIncremental(ctx, req.Base, edits, opts)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, service.ErrNoSession):
			code = http.StatusNotFound
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	resp := decomposeResponse{
		Name:       req.Name,
		K:          res.K,
		Algorithm:  opts.Algorithm.String(),
		Engine:     opts.Engine,
		Fragments:  len(res.Graph.Fragments),
		Conflicts:  res.Conflicts,
		Stitches:   res.Stitches,
		Proven:     res.Proven,
		Degraded:   res.Degraded,
		Cached:     cached,
		ElapsedMs:  float64(time.Since(t0).Microseconds()) / 1000,
		LayoutHash: newHash,
	}
	if !cached {
		resp.Engines = res.DivisionStats.Engines
		resp.StageMs = benchrec.StageMsOf(res.DivisionStats.Stages)
		if sh := res.DivisionStats.Shapes; sh.Hits+sh.Misses > 0 {
			resp.Shapes = &shapeJSON{Hits: sh.Hits, Misses: sh.Misses, Distinct: sh.Distinct}
		}
	}
	if estats != nil {
		resp.Incremental = &incrementalJSON{
			RebuiltFeatures:    estats.RebuiltFeatures,
			ReusedFragments:    estats.ReusedFragments,
			RebuiltFragments:   estats.RebuiltFragments,
			Components:         estats.Components,
			ResolvedComponents: estats.ResolvedComponents,
			CopiedComponents:   estats.CopiedComponents,
			BuildMs:            float64(estats.BuildTime.Microseconds()) / 1000,
			SolveMs:            float64(estats.SolveTime.Microseconds()) / 1000,
		}
	}
	if req.IncludeMasks {
		resp.Masks = masksToJSON(res)
	}
	writeJSON(w, resp)
}

// editsFromJSON converts wire edits to core.Edit ops.
func editsFromJSON(in []editJSON) ([]core.Edit, error) {
	out := make([]core.Edit, 0, len(in))
	for i, e := range in {
		switch e.Op {
		case "add":
			var pg geom.Polygon
			for _, r := range e.Rects {
				rc := geom.Rect{X0: r[0], Y0: r[1], X1: r[2], Y1: r[3]}
				if !rc.Valid() {
					return nil, fmt.Errorf("edit %d: invalid rect %v", i, rc)
				}
				pg.Rects = append(pg.Rects, rc)
			}
			out = append(out, core.Edit{Op: core.EditAdd, Shape: pg})
		case "remove":
			out = append(out, core.Edit{Op: core.EditRemove, Feature: e.Feature})
		case "move":
			out = append(out, core.Edit{Op: core.EditMove, Feature: e.Feature, DX: e.DX, DY: e.DY})
		default:
			return nil, fmt.Errorf("edit %d: unknown op %q (want add, remove or move)", i, e.Op)
		}
	}
	return out, nil
}

func layoutFromJSON(lj layoutJSON) (*layout.Layout, error) {
	if len(lj.Features) == 0 {
		return nil, fmt.Errorf("layout has no features")
	}
	l := layout.New("request")
	if p := lj.Process; p != nil {
		l.Process = layout.Process{MinWidth: p.MinWidth, MinSpace: p.MinSpace, HalfPitch: p.HalfPitch}
	}
	for fi, rects := range lj.Features {
		if len(rects) == 0 {
			return nil, fmt.Errorf("feature %d has no rectangles", fi)
		}
		var pg geom.Polygon
		for _, r := range rects {
			rc := geom.Rect{X0: r[0], Y0: r[1], X1: r[2], Y1: r[3]}
			if !rc.Valid() {
				return nil, fmt.Errorf("feature %d: invalid rect %v", fi, rc)
			}
			pg.Rects = append(pg.Rects, rc)
		}
		l.Add(pg)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

func masksToJSON(res *core.Result) [][]rectJSON {
	masks := make([][]rectJSON, res.K)
	for c := range masks {
		masks[c] = []rectJSON{} // empty mask serializes as [], not null
	}
	for c, shapes := range res.Masks() {
		for _, pg := range shapes {
			for _, r := range pg.Rects {
				masks[c] = append(masks[c], rectJSON{r.X0, r.Y0, r.X1, r.Y1})
			}
		}
	}
	return masks
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.svc.StatsSnapshot()
	engines := st.Engines
	if engines == nil {
		engines = map[string]uint64{} // serialize as {}, not null
	}
	stages := make(map[string]map[string]any, len(st.Stages))
	for name, ss := range st.Stages {
		stages[name] = map[string]any{
			"wall_ms": float64(ss.Wall.Microseconds()) / 1000,
			"calls":   ss.Calls,
		}
	}
	out := map[string]any{
		"cache_hits":         st.Hits,
		"cache_misses":       st.Misses,
		"cache_evictions":    st.Evictions,
		"cache_size":         st.Size,
		"graph_hits":         st.GraphHits,
		"incremental_solves": st.Incremental,
		"sessions":           st.Sessions,
		"rehydrations":       st.Rehydrations,
		"spills":             st.Spills,
		"store_errors":       st.StoreErrors,
		"engines":            engines,
		"stages":             stages,
		"shapes": map[string]int{
			"hits":     st.Shapes.Hits,
			"misses":   st.Shapes.Misses,
			"distinct": st.Shapes.Distinct,
		},
		// Dispatch-imbalance gauge: per-worker busy-time extremes across
		// every solve this process executed (division.Balance merge
		// semantics — workers sum, max/min are lifetime extremes).
		"dispatch_balance": map[string]any{
			"workers":     st.Balance.Workers,
			"max_busy_ms": float64(st.Balance.MaxBusy.Microseconds()) / 1000,
			"min_busy_ms": float64(st.Balance.MinBusy.Microseconds()) / 1000,
		},
	}
	if ss := st.Store; ss != nil {
		out["store"] = map[string]any{
			"live_sessions": ss.LiveSessions,
			"wal_bytes":     ss.WALBytes,
			"wal_records":   ss.WALRecords,
			"snapshots":     ss.Snapshots,
			"edits":         ss.Edits,
			"compactions":   ss.Compactions,
			"torn_tail":     ss.TornTail,
			"orphans":       ss.Orphans,
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
