package main

// HTTP-level tests for the adaptive engine policies: the request field, the
// response echo + per-solve histogram, validation, and the /v1/stats
// aggregate engine histogram.

import (
	"encoding/json"
	"net/http"
	"testing"
)

// gridRequest is an n×n contact grid at 50 nm pitch: interior contacts keep
// conflict degree ≥ K after peeling, so pieces actually reach the solver
// and the response carries a real dispatch histogram (a plain row would
// peel away entirely and legitimately report none).
func gridRequest(name string, n int) decomposeRequest {
	var features [][]rectJSON
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			features = append(features, []rectJSON{{c * 50, r * 50, c*50 + 20, r*50 + 20}})
		}
	}
	return decomposeRequest{Name: name, K: 4, Layout: layoutJSON{Features: features}}
}

func TestServeEngineAuto(t *testing.T) {
	ts := testServer(t)
	req := gridRequest("auto-grid", 4)
	req.Engine = "auto"

	var resp decomposeResponse
	if r := postJSON(t, ts.URL+"/v1/decompose", req, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if resp.Engine != "auto" {
		t.Fatalf("engine echo = %q, want auto", resp.Engine)
	}
	if len(resp.Engines) == 0 {
		t.Fatalf("executed auto solve must report its dispatch histogram: %+v", resp)
	}
	if resp.Cached {
		t.Fatal("first solve cannot be cached")
	}

	// The identical request hits the cache; a cached answer solved nothing,
	// so it carries no fresh histogram.
	var resp2 decomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", req, &resp2)
	if !resp2.Cached {
		t.Fatal("identical auto request must be served from cache")
	}
	if len(resp2.Engines) != 0 {
		t.Fatalf("cached response must omit the histogram, got %v", resp2.Engines)
	}
	if resp2.Conflicts != resp.Conflicts || resp2.Stitches != resp.Stitches {
		t.Fatalf("cached auto result differs: %d/%d vs %d/%d", resp2.Conflicts, resp2.Stitches, resp.Conflicts, resp.Stitches)
	}

	// /v1/stats aggregates the executed solve's histogram.
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats struct {
		Engines map[string]uint64 `json:"engines"`
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Engines) == 0 {
		t.Fatal("/v1/stats engines histogram is empty after an executed solve")
	}
	sum := uint64(0)
	for name, n := range resp.Engines {
		if stats.Engines[name] < uint64(n) {
			t.Fatalf("stats histogram %v does not cover the solve's %v", stats.Engines, resp.Engines)
		}
		sum += uint64(n)
	}
	if sum == 0 {
		t.Fatal("solve histogram sums to zero")
	}
}

func TestServeEngineValidation(t *testing.T) {
	ts := testServer(t)

	bad := rowRequest("bad-engine", 4)
	bad.Engine = "bogus"
	if r := postJSON(t, ts.URL+"/v1/decompose", bad, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine: status %d, want 400", r.StatusCode)
	}

	budget := rowRequest("budget-no-race", 4)
	budget.RaceBudgetMs = 50
	if r := postJSON(t, ts.URL+"/v1/decompose", budget, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("race_budget_ms without race engine: status %d, want 400", r.StatusCode)
	}

	race := gridRequest("race-grid", 4)
	race.Engine = "race"
	race.RaceBudgetMs = 500
	var resp decomposeResponse
	if r := postJSON(t, ts.URL+"/v1/decompose", race, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("race request: status %d", r.StatusCode)
	}
	if resp.Engine != "race" || len(resp.Engines) == 0 {
		t.Fatalf("race response incomplete: %+v", resp)
	}
}

func TestServeStageTimings(t *testing.T) {
	ts := testServer(t)
	req := gridRequest("stage-grid", 4)

	var resp decomposeResponse
	if r := postJSON(t, ts.URL+"/v1/decompose", req, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	for _, name := range []string{"partition", "dispatch", "merge"} {
		if _, ok := resp.StageMs[name]; !ok {
			t.Errorf("executed solve must report stage %q: %v", name, resp.StageMs)
		}
	}
	if _, ok := resp.StageMs["build"]; ok {
		t.Errorf("full-solve response must not charge the (cacheable) graph build to one request: %v", resp.StageMs)
	}

	// A cached answer ran no stages.
	var resp2 decomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", req, &resp2)
	if !resp2.Cached || len(resp2.StageMs) != 0 {
		t.Fatalf("cached response must omit stage timings: cached=%v stage_ms=%v", resp2.Cached, resp2.StageMs)
	}

	// /v1/stats aggregates stages across solves, including the build the
	// service itself ran.
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats struct {
		Stages map[string]struct {
			WallMs float64 `json:"wall_ms"`
			Calls  int     `json:"calls"`
		} `json:"stages"`
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"build", "partition", "dispatch", "merge"} {
		if stats.Stages[name].Calls == 0 {
			t.Errorf("/v1/stats stages missing %q: %+v", name, stats.Stages)
		}
	}
}
