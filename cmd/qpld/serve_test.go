package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpl/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := &server{
		svc:        service.New(service.Config{CacheSize: 32}),
		maxTimeout: 10 * time.Second,
		maxBody:    1 << 20,
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

// rowRequest is a dense row of rects (30 nm gaps < the 80 nm QP coloring
// distance), so the decomposition has real conflict edges.
func rowRequest(name string, n int) decomposeRequest {
	features := make([][]rectJSON, n)
	for i := 0; i < n; i++ {
		x := i * 50
		features[i] = []rectJSON{{x, 0, x + 20, 200}}
	}
	return decomposeRequest{
		Name:      name,
		K:         4,
		Algorithm: "sdp-backtrack",
		Layout:    layoutJSON{Features: features},
	}
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp
}

func TestServeDecompose(t *testing.T) {
	ts := testServer(t)
	req := rowRequest("row", 6)
	req.IncludeMasks = true

	var out decomposeResponse
	resp := postJSON(t, ts.URL+"/v1/decompose", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.K != 4 || out.Fragments == 0 {
		t.Fatalf("bad response: %+v", out)
	}
	if out.Cached {
		t.Fatal("first request must not be cached")
	}
	if len(out.Masks) != 4 {
		t.Fatalf("want 4 masks, got %d", len(out.Masks))
	}
	total := 0
	for _, m := range out.Masks {
		total += len(m)
	}
	if total < 6 {
		t.Fatalf("masks cover %d rects, want >= 6", total)
	}

	// Identical geometry again: served from cache.
	var out2 decomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", req, &out2)
	if !out2.Cached {
		t.Fatal("second identical request must be cached")
	}
	if out2.Conflicts != out.Conflicts || out2.Stitches != out.Stitches {
		t.Fatalf("cached response differs: %+v vs %+v", out2, out)
	}
}

func TestServeBatch(t *testing.T) {
	ts := testServer(t)
	batch := batchRequest{Requests: []decomposeRequest{
		rowRequest("a", 4),
		rowRequest("b", 6),
		rowRequest("a-again", 4),            // same geometry as "a": cache or single-flight
		{Name: "bad", Layout: layoutJSON{}}, // no features: inline error
	}}
	var out batchResponse
	resp := postJSON(t, ts.URL+"/v1/decompose/batch", batch, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Responses) != 4 {
		t.Fatalf("want 4 responses, got %d", len(out.Responses))
	}
	for i, name := range []string{"a", "b", "a-again", "bad"} {
		if out.Responses[i].Name != name {
			t.Fatalf("response %d: name %q, want %q (order must match request order)", i, out.Responses[i].Name, name)
		}
	}
	if out.Responses[0].Error != "" || out.Responses[1].Error != "" || out.Responses[2].Error != "" {
		t.Fatalf("unexpected errors: %+v", out.Responses)
	}
	if out.Responses[0].Conflicts != out.Responses[2].Conflicts {
		t.Fatal("identical geometry must give identical results")
	}
	if out.Responses[3].Error == "" {
		t.Fatal("featureless layout must report an inline error")
	}

	// The duplicate pair solved once (single-flight or cache).
	var stats map[string]any
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if misses := stats["cache_misses"].(float64); misses != 2 {
		t.Fatalf("cache_misses = %v, want 2 (a/b solved once each)", misses)
	}
}

func TestServeDeadlineStillAnswers(t *testing.T) {
	ts := testServer(t)
	req := rowRequest("row", 40)
	req.TimeoutMs = 1 // expires essentially immediately
	var out decomposeResponse
	resp := postJSON(t, ts.URL+"/v1/decompose", req, &out)
	// Either a valid (possibly degraded) coloring or a context error is
	// acceptable; a hang is not. A 200 must carry a complete response.
	if resp.StatusCode == http.StatusOK && out.Error == "" && out.Fragments == 0 {
		t.Fatalf("deadline response incomplete: %+v", out)
	}
}

func TestServeRejectsBadInput(t *testing.T) {
	ts := testServer(t)
	for name, body := range map[string]any{
		"no features": decomposeRequest{Layout: layoutJSON{}},
		"bad alg":     decomposeRequest{Algorithm: "magic", Layout: layoutJSON{Features: [][]rectJSON{{{0, 0, 10, 10}}}}},
		"bad rect":    decomposeRequest{Layout: layoutJSON{Features: [][]rectJSON{{{10, 10, 0, 0}}}}},
		"bad k":       decomposeRequest{K: 1, Layout: layoutJSON{Features: [][]rectJSON{{{0, 0, 10, 10}}}}},
		"huge k":      decomposeRequest{K: 1 << 30, Layout: layoutJSON{Features: [][]rectJSON{{{0, 0, 10, 10}}}}},
		"negative k":  decomposeRequest{K: -4, Layout: layoutJSON{Features: [][]rectJSON{{{0, 0, 10, 10}}}}},
	} {
		resp := postJSON(t, ts.URL+"/v1/decompose", body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestServeClampsWorkers(t *testing.T) {
	// An absurd workers value is a performance knob abuse, not an error:
	// it must be clamped (identical results), never allocated verbatim.
	ts := testServer(t)
	req := rowRequest("row", 6)
	req.Workers = 1 << 30
	var out decomposeResponse
	resp := postJSON(t, ts.URL+"/v1/decompose", req, &out)
	if resp.StatusCode != http.StatusOK || out.Error != "" || out.Fragments == 0 {
		t.Fatalf("status %d, response %+v", resp.StatusCode, out)
	}
}

func TestServeHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestServeClientTimeoutHonoredWithoutServerCap(t *testing.T) {
	// -timeout 0 disables the server cap; the client's timeout_ms must
	// still bound the solve rather than being silently dropped.
	srv := &server{
		svc:     service.New(service.Config{CacheSize: 32}),
		maxBody: 8 << 20, // maxTimeout deliberately zero
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	features := make([][]rectJSON, 0, 900)
	for r := 0; r < 30; r++ {
		for c := 0; c < 30; c++ {
			features = append(features, []rectJSON{{c * 50, r * 50, c*50 + 20, r*50 + 20}})
		}
	}
	req := decomposeRequest{
		K: 4, Algorithm: "sdp-backtrack", TimeoutMs: 1,
		Layout: layoutJSON{Features: features},
	}
	start := time.Now()
	var out decomposeResponse
	resp := postJSON(t, ts.URL+"/v1/decompose", req, &out)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Degraded == 0 {
		t.Fatalf("1 ms deadline on a 900-feature grid must degrade, got %+v", out)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("took %v; client deadline was dropped", elapsed)
	}
}

func TestServeIncremental(t *testing.T) {
	ts := testServer(t)

	// Open a session with a full decompose.
	var full decomposeResponse
	resp := postJSON(t, ts.URL+"/v1/decompose", rowRequest("row", 8), &full)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if full.LayoutHash == "" {
		t.Fatal("decompose response carries no layout_hash; incremental requests have no base")
	}

	// Advance it: remove the last rect of the row.
	inc := incrementalRequest{
		Base: full.LayoutHash, K: 4, Algorithm: "sdp-backtrack",
		Edits: []editJSON{{Op: "remove", Feature: 7}},
	}
	var out decomposeResponse
	resp = postJSON(t, ts.URL+"/v1/decompose/incremental", inc, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	if out.LayoutHash == "" || out.LayoutHash == full.LayoutHash {
		t.Fatalf("incremental response hash %q must identify the post-edit state", out.LayoutHash)
	}
	if out.Incremental == nil || out.Incremental.Components == 0 {
		t.Fatalf("fresh incremental solve must report reuse stats: %+v", out)
	}
	if out.Fragments != full.Fragments-1 {
		t.Fatalf("fragments = %d, want %d", out.Fragments, full.Fragments-1)
	}

	// The same post-edit geometry requested as a full layout must agree —
	// and be served from the cache entry the incremental solve created.
	ref := rowRequest("ref", 7)
	var refOut decomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", ref, &refOut)
	if !refOut.Cached {
		t.Fatal("full request for the post-edit geometry must hit the incremental cache entry")
	}
	if refOut.Conflicts != out.Conflicts || refOut.Stitches != out.Stitches {
		t.Fatalf("incremental %d/%d != full %d/%d", out.Conflicts, out.Stitches, refOut.Conflicts, refOut.Stitches)
	}

	// Chain a second batch from the new state.
	inc2 := incrementalRequest{
		Base: out.LayoutHash, K: 4, Algorithm: "sdp-backtrack",
		Edits: []editJSON{{Op: "add", Rects: []rectJSON{{1000, 0, 1020, 200}}}},
	}
	var out2 decomposeResponse
	resp = postJSON(t, ts.URL+"/v1/decompose/incremental", inc2, &out2)
	// The added wire may itself be stitch-split, so expect at least one
	// extra fragment rather than exactly one.
	if resp.StatusCode != http.StatusOK || out2.Fragments <= out.Fragments {
		t.Fatalf("chained batch: status %d, %+v", resp.StatusCode, out2)
	}
}

func TestServeIncrementalErrors(t *testing.T) {
	ts := testServer(t)
	var full decomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", rowRequest("row", 4), &full)

	cases := []struct {
		name string
		req  incrementalRequest
		code int
	}{
		{"unknown base", incrementalRequest{Base: "no-such-hash", K: 4, Edits: []editJSON{{Op: "remove"}}}, http.StatusNotFound},
		{"missing base", incrementalRequest{K: 4, Edits: []editJSON{{Op: "remove"}}}, http.StatusBadRequest},
		{"empty batch", incrementalRequest{Base: full.LayoutHash, K: 4}, http.StatusBadRequest},
		{"bad op", incrementalRequest{Base: full.LayoutHash, K: 4, Edits: []editJSON{{Op: "teleport"}}}, http.StatusBadRequest},
		{"bad rect", incrementalRequest{Base: full.LayoutHash, K: 4, Edits: []editJSON{{Op: "add", Rects: []rectJSON{{5, 5, 0, 0}}}}}, http.StatusBadRequest},
		{"bad index", incrementalRequest{Base: full.LayoutHash, K: 4, Edits: []editJSON{{Op: "remove", Feature: 99}}}, http.StatusBadRequest},
		// Sessions are keyed by (geometry, options): other options → 404.
		{"other options", incrementalRequest{Base: full.LayoutHash, K: 4, Algorithm: "linear", Edits: []editJSON{{Op: "remove"}}}, http.StatusNotFound},
	}
	for _, tc := range cases {
		var out decomposeResponse
		resp := postJSON(t, ts.URL+"/v1/decompose/incremental", tc.req, &out)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, resp.StatusCode, tc.code, out)
		}
	}
}
