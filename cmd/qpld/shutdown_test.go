package main

// Graceful-shutdown behavior of qpld serve: once shutdown begins, the
// listener refuses new work immediately while requests already in flight
// run to completion within the drain budget.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"mpl/internal/service"
)

func TestServeGracefulShutdown(t *testing.T) {
	srv := &server{
		svc:        service.New(service.Config{CacheSize: 32}),
		maxTimeout: 30 * time.Second,
		maxBody:    1 << 20,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- serveUntil(ctx, srv.mux(), ln, 30*time.Second) }()
	base := "http://" + ln.Addr().String()

	// Kick off a slow solve (a 12×12 contact grid is one big biconnected
	// core for SDP+Backtrack) and capture its outcome.
	type outcome struct {
		code int
		resp decomposeResponse
		err  error
	}
	inflight := make(chan outcome, 1)
	go func() {
		body, _ := json.Marshal(gridRequest("shutdown-grid", 12))
		r, err := http.Post(base+"/v1/decompose", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- outcome{err: err}
			return
		}
		defer r.Body.Close()
		var resp decomposeResponse
		err = json.NewDecoder(r.Body).Decode(&resp)
		inflight <- outcome{code: r.StatusCode, resp: resp, err: err}
	}()

	// Wait until that request is actually solving (its cache miss is
	// registered before the solve starts), then trigger shutdown.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if srv.svc.StatsSnapshot().Misses >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()

	// New connections must be refused promptly: the listener closes at
	// the start of the drain, not at its end.
	client := &http.Client{Timeout: time.Second}
	refused := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		r, err := client.Get(base + "/healthz")
		if err != nil {
			refused = true
			break
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		time.Sleep(2 * time.Millisecond)
	}
	if !refused {
		t.Error("new requests were still accepted after shutdown began")
	}

	// The in-flight request still completes, successfully and undegraded.
	select {
	case got := <-inflight:
		if got.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", got.err)
		}
		if got.code != http.StatusOK {
			t.Fatalf("in-flight request status %d during drain", got.code)
		}
		if got.resp.Degraded != 0 {
			t.Errorf("in-flight request was degraded by shutdown: %+v", got.resp)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}

	// And the server exits cleanly once drained.
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serveUntil returned %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after drain")
	}
}

func TestServeShutdownCancelsPastDrainBudget(t *testing.T) {
	// With a zero drain budget, shutdown must not hang on a long solve:
	// the request context is cancelled (the solve degrades or errors) and
	// serveUntil reports the exhausted budget.
	srv := &server{
		svc:        service.New(service.Config{CacheSize: 32}),
		maxTimeout: 30 * time.Second,
		maxBody:    1 << 20,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- serveUntil(ctx, srv.mux(), ln, time.Millisecond) }()
	base := "http://" + ln.Addr().String()

	requestDone := make(chan struct{})
	go func() {
		defer close(requestDone)
		body, _ := json.Marshal(gridRequest("budget-grid", 14))
		r, err := http.Post(base+"/v1/decompose", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if srv.svc.StatsSnapshot().Misses >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-serveDone:
		if err == nil {
			t.Error("expected the exhausted drain budget to be reported")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server hung past its drain budget")
	}
	select {
	case <-requestDone:
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled in-flight request never returned")
	}
}
